//===-- tools/partitioner.cpp - data partitioning tool --------------------===//
//
// Counterpart of the original FuPerMod `partitioner` utility: reads the
// performance model files produced by `builder` (one per process) and
// computes the optimal distribution of a problem with the selected
// algorithm.
//
// The tool is a thin frontend over the engine Session: the session loads
// the models (remembering file mtimes), resolves the algorithm through
// the partitioner registry, and computes the distribution.
//
// Usage:
//   partitioner --total D [--algorithm constant|geometric|numerical]
//               [--output FILE] [--explain] [--allow-degraded] [--stats]
//               model0.fpm model1.fpm ...
//   partitioner --serve REQFILE [--algorithm A] [--allow-degraded]
//               [--workers N [--queue N] [--deadline-ms N]]
//               model0.fpm model1.fpm ...
//
// --serve REQFILE answers a batch of partition requests (one `TOTAL
// [ALGORITHM]` per line; `reload` forces a model re-read) from one
// long-lived session: the models are loaded and fitted once, and files
// that change on disk between requests are hot-reloaded automatically.
// REQFILE may be `-` to read requests from stdin — with a FIFO this is
// the pipe transport external clients drive a long-running server over.
//
// --workers N serves concurrently: N worker threads drain a bounded
// request queue (--queue, default 256) with admission control (overload
// sheds with structured `# rejected: queue_full|deadline|shutting_down`
// records instead of queueing without bound), optional per-request
// deadlines (--deadline-ms), coalescing of identical in-flight requests
// and an LRU partition cache keyed by (model epoch, total, algorithm).
// Responses are written in request order, byte-identical to the
// sequential mode's answers.
//
// --stats prints the partition latency, the hit rate of the models'
// memoized inverse-time lookup cache (see Model::sizeForTimeCached), and
// the data-movement cost of the distribution: the zero-copy handout
// broadcast, plus a replay of an even-split container migrating to the
// computed partition (minimal-move redistribute traffic) and one width-1
// halo sweep over it — the comm counters an application pays to adopt
// the answer.
//
// --allow-degraded drops ranks whose model is unreadable, corrupt, or
// unfitted (no successful measurement — e.g. the device failed during
// model construction) with a warning, and partitions the full total over
// the survivors instead of refusing.
// --explain prints one line per rank stating whether it was included,
// capped by a feasibility limit, or excluded and why — so degraded runs
// are diagnosable from the CLI.
//
//===----------------------------------------------------------------------===//

#include "core/ModelIO.h"
#include "dist/PartitionedVector.h"
#include "engine/Serve.h"
#include "engine/Server.h"
#include "engine/Session.h"
#include "mpp/Runtime.h"
#include "support/Options.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

using namespace fupermod;

namespace {

int usage(const char *Program) {
  std::fprintf(stderr,
               "usage: %s --total D [--algorithm "
               "constant|geometric|numerical] [--output FILE] "
               "[--explain] [--allow-degraded] [--stats] "
               "[--equalize POLICY] [--imbalance-threshold X] "
               "[--cooldown N] model0.fpm model1.fpm ...\n"
               "       %s --serve REQFILE|- [--algorithm A] "
               "[--allow-degraded] [--stats] [--workers N] [--queue N] "
               "[--deadline-ms N] model0.fpm model1.fpm ...\n",
               Program, Program);
  return 2;
}

/// The accumulated SPMD traffic of the session's runs, one deterministic
/// summary line shared by the serve modes and the one-shot --stats path.
void printTraffic(const engine::Session &Engine) {
  CommStatsSnapshot T = Engine.commTraffic();
  std::printf("# traffic: channels %llu, halo bytes %llu, redistribute "
              "bytes %llu\n",
              static_cast<unsigned long long>(T.ChannelsCreated),
              static_cast<unsigned long long>(T.HaloBytes),
              static_cast<unsigned long long>(T.RedistributeBytes));
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv, {"explain", "allow-degraded", "stats"});
  for (const std::string &Key :
       Opts.unknownKeys({"total", "algorithm", "output", "explain",
                         "allow-degraded", "stats", "serve", "workers",
                         "queue", "deadline-ms", "equalize",
                         "imbalance-threshold", "cooldown"})) {
    std::fprintf(stderr, "error: unknown option --%s\n", Key.c_str());
    return usage(Argv[0]);
  }

  Result<std::int64_t> TotalR = Opts.checkedInt("total", 0);
  Result<std::int64_t> WorkersR = Opts.checkedInt("workers", 0);
  Result<std::int64_t> QueueR = Opts.checkedInt("queue", 256);
  Result<std::int64_t> DeadlineR = Opts.checkedInt("deadline-ms", 0);
  Result<std::int64_t> CooldownR = Opts.checkedInt("cooldown", 0);
  for (const auto *R :
       {&TotalR, &WorkersR, &QueueR, &DeadlineR, &CooldownR})
    if (!*R) {
      std::fprintf(stderr, "error: %s\n", R->error().c_str());
      return 2;
    }
  Result<double> ThresholdR = Opts.checkedDouble("imbalance-threshold", 0.25);
  if (!ThresholdR) {
    std::fprintf(stderr, "error: %s\n", ThresholdR.error().c_str());
    return 2;
  }
  if (ThresholdR.value() < 0.0) {
    std::fprintf(stderr,
                 "error: --imbalance-threshold must be non-negative\n");
    return 2;
  }
  if (CooldownR.value() < 0) {
    std::fprintf(stderr, "error: --cooldown must be non-negative\n");
    return 2;
  }
  std::int64_t Total = TotalR.value();
  std::string Algorithm = Opts.get("algorithm", "geometric");
  std::string ServeFile = Opts.get("serve");
  bool Serve = Opts.has("serve");
  bool Explain = Opts.has("explain");
  bool AllowDegraded = Opts.has("allow-degraded");
  bool Stats = Opts.has("stats");
  const auto &Files = Opts.positional();

  if (Files.empty() || (Serve ? ServeFile.empty() : Total <= 0))
    return usage(Argv[0]);

  // One session behind both modes: it validates the algorithm name
  // against the registry, loads the models (remembering mtimes for hot
  // reload), and owns the partitioning pipeline.
  engine::SessionConfig Cfg;
  Cfg.Algorithm = Algorithm;
  Cfg.AllowDegraded = AllowDegraded;
  // Equalization knobs ride on the session config; create() range-checks
  // them and resolves the policy name against the registry, so a typo in
  // --equalize is a diagnosable error listing the registered policies.
  Cfg.Equalize.Policy = Opts.get("equalize");
  Cfg.Equalize.Monitor.TriggerThreshold = ThresholdR.value();
  Cfg.Equalize.Monitor.Cooldown = static_cast<int>(CooldownR.value());
  Result<std::unique_ptr<engine::Session>> SessionR =
      engine::Session::create(std::move(Cfg));
  if (!SessionR) {
    std::fprintf(stderr, "error: %s\n", SessionR.error().c_str());
    return 2;
  }
  engine::Session &Engine = *SessionR.value();

  if (Status S = Engine.loadModels(Files); !S) {
    std::fprintf(stderr, "error: %s\n", S.error().c_str());
    return 1;
  }
  for (const std::string &W : Engine.warnings())
    std::fprintf(stderr, "warning: %s\n", W.c_str());
  Engine.clearWarnings();

  if (Serve) {
    std::ifstream FileIS;
    if (ServeFile != "-") {
      FileIS.open(ServeFile);
      if (!FileIS) {
        std::fprintf(stderr, "error: cannot open request file %s\n",
                     ServeFile.c_str());
        return 1;
      }
    }
    std::istream &IS = ServeFile == "-" ? std::cin : FileIS;

    engine::ServeStats St;
    int Workers = static_cast<int>(WorkersR.value());
    if (Workers > 0) {
      // Concurrent serving: N workers over a bounded queue, streamed
      // straight from the request source (file, stdin, or FIFO pipe).
      engine::ServerConfig SrvCfg;
      SrvCfg.Workers = Workers;
      SrvCfg.QueueCapacity =
          static_cast<std::size_t>(std::max<std::int64_t>(1, QueueR.value()));
      SrvCfg.DefaultDeadline = std::chrono::milliseconds(
          std::max<std::int64_t>(0, DeadlineR.value()));
      engine::Server Srv(Engine, SrvCfg);
      St = engine::serveStream(Srv, IS, std::cout);
      Srv.shutdown();
      engine::ServerStats SrvSt = Srv.stats();
      std::printf("# served %d request(s), %d failed, %d rejected, "
                  "%d model reload(s)\n",
                  St.Answered, St.Failed, St.Rejected, St.Reloaded);
      std::printf("# server: %d workers, queue %zu, %llu coalesced, "
                  "%llu cache hits / %llu lookups, shed "
                  "queue_full=%llu deadline=%llu shutting_down=%llu\n",
                  Workers, SrvCfg.QueueCapacity,
                  static_cast<unsigned long long>(SrvSt.Coalesced),
                  static_cast<unsigned long long>(SrvSt.CacheHits),
                  static_cast<unsigned long long>(SrvSt.CacheLookups),
                  static_cast<unsigned long long>(SrvSt.ShedQueueFull),
                  static_cast<unsigned long long>(SrvSt.ShedDeadline),
                  static_cast<unsigned long long>(SrvSt.ShedShutdown));
      printTraffic(Engine);
    } else {
      Result<std::vector<engine::ServeRequest>> Requests =
          engine::parseServeRequests(IS);
      if (!Requests) {
        std::fprintf(stderr, "error: %s: %s\n", ServeFile.c_str(),
                     Requests.error().c_str());
        return 2;
      }
      St = engine::serveRequests(Engine, Requests.value(), std::cout);
      std::printf("# served %d request(s), %d failed, %d model reload(s)\n",
                  St.Answered, St.Failed, St.Reloaded);
      if (Stats) {
        // Adoption replay per distinct answered request: an even-split
        // container migrating to the answer plus one width-1 halo sweep,
        // recorded into the session so `# traffic:` below reports the
        // comm cost clients pay to adopt the served distributions.
        std::vector<std::pair<std::int64_t, std::string>> Seen;
        for (const engine::ServeRequest &Req : Requests.value()) {
          if (Req.Reload || !Req.ParseError.empty() || Req.Total <= 0)
            continue;
          std::pair<std::int64_t, std::string> Key{Req.Total,
                                                   Req.Algorithm};
          if (std::find(Seen.begin(), Seen.end(), Key) != Seen.end())
            continue;
          Seen.push_back(Key);
          Result<Dist> Answer = Engine.partition(Req.Total, Req.Algorithm);
          if (!Answer)
            continue; // Already reported as a per-request error.
          const Dist &D = Answer.value();
          int P = static_cast<int>(D.Parts.size());
          Dist Even = Dist::even(D.Total, P);
          SpmdResult Adopt = runSpmd(
              P,
              [&](Comm &C) {
                dist::PartitionedVector<double> V(C, Even, 1);
                V.generate([](std::int64_t U, std::span<double> Row) {
                  Row[0] = static_cast<double>(U);
                });
                V.redistribute(D);
                V.exchangeHalos(1, [](std::int64_t, std::span<double> Row) {
                  Row[0] = 0.0;
                });
              },
              std::make_shared<UniformCostModel>(1e-5, 1e9));
          Engine.recordCommTraffic(Adopt.Comm);
        }
      }
      printTraffic(Engine);
    }
    return St.Failed == 0 ? 0 : 1;
  }

  auto PartitionStart = std::chrono::steady_clock::now();
  Result<Dist> OutR = Engine.partition(Total);
  if (!OutR) {
    std::fprintf(stderr, "error: %s\n", OutR.error().c_str());
    return 1;
  }
  double PartitionSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    PartitionStart)
          .count();
  const Dist &Out = OutR.value();

  std::printf("# %s partitioning of %lld units over %zu processes\n",
              Algorithm.c_str(), static_cast<long long>(Total),
              Files.size());
  for (std::size_t I = 0; I < Out.Parts.size(); ++I)
    std::printf("rank %-3zu units %-10lld predicted_time %.6f  (%s)\n", I,
                static_cast<long long>(Out.Parts[I].Units),
                Out.Parts[I].PredictedTime, Files[I].c_str());
  std::printf("# max predicted time: %.6f\n", Out.maxPredictedTime());

  if (Stats) {
    // Lifetime counters of the memoized inverse-time lookups the
    // geometric/numerical solvers went through during this partition,
    // plus how many memoized entries fit changes evicted (full wipes and
    // ranged invalidations count the same way: entries dropped).
    std::uint64_t Lookups = 0, CacheHits = 0, Invalidations = 0;
    for (Model *M : Engine.activeModels()) {
      Lookups += M->cacheLookups();
      CacheHits += M->cacheHits();
      Invalidations += M->cacheInvalidations();
    }
    std::printf("# stats: partition latency %.6f s, inverse-time lookups "
                "%llu, cache hits %llu (%.1f%%), entries invalidated "
                "%llu\n",
                PartitionSeconds,
                static_cast<unsigned long long>(Lookups),
                static_cast<unsigned long long>(CacheHits),
                Lookups ? 100.0 * static_cast<double>(CacheHits) /
                              static_cast<double>(Lookups)
                        : 0.0,
                static_cast<unsigned long long>(Invalidations));

    // Comm-side counters: replay the handout of this distribution to the
    // P ranks through the runtime's zero-copy broadcast. Logical traffic
    // scales with the fan-out; physical copies do not (the serialized
    // distribution is shared, not duplicated per rank).
    std::ostringstream Ser;
    writeDist(Ser, Out);
    std::string Blob = Ser.str();
    std::vector<std::byte> Bytes(Blob.size());
    std::memcpy(Bytes.data(), Blob.data(), Blob.size());
    SpmdResult Handout = runSpmd(
        static_cast<int>(Files.size()),
        [&](Comm &C) {
          Payload Data;
          if (C.rank() == 0)
            Data = Payload::adoptBytes(Bytes);
          C.bcastPayload(Data, 0);
        },
        std::make_shared<UniformCostModel>(1e-5, 1e9));
    std::printf("# stats: handout of %zu-byte distribution to %zu ranks: "
                "messages %llu, bytes logically moved %llu, bytes "
                "physically copied %llu, channels instantiated %llu\n",
                Blob.size(), Files.size(),
                static_cast<unsigned long long>(Handout.Comm.Messages),
                static_cast<unsigned long long>(Handout.Comm.BytesLogical),
                static_cast<unsigned long long>(Handout.Comm.BytesCopied),
                static_cast<unsigned long long>(
                    Handout.Comm.ChannelsCreated));

    // Adoption cost: replay an even-split PartitionedVector migrating to
    // the computed distribution (the interval-overlap plan moves the
    // analytic minimum) followed by one width-1 halo sweep. Both paths
    // are zero-copy, so physical copies must stay 0.
    int P = static_cast<int>(Files.size());
    Dist Even;
    for (int R = 0; R < P; ++R) {
      Part Pt;
      Pt.Units = Total / P + (R < Total % P ? 1 : 0);
      Even.Parts.push_back(Pt);
      Even.Total += Pt.Units;
    }
    std::int64_t MinUnits = dist::minimalTransferUnits(
        Even.contiguousStarts(), Out.contiguousStarts());
    SpmdResult Adopt = runSpmd(
        P,
        [&](Comm &C) {
          dist::PartitionedVector<double> V(C, Even, 1);
          V.generate([](std::int64_t U, std::span<double> Row) {
            Row[0] = static_cast<double>(U);
          });
          V.redistribute(Out);
          V.exchangeHalos(1, [](std::int64_t, std::span<double> Row) {
            Row[0] = 0.0;
          });
        },
        std::make_shared<UniformCostModel>(1e-5, 1e9));
    std::printf("# stats: adopting the distribution from an even split: "
                "redistribute bytes %llu (analytic minimum %llu), halo "
                "bytes %llu per width-1 sweep, bytes physically copied "
                "%llu\n",
                static_cast<unsigned long long>(
                    Adopt.Comm.RedistributeBytes),
                static_cast<unsigned long long>(MinUnits) *
                    static_cast<unsigned long long>(sizeof(double)),
                static_cast<unsigned long long>(Adopt.Comm.HaloBytes),
                static_cast<unsigned long long>(Adopt.Comm.BytesCopied));
  }

  if (Explain) {
    for (std::size_t I = 0; I < Files.size(); ++I) {
      const engine::ModelSlot &Slot = Engine.slot(static_cast<int>(I));
      if (!Slot.Exclusion.empty()) {
        std::printf("explain rank %zu: excluded (%s)\n", I,
                    Slot.Exclusion.c_str());
        continue;
      }
      double Limit = Slot.M->feasibleLimit();
      if (std::isfinite(Limit))
        std::printf("explain rank %zu: included, capped at %lld units "
                    "(smallest known-infeasible size %g)\n",
                    I, static_cast<long long>(maxUnitsUnderCap(Limit)),
                    Limit);
      else
        std::printf("explain rank %zu: included, no feasibility cap\n", I);
    }
  }

  std::string Output = Opts.get("output");
  if (!Output.empty()) {
    std::ofstream OS(Output);
    if (!OS || !writeDist(OS, Out)) {
      std::fprintf(stderr, "error: cannot write %s\n", Output.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", Output.c_str());
  }
  return 0;
}
