//===-- tools/partitioner.cpp - data partitioning tool --------------------===//
//
// Counterpart of the original FuPerMod `partitioner` utility: reads the
// performance model files produced by `builder` (one per process) and
// computes the optimal distribution of a problem with the selected
// algorithm.
//
// Usage:
//   partitioner --total D [--algorithm constant|geometric|numerical]
//               [--output FILE] model0.fpm model1.fpm ...
//
//===----------------------------------------------------------------------===//

#include "core/ModelIO.h"
#include "core/Partitioners.h"
#include "support/Options.h"

#include <cstdio>
#include <fstream>
#include <memory>

using namespace fupermod;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  std::int64_t Total = Opts.getInt("total", 0);
  std::string Algorithm = Opts.get("algorithm", "geometric");
  const auto &Files = Opts.positional();

  if (Total <= 0 || Files.empty() ||
      (Algorithm != "constant" && Algorithm != "geometric" &&
       Algorithm != "numerical")) {
    std::fprintf(stderr,
                 "usage: %s --total D [--algorithm "
                 "constant|geometric|numerical] [--output FILE] "
                 "model0.fpm model1.fpm ...\n",
                 Argv[0]);
    return 2;
  }

  std::vector<std::unique_ptr<Model>> Models;
  std::vector<Model *> Ptrs;
  for (const std::string &File : Files) {
    std::unique_ptr<Model> M = loadModel(File);
    if (!M) {
      std::fprintf(stderr, "error: cannot read model file %s\n",
                   File.c_str());
      return 1;
    }
    Models.push_back(std::move(M));
    Ptrs.push_back(Models.back().get());
  }

  Dist Out;
  if (!getPartitioner(Algorithm)(Total, Ptrs, Out)) {
    std::fprintf(stderr,
                 "error: partitioning failed (unfitted model or "
                 "insufficient device capacity for %lld units)\n",
                 static_cast<long long>(Total));
    return 1;
  }

  std::printf("# %s partitioning of %lld units over %zu processes\n",
              Algorithm.c_str(), static_cast<long long>(Total),
              Files.size());
  for (std::size_t I = 0; I < Out.Parts.size(); ++I)
    std::printf("rank %-3zu units %-10lld predicted_time %.6f  (%s)\n", I,
                static_cast<long long>(Out.Parts[I].Units),
                Out.Parts[I].PredictedTime, Files[I].c_str());
  std::printf("# max predicted time: %.6f\n", Out.maxPredictedTime());

  std::string Output = Opts.get("output");
  if (!Output.empty()) {
    std::ofstream OS(Output);
    if (!OS || !writeDist(OS, Out)) {
      std::fprintf(stderr, "error: cannot write %s\n", Output.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", Output.c_str());
  }
  return 0;
}
