//===-- tools/partitioner.cpp - data partitioning tool --------------------===//
//
// Counterpart of the original FuPerMod `partitioner` utility: reads the
// performance model files produced by `builder` (one per process) and
// computes the optimal distribution of a problem with the selected
// algorithm.
//
// Usage:
//   partitioner --total D [--algorithm constant|geometric|numerical]
//               [--output FILE] [--explain] [--allow-degraded] [--stats]
//               model0.fpm model1.fpm ...
//
// --stats prints the partition latency and the hit rate of the models'
// memoized inverse-time lookup cache (see Model::sizeForTimeCached).
//
// --allow-degraded drops ranks whose model is unfitted (no successful
// measurement — e.g. the device failed during model construction) and
// partitions the full total over the survivors instead of refusing.
// --explain prints one line per rank stating whether it was included,
// capped by a feasibility limit, or excluded and why — so degraded runs
// are diagnosable from the CLI.
//
//===----------------------------------------------------------------------===//

#include "core/ModelIO.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "support/Options.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

using namespace fupermod;

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv, {"explain", "allow-degraded", "stats"});
  std::int64_t Total = Opts.getInt("total", 0);
  std::string Algorithm = Opts.get("algorithm", "geometric");
  bool Explain = Opts.has("explain");
  bool AllowDegraded = Opts.has("allow-degraded");
  bool Stats = Opts.has("stats");
  const auto &Files = Opts.positional();

  if (Total <= 0 || Files.empty() ||
      (Algorithm != "constant" && Algorithm != "geometric" &&
       Algorithm != "numerical")) {
    std::fprintf(stderr,
                 "usage: %s --total D [--algorithm "
                 "constant|geometric|numerical] [--output FILE] "
                 "[--explain] [--allow-degraded] [--stats] "
                 "model0.fpm model1.fpm ...\n",
                 Argv[0]);
    return 2;
  }

  std::vector<std::unique_ptr<Model>> Models;
  for (const std::string &File : Files) {
    std::unique_ptr<Model> M = loadModel(File);
    if (!M) {
      std::fprintf(stderr, "error: cannot read model file %s\n",
                   File.c_str());
      return 1;
    }
    Models.push_back(std::move(M));
  }

  // Partition over the usable models only; with --allow-degraded an
  // unfitted model excludes its rank (share 0), otherwise it is an error.
  std::vector<Model *> Active;
  std::vector<std::size_t> ActiveRanks;
  std::vector<std::string> Exclusions(Files.size());
  for (std::size_t I = 0; I < Models.size(); ++I) {
    if (!Models[I]->fitted()) {
      if (!AllowDegraded) {
        std::fprintf(stderr,
                     "error: model %s has no successful measurements "
                     "(rerun builder, or pass --allow-degraded to "
                     "partition over the remaining ranks)\n",
                     Files[I].c_str());
        return 1;
      }
      Exclusions[I] = "model unfitted: no successful measurements";
      continue;
    }
    Active.push_back(Models[I].get());
    ActiveRanks.push_back(I);
  }
  if (Active.empty()) {
    std::fprintf(stderr, "error: every rank's model is unfitted\n");
    return 1;
  }

  Dist Sub;
  auto PartitionStart = std::chrono::steady_clock::now();
  if (!getPartitioner(Algorithm)(Total, Active, Sub)) {
    std::fprintf(stderr,
                 "error: partitioning failed (unfitted model or "
                 "insufficient device capacity for %lld units)\n",
                 static_cast<long long>(Total));
    return 1;
  }
  double PartitionSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    PartitionStart)
          .count();

  // Map the surviving ranks' shares back; excluded ranks hold 0 units.
  Dist Out;
  Out.Total = Total;
  Out.Parts.assign(Files.size(), Part());
  for (std::size_t I = 0; I < ActiveRanks.size(); ++I)
    Out.Parts[ActiveRanks[I]] = Sub.Parts[I];

  std::printf("# %s partitioning of %lld units over %zu processes\n",
              Algorithm.c_str(), static_cast<long long>(Total),
              Files.size());
  for (std::size_t I = 0; I < Out.Parts.size(); ++I)
    std::printf("rank %-3zu units %-10lld predicted_time %.6f  (%s)\n", I,
                static_cast<long long>(Out.Parts[I].Units),
                Out.Parts[I].PredictedTime, Files[I].c_str());
  std::printf("# max predicted time: %.6f\n", Out.maxPredictedTime());

  if (Stats) {
    // Lifetime counters of the memoized inverse-time lookups the
    // geometric/numerical solvers went through during this partition.
    std::uint64_t Lookups = 0, CacheHits = 0;
    for (Model *M : Active) {
      Lookups += M->cacheLookups();
      CacheHits += M->cacheHits();
    }
    std::printf("# stats: partition latency %.6f s, inverse-time lookups "
                "%llu, cache hits %llu (%.1f%%)\n",
                PartitionSeconds,
                static_cast<unsigned long long>(Lookups),
                static_cast<unsigned long long>(CacheHits),
                Lookups ? 100.0 * static_cast<double>(CacheHits) /
                              static_cast<double>(Lookups)
                        : 0.0);

    // Comm-side counters: replay the handout of this distribution to the
    // P ranks through the runtime's zero-copy broadcast. Logical traffic
    // scales with the fan-out; physical copies do not (the serialized
    // distribution is shared, not duplicated per rank).
    std::ostringstream Ser;
    writeDist(Ser, Out);
    std::string Blob = Ser.str();
    std::vector<std::byte> Bytes(Blob.size());
    std::memcpy(Bytes.data(), Blob.data(), Blob.size());
    SpmdResult Handout = runSpmd(
        static_cast<int>(Files.size()),
        [&](Comm &C) {
          Payload Data;
          if (C.rank() == 0)
            Data = Payload::adoptBytes(Bytes);
          C.bcastPayload(Data, 0);
        },
        std::make_shared<UniformCostModel>(1e-5, 1e9));
    std::printf("# stats: handout of %zu-byte distribution to %zu ranks: "
                "messages %llu, bytes logically moved %llu, bytes "
                "physically copied %llu\n",
                Blob.size(), Files.size(),
                static_cast<unsigned long long>(Handout.Comm.Messages),
                static_cast<unsigned long long>(Handout.Comm.BytesLogical),
                static_cast<unsigned long long>(Handout.Comm.BytesCopied));
  }

  if (Explain) {
    for (std::size_t I = 0; I < Files.size(); ++I) {
      if (!Exclusions[I].empty()) {
        std::printf("explain rank %zu: excluded (%s)\n", I,
                    Exclusions[I].c_str());
        continue;
      }
      double Limit = Models[I]->feasibleLimit();
      if (std::isfinite(Limit))
        std::printf("explain rank %zu: included, capped at %lld units "
                    "(smallest known-infeasible size %g)\n",
                    I, static_cast<long long>(maxUnitsUnderCap(Limit)),
                    Limit);
      else
        std::printf("explain rank %zu: included, no feasibility cap\n", I);
    }
  }

  std::string Output = Opts.get("output");
  if (!Output.empty()) {
    std::ofstream OS(Output);
    if (!OS || !writeDist(OS, Out)) {
      std::fprintf(stderr, "error: cannot write %s\n", Output.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", Output.c_str());
  }
  return 0;
}
