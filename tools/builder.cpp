//===-- tools/builder.cpp - model construction tool -----------------------===//
//
// Counterpart of the original FuPerMod `builder` utility: benchmarks a
// computation kernel over a range of problem sizes and writes the
// resulting performance model to a file, to be consumed later by the
// `partitioner` tool (paper Section 4.3: build the models once, reuse
// them across many runs).
//
// Usage:
//   builder [--source native|<preset>] [--rank R|all] [--jobs N]
//           [--kind K] [--min A] [--max B] [--points N] [--output FILE]
//           [--reps-min M] [--reps-max M2] [--rel-err E] [--threads T]
//
//   --source native        benchmark this machine's GEMM kernel
//   --threads T            GEMM threads per measurement (native source:
//                          models the device as a T-thread processor)
//   --source two-device|hcl|hcl-nogpu
//                          sample the simulated device --rank R
//   --rank all             build every rank's model in one run; outputs
//                          go to FILE with the rank number injected
//                          before the extension (model.fpm -> model.0.fpm)
//   --jobs N               benchmark up to N devices concurrently
//                          (simulated sources only; results are
//                          bit-identical for every N)
//   --kind cpm|piecewise|akima   model kind (default piecewise)
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "core/GemmKernel.h"
#include "core/ModelIO.h"
#include "sim/ClusterIO.h"
#include "support/Options.h"

#include <cstdio>
#include <memory>

using namespace fupermod;

namespace {

int usage(const char *Program) {
  std::fprintf(
      stderr,
      "usage: %s [--source native|two-device|hcl|hcl-nogpu|uniformN|\n"
      "           <cluster-file>] [--rank R|all] [--jobs N]\n"
      "          [--kind cpm|piecewise|akima] [--min A] [--max B]\n"
      "          [--points N] [--output FILE] [--reps-min M]\n"
      "          [--reps-max M] [--rel-err E] [--threads T]\n",
      Program);
  return 2;
}

/// "model.fpm" + rank 2 -> "model.2.fpm"; extensionless names append.
std::string perRankOutput(const std::string &Base, int Rank) {
  std::size_t Dot = Base.rfind('.');
  std::size_t Slash = Base.rfind('/');
  if (Dot == std::string::npos ||
      (Slash != std::string::npos && Dot < Slash))
    return Base + "." + std::to_string(Rank);
  return Base.substr(0, Dot) + "." + std::to_string(Rank) +
         Base.substr(Dot);
}

void printPoint(double D, const Point &P) {
  if (P.Reps == 0) {
    const char *Why = P.Status == PointStatus::TimedOut      ? "timed out"
                      : P.Status == PointStatus::DeviceFailed ? "device failed"
                                                              : "infeasible";
    std::printf("size %-10.0f %s\n", D, Why);
  } else
    std::printf("size %-10.0f time %-12.6f reps %-3d speed %.1f\n", D,
                P.Time, P.Reps, P.speed());
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  std::string Source = Opts.get("source", "native");
  std::string Kind = Opts.get("kind", "piecewise");
  std::string RankSpec = Opts.get("rank", "0");
  double Min = Opts.getDouble("min", 32.0);
  double Max = Opts.getDouble("max", 1024.0);
  std::int64_t NumPoints = Opts.getInt("points", 10);
  std::int64_t Jobs = Opts.getInt("jobs", 1);
  std::string Output = Opts.get("output", "model.fpm");

  if (Kind != "cpm" && Kind != "piecewise" && Kind != "akima")
    return usage(Argv[0]);
  if (Min <= 0.0 || Max < Min || NumPoints < 1 || Jobs < 1)
    return usage(Argv[0]);

  Precision Prec;
  Prec.MinReps = static_cast<int>(Opts.getInt("reps-min", 3));
  Prec.MaxReps = static_cast<int>(Opts.getInt("reps-max", 10));
  Prec.TargetRelativeError = Opts.getDouble("rel-err", 0.05);
  Prec.TimeLimit = Opts.getDouble("time-limit", 2.0);

  if (Source == "native") {
    // One real device: nothing to parallelise over across devices, but
    // the kernel itself can use --threads GEMM threads per measurement.
    std::int64_t Threads = Opts.getInt("threads", 1);
    if (Threads < 1)
      return usage(Argv[0]);
    GemmKernel Kernel(16, true, static_cast<unsigned>(Threads));
    NativeKernelBackend Backend(Kernel);
    std::unique_ptr<Model> M = makeModel(Kind);
    std::printf("# benchmarking %s, %lld sizes in [%g, %g]\n",
                Source.c_str(), static_cast<long long>(NumPoints), Min,
                Max);
    for (std::int64_t I = 0; I < NumPoints; ++I) {
      double D = NumPoints == 1
                     ? Min
                     : Min + (Max - Min) * static_cast<double>(I) /
                           static_cast<double>(NumPoints - 1);
      Point P = runBenchmark(Backend, D, Prec);
      M->update(P);
      printPoint(D, P);
    }
    if (!saveModel(Output, *M)) {
      std::fprintf(stderr, "error: cannot write %s\n", Output.c_str());
      return 1;
    }
    std::printf("# wrote %s (%zu points, kind %s)\n", Output.c_str(),
                M->points().size(), M->kind());
    return 0;
  }

  std::string Error;
  std::optional<Cluster> Parsed = resolveCluster(Source, &Error);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  Cluster Cl = std::move(*Parsed);
  Cl.NoiseSigma = Opts.getDouble("noise", 0.02);

  ModelBuildPlan Plan;
  Plan.Kind = Kind;
  Plan.MinSize = Min;
  Plan.MaxSize = Max;
  Plan.NumPoints = static_cast<int>(NumPoints);
  Plan.Prec = Prec;
  Plan.Jobs = static_cast<int>(Jobs);

  bool AllRanks = RankSpec == "all";
  int Rank = 0;
  if (!AllRanks) {
    Rank = static_cast<int>(Opts.getInt("rank", 0));
    if (Rank < 0 || Rank >= Cl.size()) {
      std::fprintf(stderr, "error: rank %d out of range for preset %s\n",
                   Rank, Source.c_str());
      return 2;
    }
  }

  if (!AllRanks) {
    // Single-rank build: shrink the cluster view to that one device so
    // the shared parallel path does the work (serial when Jobs == 1).
    Cluster One;
    One.Devices = {Cl.Devices[static_cast<std::size_t>(Rank)]};
    One.NodeOfRank = {0};
    One.NoiseSigma = Cl.NoiseSigma;
    One.Seed = Cl.Seed + static_cast<std::uint64_t>(Rank);
    if (static_cast<std::size_t>(Rank) < Cl.Faults.size())
      One.Faults = {Cl.Faults[static_cast<std::size_t>(Rank)]};
    std::printf("# benchmarking %s rank %d, %lld sizes in [%g, %g]\n",
                Source.c_str(), Rank, static_cast<long long>(NumPoints),
                Min, Max);
    std::vector<BuiltModel> Built = buildModelsParallel(One, Plan);
    const std::vector<double> Sizes = buildSizeGrid(Plan);
    for (std::size_t I = 0; I < Sizes.size(); ++I)
      printPoint(Sizes[I], Built[0].Raw[I]);
    if (!saveModel(Output, *Built[0].M)) {
      std::fprintf(stderr, "error: cannot write %s\n", Output.c_str());
      return 1;
    }
    std::printf("# wrote %s (%zu points, kind %s)\n", Output.c_str(),
                Built[0].M->points().size(), Built[0].M->kind());
    return 0;
  }

  std::printf("# benchmarking %s, all %d ranks, %lld sizes in [%g, %g], "
              "%lld jobs\n",
              Source.c_str(), Cl.size(), static_cast<long long>(NumPoints),
              Min, Max, static_cast<long long>(Jobs));
  std::vector<BuiltModel> Built = buildModelsParallel(Cl, Plan);
  const std::vector<double> Sizes = buildSizeGrid(Plan);
  for (int R = 0; R < Cl.size(); ++R) {
    std::printf("# rank %d\n", R);
    const BuiltModel &B = Built[static_cast<std::size_t>(R)];
    for (std::size_t I = 0; I < Sizes.size(); ++I)
      printPoint(Sizes[I], B.Raw[I]);
    std::string File = perRankOutput(Output, R);
    if (!saveModel(File, *B.M)) {
      std::fprintf(stderr, "error: cannot write %s\n", File.c_str());
      return 1;
    }
    std::printf("# wrote %s (%zu points, kind %s)\n", File.c_str(),
                B.M->points().size(), B.M->kind());
  }
  return 0;
}
