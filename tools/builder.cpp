//===-- tools/builder.cpp - model construction tool -----------------------===//
//
// Counterpart of the original FuPerMod `builder` utility: benchmarks a
// computation kernel over a range of problem sizes and writes the
// resulting performance model to a file, to be consumed later by the
// `partitioner` tool (paper Section 4.3: build the models once, reuse
// them across many runs).
//
// The tool is a thin frontend over the engine Session: it parses the
// command line, configures a session (measure -> fit), and prints what
// the session measured. Model kinds and kernels resolve through the
// registries, so a bad name is reported with the registered alternatives.
//
// Usage:
//   builder [--source native|<preset>] [--rank R|all] [--jobs N]
//           [--kind K] [--min A] [--max B] [--points N] [--output FILE]
//           [--reps-min M] [--reps-max M2] [--rel-err E] [--threads T]
//           [--micro]
//
//   --source native        benchmark this machine's GEMM kernel
//   --threads T            GEMM threads per measurement (native source:
//                          models the device as a T-thread processor)
//   --micro                use the register-blocked micro-kernel (tuned
//                          vendor BLAS stand-in; AVX2/FMA when compiled
//                          with FUPERMOD_NATIVE and supported by the CPU)
//   --source two-device|hcl|hcl-nogpu
//                          sample the simulated device --rank R
//   --rank all             build every rank's model in one run; outputs
//                          go to FILE with the rank number injected
//                          before the extension (model.fpm -> model.0.fpm)
//   --jobs N               benchmark up to N devices concurrently
//                          (simulated sources only; results are
//                          bit-identical for every N)
//   --kind cpm|piecewise|akima   model kind (default piecewise)
//
//===----------------------------------------------------------------------===//

#include "blas/Gemm.h"
#include "engine/Session.h"
#include "sim/ClusterIO.h"
#include "support/Options.h"

#include <cstdio>
#include <memory>

using namespace fupermod;

namespace {

int usage(const char *Program) {
  std::fprintf(
      stderr,
      "usage: %s [--source native|two-device|hcl|hcl-nogpu|uniformN|\n"
      "           <cluster-file>] [--rank R|all] [--jobs N]\n"
      "          [--kind cpm|piecewise|akima] [--min A] [--max B]\n"
      "          [--points N] [--output FILE] [--reps-min M]\n"
      "          [--reps-max M] [--rel-err E] [--threads T] [--micro]\n",
      Program);
  return 2;
}

/// "model.fpm" + rank 2 -> "model.2.fpm"; extensionless names append.
std::string perRankOutput(const std::string &Base, int Rank) {
  std::size_t Dot = Base.rfind('.');
  std::size_t Slash = Base.rfind('/');
  if (Dot == std::string::npos ||
      (Slash != std::string::npos && Dot < Slash))
    return Base + "." + std::to_string(Rank);
  return Base.substr(0, Dot) + "." + std::to_string(Rank) +
         Base.substr(Dot);
}

void printPoint(double D, const Point &P) {
  if (P.Reps == 0) {
    const char *Why = P.Status == PointStatus::TimedOut      ? "timed out"
                      : P.Status == PointStatus::DeviceFailed ? "device failed"
                                                              : "infeasible";
    std::printf("size %-10.0f %s\n", D, Why);
  } else
    std::printf("size %-10.0f time %-12.6f reps %-3d speed %.1f\n", D,
                P.Time, P.Reps, P.speed());
}

/// Prints \p Msg as an error and returns the tool's usage exit code.
int fail(const std::string &Msg) {
  std::fprintf(stderr, "error: %s\n", Msg.c_str());
  return 2;
}

/// Writes the model of \p Rank to \p File and reports it; returns the
/// process exit code.
int writeModel(engine::Session &Engine, int Rank, const std::string &File) {
  if (Status S = Engine.saveModel(Rank, File); !S) {
    std::fprintf(stderr, "error: %s\n", S.error().c_str());
    return 1;
  }
  const Model *M = Engine.model(Rank);
  std::printf("# wrote %s (%zu points, kind %s)\n", File.c_str(),
              M->points().size(), M->kind());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv, {"micro"});
  for (const std::string &Key :
       Opts.unknownKeys({"source", "kind", "rank", "min", "max", "points",
                         "jobs", "output", "reps-min", "reps-max",
                         "rel-err", "time-limit", "threads", "noise",
                         "micro"})) {
    std::fprintf(stderr, "error: unknown option --%s\n", Key.c_str());
    return usage(Argv[0]);
  }

  std::string Source = Opts.get("source", "native");
  std::string Kind = Opts.get("kind", "piecewise");
  std::string RankSpec = Opts.get("rank", "0");
  std::string Output = Opts.get("output", "model.fpm");

  // Strict numeric parsing: a typo like --points ten is an error, not a
  // silent fallback to the default.
  Result<double> MinR = Opts.checkedDouble("min", 32.0);
  Result<double> MaxR = Opts.checkedDouble("max", 1024.0);
  Result<std::int64_t> PointsR = Opts.checkedInt("points", 10);
  Result<std::int64_t> JobsR = Opts.checkedInt("jobs", 1);
  Result<std::int64_t> RepsMinR = Opts.checkedInt("reps-min", 3);
  Result<std::int64_t> RepsMaxR = Opts.checkedInt("reps-max", 10);
  Result<double> RelErrR = Opts.checkedDouble("rel-err", 0.05);
  Result<double> TimeLimitR = Opts.checkedDouble("time-limit", 2.0);
  Result<std::int64_t> ThreadsR = Opts.checkedInt("threads", 1);
  Result<double> NoiseR = Opts.checkedDouble("noise", 0.02);
  for (const Result<double> *R : {&MinR, &MaxR, &RelErrR, &TimeLimitR,
                                  &NoiseR})
    if (!*R)
      return fail(R->error());
  for (const Result<std::int64_t> *R : {&PointsR, &JobsR, &RepsMinR,
                                        &RepsMaxR, &ThreadsR})
    if (!*R)
      return fail(R->error());

  double Min = MinR.value();
  double Max = MaxR.value();
  std::int64_t NumPoints = PointsR.value();
  std::int64_t Jobs = JobsR.value();
  if (Min <= 0.0 || Max < Min || NumPoints < 1 || Jobs < 1)
    return usage(Argv[0]);

  Precision Prec;
  Prec.MinReps = static_cast<int>(RepsMinR.value());
  Prec.MaxReps = static_cast<int>(RepsMaxR.value());
  Prec.TargetRelativeError = RelErrR.value();
  Prec.TimeLimit = TimeLimitR.value();

  if (Source == "native") {
    // One real device: nothing to parallelise over across devices, but
    // the kernel itself can use --threads GEMM threads per measurement.
    std::int64_t Threads = ThreadsR.value();
    if (Threads < 1)
      return usage(Argv[0]);
    engine::SessionConfig Cfg;
    Cfg.ModelKind = Kind;
    Cfg.Kernel.Threads = static_cast<unsigned>(Threads);
    Cfg.Kernel.UseMicroGemm = Opts.has("micro");
    if (Cfg.Kernel.UseMicroGemm)
      std::printf("# micro-kernel isa: %s\n", gemmIsaName(gemmMicroIsa()));
    Result<std::unique_ptr<engine::Session>> SessionR =
        engine::Session::create(std::move(Cfg));
    if (!SessionR)
      return fail(SessionR.error());
    engine::Session &Engine = *SessionR.value();

    engine::NativeMeasurePlan Plan;
    Plan.MinSize = Min;
    Plan.MaxSize = Max;
    Plan.NumPoints = static_cast<int>(NumPoints);
    Plan.Prec = Prec;
    Plan.OnPoint = printPoint;
    std::printf("# benchmarking %s, %lld sizes in [%g, %g]\n",
                Source.c_str(), static_cast<long long>(NumPoints), Min,
                Max);
    if (Status S = Engine.measureNative(Plan); !S) {
      std::fprintf(stderr, "error: %s\n", S.error().c_str());
      return 1;
    }
    return writeModel(Engine, 0, Output);
  }

  std::string Error;
  std::optional<Cluster> Parsed = resolveCluster(Source, &Error);
  if (!Parsed) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  Cluster Cl = std::move(*Parsed);
  Cl.NoiseSigma = NoiseR.value();

  ModelBuildPlan Plan;
  Plan.MinSize = Min;
  Plan.MaxSize = Max;
  Plan.NumPoints = static_cast<int>(NumPoints);
  Plan.Prec = Prec;
  Plan.Jobs = static_cast<int>(Jobs);
  const std::vector<double> Sizes = buildSizeGrid(Plan);

  bool AllRanks = RankSpec == "all";
  int Rank = 0;
  if (!AllRanks) {
    Result<std::int64_t> RankR = Opts.checkedInt("rank", 0);
    if (!RankR)
      return fail(RankR.error());
    Rank = static_cast<int>(RankR.value());
    if (Rank < 0 || Rank >= Cl.size()) {
      std::fprintf(stderr, "error: rank %d out of range for preset %s\n",
                   Rank, Source.c_str());
      return 2;
    }
  }

  if (!AllRanks) {
    // Single-rank build: shrink the cluster view to that one device so
    // the shared parallel path does the work (serial when Jobs == 1).
    Cluster One;
    One.Devices = {Cl.Devices[static_cast<std::size_t>(Rank)]};
    One.NodeOfRank = {0};
    One.NoiseSigma = Cl.NoiseSigma;
    One.Seed = Cl.Seed + static_cast<std::uint64_t>(Rank);
    if (static_cast<std::size_t>(Rank) < Cl.Faults.size())
      One.Faults = {Cl.Faults[static_cast<std::size_t>(Rank)]};

    engine::SessionConfig Cfg;
    Cfg.Platform = std::move(One);
    Cfg.ModelKind = Kind;
    Result<std::unique_ptr<engine::Session>> SessionR =
        engine::Session::create(std::move(Cfg));
    if (!SessionR)
      return fail(SessionR.error());
    engine::Session &Engine = *SessionR.value();

    std::printf("# benchmarking %s rank %d, %lld sizes in [%g, %g]\n",
                Source.c_str(), Rank, static_cast<long long>(NumPoints),
                Min, Max);
    if (Status S = Engine.measure(Plan); !S) {
      std::fprintf(stderr, "error: %s\n", S.error().c_str());
      return 1;
    }
    for (std::size_t I = 0; I < Sizes.size(); ++I)
      printPoint(Sizes[I], Engine.slot(0).Raw[I]);
    return writeModel(Engine, 0, Output);
  }

  engine::SessionConfig Cfg;
  Cfg.Platform = Cl;
  Cfg.ModelKind = Kind;
  Result<std::unique_ptr<engine::Session>> SessionR =
      engine::Session::create(std::move(Cfg));
  if (!SessionR)
    return fail(SessionR.error());
  engine::Session &Engine = *SessionR.value();

  std::printf("# benchmarking %s, all %d ranks, %lld sizes in [%g, %g], "
              "%lld jobs\n",
              Source.c_str(), Cl.size(), static_cast<long long>(NumPoints),
              Min, Max, static_cast<long long>(Jobs));
  if (Status S = Engine.measure(Plan); !S) {
    std::fprintf(stderr, "error: %s\n", S.error().c_str());
    return 1;
  }
  for (int R = 0; R < Cl.size(); ++R) {
    std::printf("# rank %d\n", R);
    for (std::size_t I = 0; I < Sizes.size(); ++I)
      printPoint(Sizes[I], Engine.slot(R).Raw[I]);
    if (int Rc = writeModel(Engine, R, perRankOutput(Output, R)))
      return Rc;
  }
  return 0;
}
