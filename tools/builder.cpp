//===-- tools/builder.cpp - model construction tool -----------------------===//
//
// Counterpart of the original FuPerMod `builder` utility: benchmarks a
// computation kernel over a range of problem sizes and writes the
// resulting performance model to a file, to be consumed later by the
// `partitioner` tool (paper Section 4.3: build the models once, reuse
// them across many runs).
//
// Usage:
//   builder [--source native|<preset>] [--rank R] [--kind K]
//           [--min A] [--max B] [--points N] [--output FILE]
//           [--reps-min M] [--reps-max M2] [--rel-err E]
//
//   --source native        benchmark this machine's GEMM kernel
//   --source two-device|hcl|hcl-nogpu
//                          sample the simulated device --rank R
//   --kind cpm|piecewise|akima   model kind (default piecewise)
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "core/GemmKernel.h"
#include "core/ModelIO.h"
#include "sim/ClusterIO.h"
#include "support/Options.h"

#include <cstdio>
#include <memory>

using namespace fupermod;

namespace {

int usage(const char *Program) {
  std::fprintf(
      stderr,
      "usage: %s [--source native|two-device|hcl|hcl-nogpu|uniformN|\n"
      "           <cluster-file>] [--rank R]\n"
      "          [--kind cpm|piecewise|akima] [--min A] [--max B]\n"
      "          [--points N] [--output FILE] [--reps-min M]\n"
      "          [--reps-max M] [--rel-err E]\n",
      Program);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts(Argc, Argv);
  std::string Source = Opts.get("source", "native");
  std::string Kind = Opts.get("kind", "piecewise");
  double Min = Opts.getDouble("min", 32.0);
  double Max = Opts.getDouble("max", 1024.0);
  std::int64_t NumPoints = Opts.getInt("points", 10);
  std::string Output = Opts.get("output", "model.fpm");

  if (Kind != "cpm" && Kind != "piecewise" && Kind != "akima")
    return usage(Argv[0]);
  if (Min <= 0.0 || Max < Min || NumPoints < 1)
    return usage(Argv[0]);

  Precision Prec;
  Prec.MinReps = static_cast<int>(Opts.getInt("reps-min", 3));
  Prec.MaxReps = static_cast<int>(Opts.getInt("reps-max", 10));
  Prec.TargetRelativeError = Opts.getDouble("rel-err", 0.05);
  Prec.TimeLimit = Opts.getDouble("time-limit", 2.0);

  // Pick the measurement backend.
  std::unique_ptr<GemmKernel> Kernel;
  std::unique_ptr<SimDevice> Device;
  std::unique_ptr<BenchmarkBackend> Backend;
  if (Source == "native") {
    Kernel = std::make_unique<GemmKernel>(16, true);
    Backend = std::make_unique<NativeKernelBackend>(*Kernel);
  } else {
    std::string Error;
    std::optional<Cluster> Parsed = resolveCluster(Source, &Error);
    if (!Parsed) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    Cluster Cl = std::move(*Parsed);
    int Rank = static_cast<int>(Opts.getInt("rank", 0));
    if (Rank < 0 || Rank >= Cl.size()) {
      std::fprintf(stderr, "error: rank %d out of range for preset %s\n",
                   Rank, Source.c_str());
      return 2;
    }
    Cl.NoiseSigma = Opts.getDouble("noise", 0.02);
    Device = std::make_unique<SimDevice>(Cl.makeDevice(Rank));
    Backend = std::make_unique<SimDeviceBackend>(*Device);
  }

  std::unique_ptr<Model> M = makeModel(Kind);
  std::printf("# benchmarking %s, %lld sizes in [%g, %g]\n", Source.c_str(),
              static_cast<long long>(NumPoints), Min, Max);
  for (std::int64_t I = 0; I < NumPoints; ++I) {
    double D = NumPoints == 1
                   ? Min
                   : Min + (Max - Min) * static_cast<double>(I) /
                         static_cast<double>(NumPoints - 1);
    Point P = runBenchmark(*Backend, D, Prec);
    M->update(P);
    if (P.Reps == 0) {
      const char *Why = P.Status == PointStatus::TimedOut      ? "timed out"
                        : P.Status == PointStatus::DeviceFailed ? "device failed"
                                                                : "infeasible";
      std::printf("size %-10.0f %s\n", D, Why);
    } else
      std::printf("size %-10.0f time %-12.6f reps %-3d speed %.1f\n", D,
                  P.Time, P.Reps, P.speed());
  }

  if (!saveModel(Output, *M)) {
    std::fprintf(stderr, "error: cannot write %s\n", Output.c_str());
    return 1;
  }
  std::printf("# wrote %s (%zu points, kind %s)\n", Output.c_str(),
              M->points().size(), M->kind());
  return 0;
}
