//===-- apps/Jacobi.cpp - Jacobi method with load balancing ---------------===//

#include "apps/Jacobi.h"

#include "dist/PartitionedVector.h"
#include "engine/Balance.h"
#include "engine/Session.h"
#include "mpp/Runtime.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

namespace {

std::uint64_t mix(std::uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

double unitFromHash(std::uint64_t H) {
  return static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0);
}

} // namespace

double fupermod::jacobiMatrixEntry(int N, int Row, int Col) {
  if (Row == Col)
    return static_cast<double>(N);
  std::uint64_t H = mix(static_cast<std::uint64_t>(Row) * 2654435761u +
                        static_cast<std::uint64_t>(Col) + 17);
  return unitFromHash(H) - 0.5;
}

double fupermod::jacobiRhsEntry(int N, int Row) {
  std::uint64_t H = mix(static_cast<std::uint64_t>(N) * 31 +
                        static_cast<std::uint64_t>(Row));
  return 2.0 * unitFromHash(H) - 1.0;
}

JacobiReport fupermod::runJacobi(const Cluster &Platform,
                                 const JacobiOptions &Options) {
  int P = Platform.size();
  int N = Options.N;
  assert(N > 0 && P > 0 && "invalid Jacobi configuration");

  // All phases (model feedback, repartitioning, execution) route through
  // one engine session; unknown algorithm/model names become a
  // diagnosable report error instead of an assert.
  engine::SessionConfig Cfg;
  Cfg.Platform = Platform;
  Cfg.ModelKind = Options.ModelKind;
  Cfg.Algorithm = Options.Algorithm;
  Cfg.Equalize = Options.Equalize;
  Result<std::unique_ptr<engine::Session>> SessionR =
      engine::Session::create(std::move(Cfg));
  if (!SessionR) {
    JacobiReport Report;
    Report.Error = SessionR.error();
    return Report;
  }
  engine::Session &Engine = *SessionR.value();
  // create() adopted the platform spec's `equalize` line when Options
  // left the policy empty; this resolved config drives the loop.
  const equalize::EqualizeConfig &EqCfg = Engine.config().Equalize;
  bool UseEqualize = Options.Balance && !EqCfg.Policy.empty();

  engine::BalancePolicy Policy;
  Policy.Enabled = Options.Balance;
  Policy.RebalanceThreshold = Options.RebalanceThreshold;
  Policy.TrackFailures = true;

  std::vector<JacobiIteration> Stats(
      static_cast<std::size_t>(Options.MaxIterations));
  for (auto &S : Stats) {
    S.ComputeTimes.assign(static_cast<std::size_t>(P), 0.0);
    S.Rows.assign(static_cast<std::size_t>(P), 0);
  }
  int IterationsDone = 0;
  int RebalanceCount = 0;
  bool Converged = false;
  std::vector<double> Solution;
  double Residual = 0.0;
  std::vector<int> FailedRanks;
  equalize::EqualizeStats EqStats;

  auto Body = [&](Comm &C) {
    int Me = C.rank();
    SimDevice Dev = Platform.makeDevice(Me);
    bool DevFailed = false;

    engine::BalancedLoop Loop =
        Engine.makeBalancedLoop(N, P, Options.StalenessDecay);

    // Each rank owns a policy replica; identical configs fed identical
    // gathered times keep the replicas in lockstep (no extra collectives).
    std::unique_ptr<equalize::Equalizer> Eq;
    if (UseEqualize) {
      Result<std::unique_ptr<equalize::Equalizer>> EqR =
          equalize::makeEqualizer(EqCfg);
      Eq = std::move(EqR.value()); // Config validated at session create.
    }

    // The system lives in a partitioner-aware container: one unit = one
    // matrix row interleaved with its right-hand-side entry, [a_r0 ..
    // a_r(N-1) | b_r], so a repartition moves each row in one piece.
    // Initial data is generated in place; every later move is real
    // communication, driven by the container's minimal-move plan.
    dist::PartitionedVector<double> Sys(C, Loop.dist(), N + 1);
    Sys.generate([&](std::int64_t Row, std::span<double> Out) {
      for (int Col = 0; Col < N; ++Col)
        Out[static_cast<std::size_t>(Col)] =
            jacobiMatrixEntry(N, static_cast<int>(Row), Col);
      Out[static_cast<std::size_t>(N)] =
          jacobiRhsEntry(N, static_cast<int>(Row));
    });

    std::vector<double> X(static_cast<std::size_t>(N), 0.0);

    int It = 0;
    for (; It < Options.MaxIterations; ++It) {
      double IterStart = C.time();
      std::int64_t MyStart = Sys.start();
      std::int64_t MyRows = Sys.units();

      // Local sweep: x_new over owned rows (real arithmetic).
      std::vector<double> XNewLocal(static_cast<std::size_t>(MyRows), 0.0);
      for (std::int64_t R = 0; R < MyRows; ++R) {
        int Row = static_cast<int>(MyStart + R);
        std::span<const double> Unit = Sys.unit(MyStart + R);
        const double *ARow = Unit.data();
        double Sum = 0.0;
        for (int Col = 0; Col < N; ++Col)
          if (Col != Row)
            Sum += ARow[Col] * X[static_cast<std::size_t>(Col)];
        XNewLocal[static_cast<std::size_t>(R)] =
            (Unit[static_cast<std::size_t>(N)] - Sum) / ARow[Row];
      }

      // Virtual computation cost (one unit = one row). A hard-failed
      // device produces no timing; the rank reports the failure to the
      // balancer below so its rows migrate to the survivors.
      if (MyRows > 0) {
        Measurement M = Dev.measure(static_cast<double>(MyRows));
        if (M.Status == MeasureStatus::Failed) {
          DevFailed = true;
        } else {
          C.compute(M.Seconds);
          Stats[static_cast<std::size_t>(It)]
              .ComputeTimes[static_cast<std::size_t>(Me)] = M.Seconds;
        }
      }
      if (Me == 0) {
        const std::vector<std::int64_t> &Starts = Sys.starts();
        for (int Q = 0; Q < P; ++Q)
          Stats[static_cast<std::size_t>(It)]
              .Rows[static_cast<std::size_t>(Q)] =
              Starts[static_cast<std::size_t>(Q) + 1] -
              Starts[static_cast<std::size_t>(Q)];
      }

      // Load balancing with the (rows, iteration-time) point, exactly the
      // paper's fupermod_balance_iterate call site. With a positive
      // threshold, the balancer only runs when the measured imbalance
      // warrants the redistribution cost (ref [6]). The equalization
      // path replaces the threshold test with the configured policy.
      bool Balanced = Eq ? Loop.balanceEqualized(C, IterStart, *Eq, DevFailed)
                         : Loop.balance(C, IterStart, Policy, DevFailed);
      if (Balanced && Me == 0)
        ++RebalanceCount;

      // Exchange solution fragments (by the distribution used to compute
      // them) and evaluate convergence identically on every rank.
      // Ring allgather: each solution fragment crosses every link once,
      // the cheaper choice for these payloads.
      std::vector<double> XNew =
          C.allgathervRing(std::span<const double>(XNewLocal));
      assert(static_cast<int>(XNew.size()) == N &&
             "lost solution entries in allgather");
      double Error = 0.0;
      for (int I = 0; I < N; ++I)
        Error = std::max(Error, std::fabs(XNew[static_cast<std::size_t>(I)] -
                                          X[static_cast<std::size_t>(I)]));
      X = XNew;
      if (Me == 0)
        Stats[static_cast<std::size_t>(It)].Error = Error;

      // Migrate [A | b] rows to the new distribution — only when the
      // repartition actually moved units between ranks.
      Loop.redistributeIfChanged(Sys);

      if (Error <= Options.Tolerance) {
        ++It;
        Converged = true;
        break;
      }
    }

    if (Me == 0) {
      IterationsDone = It;
      if (Eq)
        EqStats = Eq->stats();
      for (int Q = 0; Q < P; ++Q)
        if (Loop.context().isExcluded(Q))
          FailedRanks.push_back(Q);
      Solution = X;
      for (int Row = 0; Row < N; ++Row) {
        double Sum = -jacobiRhsEntry(N, Row);
        for (int Col = 0; Col < N; ++Col)
          Sum += jacobiMatrixEntry(N, Row, Col) *
                 X[static_cast<std::size_t>(Col)];
        Residual = std::max(Residual, std::fabs(Sum));
      }
    }
  };

  SpmdResult Run = Engine.execute(P, Body).value();

  JacobiReport Report;
  Stats.resize(static_cast<std::size_t>(IterationsDone));
  Report.Iterations = std::move(Stats);
  Report.Makespan = Run.makespan();
  Report.Converged = Converged;
  Report.Rebalances = RebalanceCount;
  Report.Solution = std::move(Solution);
  Report.Residual = Residual;
  Report.FailedRanks = std::move(FailedRanks);
  Report.Equalize = EqStats;
  Report.Comm = Run.Comm;
  return Report;
}
