//===-- apps/Jacobi.cpp - Jacobi method with load balancing ---------------===//

#include "apps/Jacobi.h"

#include "core/Dynamic.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

namespace {

enum : int {
  TagRedist = 1 << 22,
};

std::uint64_t mix(std::uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

double unitFromHash(std::uint64_t H) {
  return static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0);
}

/// Row ranges [Start[r], Start[r+1]) implied by a distribution.
std::vector<std::int64_t> rowStarts(const Dist &D) {
  std::vector<std::int64_t> Starts(D.Parts.size() + 1, 0);
  for (std::size_t I = 0; I < D.Parts.size(); ++I)
    Starts[I + 1] = Starts[I] + D.Parts[I].Units;
  return Starts;
}

} // namespace

double fupermod::jacobiMatrixEntry(int N, int Row, int Col) {
  if (Row == Col)
    return static_cast<double>(N);
  std::uint64_t H = mix(static_cast<std::uint64_t>(Row) * 2654435761u +
                        static_cast<std::uint64_t>(Col) + 17);
  return unitFromHash(H) - 0.5;
}

double fupermod::jacobiRhsEntry(int N, int Row) {
  std::uint64_t H = mix(static_cast<std::uint64_t>(N) * 31 +
                        static_cast<std::uint64_t>(Row));
  return 2.0 * unitFromHash(H) - 1.0;
}

JacobiReport fupermod::runJacobi(const Cluster &Platform,
                                 const JacobiOptions &Options) {
  int P = Platform.size();
  int N = Options.N;
  assert(N > 0 && P > 0 && "invalid Jacobi configuration");

  std::vector<JacobiIteration> Stats(
      static_cast<std::size_t>(Options.MaxIterations));
  for (auto &S : Stats) {
    S.ComputeTimes.assign(static_cast<std::size_t>(P), 0.0);
    S.Rows.assign(static_cast<std::size_t>(P), 0);
  }
  int IterationsDone = 0;
  int RebalanceCount = 0;
  bool Converged = false;
  std::vector<double> Solution;
  double Residual = 0.0;
  std::vector<int> FailedRanks;

  auto Body = [&](Comm &C) {
    int Me = C.rank();
    SimDevice Dev = Platform.makeDevice(Me);
    bool DevFailed = false;

    DynamicContext Ctx(getPartitioner(Options.Algorithm), Options.ModelKind,
                       N, P);
    Ctx.setStalenessDecay(Options.StalenessDecay);
    Dist Current = Ctx.dist(); // Even initial distribution.

    // Initial data: each rank generates its own contiguous rows of A and
    // entries of b (rows are only *regenerated* here; every later move is
    // real communication).
    std::vector<std::int64_t> Starts = rowStarts(Current);
    std::int64_t MyStart = Starts[static_cast<std::size_t>(Me)];
    std::int64_t MyRows =
        Current.Parts[static_cast<std::size_t>(Me)].Units;
    std::vector<double> ARows(static_cast<std::size_t>(MyRows) *
                              static_cast<std::size_t>(N));
    std::vector<double> BVals(static_cast<std::size_t>(MyRows));
    for (std::int64_t R = 0; R < MyRows; ++R) {
      int Row = static_cast<int>(MyStart + R);
      for (int Col = 0; Col < N; ++Col)
        ARows[static_cast<std::size_t>(R) * N + Col] =
            jacobiMatrixEntry(N, Row, Col);
      BVals[static_cast<std::size_t>(R)] = jacobiRhsEntry(N, Row);
    }

    std::vector<double> X(static_cast<std::size_t>(N), 0.0);

    int It = 0;
    for (; It < Options.MaxIterations; ++It) {
      double IterStart = C.time();

      // Local sweep: x_new over owned rows (real arithmetic).
      std::vector<double> XNewLocal(static_cast<std::size_t>(MyRows), 0.0);
      for (std::int64_t R = 0; R < MyRows; ++R) {
        int Row = static_cast<int>(MyStart + R);
        double Sum = 0.0;
        const double *ARow = &ARows[static_cast<std::size_t>(R) * N];
        for (int Col = 0; Col < N; ++Col)
          if (Col != Row)
            Sum += ARow[Col] * X[static_cast<std::size_t>(Col)];
        XNewLocal[static_cast<std::size_t>(R)] =
            (BVals[static_cast<std::size_t>(R)] - Sum) / ARow[Row];
      }

      // Virtual computation cost (one unit = one row). A hard-failed
      // device produces no timing; the rank reports the failure to the
      // balancer below so its rows migrate to the survivors.
      if (MyRows > 0) {
        Measurement M = Dev.measure(static_cast<double>(MyRows));
        if (M.Status == MeasureStatus::Failed) {
          DevFailed = true;
        } else {
          C.compute(M.Seconds);
          Stats[static_cast<std::size_t>(It)]
              .ComputeTimes[static_cast<std::size_t>(Me)] = M.Seconds;
        }
      }
      if (Me == 0)
        for (int Q = 0; Q < P; ++Q)
          Stats[static_cast<std::size_t>(It)].Rows[static_cast<std::size_t>(
              Q)] = Current.Parts[static_cast<std::size_t>(Q)].Units;

      // Load balancing with the (rows, iteration-time) point, exactly the
      // paper's fupermod_balance_iterate call site. With a positive
      // threshold, the balancer only runs when the measured imbalance
      // warrants the redistribution cost (ref [6]).
      if (Options.Balance) {
        // Snapshot the local iteration duration before any collective:
        // the threshold allreduce below synchronises the clocks, which
        // would otherwise erase the per-rank timing signal.
        double MyIterTime = C.time() - IterStart;
        bool Rebalance = true;
        if (Options.RebalanceThreshold > 0.0) {
          double MaxT = C.allreduceValue(MyIterTime, ReduceOp::Max);
          double MinT = C.allreduceValue(MyIterTime, ReduceOp::Min);
          // A hard failure anywhere overrides the threshold: the dead
          // rank's rows must move regardless of measured imbalance.
          double AnyFailed =
              C.allreduceValue(DevFailed ? 1.0 : 0.0, ReduceOp::Max);
          Rebalance =
              AnyFailed > 0.0 ||
              (MaxT > 0.0 &&
               (MaxT - MinT) / MaxT > Options.RebalanceThreshold);
        }
        if (Rebalance) {
          balanceIterate(Ctx, C, C.time() - MyIterTime, DevFailed);
          if (Me == 0)
            ++RebalanceCount;
        }
      }

      // Exchange solution fragments (by the distribution used to compute
      // them) and evaluate convergence identically on every rank.
      // Ring allgather: each solution fragment crosses every link once,
      // the cheaper choice for these payloads.
      std::vector<double> XNew =
          C.allgathervRing(std::span<const double>(XNewLocal));
      assert(static_cast<int>(XNew.size()) == N &&
             "lost solution entries in allgather");
      double Error = 0.0;
      for (int I = 0; I < N; ++I)
        Error = std::max(Error, std::fabs(XNew[static_cast<std::size_t>(I)] -
                                          X[static_cast<std::size_t>(I)]));
      X = XNew;
      if (Me == 0)
        Stats[static_cast<std::size_t>(It)].Error = Error;

      // Redistribute rows of A and entries of b to the new distribution.
      const Dist &Next = Ctx.dist();
      if (Options.Balance && Next.relativeChange(Current) > 0.0) {
        std::vector<std::int64_t> OldStarts = Starts;
        std::vector<std::int64_t> NewStarts = rowStarts(Next);
        std::int64_t NewStart = NewStarts[static_cast<std::size_t>(Me)];
        std::int64_t NewRows = Next.Parts[static_cast<std::size_t>(Me)].Units;
        std::vector<double> NewA(static_cast<std::size_t>(NewRows) *
                                 static_cast<std::size_t>(N));
        std::vector<double> NewB(static_cast<std::size_t>(NewRows));

        auto CopyRows = [&](std::int64_t From, std::int64_t To,
                            const double *SrcA, const double *SrcB,
                            std::int64_t Count) {
          std::copy(SrcA, SrcA + Count * N,
                    NewA.begin() + (To - NewStart) * N);
          std::copy(SrcB, SrcB + Count, NewB.begin() + (To - NewStart));
          (void)From;
        };

        // Send my old rows that now belong to others (buffered sends
        // first, then receives: deadlock-free).
        for (int Q = 0; Q < P; ++Q) {
          std::int64_t Lo = std::max(MyStart, NewStarts[Q]);
          std::int64_t Hi = std::min(MyStart + MyRows, NewStarts[Q + 1]);
          if (Lo >= Hi)
            continue;
          if (Q == Me) {
            CopyRows(Lo, Lo, &ARows[(Lo - MyStart) * N],
                     &BVals[Lo - MyStart], Hi - Lo);
            continue;
          }
          // One message: [A rows | b entries] of the overlap.
          std::vector<double> Payload(
              static_cast<std::size_t>(Hi - Lo) * (N + 1));
          std::copy(&ARows[(Lo - MyStart) * N], &ARows[(Hi - MyStart) * N],
                    Payload.begin());
          std::copy(&BVals[Lo - MyStart], &BVals[Hi - MyStart],
                    Payload.begin() + (Hi - Lo) * N);
          C.send<double>(Q, TagRedist, Payload);
        }
        // Receive the rows my new range takes over from others.
        for (int Q = 0; Q < P; ++Q) {
          if (Q == Me)
            continue;
          std::int64_t Lo = std::max(NewStart, OldStarts[Q]);
          std::int64_t Hi = std::min(NewStart + NewRows, OldStarts[Q + 1]);
          if (Lo >= Hi)
            continue;
          std::vector<double> Payload = C.recv<double>(Q, TagRedist);
          assert(Payload.size() ==
                     static_cast<std::size_t>(Hi - Lo) *
                         static_cast<std::size_t>(N + 1) &&
                 "unexpected redistribution payload size");
          CopyRows(Lo, Lo, Payload.data(), Payload.data() + (Hi - Lo) * N,
                   Hi - Lo);
        }

        ARows = std::move(NewA);
        BVals = std::move(NewB);
        Current = Next;
        Starts = std::move(NewStarts);
        MyStart = NewStart;
        MyRows = NewRows;
      }

      if (Error <= Options.Tolerance) {
        ++It;
        Converged = true;
        break;
      }
    }

    if (Me == 0) {
      IterationsDone = It;
      for (int Q = 0; Q < P; ++Q)
        if (Ctx.isExcluded(Q))
          FailedRanks.push_back(Q);
      Solution = X;
      for (int Row = 0; Row < N; ++Row) {
        double Sum = -jacobiRhsEntry(N, Row);
        for (int Col = 0; Col < N; ++Col)
          Sum += jacobiMatrixEntry(N, Row, Col) *
                 X[static_cast<std::size_t>(Col)];
        Residual = std::max(Residual, std::fabs(Sum));
      }
    }
  };

  SpmdResult Run = runSpmd(P, Body, Platform.makeCostModel());

  JacobiReport Report;
  Stats.resize(static_cast<std::size_t>(IterationsDone));
  Report.Iterations = std::move(Stats);
  Report.Makespan = Run.makespan();
  Report.Converged = Converged;
  Report.Rebalances = RebalanceCount;
  Report.Solution = std::move(Solution);
  Report.Residual = Residual;
  Report.FailedRanks = std::move(FailedRanks);
  return Report;
}
