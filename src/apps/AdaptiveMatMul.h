//===-- apps/AdaptiveMatMul.h - dynamic 2D matmul partitioning --*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic 2D partitioning of matrix multiplication (the approach the
/// paper's ref [19] extends FPMs to): the application runs repeatedly
/// (e.g. an outer iteration of a solver); after each round, the measured
/// per-device computation times feed partial performance models, the
/// relative speeds are re-estimated, and the column-based 2D layout is
/// rebuilt — no a-priori model construction, the application adapts
/// itself round over round.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_APPS_ADAPTIVEMATMUL_H
#define FUPERMOD_APPS_ADAPTIVEMATMUL_H

#include "apps/MatMul.h"

#include <string>

namespace fupermod {

/// Parameters of an adaptive multi-round matmul run.
struct AdaptiveMatMulOptions {
  /// Matrices are NBlocks x NBlocks blocks.
  int NBlocks = 16;
  /// Block edge b.
  int BlockSize = 8;
  /// Number of application rounds (each is one full multiplication).
  int Rounds = 6;
  /// Partitioning algorithm used between rounds.
  std::string Algorithm = "geometric";
  /// Partial-model kind.
  std::string ModelKind = "piecewise";
  /// Verify the final round's product against a serial GEMM.
  bool VerifyLastRound = true;
  /// Passed through to every round's MatMulOptions (zero-copy pivot
  /// fan-out, comm/compute overlap, multithreaded GEMM).
  bool ZeroCopy = true;
  bool Overlap = false;
  unsigned Threads = 1;
};

/// Outcome of an adaptive run.
struct AdaptiveMatMulReport {
  /// Virtual makespan of each round.
  std::vector<double> RoundMakespans;
  /// Block counts per rank per round (layout areas).
  std::vector<std::vector<long long>> RoundAreas;
  /// Verification error of the final round (0 when disabled).
  double MaxError = 0.0;
  /// Non-empty when the run could not start (e.g. an unknown algorithm
  /// or model-kind name); the diagnostic lists the registered names.
  std::string Error;
};

/// Runs \p Options.Rounds multiplications, rebuilding the 2D layout from
/// runtime measurements between rounds.
AdaptiveMatMulReport runAdaptiveMatMul(const Cluster &Platform,
                                       const AdaptiveMatMulOptions &Options);

} // namespace fupermod

#endif // FUPERMOD_APPS_ADAPTIVEMATMUL_H
