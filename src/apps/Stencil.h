//===-- apps/Stencil.h - 2D heat stencil with balancing ---------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A third data-parallel use case, from the application class the paper's
/// introduction motivates ("computer simulations, such as computational
/// fluid dynamics"): an explicit 2D Jacobi/heat stencil. Interior rows of
/// the grid are distributed over the heterogeneous devices as contiguous
/// bands; every iteration performs a halo exchange with the band
/// neighbours (point-to-point, unlike the matmul/Jacobi collectives),
/// sweeps the band with the 5-point stencil, and optionally rebalances
/// the band heights with the dynamic load balancer, migrating grid rows
/// between devices.
///
/// One computation unit = one grid row of Cols cells.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_APPS_STENCIL_H
#define FUPERMOD_APPS_STENCIL_H

#include "core/Partition.h"
#include "sim/Cluster.h"

#include <string>
#include <vector>

namespace fupermod {

/// Parameters of one stencil run.
struct StencilOptions {
  /// Grid height (including the two fixed boundary rows).
  int Rows = 130;
  /// Grid width (first/last columns fixed).
  int Cols = 64;
  /// Number of sweeps.
  int Iterations = 30;
  /// Rebalance band heights at runtime.
  bool Balance = true;
  /// Rebalance only above this measured imbalance (0 = always).
  double RebalanceThreshold = 0.0;
  /// Partitioning algorithm used by the balancer.
  std::string Algorithm = "geometric";
  /// Partial-model kind used by the balancer.
  std::string ModelKind = "piecewise";
};

/// Per-iteration record.
struct StencilIteration {
  /// Virtual compute time of each rank.
  std::vector<double> ComputeTimes;
  /// Interior rows held by each rank.
  std::vector<std::int64_t> Rows;
};

/// Outcome of one stencil run.
struct StencilReport {
  std::vector<StencilIteration> Iterations;
  /// Virtual completion time of the run.
  double Makespan = 0.0;
  /// Final grid, assembled on rank 0 (row-major Rows x Cols).
  std::vector<double> Grid;
  /// Largest |parallel - serial| cell difference.
  double MaxError = 0.0;
  /// Total halo rows sent between ranks.
  long long HaloRowsSent = 0;
  /// Iterations in which the balancer ran.
  int Rebalances = 0;
  /// Non-empty when the run could not start (e.g. an unknown algorithm
  /// or model-kind name); the diagnostic lists the registered names.
  std::string Error;
};

/// Runs the stencil on the given simulated platform and verifies the
/// final grid against a serial sweep.
StencilReport runStencil(const Cluster &Platform,
                         const StencilOptions &Options);

/// Deterministic initial grid value at (\p Row, \p Col) for a grid of
/// \p Rows x \p Cols (boundary cells keep this value forever).
double stencilInitial(int Rows, int Cols, int Row, int Col);

} // namespace fupermod

#endif // FUPERMOD_APPS_STENCIL_H
