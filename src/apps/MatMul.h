//===-- apps/MatMul.h - Heterogeneous parallel matmul -----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heterogeneous parallel matrix multiplication (paper Section 4.1,
/// Fig. 1(a)): square matrices of N x N blocks (blocking factor b) are
/// partitioned over processes as 2D rectangles; at iteration k the pivot
/// block column of A and pivot block row of B are communicated to the
/// processes whose rectangles intersect them, and every process updates
/// its C rectangle with one packed GEMM.
///
/// The computation is performed for real (block GEMMs on real data, so
/// the result can be verified against a serial product), while per-rank
/// computation *cost* is charged to the virtual clock from the simulated
/// device profiles, and communication is costed by the mpp runtime.
///
/// Three independent optimisations are switchable per run, and all of
/// them leave the result matrix bit-identical to the serial schedule:
///  - ZeroCopy: pivot fan-out enqueues one shared payload per receiver
///    instead of deep-copying the block per destination;
///  - Overlap: step k+1's pivots are sent and their receives posted
///    before step k's GEMM, so the transfer hides behind compute
///    (double-buffered pipeline on nonblocking receives);
///  - Threads: the per-step GEMM runs as gemmParallel row bands, with
///    virtual compute time scaled by the modelled thread speedup.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_APPS_MATMUL_H
#define FUPERMOD_APPS_MATMUL_H

#include "apps/MatrixPartition2D.h"
#include "mpp/Group.h"
#include "sim/Cluster.h"

#include <cstdint>
#include <vector>

namespace fupermod {

/// Parameters of one parallel matmul run.
struct MatMulOptions {
  /// Matrices are NBlocks x NBlocks blocks.
  int NBlocks = 8;
  /// Block edge b (a block is b x b doubles).
  int BlockSize = 8;
  /// Gather the product on rank 0 and compare against a serial GEMM.
  bool Verify = true;
  /// Share pivot payloads across receivers instead of copying per send.
  bool ZeroCopy = true;
  /// Prefetch step k+1's pivots (irecv) while step k's GEMM runs.
  bool Overlap = false;
  /// GEMM threads per rank (> 1 uses gemmParallel and scales the charged
  /// compute time by gemmThreadSpeedup).
  unsigned Threads = 1;
};

/// Outcome of one parallel matmul run.
struct MatMulReport {
  /// Virtual completion time of the whole run.
  double Makespan = 0.0;
  /// Per-rank total virtual computation time.
  std::vector<double> ComputeTimes;
  /// Number of b x b blocks sent over links (per receiver; independent of
  /// ZeroCopy, which changes the copies, not the messages).
  long long BlocksCommunicated = 0;
  /// Largest per-rank virtual time spent stalled in pivot receives.
  double MaxIdleTime = 0.0;
  /// FNV-1a hash of every rank's C rectangle bytes, folded in rank
  /// order. Equal hashes across option combinations prove bit-identical
  /// results.
  std::uint64_t ResultHash = 0;
  /// World communication counters for the whole run.
  CommStatsSnapshot Comm;
  /// Largest |parallel - serial| element difference (0 when Verify off).
  double MaxError = 0.0;
};

/// Runs the parallel multiplication on the given cluster; \p Rects (one
/// per rank) must tile the NBlocks grid.
MatMulReport runParallelMatMul(const Cluster &Platform,
                               std::span<const GridRect> Rects,
                               const MatMulOptions &Options);

} // namespace fupermod

#endif // FUPERMOD_APPS_MATMUL_H
