//===-- apps/MatMul.h - Heterogeneous parallel matmul -----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heterogeneous parallel matrix multiplication (paper Section 4.1,
/// Fig. 1(a)): square matrices of N x N blocks (blocking factor b) are
/// partitioned over processes as 2D rectangles; at iteration k the pivot
/// block column of A and pivot block row of B are communicated to the
/// processes whose rectangles intersect them, and every process updates
/// its C rectangle with one GEMM per owned block.
///
/// The computation is performed for real (block GEMMs on real data, so
/// the result can be verified against a serial product), while per-rank
/// computation *cost* is charged to the virtual clock from the simulated
/// device profiles, and communication is costed by the mpp runtime.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_APPS_MATMUL_H
#define FUPERMOD_APPS_MATMUL_H

#include "apps/MatrixPartition2D.h"
#include "sim/Cluster.h"

#include <cstdint>
#include <vector>

namespace fupermod {

/// Parameters of one parallel matmul run.
struct MatMulOptions {
  /// Matrices are NBlocks x NBlocks blocks.
  int NBlocks = 8;
  /// Block edge b (a block is b x b doubles).
  int BlockSize = 8;
  /// Gather the product on rank 0 and compare against a serial GEMM.
  bool Verify = true;
};

/// Outcome of one parallel matmul run.
struct MatMulReport {
  /// Virtual completion time of the whole run.
  double Makespan = 0.0;
  /// Per-rank total virtual computation time.
  std::vector<double> ComputeTimes;
  /// Number of b x b blocks sent over links.
  long long BlocksCommunicated = 0;
  /// Largest |parallel - serial| element difference (0 when Verify off).
  double MaxError = 0.0;
};

/// Runs the parallel multiplication on the given cluster; \p Rects (one
/// per rank) must tile the NBlocks grid.
MatMulReport runParallelMatMul(const Cluster &Platform,
                               std::span<const GridRect> Rects,
                               const MatMulOptions &Options);

} // namespace fupermod

#endif // FUPERMOD_APPS_MATMUL_H
