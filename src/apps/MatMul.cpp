//===-- apps/MatMul.cpp - Heterogeneous parallel matmul -------------------===//

#include "apps/MatMul.h"

#include "blas/Gemm.h"
#include "mpp/Runtime.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

namespace {

enum : int {
  TagA = 1 << 20,
  TagB = 1 << 21,
};

/// Deterministic content of one b x b block of matrix \p MatId at block
/// coordinates (\p Row, \p Col); any rank can generate any block, so
/// ownership never affects the numerical result.
std::vector<double> makeBlock(int MatId, int Row, int Col, int B) {
  std::vector<double> Block(static_cast<std::size_t>(B) *
                            static_cast<std::size_t>(B));
  std::uint64_t Seed = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                           (MatId * 1048573 + Row) * 1048573 + Col + 1);
  fillDeterministic(Block, Seed);
  return Block;
}

} // namespace

MatMulReport fupermod::runParallelMatMul(const Cluster &Platform,
                                         std::span<const GridRect> Rects,
                                         const MatMulOptions &Options) {
  int P = Platform.size();
  int N = Options.NBlocks;
  int B = Options.BlockSize;
  assert(static_cast<int>(Rects.size()) == P &&
         "one rectangle per rank expected");
  assert(tilesGrid(Rects, N) && "rectangles must tile the block grid");
  assert(N > 0 && N < 1024 && "block grid too large for the tag scheme");

  // Owner lookup for every block of the grid.
  std::vector<int> OwnerOf(static_cast<std::size_t>(N) *
                               static_cast<std::size_t>(N),
                           -1);
  for (const GridRect &R : Rects)
    for (int Col = R.X; Col < R.X + R.W; ++Col)
      for (int Row = R.Y; Row < R.Y + R.H; ++Row)
        OwnerOf[static_cast<std::size_t>(Row) * static_cast<std::size_t>(N) +
                static_cast<std::size_t>(Col)] = R.Owner;

  std::vector<double> ComputeTimes(static_cast<std::size_t>(P), 0.0);
  std::vector<double> LoopEndTimes(static_cast<std::size_t>(P), 0.0);
  std::vector<long long> SendCounts(static_cast<std::size_t>(P), 0);
  double MaxError = 0.0;

  auto Body = [&](Comm &C) {
    int Me = C.rank();
    const GridRect R = Rects[static_cast<std::size_t>(Me)];
    SimDevice Dev = Platform.makeDevice(Me);
    std::size_t BB = static_cast<std::size_t>(B) * static_cast<std::size_t>(B);

    // Owned storage: A and B are partitioned identically to C.
    auto LocalIndex = [&](int Col, int Row) {
      return static_cast<std::size_t>(Row - R.Y) *
                 static_cast<std::size_t>(R.W) +
             static_cast<std::size_t>(Col - R.X);
    };
    std::vector<std::vector<double>> ABlocks(
        static_cast<std::size_t>(R.area()));
    std::vector<std::vector<double>> BBlocks(
        static_cast<std::size_t>(R.area()));
    std::vector<std::vector<double>> CBlocks(
        static_cast<std::size_t>(R.area()),
        std::vector<double>(BB, 0.0));
    for (int Col = R.X; Col < R.X + R.W; ++Col) {
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        ABlocks[LocalIndex(Col, Row)] = makeBlock(0, Row, Col, B);
        BBlocks[LocalIndex(Col, Row)] = makeBlock(1, Row, Col, B);
      }
    }

    std::vector<std::vector<double>> AFrag(static_cast<std::size_t>(R.H));
    std::vector<std::vector<double>> BFrag(static_cast<std::size_t>(R.W));
    long long Sent = 0;

    for (int K = 0; K < N; ++K) {
      // Send phase: pivot-column blocks of A go to every rank sharing the
      // block's row; pivot-row blocks of B to every rank sharing the
      // block's column. Buffered sends cannot deadlock.
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        if (!R.contains(K, Row))
          continue;
        const std::vector<double> &Block = ABlocks[LocalIndex(K, Row)];
        for (const GridRect &Q : Rects) {
          if (Q.Owner == Me || Q.W == 0 || Q.H == 0)
            continue;
          if (Row >= Q.Y && Row < Q.Y + Q.H) {
            C.send<double>(Q.Owner, TagA + K * N + Row, Block);
            ++Sent;
          }
        }
      }
      for (int Col = R.X; Col < R.X + R.W; ++Col) {
        if (!R.contains(Col, K))
          continue;
        const std::vector<double> &Block = BBlocks[LocalIndex(Col, K)];
        for (const GridRect &Q : Rects) {
          if (Q.Owner == Me || Q.W == 0 || Q.H == 0)
            continue;
          if (Col >= Q.X && Col < Q.X + Q.W) {
            C.send<double>(Q.Owner, TagB + K * N + Col, Block);
            ++Sent;
          }
        }
      }

      // Receive phase: collect the pivot fragments this rectangle needs.
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        if (R.contains(K, Row))
          AFrag[static_cast<std::size_t>(Row - R.Y)] =
              ABlocks[LocalIndex(K, Row)];
        else
          AFrag[static_cast<std::size_t>(Row - R.Y)] = C.recv<double>(
              OwnerOf[static_cast<std::size_t>(Row) *
                          static_cast<std::size_t>(N) +
                      static_cast<std::size_t>(K)],
              TagA + K * N + Row);
      }
      for (int Col = R.X; Col < R.X + R.W; ++Col) {
        if (R.contains(Col, K))
          BFrag[static_cast<std::size_t>(Col - R.X)] =
              BBlocks[LocalIndex(Col, K)];
        else
          BFrag[static_cast<std::size_t>(Col - R.X)] = C.recv<double>(
              OwnerOf[static_cast<std::size_t>(K) *
                          static_cast<std::size_t>(N) +
                      static_cast<std::size_t>(Col)],
              TagB + K * N + Col);
      }

      // Compute phase: real block updates for correctness, virtual time
      // from the device profile for cost (size = rectangle area in block
      // updates, the kernel's computation unit).
      for (int Col = R.X; Col < R.X + R.W; ++Col)
        for (int Row = R.Y; Row < R.Y + R.H; ++Row)
          gemmNaive(static_cast<std::size_t>(B), static_cast<std::size_t>(B),
                    static_cast<std::size_t>(B),
                    AFrag[static_cast<std::size_t>(Row - R.Y)],
                    BFrag[static_cast<std::size_t>(Col - R.X)],
                    CBlocks[LocalIndex(Col, Row)]);
      if (R.area() > 0) {
        double T = Dev.measureTime(static_cast<double>(R.area()));
        C.compute(T);
        ComputeTimes[static_cast<std::size_t>(Me)] += T;
      }
    }

    LoopEndTimes[static_cast<std::size_t>(Me)] = C.time();
    SendCounts[static_cast<std::size_t>(Me)] = Sent;

    if (!Options.Verify)
      return;

    // Verification: serialise owned C blocks as (col, row, data...) and
    // gather on rank 0, which checks against a serial product.
    std::vector<double> Packed;
    Packed.reserve(static_cast<std::size_t>(R.area()) * (2 + BB));
    for (int Col = R.X; Col < R.X + R.W; ++Col) {
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        Packed.push_back(static_cast<double>(Col));
        Packed.push_back(static_cast<double>(Row));
        const std::vector<double> &Blk = CBlocks[LocalIndex(Col, Row)];
        Packed.insert(Packed.end(), Blk.begin(), Blk.end());
      }
    }
    std::vector<double> All = C.gatherv(std::span<const double>(Packed), 0);
    if (Me != 0)
      return;

    std::size_t NB = static_cast<std::size_t>(N) * static_cast<std::size_t>(B);
    std::vector<double> CFull(NB * NB, 0.0);
    std::size_t Cursor = 0;
    while (Cursor < All.size()) {
      int Col = static_cast<int>(All[Cursor]);
      int Row = static_cast<int>(All[Cursor + 1]);
      Cursor += 2;
      for (int BR = 0; BR < B; ++BR)
        for (int BC = 0; BC < B; ++BC)
          CFull[(static_cast<std::size_t>(Row) * B + BR) * NB +
                static_cast<std::size_t>(Col) * B + BC] =
              All[Cursor + static_cast<std::size_t>(BR) * B + BC];
      Cursor += BB;
    }

    std::vector<double> AFull(NB * NB), BFull(NB * NB),
        Ref(NB * NB, 0.0);
    for (int Row = 0; Row < N; ++Row) {
      for (int Col = 0; Col < N; ++Col) {
        std::vector<double> BlkA = makeBlock(0, Row, Col, B);
        std::vector<double> BlkB = makeBlock(1, Row, Col, B);
        for (int BR = 0; BR < B; ++BR) {
          for (int BC = 0; BC < B; ++BC) {
            std::size_t Dst = (static_cast<std::size_t>(Row) * B + BR) * NB +
                              static_cast<std::size_t>(Col) * B + BC;
            AFull[Dst] = BlkA[static_cast<std::size_t>(BR) * B + BC];
            BFull[Dst] = BlkB[static_cast<std::size_t>(BR) * B + BC];
          }
        }
      }
    }
    gemmBlocked(NB, NB, NB, AFull, BFull, Ref);
    MaxError = maxAbsDiff(CFull, Ref);
  };

  runSpmd(P, Body, Platform.makeCostModel());

  MatMulReport Report;
  Report.ComputeTimes = ComputeTimes;
  for (double T : LoopEndTimes)
    Report.Makespan = std::max(Report.Makespan, T);
  for (long long S : SendCounts)
    Report.BlocksCommunicated += S;
  Report.MaxError = MaxError;
  return Report;
}
