//===-- apps/MatMul.cpp - Heterogeneous parallel matmul -------------------===//

#include "apps/MatMul.h"

#include "blas/Gemm.h"
#include "mpp/Runtime.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <cmath>
#include <cstring>

using namespace fupermod;

namespace {

enum : int {
  TagA = 1 << 20,
  TagB = 1 << 21,
};

/// Deterministic content of one b x b block of matrix \p MatId at block
/// coordinates (\p Row, \p Col); any rank can generate any block, so
/// ownership never affects the numerical result.
std::vector<double> makeBlock(int MatId, int Row, int Col, int B) {
  std::vector<double> Block(static_cast<std::size_t>(B) *
                            static_cast<std::size_t>(B));
  std::uint64_t Seed = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                           (MatId * 1048573 + Row) * 1048573 + Col + 1);
  fillDeterministic(Block, Seed);
  return Block;
}

/// FNV-1a over a byte range, continuing from \p Hash.
std::uint64_t fnv1a(std::uint64_t Hash, std::span<const std::byte> Data) {
  for (std::byte Byte : Data) {
    Hash ^= static_cast<std::uint64_t>(Byte);
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

constexpr std::uint64_t Fnv1aBasis = 0xcbf29ce484222325ull;

/// Pivot fragments of one pipeline step: the A pivot-column blocks this
/// rectangle's rows need and the B pivot-row blocks its columns need.
/// Own blocks are filled immediately; remote ones either arrive through
/// a blocking receive (serial schedule) or are posted as nonblocking
/// requests and collected by waitStep (overlap pipeline).
struct StepBuffers {
  std::vector<Payload> AFrag;
  std::vector<Payload> BFrag;
  std::vector<RecvRequest> AReq;
  std::vector<RecvRequest> BReq;
};

} // namespace

MatMulReport fupermod::runParallelMatMul(const Cluster &Platform,
                                         std::span<const GridRect> Rects,
                                         const MatMulOptions &Options) {
  int P = Platform.size();
  int N = Options.NBlocks;
  int B = Options.BlockSize;
  assert(static_cast<int>(Rects.size()) == P &&
         "one rectangle per rank expected");
  assert(tilesGrid(Rects, N) && "rectangles must tile the block grid");
  assert(N > 0 && N < 1024 && "block grid too large for the tag scheme");

  // Owner lookup for every block of the grid.
  std::vector<int> OwnerOf(static_cast<std::size_t>(N) *
                               static_cast<std::size_t>(N),
                           -1);
  for (const GridRect &R : Rects)
    for (int Col = R.X; Col < R.X + R.W; ++Col)
      for (int Row = R.Y; Row < R.Y + R.H; ++Row)
        OwnerOf[static_cast<std::size_t>(Row) * static_cast<std::size_t>(N) +
                static_cast<std::size_t>(Col)] = R.Owner;

  std::vector<double> ComputeTimes(static_cast<std::size_t>(P), 0.0);
  std::vector<double> LoopEndTimes(static_cast<std::size_t>(P), 0.0);
  std::vector<double> IdleTimes(static_cast<std::size_t>(P), 0.0);
  std::vector<long long> SendCounts(static_cast<std::size_t>(P), 0);
  std::vector<std::uint64_t> RankHashes(static_cast<std::size_t>(P),
                                        Fnv1aBasis);
  double MaxError = 0.0;

  auto Body = [&](Comm &C) {
    int Me = C.rank();
    const GridRect R = Rects[static_cast<std::size_t>(Me)];
    SimDevice Dev = Platform.makeDevice(Me);
    std::size_t BB = static_cast<std::size_t>(B) * static_cast<std::size_t>(B);
    auto H = static_cast<std::size_t>(R.H);
    auto W = static_cast<std::size_t>(R.W);
    std::size_t HB = H * static_cast<std::size_t>(B);
    std::size_t WB = W * static_cast<std::size_t>(B);

    std::unique_ptr<ThreadPool> Pool;
    if (Options.Threads > 1)
      Pool = std::make_unique<ThreadPool>(Options.Threads - 1);
    double ThreadSpeedup = gemmThreadSpeedup(std::max(1u, Options.Threads));

    // Owned storage: A and B are partitioned identically to C. Blocks
    // live in shared payloads so a pivot fan-out can enqueue the same
    // buffer for every receiver.
    auto LocalIndex = [&](int Col, int Row) {
      return static_cast<std::size_t>(Row - R.Y) * W +
             static_cast<std::size_t>(Col - R.X);
    };
    std::vector<Payload> ABlocks(H * W);
    std::vector<Payload> BBlocks(H * W);
    for (int Col = R.X; Col < R.X + R.W; ++Col) {
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        ABlocks[LocalIndex(Col, Row)] =
            Payload::adopt(makeBlock(0, Row, Col, B));
        BBlocks[LocalIndex(Col, Row)] =
            Payload::adopt(makeBlock(1, Row, Col, B));
      }
    }
    // The C rectangle is one contiguous (H*B) x (W*B) row-major matrix,
    // updated by a single packed GEMM per step.
    std::vector<double> CRect(HB * WB, 0.0);
    std::vector<double> APack(HB * static_cast<std::size_t>(B));
    std::vector<double> BPack(static_cast<std::size_t>(B) * WB);
    long long Sent = 0;

    auto SendBlock = [&](int Dst, int Tag, const Payload &Block) {
      if (Options.ZeroCopy)
        C.sendPayload(Dst, Tag, Block);
      else
        C.send<double>(Dst, Tag, Block.as<double>());
      ++Sent;
    };

    // Send phase of step K: pivot-column blocks of A go to every rank
    // sharing the block's row; pivot-row blocks of B to every rank
    // sharing the block's column. Buffered sends cannot deadlock.
    auto SendPivots = [&](int K) {
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        if (!R.contains(K, Row))
          continue;
        const Payload &Block = ABlocks[LocalIndex(K, Row)];
        for (const GridRect &Q : Rects) {
          if (Q.Owner == Me || Q.W == 0 || Q.H == 0)
            continue;
          if (Row >= Q.Y && Row < Q.Y + Q.H)
            SendBlock(Q.Owner, TagA + K * N + Row, Block);
        }
      }
      for (int Col = R.X; Col < R.X + R.W; ++Col) {
        if (!R.contains(Col, K))
          continue;
        const Payload &Block = BBlocks[LocalIndex(Col, K)];
        for (const GridRect &Q : Rects) {
          if (Q.Owner == Me || Q.W == 0 || Q.H == 0)
            continue;
          if (Col >= Q.X && Col < Q.X + Q.W)
            SendBlock(Q.Owner, TagB + K * N + Col, Block);
        }
      }
    };

    auto AOwner = [&](int K, int Row) {
      return OwnerOf[static_cast<std::size_t>(Row) *
                         static_cast<std::size_t>(N) +
                     static_cast<std::size_t>(K)];
    };
    auto BOwner = [&](int K, int Col) {
      return OwnerOf[static_cast<std::size_t>(K) *
                         static_cast<std::size_t>(N) +
                     static_cast<std::size_t>(Col)];
    };

    auto RecvBlock = [&](int Src, int Tag) {
      if (Options.ZeroCopy)
        return C.recvPayload(Src, Tag);
      return Payload::adopt(C.recv<double>(Src, Tag));
    };

    // Serial-schedule receive phase of step K: collect the pivot
    // fragments with blocking receives, rows then columns, in order.
    auto RecvStep = [&](int K, StepBuffers &Buf) {
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        auto I = static_cast<std::size_t>(Row - R.Y);
        if (R.contains(K, Row)) {
          Buf.AFrag[I] = ABlocks[LocalIndex(K, Row)];
        } else {
          double T0 = C.time();
          Buf.AFrag[I] = RecvBlock(AOwner(K, Row), TagA + K * N + Row);
          IdleTimes[static_cast<std::size_t>(Me)] += C.time() - T0;
        }
      }
      for (int Col = R.X; Col < R.X + R.W; ++Col) {
        auto I = static_cast<std::size_t>(Col - R.X);
        if (R.contains(Col, K)) {
          Buf.BFrag[I] = BBlocks[LocalIndex(Col, K)];
        } else {
          double T0 = C.time();
          Buf.BFrag[I] = RecvBlock(BOwner(K, Col), TagB + K * N + Col);
          IdleTimes[static_cast<std::size_t>(Me)] += C.time() - T0;
        }
      }
    };

    // Overlap pipeline: post nonblocking receives for step K's remote
    // fragments (own blocks are filled immediately)...
    auto PostStep = [&](int K, StepBuffers &Buf) {
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        auto I = static_cast<std::size_t>(Row - R.Y);
        if (R.contains(K, Row))
          Buf.AFrag[I] = ABlocks[LocalIndex(K, Row)];
        else
          Buf.AReq[I] = C.irecv(AOwner(K, Row), TagA + K * N + Row);
      }
      for (int Col = R.X; Col < R.X + R.W; ++Col) {
        auto I = static_cast<std::size_t>(Col - R.X);
        if (R.contains(Col, K))
          Buf.BFrag[I] = BBlocks[LocalIndex(Col, K)];
        else
          Buf.BReq[I] = C.irecv(BOwner(K, Col), TagB + K * N + Col);
      }
    };

    // ... and complete them after the previous step's GEMM, so the
    // transfers hide behind compute. Clock deltas across the waits are
    // the true stall time.
    auto WaitStep = [&](StepBuffers &Buf) {
      for (std::size_t I = 0; I < H; ++I) {
        if (!Buf.AReq[I].pending())
          continue;
        double T0 = C.time();
        Buf.AFrag[I] = Buf.AReq[I].wait();
        IdleTimes[static_cast<std::size_t>(Me)] += C.time() - T0;
      }
      for (std::size_t I = 0; I < W; ++I) {
        if (!Buf.BReq[I].pending())
          continue;
        double T0 = C.time();
        Buf.BFrag[I] = Buf.BReq[I].wait();
        IdleTimes[static_cast<std::size_t>(Me)] += C.time() - T0;
      }
    };

    // Compute phase of one step: pack the fragments into contiguous
    // operands and run one GEMM for the whole rectangle,
    //   CRect (H*B x W*B) += APack (H*B x B) * BPack (B x W*B).
    // Every C element still accumulates over the same l = 0..B-1 in
    // ascending order, so the result is bit-identical to per-block
    // updates — and identical across the serial, blocked, and row-banded
    // parallel kernels. Virtual cost comes from the device profile,
    // scaled by the modelled multithreaded-GEMM speedup.
    auto ComputeStep = [&](StepBuffers &Buf) {
      if (H == 0 || W == 0)
        return;
      for (std::size_t I = 0; I < H; ++I)
        std::memcpy(APack.data() + I * BB, Buf.AFrag[I].as<double>().data(),
                    BB * sizeof(double));
      for (std::size_t L = 0; L < static_cast<std::size_t>(B); ++L)
        for (std::size_t J = 0; J < W; ++J)
          std::memcpy(BPack.data() + L * WB + J * static_cast<std::size_t>(B),
                      Buf.BFrag[J].as<double>().data() +
                          L * static_cast<std::size_t>(B),
                      static_cast<std::size_t>(B) * sizeof(double));
      if (Pool)
        gemmParallel(HB, WB, static_cast<std::size_t>(B), APack, BPack,
                     CRect, *Pool);
      else
        gemmBlocked(HB, WB, static_cast<std::size_t>(B), APack, BPack,
                    CRect);
      double T =
          Dev.measureTime(static_cast<double>(R.area())) / ThreadSpeedup;
      C.compute(T);
      ComputeTimes[static_cast<std::size_t>(Me)] += T;
    };

    StepBuffers Bufs[2];
    for (StepBuffers &Buf : Bufs) {
      Buf.AFrag.resize(H);
      Buf.BFrag.resize(W);
      Buf.AReq.resize(H);
      Buf.BReq.resize(W);
    }

    if (!Options.Overlap) {
      // Serial schedule: send, receive, compute, step by step.
      for (int K = 0; K < N; ++K) {
        SendPivots(K);
        RecvStep(K, Bufs[0]);
        ComputeStep(Bufs[0]);
      }
    } else {
      // Double-buffered pipeline: step K+1's pivots are in flight (and
      // its receives posted) while step K's GEMM runs.
      SendPivots(0);
      PostStep(0, Bufs[0]);
      WaitStep(Bufs[0]);
      for (int K = 0; K < N; ++K) {
        StepBuffers &Cur = Bufs[static_cast<std::size_t>(K) % 2];
        StepBuffers &Next = Bufs[static_cast<std::size_t>(K + 1) % 2];
        if (K + 1 < N) {
          SendPivots(K + 1);
          PostStep(K + 1, Next);
        }
        ComputeStep(Cur);
        if (K + 1 < N)
          WaitStep(Next);
      }
    }

    LoopEndTimes[static_cast<std::size_t>(Me)] = C.time();
    SendCounts[static_cast<std::size_t>(Me)] = Sent;
    RankHashes[static_cast<std::size_t>(Me)] =
        fnv1a(Fnv1aBasis, std::as_bytes(std::span<const double>(CRect)));

    if (!Options.Verify)
      return;

    // Verification: serialise owned C blocks as (col, row, data...) and
    // gather on rank 0, which checks against a serial product.
    std::vector<double> Packed;
    Packed.reserve(static_cast<std::size_t>(R.area()) * (2 + BB));
    for (int Col = R.X; Col < R.X + R.W; ++Col) {
      for (int Row = R.Y; Row < R.Y + R.H; ++Row) {
        Packed.push_back(static_cast<double>(Col));
        Packed.push_back(static_cast<double>(Row));
        auto R0 = static_cast<std::size_t>(Row - R.Y) *
                  static_cast<std::size_t>(B);
        auto C0 = static_cast<std::size_t>(Col - R.X) *
                  static_cast<std::size_t>(B);
        for (std::size_t BR = 0; BR < static_cast<std::size_t>(B); ++BR)
          Packed.insert(Packed.end(), CRect.begin() + ((R0 + BR) * WB + C0),
                        CRect.begin() +
                            ((R0 + BR) * WB + C0 +
                             static_cast<std::size_t>(B)));
      }
    }
    std::vector<double> All = C.gatherv(std::span<const double>(Packed), 0);
    if (Me != 0)
      return;

    std::size_t NB = static_cast<std::size_t>(N) * static_cast<std::size_t>(B);
    std::vector<double> CFull(NB * NB, 0.0);
    std::size_t Cursor = 0;
    while (Cursor < All.size()) {
      int Col = static_cast<int>(All[Cursor]);
      int Row = static_cast<int>(All[Cursor + 1]);
      Cursor += 2;
      for (int BR = 0; BR < B; ++BR)
        for (int BC = 0; BC < B; ++BC)
          CFull[(static_cast<std::size_t>(Row) * B + BR) * NB +
                static_cast<std::size_t>(Col) * B + BC] =
              All[Cursor + static_cast<std::size_t>(BR) * B + BC];
      Cursor += BB;
    }

    std::vector<double> AFull(NB * NB), BFull(NB * NB),
        Ref(NB * NB, 0.0);
    for (int Row = 0; Row < N; ++Row) {
      for (int Col = 0; Col < N; ++Col) {
        std::vector<double> BlkA = makeBlock(0, Row, Col, B);
        std::vector<double> BlkB = makeBlock(1, Row, Col, B);
        for (int BR = 0; BR < B; ++BR) {
          for (int BC = 0; BC < B; ++BC) {
            std::size_t Dst = (static_cast<std::size_t>(Row) * B + BR) * NB +
                              static_cast<std::size_t>(Col) * B + BC;
            AFull[Dst] = BlkA[static_cast<std::size_t>(BR) * B + BC];
            BFull[Dst] = BlkB[static_cast<std::size_t>(BR) * B + BC];
          }
        }
      }
    }
    gemmBlocked(NB, NB, NB, AFull, BFull, Ref);
    MaxError = maxAbsDiff(CFull, Ref);
  };

  SpmdResult Run = runSpmd(P, Body, Platform.makeCostModel());

  MatMulReport Report;
  Report.ComputeTimes = ComputeTimes;
  for (double T : LoopEndTimes)
    Report.Makespan = std::max(Report.Makespan, T);
  for (double T : IdleTimes)
    Report.MaxIdleTime = std::max(Report.MaxIdleTime, T);
  for (long long S : SendCounts)
    Report.BlocksCommunicated += S;
  std::uint64_t Hash = Fnv1aBasis;
  for (std::uint64_t RankHash : RankHashes) {
    std::uint64_t Bytes = RankHash;
    Hash = fnv1a(Hash, std::as_bytes(std::span<const std::uint64_t>(
                           &Bytes, 1)));
  }
  Report.ResultHash = Hash;
  Report.Comm = Run.Comm;
  Report.MaxError = MaxError;
  return Report;
}
