//===-- apps/Jacobi.h - Jacobi method with load balancing -------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's second use case (Section 4.4, Fig. 4): the Jacobi method
/// with rows of the system distributed over heterogeneous processes and
/// redistributed at runtime by the dynamic load balancer. Each iteration:
///
///   1. every process sweeps its rows (real arithmetic; virtual cost from
///      its device profile, one computation unit = one row),
///   2. the compute duration feeds `balanceIterate`, which updates the
///      partial FPMs and repartitions,
///   3. rows of A and entries of b migrate to match the new distribution,
///   4. the updated solution fragments are allgathered.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_APPS_JACOBI_H
#define FUPERMOD_APPS_JACOBI_H

#include "core/Partition.h"
#include "equalize/Policy.h"
#include "mpp/Group.h"
#include "sim/Cluster.h"

#include <string>
#include <vector>

namespace fupermod {

/// Parameters of one Jacobi run.
struct JacobiOptions {
  /// Number of equations/unknowns.
  int N = 256;
  /// Application iteration cap.
  int MaxIterations = 30;
  /// Stop when the largest |x_new - x_old| falls below this.
  double Tolerance = 1e-10;
  /// Rebalance the row distribution at runtime.
  bool Balance = true;
  /// Rebalance only when the relative imbalance of the measured
  /// iteration times, (max - min) / max, exceeds this threshold
  /// (0 = rebalance every iteration). The threshold criterion of the
  /// paper's dynamic load balancing algorithm (ref [6]) avoids paying
  /// redistribution cost for marginal gains.
  double RebalanceThreshold = 0.0;
  /// Partitioning algorithm used by the balancer.
  std::string Algorithm = "geometric";
  /// Partial-model kind used by the balancer.
  std::string ModelKind = "piecewise";
  /// Per-rebalance exponential down-weighting of old model points
  /// (1 = keep history forever). Values below 1 let the balancer track
  /// devices whose speed changes mid-run — e.g. an injected slowdown —
  /// instead of averaging the old and new regimes forever.
  double StalenessDecay = 1.0;
  /// Equalization policy. With a non-empty Policy (and Balance on), the
  /// loop takes the equalization path (BalancedLoop::balanceEqualized)
  /// instead of the legacy threshold test; empty keeps the historical
  /// balance() path bit for bit. Left empty, a platform spec carrying an
  /// `equalize` line still turns the subsystem on (Session::create
  /// adopts it).
  equalize::EqualizeConfig Equalize;
};

/// Per-iteration record of one Jacobi run.
struct JacobiIteration {
  /// Virtual compute time of each rank during this iteration.
  std::vector<double> ComputeTimes;
  /// Rows held by each rank during this iteration.
  std::vector<std::int64_t> Rows;
  /// Largest |x_new - x_old| after the iteration.
  double Error = 0.0;
};

/// Outcome of one Jacobi run.
struct JacobiReport {
  std::vector<JacobiIteration> Iterations;
  /// Virtual completion time of the run.
  double Makespan = 0.0;
  /// True when the tolerance was reached within the iteration cap.
  bool Converged = false;
  /// Number of iterations in which the balancer actually ran.
  int Rebalances = 0;
  /// Final solution vector (identical on all ranks; exposed for checks).
  std::vector<double> Solution;
  /// Infinity norm of A x - b for the returned solution.
  double Residual = 0.0;
  /// Ranks whose devices hard-failed during the run (excluded by the
  /// balancer; empty on a healthy run).
  std::vector<int> FailedRanks;
  /// Equalization-policy tallies (all zero on the legacy path).
  equalize::EqualizeStats Equalize;
  /// Communication counters of the run (redistribute/halo bytes plus the
  /// "equalize.*" named counters published by rank 0).
  CommStatsSnapshot Comm;
  /// Non-empty when the run could not start (e.g. an unknown algorithm
  /// or model-kind name); the diagnostic lists the registered names.
  std::string Error;
};

/// Runs the Jacobi method on the given simulated platform.
JacobiReport runJacobi(const Cluster &Platform, const JacobiOptions &Options);

/// Deterministic diagonally dominant test system: entry (\p Row, \p Col)
/// of A (diagonal = N, off-diagonal pseudo-random in [-0.5, 0.5]).
double jacobiMatrixEntry(int N, int Row, int Col);

/// Right-hand side entry \p Row of the test system.
double jacobiRhsEntry(int N, int Row);

} // namespace fupermod

#endif // FUPERMOD_APPS_JACOBI_H
