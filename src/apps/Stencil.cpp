//===-- apps/Stencil.cpp - 2D heat stencil with balancing -----------------===//

#include "apps/Stencil.h"

#include "engine/Balance.h"
#include "engine/Session.h"
#include "mpp/Runtime.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

namespace {

enum : int {
  TagHaloUp = (1 << 23) + 1, // My top row, going to the band above.
  TagHaloDown,               // My bottom row, going to the band below.
  TagMoveRows,
};

std::uint64_t mix(std::uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// One serial sweep of the 5-point stencil over the whole grid.
void serialSweep(std::vector<double> &U, int Rows, int Cols) {
  std::vector<double> Next = U;
  for (int R = 1; R + 1 < Rows; ++R)
    for (int C = 1; C + 1 < Cols; ++C)
      Next[static_cast<std::size_t>(R) * Cols + C] =
          0.25 * (U[static_cast<std::size_t>(R - 1) * Cols + C] +
                  U[static_cast<std::size_t>(R + 1) * Cols + C] +
                  U[static_cast<std::size_t>(R) * Cols + C - 1] +
                  U[static_cast<std::size_t>(R) * Cols + C + 1]);
  U = std::move(Next);
}

} // namespace

double fupermod::stencilInitial(int Rows, int Cols, int Row, int Col) {
  // A hot top edge, cool bottom edge, and a deterministic speckle inside.
  if (Row == 0)
    return 100.0 + 10.0 * std::sin(0.3 * Col);
  if (Row == Rows - 1)
    return 0.0;
  if (Col == 0 || Col == Cols - 1)
    return 50.0;
  std::uint64_t H = mix(static_cast<std::uint64_t>(Row) * 69069u +
                        static_cast<std::uint64_t>(Col));
  return static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0) * 20.0;
}

StencilReport fupermod::runStencil(const Cluster &Platform,
                                   const StencilOptions &Options) {
  int P = Platform.size();
  int Rows = Options.Rows;
  int Cols = Options.Cols;
  assert(Rows >= 3 && Cols >= 3 && "grid too small for a stencil");
  const std::int64_t Interior = Rows - 2;

  // Repartitioning routes through one engine session; unknown
  // algorithm/model names become a diagnosable report error.
  engine::SessionConfig Cfg;
  Cfg.Platform = Platform;
  Cfg.ModelKind = Options.ModelKind;
  Cfg.Algorithm = Options.Algorithm;
  Result<std::unique_ptr<engine::Session>> SessionR =
      engine::Session::create(std::move(Cfg));
  if (!SessionR) {
    StencilReport Report;
    Report.Error = SessionR.error();
    return Report;
  }
  engine::Session &Engine = *SessionR.value();

  engine::BalancePolicy Policy;
  Policy.Enabled = Options.Balance;
  Policy.RebalanceThreshold = Options.RebalanceThreshold;

  std::vector<StencilIteration> Stats(
      static_cast<std::size_t>(Options.Iterations));
  for (auto &S : Stats) {
    S.ComputeTimes.assign(static_cast<std::size_t>(P), 0.0);
    S.Rows.assign(static_cast<std::size_t>(P), 0);
  }
  std::vector<double> FinalGrid;
  double MaxError = 0.0;
  std::vector<long long> HaloSent(static_cast<std::size_t>(P), 0);
  int Rebalances = 0;

  auto Body = [&](Comm &C) {
    int Me = C.rank();
    SimDevice Dev = Platform.makeDevice(Me);
    engine::BalancedLoop Loop = Engine.makeBalancedLoop(Interior, P);
    Dist Current = Loop.dist();
    std::vector<std::int64_t> Starts = engine::contiguousStarts(Current, 1);
    std::int64_t MyStart = Starts[static_cast<std::size_t>(Me)];
    std::int64_t MyRows = Current.Parts[static_cast<std::size_t>(Me)].Units;

    // Band storage: MyRows interior rows, row-major, width Cols.
    std::vector<double> Band(static_cast<std::size_t>(MyRows) *
                             static_cast<std::size_t>(Cols));
    for (std::int64_t R = 0; R < MyRows; ++R)
      for (int Col = 0; Col < Cols; ++Col)
        Band[static_cast<std::size_t>(R) * Cols + Col] = stencilInitial(
            Rows, Cols, static_cast<int>(MyStart + R), Col);

    auto OwnerOfRow = [&](std::int64_t Row) {
      for (int Q = 0; Q < P; ++Q)
        if (Row >= Starts[static_cast<std::size_t>(Q)] &&
            Row < Starts[static_cast<std::size_t>(Q) + 1])
          return Q;
      assert(false && "interior row has no owner");
      return -1;
    };

    for (int It = 0; It < Options.Iterations; ++It) {
      double IterStart = C.time();
      std::int64_t MyEnd = MyStart + MyRows;

      // Halo sends (buffered, deadlock-free): my top row to the band
      // ending at MyStart, my bottom row to the band starting at MyEnd.
      if (MyRows > 0) {
        for (int Q = 0; Q < P; ++Q) {
          if (Q == Me ||
              Current.Parts[static_cast<std::size_t>(Q)].Units == 0)
            continue;
          std::int64_t QStart = Starts[static_cast<std::size_t>(Q)];
          std::int64_t QEnd = Starts[static_cast<std::size_t>(Q) + 1];
          if (QEnd == MyStart) {
            C.send<double>(Q, TagHaloUp,
                           std::span<const double>(Band.data(), Cols));
            ++HaloSent[static_cast<std::size_t>(Me)];
          }
          if (QStart == MyEnd) {
            C.send<double>(
                Q, TagHaloDown,
                std::span<const double>(
                    Band.data() + (MyRows - 1) * Cols, Cols));
            ++HaloSent[static_cast<std::size_t>(Me)];
          }
        }
      }

      // Halo receives (or fixed boundary rows).
      std::vector<double> Above(static_cast<std::size_t>(Cols), 0.0);
      std::vector<double> Below(static_cast<std::size_t>(Cols), 0.0);
      if (MyRows > 0) {
        if (MyStart - 1 == 0) {
          for (int Col = 0; Col < Cols; ++Col)
            Above[static_cast<std::size_t>(Col)] =
                stencilInitial(Rows, Cols, 0, Col);
        } else {
          Above = C.recv<double>(OwnerOfRow(MyStart - 1), TagHaloDown);
        }
        if (MyEnd == Rows - 1) {
          for (int Col = 0; Col < Cols; ++Col)
            Below[static_cast<std::size_t>(Col)] =
                stencilInitial(Rows, Cols, Rows - 1, Col);
        } else {
          Below = C.recv<double>(OwnerOfRow(MyEnd), TagHaloUp);
        }
      }

      // Sweep the band (real arithmetic; edge columns stay fixed).
      if (MyRows > 0) {
        std::vector<double> Next = Band;
        for (std::int64_t R = 0; R < MyRows; ++R) {
          const double *Up =
              R == 0 ? Above.data() : &Band[(R - 1) * Cols];
          const double *Down =
              R == MyRows - 1 ? Below.data() : &Band[(R + 1) * Cols];
          const double *Mid = &Band[R * Cols];
          double *Out = &Next[R * Cols];
          for (int Col = 1; Col + 1 < Cols; ++Col)
            Out[Col] = 0.25 * (Up[Col] + Down[Col] + Mid[Col - 1] +
                               Mid[Col + 1]);
        }
        Band = std::move(Next);

        double T = Dev.measureTime(static_cast<double>(MyRows));
        C.compute(T);
        Stats[static_cast<std::size_t>(It)]
            .ComputeTimes[static_cast<std::size_t>(Me)] = T;
      }
      if (Me == 0)
        for (int Q = 0; Q < P; ++Q)
          Stats[static_cast<std::size_t>(It)]
              .Rows[static_cast<std::size_t>(Q)] =
              Current.Parts[static_cast<std::size_t>(Q)].Units;

      // Dynamic balancing, as in the Jacobi use case.
      if (Options.Balance) {
        if (Loop.balance(C, IterStart, Policy) && Me == 0)
          ++Rebalances;

        const Dist &Next = Loop.dist();
        if (Next.relativeChange(Current) > 0.0) {
          std::vector<std::int64_t> NewStarts =
              engine::contiguousStarts(Next, 1);
          std::int64_t NewStart = NewStarts[static_cast<std::size_t>(Me)];
          std::int64_t NewRows =
              Next.Parts[static_cast<std::size_t>(Me)].Units;
          std::vector<double> NewBand(static_cast<std::size_t>(NewRows) *
                                      static_cast<std::size_t>(Cols));
          engine::RangeCopier Copy;
          Copy.Pack = [&](std::int64_t Lo, std::int64_t Hi) {
            return std::vector<double>(
                &Band[(Lo - MyStart) * Cols],
                &Band[(Lo - MyStart) * Cols] +
                    static_cast<std::size_t>(Hi - Lo) * Cols);
          };
          Copy.Unpack = [&](std::int64_t Lo, [[maybe_unused]] std::int64_t Hi,
                            std::span<const double> Payload) {
            assert(Payload.size() == static_cast<std::size_t>(Hi - Lo) *
                                         static_cast<std::size_t>(Cols) &&
                   "unexpected band payload size");
            std::copy(Payload.begin(), Payload.end(),
                      NewBand.begin() + (Lo - NewStart) * Cols);
          };
          Copy.Keep = [&](std::int64_t Lo, std::int64_t Hi) {
            std::copy(&Band[(Lo - MyStart) * Cols],
                      &Band[(Hi - MyStart) * Cols],
                      NewBand.begin() + (Lo - NewStart) * Cols);
          };
          engine::redistributeContiguous(C, Starts, NewStarts, TagMoveRows,
                                         Copy);
          Band = std::move(NewBand);
          Current = Next;
          Starts = std::move(NewStarts);
          MyStart = NewStart;
          MyRows = NewRows;
        }
      }
    }

    // Assemble the final grid on rank 0 and verify against a serial run.
    std::vector<double> All =
        C.gatherv(std::span<const double>(Band), 0);
    if (Me != 0)
      return;
    std::vector<double> Grid(static_cast<std::size_t>(Rows) *
                             static_cast<std::size_t>(Cols));
    for (int Col = 0; Col < Cols; ++Col) {
      Grid[static_cast<std::size_t>(Col)] =
          stencilInitial(Rows, Cols, 0, Col);
      Grid[static_cast<std::size_t>(Rows - 1) * Cols + Col] =
          stencilInitial(Rows, Cols, Rows - 1, Col);
    }
    // gatherv concatenates bands in rank order = global row order.
    std::copy(All.begin(), All.end(),
              Grid.begin() + static_cast<std::size_t>(Cols));

    std::vector<double> Ref(Grid.size());
    for (int R = 0; R < Rows; ++R)
      for (int Col = 0; Col < Cols; ++Col)
        Ref[static_cast<std::size_t>(R) * Cols + Col] =
            stencilInitial(Rows, Cols, R, Col);
    for (int It = 0; It < Options.Iterations; ++It)
      serialSweep(Ref, Rows, Cols);
    for (std::size_t I = 0; I < Grid.size(); ++I)
      MaxError = std::max(MaxError, std::fabs(Grid[I] - Ref[I]));
    FinalGrid = std::move(Grid);
  };

  SpmdResult Run = Engine.execute(P, Body).value();

  StencilReport Report;
  Report.Iterations = std::move(Stats);
  Report.Makespan = Run.makespan();
  Report.Grid = std::move(FinalGrid);
  Report.MaxError = MaxError;
  for (long long H : HaloSent)
    Report.HaloRowsSent += H;
  Report.Rebalances = Rebalances;
  return Report;
}
