//===-- apps/Stencil.cpp - 2D heat stencil with balancing -----------------===//

#include "apps/Stencil.h"

#include "dist/PartitionedVector.h"
#include "engine/Balance.h"
#include "engine/Session.h"
#include "mpp/Runtime.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

namespace {

std::uint64_t mix(std::uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ull;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// One serial sweep of the 5-point stencil over the whole grid.
void serialSweep(std::vector<double> &U, int Rows, int Cols) {
  std::vector<double> Next = U;
  for (int R = 1; R + 1 < Rows; ++R)
    for (int C = 1; C + 1 < Cols; ++C)
      Next[static_cast<std::size_t>(R) * Cols + C] =
          0.25 * (U[static_cast<std::size_t>(R - 1) * Cols + C] +
                  U[static_cast<std::size_t>(R + 1) * Cols + C] +
                  U[static_cast<std::size_t>(R) * Cols + C - 1] +
                  U[static_cast<std::size_t>(R) * Cols + C + 1]);
  U = std::move(Next);
}

} // namespace

double fupermod::stencilInitial(int Rows, int Cols, int Row, int Col) {
  // A hot top edge, cool bottom edge, and a deterministic speckle inside.
  if (Row == 0)
    return 100.0 + 10.0 * std::sin(0.3 * Col);
  if (Row == Rows - 1)
    return 0.0;
  if (Col == 0 || Col == Cols - 1)
    return 50.0;
  std::uint64_t H = mix(static_cast<std::uint64_t>(Row) * 69069u +
                        static_cast<std::uint64_t>(Col));
  return static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0) * 20.0;
}

StencilReport fupermod::runStencil(const Cluster &Platform,
                                   const StencilOptions &Options) {
  int P = Platform.size();
  int Rows = Options.Rows;
  int Cols = Options.Cols;
  assert(Rows >= 3 && Cols >= 3 && "grid too small for a stencil");
  const std::int64_t Interior = Rows - 2;

  // Repartitioning routes through one engine session; unknown
  // algorithm/model names become a diagnosable report error.
  engine::SessionConfig Cfg;
  Cfg.Platform = Platform;
  Cfg.ModelKind = Options.ModelKind;
  Cfg.Algorithm = Options.Algorithm;
  Result<std::unique_ptr<engine::Session>> SessionR =
      engine::Session::create(std::move(Cfg));
  if (!SessionR) {
    StencilReport Report;
    Report.Error = SessionR.error();
    return Report;
  }
  engine::Session &Engine = *SessionR.value();

  engine::BalancePolicy Policy;
  Policy.Enabled = Options.Balance;
  Policy.RebalanceThreshold = Options.RebalanceThreshold;

  std::vector<StencilIteration> Stats(
      static_cast<std::size_t>(Options.Iterations));
  for (auto &S : Stats) {
    S.ComputeTimes.assign(static_cast<std::size_t>(P), 0.0);
    S.Rows.assign(static_cast<std::size_t>(P), 0);
  }
  std::vector<double> FinalGrid;
  double MaxError = 0.0;
  std::vector<long long> HaloSent(static_cast<std::size_t>(P), 0);
  int Rebalances = 0;

  auto Body = [&](Comm &C) {
    int Me = C.rank();
    SimDevice Dev = Platform.makeDevice(Me);
    engine::BalancedLoop Loop = Engine.makeBalancedLoop(Interior, P);

    // The band lives in a partitioner-aware container: one unit = one
    // interior grid row (Cols doubles), global row coordinates starting
    // at 1. The container owns the halo exchange and every row move.
    dist::PartitionedVector<double> U(C, Loop.dist(), Cols, /*Base=*/1);
    U.generate([&](std::int64_t Row, std::span<double> Out) {
      for (int Col = 0; Col < Cols; ++Col)
        Out[static_cast<std::size_t>(Col)] =
            stencilInitial(Rows, Cols, static_cast<int>(Row), Col);
    });
    // Rows 0 and Rows-1 sit outside the partitioned domain: the halo
    // exchange fills them from the fixed boundary condition.
    auto Boundary = [&](std::int64_t Row, std::span<double> Out) {
      for (int Col = 0; Col < Cols; ++Col)
        Out[static_cast<std::size_t>(Col)] =
            stencilInitial(Rows, Cols, static_cast<int>(Row), Col);
    };

    for (int It = 0; It < Options.Iterations; ++It) {
      double IterStart = C.time();
      std::int64_t MyRows = U.units();

      // Kick off the width-1 halo exchange; the receives stay in flight
      // while the interior rows (which need no halo data) are swept.
      dist::HaloExchange Ex = U.startHaloExchange(1, Boundary);
      HaloSent[static_cast<std::size_t>(Me)] += Ex.piecesSent();

      std::span<const double> Band = U.local();
      std::vector<double> Next(Band.begin(), Band.end());
      auto SweepRow = [&](std::int64_t R, const double *Up,
                          const double *Down) {
        const double *Mid = Band.data() + R * Cols;
        double *Out = Next.data() + R * Cols;
        for (int Col = 1; Col + 1 < Cols; ++Col)
          Out[Col] = 0.25 * (Up[Col] + Down[Col] + Mid[Col - 1] +
                             Mid[Col + 1]);
      };
      // Interior rows overlap the transfer...
      for (std::int64_t R = 1; R + 1 < MyRows; ++R)
        SweepRow(R, Band.data() + (R - 1) * Cols,
                 Band.data() + (R + 1) * Cols);
      Ex.wait();
      // ...and the boundary-adjacent rows complete once the halos are in.
      if (MyRows == 1) {
        SweepRow(0, U.haloAbove().data(), U.haloBelow().data());
      } else if (MyRows > 1) {
        SweepRow(0, U.haloAbove().data(), Band.data() + Cols);
        SweepRow(MyRows - 1, Band.data() + (MyRows - 2) * Cols,
                 U.haloBelow().data());
      }
      U.assignLocal(std::move(Next));

      if (MyRows > 0) {
        double T = Dev.measureTime(static_cast<double>(MyRows));
        C.compute(T);
        Stats[static_cast<std::size_t>(It)]
            .ComputeTimes[static_cast<std::size_t>(Me)] = T;
      }
      if (Me == 0) {
        const std::vector<std::int64_t> &Starts = U.starts();
        for (int Q = 0; Q < P; ++Q)
          Stats[static_cast<std::size_t>(It)]
              .Rows[static_cast<std::size_t>(Q)] =
              Starts[static_cast<std::size_t>(Q) + 1] -
              Starts[static_cast<std::size_t>(Q)];
      }

      // Dynamic balancing, as in the Jacobi use case; the container
      // migrates rows only when the repartition moved units.
      if (Loop.balance(C, IterStart, Policy) && Me == 0)
        ++Rebalances;
      Loop.redistributeIfChanged(U);
    }

    // Assemble the final grid on rank 0 and verify against a serial run.
    std::vector<double> All =
        C.gatherv(std::span<const double>(U.local()), 0);
    if (Me != 0)
      return;
    std::vector<double> Grid(static_cast<std::size_t>(Rows) *
                             static_cast<std::size_t>(Cols));
    for (int Col = 0; Col < Cols; ++Col) {
      Grid[static_cast<std::size_t>(Col)] =
          stencilInitial(Rows, Cols, 0, Col);
      Grid[static_cast<std::size_t>(Rows - 1) * Cols + Col] =
          stencilInitial(Rows, Cols, Rows - 1, Col);
    }
    // gatherv concatenates bands in rank order = global row order.
    std::copy(All.begin(), All.end(),
              Grid.begin() + static_cast<std::size_t>(Cols));

    std::vector<double> Ref(Grid.size());
    for (int R = 0; R < Rows; ++R)
      for (int Col = 0; Col < Cols; ++Col)
        Ref[static_cast<std::size_t>(R) * Cols + Col] =
            stencilInitial(Rows, Cols, R, Col);
    for (int It = 0; It < Options.Iterations; ++It)
      serialSweep(Ref, Rows, Cols);
    for (std::size_t I = 0; I < Grid.size(); ++I)
      MaxError = std::max(MaxError, std::fabs(Grid[I] - Ref[I]));
    FinalGrid = std::move(Grid);
  };

  SpmdResult Run = Engine.execute(P, Body).value();

  StencilReport Report;
  Report.Iterations = std::move(Stats);
  Report.Makespan = Run.makespan();
  Report.Grid = std::move(FinalGrid);
  Report.MaxError = MaxError;
  for (long long H : HaloSent)
    Report.HaloRowsSent += H;
  Report.Rebalances = Rebalances;
  return Report;
}
