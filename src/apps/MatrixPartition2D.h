//===-- apps/MatrixPartition2D.h - Column-based 2D partition ----*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-based 2D matrix partitioning (Beaumont, Boudet, Rastello,
/// Robert, IEEE TPDS 2001 — the paper's ref [2]). Given relative areas
/// proportional to process speeds, the unit square is cut into columns of
/// stacked rectangles, one per process, such that
///
///   - every rectangle's area equals the process's relative speed
///     (computational balance), and
///   - the total half-perimeter sum_i (w_i + h_i), which is proportional
///     to the communication volume of blocked matrix multiplication, is
///     minimal over all column-based arrangements.
///
/// With processes sorted by non-increasing area, an optimal column-based
/// partition uses contiguous groups, found here by an O(p^2) dynamic
/// program minimising sum_j (k_j * w_j) + c (k_j processes in column j of
/// width w_j, c columns; each column's heights sum to 1).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_APPS_MATRIXPARTITION2D_H
#define FUPERMOD_APPS_MATRIXPARTITION2D_H

#include <span>
#include <vector>

namespace fupermod {

/// An axis-aligned rectangle in the unit square owned by one process.
struct Rect {
  double X = 0.0;
  double Y = 0.0;
  double W = 0.0;
  double H = 0.0;
  int Owner = -1;

  /// Half perimeter w + h (proportional to the process's communication).
  double halfPerimeter() const { return W + H; }
};

/// A column-based arrangement of rectangles covering the unit square.
struct ColumnLayout {
  /// Owners of each column, top to bottom.
  std::vector<std::vector<int>> Columns;
  /// One rectangle per process, indexed by owner id.
  std::vector<Rect> Rects;

  /// Sum of half perimeters over all rectangles.
  double totalHalfPerimeter() const;
};

/// Optimal column-based partition for the given relative areas (any
/// positive scale; normalised internally). Zero areas are allowed and
/// produce empty rectangles.
ColumnLayout partitionColumnBased(std::span<const double> RelAreas);

/// Baseline 1D partition: one column of full-width row strips.
ColumnLayout partitionRowStrips(std::span<const double> RelAreas);

/// A rectangle of whole blocks on an N x N block grid.
struct GridRect {
  int X = 0;
  int Y = 0;
  int W = 0;
  int H = 0;
  int Owner = -1;

  bool contains(int Col, int Row) const {
    return Col >= X && Col < X + W && Row >= Y && Row < Y + H;
  }
  long long area() const {
    return static_cast<long long>(W) * static_cast<long long>(H);
  }
};

/// Scales a unit-square layout to an N x N block grid. Column widths and
/// in-column heights are rounded so the rectangles tile the grid exactly
/// (verified by assertion).
std::vector<GridRect> scaleToGrid(const ColumnLayout &Layout, int N);

/// True when \p Rects tile the N x N grid exactly (each block covered
/// once).
bool tilesGrid(std::span<const GridRect> Rects, int N);

} // namespace fupermod

#endif // FUPERMOD_APPS_MATRIXPARTITION2D_H
