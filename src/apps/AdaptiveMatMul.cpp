//===-- apps/AdaptiveMatMul.cpp - dynamic 2D matmul partitioning ----------===//

#include "apps/AdaptiveMatMul.h"

#include "core/Partitioners.h"

#include <cassert>

using namespace fupermod;

AdaptiveMatMulReport
fupermod::runAdaptiveMatMul(const Cluster &Platform,
                            const AdaptiveMatMulOptions &Options) {
  int P = Platform.size();
  int N = Options.NBlocks;
  const std::int64_t D = static_cast<std::int64_t>(N) * N;
  assert(Options.Rounds >= 1 && "need at least one round");

  AdaptiveMatMulReport Report;
  Partitioner Algorithm = getPartitioner(Options.Algorithm);
  std::vector<std::unique_ptr<Model>> Models(static_cast<std::size_t>(P));
  for (int R = 0; R < P; ++R)
    Models[static_cast<std::size_t>(R)] = makeModel(Options.ModelKind);

  // Round 1 runs with even areas; later rounds use whatever the models
  // produced after the previous round.
  std::vector<double> Areas(static_cast<std::size_t>(P), 1.0);

  for (int Round = 0; Round < Options.Rounds; ++Round) {
    auto Rects = scaleToGrid(partitionColumnBased(Areas), N);

    MatMulOptions O;
    O.NBlocks = N;
    O.BlockSize = Options.BlockSize;
    O.Verify =
        Options.VerifyLastRound && Round + 1 == Options.Rounds;
    O.ZeroCopy = Options.ZeroCopy;
    O.Overlap = Options.Overlap;
    O.Threads = Options.Threads;
    MatMulReport R = runParallelMatMul(Platform, Rects, O);

    Report.RoundMakespans.push_back(R.Makespan);
    std::vector<long long> RoundArea(static_cast<std::size_t>(P), 0);
    for (const GridRect &Rect : Rects)
      RoundArea[static_cast<std::size_t>(Rect.Owner)] = Rect.area();
    Report.RoundAreas.push_back(std::move(RoundArea));
    if (O.Verify)
      Report.MaxError = R.MaxError;

    if (Round + 1 == Options.Rounds)
      break;

    // Feed the measured computation back into the partial models: a rank
    // that processed `area` block updates per inner iteration took
    // ComputeTimes[rank] over N iterations.
    for (int Q = 0; Q < P; ++Q) {
      long long Area = Report.RoundAreas.back()[static_cast<std::size_t>(
          Q)];
      if (Area <= 0)
        continue;
      Point Pt;
      Pt.Units = static_cast<double>(Area);
      Pt.Time = R.ComputeTimes[static_cast<std::size_t>(Q)] /
                static_cast<double>(N);
      Pt.Reps = N;
      Models[static_cast<std::size_t>(Q)]->update(Pt);
    }

    std::vector<Model *> Ptrs;
    for (auto &M : Models)
      Ptrs.push_back(M.get());
    Dist Out;
    if (Algorithm(D, Ptrs, Out))
      for (int Q = 0; Q < P; ++Q)
        Areas[static_cast<std::size_t>(Q)] = static_cast<double>(
            std::max<std::int64_t>(Out.Parts[static_cast<std::size_t>(Q)]
                                       .Units,
                                   0));
    // On failure (some model still unfitted) the old areas are kept.
  }
  return Report;
}
