//===-- apps/AdaptiveMatMul.cpp - dynamic 2D matmul partitioning ----------===//

#include "apps/AdaptiveMatMul.h"

#include "engine/Session.h"

#include <cassert>

using namespace fupermod;

AdaptiveMatMulReport
fupermod::runAdaptiveMatMul(const Cluster &Platform,
                            const AdaptiveMatMulOptions &Options) {
  int P = Platform.size();
  int N = Options.NBlocks;
  const std::int64_t D = static_cast<std::int64_t>(N) * N;
  assert(Options.Rounds >= 1 && "need at least one round");

  AdaptiveMatMulReport Report;

  // The feedback loop (fit + partition) runs through one engine session;
  // unknown algorithm/model names become a diagnosable report error.
  engine::SessionConfig Cfg;
  Cfg.Platform = Platform;
  Cfg.ModelKind = Options.ModelKind;
  Cfg.Algorithm = Options.Algorithm;
  Result<std::unique_ptr<engine::Session>> SessionR =
      engine::Session::create(std::move(Cfg));
  if (!SessionR) {
    Report.Error = SessionR.error();
    return Report;
  }
  engine::Session &Engine = *SessionR.value();
  // P >= 1 and ranks stay in range: these cannot fail.
  (void)Engine.initModels(P);

  // Round 1 runs with even areas; later rounds use whatever the models
  // produced after the previous round.
  std::vector<double> Areas(static_cast<std::size_t>(P), 1.0);

  for (int Round = 0; Round < Options.Rounds; ++Round) {
    auto Rects = scaleToGrid(partitionColumnBased(Areas), N);

    MatMulOptions O;
    O.NBlocks = N;
    O.BlockSize = Options.BlockSize;
    O.Verify =
        Options.VerifyLastRound && Round + 1 == Options.Rounds;
    O.ZeroCopy = Options.ZeroCopy;
    O.Overlap = Options.Overlap;
    O.Threads = Options.Threads;
    MatMulReport R = runParallelMatMul(Platform, Rects, O);

    Report.RoundMakespans.push_back(R.Makespan);
    std::vector<long long> RoundArea(static_cast<std::size_t>(P), 0);
    for (const GridRect &Rect : Rects)
      RoundArea[static_cast<std::size_t>(Rect.Owner)] = Rect.area();
    Report.RoundAreas.push_back(std::move(RoundArea));
    if (O.Verify)
      Report.MaxError = R.MaxError;

    if (Round + 1 == Options.Rounds)
      break;

    // Feed the measured computation back into the partial models: a rank
    // that processed `area` block updates per inner iteration took
    // ComputeTimes[rank] over N iterations.
    for (int Q = 0; Q < P; ++Q) {
      long long Area = Report.RoundAreas.back()[static_cast<std::size_t>(
          Q)];
      if (Area <= 0)
        continue;
      Point Pt;
      Pt.Units = static_cast<double>(Area);
      Pt.Time = R.ComputeTimes[static_cast<std::size_t>(Q)] /
                static_cast<double>(N);
      Pt.Reps = N;
      (void)Engine.feedback(Q, Pt);
    }

    // On failure (some model still unfitted) the old areas are kept.
    if (Result<Dist> Out = Engine.partition(D))
      for (int Q = 0; Q < P; ++Q)
        Areas[static_cast<std::size_t>(Q)] = static_cast<double>(
            std::max<std::int64_t>(
                Out.value().Parts[static_cast<std::size_t>(Q)].Units, 0));
  }
  return Report;
}
