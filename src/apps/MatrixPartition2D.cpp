//===-- apps/MatrixPartition2D.cpp - Column-based 2D partition ------------===//

#include "apps/MatrixPartition2D.h"

#include "core/Partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

using namespace fupermod;

double ColumnLayout::totalHalfPerimeter() const {
  double Sum = 0.0;
  for (const Rect &R : Rects)
    Sum += R.halfPerimeter();
  return Sum;
}

namespace {

std::vector<double> normalise(std::span<const double> RelAreas) {
  double Sum = 0.0;
  for (double A : RelAreas) {
    assert(A >= 0.0 && "areas must be non-negative");
    Sum += A;
  }
  assert(Sum > 0.0 && "at least one positive area required");
  std::vector<double> Out(RelAreas.begin(), RelAreas.end());
  for (double &A : Out)
    A /= Sum;
  return Out;
}

/// Lays out the given column groups (owners in stacking order, columns in
/// left-to-right order) into rectangles.
ColumnLayout layoutColumns(std::span<const double> Areas,
                           std::vector<std::vector<int>> Columns) {
  ColumnLayout Layout;
  Layout.Rects.assign(Areas.size(), Rect());
  double X = 0.0;
  for (const auto &Col : Columns) {
    double Width = 0.0;
    for (int Owner : Col)
      Width += Areas[static_cast<std::size_t>(Owner)];
    double Y = 0.0;
    for (int Owner : Col) {
      Rect &R = Layout.Rects[static_cast<std::size_t>(Owner)];
      R.Owner = Owner;
      R.X = X;
      R.Y = Y;
      R.W = Width;
      // A zero-width column (all-zero areas) carries empty rectangles.
      R.H = Width > 0.0
                ? Areas[static_cast<std::size_t>(Owner)] / Width
                : 0.0;
      Y += R.H;
    }
    X += Width;
  }
  Layout.Columns = std::move(Columns);
  return Layout;
}

} // namespace

ColumnLayout
fupermod::partitionColumnBased(std::span<const double> RelAreas) {
  std::vector<double> Areas = normalise(RelAreas);
  std::size_t P = Areas.size();

  // Sort processes by non-increasing area; contiguous groups of this
  // order are optimal among column-based partitions (Beaumont et al.).
  std::vector<int> Order(P);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](int A, int B) {
    if (Areas[static_cast<std::size_t>(A)] !=
        Areas[static_cast<std::size_t>(B)])
      return Areas[static_cast<std::size_t>(A)] >
             Areas[static_cast<std::size_t>(B)];
    return A < B;
  });

  std::vector<double> Prefix(P + 1, 0.0);
  for (std::size_t I = 0; I < P; ++I)
    Prefix[I + 1] = Prefix[I] + Areas[static_cast<std::size_t>(Order[I])];

  // DP over contiguous groups: Best[i] = minimal cost of arranging the
  // first i sorted processes, cost of a column = k * w + 1.
  std::vector<double> Best(P + 1,
                           std::numeric_limits<double>::infinity());
  std::vector<std::size_t> Cut(P + 1, 0);
  Best[0] = 0.0;
  for (std::size_t I = 1; I <= P; ++I) {
    for (std::size_t J = 0; J < I; ++J) {
      double Width = Prefix[I] - Prefix[J];
      double Cost = Best[J] + static_cast<double>(I - J) * Width + 1.0;
      if (Cost < Best[I]) {
        Best[I] = Cost;
        Cut[I] = J;
      }
    }
  }

  // Reconstruct the groups (reconstruction walks right to left).
  std::vector<std::vector<int>> Columns;
  std::size_t End = P;
  while (End > 0) {
    std::size_t Start = Cut[End];
    std::vector<int> Col;
    for (std::size_t K = Start; K < End; ++K)
      Col.push_back(Order[K]);
    Columns.push_back(std::move(Col));
    End = Start;
  }
  std::reverse(Columns.begin(), Columns.end());
  return layoutColumns(Areas, std::move(Columns));
}

ColumnLayout fupermod::partitionRowStrips(std::span<const double> RelAreas) {
  std::vector<double> Areas = normalise(RelAreas);
  std::vector<int> All(Areas.size());
  std::iota(All.begin(), All.end(), 0);
  return layoutColumns(Areas, {All});
}

std::vector<GridRect> fupermod::scaleToGrid(const ColumnLayout &Layout,
                                            int N) {
  assert(N > 0 && "grid must be non-empty");
  std::vector<GridRect> Rects(Layout.Rects.size());

  // Integer column widths that sum to N (largest remainder), then integer
  // heights within each column that sum to N.
  std::vector<double> WidthShares;
  WidthShares.reserve(Layout.Columns.size());
  for (const auto &Col : Layout.Columns) {
    assert(!Col.empty() && "empty column");
    double W = Layout.Rects[static_cast<std::size_t>(Col.front())].W;
    WidthShares.push_back(W * N);
  }
  std::vector<std::int64_t> Widths = roundShares(WidthShares, N);

  int X = 0;
  for (std::size_t C = 0; C < Layout.Columns.size(); ++C) {
    int W = static_cast<int>(Widths[C]);
    const auto &Col = Layout.Columns[C];
    std::vector<double> HeightShares;
    HeightShares.reserve(Col.size());
    for (int Owner : Col)
      HeightShares.push_back(Layout.Rects[static_cast<std::size_t>(Owner)].H *
                             N);
    std::vector<std::int64_t> Heights = roundShares(HeightShares, N);
    int Y = 0;
    for (std::size_t R = 0; R < Col.size(); ++R) {
      GridRect &G = Rects[static_cast<std::size_t>(Col[R])];
      G.Owner = Col[R];
      G.X = X;
      G.Y = Y;
      G.W = W;
      G.H = static_cast<int>(Heights[R]);
      Y += G.H;
    }
    assert(Y == N && "column heights must tile the grid");
    X += W;
  }
  assert(X == N && "column widths must tile the grid");
  assert(tilesGrid(Rects, N) && "scaled rectangles must tile the grid");
  return Rects;
}

bool fupermod::tilesGrid(std::span<const GridRect> Rects, int N) {
  std::vector<int> Cover(static_cast<std::size_t>(N) *
                             static_cast<std::size_t>(N),
                         0);
  for (const GridRect &R : Rects) {
    if (R.X < 0 || R.Y < 0 || R.X + R.W > N || R.Y + R.H > N)
      return false;
    for (int Col = R.X; Col < R.X + R.W; ++Col)
      for (int Row = R.Y; Row < R.Y + R.H; ++Row)
        ++Cover[static_cast<std::size_t>(Row) * static_cast<std::size_t>(N) +
                static_cast<std::size_t>(Col)];
  }
  for (int C : Cover)
    if (C != 1)
      return false;
  return true;
}
