//===-- equalize/Monitor.h - Windowed imbalance monitoring ------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement side of the dynamic equalization subsystem: a
/// per-rank exponentially weighted moving average of the measured
/// iteration times, reduced each round to one *windowed imbalance*
/// figure, (max - min) / max over the active ranks only (excluded or
/// degraded ranks must not pin the metric at its maximum forever — see
/// Metrics::imbalance's masked overload).
///
/// The monitor turns that figure into a *trigger* decision. The trigger
/// is **drift-adaptive**: on a dedicated heterogeneous platform the
/// integer-unit granularity leaves a residual imbalance floor that
/// varies with the platform and the regime (a 1-row part on a fast
/// device pins the metric far from zero even at the discrete optimum),
/// so an absolute threshold either never fires or never stops firing.
/// The monitor instead maintains a *baseline* — the level the last
/// rebalancing episode achieved — and fires when the imbalance rises
/// more than the trigger threshold above it. Damping:
///
///  - trigger/clear **hysteresis**: after an *adopted* rebalance the
///    monitor disarms; it re-arms (closing the episode) when the
///    imbalance returns to within the clear threshold of the old
///    baseline, or when a settling round stops improving on the
///    episode's best — at which point that best becomes the new
///    baseline. One sustained breach therefore cannot fire on every
///    round while the rebalance it requested is still taking effect,
///    and an unreachable absolute floor cannot silence the monitor
///    forever;
///  - a **cooldown** of N rounds after each trigger during which no new
///    trigger fires regardless of the metric;
///  - a **consecutive-breach count**: the trigger margin must be
///    breached on M successive rounds before the monitor fires, so a
///    one-round noise spike does not cause a repartition.
///
/// Every rank of an SPMD run owns a replica fed with identical gathered
/// times, so all replicas make the same decision in lockstep without a
/// coordinating root.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_EQUALIZE_MONITOR_H
#define FUPERMOD_EQUALIZE_MONITOR_H

#include <cstdint>
#include <span>
#include <vector>

namespace fupermod {
namespace equalize {

/// Tuning knobs of an ImbalanceMonitor. All thresholds are relative
/// imbalances in [0, 1); rounds are application iterations.
struct MonitorConfig {
  /// Fire when the windowed imbalance rises more than this above the
  /// drift-adaptive baseline (the level the last rebalancing episode
  /// achieved; 0 before the first).
  double TriggerThreshold = 0.25;
  /// Re-arm when the imbalance falls back to within this margin of the
  /// baseline (hysteresis). Clamped up to at most TriggerThreshold.
  double ClearThreshold = 0.1;
  /// Rounds after a trigger during which no new trigger fires.
  int Cooldown = 0;
  /// Consecutive breach rounds required before a trigger.
  int MinBreaches = 1;
  /// Weight of the newest sample in the per-rank EWMA, in (0, 1];
  /// 1 = no smoothing (each round judged on its own times).
  double EwmaAlpha = 1.0;
};

/// Counters of one monitor's lifetime, for reports and tripwires.
struct MonitorCounters {
  /// observe() calls.
  std::uint64_t Rounds = 0;
  /// Rounds whose windowed imbalance breached the trigger threshold.
  std::uint64_t Breaches = 0;
  /// Breach rounds that fired a trigger.
  std::uint64_t Triggers = 0;
  /// Breach rounds swallowed by the post-trigger cooldown.
  std::uint64_t CooldownSuppressed = 0;
  /// Breach rounds swallowed because the monitor was still disarmed
  /// (imbalance never dropped below the clear threshold since the last
  /// trigger).
  std::uint64_t HysteresisSuppressed = 0;
};

/// Deterministic trigger automaton over a stream of per-rank iteration
/// times. Pure state machine — no communication, no clocks — so a
/// recorded time series can be replayed through a fresh instance offline
/// and must reproduce the in-run trigger sequence exactly (the bench's
/// exact-trigger tripwire).
class ImbalanceMonitor {
public:
  explicit ImbalanceMonitor(const MonitorConfig &Cfg);

  /// Feeds one round of measured per-rank times. \p Active masks the
  /// ranks that participate in the metric (non-zero = active); excluded,
  /// failed and zero-unit ranks must be masked out by the caller. Both
  /// spans have one entry per rank; the rank count must stay constant
  /// across a monitor's lifetime. Returns true when this round triggers
  /// a rebalance request: the cooldown clock restarts (so a veto
  /// downstream still rate-limits the next request) but the window and
  /// the armed state are left alone — whether the rebalance was actually
  /// *adopted* is the caller's call, reported via notifyRebalanced().
  bool observe(std::span<const double> Times,
               std::span<const std::uint8_t> Active);

  /// Windowed (EWMA, masked) imbalance of the most recent observe().
  double imbalance() const { return LastImbalance; }

  /// Current drift-adaptive baseline: the imbalance level the last
  /// rebalancing episode achieved (0 before the first episode; only
  /// lowered in between, by spontaneous improvement).
  double baseline() const { return Baseline; }

  /// False between an adopted rebalance and the round that closes the
  /// episode (imbalance cleared, or a settling round stopped
  /// improving). Policies use the re-arm edge to close a settling
  /// episode (see ThresholdEqualizer).
  bool armed() const { return Armed; }

  /// Tells the monitor a repartition was adopted (a trigger that was
  /// approved, a device-failure override, or an every-K policy's
  /// cadence): the EWMA window resets — the distribution changed, so the
  /// old per-rank times are no longer comparable — and the monitor
  /// disarms until the episode closes (the imbalance clears back to the
  /// baseline band, or a settling round stops improving on the
  /// episode's best, which then becomes the new baseline). This is the
  /// hysteresis that keeps one sustained breach from firing again while
  /// the rebalance it requested is still taking effect, without letting
  /// an unreachable absolute floor silence the monitor forever.
  void notifyRebalanced();

  const MonitorCounters &counters() const { return Counters; }
  const MonitorConfig &config() const { return Cfg; }

private:
  MonitorConfig Cfg;
  MonitorCounters Counters;
  /// Per-rank EWMA of the measured times; empty until the first observe
  /// (and again after each reset).
  std::vector<double> Ewma;
  /// Ranks whose EWMA has been seeded since the last reset (a rank
  /// masked inactive on the seeding round joins the window later).
  std::vector<std::uint8_t> Seeded;
  double LastImbalance = 0.0;
  /// Drift-adaptive reference level; breaches are measured against it.
  double Baseline = 0.0;
  /// Best (lowest) imbalance seen since the current episode's trigger;
  /// +infinity right after one. Tracked across the episode's adoptions;
  /// a settling round that fails to improve on it closes the episode.
  double BestSinceRebalance;
  /// Current run of consecutive breach rounds.
  int BreachStreak = 0;
  /// Rounds elapsed since the last trigger (saturating; large when no
  /// trigger has fired yet so the first breach is never in cooldown).
  int RoundsSinceTrigger;
  /// Hysteresis state: triggers fire only while armed.
  bool Armed = true;
};

} // namespace equalize
} // namespace fupermod

#endif // FUPERMOD_EQUALIZE_MONITOR_H
