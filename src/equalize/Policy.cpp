//===-- equalize/Policy.cpp - Equalization policies -----------------------===//

#include "equalize/Policy.h"

#include "sim/Cluster.h"

#include <cassert>
#include <utility>
#include <vector>

using namespace fupermod;
using namespace fupermod::equalize;

//===----------------------------------------------------------------------===//
// Base policy
//===----------------------------------------------------------------------===//

bool Equalizer::shouldSolve(std::span<const double> Times,
                            std::span<const std::uint8_t> Active,
                            bool AnyFailed) {
  (void)Times;
  (void)Active;
  ++Stats.Rounds;
  return AnyFailed;
}

bool Equalizer::approve(const Dist &Current, const Dist &Candidate) {
  (void)Current;
  (void)Candidate;
  return true;
}

void Equalizer::noteOutcome(bool Adopted, bool ForcedByFailure) {
  if (!Adopted)
    return;
  ++Stats.Rebalances;
  if (ForcedByFailure)
    ++Stats.ForcedByFailure;
}

//===----------------------------------------------------------------------===//
// Policies
//===----------------------------------------------------------------------===//

namespace {

/// "off": never repartition; failures still force one.
class OffEqualizer : public Equalizer {
public:
  explicit OffEqualizer(const EqualizeConfig &) {}
};

/// "every": fixed cadence of K rounds (K = 1 is the historical
/// every-round balancing).
class EveryKEqualizer : public Equalizer {
public:
  explicit EveryKEqualizer(const EqualizeConfig &Cfg)
      : Period(Cfg.Period < 1 ? 1 : Cfg.Period) {}

  bool shouldSolve(std::span<const double> Times,
                   std::span<const std::uint8_t> Active,
                   bool AnyFailed) override {
    bool Forced = Equalizer::shouldSolve(Times, Active, AnyFailed);
    // Rounds is 1-based after the base call: fire on rounds K, 2K, ...
    return Forced || (Stats.Rounds % static_cast<std::uint64_t>(Period)) == 0;
  }

private:
  int Period;
};

/// "threshold": the ImbalanceMonitor decides when to open a rebalancing
/// episode; the episode then keeps solving every round ("settling")
/// until the imbalance drops below the clear threshold — one solve
/// rarely suffices, because the partial models only learn the
/// post-drift regime from the measurements the episode itself produces.
/// The episode closes when the monitor re-arms (imbalance cleared), on
/// a no-op solve, or on an arbiter veto in the derived policy; the
/// monitor then stays quiet until the imbalance breaches again.
class ThresholdEqualizer : public Equalizer {
public:
  explicit ThresholdEqualizer(const EqualizeConfig &Cfg)
      : Monitor(Cfg.Monitor) {}

  bool shouldSolve(std::span<const double> Times,
                   std::span<const std::uint8_t> Active,
                   bool AnyFailed) override {
    bool Forced = Equalizer::shouldSolve(Times, Active, AnyFailed);
    bool Triggered = Monitor.observe(Times, Active);
    syncMonitorStats();
    if (Settling && Monitor.armed())
      Settling = false; // Imbalance cleared: the episode converged.
    return Forced || Triggered || Settling;
  }

  void noteOutcome(bool Adopted, bool ForcedByFailure) override {
    Equalizer::noteOutcome(Adopted, ForcedByFailure);
    if (Adopted) {
      Monitor.notifyRebalanced();
      Settling = true;
    } else {
      Settling = false;
    }
  }

  const ImbalanceMonitor *monitor() const override { return &Monitor; }

protected:
  void syncMonitorStats() {
    const MonitorCounters &C = Monitor.counters();
    Stats.Triggers = C.Triggers;
    Stats.CooldownSuppressed = C.CooldownSuppressed;
    Stats.HysteresisSuppressed = C.HysteresisSuppressed;
  }

  ImbalanceMonitor Monitor;
  /// True while inside an episode: the last solve was adopted, so keep
  /// refining next round.
  bool Settling = false;
};

/// "arbitrated": the cost arbiter decides. The partial models are fed on
/// every round, so a candidate repartition is always current and cheap
/// to produce; the policy computes one every round and adopts it only
/// when the arbiter's projected makespan savings over the benefit
/// horizon amortize the migration, solver and halo costs. Once the
/// distribution has converged the candidate reproduces the current
/// shares or fails to amortize, so the policy goes quiet on its own —
/// no imbalance threshold to tune — and pays migration bytes only when
/// a drift makes them worth it.
class ArbitratedEqualizer : public Equalizer {
public:
  explicit ArbitratedEqualizer(const EqualizeConfig &Cfg)
      : Arbiter(Cfg.Arbiter) {}

  bool shouldSolve(std::span<const double> Times,
                   std::span<const std::uint8_t> Active,
                   bool AnyFailed) override {
    Equalizer::shouldSolve(Times, Active, AnyFailed);
    // Snapshot the raw round for the arbiter: pricing works from the
    // requesting round's own times.
    LastTimes.assign(Times.begin(), Times.end());
    LastActive.assign(Active.begin(), Active.end());
    return true;
  }

  bool approve(const Dist &Current, const Dist &Candidate) override {
    RebalanceQuote Q = Arbiter.quote(Current, Candidate, LastTimes,
                                     LastActive);
    if (Q.Approved) {
      ++Stats.Triggers; // An approved quote is this policy's trigger.
      Stats.PredictedSavings += Q.NetBenefit;
      Stats.MigrationBytes += Q.MigrationBytes;
    } else {
      ++Stats.Vetoes;
    }
    return Q.Approved;
  }

  const CostArbiter *arbiter() const override { return &Arbiter; }

private:
  CostArbiter Arbiter;
  std::vector<double> LastTimes;
  std::vector<std::uint8_t> LastActive;
};

using Reg = Registrar<EqualizerRegistry>;
Reg RegOff(equalizerRegistry(), "off", [](const EqualizeConfig &Cfg) {
  return std::unique_ptr<Equalizer>(new OffEqualizer(Cfg));
});
Reg RegEvery(equalizerRegistry(), "every", [](const EqualizeConfig &Cfg) {
  return std::unique_ptr<Equalizer>(new EveryKEqualizer(Cfg));
});
Reg RegThreshold(equalizerRegistry(), "threshold",
                 [](const EqualizeConfig &Cfg) {
                   return std::unique_ptr<Equalizer>(
                       new ThresholdEqualizer(Cfg));
                 });
Reg RegArbitrated(equalizerRegistry(), "arbitrated",
                  [](const EqualizeConfig &Cfg) {
                    return std::unique_ptr<Equalizer>(
                        new ArbitratedEqualizer(Cfg));
                  });

} // namespace

//===----------------------------------------------------------------------===//
// Registry, validation, spec conversion
//===----------------------------------------------------------------------===//

EqualizerRegistry &fupermod::equalize::equalizerRegistry() {
  static EqualizerRegistry R("equalize policy");
  return R;
}

Status fupermod::equalize::validateConfig(const EqualizeConfig &Cfg) {
  if (!Cfg.Policy.empty() && !equalizerRegistry().contains(Cfg.Policy))
    return Status::failure(equalizerRegistry().unknownNameError(Cfg.Policy));
  if (Cfg.Period < 1)
    return Status::failure("equalize: period must be at least 1");
  if (Cfg.Monitor.TriggerThreshold < 0.0)
    return Status::failure(
        "equalize: imbalance threshold must be non-negative");
  if (Cfg.Monitor.ClearThreshold < 0.0)
    return Status::failure("equalize: clear threshold must be non-negative");
  if (Cfg.Monitor.Cooldown < 0)
    return Status::failure("equalize: cooldown must be non-negative");
  if (Cfg.Monitor.MinBreaches < 1)
    return Status::failure("equalize: breach count must be at least 1");
  if (!(Cfg.Monitor.EwmaAlpha > 0.0) || Cfg.Monitor.EwmaAlpha > 1.0)
    return Status::failure("equalize: EWMA weight must be in (0, 1]");
  if (Cfg.Arbiter.BytesPerUnit < 0.0)
    return Status::failure("equalize: bytes per unit must be non-negative");
  if (Cfg.Arbiter.HorizonRounds < 0)
    return Status::failure("equalize: benefit horizon must be non-negative");
  if (Cfg.Arbiter.MinRelativeSaving < 0.0 ||
      Cfg.Arbiter.MinRelativeSaving >= 1.0)
    return Status::failure(
        "equalize: relative saving floor must be in [0, 1)");
  return okStatus();
}

Result<EqualizeConfig>
fupermod::equalize::configFromSpec(const EqualizeSpec &Spec) {
  EqualizeConfig Cfg;
  Cfg.Policy = Spec.Policy;
  Cfg.Period = Spec.Period;
  Cfg.Monitor.TriggerThreshold = Spec.TriggerThreshold;
  Cfg.Monitor.ClearThreshold = Spec.ClearThreshold;
  Cfg.Monitor.Cooldown = Spec.Cooldown;
  Cfg.Monitor.MinBreaches = Spec.MinBreaches;
  Cfg.Monitor.EwmaAlpha = Spec.EwmaAlpha;
  Cfg.Arbiter.HorizonRounds = Spec.HorizonRounds;
  if (Status S = validateConfig(Cfg); !S)
    return Result<EqualizeConfig>::failure(S.error());
  return Cfg;
}

Result<std::unique_ptr<Equalizer>>
fupermod::equalize::makeEqualizer(const EqualizeConfig &Cfg) {
  using R = Result<std::unique_ptr<Equalizer>>;
  if (Cfg.Policy.empty())
    return R::failure("equalize: no policy configured");
  if (Status S = validateConfig(Cfg); !S)
    return R::failure(S.error());
  std::string Err;
  std::unique_ptr<Equalizer> E =
      equalizerRegistry().create(Cfg.Policy, Cfg, &Err);
  if (!E)
    return R::failure(Err.empty() ? "equalize: policy construction failed"
                                  : Err);
  return R(std::move(E));
}
