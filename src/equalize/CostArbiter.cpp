//===-- equalize/CostArbiter.cpp - Pricing candidate rebalances -----------===//

#include "equalize/CostArbiter.h"

#include "dist/Redistribute.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace fupermod;
using namespace fupermod::equalize;

CostArbiter::CostArbiter(const ArbiterConfig &Cfg) : Cfg(Cfg) {
  assert(this->Cfg.BytesPerUnit >= 0.0 && "negative unit payload");
  assert(this->Cfg.HorizonRounds >= 0 && "negative benefit horizon");
}

RebalanceQuote CostArbiter::quote(const Dist &Current, const Dist &Candidate,
                                  std::span<const double> EwmaTimes,
                                  std::span<const std::uint8_t> Active) {
  std::size_t P = Current.Parts.size();
  assert(Candidate.Parts.size() == P && EwmaTimes.size() == P &&
         Active.size() == P && "per-rank inputs disagree on the rank count");

  RebalanceQuote Q;
  std::vector<std::int64_t> OldStarts = Current.contiguousStarts();
  std::vector<std::int64_t> NewStarts = Candidate.contiguousStarts();
  Q.MovedUnits = dist::minimalTransferUnits(OldStarts, NewStarts);
  Q.MigrationBytes = static_cast<unsigned long long>(
      std::llround(static_cast<double>(Q.MovedUnits) * Cfg.BytesPerUnit));

  // Makespan hit of the migration: transfers between distinct rank pairs
  // overlap in the runtime, so the critical path is the busiest single
  // rank's outbound plus inbound volume (each leg paying one message
  // latency per peer it exchanges with).
  double WorstRank = 0.0;
  for (std::size_t R = 0; R < P; ++R) {
    dist::TransferPlan Plan = dist::buildTransferPlan(OldStarts, NewStarts,
                                                      static_cast<int>(R));
    double Seconds = 0.0;
    for (const auto &Piece : Plan.Sends)
      Seconds += Cfg.Link.transferTime(static_cast<std::size_t>(
          static_cast<double>(Piece.Range.length()) * Cfg.BytesPerUnit));
    for (const auto &Piece : Plan.Recvs)
      Seconds += Cfg.Link.transferTime(static_cast<std::size_t>(
          static_cast<double>(Piece.Range.length()) * Cfg.BytesPerUnit));
    WorstRank = std::max(WorstRank, Seconds);
  }
  Q.MigrationSeconds = WorstRank;
  Q.OverheadSeconds = Cfg.SolverSeconds + Cfg.HaloSeconds;

  // Current round time: the busiest active rank's windowed time.
  // Candidate round time: scale each active rank's per-unit EWMA rate to
  // its candidate share. Ranks with no usable rate (no units or no time
  // in the window) fall back to the mean active rate, so a rank that was
  // idle under the current distribution does not project a free share.
  double RateSum = 0.0;
  int RateCount = 0;
  for (std::size_t R = 0; R < P; ++R) {
    if (!Active[R])
      continue;
    Q.CurrentRoundSeconds = std::max(Q.CurrentRoundSeconds, EwmaTimes[R]);
    std::int64_t Units = Current.Parts[R].Units;
    if (Units > 0 && EwmaTimes[R] > 0.0) {
      RateSum += EwmaTimes[R] / static_cast<double>(Units);
      ++RateCount;
    }
  }
  double MeanRate = RateCount > 0 ? RateSum / RateCount : 0.0;
  for (std::size_t R = 0; R < P; ++R) {
    if (!Active[R])
      continue;
    std::int64_t OldUnits = Current.Parts[R].Units;
    double Rate = (OldUnits > 0 && EwmaTimes[R] > 0.0)
                      ? EwmaTimes[R] / static_cast<double>(OldUnits)
                      : MeanRate;
    Q.CandidateRoundSeconds =
        std::max(Q.CandidateRoundSeconds,
                 Rate * static_cast<double>(Candidate.Parts[R].Units));
  }

  Q.SavingsPerRound = Q.CurrentRoundSeconds - Q.CandidateRoundSeconds;
  Q.NetBenefit = Q.SavingsPerRound * static_cast<double>(Cfg.HorizonRounds) -
                 (Q.MigrationSeconds + Q.OverheadSeconds);
  Q.Approved = Q.NetBenefit > Cfg.MinNetBenefit &&
               Q.SavingsPerRound >
                   Cfg.MinRelativeSaving * Q.CurrentRoundSeconds;

  ++Counters.Quotes;
  if (Q.Approved) {
    ++Counters.Approvals;
    Counters.ApprovedBenefit += Q.NetBenefit;
    Counters.ApprovedBytes += Q.MigrationBytes;
  } else {
    ++Counters.Vetoes;
  }
  return Q;
}
