//===-- equalize/Policy.h - Equalization policies ---------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision layer of the dynamic equalization subsystem: an
/// Equalizer answers, each application round, whether the measured
/// iteration times should be fed into the partial models and a candidate
/// repartition solved ("should we look?"), and whether a solved
/// candidate should actually be adopted ("does it pay?"). Four policies
/// register in the equalizer registry:
///
///   off         never repartition (device failures still force one —
///               a dead rank's units must move regardless of policy);
///   every       repartition on a fixed cadence of K rounds (K = 1 is
///               the apps' historical every-round balancing);
///   threshold   open a rebalancing episode when the ImbalanceMonitor
///               triggers (EWMA-windowed imbalance over a
///               drift-adaptive baseline, with hysteresis, cooldown and
///               consecutive-breach damping), keep settling until the
///               episode converges, then go quiet;
///   arbitrated  price a candidate repartition every round with the
///               CostArbiter and adopt it only when the projected
///               makespan saving amortizes the migration + solve + halo
///               cost within the benefit horizon — converged
///               distributions quote no amortizable benefit, so the
///               policy goes quiet without an imbalance knob.
///
/// Every SPMD rank owns a replica fed identical gathered times, so all
/// replicas decide in lockstep; an Equalizer therefore performs no
/// communication of its own.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_EQUALIZE_POLICY_H
#define FUPERMOD_EQUALIZE_POLICY_H

#include "equalize/CostArbiter.h"
#include "equalize/Monitor.h"
#include "support/Registry.h"
#include "support/Result.h"

#include <memory>
#include <span>
#include <string>

namespace fupermod {

struct EqualizeSpec;

namespace equalize {

/// Full configuration of an equalization policy instance.
struct EqualizeConfig {
  /// Registered policy name; empty disables equalization entirely (the
  /// driving loop falls back to its legacy balancing).
  std::string Policy;
  /// Cadence of the "every" policy (1 = every round).
  int Period = 1;
  MonitorConfig Monitor;
  ArbiterConfig Arbiter;
};

/// Range-checks every knob of \p Cfg and, when the policy name is
/// non-empty, resolves it against the registry. Returns a failure naming
/// the offending knob (or listing the registered policies).
Status validateConfig(const EqualizeConfig &Cfg);

/// Converts a parsed `.cluster` `equalize` line into a policy
/// configuration (validated).
Result<EqualizeConfig> configFromSpec(const EqualizeSpec &Spec);

/// Lifetime tallies of one equalizer, for reports, SpmdResult counters
/// and the bench tripwires.
struct EqualizeStats {
  /// Rounds observed (shouldSolve calls).
  std::uint64_t Rounds = 0;
  /// Rebalance requests: monitor triggers (threshold policy) or
  /// approved quotes (arbitrated policy).
  std::uint64_t Triggers = 0;
  /// Candidates vetoed by the arbiter.
  std::uint64_t Vetoes = 0;
  /// Repartitions adopted.
  std::uint64_t Rebalances = 0;
  /// Of Rebalances: forced by a device failure, bypassing the policy.
  std::uint64_t ForcedByFailure = 0;
  /// Breach rounds swallowed by the cooldown / the hysteresis disarm.
  std::uint64_t CooldownSuppressed = 0;
  std::uint64_t HysteresisSuppressed = 0;
  /// Sum of the arbiter's projected net benefit over approved quotes.
  double PredictedSavings = 0.0;
  /// Priced migration bytes of the approved quotes.
  unsigned long long MigrationBytes = 0;
};

/// One policy instance: replicated per rank, stateful across rounds.
class Equalizer {
public:
  virtual ~Equalizer() = default;

  /// Phase 1, called once per round with the gathered per-rank iteration
  /// times, the active mask (non-excluded, non-failed, non-empty ranks)
  /// and whether any rank reported a hard device failure: should the
  /// models be updated and a candidate repartition solved this round?
  /// Base implementation counts the round and forces a solve on failure.
  virtual bool shouldSolve(std::span<const double> Times,
                           std::span<const std::uint8_t> Active,
                           bool AnyFailed);

  /// Phase 2, called after a solve produced \p Candidate: adopt it?
  /// Policies without an arbiter always adopt. Not consulted when a
  /// device failure forced the solve — the dead rank's units move
  /// regardless of cost.
  virtual bool approve(const Dist &Current, const Dist &Candidate);

  /// Outcome report from the driving loop: the solve's candidate was
  /// adopted (or the whole round resolved without a solve). Keeps the
  /// stats and the monitor's hysteresis state in step.
  virtual void noteOutcome(bool Adopted, bool ForcedByFailure);

  const EqualizeStats &stats() const { return Stats; }

  /// The policy's monitor/arbiter, when it has one (introspection).
  virtual const ImbalanceMonitor *monitor() const { return nullptr; }
  virtual const CostArbiter *arbiter() const { return nullptr; }

protected:
  EqualizeStats Stats;
};

/// The equalization-policy registry ("off", "every", "threshold",
/// "arbitrated"; factories take the full config).
using EqualizerRegistry =
    Registry<std::unique_ptr<Equalizer>, const EqualizeConfig &>;
EqualizerRegistry &equalizerRegistry();

/// Creates the policy named by \p Cfg (validated first). Fails with the
/// offending knob or the registry's unknown-name diagnostic.
Result<std::unique_ptr<Equalizer>> makeEqualizer(const EqualizeConfig &Cfg);

} // namespace equalize
} // namespace fupermod

#endif // FUPERMOD_EQUALIZE_POLICY_H
