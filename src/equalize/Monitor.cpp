//===-- equalize/Monitor.cpp - Windowed imbalance monitoring --------------===//

#include "equalize/Monitor.h"

#include "core/Metrics.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace fupermod;
using namespace fupermod::equalize;

ImbalanceMonitor::ImbalanceMonitor(const MonitorConfig &Cfg) : Cfg(Cfg) {
  assert(this->Cfg.TriggerThreshold >= 0.0 && "negative trigger threshold");
  assert(this->Cfg.Cooldown >= 0 && "negative cooldown");
  assert(this->Cfg.EwmaAlpha > 0.0 && this->Cfg.EwmaAlpha <= 1.0 &&
         "EWMA weight must be in (0, 1]");
  this->Cfg.ClearThreshold =
      std::min(this->Cfg.ClearThreshold, this->Cfg.TriggerThreshold);
  this->Cfg.ClearThreshold = std::max(this->Cfg.ClearThreshold, 0.0);
  this->Cfg.MinBreaches = std::max(this->Cfg.MinBreaches, 1);
  // Saturate "rounds since the last trigger" so the first breach of a
  // fresh monitor is never mistaken for being inside a cooldown.
  RoundsSinceTrigger = std::numeric_limits<int>::max() - 1;
  BestSinceRebalance = std::numeric_limits<double>::infinity();
}

void ImbalanceMonitor::notifyRebalanced() {
  Armed = false;
  Ewma.clear();
  Seeded.clear();
  BreachStreak = 0;
  // BestSinceRebalance is NOT reset here: it tracks the best level since
  // the episode's *trigger*, across all of the episode's adoptions, so
  // the stall rule can close an episode whose settling rounds keep
  // moving units (noise churn) without improving the balance.
}

bool ImbalanceMonitor::observe(std::span<const double> Times,
                               std::span<const std::uint8_t> Active) {
  assert(Times.size() == Active.size() && "one mask entry per rank");
  ++Counters.Rounds;
  if (RoundsSinceTrigger < std::numeric_limits<int>::max() - 1)
    ++RoundsSinceTrigger;

  if (Ewma.empty()) {
    Ewma.assign(Times.size(), 0.0);
    Seeded.assign(Times.size(), 0);
  }
  assert(Ewma.size() == Times.size() &&
         "rank count changed under the monitor");
  for (std::size_t R = 0; R < Times.size(); ++R) {
    if (!Active[R])
      continue;
    if (!Seeded[R]) {
      Ewma[R] = Times[R];
      Seeded[R] = 1;
    } else {
      Ewma[R] = Cfg.EwmaAlpha * Times[R] + (1.0 - Cfg.EwmaAlpha) * Ewma[R];
    }
  }
  // The metric masks out inactive ranks *and* active ranks whose window
  // has no sample yet (they would contribute a meaningless zero).
  std::vector<std::uint8_t> Windowed(Active.begin(), Active.end());
  for (std::size_t R = 0; R < Windowed.size(); ++R)
    if (!Seeded[R])
      Windowed[R] = 0;
  LastImbalance = fupermod::imbalance(Ewma, Windowed);

  // Baseline/hysteresis bookkeeping happens before the breach test, so a
  // round that closes an episode and a later breach behave identically
  // whether or not rounds separate them.
  if (Armed) {
    // Spontaneous improvement lowers the reference; it never rises
    // outside an episode, so a genuine drift always shows as a margin
    // above it.
    Baseline = std::min(Baseline, LastImbalance);
  } else {
    bool Cleared = LastImbalance < Baseline + Cfg.ClearThreshold;
    bool Stalled = LastImbalance >= BestSinceRebalance;
    if (Cleared || Stalled) {
      // Episode over: adopt the level it achieved as the new baseline.
      Baseline = std::min(BestSinceRebalance, LastImbalance);
      Armed = true;
    } else {
      BestSinceRebalance = LastImbalance;
    }
  }

  if (!(LastImbalance > Baseline + Cfg.TriggerThreshold)) {
    BreachStreak = 0;
    return false;
  }
  ++Counters.Breaches;
  ++BreachStreak;
  if (RoundsSinceTrigger <= Cfg.Cooldown) {
    ++Counters.CooldownSuppressed;
    return false;
  }
  if (!Armed) {
    ++Counters.HysteresisSuppressed;
    return false;
  }
  if (BreachStreak < Cfg.MinBreaches)
    return false;

  ++Counters.Triggers;
  RoundsSinceTrigger = 0;
  BreachStreak = 0;
  // A new episode opens: its best-achieved level starts fresh.
  BestSinceRebalance = std::numeric_limits<double>::infinity();
  return true;
}
