//===-- equalize/CostArbiter.h - Pricing candidate rebalances ---*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The economics side of the dynamic equalization subsystem: given the
/// current distribution, a candidate repartition and the monitor's
/// per-rank time window, the CostArbiter prices what adopting the
/// candidate would *cost* —
///
///  - migration: the provably minimal units the interval-overlap
///    redistribution would move (dist::minimalTransferUnits), priced in
///    bytes through the link's Hockney parameters, with the makespan hit
///    taken as the busiest single rank's send + receive volume (the
///    moves of different rank pairs overlap in the runtime);
///  - the repartition solve itself (warm-started solves are cheap but
///    not free — the caller estimates them, e.g. from the session's
///    warm-start hit latency);
///  - halo re-setup after the ranges shift;
///
/// — against what it would *save*: the difference between the measured
/// current round time (max over the windowed per-rank times) and the
/// candidate's projected round time (per-rank EWMA rates scaled to the
/// new unit counts), amortized over a benefit horizon of future rounds.
/// A rebalance whose projected saving does not amortize its price within
/// the horizon is vetoed.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_EQUALIZE_COSTARBITER_H
#define FUPERMOD_EQUALIZE_COSTARBITER_H

#include "core/Partition.h"
#include "mpp/CostModel.h"

#include <cstdint>
#include <span>

namespace fupermod {
namespace equalize {

/// Tuning knobs of a CostArbiter.
struct ArbiterConfig {
  /// Payload bytes one computation unit carries during migration (e.g.
  /// (N + 1) * sizeof(double) for Jacobi's interleaved [A | b] rows).
  double BytesPerUnit = sizeof(double);
  /// Link parameters pricing migration traffic (per-message latency +
  /// per-byte period, the platform's intra-node link by default).
  LinkCost Link{/*Latency=*/1e-5, /*BytePeriod=*/1.0 / 1e9};
  /// Estimated cost of the repartition solve itself, per rebalance.
  double SolverSeconds = 0.0;
  /// Estimated halo re-setup cost after the ranges shift.
  double HaloSeconds = 0.0;
  /// Rounds over which a projected per-round saving may amortize the
  /// rebalance price.
  int HorizonRounds = 10;
  /// Minimum net benefit (seconds over the horizon) required to approve;
  /// 0 approves any rebalance that at least breaks even.
  double MinNetBenefit = 0.0;
  /// Minimum projected per-round saving as a fraction of the current
  /// round time, in [0, 1). On a fast network the absolute migration
  /// cost approves almost any positive saving, so without a relative
  /// floor the arbiter degenerates into every-round balancing; the floor
  /// makes it consolidate a tail of small refinements into fewer, larger
  /// moves (a vetoed candidate's improvement is not lost — the models
  /// keep learning, and a later candidate carries the accumulated gain).
  double MinRelativeSaving = 0.02;
};

/// One priced candidate rebalance.
struct RebalanceQuote {
  /// Units the minimal-move redistribution would transfer.
  std::int64_t MovedUnits = 0;
  /// MovedUnits priced into bytes (BytesPerUnit).
  unsigned long long MigrationBytes = 0;
  /// Virtual seconds of the migration: busiest rank's send + receive
  /// volume over the configured link.
  double MigrationSeconds = 0.0;
  /// Solver + halo re-setup overhead.
  double OverheadSeconds = 0.0;
  /// Measured round time under the current distribution (max windowed
  /// per-rank time over the active ranks).
  double CurrentRoundSeconds = 0.0;
  /// Projected round time under the candidate (per-rank EWMA rates
  /// scaled to the candidate's unit counts).
  double CandidateRoundSeconds = 0.0;
  /// CurrentRoundSeconds - CandidateRoundSeconds (may be negative).
  double SavingsPerRound = 0.0;
  /// SavingsPerRound * HorizonRounds - (migration + overhead).
  double NetBenefit = 0.0;
  /// True when the net benefit clears the approval bar.
  bool Approved = false;
};

/// Lifetime tallies of one arbiter, for reports and tripwires.
struct ArbiterCounters {
  std::uint64_t Quotes = 0;
  std::uint64_t Approvals = 0;
  std::uint64_t Vetoes = 0;
  /// Sum of NetBenefit over approved quotes (projected seconds saved).
  double ApprovedBenefit = 0.0;
  /// Sum of MigrationBytes over approved quotes.
  unsigned long long ApprovedBytes = 0;
};

/// Deterministic, communication-free pricing of candidate rebalances.
/// Replicated per rank like the monitor: identical inputs yield the same
/// verdict everywhere without coordination.
class CostArbiter {
public:
  explicit CostArbiter(const ArbiterConfig &Cfg);

  /// Prices adopting \p Candidate in place of \p Current. \p EwmaTimes
  /// and \p Active are the monitor's window: per-rank smoothed times and
  /// the active mask (one entry per rank; inactive ranks contribute
  /// neither rate nor round time). Updates the counters.
  RebalanceQuote quote(const Dist &Current, const Dist &Candidate,
                       std::span<const double> EwmaTimes,
                       std::span<const std::uint8_t> Active);

  const ArbiterCounters &counters() const { return Counters; }
  const ArbiterConfig &config() const { return Cfg; }

private:
  ArbiterConfig Cfg;
  ArbiterCounters Counters;
};

} // namespace equalize
} // namespace fupermod

#endif // FUPERMOD_EQUALIZE_COSTARBITER_H
