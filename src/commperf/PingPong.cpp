//===-- commperf/PingPong.cpp - Link benchmarking -------------------------===//

#include "commperf/PingPong.h"

#include <cassert>

using namespace fupermod;

std::vector<CommSample>
fupermod::pingPong(Comm &C, int A, int B,
                   std::span<const std::size_t> Sizes,
                   int RoundTripsPerSize) {
  assert(A >= 0 && A < C.size() && B >= 0 && B < C.size() && A != B &&
         "invalid rank pair");
  assert(RoundTripsPerSize >= 1 && "need at least one round trip");
  enum : int { TagPing = (1 << 27) + 1, TagPong };

  std::vector<CommSample> Samples;
  Samples.reserve(Sizes.size());
  for (std::size_t Bytes : Sizes) {
    // Align clocks so the round-trip time is attributable to this
    // exchange alone.
    C.barrier();
    double OneWay = 0.0;
    if (C.rank() == A) {
      double Start = C.time();
      std::vector<std::byte> Payload(Bytes);
      for (int Rep = 0; Rep < RoundTripsPerSize; ++Rep) {
        C.sendBytes(B, TagPing, Payload);
        C.recvBytes(B, TagPong);
      }
      OneWay = (C.time() - Start) /
               (2.0 * static_cast<double>(RoundTripsPerSize));
    } else if (C.rank() == B) {
      for (int Rep = 0; Rep < RoundTripsPerSize; ++Rep) {
        std::vector<std::byte> Echo = C.recvBytes(A, TagPing);
        C.sendBytes(A, TagPong, Echo);
      }
    }
    // Everyone gets the sample (and the barrier keeps idle ranks from
    // racing ahead into the next size).
    C.bcastValue(OneWay, A);
    CommSample S;
    S.Bytes = Bytes;
    S.Time = OneWay;
    Samples.push_back(S);
  }
  return Samples;
}
