//===-- commperf/HockneyFit.h - Link parameter fitting ----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Least-squares estimation of Hockney link parameters (latency alpha and
/// inverse bandwidth beta) from ping-pong samples, plus analytic time
/// predictions for the runtime's collective algorithms under a fitted (or
/// configured) link. Predictions are exact for the runtime's virtual-time
/// semantics, which makes them a strong end-to-end consistency check of
/// the whole communication model (see CommPerfTest).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_COMMPERF_HOCKNEYFIT_H
#define FUPERMOD_COMMPERF_HOCKNEYFIT_H

#include "commperf/PingPong.h"
#include "mpp/CostModel.h"

#include <optional>

namespace fupermod {

/// Fits time = Latency + Bytes * BytePeriod to the samples by ordinary
/// least squares. Needs at least two distinct sizes; returns std::nullopt
/// for degenerate inputs (including a non-positive fitted bandwidth).
/// A tiny negative fitted latency (measurement noise around a zero-latency
/// link) is clamped to zero.
std::optional<LinkCost> fitHockney(std::span<const CommSample> Samples);

/// Completion time of a binomial-tree broadcast of \p Bytes over \p P
/// ranks connected by \p Link (all clocks aligned at the start).
double predictBcast(const LinkCost &Link, int P, std::size_t Bytes);

/// Completion time of the linear gather of per-rank \p Bytes at the root.
/// Transfers are concurrent in the runtime's model, so the root finishes
/// at the slowest single transfer. Kept as the analytic lower bound the
/// binomial tree is compared against.
double predictGatherLinear(const LinkCost &Link, int P, std::size_t Bytes);

/// Completion time of the binomial-tree gatherv of per-rank \p Bytes at
/// the root (the runtime's algorithm): each merge node forwards a sizes
/// header (8 bytes per covered rank) followed by its accumulated data.
double predictGatherBinomial(const LinkCost &Link, int P, std::size_t Bytes);

/// Completion time of the ring allgatherv with equal per-rank chunks.
double predictRingAllgather(const LinkCost &Link, int P,
                            std::size_t ChunkBytes);

/// Completion time of the runtime's *two-level* broadcast of \p Bytes on
/// a node-contiguous platform: \p NodeSizes[k] ranks on node k, ranks
/// numbered node-by-node, root = rank 0 (the leader of node 0). Stage 1
/// is a binomial tree over the node leaders on \p Inter; stage 2 a
/// binomial tree inside each node on \p Intra. Exact for the runtime's
/// virtual-time semantics (all clocks aligned at the start).
double predictBcastTwoLevel(const LinkCost &Intra, const LinkCost &Inter,
                            std::span<const int> NodeSizes,
                            std::size_t Bytes);

/// Completion time (root's clock) of the runtime's two-level gatherv of
/// \p BytesPerRank from every rank, same platform conventions as
/// predictBcastTwoLevel: stage 1 gathers each node at its leader on
/// \p Intra, stage 2 gathers the packed node blocks (8-byte member-size
/// headers plus data) at rank 0 on \p Inter.
double predictGatherTwoLevel(const LinkCost &Intra, const LinkCost &Inter,
                             std::span<const int> NodeSizes,
                             std::size_t BytesPerRank);

} // namespace fupermod

#endif // FUPERMOD_COMMPERF_HOCKNEYFIT_H
