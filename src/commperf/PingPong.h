//===-- commperf/PingPong.h - Link benchmarking -----------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Point-to-point communication benchmarking on the SPMD runtime. The
/// FuPerMod research line pairs computation performance models with
/// *communication* performance models (the same group's MPIBlib); this
/// library provides the measurement side: ping-pong experiments between
/// rank pairs, producing (message size, one-way time) samples that
/// HockneyFit turns into link parameters.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_COMMPERF_PINGPONG_H
#define FUPERMOD_COMMPERF_PINGPONG_H

#include "mpp/Comm.h"

#include <span>
#include <vector>

namespace fupermod {

/// One point-to-point measurement.
struct CommSample {
  /// Message payload in bytes.
  std::size_t Bytes = 0;
  /// One-way message time in (virtual) seconds.
  double Time = 0.0;
};

/// Runs ping-pong between ranks \p A and \p B of \p C for every message
/// size in \p Sizes and returns one sample per size (one-way time =
/// round-trip / 2). Collective over \p C: every rank must call it; ranks
/// other than A and B only take part in the surrounding barriers. The
/// returned samples are valid on every rank (broadcast internally).
std::vector<CommSample> pingPong(Comm &C, int A, int B,
                                 std::span<const std::size_t> Sizes,
                                 int RoundTripsPerSize = 3);

} // namespace fupermod

#endif // FUPERMOD_COMMPERF_PINGPONG_H
