//===-- commperf/HockneyFit.cpp - Link parameter fitting ------------------===//

#include "commperf/HockneyFit.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

using namespace fupermod;

std::optional<LinkCost>
fupermod::fitHockney(std::span<const CommSample> Samples) {
  if (Samples.size() < 2)
    return std::nullopt;
  double SumB = 0.0, SumT = 0.0, SumBB = 0.0, SumBT = 0.0;
  for (const CommSample &S : Samples) {
    double B = static_cast<double>(S.Bytes);
    SumB += B;
    SumT += S.Time;
    SumBB += B * B;
    SumBT += B * S.Time;
  }
  double N = static_cast<double>(Samples.size());
  double Det = N * SumBB - SumB * SumB;
  if (Det <= 0.0)
    return std::nullopt; // All sizes identical: slope undetermined.
  double Beta = (N * SumBT - SumB * SumT) / Det;
  double Alpha = (SumT - Beta * SumB) / N;
  if (Beta <= 0.0)
    return std::nullopt;
  LinkCost Link;
  Link.Latency = std::max(Alpha, 0.0);
  Link.BytePeriod = Beta;
  return Link;
}

double fupermod::predictBcast(const LinkCost &Link, int P,
                              std::size_t Bytes) {
  assert(P >= 1 && "empty communicator");
  if (P == 1)
    return 0.0;
  double Transfer = Link.transferTime(Bytes);

  // Replay the binomial tree's arithmetic: node r becomes ready at
  // Ready[r]; it then sends to r + mask for mask halving down from its
  // subtree size, paying the injection latency per send. Parents have
  // smaller relative ranks than their children, so one ascending pass
  // suffices.
  std::vector<double> Ready(static_cast<std::size_t>(P), 0.0);
  unsigned TopMask = 1;
  while (static_cast<int>(TopMask << 1) < P)
    TopMask <<= 1;
  double Completion = 0.0;
  for (int R = 0; R < P; ++R) {
    unsigned Mask;
    if (R == 0) {
      Mask = TopMask;
    } else {
      Mask = 1;
      while ((static_cast<unsigned>(R) & Mask) == 0)
        Mask <<= 1;
      Mask >>= 1;
    }
    double Clock = Ready[static_cast<std::size_t>(R)];
    Completion = std::max(Completion, Clock);
    for (; Mask > 0; Mask >>= 1) {
      int Child = R + static_cast<int>(Mask);
      if (Child >= P)
        continue;
      Ready[static_cast<std::size_t>(Child)] = Clock + Transfer;
      Completion =
          std::max(Completion, Ready[static_cast<std::size_t>(Child)]);
      Clock += Link.Latency;
    }
  }
  return Completion;
}

double fupermod::predictGatherLinear(const LinkCost &Link, int P,
                                     std::size_t Bytes) {
  assert(P >= 1 && "empty communicator");
  if (P == 1)
    return 0.0;
  // Each non-root sends a small count message (latency-dominated) then
  // the payload; transfers from different senders proceed concurrently
  // in the runtime's model, so the root finishes with the slowest single
  // sender: latency (count) + latency + payload transfer.
  return Link.Latency + Link.transferTime(Bytes);
}

double fupermod::predictGatherBinomial(const LinkCost &Link, int P,
                                       std::size_t Bytes) {
  assert(P >= 1 && "empty communicator");
  if (P == 1)
    return 0.0;
  // Replay the runtime's tree arithmetic. A node whose relrank has
  // lowest set bit M merges its subtree (masks 1..M/2, ascending — the
  // same order the runtime receives in), then sends a sizes header (one
  // uint64 per covered rank) followed by its accumulated data to r - M,
  // paying the injection latency per send. Processing masks in ascending
  // order globally finalises every sender's clock before its send.
  std::vector<double> Clock(static_cast<std::size_t>(P), 0.0);
  for (unsigned Mask = 1; static_cast<int>(Mask) < P; Mask <<= 1) {
    for (int R = static_cast<int>(Mask); R < P;
         R += static_cast<int>(Mask << 1)) {
      auto Covered = static_cast<std::size_t>(
          std::min<int>(static_cast<int>(Mask), P - R));
      double &Sender = Clock[static_cast<std::size_t>(R)];
      double &Parent = Clock[static_cast<std::size_t>(R - Mask)];
      double SizesArrival =
          Sender + Link.transferTime(Covered * sizeof(std::uint64_t));
      Sender += Link.Latency;
      double DataArrival = Sender + Link.transferTime(Covered * Bytes);
      Sender += Link.Latency;
      Parent = std::max(Parent, SizesArrival);
      Parent = std::max(Parent, DataArrival);
    }
  }
  return Clock[0];
}

double fupermod::predictRingAllgather(const LinkCost &Link, int P,
                                      std::size_t ChunkBytes) {
  assert(P >= 1 && "empty communicator");
  if (P == 1)
    return 0.0;
  return static_cast<double>(P - 1) * Link.transferTime(ChunkBytes);
}
