//===-- commperf/HockneyFit.cpp - Link parameter fitting ------------------===//

#include "commperf/HockneyFit.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

using namespace fupermod;

std::optional<LinkCost>
fupermod::fitHockney(std::span<const CommSample> Samples) {
  if (Samples.size() < 2)
    return std::nullopt;
  double SumB = 0.0, SumT = 0.0, SumBB = 0.0, SumBT = 0.0;
  for (const CommSample &S : Samples) {
    double B = static_cast<double>(S.Bytes);
    SumB += B;
    SumT += S.Time;
    SumBB += B * B;
    SumBT += B * S.Time;
  }
  double N = static_cast<double>(Samples.size());
  double Det = N * SumBB - SumB * SumB;
  if (Det <= 0.0)
    return std::nullopt; // All sizes identical: slope undetermined.
  double Beta = (N * SumBT - SumB * SumT) / Det;
  double Alpha = (SumT - Beta * SumB) / N;
  if (Beta <= 0.0)
    return std::nullopt;
  LinkCost Link;
  Link.Latency = std::max(Alpha, 0.0);
  Link.BytePeriod = Beta;
  return Link;
}

double fupermod::predictBcast(const LinkCost &Link, int P,
                              std::size_t Bytes) {
  assert(P >= 1 && "empty communicator");
  if (P == 1)
    return 0.0;
  double Transfer = Link.transferTime(Bytes);

  // Replay the binomial tree's arithmetic: node r becomes ready at
  // Ready[r]; it then sends to r + mask for mask halving down from its
  // subtree size, paying the injection latency per send. Parents have
  // smaller relative ranks than their children, so one ascending pass
  // suffices.
  std::vector<double> Ready(static_cast<std::size_t>(P), 0.0);
  unsigned TopMask = 1;
  while (static_cast<int>(TopMask << 1) < P)
    TopMask <<= 1;
  double Completion = 0.0;
  for (int R = 0; R < P; ++R) {
    unsigned Mask;
    if (R == 0) {
      Mask = TopMask;
    } else {
      Mask = 1;
      while ((static_cast<unsigned>(R) & Mask) == 0)
        Mask <<= 1;
      Mask >>= 1;
    }
    double Clock = Ready[static_cast<std::size_t>(R)];
    Completion = std::max(Completion, Clock);
    for (; Mask > 0; Mask >>= 1) {
      int Child = R + static_cast<int>(Mask);
      if (Child >= P)
        continue;
      Ready[static_cast<std::size_t>(Child)] = Clock + Transfer;
      Completion =
          std::max(Completion, Ready[static_cast<std::size_t>(Child)]);
      Clock += Link.Latency;
    }
  }
  return Completion;
}

double fupermod::predictGatherLinear(const LinkCost &Link, int P,
                                     std::size_t Bytes) {
  assert(P >= 1 && "empty communicator");
  if (P == 1)
    return 0.0;
  // Each non-root sends a small count message (latency-dominated) then
  // the payload; transfers from different senders proceed concurrently
  // in the runtime's model, so the root finishes with the slowest single
  // sender: latency (count) + latency + payload transfer.
  return Link.Latency + Link.transferTime(Bytes);
}

double fupermod::predictGatherBinomial(const LinkCost &Link, int P,
                                       std::size_t Bytes) {
  assert(P >= 1 && "empty communicator");
  if (P == 1)
    return 0.0;
  // Replay the runtime's tree arithmetic. A node whose relrank has
  // lowest set bit M merges its subtree (masks 1..M/2, ascending — the
  // same order the runtime receives in), then sends a sizes header (one
  // uint64 per covered rank) followed by its accumulated data to r - M,
  // paying the injection latency per send. Processing masks in ascending
  // order globally finalises every sender's clock before its send.
  std::vector<double> Clock(static_cast<std::size_t>(P), 0.0);
  for (unsigned Mask = 1; static_cast<int>(Mask) < P; Mask <<= 1) {
    for (int R = static_cast<int>(Mask); R < P;
         R += static_cast<int>(Mask << 1)) {
      auto Covered = static_cast<std::size_t>(
          std::min<int>(static_cast<int>(Mask), P - R));
      double &Sender = Clock[static_cast<std::size_t>(R)];
      double &Parent = Clock[static_cast<std::size_t>(R - Mask)];
      double SizesArrival =
          Sender + Link.transferTime(Covered * sizeof(std::uint64_t));
      Sender += Link.Latency;
      double DataArrival = Sender + Link.transferTime(Covered * Bytes);
      Sender += Link.Latency;
      Parent = std::max(Parent, SizesArrival);
      Parent = std::max(Parent, DataArrival);
    }
  }
  return Clock[0];
}

double fupermod::predictRingAllgather(const LinkCost &Link, int P,
                                      std::size_t ChunkBytes) {
  assert(P >= 1 && "empty communicator");
  if (P == 1)
    return 0.0;
  return static_cast<double>(P - 1) * Link.transferTime(ChunkBytes);
}

namespace {

/// Replays the runtime's binomial payload broadcast over one rank list,
/// rooted at list index 0. \p Clock[i] holds member i's virtual time on
/// entry (non-zero for a leader that already ran an earlier stage) and
/// its post-stage time on return — receivers advance to max(now,
/// arrival), senders pay one injection latency per child.
void replayBcastTree(std::vector<double> &Clock, const LinkCost &Link,
                     std::size_t Bytes) {
  int N = static_cast<int>(Clock.size());
  if (N <= 1)
    return;
  double Transfer = Link.transferTime(Bytes);
  unsigned TopMask = 1;
  while (static_cast<int>(TopMask << 1) < N)
    TopMask <<= 1;
  // Parents have smaller list indices than their children, so one
  // ascending pass finalises every receiver's clock before its sends.
  for (int R = 0; R < N; ++R) {
    unsigned Mask;
    if (R == 0) {
      Mask = TopMask;
    } else {
      Mask = 1;
      while ((static_cast<unsigned>(R) & Mask) == 0)
        Mask <<= 1;
      Mask >>= 1;
    }
    for (; Mask > 0; Mask >>= 1) {
      int Child = R + static_cast<int>(Mask);
      if (Child >= N)
        continue;
      Clock[static_cast<std::size_t>(Child)] =
          std::max(Clock[static_cast<std::size_t>(Child)],
                   Clock[static_cast<std::size_t>(R)] + Transfer);
      Clock[static_cast<std::size_t>(R)] += Link.Latency;
    }
  }
}

/// Replays the runtime's binomial gather over one rank list, rooted at
/// list index 0. \p Clock[i] / \p Bytes[i] hold member i's start time
/// and payload bytes; on return Clock[0] is the root's completion and
/// Bytes[0] the combined payload. Each merge node sends a sizes header
/// (one uint64 per covered member) then its accumulated data.
void replayGatherTree(std::vector<double> &Clock,
                      std::vector<std::uint64_t> &Bytes,
                      const LinkCost &Link) {
  int N = static_cast<int>(Clock.size());
  for (unsigned Mask = 1; static_cast<int>(Mask) < N; Mask <<= 1) {
    for (int R = static_cast<int>(Mask); R < N;
         R += static_cast<int>(Mask << 1)) {
      auto Covered = static_cast<std::size_t>(
          std::min<int>(static_cast<int>(Mask), N - R));
      double &Sender = Clock[static_cast<std::size_t>(R)];
      double &Parent = Clock[static_cast<std::size_t>(R - Mask)];
      double SizesArrival =
          Sender + Link.transferTime(Covered * sizeof(std::uint64_t));
      Sender += Link.Latency;
      double DataArrival =
          Sender + Link.transferTime(Bytes[static_cast<std::size_t>(R)]);
      Sender += Link.Latency;
      Parent = std::max(Parent, SizesArrival);
      Parent = std::max(Parent, DataArrival);
      Bytes[static_cast<std::size_t>(R - Mask)] +=
          Bytes[static_cast<std::size_t>(R)];
    }
  }
}

} // namespace

double fupermod::predictBcastTwoLevel(const LinkCost &Intra,
                                      const LinkCost &Inter,
                                      std::span<const int> NodeSizes,
                                      std::size_t Bytes) {
  assert(!NodeSizes.empty() && "empty platform");
  // Stage 1: the inter-node tree over the node leaders (rank 0 roots it).
  std::vector<double> Leader(NodeSizes.size(), 0.0);
  replayBcastTree(Leader, Inter, Bytes);
  // Stage 2: each node drains from its leader; completion is the global
  // maximum (trailing sender latencies are always dominated by the last
  // child's arrival, so the max over clocks equals the measured max over
  // rank exit times).
  double Completion = 0.0;
  for (std::size_t K = 0; K < NodeSizes.size(); ++K) {
    assert(NodeSizes[K] > 0 && "empty node");
    std::vector<double> Clock(static_cast<std::size_t>(NodeSizes[K]), 0.0);
    Clock[0] = Leader[K];
    replayBcastTree(Clock, Intra, Bytes);
    for (double T : Clock)
      Completion = std::max(Completion, T);
  }
  return Completion;
}

double fupermod::predictGatherTwoLevel(const LinkCost &Intra,
                                       const LinkCost &Inter,
                                       std::span<const int> NodeSizes,
                                       std::size_t BytesPerRank) {
  assert(!NodeSizes.empty() && "empty platform");
  // Stage 1: gather each node at its leader; the leader then packs the
  // node block (one uint64 per member plus the concatenated data).
  std::vector<double> LeaderClock(NodeSizes.size(), 0.0);
  std::vector<std::uint64_t> BlockBytes(NodeSizes.size(), 0);
  for (std::size_t K = 0; K < NodeSizes.size(); ++K) {
    assert(NodeSizes[K] > 0 && "empty node");
    auto M = static_cast<std::size_t>(NodeSizes[K]);
    std::vector<double> Clock(M, 0.0);
    std::vector<std::uint64_t> Bytes(M, BytesPerRank);
    replayGatherTree(Clock, Bytes, Intra);
    LeaderClock[K] = Clock[0];
    BlockBytes[K] = M * sizeof(std::uint64_t) + M * BytesPerRank;
  }
  // Stage 2: gather the node blocks at rank 0 over the network.
  replayGatherTree(LeaderClock, BlockBytes, Inter);
  return LeaderClock[0];
}
