//===-- interp/AkimaSpline.h - Akima spline interpolation -------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Akima (1970) spline interpolation. The Akima-spline functional
/// performance model (paper Fig. 2(b), ref [15]) uses this interpolant
/// because it is C1 (the numerical partitioner needs a continuous
/// derivative) and, unlike cubic splines, does not oscillate around
/// outliers in empirical performance data.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_INTERP_AKIMASPLINE_H
#define FUPERMOD_INTERP_AKIMASPLINE_H

#include "interp/Interpolator.h"

namespace fupermod {

/// Akima sub-spline interpolant.
///
/// Each interval uses a cubic Hermite segment whose endpoint tangents are
/// the Akima weighted averages of neighbouring secant slopes; two ghost
/// points are synthesised at each boundary following Akima's original
/// prescription. Degenerates gracefully: one knot is a constant, two knots
/// a straight line.
class AkimaSpline : public Interpolator {
public:
  AkimaSpline() = default;

  /// Convenience constructor that fits immediately.
  AkimaSpline(std::span<const double> Xs, std::span<const double> Ys,
              Extrapolation Policy = Extrapolation::Linear);

  void fit(std::span<const double> Xs, std::span<const double> Ys,
           Extrapolation Policy) override;
  double eval(double X) const override;
  void evalMany(std::span<const double> Xs,
                std::span<double> Out) const override;
  double derivative(double X) const override;
  std::size_t size() const override { return Xs.size(); }

  /// Fitted abscissae.
  const std::vector<double> &xs() const { return Xs; }
  /// Fitted ordinates.
  const std::vector<double> &ys() const { return Ys; }
  /// Knot tangents computed by the Akima rule.
  const std::vector<double> &tangents() const { return Tangents; }

private:
  std::size_t segmentIndex(double X) const;
  double evalSegment(std::size_t I, double X) const;
  void computeTangents();

  std::vector<double> Xs;
  std::vector<double> Ys;
  std::vector<double> Tangents;
  Extrapolation Policy = Extrapolation::Linear;
};

} // namespace fupermod

#endif // FUPERMOD_INTERP_AKIMASPLINE_H
