//===-- interp/CubicSpline.cpp - Natural cubic spline ---------------------===//

#include "interp/CubicSpline.h"

#include <algorithm>
#include <cassert>

using namespace fupermod;

CubicSpline::CubicSpline(std::span<const double> Xs,
                         std::span<const double> Ys, Extrapolation Policy) {
  fit(Xs, Ys, Policy);
}

void CubicSpline::fit(std::span<const double> InXs,
                      std::span<const double> InYs, Extrapolation InPolicy) {
  assert(InXs.size() == InYs.size() && "mismatched sample lengths");
  assert(!InXs.empty() && "cannot fit an empty sample");
  assert(isStrictlyIncreasing(InXs) && "abscissae must strictly increase");
  Xs.assign(InXs.begin(), InXs.end());
  Ys.assign(InYs.begin(), InYs.end());
  Policy = InPolicy;

  std::size_t N = Xs.size();
  M2.assign(N, 0.0);
  if (N < 3)
    return; // One or two knots: constant/straight line, M2 = 0.

  // Solve the tridiagonal system for the interior second derivatives
  // (Thomas algorithm); natural boundary: M2[0] = M2[N-1] = 0.
  std::vector<double> Diag(N, 2.0);
  std::vector<double> Rhs(N, 0.0);
  std::vector<double> H(N - 1);
  for (std::size_t I = 0; I + 1 < N; ++I)
    H[I] = Xs[I + 1] - Xs[I];
  for (std::size_t I = 1; I + 1 < N; ++I) {
    double SlopeRight = (Ys[I + 1] - Ys[I]) / H[I];
    double SlopeLeft = (Ys[I] - Ys[I - 1]) / H[I - 1];
    Rhs[I] = 6.0 * (SlopeRight - SlopeLeft) / (H[I - 1] + H[I]);
  }
  // Off-diagonals: mu (lower) and lambda (upper), normalised form.
  std::vector<double> Lower(N, 0.0), Upper(N, 0.0);
  for (std::size_t I = 1; I + 1 < N; ++I) {
    Lower[I] = H[I - 1] / (H[I - 1] + H[I]);
    Upper[I] = H[I] / (H[I - 1] + H[I]);
  }
  // Forward sweep on interior rows 1..N-2.
  for (std::size_t I = 2; I + 1 < N; ++I) {
    double Factor = Lower[I] / Diag[I - 1];
    Diag[I] -= Factor * Upper[I - 1];
    Rhs[I] -= Factor * Rhs[I - 1];
  }
  for (std::size_t I = N - 2; I >= 1; --I) {
    double Next = I + 1 < N - 1 ? M2[I + 1] : 0.0;
    M2[I] = (Rhs[I] - Upper[I] * Next) / Diag[I];
    if (I == 1)
      break;
  }
}

std::size_t CubicSpline::segmentIndex(double X) const {
  assert(Xs.size() >= 2 && "segment lookup needs two knots");
  if (X <= Xs.front())
    return 0;
  if (X >= Xs[Xs.size() - 2])
    return Xs.size() - 2;
  auto It = std::upper_bound(Xs.begin(), Xs.end(), X);
  return static_cast<std::size_t>(It - Xs.begin()) - 1;
}

double CubicSpline::eval(double X) const {
  assert(!Xs.empty() && "interpolator not fitted");
  if (Xs.size() == 1)
    return Ys.front();
  if (X < Xs.front()) {
    if (Policy == Extrapolation::Clamp)
      return Ys.front();
    return Ys.front() + derivative(Xs.front()) * (X - Xs.front());
  }
  if (X > Xs.back()) {
    if (Policy == Extrapolation::Clamp)
      return Ys.back();
    return Ys.back() + derivative(Xs.back()) * (X - Xs.back());
  }
  std::size_t I = segmentIndex(X);
  double H = Xs[I + 1] - Xs[I];
  double A = (Xs[I + 1] - X) / H;
  double B = (X - Xs[I]) / H;
  return A * Ys[I] + B * Ys[I + 1] +
         ((A * A * A - A) * M2[I] + (B * B * B - B) * M2[I + 1]) * H * H /
             6.0;
}

double CubicSpline::derivative(double X) const {
  assert(!Xs.empty() && "interpolator not fitted");
  if (Xs.size() == 1)
    return 0.0;
  if (X < Xs.front())
    return Policy == Extrapolation::Clamp ? 0.0 : derivative(Xs.front());
  if (X > Xs.back())
    return Policy == Extrapolation::Clamp ? 0.0 : derivative(Xs.back());
  std::size_t I = segmentIndex(X);
  double H = Xs[I + 1] - Xs[I];
  double A = (Xs[I + 1] - X) / H;
  double B = (X - Xs[I]) / H;
  return (Ys[I + 1] - Ys[I]) / H -
         (3.0 * A * A - 1.0) * H * M2[I] / 6.0 +
         (3.0 * B * B - 1.0) * H * M2[I + 1] / 6.0;
}
