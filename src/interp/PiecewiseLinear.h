//===-- interp/PiecewiseLinear.h - Piecewise-linear interp ------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Piecewise-linear interpolation of empirical data, used by the
/// piecewise-linear functional performance model (paper Fig. 2(a)).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_INTERP_PIECEWISELINEAR_H
#define FUPERMOD_INTERP_PIECEWISELINEAR_H

#include "interp/Interpolator.h"

namespace fupermod {

/// Piecewise-linear interpolant through a set of knots.
class PiecewiseLinear : public Interpolator {
public:
  PiecewiseLinear() = default;

  /// Convenience constructor that fits immediately.
  PiecewiseLinear(std::span<const double> Xs, std::span<const double> Ys,
                  Extrapolation Policy = Extrapolation::Linear);

  void fit(std::span<const double> Xs, std::span<const double> Ys,
           Extrapolation Policy) override;
  double eval(double X) const override;
  void evalMany(std::span<const double> Xs,
                std::span<double> Out) const override;
  double derivative(double X) const override;
  std::size_t size() const override { return Xs.size(); }

  /// Fitted abscissae.
  const std::vector<double> &xs() const { return Xs; }
  /// Fitted ordinates.
  const std::vector<double> &ys() const { return Ys; }

private:
  /// Index of the segment [Xs[I], Xs[I+1]] containing X (clamped to the
  /// boundary segments for out-of-range X). Requires at least two knots.
  std::size_t segmentIndex(double X) const;

  std::vector<double> Xs;
  std::vector<double> Ys;
  Extrapolation Policy = Extrapolation::Linear;
};

} // namespace fupermod

#endif // FUPERMOD_INTERP_PIECEWISELINEAR_H
