//===-- interp/CubicSpline.h - Natural cubic spline -------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural cubic spline interpolation. Not used by the performance models
/// themselves — the framework follows the paper (ref [15]) in choosing
/// Akima splines because cubic splines oscillate around outliers in
/// empirical performance data — but provided as the comparison baseline
/// for the `ablation_interp` bench and as a general substrate.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_INTERP_CUBICSPLINE_H
#define FUPERMOD_INTERP_CUBICSPLINE_H

#include "interp/Interpolator.h"

namespace fupermod {

/// C2 natural cubic spline (zero second derivative at both ends).
class CubicSpline : public Interpolator {
public:
  CubicSpline() = default;

  /// Convenience constructor that fits immediately.
  CubicSpline(std::span<const double> Xs, std::span<const double> Ys,
              Extrapolation Policy = Extrapolation::Linear);

  void fit(std::span<const double> Xs, std::span<const double> Ys,
           Extrapolation Policy) override;
  double eval(double X) const override;
  double derivative(double X) const override;
  std::size_t size() const override { return Xs.size(); }

  /// Second derivatives at the knots (zero at both ends by construction).
  const std::vector<double> &secondDerivatives() const { return M2; }

private:
  std::size_t segmentIndex(double X) const;

  std::vector<double> Xs;
  std::vector<double> Ys;
  std::vector<double> M2; // Second derivative at each knot.
  Extrapolation Policy = Extrapolation::Linear;
};

} // namespace fupermod

#endif // FUPERMOD_INTERP_CUBICSPLINE_H
