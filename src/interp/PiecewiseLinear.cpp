//===-- interp/PiecewiseLinear.cpp - Piecewise-linear interp --------------===//

#include "interp/PiecewiseLinear.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace fupermod;

Interpolator::~Interpolator() = default;

void Interpolator::evalMany(std::span<const double> Xs,
                            std::span<double> Out) const {
  assert(Xs.size() == Out.size() && "mismatched batch spans");
  for (std::size_t I = 0; I < Xs.size(); ++I)
    Out[I] = eval(Xs[I]);
}

bool fupermod::isStrictlyIncreasing(std::span<const double> Xs) {
  for (std::size_t I = 1; I < Xs.size(); ++I)
    if (Xs[I] <= Xs[I - 1])
      return false;
  return true;
}

PiecewiseLinear::PiecewiseLinear(std::span<const double> Xs,
                                 std::span<const double> Ys,
                                 Extrapolation Policy) {
  fit(Xs, Ys, Policy);
}

void PiecewiseLinear::fit(std::span<const double> InXs,
                          std::span<const double> InYs,
                          Extrapolation InPolicy) {
  assert(InXs.size() == InYs.size() && "mismatched sample lengths");
  assert(!InXs.empty() && "cannot fit an empty sample");
  assert(isStrictlyIncreasing(InXs) && "abscissae must strictly increase");
  Xs.assign(InXs.begin(), InXs.end());
  Ys.assign(InYs.begin(), InYs.end());
  Policy = InPolicy;
}

std::size_t PiecewiseLinear::segmentIndex(double X) const {
  assert(Xs.size() >= 2 && "segment lookup needs two knots");
  if (X <= Xs.front())
    return 0;
  if (X >= Xs[Xs.size() - 2])
    return Xs.size() - 2;
  // First knot strictly greater than X; the segment starts one before it.
  auto It = std::upper_bound(Xs.begin(), Xs.end(), X);
  return static_cast<std::size_t>(It - Xs.begin()) - 1;
}

double PiecewiseLinear::eval(double X) const {
  assert(!Xs.empty() && "interpolator not fitted");
  if (Xs.size() == 1)
    return Ys.front();
  if (Policy == Extrapolation::Clamp) {
    if (X <= Xs.front())
      return Ys.front();
    if (X >= Xs.back())
      return Ys.back();
  }
  std::size_t I = segmentIndex(X);
  double Slope = (Ys[I + 1] - Ys[I]) / (Xs[I + 1] - Xs[I]);
  return Ys[I] + Slope * (X - Xs[I]);
}

void PiecewiseLinear::evalMany(std::span<const double> Q,
                               std::span<double> Out) const {
  assert(Q.size() == Out.size() && "mismatched batch spans");
  assert(!Xs.empty() && "interpolator not fitted");
  if (Xs.size() == 1) {
    std::fill(Out.begin(), Out.end(), Ys.front());
    return;
  }
  // One forward walk over the knots covers an ascending batch; a query
  // that breaks the order falls back to the binary-searched scalar path.
  std::size_t Seg = 0;
  double Prev = -std::numeric_limits<double>::infinity();
  for (std::size_t I = 0; I < Q.size(); ++I) {
    double X = Q[I];
    if (X < Prev) {
      Out[I] = eval(X);
      continue;
    }
    Prev = X;
    if (Policy == Extrapolation::Clamp && (X <= Xs.front() || X >= Xs.back())) {
      Out[I] = X <= Xs.front() ? Ys.front() : Ys.back();
      continue;
    }
    while (Seg + 2 < Xs.size() && Xs[Seg + 1] <= X)
      ++Seg;
    double Slope = (Ys[Seg + 1] - Ys[Seg]) / (Xs[Seg + 1] - Xs[Seg]);
    Out[I] = Ys[Seg] + Slope * (X - Xs[Seg]);
  }
}

double PiecewiseLinear::derivative(double X) const {
  assert(!Xs.empty() && "interpolator not fitted");
  if (Xs.size() == 1)
    return 0.0;
  if (Policy == Extrapolation::Clamp &&
      (X < Xs.front() || X > Xs.back()))
    return 0.0;
  std::size_t I = segmentIndex(X);
  return (Ys[I + 1] - Ys[I]) / (Xs[I + 1] - Xs[I]);
}
