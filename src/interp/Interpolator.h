//===-- interp/Interpolator.h - Interpolation interface ---------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface for 1-D interpolators of empirical (x, y) data. The
/// functional performance models (paper Section 4.2) approximate the time
/// function of a device from measured points with either piecewise-linear
/// interpolation or Akima splines; both implement this interface.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_INTERP_INTERPOLATOR_H
#define FUPERMOD_INTERP_INTERPOLATOR_H

#include <cstddef>
#include <span>
#include <vector>

namespace fupermod {

/// How an interpolator behaves outside the fitted abscissa range.
enum class Extrapolation {
  /// Hold the boundary value constant.
  Clamp,
  /// Continue the boundary segment/tangent linearly.
  Linear,
};

/// Interface for interpolating a scalar function from samples.
///
/// Implementations are fitted with strictly increasing abscissae; evaluation
/// inside the range interpolates and outside the range follows the
/// extrapolation policy supplied at fit time.
class Interpolator {
public:
  virtual ~Interpolator();

  /// Fits the interpolant to the samples (\p Xs[i], \p Ys[i]).
  ///
  /// \p Xs must be strictly increasing and non-empty, and the two spans must
  /// have equal length.
  virtual void fit(std::span<const double> Xs, std::span<const double> Ys,
                   Extrapolation Policy) = 0;

  /// Value of the interpolant at \p X.
  virtual double eval(double X) const = 0;

  /// Values of the interpolant at many points (Out.size() == Xs.size()).
  /// Equivalent to calling eval() per element; implementations accelerate
  /// ascending query batches by walking segments forward instead of
  /// binary-searching every point. The partitioners and benches evaluate
  /// sorted size grids, which is exactly this shape.
  virtual void evalMany(std::span<const double> Xs,
                        std::span<double> Out) const;

  /// First derivative of the interpolant at \p X. At knots, the derivative
  /// of the right-hand segment is reported (left-hand at the last knot).
  virtual double derivative(double X) const = 0;

  /// Number of knots the interpolant was fitted with.
  virtual std::size_t size() const = 0;
};

/// Returns true if \p Xs is strictly increasing.
bool isStrictlyIncreasing(std::span<const double> Xs);

} // namespace fupermod

#endif // FUPERMOD_INTERP_INTERPOLATOR_H
