//===-- interp/AkimaSpline.cpp - Akima spline interpolation ---------------===//

#include "interp/AkimaSpline.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace fupermod;

AkimaSpline::AkimaSpline(std::span<const double> Xs,
                         std::span<const double> Ys, Extrapolation Policy) {
  fit(Xs, Ys, Policy);
}

void AkimaSpline::fit(std::span<const double> InXs,
                      std::span<const double> InYs, Extrapolation InPolicy) {
  assert(InXs.size() == InYs.size() && "mismatched sample lengths");
  assert(!InXs.empty() && "cannot fit an empty sample");
  assert(isStrictlyIncreasing(InXs) && "abscissae must strictly increase");
  Xs.assign(InXs.begin(), InXs.end());
  Ys.assign(InYs.begin(), InYs.end());
  Policy = InPolicy;
  computeTangents();
}

void AkimaSpline::computeTangents() {
  std::size_t N = Xs.size();
  Tangents.assign(N, 0.0);
  if (N == 1)
    return;
  if (N == 2) {
    double Slope = (Ys[1] - Ys[0]) / (Xs[1] - Xs[0]);
    Tangents[0] = Tangents[1] = Slope;
    return;
  }

  // Secant slopes with two ghost slopes at each end (Akima's boundary
  // prescription: quadratic extrapolation of the slope sequence).
  std::vector<double> M(N + 3, 0.0); // M[I+2] = slope of segment I.
  for (std::size_t I = 0; I + 1 < N; ++I)
    M[I + 2] = (Ys[I + 1] - Ys[I]) / (Xs[I + 1] - Xs[I]);
  M[1] = 2.0 * M[2] - M[3];
  M[0] = 2.0 * M[1] - M[2];
  M[N + 1] = 2.0 * M[N] - M[N - 1];
  M[N + 2] = 2.0 * M[N + 1] - M[N];

  for (std::size_t I = 0; I < N; ++I) {
    double W1 = std::fabs(M[I + 3] - M[I + 2]);
    double W2 = std::fabs(M[I + 1] - M[I]);
    if (W1 + W2 == 0.0) {
      // Locally linear data: use the average of the adjacent slopes.
      Tangents[I] = 0.5 * (M[I + 1] + M[I + 2]);
      continue;
    }
    Tangents[I] = (W1 * M[I + 1] + W2 * M[I + 2]) / (W1 + W2);
  }
}

std::size_t AkimaSpline::segmentIndex(double X) const {
  assert(Xs.size() >= 2 && "segment lookup needs two knots");
  if (X <= Xs.front())
    return 0;
  if (X >= Xs[Xs.size() - 2])
    return Xs.size() - 2;
  auto It = std::upper_bound(Xs.begin(), Xs.end(), X);
  return static_cast<std::size_t>(It - Xs.begin()) - 1;
}

double AkimaSpline::eval(double X) const {
  assert(!Xs.empty() && "interpolator not fitted");
  if (Xs.size() == 1)
    return Ys.front();
  if (X < Xs.front()) {
    if (Policy == Extrapolation::Clamp)
      return Ys.front();
    return Ys.front() + Tangents.front() * (X - Xs.front());
  }
  if (X > Xs.back()) {
    if (Policy == Extrapolation::Clamp)
      return Ys.back();
    return Ys.back() + Tangents.back() * (X - Xs.back());
  }

  return evalSegment(segmentIndex(X), X);
}

double AkimaSpline::evalSegment(std::size_t I, double X) const {
  double H = Xs[I + 1] - Xs[I];
  double T = (X - Xs[I]) / H;
  double T2 = T * T;
  double T3 = T2 * T;
  // Cubic Hermite basis.
  double H00 = 2.0 * T3 - 3.0 * T2 + 1.0;
  double H10 = T3 - 2.0 * T2 + T;
  double H01 = -2.0 * T3 + 3.0 * T2;
  double H11 = T3 - T2;
  return H00 * Ys[I] + H10 * H * Tangents[I] + H01 * Ys[I + 1] +
         H11 * H * Tangents[I + 1];
}

void AkimaSpline::evalMany(std::span<const double> Q,
                           std::span<double> Out) const {
  assert(Q.size() == Out.size() && "mismatched batch spans");
  assert(!Xs.empty() && "interpolator not fitted");
  if (Xs.size() == 1) {
    std::fill(Out.begin(), Out.end(), Ys.front());
    return;
  }
  // Ascending batches walk the knot array once; out-of-order or
  // out-of-range queries take the scalar path (which also applies the
  // extrapolation policy).
  std::size_t Seg = 0;
  double Prev = -std::numeric_limits<double>::infinity();
  for (std::size_t I = 0; I < Q.size(); ++I) {
    double X = Q[I];
    if (X < Prev || X < Xs.front() || X > Xs.back()) {
      Out[I] = eval(X);
      continue;
    }
    Prev = X;
    while (Seg + 2 < Xs.size() && Xs[Seg + 1] <= X)
      ++Seg;
    Out[I] = evalSegment(Seg, X);
  }
}

double AkimaSpline::derivative(double X) const {
  assert(!Xs.empty() && "interpolator not fitted");
  if (Xs.size() == 1)
    return 0.0;
  if (X < Xs.front())
    return Policy == Extrapolation::Clamp ? 0.0 : Tangents.front();
  if (X > Xs.back())
    return Policy == Extrapolation::Clamp ? 0.0 : Tangents.back();

  std::size_t I = segmentIndex(X);
  double H = Xs[I + 1] - Xs[I];
  double T = (X - Xs[I]) / H;
  double T2 = T * T;
  // Derivatives of the Hermite basis with respect to X (chain rule 1/H).
  double D00 = (6.0 * T2 - 6.0 * T) / H;
  double D10 = 3.0 * T2 - 4.0 * T + 1.0;
  double D01 = (-6.0 * T2 + 6.0 * T) / H;
  double D11 = 3.0 * T2 - 2.0 * T;
  return D00 * Ys[I] + D10 * Tangents[I] + D01 * Ys[I + 1] +
         D11 * Tangents[I + 1];
}
