//===-- support/Options.h - Tiny command-line parser ------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal `--key value` / `--flag` command-line parsing for the tools
/// (builder, partitioner). Unknown arguments are collected so tools can
/// report them.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_OPTIONS_H
#define FUPERMOD_SUPPORT_OPTIONS_H

#include "support/Result.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fupermod {

/// Parsed command line: `--key value` pairs, bare `--flag`s (value ""),
/// and positional arguments.
class Options {
public:
  Options(int Argc, const char *const *Argv);

  /// Like the plain constructor, but keys listed in \p Flags are boolean:
  /// they never consume the following token as a value, so a flag can
  /// directly precede a positional argument (`--stats model0.fpm`).
  Options(int Argc, const char *const *Argv,
          const std::vector<std::string> &Flags);

  /// True when `--key` appeared (with or without a value).
  bool has(const std::string &Key) const;

  /// Value of `--key`, or \p Default when absent.
  std::string get(const std::string &Key,
                  const std::string &Default = "") const;

  /// Numeric accessors; fall back to \p Default when absent or
  /// unparseable.
  double getDouble(const std::string &Key, double Default) const;
  std::int64_t getInt(const std::string &Key, std::int64_t Default) const;

  /// Strict numeric accessors: an absent key yields \p Default, but a
  /// value that is present and not fully numeric is an error naming the
  /// option and the offending text — the tools print it verbatim and
  /// exit nonzero instead of silently running with the default.
  Result<std::int64_t> checkedInt(const std::string &Key,
                                  std::int64_t Default) const;
  Result<double> checkedDouble(const std::string &Key, double Default) const;

  /// `--key`s that appeared on the command line but are not in \p Known
  /// (so tools can reject mistyped flags instead of ignoring them).
  std::vector<std::string>
  unknownKeys(const std::vector<std::string> &Known) const;

  /// Arguments that did not start with `--`.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Program name (argv[0]).
  const std::string &program() const { return Program; }

private:
  std::string Program;
  std::map<std::string, std::string> Values;
  std::vector<std::string> Positional;
};

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_OPTIONS_H
