//===-- support/Options.cpp - Tiny command-line parser --------------------===//

#include "support/Options.h"

#include <algorithm>
#include <cstdlib>

using namespace fupermod;

Options::Options(int Argc, const char *const *Argv)
    : Options(Argc, Argv, {}) {}

Options::Options(int Argc, const char *const *Argv,
                 const std::vector<std::string> &Flags) {
  if (Argc > 0)
    Program = Argv[0];
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Key = Arg.substr(2);
    std::string Value;
    // `--key=value`, or `--key value` (next token not starting with --)
    // unless the key is a declared boolean flag.
    std::size_t Eq = Key.find('=');
    if (Eq != std::string::npos) {
      Value = Key.substr(Eq + 1);
      Key = Key.substr(0, Eq);
    } else if (std::find(Flags.begin(), Flags.end(), Key) == Flags.end() &&
               I + 1 < Argc &&
               std::string(Argv[I + 1]).rfind("--", 0) != 0) {
      Value = Argv[++I];
    }
    Values[Key] = Value;
  }
}

bool Options::has(const std::string &Key) const {
  return Values.count(Key) > 0;
}

std::string Options::get(const std::string &Key,
                         const std::string &Default) const {
  auto It = Values.find(Key);
  return It == Values.end() ? Default : It->second;
}

double Options::getDouble(const std::string &Key, double Default) const {
  auto It = Values.find(Key);
  if (It == Values.end() || It->second.empty())
    return Default;
  char *End = nullptr;
  double V = std::strtod(It->second.c_str(), &End);
  return End && *End == '\0' ? V : Default;
}

std::int64_t Options::getInt(const std::string &Key,
                             std::int64_t Default) const {
  auto It = Values.find(Key);
  if (It == Values.end() || It->second.empty())
    return Default;
  char *End = nullptr;
  long long V = std::strtoll(It->second.c_str(), &End, 10);
  return End && *End == '\0' ? static_cast<std::int64_t>(V) : Default;
}

Result<std::int64_t> Options::checkedInt(const std::string &Key,
                                         std::int64_t Default) const {
  using R = Result<std::int64_t>;
  auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  if (It->second.empty())
    return R::failure("option --" + Key + " requires an integer value");
  char *End = nullptr;
  long long V = std::strtoll(It->second.c_str(), &End, 10);
  if (!End || *End != '\0')
    return R::failure("option --" + Key + ": expected an integer, got '" +
                      It->second + "'");
  return static_cast<std::int64_t>(V);
}

Result<double> Options::checkedDouble(const std::string &Key,
                                      double Default) const {
  using R = Result<double>;
  auto It = Values.find(Key);
  if (It == Values.end())
    return Default;
  if (It->second.empty())
    return R::failure("option --" + Key + " requires a numeric value");
  char *End = nullptr;
  double V = std::strtod(It->second.c_str(), &End);
  if (!End || *End != '\0')
    return R::failure("option --" + Key + ": expected a number, got '" +
                      It->second + "'");
  return V;
}

std::vector<std::string>
Options::unknownKeys(const std::vector<std::string> &Known) const {
  std::vector<std::string> Out;
  for (const auto &[Key, Value] : Values)
    if (std::find(Known.begin(), Known.end(), Key) == Known.end())
      Out.push_back(Key);
  return Out;
}
