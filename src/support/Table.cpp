//===-- support/Table.cpp - Plain-text table printing ---------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace fupermod;

Table::Table(std::vector<std::string> Headers) : Headers(std::move(Headers)) {}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row width must match header");
  Rows.push_back(std::move(Cells));
}

std::string Table::num(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string Table::formatInteger(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  return Buf;
}

void Table::print(std::ostream &OS) const {
  std::vector<std::size_t> Widths(Headers.size(), 0);
  for (std::size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (std::size_t C = 0; C < Row.size(); ++C)
      if (Row[C].size() > Widths[C])
        Widths[C] = Row[C].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (std::size_t C = 0; C < Row.size(); ++C) {
      OS << Row[C];
      if (C + 1 == Row.size())
        break;
      for (std::size_t Pad = Row[C].size(); Pad < Widths[C] + 2; ++Pad)
        OS << ' ';
    }
    OS << '\n';
  };

  PrintRow(Headers);
  std::string Sep;
  for (std::size_t C = 0; C < Headers.size(); ++C) {
    Sep.append(Widths[C], '-');
    if (C + 1 != Headers.size())
      Sep.append("  ");
  }
  OS << Sep << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}
