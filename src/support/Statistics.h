//===-- support/Statistics.h - Statistical utilities ------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Running statistics (Welford) and Student-t confidence intervals used by
/// the benchmark machinery to decide when a measurement is statistically
/// reliable (paper Section 4.1: "experiments are repeated multiple times
/// until the results are statistically correct").
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_STATISTICS_H
#define FUPERMOD_SUPPORT_STATISTICS_H

#include <cstddef>
#include <span>
#include <vector>

namespace fupermod {

/// Accumulates a sample one observation at a time using Welford's
/// numerically stable online algorithm.
class RunningStat {
public:
  /// Adds one observation to the sample.
  void push(double X);

  /// Number of observations accumulated so far.
  std::size_t count() const { return N; }

  /// Sample mean; 0 for an empty sample.
  double mean() const { return N > 0 ? Mean : 0.0; }

  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Removes all observations.
  void clear();

private:
  std::size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
};

/// Supported two-sided confidence levels for Student-t intervals.
enum class ConfidenceLevel { CL90, CL95, CL99 };

/// Returns the two-sided Student-t critical value for \p DegreesOfFreedom
/// at the given confidence level. Values for df in [1, 30] come from
/// standard tables; larger df fall back to the normal-approximation tail.
double studentTCritical(std::size_t DegreesOfFreedom, ConfidenceLevel Level);

/// Half-width of the two-sided Student-t confidence interval around the
/// sample mean of \p Stat. Returns +inf for samples with fewer than two
/// observations (no interval can be formed yet).
double confidenceHalfWidth(const RunningStat &Stat, ConfidenceLevel Level);

/// Relative confidence-interval half width (half width / mean). Returns
/// +inf when the mean is zero or the sample is too small.
double relativeError(const RunningStat &Stat, ConfidenceLevel Level);

/// Median of \p Sample (averaged middle pair for even sizes). The input
/// is copied; an empty sample returns 0.
double median(std::span<const double> Sample);

/// Median absolute deviation of \p Sample, scaled by 1.4826 so it
/// estimates the standard deviation for normal data.
double medianAbsoluteDeviation(std::span<const double> Sample);

/// Returns the elements of \p Sample within \p Cutoff scaled MADs of the
/// median — robust outlier rejection for timing data, where scheduler
/// hiccups inject occasional large spikes that would otherwise corrupt
/// the mean. A zero MAD (at least half the sample identical) keeps the
/// sample unchanged.
std::vector<double> rejectOutliers(std::span<const double> Sample,
                                   double Cutoff = 3.5);

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_STATISTICS_H
