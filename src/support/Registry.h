//===-- support/Registry.h - Name -> factory registries ---------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic name -> factory table for one family of interchangeable
/// framework components. The paper presents models, partitioning
/// algorithms and kernels as pluggable parts of one measure -> model ->
/// partition workflow; the registries make that concrete: each family has
/// exactly one table, built-in implementations self-register where they
/// are defined, and lookups *return* errors (naming every registered
/// alternative) instead of asserting, so a typo on a command line or in a
/// request file is diagnosable rather than fatal.
///
/// Instantiated for models (core/Model.h: modelRegistry), partitioners
/// (core/Partitioners.h: partitionerRegistry) and kernels
/// (core/Kernel.h: kernelRegistry).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_REGISTRY_H
#define FUPERMOD_SUPPORT_REGISTRY_H

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace fupermod {

/// A name -> factory table producing ProductT from ArgTs.
///
/// Registration order is irrelevant: names() and diagnostics list entries
/// sorted, so error messages are deterministic.
template <class ProductT, class... ArgTs> class Registry {
public:
  using Product = ProductT;
  using Factory = std::function<ProductT(ArgTs...)>;

  /// \p Family names the component family in diagnostics ("model",
  /// "partitioner", "kernel").
  explicit Registry(std::string Family) : Family(std::move(Family)) {}

  /// Registers \p Factory under \p Name. Returns false (and keeps the
  /// existing entry) when the name is already taken.
  bool add(const std::string &Name, Factory F) {
    if (Name.empty() || !F)
      return false;
    return Factories.emplace(Name, std::move(F)).second;
  }

  /// True when \p Name is registered.
  bool contains(const std::string &Name) const {
    return Factories.count(Name) > 0;
  }

  /// All registered names, sorted.
  std::vector<std::string> names() const {
    std::vector<std::string> Out;
    Out.reserve(Factories.size());
    for (const auto &[Name, F] : Factories)
      Out.push_back(Name);
    return Out;
  }

  /// Number of registered factories.
  std::size_t size() const { return Factories.size(); }

  /// The diagnostic produced for a lookup of unknown \p Name: names the
  /// family and lists every registered alternative.
  std::string unknownNameError(const std::string &Name) const {
    std::string Msg = "unknown " + Family + " '" + Name + "' (registered: ";
    bool First = true;
    for (const auto &[Known, F] : Factories) {
      if (!First)
        Msg += ", ";
      Msg += Known;
      First = false;
    }
    if (Factories.empty())
      Msg += "none";
    Msg += ")";
    return Msg;
  }

  /// Creates the product registered under \p Name. On an unknown name,
  /// returns a default-constructed (null/empty) product and, when \p Err
  /// is non-null, stores the unknownNameError diagnostic.
  ProductT create(const std::string &Name, ArgTs... Args,
                  std::string *Err = nullptr) const {
    auto It = Factories.find(Name);
    if (It == Factories.end()) {
      if (Err)
        *Err = unknownNameError(Name);
      return ProductT();
    }
    if (Err)
      Err->clear();
    return It->second(std::forward<ArgTs>(Args)...);
  }

private:
  std::string Family;
  std::map<std::string, Factory> Factories;
};

/// Registers a factory at static-initialization time. Place one at file
/// scope next to the implementation:
///
///   static Registrar<ModelRegistry> X(modelRegistry(), "akima",
///       [] { return std::make_unique<AkimaModel>(); });
///
/// The component's translation unit is linked in whenever the registry
/// accessor it references is used, so built-ins are always registered
/// before the first lookup.
template <class RegistryT> struct Registrar {
  Registrar(RegistryT &R, const std::string &Name,
            typename RegistryT::Factory F) {
    R.add(Name, std::move(F));
  }
};

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_REGISTRY_H
