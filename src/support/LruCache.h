//===-- support/LruCache.h - Fixed-capacity LRU cache -----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-capacity least-recently-used cache. The engine server
/// keys recent partition results by (model epoch, total, algorithm) so a
/// repeated request is answered without re-running the solver; keying on
/// the epoch makes every entry self-invalidating across hot reloads (an
/// entry computed against a dead epoch can never match a live lookup).
///
/// Not internally synchronised: the owner serialises access (the server
/// guards it with the same mutex as its coalescing table). Lookup and
/// hit counters are exposed for the benches' hit-rate reporting.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_LRUCACHE_H
#define FUPERMOD_SUPPORT_LRUCACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace fupermod {

template <class K, class V, class Hash = std::hash<K>> class LruCache {
public:
  /// A cache holding at most \p Capacity entries; capacity 0 disables
  /// caching entirely (every lookup misses, puts are dropped).
  explicit LruCache(std::size_t Capacity) : Capacity(Capacity) {}

  /// Returns the value for \p Key and marks it most-recently-used, or
  /// nullopt on a miss. Counts the lookup either way.
  std::optional<V> get(const K &Key) {
    ++Lookups;
    auto It = Index.find(Key);
    if (It == Index.end())
      return std::nullopt;
    ++HitCount;
    Order.splice(Order.begin(), Order, It->second);
    return It->second->second;
  }

  /// Inserts or refreshes \p Key, evicting the least-recently-used entry
  /// when the cache is full.
  void put(K Key, V Value) {
    if (Capacity == 0)
      return;
    auto It = Index.find(Key);
    if (It != Index.end()) {
      It->second->second = std::move(Value);
      Order.splice(Order.begin(), Order, It->second);
      return;
    }
    if (Order.size() >= Capacity) {
      Index.erase(Order.back().first);
      Order.pop_back();
    }
    Order.emplace_front(std::move(Key), std::move(Value));
    Index[Order.front().first] = Order.begin();
  }

  /// Drops every entry (counters are retained — they describe the
  /// cache's lifetime service, not its current contents).
  void clear() {
    Order.clear();
    Index.clear();
  }

  std::size_t size() const { return Order.size(); }
  std::size_t capacity() const { return Capacity; }

  /// Lifetime lookup/hit counters (lookups = hits + misses).
  std::uint64_t lookups() const { return Lookups; }
  std::uint64_t hits() const { return HitCount; }

private:
  std::size_t Capacity;
  std::list<std::pair<K, V>> Order; // Front = most recently used.
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      Index;
  std::uint64_t Lookups = 0;
  std::uint64_t HitCount = 0;
};

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_LRUCACHE_H
