//===-- support/ThreadPool.cpp - Fixed-size worker pool -------------------===//

#include "support/ThreadPool.h"

#include <stdexcept>

using namespace fupermod;

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers == 0)
    Workers = 1;
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdownNow(); }

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    Queue.push_back(std::move(Task));
  }
  WakeWorker.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorker.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      // Stopping only ends a worker once the queue is dry: every task
      // queued before shutdown() still runs (clean shutdown).
      if (Queue.empty())
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++Running;
    }
    // A packaged_task captures any exception into its future, so Task()
    // never throws out of the worker.
    Task();
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Running;
    }
    Idle.notify_all();
  }
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && Running == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping && Threads.empty())
      return;
    Stopping = true;
  }
  WakeWorker.notify_all();
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
}

void ThreadPool::shutdownNow() {
  // Pull the pending tasks out before stopping so no worker can start
  // them; destroying the callables below destroys their packaged_tasks,
  // which completes every associated future with broken_promise.
  std::deque<std::function<void()>> Cancelled;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping && Threads.empty() && Queue.empty())
      return;
    Cancelled.swap(Queue);
    Stopping = true;
  }
  WakeWorker.notify_all();
  Cancelled.clear(); // Break the promises before joining: a task that is
                     // blocked waiting on a sibling's future wakes up and
                     // can finish, so the joins below cannot deadlock.
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  Threads.clear();
}
