//===-- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used to parallelise the embarrassingly
/// parallel stages of the FuPerMod pipeline (per-device model building,
/// batched model evaluation). Tasks are submitted as callables and their
/// results retrieved through std::future, so an exception thrown inside a
/// worker propagates to whoever calls get() — never terminates the pool.
///
/// Shutdown has two flavours. An explicit shutdown() is a drain: every
/// task already queued runs to completion before the workers join. The
/// destructor is a cancel: tasks that are queued but have not started are
/// discarded, and because each queued callable owns its packaged_task,
/// discarding it completes the task's future with std::future_error
/// (broken_promise) — a waiter blocked on get() wakes with an error
/// instead of hanging forever on a future nobody will ever fulfil. The
/// task currently running on each worker always finishes either way.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_THREADPOOL_H
#define FUPERMOD_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace fupermod {

/// Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers);

  /// Cancels queued-but-unstarted tasks (their futures complete with a
  /// broken_promise error), finishes the tasks already running, and
  /// joins the workers. Use shutdown() first for drain semantics.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned workerCount() const { return static_cast<unsigned>(Threads.size()); }

  /// Enqueues \p Fn and returns a future for its result. An exception
  /// escaping \p Fn is captured into the future. Submitting after
  /// shutdown() throws std::runtime_error.
  template <class F>
  auto submit(F &&Fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(Fn));
    std::future<R> Result = Task->get_future();
    enqueue([Task] { (*Task)(); });
    return Result;
  }

  /// Blocks until every queued task has started and finished. Tasks
  /// submitted while waiting extend the wait.
  void drain();

  /// Completes all queued tasks, then stops and joins the workers. Safe
  /// to call more than once.
  void shutdown();

  /// Stops without draining: discards every queued-but-unstarted task
  /// (breaking its future's promise), waits only for the tasks already
  /// running, and joins the workers. Safe to call more than once.
  void shutdownNow();

private:
  void enqueue(std::function<void()> Task);
  void workerLoop();

  std::vector<std::thread> Threads;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mutex;
  std::condition_variable WakeWorker;
  std::condition_variable Idle;
  unsigned Running = 0; // Tasks currently executing.
  bool Stopping = false;
};

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_THREADPOOL_H
