//===-- support/Table.h - Plain-text table printing -------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned table printing for the benchmark harnesses. Every bench
/// binary prints the rows/series of the figure it reproduces; this keeps
/// that output uniform and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_TABLE_H
#define FUPERMOD_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

namespace fupermod {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> Headers);

  /// Appends a row; the number of cells must match the number of headers.
  void addRow(std::vector<std::string> Cells);

  /// Formats a double with \p Precision digits after the decimal point.
  static std::string num(double Value, int Precision = 3);

  /// Formats an integer cell (any integral type).
  template <typename T>
    requires std::is_integral_v<T>
  static std::string num(T Value) {
    return formatInteger(static_cast<long long>(Value));
  }

  /// Writes the table, header first, followed by a separator row.
  void print(std::ostream &OS) const;

private:
  static std::string formatInteger(long long Value);

  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_TABLE_H
