//===-- support/Random.h - Deterministic random numbers ---------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic PRNG (SplitMix64) used for measurement noise in
/// the simulated platform. std::mt19937 is avoided so that experiments are
/// bit-reproducible across standard library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_RANDOM_H
#define FUPERMOD_SUPPORT_RANDOM_H

#include <cmath>
#include <cstdint>

namespace fupermod {

/// SplitMix64 generator: tiny state, excellent statistical quality for the
/// simulation purposes here, and identical output on every platform.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t Seed = 0x9e3779b97f4a7c15ull)
      : State(Seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

  /// Standard normal deviate via Box-Muller (no caching, deterministic).
  double normal() {
    double U1 = uniform();
    double U2 = uniform();
    // Guard against log(0).
    if (U1 <= 0.0)
      U1 = 5e-324;
    return std::sqrt(-2.0 * std::log(U1)) *
           std::cos(6.283185307179586476925286766559 * U2);
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double Mean, double Sigma) { return Mean + Sigma * normal(); }

private:
  std::uint64_t State;
};

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_RANDOM_H
