//===-- support/Statistics.cpp - Statistical utilities --------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace fupermod;

void RunningStat::push(double X) {
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::clear() {
  N = 0;
  Mean = 0.0;
  M2 = 0.0;
}

namespace {

// Two-sided Student-t critical values for df = 1..30.
const double T90[30] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895,
                        1.860, 1.833, 1.812, 1.796, 1.782, 1.771, 1.761,
                        1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721,
                        1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701,
                        1.699, 1.697};
const double T95[30] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
                        2.306,  2.262, 2.228, 2.201, 2.179, 2.160, 2.145,
                        2.131,  2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
                        2.074,  2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
                        2.045,  2.042};
const double T99[30] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499,
                        3.355,  3.250, 3.169, 3.106, 3.055, 3.012, 2.977,
                        2.947,  2.921, 2.898, 2.878, 2.861, 2.845, 2.831,
                        2.819,  2.807, 2.797, 2.787, 2.779, 2.771, 2.763,
                        2.756,  2.750};

double asymptotic(ConfidenceLevel Level) {
  switch (Level) {
  case ConfidenceLevel::CL90:
    return 1.645;
  case ConfidenceLevel::CL95:
    return 1.960;
  case ConfidenceLevel::CL99:
    return 2.576;
  }
  assert(false && "unknown confidence level");
  return 1.960;
}

} // namespace

double fupermod::studentTCritical(std::size_t DegreesOfFreedom,
                                  ConfidenceLevel Level) {
  assert(DegreesOfFreedom >= 1 && "need at least one degree of freedom");
  if (DegreesOfFreedom > 30)
    return asymptotic(Level);
  std::size_t Idx = DegreesOfFreedom - 1;
  switch (Level) {
  case ConfidenceLevel::CL90:
    return T90[Idx];
  case ConfidenceLevel::CL95:
    return T95[Idx];
  case ConfidenceLevel::CL99:
    return T99[Idx];
  }
  assert(false && "unknown confidence level");
  return T95[Idx];
}

double fupermod::confidenceHalfWidth(const RunningStat &Stat,
                                     ConfidenceLevel Level) {
  if (Stat.count() < 2)
    return std::numeric_limits<double>::infinity();
  double T = studentTCritical(Stat.count() - 1, Level);
  return T * Stat.stddev() / std::sqrt(static_cast<double>(Stat.count()));
}

double fupermod::relativeError(const RunningStat &Stat,
                               ConfidenceLevel Level) {
  double Half = confidenceHalfWidth(Stat, Level);
  if (!std::isfinite(Half) || Stat.mean() == 0.0)
    return std::numeric_limits<double>::infinity();
  return Half / std::fabs(Stat.mean());
}

double fupermod::median(std::span<const double> Sample) {
  if (Sample.empty())
    return 0.0;
  std::vector<double> Sorted(Sample.begin(), Sample.end());
  std::sort(Sorted.begin(), Sorted.end());
  std::size_t N = Sorted.size();
  if (N % 2 == 1)
    return Sorted[N / 2];
  return 0.5 * (Sorted[N / 2 - 1] + Sorted[N / 2]);
}

double fupermod::medianAbsoluteDeviation(std::span<const double> Sample) {
  if (Sample.empty())
    return 0.0;
  double Med = median(Sample);
  std::vector<double> Deviations;
  Deviations.reserve(Sample.size());
  for (double X : Sample)
    Deviations.push_back(std::fabs(X - Med));
  return 1.4826 * median(Deviations);
}

std::vector<double> fupermod::rejectOutliers(std::span<const double> Sample,
                                             double Cutoff) {
  assert(Cutoff > 0.0 && "cutoff must be positive");
  double Mad = medianAbsoluteDeviation(Sample);
  if (Mad == 0.0)
    return std::vector<double>(Sample.begin(), Sample.end());
  double Med = median(Sample);
  std::vector<double> Kept;
  Kept.reserve(Sample.size());
  for (double X : Sample)
    if (std::fabs(X - Med) <= Cutoff * Mad)
      Kept.push_back(X);
  return Kept;
}
