//===-- support/Result.h - Error-carrying return type -----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal value-or-error return type for the framework layers that must
/// not assert or abort on bad input (registries, the partition engine, the
/// command-line tools). A failed Result always carries a human-readable
/// message suitable for printing verbatim to a user.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_RESULT_H
#define FUPERMOD_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace fupermod {

/// Either a value of T or an error message; never both, never neither.
template <class T> class [[nodiscard]] Result {
public:
  /// Implicit success.
  Result(T Value) : Value(std::move(Value)) {}

  /// Failure carrying \p Message (must be non-empty).
  static Result failure(std::string Message) {
    Result R;
    R.Message = Message.empty() ? std::string("unspecified error")
                                : std::move(Message);
    return R;
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &value() {
    assert(ok() && "value() on a failed Result");
    return *Value;
  }
  const T &value() const {
    assert(ok() && "value() on a failed Result");
    return *Value;
  }

  /// The error message; empty on success.
  const std::string &error() const { return Message; }

private:
  Result() = default;

  std::optional<T> Value;
  std::string Message;
};

/// A Result with no payload: success or an error message.
using Status = Result<std::monostate>;

/// The successful Status.
inline Status okStatus() { return Status(std::monostate{}); }

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_RESULT_H
