//===-- support/BoundedQueue.h - Bounded MPMC work queue --------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded multi-producer/multi-consumer queue, the admission-control
/// primitive of the engine's service layer. Unlike ThreadPool's internal
/// unbounded deque, pushing never blocks and never grows the queue past
/// its capacity: tryPush() fails fast when the queue is full (the caller
/// sheds the request with a structured rejection) or closed (the service
/// is shutting down). Consumers block in pop() until an item, or until
/// the queue is closed *and* drained — close() stops intake immediately
/// but lets consumers finish every item already accepted, which is what
/// "drain cleanly on shutdown" means for the server.
///
/// T only needs to be movable (the server queues jobs carrying a
/// std::promise).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SUPPORT_BOUNDEDQUEUE_H
#define FUPERMOD_SUPPORT_BOUNDEDQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace fupermod {

/// Why a tryPush() did not enqueue.
enum class QueuePush {
  Ok,     ///< Item accepted.
  Full,   ///< Queue at capacity; caller should shed.
  Closed, ///< close() was called; no new items are accepted.
};

template <class T> class BoundedQueue {
public:
  /// A queue holding at most \p Capacity items (at least 1).
  explicit BoundedQueue(std::size_t Capacity)
      : Capacity(Capacity == 0 ? 1 : Capacity) {}

  BoundedQueue(const BoundedQueue &) = delete;
  BoundedQueue &operator=(const BoundedQueue &) = delete;

  /// Enqueues \p Item unless the queue is full or closed. Never blocks.
  /// \p Item is moved from only on Ok — on Full/Closed it stays valid in
  /// the caller's hands (the server sheds it with a structured response
  /// through the promise the item still carries).
  QueuePush tryPush(T &&Item) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Closed)
        return QueuePush::Closed;
      if (Items.size() >= Capacity)
        return QueuePush::Full;
      Items.push_back(std::move(Item));
    }
    NotEmpty.notify_one();
    return QueuePush::Ok;
  }

  /// Blocks until an item is available and returns it, or returns
  /// nullopt once the queue is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    NotEmpty.wait(Lock, [this] { return Closed || !Items.empty(); });
    if (Items.empty())
      return std::nullopt; // Closed and drained.
    std::optional<T> Out(std::move(Items.front()));
    Items.pop_front();
    return Out;
  }

  /// Stops intake: subsequent tryPush() returns Closed, consumers drain
  /// the remaining items and then see nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
    }
    NotEmpty.notify_all();
  }

  /// True once close() was called.
  bool closed() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Closed;
  }

  /// Items currently queued (a snapshot; racy by nature).
  std::size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Items.size();
  }

  std::size_t capacity() const { return Capacity; }

private:
  const std::size_t Capacity;
  mutable std::mutex Mutex;
  std::condition_variable NotEmpty;
  std::deque<T> Items;
  bool Closed = false;
};

} // namespace fupermod

#endif // FUPERMOD_SUPPORT_BOUNDEDQUEUE_H
