//===-- dist/HaloExchange.h - Overlappable halo exchange --------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The halo protocol behind PartitionedVector::exchangeHalos(): every
/// rank owning units [S, E) of a contiguous 1-D partition obtains the
/// \c Width units above ([S - Width, S)) and below ([E, E + Width)) its
/// range. Because partitions can carry tiny or zero-unit segments (a
/// degraded rank is excluded with zero units), a halo window may span
/// several owners — the plan is built generically from interval overlaps,
/// one message per (peer, side) with a non-empty overlap.
///
/// Receives are future-backed (Comm::irecv), posted before the sends, so
/// the transfer overlaps whatever the caller computes between
/// startHaloExchange() and HaloExchange::wait() — typically the interior
/// kernel loop, which needs no halo data. Sends stage the boundary units
/// into an adopted payload (classified TrafficClass::Halo), so the comm
/// layer copies nothing.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_DIST_HALOEXCHANGE_H
#define FUPERMOD_DIST_HALOEXCHANGE_H

#include "dist/Redistribute.h"
#include "mpp/Comm.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace fupermod {
namespace dist {

/// One rank's halo traffic for a given width: what it contributes to its
/// peers' halos and which pieces fill its own. Pieces are ordered by
/// ascending peer; Side refers to the *receiver's* buffer the piece
/// lands in.
struct HaloPlan {
  enum class Side { Above, Below };
  struct Piece {
    int Peer = -1;
    Interval Range;
    Side Dst = Side::Above;
  };
  /// Overlaps of my range with each peer's halo windows (what I send).
  std::vector<Piece> Sends;
  /// Overlaps of each peer's range with my two windows (what I receive);
  /// above pieces first, then below, each by ascending peer.
  std::vector<Piece> Recvs;
  /// My full windows, unclamped: [S - Width, S) and [E, E + Width).
  /// Units outside the partition domain are boundary-filled, not
  /// received. Both empty for a rank with no units.
  Interval AboveWindow;
  Interval BelowWindow;
  /// The receivable (in-domain) parts of the windows; the receive pieces
  /// cover them exactly. The window remainder is physical boundary.
  Interval AboveInDomain;
  Interval BelowInDomain;
};

/// Builds rank \p Me's halo plan for \p Width units per side under the
/// prefix-start array \p Starts. A rank with no units exchanges nothing.
HaloPlan buildHaloPlan(std::span<const std::int64_t> Starts, int Me,
                       std::int64_t Width);

/// Fills out-of-domain halo units (the physical boundary). Called once
/// per unit with the destination bytes of that unit; absent callbacks
/// zero-fill.
using BoundaryFillFn =
    std::function<void(std::int64_t Unit, std::span<std::byte> Out)>;

/// A halo exchange in flight: the sends have been performed and the
/// receives posted. wait() completes the receives (advancing the virtual
/// clock to the message arrivals) and assembles the above/below buffers.
/// Compute performed between start and wait() overlaps the transfer.
/// Destroying a still-pending exchange drains the posted receives
/// without assembling (so no message is forfeited), swallowing poison
/// errors.
class HaloExchange {
public:
  HaloExchange() = default;
  HaloExchange(HaloExchange &&) = default;
  HaloExchange &operator=(HaloExchange &&Other);
  HaloExchange(const HaloExchange &) = delete;
  HaloExchange &operator=(const HaloExchange &) = delete;
  ~HaloExchange();

  /// True while receives are outstanding.
  bool pending() const { return !Pending.empty(); }

  /// Messages this exchange sent (one per peer/side overlap).
  std::int64_t piecesSent() const { return PiecesSent; }

  /// Completes all posted receives in posting order and copies each
  /// payload into its halo-buffer slot.
  void wait();

private:
  friend HaloExchange startHaloExchange(Comm &, const HaloPlan &,
                                        std::size_t, std::int64_t,
                                        std::span<const std::byte>,
                                        std::span<std::byte>,
                                        std::span<std::byte>,
                                        const BoundaryFillFn &, int);

  struct PendingPiece {
    RecvRequest Req;
    std::span<std::byte> Dst;
  };
  std::vector<PendingPiece> Pending;
  std::int64_t PiecesSent = 0;
};

/// Executes the send half of \p Plan and posts its receives, collectively
/// on \p C. \p Local views the rank's units starting at global unit
/// \p LocalStart (each \p BytesPerUnit bytes); \p Above / \p Below are
/// the halo destinations covering the plan's windows. Out-of-domain
/// window units are filled via \p Boundary immediately. Above-destined
/// messages use \p TagBase, below-destined \p TagBase + 1.
HaloExchange startHaloExchange(Comm &C, const HaloPlan &Plan,
                               std::size_t BytesPerUnit,
                               std::int64_t LocalStart,
                               std::span<const std::byte> Local,
                               std::span<std::byte> Above,
                               std::span<std::byte> Below,
                               const BoundaryFillFn &Boundary, int TagBase);

} // namespace dist
} // namespace fupermod

#endif // FUPERMOD_DIST_HALOEXCHANGE_H
