//===-- dist/Redistribute.h - Minimal-move repartitioning -------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval-overlap transfer plan behind PartitionedVector's
/// redistribute(): given the old and new contiguous per-rank ranges of a
/// 1-D partition, each rank keeps the intersection of its old and new
/// range in place and exchanges only the deltas.
///
/// Minimality: a unit must be transferred iff its old owner differs from
/// its new owner, so any correct redistribution moves at least
/// Total - sum_r |old_r ∩ new_r| units. The plan sends exactly the sets
/// {old_r ∩ new_q : r != q}, which partition precisely those units — one
/// copy each, no forwarding — hence the plan is byte-minimal for
/// contiguous 1-D partitions. minimalTransferUnits() computes that bound
/// analytically so tests and benches can assert the equality.
///
/// The executor is type-erased (bytes): it freezes nothing itself — the
/// caller passes the old storage as an immutable Payload, and every send
/// is a Payload::subview of it, so the whole exchange performs zero
/// comm-layer copies (the single placement copy into the new storage is
/// the receiver's memcpy, reported in RedistributeStats).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_DIST_REDISTRIBUTE_H
#define FUPERMOD_DIST_REDISTRIBUTE_H

#include "mpp/Payload.h"

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fupermod {

class Comm;

namespace dist {

/// Half-open range of global units.
struct Interval {
  std::int64_t Lo = 0;
  std::int64_t Hi = 0;

  bool empty() const { return Lo >= Hi; }
  std::int64_t length() const { return empty() ? 0 : Hi - Lo; }
};

/// Intersection of two intervals (empty when disjoint).
Interval overlap(Interval A, Interval B);

/// One rank's share of a redistribution: what it keeps in place, what it
/// sends to each peer, and what it receives. Pieces are ordered by
/// ascending peer — the historical deadlock-free order of the apps
/// (buffered sends first, then receives), kept so virtual-time traces
/// stay bit-identical to the hand-rolled redistributions.
struct TransferPlan {
  struct Piece {
    int Peer = -1;
    Interval Range;
  };
  /// old_me ∩ new_q for every q != me with a non-empty overlap.
  std::vector<Piece> Sends;
  /// new_me ∩ old_q for every q != me with a non-empty overlap.
  std::vector<Piece> Recvs;
  /// old_me ∩ new_me — stays in place.
  Interval Keep;
};

/// Builds rank \p Me's transfer plan between two prefix-start arrays
/// (size P + 1 each, equal totals).
TransferPlan buildTransferPlan(std::span<const std::int64_t> OldStarts,
                               std::span<const std::int64_t> NewStarts,
                               int Me);

/// The analytic lower bound on units any redistribution between the two
/// partitions must transfer: Total - sum_r |old_r ∩ new_r|. The
/// interval-overlap plan attains it exactly.
std::int64_t minimalTransferUnits(std::span<const std::int64_t> OldStarts,
                                  std::span<const std::int64_t> NewStarts);

/// What one rank moved while executing a transfer plan.
struct RedistributeStats {
  std::int64_t UnitsKept = 0;
  std::int64_t UnitsSent = 0;
  std::int64_t UnitsReceived = 0;
  int MessagesSent = 0;
  int MessagesReceived = 0;
};

/// Executes \p Plan collectively on \p C: zero-copy subview sends of
/// \p Old (classified TrafficClass::Redistribute), the keep-range memcpy,
/// then receives placed into \p New. \p Old views the rank's old units
/// starting at global unit \p OldStart; \p New receives the new units
/// starting at \p NewStart; every unit is \p BytesPerUnit bytes. \p Tag
/// tags all messages.
RedistributeStats executeTransferPlan(Comm &C, const TransferPlan &Plan,
                                      std::size_t BytesPerUnit,
                                      std::int64_t OldStart,
                                      std::int64_t NewStart, Payload Old,
                                      std::span<std::byte> New, int Tag);

} // namespace dist
} // namespace fupermod

#endif // FUPERMOD_DIST_REDISTRIBUTE_H
