//===-- dist/HaloExchange.cpp - Overlappable halo exchange ----------------===//

#include "dist/HaloExchange.h"

#include "mpp/Poison.h"

#include <cassert>
#include <cstring>

using namespace fupermod;
using namespace fupermod::dist;

HaloPlan fupermod::dist::buildHaloPlan(std::span<const std::int64_t> Starts,
                                       int Me, std::int64_t Width) {
  assert(Starts.size() >= 2 && "prefix starts require P + 1 entries");
  assert(Width >= 0 && "negative halo width");
  int P = static_cast<int>(Starts.size()) - 1;
  assert(Me >= 0 && Me < P && "rank out of range");

  auto Range = [&](int Q) {
    return Interval{Starts[static_cast<std::size_t>(Q)],
                    Starts[static_cast<std::size_t>(Q) + 1]};
  };
  Interval Mine = Range(Me);
  Interval Domain{Starts.front(), Starts.back()};

  HaloPlan Plan;
  if (Mine.empty() || Width == 0)
    return Plan; // A rank with no units neither needs nor feeds halos.
  Plan.AboveWindow = {Mine.Lo - Width, Mine.Lo};
  Plan.BelowWindow = {Mine.Hi, Mine.Hi + Width};

  // The receivable parts of my windows stop at the domain edge; the rest
  // is physical boundary, filled locally.
  Plan.AboveInDomain = overlap(Plan.AboveWindow, Domain);
  Plan.BelowInDomain = overlap(Plan.BelowWindow, Domain);
  Interval AboveIn = Plan.AboveInDomain;
  Interval BelowIn = Plan.BelowInDomain;

  for (int Q = 0; Q < P; ++Q) {
    if (Q == Me)
      continue;
    Interval Peer = Range(Q);
    if (Peer.empty())
      continue;
    // What I contribute to Q's halos: Q's above window is [Qs - W, Qs),
    // its below window [Qe, Qe + W). Above first, then below, matching
    // the historical per-peer send order of the stencil app.
    Interval ToAbove = overlap(Mine, {Peer.Lo - Width, Peer.Lo});
    if (!ToAbove.empty())
      Plan.Sends.push_back({Q, ToAbove, HaloPlan::Side::Above});
    Interval ToBelow = overlap(Mine, {Peer.Hi, Peer.Hi + Width});
    if (!ToBelow.empty())
      Plan.Sends.push_back({Q, ToBelow, HaloPlan::Side::Below});
  }
  // My receives: above pieces for every owner intersecting my above
  // window, then the below pieces.
  for (int Q = 0; Q < P; ++Q) {
    if (Q == Me)
      continue;
    Interval Piece = overlap(Range(Q), AboveIn);
    if (!Piece.empty())
      Plan.Recvs.push_back({Q, Piece, HaloPlan::Side::Above});
  }
  for (int Q = 0; Q < P; ++Q) {
    if (Q == Me)
      continue;
    Interval Piece = overlap(Range(Q), BelowIn);
    if (!Piece.empty())
      Plan.Recvs.push_back({Q, Piece, HaloPlan::Side::Below});
  }
  return Plan;
}

HaloExchange &HaloExchange::operator=(HaloExchange &&Other) {
  if (this != &Other) {
    wait(); // Complete anything still posted before dropping it.
    Pending = std::move(Other.Pending);
    PiecesSent = Other.PiecesSent;
    Other.Pending.clear();
  }
  return *this;
}

HaloExchange::~HaloExchange() {
  // Drain posted receives so no message is forfeited; a poisoned world
  // must not throw out of a destructor.
  try {
    for (PendingPiece &P : Pending)
      if (P.Req.pending())
        P.Req.wait();
  } catch (const CommError &) {
  }
  Pending.clear();
}

void HaloExchange::wait() {
  for (PendingPiece &P : Pending) {
    Payload Data = P.Req.wait();
    assert(Data.size() == P.Dst.size() && "unexpected halo payload size");
    std::memcpy(P.Dst.data(), Data.bytes().data(), Data.size());
  }
  Pending.clear();
}

HaloExchange fupermod::dist::startHaloExchange(
    Comm &C, const HaloPlan &Plan, std::size_t BytesPerUnit,
    std::int64_t LocalStart, std::span<const std::byte> Local,
    std::span<std::byte> Above, std::span<std::byte> Below,
    const BoundaryFillFn &Boundary, int TagBase) {
  auto UnitCount = [&](std::span<const std::byte> Buf) {
    return static_cast<std::int64_t>(Buf.size() / BytesPerUnit);
  };
  assert(UnitCount(Above) >= Plan.AboveWindow.length() &&
         UnitCount(Below) >= Plan.BelowWindow.length() &&
         "halo buffers must cover the plan windows");
  (void)UnitCount;

  auto SlotIn = [&](std::span<std::byte> Buf, Interval Window,
                    Interval Range) {
    std::size_t Off =
        static_cast<std::size_t>(Range.Lo - Window.Lo) * BytesPerUnit;
    std::size_t Len =
        static_cast<std::size_t>(Range.length()) * BytesPerUnit;
    return Buf.subspan(Off, Len);
  };

  HaloExchange Ex;

  // Post the receives first: the futures make the transfer overlap
  // whatever runs before wait().
  for (const HaloPlan::Piece &R : Plan.Recvs) {
    bool IsAbove = R.Dst == HaloPlan::Side::Above;
    HaloExchange::PendingPiece P;
    P.Req = C.irecv(R.Peer, IsAbove ? TagBase : TagBase + 1);
    P.Dst = SlotIn(IsAbove ? Above : Below,
                   IsAbove ? Plan.AboveWindow : Plan.BelowWindow, R.Range);
    Ex.Pending.push_back(std::move(P));
  }

  // Fill the out-of-domain (physical boundary) window units locally.
  auto FillBoundary = [&](std::span<std::byte> Buf, Interval Window,
                          Interval InDomain) {
    for (std::int64_t U = Window.Lo; U < Window.Hi; ++U) {
      if (U >= InDomain.Lo && U < InDomain.Hi)
        continue;
      std::span<std::byte> Out = SlotIn(Buf, Window, {U, U + 1});
      if (Boundary)
        Boundary(U, Out);
      else
        std::memset(Out.data(), 0, Out.size());
    }
  };
  FillBoundary(Above, Plan.AboveWindow, Plan.AboveInDomain);
  FillBoundary(Below, Plan.BelowWindow, Plan.BelowInDomain);

  // Sends: stage each piece into an adopted payload — the comm layer
  // then moves it without copying.
  for (const HaloPlan::Piece &S : Plan.Sends) {
    std::size_t Off =
        static_cast<std::size_t>(S.Range.Lo - LocalStart) * BytesPerUnit;
    std::size_t Len =
        static_cast<std::size_t>(S.Range.length()) * BytesPerUnit;
    assert(Off + Len <= Local.size() && "send range outside local storage");
    std::vector<std::byte> Staged(Local.begin() + static_cast<long>(Off),
                                  Local.begin() + static_cast<long>(Off) +
                                      static_cast<long>(Len));
    C.sendPayload(S.Peer,
                  S.Dst == HaloPlan::Side::Above ? TagBase : TagBase + 1,
                  Payload::adoptBytes(std::move(Staged)),
                  TrafficClass::Halo);
    ++Ex.PiecesSent;
  }
  return Ex;
}
