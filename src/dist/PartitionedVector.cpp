//===-- dist/PartitionedVector.cpp - Partitioner-aware container ----------===//

#include "dist/PartitionedVector.h"

#include <cassert>
#include <cstring>
#include <utility>

using namespace fupermod;
using namespace fupermod::dist;

PartitionedStorage::PartitionedStorage(Comm Comm_, const Dist &D,
                                       std::size_t BytesPerUnit_,
                                       std::int64_t Base, int TagBase_)
    : C(std::move(Comm_)), BytesPerUnit(BytesPerUnit_), TagBase(TagBase_),
      Starts(D.contiguousStarts(Base)) {
  assert(BytesPerUnit > 0 && "units must carry at least one byte");
  assert(static_cast<int>(Starts.size()) == C.size() + 1 &&
         "distribution rank count must match the communicator");
  Local.resize(static_cast<std::size_t>(units()) * BytesPerUnit);
}

std::span<std::byte> PartitionedStorage::unitBytes(std::int64_t Unit) {
  assert(Unit >= start() && Unit < end() && "unit not owned by this rank");
  return localBytes().subspan(
      static_cast<std::size_t>(Unit - start()) * BytesPerUnit, BytesPerUnit);
}

std::span<const std::byte>
PartitionedStorage::unitBytes(std::int64_t Unit) const {
  assert(Unit >= start() && Unit < end() && "unit not owned by this rank");
  return localBytes().subspan(
      static_cast<std::size_t>(Unit - start()) * BytesPerUnit, BytesPerUnit);
}

void PartitionedStorage::assignLocalBytes(std::vector<std::byte> Bytes) {
  assert(Bytes.size() == Local.size() &&
         "assigned segment must match the partition size");
  Local = std::move(Bytes);
}

HaloExchange
PartitionedStorage::startHaloExchange(std::int64_t Width,
                                      const BoundaryFillFn &Boundary) {
  HaloPlan Plan = buildHaloPlan(Starts, C.rank(), Width);
  HaloW = Width;
  Above.assign(static_cast<std::size_t>(Plan.AboveWindow.length()) *
                   BytesPerUnit,
               std::byte{0});
  Below.assign(static_cast<std::size_t>(Plan.BelowWindow.length()) *
                   BytesPerUnit,
               std::byte{0});
  HaloExchange Ex = dist::startHaloExchange(
      C, Plan, BytesPerUnit, start(), localBytes(),
      {Above.data(), Above.size()}, {Below.data(), Below.size()}, Boundary,
      TagBase);
  HaloPieces += Ex.piecesSent();
  return Ex;
}

void PartitionedStorage::exchangeHalos(std::int64_t Width,
                                       const BoundaryFillFn &Boundary) {
  startHaloExchange(Width, Boundary).wait();
}

RedistributeStats PartitionedStorage::redistribute(const Dist &NewDist) {
  std::vector<std::int64_t> NewStarts =
      NewDist.contiguousStarts(Starts.front());
  assert(NewStarts.size() == Starts.size() &&
         NewStarts.back() == Starts.back() &&
         "redistribution must preserve the domain and rank count");

  TransferPlan Plan = buildTransferPlan(Starts, NewStarts, C.rank());
  std::int64_t OldStart = start();
  std::int64_t NewStart = NewStarts[static_cast<std::size_t>(C.rank())];
  std::int64_t NewEnd = NewStarts[static_cast<std::size_t>(C.rank()) + 1];

  // Freeze the old segment as an immutable payload: the sends become
  // subviews of it (zero-copy), and the keep-range copy reads from it.
  Payload Old = Payload::adoptBytes(std::move(Local));
  std::vector<std::byte> New(
      static_cast<std::size_t>(NewEnd - NewStart) * BytesPerUnit);

  RedistributeStats Stats = executeTransferPlan(
      C, Plan, BytesPerUnit, OldStart, NewStart, std::move(Old),
      {New.data(), New.size()}, TagBase + 2);

  Local = std::move(New);
  Starts = std::move(NewStarts);
  // Halo buffers describe the old geometry; drop them.
  Above.clear();
  Below.clear();
  HaloW = 0;
  ++RedistCount;
  UnitsMoved += Stats.UnitsSent + Stats.UnitsReceived;
  return Stats;
}
