//===-- dist/Redistribute.cpp - Minimal-move repartitioning ---------------===//

#include "dist/Redistribute.h"

#include "mpp/Comm.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace fupermod;
using namespace fupermod::dist;

Interval fupermod::dist::overlap(Interval A, Interval B) {
  Interval O;
  O.Lo = std::max(A.Lo, B.Lo);
  O.Hi = std::min(A.Hi, B.Hi);
  if (O.Lo >= O.Hi)
    O = {0, 0};
  return O;
}

TransferPlan
fupermod::dist::buildTransferPlan(std::span<const std::int64_t> OldStarts,
                                  std::span<const std::int64_t> NewStarts,
                                  int Me) {
  assert(OldStarts.size() == NewStarts.size() && OldStarts.size() >= 2 &&
         "start arrays must have one entry per rank plus the end");
  assert(OldStarts.front() == NewStarts.front() &&
         OldStarts.back() == NewStarts.back() &&
         "old and new partitions must cover the same domain");
  int P = static_cast<int>(OldStarts.size()) - 1;
  assert(Me >= 0 && Me < P && "rank out of range");

  auto OldRange = [&](int Q) {
    return Interval{OldStarts[static_cast<std::size_t>(Q)],
                    OldStarts[static_cast<std::size_t>(Q) + 1]};
  };
  auto NewRange = [&](int Q) {
    return Interval{NewStarts[static_cast<std::size_t>(Q)],
                    NewStarts[static_cast<std::size_t>(Q) + 1]};
  };

  TransferPlan Plan;
  Plan.Keep = overlap(OldRange(Me), NewRange(Me));
  for (int Q = 0; Q < P; ++Q) {
    if (Q == Me)
      continue;
    Interval Send = overlap(OldRange(Me), NewRange(Q));
    if (!Send.empty())
      Plan.Sends.push_back({Q, Send});
    Interval Recv = overlap(NewRange(Me), OldRange(Q));
    if (!Recv.empty())
      Plan.Recvs.push_back({Q, Recv});
  }
  return Plan;
}

std::int64_t fupermod::dist::minimalTransferUnits(
    std::span<const std::int64_t> OldStarts,
    std::span<const std::int64_t> NewStarts) {
  assert(OldStarts.size() == NewStarts.size() && OldStarts.size() >= 2 &&
         "start arrays must have one entry per rank plus the end");
  std::int64_t Total = OldStarts.back() - OldStarts.front();
  std::int64_t Stay = 0;
  for (std::size_t R = 0; R + 1 < OldStarts.size(); ++R)
    Stay += overlap({OldStarts[R], OldStarts[R + 1]},
                    {NewStarts[R], NewStarts[R + 1]})
                .length();
  return Total - Stay;
}

RedistributeStats fupermod::dist::executeTransferPlan(
    Comm &C, const TransferPlan &Plan, std::size_t BytesPerUnit,
    std::int64_t OldStart, std::int64_t NewStart, Payload Old,
    std::span<std::byte> New, int Tag) {
  RedistributeStats Stats;

  // Zero-copy sends first (buffered, deadlock-free): each message is a
  // subview of the frozen old storage — no bytes are copied on this side.
  for (const TransferPlan::Piece &S : Plan.Sends) {
    std::size_t Off =
        static_cast<std::size_t>(S.Range.Lo - OldStart) * BytesPerUnit;
    std::size_t Len =
        static_cast<std::size_t>(S.Range.length()) * BytesPerUnit;
    C.sendPayload(S.Peer, Tag, Old.subview(Off, Len),
                  TrafficClass::Redistribute);
    Stats.UnitsSent += S.Range.length();
    ++Stats.MessagesSent;
  }

  // The self-overlap moves locally from the frozen old buffer.
  if (!Plan.Keep.empty()) {
    std::size_t SrcOff =
        static_cast<std::size_t>(Plan.Keep.Lo - OldStart) * BytesPerUnit;
    std::size_t DstOff =
        static_cast<std::size_t>(Plan.Keep.Lo - NewStart) * BytesPerUnit;
    std::size_t Len =
        static_cast<std::size_t>(Plan.Keep.length()) * BytesPerUnit;
    assert(SrcOff + Len <= Old.size() && DstOff + Len <= New.size() &&
           "keep range outside storage");
    std::memcpy(New.data() + DstOff, Old.bytes().data() + SrcOff, Len);
    Stats.UnitsKept = Plan.Keep.length();
  }

  // Receives in ascending peer order; the single placement copy into the
  // new storage happens here.
  for (const TransferPlan::Piece &R : Plan.Recvs) {
    Payload Data = C.recvPayload(R.Peer, Tag);
    std::size_t DstOff =
        static_cast<std::size_t>(R.Range.Lo - NewStart) * BytesPerUnit;
    std::size_t Len =
        static_cast<std::size_t>(R.Range.length()) * BytesPerUnit;
    assert(Data.size() == Len && "unexpected redistribution payload size");
    assert(DstOff + Len <= New.size() && "receive range outside storage");
    std::memcpy(New.data() + DstOff, Data.bytes().data(), Len);
    Stats.UnitsReceived += R.Range.length();
    ++Stats.MessagesReceived;
  }
  return Stats;
}
