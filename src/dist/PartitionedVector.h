//===-- dist/PartitionedVector.h - Partitioner-aware container --*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distributed container layer: a 1-D array of computation units
/// distributed over the ranks of a Comm by a core::Dist, following the
/// distributed-ranges `distributed_vector` + `span_halo` design. Each
/// rank holds the contiguous segment its partition assigns (ElemsPerUnit
/// elements of T per unit), and the container provides the two data
/// movements every model-driven workload needs:
///
///  - exchangeHalos(width): each rank obtains the `width` units adjacent
///    to its segment, future-backed so the transfer can overlap the
///    interior kernel loop (startHaloExchange / wait);
///  - redistribute(newDist): the interval-overlap transfer plan — every
///    rank keeps its old∩new range in place and ships only the deltas,
///    provably the fewest bytes any redistribution between two
///    contiguous partitions can move. Sends are Payload subviews of the
///    frozen old segment: the comm layer copies nothing.
///
/// Apps built on the container shrink to their kernel loop: Jacobi and
/// the stencil construct one PartitionedVector, iterate, and let
/// engine::BalancedLoop::redistributeIfChanged() migrate the data when
/// the balancer repartitions.
///
/// The type-erased core (PartitionedStorage, byte-level) carries all
/// logic; PartitionedVector<T> is a thin typed facade over it.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_DIST_PARTITIONEDVECTOR_H
#define FUPERMOD_DIST_PARTITIONEDVECTOR_H

#include "core/Partition.h"
#include "dist/HaloExchange.h"
#include "dist/Redistribute.h"
#include "mpp/Comm.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

namespace fupermod {
namespace dist {

/// Byte-level partitioned segment storage plus the halo/redistribute
/// orchestration. One instance per rank (SPMD-replicated construction).
class PartitionedStorage {
public:
  /// Builds rank C.rank()'s segment of \p D (unit \p U occupies global
  /// positions [Base + prefix(U))..). \p TagBase reserves three message
  /// tags (above-halo, below-halo, redistribute); give containers
  /// sharing one Comm distinct bases.
  PartitionedStorage(Comm C, const Dist &D, std::size_t BytesPerUnit,
                     std::int64_t Base = 0, int TagBase = DefaultTagBase);

  static constexpr int DefaultTagBase = 1 << 24;

  // --- geometry ----------------------------------------------------
  int rank() const { return C.rank(); }
  int ranks() const { return static_cast<int>(Starts.size()) - 1; }
  std::size_t bytesPerUnit() const { return BytesPerUnit; }
  /// Global units owned by this rank: [start(), end()).
  std::int64_t start() const {
    return Starts[static_cast<std::size_t>(C.rank())];
  }
  std::int64_t end() const {
    return Starts[static_cast<std::size_t>(C.rank()) + 1];
  }
  std::int64_t units() const { return end() - start(); }
  /// The whole domain: [domainLo(), domainHi()).
  std::int64_t domainLo() const { return Starts.front(); }
  std::int64_t domainHi() const { return Starts.back(); }
  const std::vector<std::int64_t> &starts() const { return Starts; }
  /// Rank owning global \p Unit (-1 outside the domain).
  int ownerOf(std::int64_t Unit) const {
    return ownerOfUnit(Starts, Unit);
  }

  // --- storage access ----------------------------------------------
  std::span<std::byte> localBytes() { return {Local.data(), Local.size()}; }
  std::span<const std::byte> localBytes() const {
    return {Local.data(), Local.size()};
  }
  /// Bytes of owned unit \p Unit (global index).
  std::span<std::byte> unitBytes(std::int64_t Unit);
  std::span<const std::byte> unitBytes(std::int64_t Unit) const;
  /// Replaces the local segment (sizes must match) — the kernel
  /// double-buffer handoff.
  void assignLocalBytes(std::vector<std::byte> Bytes);

  // --- halo exchange -----------------------------------------------
  /// Posts receives, fills boundary units, performs the sends, and
  /// returns the in-flight exchange; compute until wait() overlaps the
  /// transfer. Halo buffers then cover [start()-Width, start()) and
  /// [end(), end()+Width).
  HaloExchange startHaloExchange(std::int64_t Width,
                                 const BoundaryFillFn &Boundary = {});
  /// startHaloExchange + wait — the blocking convenience.
  void exchangeHalos(std::int64_t Width,
                     const BoundaryFillFn &Boundary = {});
  std::span<const std::byte> aboveBytes() const {
    return {Above.data(), Above.size()};
  }
  std::span<const std::byte> belowBytes() const {
    return {Below.data(), Below.size()};
  }
  /// Width of the last (or in-flight) halo exchange.
  std::int64_t haloWidth() const { return HaloW; }
  /// Messages sent by this rank's halo exchanges so far.
  std::int64_t haloPiecesSent() const { return HaloPieces; }

  // --- redistribution ----------------------------------------------
  /// Migrates the segment to \p NewDist with the minimal-move
  /// interval-overlap plan (collective). Halo buffers are invalidated.
  RedistributeStats redistribute(const Dist &NewDist);
  /// Times redistribute() ran (the engine tripwire counter).
  std::uint64_t redistributeCount() const { return RedistCount; }
  /// Units this rank sent + received over all redistributions.
  std::int64_t unitsTransferred() const { return UnitsMoved; }

  /// The BalancedLoop sync cursor: the loop's dist epoch this container
  /// last redistributed to (see BalancedLoop::redistributeIfChanged).
  std::uint64_t syncedEpoch() const { return SyncedEpoch; }
  void setSyncedEpoch(std::uint64_t E) { SyncedEpoch = E; }

private:
  Comm C;
  std::size_t BytesPerUnit;
  int TagBase;
  std::vector<std::int64_t> Starts;
  std::vector<std::byte> Local;
  std::vector<std::byte> Above, Below;
  std::int64_t HaloW = 0;
  std::int64_t HaloPieces = 0;
  std::uint64_t RedistCount = 0;
  std::int64_t UnitsMoved = 0;
  std::uint64_t SyncedEpoch = 0;
};

/// The typed facade: a distributed vector of T with ElemsPerUnit
/// elements per computation unit (e.g. one grid row of Cols cells, or
/// one matrix row plus its right-hand-side entry).
template <typename T> class PartitionedVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "PartitionedVector elements move as raw bytes");

public:
  /// Per-unit generator/boundary callback: fills the ElemsPerUnit
  /// elements of global unit \p Unit.
  using UnitFn = std::function<void(std::int64_t Unit, std::span<T> Out)>;

  PartitionedVector(Comm C, const Dist &D, std::int64_t ElemsPerUnit,
                    std::int64_t Base = 0,
                    int TagBase = PartitionedStorage::DefaultTagBase)
      : S(std::move(C), D,
          static_cast<std::size_t>(ElemsPerUnit) * sizeof(T), Base,
          TagBase),
        EPU(ElemsPerUnit) {}

  // --- geometry ----------------------------------------------------
  int rank() const { return S.rank(); }
  int ranks() const { return S.ranks(); }
  std::int64_t elemsPerUnit() const { return EPU; }
  std::int64_t start() const { return S.start(); }
  std::int64_t end() const { return S.end(); }
  std::int64_t units() const { return S.units(); }
  std::int64_t domainLo() const { return S.domainLo(); }
  std::int64_t domainHi() const { return S.domainHi(); }
  const std::vector<std::int64_t> &starts() const { return S.starts(); }
  int ownerOf(std::int64_t Unit) const { return S.ownerOf(Unit); }

  // --- element access ----------------------------------------------
  std::span<T> local() { return typed(S.localBytes()); }
  std::span<const T> local() const { return typed(S.localBytes()); }
  /// Elements of owned unit \p Unit (global index).
  std::span<T> unit(std::int64_t Unit) { return typed(S.unitBytes(Unit)); }
  std::span<const T> unit(std::int64_t Unit) const {
    return typed(S.unitBytes(Unit));
  }
  /// Elements of \p Unit whether owned or inside the current halo — the
  /// kernel's one accessor for neighbour units.
  std::span<const T> unitOrHalo(std::int64_t Unit) const {
    if (Unit >= S.start() && Unit < S.end())
      return unit(Unit);
    std::span<const T> A = haloAbove();
    std::int64_t W = S.haloWidth();
    if (Unit >= S.start() - W && Unit < S.start())
      return A.subspan(
          static_cast<std::size_t>((Unit - (S.start() - W)) * EPU),
          static_cast<std::size_t>(EPU));
    std::span<const T> B = haloBelow();
    assert(Unit >= S.end() && Unit < S.end() + W && "unit outside halo");
    return B.subspan(static_cast<std::size_t>((Unit - S.end()) * EPU),
                     static_cast<std::size_t>(EPU));
  }

  /// Fills every owned unit via \p Fn (initial data generation).
  void generate(const UnitFn &Fn) {
    for (std::int64_t U = start(); U < end(); ++U)
      Fn(U, unit(U));
  }

  /// Replaces the local elements (sizes must match) — the kernel
  /// double-buffer handoff.
  void assignLocal(std::vector<T> Elems) {
    std::vector<std::byte> Bytes(Elems.size() * sizeof(T));
    std::memcpy(Bytes.data(), Elems.data(), Bytes.size());
    S.assignLocalBytes(std::move(Bytes));
  }

  // --- halo exchange -----------------------------------------------
  HaloExchange startHaloExchange(std::int64_t Width,
                                 const UnitFn &Boundary = {}) {
    return S.startHaloExchange(Width, wrapBoundary(Boundary));
  }
  void exchangeHalos(std::int64_t Width, const UnitFn &Boundary = {}) {
    S.exchangeHalos(Width, wrapBoundary(Boundary));
  }
  /// Halo contents after a completed exchange: Width units each,
  /// covering [start()-Width, start()) and [end(), end()+Width).
  std::span<const T> haloAbove() const { return typed(S.aboveBytes()); }
  std::span<const T> haloBelow() const { return typed(S.belowBytes()); }
  std::int64_t haloWidth() const { return S.haloWidth(); }
  std::int64_t haloPiecesSent() const { return S.haloPiecesSent(); }

  // --- redistribution ----------------------------------------------
  RedistributeStats redistribute(const Dist &NewDist) {
    return S.redistribute(NewDist);
  }
  std::uint64_t redistributeCount() const { return S.redistributeCount(); }
  std::int64_t unitsTransferred() const { return S.unitsTransferred(); }
  std::uint64_t syncedEpoch() const { return S.syncedEpoch(); }
  void setSyncedEpoch(std::uint64_t E) { S.setSyncedEpoch(E); }

private:
  static std::span<T> typed(std::span<std::byte> B) {
    return {reinterpret_cast<T *>(B.data()), B.size() / sizeof(T)};
  }
  static std::span<const T> typed(std::span<const std::byte> B) {
    return {reinterpret_cast<const T *>(B.data()), B.size() / sizeof(T)};
  }
  BoundaryFillFn wrapBoundary(const UnitFn &Fn) {
    if (!Fn)
      return {};
    return [Fn](std::int64_t Unit, std::span<std::byte> Out) {
      Fn(Unit, {reinterpret_cast<T *>(Out.data()), Out.size() / sizeof(T)});
    };
  }

  PartitionedStorage S;
  std::int64_t EPU;
};

} // namespace dist
} // namespace fupermod

#endif // FUPERMOD_DIST_PARTITIONEDVECTOR_H
