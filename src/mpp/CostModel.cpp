//===-- mpp/CostModel.cpp - Communication cost models ---------------------===//

#include "mpp/CostModel.h"

#include <cassert>

using namespace fupermod;

CostModel::~CostModel() = default;

double CostModel::barrierCost(int NumRanks) const {
  (void)NumRanks;
  return 0.0;
}

UniformCostModel::UniformCostModel(double Latency, double BytesPerSecond) {
  assert(Latency >= 0.0 && BytesPerSecond > 0.0 && "invalid link parameters");
  Cost.Latency = Latency;
  Cost.BytePeriod = 1.0 / BytesPerSecond;
}

LinkCost UniformCostModel::link(int FromGlobalRank, int ToGlobalRank) const {
  if (FromGlobalRank == ToGlobalRank)
    return LinkCost(); // Self-sends are local copies; model them as free.
  return Cost;
}

TwoLevelCostModel::TwoLevelCostModel(std::vector<int> NodeOfRank,
                                     LinkCost Intra, LinkCost Inter)
    : NodeOfRank(std::move(NodeOfRank)), Intra(Intra), Inter(Inter) {}

int TwoLevelCostModel::nodeOf(int GlobalRank) const {
  assert(GlobalRank >= 0 &&
         static_cast<std::size_t>(GlobalRank) < NodeOfRank.size() &&
         "rank out of range");
  return NodeOfRank[GlobalRank];
}

LinkCost TwoLevelCostModel::link(int FromGlobalRank, int ToGlobalRank) const {
  if (FromGlobalRank == ToGlobalRank)
    return LinkCost();
  return nodeOf(FromGlobalRank) == nodeOf(ToGlobalRank) ? Intra : Inter;
}
