//===-- mpp/CostModel.cpp - Communication cost models ---------------------===//

#include "mpp/CostModel.h"

#include <cassert>
#include <set>

using namespace fupermod;

NodeTopology::NodeTopology(std::vector<int> NodeOfRank)
    : NodeOfRank(std::move(NodeOfRank)) {
  std::set<int> Distinct(this->NodeOfRank.begin(), this->NodeOfRank.end());
  NumNodes = static_cast<int>(Distinct.size());
}

int NodeTopology::nodeOf(int GlobalRank) const {
  assert(GlobalRank >= 0 &&
         static_cast<std::size_t>(GlobalRank) < NodeOfRank.size() &&
         "rank out of range");
  return NodeOfRank[static_cast<std::size_t>(GlobalRank)];
}

CostModel::~CostModel() = default;

double CostModel::barrierCost(int NumRanks) const {
  (void)NumRanks;
  return 0.0;
}

UniformCostModel::UniformCostModel(double Latency, double BytesPerSecond) {
  assert(Latency >= 0.0 && BytesPerSecond > 0.0 && "invalid link parameters");
  Cost.Latency = Latency;
  Cost.BytePeriod = 1.0 / BytesPerSecond;
}

LinkCost UniformCostModel::link(int FromGlobalRank, int ToGlobalRank) const {
  if (FromGlobalRank == ToGlobalRank)
    return LinkCost(); // Self-sends are local copies; model them as free.
  return Cost;
}

TwoLevelCostModel::TwoLevelCostModel(std::vector<int> NodeOfRank,
                                     LinkCost Intra, LinkCost Inter)
    : Topo(std::move(NodeOfRank)), Intra(Intra), Inter(Inter) {}

LinkCost TwoLevelCostModel::intraLink(int Node) const {
  auto It = NodeIntra.find(Node);
  return It == NodeIntra.end() ? Intra : It->second;
}

LinkCost TwoLevelCostModel::link(int FromGlobalRank, int ToGlobalRank) const {
  if (FromGlobalRank == ToGlobalRank)
    return LinkCost();
  int FromNode = Topo.nodeOf(FromGlobalRank);
  if (FromNode != Topo.nodeOf(ToGlobalRank))
    return Inter;
  return intraLink(FromNode);
}
