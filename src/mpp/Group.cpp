//===-- mpp/Group.cpp - Shared communicator state -------------------------===//

#include "mpp/Group.h"

#include <algorithm>
#include <cassert>

using namespace fupermod;

void Mailbox::push(Message Msg) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Msg));
  }
  Ready.notify_all();
}

Message Mailbox::popMatching(int Tag) {
  std::unique_lock<std::mutex> Lock(Mutex);
  auto Match = Queue.end();
  Ready.wait(Lock, [&] {
    Match = std::find_if(Queue.begin(), Queue.end(),
                         [Tag](const Message &M) { return M.Tag == Tag; });
    return Match != Queue.end();
  });
  Message Msg = std::move(*Match);
  Queue.erase(Match);
  return Msg;
}

Group::Group(std::shared_ptr<const CostModel> Cost,
             std::vector<int> GlobalRanks, std::vector<int> ParentRanks)
    : Cost(std::move(Cost)), GlobalRanks(std::move(GlobalRanks)),
      ParentRanks(std::move(ParentRanks)) {
  assert(this->Cost && "null cost model");
  assert(!this->GlobalRanks.empty() && "empty group");
  assert(this->GlobalRanks.size() == this->ParentRanks.size() &&
         "rank mapping size mismatch");
  std::size_t N = this->GlobalRanks.size();
  Mailboxes.resize(N * N);
  for (auto &Box : Mailboxes)
    Box = std::make_unique<Mailbox>();
}

Mailbox &Group::mailbox(int Src, int Dst) {
  assert(Src >= 0 && Src < size() && Dst >= 0 && Dst < size() &&
         "rank out of range");
  return *Mailboxes[static_cast<std::size_t>(Src) * GlobalRanks.size() +
                    static_cast<std::size_t>(Dst)];
}

double Group::enterBarrier(double LocalTime) {
  std::unique_lock<std::mutex> Lock(BarrierMutex);
  std::uint64_t Gen = BarrierGeneration;
  BarrierMaxTime = std::max(BarrierMaxTime, LocalTime);
  if (++BarrierCount == size()) {
    BarrierRelease = BarrierMaxTime + Cost->barrierCost(size());
    BarrierCount = 0;
    BarrierMaxTime = 0.0;
    ++BarrierGeneration;
    BarrierCv.notify_all();
    return BarrierRelease;
  }
  BarrierCv.wait(Lock, [&] { return BarrierGeneration != Gen; });
  return BarrierRelease;
}

std::shared_ptr<Group> Group::split(const SplitEntry &Entry) {
  std::unique_lock<std::mutex> Lock(SplitMutex);
  std::uint64_t Gen = SplitGeneration;
  SplitEntries.push_back(Entry);
  if (static_cast<int>(SplitEntries.size()) == size()) {
    // Last rank in: build one subgroup per color, ordered by (key, parent
    // rank), then release the waiters. Entries are cleared immediately so
    // an early re-split by a released rank accumulates into the next
    // generation; SplitResult stays valid until the *next* build, which
    // cannot start before every rank has read this one.
    std::stable_sort(SplitEntries.begin(), SplitEntries.end(),
                     [](const SplitEntry &A, const SplitEntry &B) {
                       if (A.Color != B.Color)
                         return A.Color < B.Color;
                       if (A.Key != B.Key)
                         return A.Key < B.Key;
                       return A.ParentRank < B.ParentRank;
                     });
    SplitResult.clear();
    std::size_t I = 0;
    while (I < SplitEntries.size()) {
      std::size_t J = I;
      std::vector<int> SubGlobal;
      std::vector<int> SubParent;
      while (J < SplitEntries.size() &&
             SplitEntries[J].Color == SplitEntries[I].Color) {
        SubGlobal.push_back(GlobalRanks[SplitEntries[J].ParentRank]);
        SubParent.push_back(SplitEntries[J].ParentRank);
        ++J;
      }
      SplitResult[SplitEntries[I].Color] = std::make_shared<Group>(
          Cost, std::move(SubGlobal), std::move(SubParent));
      I = J;
    }
    SplitEntries.clear();
    ++SplitGeneration;
    SplitCv.notify_all();
  } else {
    SplitCv.wait(Lock, [&] { return SplitGeneration != Gen; });
  }
  auto It = SplitResult.find(Entry.Color);
  assert(It != SplitResult.end() && "split result missing for color");
  return It->second;
}

int Group::rankOfParent(int ParentRank) const {
  for (std::size_t I = 0; I < ParentRanks.size(); ++I)
    if (ParentRanks[I] == ParentRank)
      return static_cast<int>(I);
  assert(false && "parent rank not in subgroup");
  return -1;
}
