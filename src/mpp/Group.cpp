//===-- mpp/Group.cpp - Shared communicator state -------------------------===//

#include "mpp/Group.h"

#include <algorithm>
#include <cassert>

using namespace fupermod;

namespace {

/// Mixes a mailbox key into a shard index so that both row-major (one
/// sender to many receivers) and column-major (many senders to one
/// receiver) traffic spreads across shards.
std::uint64_t mixShard(std::uint64_t Key) {
  Key ^= Key >> 33;
  Key *= 0x9e3779b97f4a7c15ull;
  return Key >> 33;
}

} // namespace

void Mailbox::push(Message Msg) {
  std::promise<Message> Waiter;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Waiters.find(Msg.Tag);
    if (It == Waiters.end() || It->second.empty()) {
      Queues[Msg.Tag].push_back(std::move(Msg));
      return;
    }
    Waiter = std::move(It->second.front());
    It->second.pop_front();
    if (It->second.empty())
      Waiters.erase(It);
  }
  // Fulfil outside the lock: set_value wakes the receiver directly.
  Waiter.set_value(std::move(Msg));
}

std::future<Message> Mailbox::asyncPop(int Tag, const PoisonState &Poison) {
  std::promise<Message> Ready;
  std::future<Message> Result = Ready.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Queues.find(Tag);
    if (It == Queues.end() || It->second.empty()) {
      // The poison check and the waiter registration happen under one
      // lock, and the wake path drains waiters under the same lock: a
      // receive either observes the flag here or is registered in time
      // to be failed by poisonWaiters(). No poll needed.
      if (Poison.poisoned())
        Ready.set_exception(std::make_exception_ptr(Poison.makeError()));
      else
        Waiters[Tag].push_back(std::move(Ready));
      return Result;
    }
    Message Msg = std::move(It->second.front());
    It->second.pop_front();
    if (It->second.empty())
      Queues.erase(It);
    Ready.set_value(std::move(Msg));
  }
  return Result;
}

Message Mailbox::awaitMessage(std::future<Message> &Future) {
  assert(Future.valid() && "receive already consumed");
  // A message already handed to the future is delivered even on a
  // poisoned world; an empty wait ends when the sender's push() arrives
  // or poisoning fails the promise (rethrown by get()).
  Future.wait();
  return Future.get();
}

Message Mailbox::popMatching(int Tag, const PoisonState &Poison) {
  std::future<Message> Future = asyncPop(Tag, Poison);
  return awaitMessage(Future);
}

void Mailbox::poisonWaiters(const PoisonState &Poison) {
  std::map<int, std::deque<std::promise<Message>>> Doomed;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Doomed.swap(Waiters);
  }
  // Fulfil outside the lock, like push().
  for (auto &[Tag, Pending] : Doomed)
    for (std::promise<Message> &P : Pending)
      P.set_exception(std::make_exception_ptr(Poison.makeError()));
}

Group::Group(std::shared_ptr<const CostModel> Cost,
             std::vector<int> GlobalRanks, std::vector<int> ParentRanks,
             std::shared_ptr<PoisonState> Poison,
             std::shared_ptr<CommStats> Stats, int TwoLevelMinRanks)
    : Cost(std::move(Cost)),
      Poison(Poison ? std::move(Poison)
                    : std::make_shared<PoisonState>()),
      Stats(Stats ? std::move(Stats) : std::make_shared<CommStats>()),
      GlobalRanks(std::move(GlobalRanks)),
      ParentRanks(std::move(ParentRanks)),
      TwoLevelMinRanks(TwoLevelMinRanks) {
  assert(this->Cost && "null cost model");
  assert(!this->GlobalRanks.empty() && "empty group");
  assert(this->GlobalRanks.size() == this->ParentRanks.size() &&
         "rank mapping size mismatch");
  int N = size();

  RankOfParentRank.reserve(this->ParentRanks.size());
  for (std::size_t I = 0; I < this->ParentRanks.size(); ++I)
    RankOfParentRank.emplace(this->ParentRanks[I], static_cast<int>(I));

  // Mailbox shards: enough to keep first-touch contention negligible,
  // capped so tiny groups do not pay 64 mutexes. Power of two for the
  // mask; each shard holds only the channels actually used.
  std::size_t ShardCount = 1;
  while (ShardCount < 64 && static_cast<int>(ShardCount) < N)
    ShardCount <<= 1;
  Shards = std::vector<MailboxShard>(ShardCount);
  ShardMask = ShardCount - 1;

  buildNodeLayout();

  // Combining tree: one node per rank. With a node layout, co-located
  // ranks take adjacent tree positions so the fan-in combines within a
  // topology node before crossing it (the release value is order-free —
  // a max — so the permutation never changes results).
  TreeOrder.resize(static_cast<std::size_t>(N));
  for (int R = 0; R < N; ++R)
    TreeOrder[static_cast<std::size_t>(R)] = R;
  if (Layout)
    std::stable_sort(TreeOrder.begin(), TreeOrder.end(),
                     [&](int A, int B) {
                       return Layout->NodeOfRank[static_cast<std::size_t>(A)] <
                              Layout->NodeOfRank[static_cast<std::size_t>(B)];
                     });
  TreePos.resize(static_cast<std::size_t>(N));
  for (int P = 0; P < N; ++P)
    TreePos[static_cast<std::size_t>(TreeOrder[static_cast<std::size_t>(P)])] =
        P;
  Nodes = std::vector<RankTreeNode>(static_cast<std::size_t>(N));

  BarrierCost = this->Cost->barrierCost(N);

  // Last, once every waitable structure exists: if the world is already
  // poisoned the callback runs immediately (and harmlessly — no waiter
  // can exist yet, and future waits observe the flag in their
  // predicates).
  PoisonToken = this->Poison->subscribe([this] { wakeAllWaiters(); });
}

Group::~Group() { Poison->unsubscribe(PoisonToken); }

void Group::wakeAllWaiters() {
  for (RankTreeNode &Node : Nodes) {
    // Empty lock/unlock: orders the poison-flag store before any
    // blocked waiter's predicate re-check, so the notify cannot be
    // consumed without the flag being visible.
    { std::lock_guard<std::mutex> Lock(Node.Mutex); }
    Node.Cv.notify_all();
  }
  for (MailboxShard &Shard : Shards) {
    std::vector<Mailbox *> Boxes;
    {
      std::lock_guard<std::mutex> Lock(Shard.Mutex);
      Boxes.reserve(Shard.Boxes.size());
      for (auto &[Key, Box] : Shard.Boxes)
        Boxes.push_back(Box.get());
    }
    // The map only grows and boxes live as long as the group, so the
    // pointers stay valid after the shard lock is dropped. A channel
    // created after this snapshot fails its receives in asyncPop().
    for (Mailbox *Box : Boxes)
      Box->poisonWaiters(*Poison);
  }
}

void Group::buildNodeLayout() {
  const NodeTopology *Topo = Cost->topology();
  if (!Topo)
    return;
  // A model that does not cover every rank of this group cannot place
  // them on nodes; fall back to flat algorithms.
  for (int G : GlobalRanks)
    if (G < 0 || G >= Topo->numRanks())
      return;
  auto L = std::make_unique<NodeLayout>();
  L->NodeOfRank.resize(GlobalRanks.size());
  std::unordered_map<int, int> DenseOf;
  for (std::size_t R = 0; R < GlobalRanks.size(); ++R) {
    int Node = Topo->nodeOf(GlobalRanks[R]);
    auto [It, Inserted] =
        DenseOf.emplace(Node, static_cast<int>(L->Members.size()));
    if (Inserted)
      L->Members.emplace_back();
    L->NodeOfRank[R] = It->second;
    L->Members[static_cast<std::size_t>(It->second)].push_back(
        static_cast<int>(R));
  }
  Layout = std::move(L);
}

CommStatsSnapshot Group::statsSnapshot() const {
  CommStatsSnapshot S;
  S.Messages = Stats->Messages.load(std::memory_order_relaxed);
  S.BytesLogical = Stats->BytesLogical.load(std::memory_order_relaxed);
  S.BytesCopied = Stats->BytesCopied.load(std::memory_order_relaxed);
  S.HaloBytes = Stats->HaloBytes.load(std::memory_order_relaxed);
  S.RedistributeBytes =
      Stats->RedistributeBytes.load(std::memory_order_relaxed);
  S.ChannelsCreated =
      Stats->ChannelsCreated.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(Stats->CountersMutex);
    S.Counters = Stats->Counters;
  }
  return S;
}

void Group::accumulateCounter(const std::string &Name, double Delta) {
  std::lock_guard<std::mutex> Lock(Stats->CountersMutex);
  Stats->Counters[Name] += Delta;
}

Mailbox &Group::mailbox(int Src, int Dst) {
  assert(Src >= 0 && Src < size() && Dst >= 0 && Dst < size() &&
         "rank out of range");
  std::uint64_t Key = mailboxKey(Src, Dst);
  MailboxShard &Shard = Shards[mixShard(Key) & ShardMask];
  std::lock_guard<std::mutex> Lock(Shard.Mutex);
  std::unique_ptr<Mailbox> &Slot = Shard.Boxes[Key];
  if (!Slot) {
    Slot = std::make_unique<Mailbox>();
    Stats->ChannelsCreated.fetch_add(1, std::memory_order_relaxed);
  }
  return *Slot;
}

std::size_t Group::mailboxCount() const {
  std::size_t Total = 0;
  for (const MailboxShard &Shard : Shards) {
    std::lock_guard<std::mutex> Lock(
        const_cast<MailboxShard &>(Shard).Mutex);
    Total += Shard.Boxes.size();
  }
  return Total;
}

int Group::treeChildCount(int Pos) const {
  int FirstChild = Pos * TreeArity + 1;
  if (FirstChild >= size())
    return 0;
  return std::min(TreeArity, size() - FirstChild);
}

template <typename MergeFn, typename ExtractFn>
std::uint64_t Group::combineAtOwnNode(RankTreeNode &Node, int NumChildren,
                                      MergeFn Merge, ExtractFn Extract) {
  std::unique_lock<std::mutex> Lock(Node.Mutex);
  Merge(Node);
  Node.Cv.wait(Lock, [&] {
    return Node.Arrived == NumChildren || Poison->poisoned();
  });
  if (Node.Arrived != NumChildren)
    Poison->raise(); // A dead rank will never arrive (raise is lock-free).
  // Reset the arrival state for the next round *before* signalling the
  // parent: no child can deposit the next round's state until this rank
  // has been woken and released, so the reset cannot race new arrivals.
  Node.Arrived = 0;
  Extract(Node);
  // Captured while still holding the lock: the parent's wake for this
  // round cannot land before our deposit, so comparing against this
  // value can neither miss the wake nor consume a stale one.
  return Node.WakeGen;
}

double Group::enterBarrier(int Rank, double LocalTime) {
  Poison->check();
  if (size() == 1)
    return LocalTime + BarrierCost;
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  int Pos = TreePos[static_cast<std::size_t>(Rank)];
  RankTreeNode &Node = Nodes[static_cast<std::size_t>(Pos)];
  int NumChildren = treeChildCount(Pos);

  double SubtreeMax = 0.0;
  std::uint64_t PreWakeGen = combineAtOwnNode(
      Node, NumChildren,
      [&](RankTreeNode &N) { N.MaxTime = std::max(N.MaxTime, LocalTime); },
      [&](RankTreeNode &N) {
        SubtreeMax = N.MaxTime;
        N.MaxTime = 0.0;
      });

  double Release = 0.0;
  if (Pos == 0) {
    Release = SubtreeMax + BarrierCost;
  } else {
    RankTreeNode &Parent = Nodes[static_cast<std::size_t>(treeParent(Pos))];
    {
      std::lock_guard<std::mutex> Lock(Parent.Mutex);
      Parent.MaxTime = std::max(Parent.MaxTime, SubtreeMax);
      ++Parent.Arrived;
    }
    Parent.Cv.notify_all();
    std::unique_lock<std::mutex> Lock(Node.Mutex);
    Node.Cv.wait(Lock, [&] {
      return Node.WakeGen != PreWakeGen || Poison->poisoned();
    });
    if (Node.WakeGen == PreWakeGen)
      Poison->raise();
    Release = Node.Release;
  }

  // Wake the direct children with the root's release value; each child
  // rank repeats this for its own subtree on the way out.
  int FirstChild = Pos * TreeArity + 1;
  for (int C = FirstChild; C < FirstChild + NumChildren; ++C) {
    RankTreeNode &Child = Nodes[static_cast<std::size_t>(C)];
    {
      std::lock_guard<std::mutex> Lock(Child.Mutex);
      Child.Release = Release;
      ++Child.WakeGen;
    }
    Child.Cv.notify_all();
  }
  return Release;
}

std::shared_ptr<Group> Group::split(const SplitEntry &Entry) {
  Poison->check();
  using SplitMap = std::map<int, std::shared_ptr<Group>>;
  std::shared_ptr<const SplitMap> Result;

  if (size() == 1) {
    auto Single = std::make_shared<SplitMap>();
    (*Single)[Entry.Color] = std::make_shared<Group>(
        Cost, std::vector<int>{GlobalRanks[0]},
        std::vector<int>{Entry.ParentRank}, Poison, Stats, TwoLevelMinRanks);
    Result = std::move(Single);
  } else {
    int Rank = Entry.ParentRank;
    assert(Rank >= 0 && Rank < size() && "rank out of range");
    int Pos = TreePos[static_cast<std::size_t>(Rank)];
    RankTreeNode &Node = Nodes[static_cast<std::size_t>(Pos)];
    int NumChildren = treeChildCount(Pos);

    std::vector<SplitEntry> Gathered;
    std::uint64_t PreWakeGen = combineAtOwnNode(
        Node, NumChildren,
        [&](RankTreeNode &N) { N.Entries.push_back(Entry); },
        [&](RankTreeNode &N) {
          Gathered = std::move(N.Entries);
          N.Entries.clear();
        });

    if (Pos == 0) {
      // Tree root: build one subgroup per color, ordered by (key, parent
      // rank). Subgroups share the world's poison state and counters, so
      // a failure anywhere unblocks ranks waiting in any subgroup.
      assert(static_cast<int>(Gathered.size()) == size() &&
             "split must combine every rank's entry");
      std::stable_sort(Gathered.begin(), Gathered.end(),
                       [](const SplitEntry &A, const SplitEntry &B) {
                         if (A.Color != B.Color)
                           return A.Color < B.Color;
                         if (A.Key != B.Key)
                           return A.Key < B.Key;
                         return A.ParentRank < B.ParentRank;
                       });
      auto Built = std::make_shared<SplitMap>();
      std::size_t I = 0;
      while (I < Gathered.size()) {
        std::size_t J = I;
        std::vector<int> SubGlobal;
        std::vector<int> SubParent;
        while (J < Gathered.size() &&
               Gathered[J].Color == Gathered[I].Color) {
          SubGlobal.push_back(GlobalRanks[Gathered[J].ParentRank]);
          SubParent.push_back(Gathered[J].ParentRank);
          ++J;
        }
        (*Built)[Gathered[I].Color] = std::make_shared<Group>(
            Cost, std::move(SubGlobal), std::move(SubParent), Poison, Stats,
            TwoLevelMinRanks);
        I = J;
      }
      Result = std::move(Built);
    } else {
      RankTreeNode &Parent = Nodes[static_cast<std::size_t>(treeParent(Pos))];
      {
        std::lock_guard<std::mutex> Lock(Parent.Mutex);
        Parent.Entries.insert(Parent.Entries.end(), Gathered.begin(),
                              Gathered.end());
        ++Parent.Arrived;
      }
      Parent.Cv.notify_all();
      std::unique_lock<std::mutex> Lock(Node.Mutex);
      Node.Cv.wait(Lock, [&] {
        return Node.WakeGen != PreWakeGen || Poison->poisoned();
      });
      if (Node.WakeGen == PreWakeGen)
        Poison->raise();
      Result = std::move(Node.SplitOut);
    }

    int FirstChild = Pos * TreeArity + 1;
    for (int C = FirstChild; C < FirstChild + NumChildren; ++C) {
      RankTreeNode &Child = Nodes[static_cast<std::size_t>(C)];
      {
        std::lock_guard<std::mutex> Lock(Child.Mutex);
        Child.SplitOut = Result;
        ++Child.WakeGen;
      }
      Child.Cv.notify_all();
    }
  }

  auto It = Result->find(Entry.Color);
  assert(It != Result->end() && "split result missing for color");
  return It->second;
}

int Group::rankOfParent(int ParentRank) const {
  auto It = RankOfParentRank.find(ParentRank);
  assert(It != RankOfParentRank.end() && "parent rank not in subgroup");
  return It == RankOfParentRank.end() ? -1 : It->second;
}
