//===-- mpp/Group.cpp - Shared communicator state -------------------------===//

#include "mpp/Group.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace fupermod;

namespace {

/// Poll interval of every blocking wait. A poisoning rank cannot reach
/// the futures and condition variables of all mailboxes and subgroups,
/// so waiters re-check the shared flag at this cadence; it bounds how
/// long a survivor can stay blocked after a peer dies.
constexpr std::chrono::milliseconds PoisonPollInterval{10};

} // namespace

void Mailbox::push(Message Msg) {
  std::promise<Message> Waiter;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Waiters.find(Msg.Tag);
    if (It == Waiters.end() || It->second.empty()) {
      Queues[Msg.Tag].push_back(std::move(Msg));
      return;
    }
    Waiter = std::move(It->second.front());
    It->second.pop_front();
    if (It->second.empty())
      Waiters.erase(It);
  }
  // Fulfil outside the lock: set_value wakes the receiver directly.
  Waiter.set_value(std::move(Msg));
}

std::future<Message> Mailbox::asyncPop(int Tag) {
  std::promise<Message> Ready;
  std::future<Message> Result = Ready.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Queues.find(Tag);
    if (It == Queues.end() || It->second.empty()) {
      Waiters[Tag].push_back(std::move(Ready));
      return Result;
    }
    Message Msg = std::move(It->second.front());
    It->second.pop_front();
    if (It->second.empty())
      Queues.erase(It);
    Ready.set_value(std::move(Msg));
  }
  return Result;
}

Message Mailbox::awaitMessage(std::future<Message> &Future,
                              const PoisonState &Poison) {
  assert(Future.valid() && "receive already consumed");
  // A message already handed to the future is still delivered on a
  // poisoned world (the readiness check runs first); only an *empty* wait
  // aborts.
  while (Future.wait_for(PoisonPollInterval) !=
         std::future_status::ready)
    Poison.check();
  return Future.get();
}

Message Mailbox::popMatching(int Tag, const PoisonState &Poison) {
  std::future<Message> Future = asyncPop(Tag);
  return awaitMessage(Future, Poison);
}

Group::Group(std::shared_ptr<const CostModel> Cost,
             std::vector<int> GlobalRanks, std::vector<int> ParentRanks,
             std::shared_ptr<PoisonState> Poison,
             std::shared_ptr<CommStats> Stats)
    : Cost(std::move(Cost)),
      Poison(Poison ? std::move(Poison)
                    : std::make_shared<PoisonState>()),
      Stats(Stats ? std::move(Stats) : std::make_shared<CommStats>()),
      GlobalRanks(std::move(GlobalRanks)),
      ParentRanks(std::move(ParentRanks)) {
  assert(this->Cost && "null cost model");
  assert(!this->GlobalRanks.empty() && "empty group");
  assert(this->GlobalRanks.size() == this->ParentRanks.size() &&
         "rank mapping size mismatch");
  std::size_t N = this->GlobalRanks.size();
  Mailboxes.resize(N * N);
  for (auto &Box : Mailboxes)
    Box = std::make_unique<Mailbox>();
  BarrierCost = this->Cost->barrierCost(size());
}

CommStatsSnapshot Group::statsSnapshot() const {
  CommStatsSnapshot S;
  S.Messages = Stats->Messages.load(std::memory_order_relaxed);
  S.BytesLogical = Stats->BytesLogical.load(std::memory_order_relaxed);
  S.BytesCopied = Stats->BytesCopied.load(std::memory_order_relaxed);
  S.HaloBytes = Stats->HaloBytes.load(std::memory_order_relaxed);
  S.RedistributeBytes =
      Stats->RedistributeBytes.load(std::memory_order_relaxed);
  return S;
}

Mailbox &Group::mailbox(int Src, int Dst) {
  assert(Src >= 0 && Src < size() && Dst >= 0 && Dst < size() &&
         "rank out of range");
  return *Mailboxes[static_cast<std::size_t>(Src) * GlobalRanks.size() +
                    static_cast<std::size_t>(Dst)];
}

double Group::enterBarrier(double LocalTime) {
  std::unique_lock<std::mutex> Lock(BarrierMutex);
  Poison->check(); // A dead rank will never arrive.
  std::uint64_t Gen = BarrierGeneration;
  BarrierMaxTime = std::max(BarrierMaxTime, LocalTime);
  if (++BarrierCount == size()) {
    BarrierRelease = BarrierMaxTime + BarrierCost;
    BarrierCount = 0;
    BarrierMaxTime = 0.0;
    ++BarrierGeneration;
    BarrierCv.notify_all();
    return BarrierRelease;
  }
  while (!BarrierCv.wait_for(Lock, PoisonPollInterval,
                             [&] { return BarrierGeneration != Gen; }))
    // A barrier that did complete is honoured even on a poisoned world
    // (the generation check runs first); abandoned waits throw. The
    // half-entered count is left as-is — a poisoned world never runs
    // another successful barrier.
    Poison->check();
  return BarrierRelease;
}

std::shared_ptr<Group> Group::split(const SplitEntry &Entry) {
  std::unique_lock<std::mutex> Lock(SplitMutex);
  Poison->check(); // A dead rank will never contribute its entry.
  std::uint64_t Gen = SplitGeneration;
  SplitEntries.push_back(Entry);
  if (static_cast<int>(SplitEntries.size()) == size()) {
    // Last rank in: build one subgroup per color, ordered by (key, parent
    // rank), then release the waiters. Entries are cleared immediately so
    // an early re-split by a released rank accumulates into the next
    // generation; SplitResult stays valid until the *next* build, which
    // cannot start before every rank has read this one.
    std::stable_sort(SplitEntries.begin(), SplitEntries.end(),
                     [](const SplitEntry &A, const SplitEntry &B) {
                       if (A.Color != B.Color)
                         return A.Color < B.Color;
                       if (A.Key != B.Key)
                         return A.Key < B.Key;
                       return A.ParentRank < B.ParentRank;
                     });
    SplitResult.clear();
    std::size_t I = 0;
    while (I < SplitEntries.size()) {
      std::size_t J = I;
      std::vector<int> SubGlobal;
      std::vector<int> SubParent;
      while (J < SplitEntries.size() &&
             SplitEntries[J].Color == SplitEntries[I].Color) {
        SubGlobal.push_back(GlobalRanks[SplitEntries[J].ParentRank]);
        SubParent.push_back(SplitEntries[J].ParentRank);
        ++J;
      }
      // Subgroups share the world's poison state and counters, so a
      // failure anywhere unblocks ranks waiting in any subgroup.
      SplitResult[SplitEntries[I].Color] = std::make_shared<Group>(
          Cost, std::move(SubGlobal), std::move(SubParent), Poison, Stats);
      I = J;
    }
    SplitEntries.clear();
    ++SplitGeneration;
    SplitCv.notify_all();
  } else {
    while (!SplitCv.wait_for(Lock, PoisonPollInterval,
                             [&] { return SplitGeneration != Gen; }))
      Poison->check();
  }
  auto It = SplitResult.find(Entry.Color);
  assert(It != SplitResult.end() && "split result missing for color");
  return It->second;
}

int Group::rankOfParent(int ParentRank) const {
  for (std::size_t I = 0; I < ParentRanks.size(); ++I)
    if (ParentRanks[I] == ParentRank)
      return static_cast<int>(I);
  assert(false && "parent rank not in subgroup");
  return -1;
}
