//===-- mpp/Comm.cpp - SPMD communicator ----------------------------------===//

#include "mpp/Comm.h"

#include "mpp/Group.h"

#include <algorithm>
#include <cassert>

using namespace fupermod;

Comm::Comm(std::shared_ptr<Group> G, int Rank, VirtualClock *Clock)
    : G(std::move(G)), Rank(Rank), Clock(Clock) {
  assert(this->G && "null group");
  assert(Clock && "null clock");
  assert(Rank >= 0 && Rank < this->G->size() && "rank out of range");
}

int Comm::size() const { return G->size(); }

int Comm::globalRank() const { return G->globalRankOf(Rank); }

void Comm::sendBytes(int Dst, int Tag, std::span<const std::byte> Data) {
  assert(Dst >= 0 && Dst < size() && "destination out of range");
  G->poison().check();
  LinkCost Cost = G->costModel().link(globalRank(), G->globalRankOf(Dst));
  double Start = Clock->now();
  Message Msg;
  Msg.Tag = Tag;
  Msg.ArrivalTime = Start + Cost.transferTime(Data.size());
  Msg.Data.assign(Data.begin(), Data.end());
  // The sender is busy for the injection overhead only; the full transfer
  // time is charged to the message arrival (receiver side).
  Clock->advance(Cost.Latency);
  G->mailbox(Rank, Dst).push(std::move(Msg));
}

std::vector<std::byte> Comm::recvBytes(int Src, int Tag) {
  assert(Src >= 0 && Src < size() && "source out of range");
  Message Msg = G->mailbox(Src, Rank).popMatching(Tag, G->poison());
  Clock->advanceTo(Msg.ArrivalTime);
  return std::move(Msg.Data);
}

void Comm::abort(const std::string &Reason) {
  G->poison().poison(globalRank(), Reason);
}

bool Comm::poisoned() const { return G->poison().poisoned(); }

void Comm::barrier() {
  double Release = G->enterBarrier(Clock->now());
  Clock->advanceTo(Release);
}

void Comm::bcastBytes(std::vector<std::byte> &Data, int Root) {
  assert(Root >= 0 && Root < size() && "root out of range");
  int P = size();
  if (P == 1)
    return;
  int RelRank = (Rank - Root + P) % P;

  // Binomial tree: receive from the parent, then forward to children.
  unsigned Mask = 1;
  while (static_cast<int>(Mask) < P) {
    if (RelRank & static_cast<int>(Mask)) {
      int Parent = (RelRank - static_cast<int>(Mask) + Root) % P;
      Data = recvBytes(Parent, TagBcast);
      break;
    }
    Mask <<= 1;
  }
  Mask >>= 1;
  while (Mask > 0) {
    int Child = RelRank + static_cast<int>(Mask);
    if (Child < P)
      sendBytes((Child + Root) % P, TagBcast, Data);
    Mask >>= 1;
  }
}

std::vector<double> Comm::allreduce(std::span<const double> Local,
                                    ReduceOp Op) {
  // Gather all contributions at rank 0, reduce, broadcast the result. The
  // vectors involved are tiny (per-rank scalars), so the linear gather is
  // fine.
  std::vector<double> All = gatherv(Local, /*Root=*/0);
  std::vector<double> Result(Local.size(), 0.0);
  if (rank() == 0) {
    assert(All.size() == Local.size() * static_cast<std::size_t>(size()) &&
           "allreduce contributions must have equal length");
    for (std::size_t I = 0; I < Local.size(); ++I) {
      double Acc = All[I];
      for (int R = 1; R < size(); ++R) {
        double V = All[static_cast<std::size_t>(R) * Local.size() + I];
        switch (Op) {
        case ReduceOp::Sum:
          Acc += V;
          break;
        case ReduceOp::Max:
          Acc = std::max(Acc, V);
          break;
        case ReduceOp::Min:
          Acc = std::min(Acc, V);
          break;
        }
      }
      Result[I] = Acc;
    }
  }
  bcast(Result, /*Root=*/0);
  return Result;
}

double Comm::allreduceValue(double Value, ReduceOp Op) {
  std::vector<double> R = allreduce(std::span<const double>(&Value, 1), Op);
  return R.front();
}

Comm Comm::split(int Color, int Key) {
  Group::SplitEntry Entry;
  Entry.Color = Color;
  Entry.Key = Key;
  Entry.ParentRank = Rank;
  std::shared_ptr<Group> Sub = G->split(Entry);
  // Find our rank inside the new group by matching the parent rank.
  int NewRank = Sub->rankOfParent(Rank);
  // A split is also a synchronisation point among the members of the new
  // group in real MPI; we keep clocks independent (no time cost) because
  // MPI_Comm_split cost is not part of any modelled experiment.
  return Comm(std::move(Sub), NewRank, Clock);
}
