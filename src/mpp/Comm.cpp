//===-- mpp/Comm.cpp - SPMD communicator ----------------------------------===//

#include "mpp/Comm.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <numeric>

using namespace fupermod;

bool RecvRequest::ready() {
  assert(Active && "request not pending");
  return Future.wait_for(std::chrono::seconds(0)) ==
         std::future_status::ready;
}

Payload RecvRequest::wait() {
  assert(Active && "request not pending");
  Message Msg = Mailbox::awaitMessage(Future);
  Clock->advanceTo(Msg.ArrivalTime);
  Active = false;
  return std::move(Msg.Data);
}

Comm::Comm(std::shared_ptr<Group> G, int Rank, VirtualClock *Clock)
    : G(std::move(G)), Rank(Rank), Clock(Clock) {
  assert(this->G && "null group");
  assert(Clock && "null clock");
  assert(Rank >= 0 && Rank < this->G->size() && "rank out of range");
}

int Comm::size() const { return G->size(); }

int Comm::globalRank() const { return G->globalRankOf(Rank); }

void Comm::countCopied(std::size_t Bytes) {
  G->stats().BytesCopied.fetch_add(Bytes, std::memory_order_relaxed);
}

CommStatsSnapshot Comm::commStats() const { return G->statsSnapshot(); }

void Comm::accumulateCounter(const std::string &Name, double Delta) {
  G->accumulateCounter(Name, Delta);
}

void Comm::sendPayload(int Dst, int Tag, Payload Data, TrafficClass Class) {
  assert(Dst >= 0 && Dst < size() && "destination out of range");
  G->poison().check();
  LinkCost Cost = G->costModel().link(globalRank(), G->globalRankOf(Dst));
  double Start = Clock->now();
  Message Msg;
  Msg.Tag = Tag;
  Msg.ArrivalTime = Start + Cost.transferTime(Data.size());
  CommStats &S = G->stats();
  S.Messages.fetch_add(1, std::memory_order_relaxed);
  S.BytesLogical.fetch_add(Data.size(), std::memory_order_relaxed);
  if (Class == TrafficClass::Halo)
    S.HaloBytes.fetch_add(Data.size(), std::memory_order_relaxed);
  else if (Class == TrafficClass::Redistribute)
    S.RedistributeBytes.fetch_add(Data.size(), std::memory_order_relaxed);
  Msg.Data = std::move(Data);
  // The sender is busy for the injection overhead only; the full transfer
  // time is charged to the message arrival (receiver side).
  Clock->advance(Cost.Latency);
  G->mailbox(Rank, Dst).push(std::move(Msg));
}

void Comm::sendBytes(int Dst, int Tag, std::span<const std::byte> Data) {
  countCopied(Data.size());
  sendPayload(Dst, Tag, Payload::copyOf(Data));
}

Payload Comm::recvPayload(int Src, int Tag) {
  assert(Src >= 0 && Src < size() && "source out of range");
  Message Msg = G->mailbox(Src, Rank).popMatching(Tag, G->poison());
  Clock->advanceTo(Msg.ArrivalTime);
  return std::move(Msg.Data);
}

std::vector<std::byte> Comm::recvBytes(int Src, int Tag) {
  Payload P = recvPayload(Src, Tag);
  countCopied(P.size());
  return P.toVector<std::byte>();
}

RecvRequest Comm::irecv(int Src, int Tag) {
  assert(Src >= 0 && Src < size() && "source out of range");
  RecvRequest Req;
  Req.G = G;
  Req.Future = G->mailbox(Src, Rank).asyncPop(Tag, G->poison());
  Req.Clock = Clock;
  Req.Active = true;
  return Req;
}

void Comm::abort(const std::string &Reason) {
  G->poison().poison(globalRank(), Reason);
}

bool Comm::poisoned() const { return G->poison().poisoned(); }

void Comm::barrier() {
  double Release = G->enterBarrier(Rank, Clock->now());
  Clock->advanceTo(Release);
}

bool Comm::usesTwoLevelCollectives() const { return G->twoLevelEligible(); }

void Comm::bcastPayloadOverList(std::span<const int> Ranks, int MyIdx,
                                int RootIdx, Payload &Data, int Tag) {
  int N = static_cast<int>(Ranks.size());
  if (N <= 1)
    return;
  assert(MyIdx >= 0 && MyIdx < N && RootIdx >= 0 && RootIdx < N &&
         Ranks[static_cast<std::size_t>(MyIdx)] == Rank &&
         "caller must be in the list");
  int Rel = (MyIdx - RootIdx + N) % N;

  // The flat binomial tree, in list-index space: receive from the
  // parent, then forward the *same* payload to the children.
  unsigned Mask = 1;
  while (static_cast<int>(Mask) < N) {
    if (Rel & static_cast<int>(Mask)) {
      int Parent = (Rel - static_cast<int>(Mask) + RootIdx) % N;
      Data = recvPayload(Ranks[static_cast<std::size_t>(Parent)], Tag);
      break;
    }
    Mask <<= 1;
  }
  Mask >>= 1;
  while (Mask > 0) {
    int Child = Rel + static_cast<int>(Mask);
    if (Child < N)
      sendPayload(Ranks[static_cast<std::size_t>((Child + RootIdx) % N)],
                  Tag, Data);
    Mask >>= 1;
  }
}

void Comm::bcastPayloadTwoLevel(Payload &Data, int Root) {
  const Group::NodeLayout &L = *G->layout();
  int MyNode = L.NodeOfRank[static_cast<std::size_t>(Rank)];
  int RootNode = L.NodeOfRank[static_cast<std::size_t>(Root)];
  // Each node is drained from its *node root*: the group root on its own
  // node, the node leader (lowest rank) elsewhere.
  auto NodeRoot = [&](int Node) {
    return Node == RootNode ? Root : L.leaderOf(Node);
  };

  // Stage 1 — inter-node: binomial tree over the node roots, rooted at
  // the group root (listed first, then the other nodes in dense order).
  if (Rank == NodeRoot(MyNode)) {
    std::vector<int> Inter;
    Inter.reserve(static_cast<std::size_t>(L.numNodes()));
    Inter.push_back(Root);
    for (int Nd = 0; Nd < L.numNodes(); ++Nd)
      if (Nd != RootNode)
        Inter.push_back(L.leaderOf(Nd));
    int MyIdx = MyNode == RootNode
                    ? 0
                    : (MyNode < RootNode ? MyNode + 1 : MyNode);
    bcastPayloadOverList(Inter, MyIdx, /*RootIdx=*/0, Data, TagBcastInter);
  }

  // Stage 2 — intra-node: binomial tree among the node's members, rooted
  // at the node root. The same shared payload is forwarded throughout,
  // so the fan-out still copies nothing.
  const std::vector<int> &Members =
      L.Members[static_cast<std::size_t>(MyNode)];
  auto Self = std::lower_bound(Members.begin(), Members.end(), Rank);
  auto At = std::lower_bound(Members.begin(), Members.end(),
                             NodeRoot(MyNode));
  bcastPayloadOverList(Members,
                       static_cast<int>(Self - Members.begin()),
                       static_cast<int>(At - Members.begin()), Data,
                       TagBcastIntra);
}

void Comm::bcastPayload(Payload &Data, int Root) {
  assert(Root >= 0 && Root < size() && "root out of range");
  int P = size();
  if (P == 1)
    return;
  if (G->twoLevelEligible()) {
    bcastPayloadTwoLevel(Data, Root);
    return;
  }
  int RelRank = (Rank - Root + P) % P;

  // Binomial tree: receive from the parent, then forward the *same*
  // payload to the children — every rank ends up sharing the root's
  // buffer, so the whole fan-out copies nothing.
  unsigned Mask = 1;
  while (static_cast<int>(Mask) < P) {
    if (RelRank & static_cast<int>(Mask)) {
      int Parent = (RelRank - static_cast<int>(Mask) + Root) % P;
      Data = recvPayload(Parent, TagBcast);
      break;
    }
    Mask <<= 1;
  }
  Mask >>= 1;
  while (Mask > 0) {
    int Child = RelRank + static_cast<int>(Mask);
    if (Child < P)
      sendPayload((Child + Root) % P, TagBcast, Data);
    Mask >>= 1;
  }
}

void Comm::bcastBytes(std::vector<std::byte> &Data, int Root) {
  Payload P;
  if (Rank == Root) {
    countCopied(Data.size());
    P = Payload::copyOf(Data);
  }
  bcastPayload(P, Root);
  if (Rank != Root) {
    countCopied(P.size());
    Data = P.toVector<std::byte>();
  }
}

void Comm::gatherOverList(std::span<const int> Ranks, int MyIdx,
                          int RootIdx, std::span<const std::byte> Local,
                          std::vector<std::uint64_t> &Sizes,
                          std::vector<std::byte> &Buf, int TagSizes,
                          int TagData) {
  int N = static_cast<int>(Ranks.size());
  assert(MyIdx >= 0 && MyIdx < N && RootIdx >= 0 && RootIdx < N &&
         Ranks[static_cast<std::size_t>(MyIdx)] == Rank &&
         "caller must be in the list");
  int Rel = (MyIdx - RootIdx + N) % N;

  // The flat binomial gather in list-index space: each node accumulates
  // a contiguous window of relative indices [Rel, CoverEnd) as a sizes
  // header (one uint64 per covered member) plus the concatenated data.
  // On return at the list root, Sizes/Buf hold every member's
  // contribution in relative-index order (i.e. starting at RootIdx and
  // wrapping); non-roots leave them empty.
  Sizes.assign(1, Local.size());
  Buf.assign(Local.begin(), Local.end());
  countCopied(Buf.size());

  unsigned Mask = 1;
  while (static_cast<int>(Mask) < N) {
    if (Rel & static_cast<int>(Mask)) {
      int Parent =
          Ranks[static_cast<std::size_t>((Rel - static_cast<int>(Mask) +
                                          RootIdx) % N)];
      isend(Parent, TagSizes, std::move(Sizes));
      sendPayload(Parent, TagData, Payload::adoptBytes(std::move(Buf)));
      Sizes.clear();
      Buf.clear();
      return;
    }
    int Child = Rel + static_cast<int>(Mask);
    if (Child < N) {
      int ChildRank =
          Ranks[static_cast<std::size_t>((Child + RootIdx) % N)];
      std::vector<std::uint64_t> ChildSizes =
          recv<std::uint64_t>(ChildRank, TagSizes);
      Payload ChildData = recvPayload(ChildRank, TagData);
      assert(std::accumulate(ChildSizes.begin(), ChildSizes.end(),
                             std::uint64_t{0}) == ChildData.size() &&
             "gather sizes/data mismatch");
      Sizes.insert(Sizes.end(), ChildSizes.begin(), ChildSizes.end());
      countCopied(ChildData.size());
      Buf.insert(Buf.end(), ChildData.bytes().begin(),
                 ChildData.bytes().end());
    }
    Mask <<= 1;
  }
  assert(Rel == 0 && static_cast<int>(Sizes.size()) == N &&
         "list root must have combined every member");
}

std::vector<std::byte>
Comm::gathervBytesTwoLevel(std::span<const std::byte> Local, int Root) {
  const Group::NodeLayout &L = *G->layout();
  int MyNode = L.NodeOfRank[static_cast<std::size_t>(Rank)];
  int RootNode = L.NodeOfRank[static_cast<std::size_t>(Root)];
  auto NodeRoot = [&](int Node) {
    return Node == RootNode ? Root : L.leaderOf(Node);
  };

  // Stage 1 — intra-node: gather the node's contributions at its node
  // root (the group root on its own node, the leader elsewhere).
  const std::vector<int> &Members =
      L.Members[static_cast<std::size_t>(MyNode)];
  auto Self = std::lower_bound(Members.begin(), Members.end(), Rank);
  auto At = std::lower_bound(Members.begin(), Members.end(),
                             NodeRoot(MyNode));
  int MyIdxIntra = static_cast<int>(Self - Members.begin());
  int RootIdxIntra = static_cast<int>(At - Members.begin());
  std::vector<std::uint64_t> MemberSizes;
  std::vector<std::byte> NodeBuf;
  gatherOverList(Members, MyIdxIntra, RootIdxIntra, Local, MemberSizes,
                 NodeBuf, TagGatherIntraSizes, TagGatherIntraData);
  if (Rank != NodeRoot(MyNode))
    return {};

  // Pack the node block: the member sizes (in the intra list's
  // relative-index order, which the group root can reconstruct from the
  // layout) followed by the concatenated data.
  std::vector<std::byte> Block(MemberSizes.size() *
                                   sizeof(std::uint64_t) +
                               NodeBuf.size());
  std::memcpy(Block.data(), MemberSizes.data(),
              MemberSizes.size() * sizeof(std::uint64_t));
  std::memcpy(Block.data() + MemberSizes.size() * sizeof(std::uint64_t),
              NodeBuf.data(), NodeBuf.size());
  countCopied(Block.size());

  // Stage 2 — inter-node: gather the node blocks at the group root over
  // the node-root list (group root first, other nodes in dense order).
  std::vector<int> Inter;
  Inter.reserve(static_cast<std::size_t>(L.numNodes()));
  Inter.push_back(Root);
  for (int Nd = 0; Nd < L.numNodes(); ++Nd)
    if (Nd != RootNode)
      Inter.push_back(L.leaderOf(Nd));
  int MyIdxInter =
      MyNode == RootNode ? 0 : (MyNode < RootNode ? MyNode + 1 : MyNode);
  std::vector<std::uint64_t> BlockSizes;
  std::vector<std::byte> AllBlocks;
  gatherOverList(Inter, MyIdxInter, /*RootIdx=*/0, Block, BlockSizes,
                 AllBlocks, TagGatherInterSizes, TagGatherInterData);
  if (Rank != Root)
    return {};

  // Decode: blocks arrive in inter-list order; within block j the member
  // chunks follow that node's intra relative-index order. Map every
  // chunk back to its group rank and emit rank order.
  int P = size();
  std::vector<std::uint64_t> ChunkOffset(static_cast<std::size_t>(P), 0);
  std::vector<std::uint64_t> ChunkBytes(static_cast<std::size_t>(P), 0);
  std::uint64_t BlockStart = 0;
  std::uint64_t TotalData = 0;
  for (std::size_t J = 0; J < Inter.size(); ++J) {
    int Nd = L.NodeOfRank[static_cast<std::size_t>(Inter[J])];
    const std::vector<int> &NodeMembers =
        L.Members[static_cast<std::size_t>(Nd)];
    int M = static_cast<int>(NodeMembers.size());
    auto RootIt = std::lower_bound(NodeMembers.begin(), NodeMembers.end(),
                                   NodeRoot(Nd));
    int R0 = static_cast<int>(RootIt - NodeMembers.begin());
    std::uint64_t DataOff =
        BlockStart + static_cast<std::uint64_t>(M) * sizeof(std::uint64_t);
    for (int K = 0; K < M; ++K) {
      int Member = NodeMembers[static_cast<std::size_t>((R0 + K) % M)];
      std::uint64_t Bytes;
      std::memcpy(&Bytes,
                  AllBlocks.data() + BlockStart +
                      static_cast<std::uint64_t>(K) * sizeof(std::uint64_t),
                  sizeof(std::uint64_t));
      ChunkOffset[static_cast<std::size_t>(Member)] = DataOff;
      ChunkBytes[static_cast<std::size_t>(Member)] = Bytes;
      DataOff += Bytes;
      TotalData += Bytes;
    }
    BlockStart += BlockSizes[J];
  }
  assert(BlockStart == AllBlocks.size() && "inter blocks must be consumed");
  std::vector<std::byte> Ordered;
  Ordered.reserve(TotalData);
  for (int R = 0; R < P; ++R)
    Ordered.insert(Ordered.end(),
                   AllBlocks.begin() + static_cast<std::ptrdiff_t>(
                                           ChunkOffset[static_cast<
                                               std::size_t>(R)]),
                   AllBlocks.begin() +
                       static_cast<std::ptrdiff_t>(
                           ChunkOffset[static_cast<std::size_t>(R)] +
                           ChunkBytes[static_cast<std::size_t>(R)]));
  countCopied(Ordered.size());
  return Ordered;
}

std::vector<std::byte> Comm::gathervBytes(std::span<const std::byte> Local,
                                          int Root) {
  assert(Root >= 0 && Root < size() && "root out of range");
  int P = size();
  if (P == 1)
    return std::vector<std::byte>(Local.begin(), Local.end());
  if (G->twoLevelEligible())
    return gathervBytesTwoLevel(Local, Root);
  int RelRank = (Rank - Root + P) % P;

  // Binomial tree in relrank space. Each node accumulates a contiguous
  // window of relranks [RelRank, CoverEnd): a sizes header (one uint64
  // per covered relrank) plus the concatenated data in ascending relrank
  // order. Children at distance Mask arrive with exactly that layout, so
  // merging is an append.
  std::vector<std::uint64_t> Sizes = {Local.size()};
  std::vector<std::byte> Buf(Local.begin(), Local.end());
  countCopied(Buf.size());

  unsigned Mask = 1;
  while (static_cast<int>(Mask) < P) {
    if (RelRank & static_cast<int>(Mask)) {
      int Parent = (RelRank - static_cast<int>(Mask) + Root) % P;
      isend(Parent, TagGathervSizes, std::move(Sizes));
      sendPayload(Parent, TagGathervData, Payload::adoptBytes(std::move(Buf)));
      return {};
    }
    int Child = RelRank + static_cast<int>(Mask);
    if (Child < P) {
      std::vector<std::uint64_t> ChildSizes =
          recv<std::uint64_t>((Child + Root) % P, TagGathervSizes);
      Payload ChildData = recvPayload((Child + Root) % P, TagGathervData);
      assert(std::accumulate(ChildSizes.begin(), ChildSizes.end(),
                             std::uint64_t{0}) == ChildData.size() &&
             "gatherv sizes/data mismatch");
      Sizes.insert(Sizes.end(), ChildSizes.begin(), ChildSizes.end());
      countCopied(ChildData.size());
      Buf.insert(Buf.end(), ChildData.bytes().begin(),
                 ChildData.bytes().end());
    }
    Mask <<= 1;
  }

  // Root: Buf holds all contributions in relrank order. Reorder to rank
  // order (identity when Root == 0).
  assert(RelRank == 0 && static_cast<int>(Sizes.size()) == P);
  if (Root == 0)
    return Buf;
  std::vector<std::uint64_t> Offsets(static_cast<std::size_t>(P) + 1, 0);
  for (int Q = 0; Q < P; ++Q)
    Offsets[static_cast<std::size_t>(Q) + 1] =
        Offsets[static_cast<std::size_t>(Q)] +
        Sizes[static_cast<std::size_t>(Q)];
  std::vector<std::byte> Ordered;
  Ordered.reserve(Buf.size());
  for (int R = 0; R < P; ++R) {
    auto Q = static_cast<std::size_t>((R - Root + P) % P);
    Ordered.insert(Ordered.end(), Buf.begin() + Offsets[Q],
                   Buf.begin() + Offsets[Q + 1]);
  }
  return Ordered;
}

std::vector<std::byte>
Comm::scattervBytes(std::span<const std::byte> All,
                    std::span<const std::size_t> CountsBytes, int Root) {
  assert(Root >= 0 && Root < size() && "root out of range");
  int P = size();
  assert(static_cast<int>(CountsBytes.size()) == P &&
         "one byte count per rank required");
  if (P == 1)
    return std::vector<std::byte>(All.begin(), All.end());
  int RelRank = (Rank - Root + P) % P;

  // Binomial tree in relrank space, mirroring gathervBytes: every node
  // holds a sizes header plus one payload covering a contiguous relrank
  // window, and hands the upper half of its window to each child. The
  // forwarded slices are subviews of the received payload, so only the
  // root's assembly and each rank's final chunk are physical copies.
  std::vector<std::uint64_t> Sizes;
  Payload Cover;
  unsigned Mask = 1;
  if (RelRank == 0) {
    // Assemble the relrank-ordered buffer (identity when Root == 0).
    std::vector<std::uint64_t> RankOffsets(static_cast<std::size_t>(P) + 1,
                                           0);
    for (int R = 0; R < P; ++R)
      RankOffsets[static_cast<std::size_t>(R) + 1] =
          RankOffsets[static_cast<std::size_t>(R)] +
          CountsBytes[static_cast<std::size_t>(R)];
    assert(RankOffsets.back() == All.size() &&
           "scatterv counts must cover the buffer");
    Sizes.resize(static_cast<std::size_t>(P));
    std::vector<std::byte> Assembled;
    Assembled.reserve(All.size());
    for (int Q = 0; Q < P; ++Q) {
      auto R = static_cast<std::size_t>((Q + Root) % P);
      Sizes[static_cast<std::size_t>(Q)] = CountsBytes[R];
      Assembled.insert(Assembled.end(), All.begin() + RankOffsets[R],
                       All.begin() + RankOffsets[R + 1]);
    }
    countCopied(Assembled.size());
    Cover = Payload::adoptBytes(std::move(Assembled));
    while (static_cast<int>(Mask) < P)
      Mask <<= 1;
  } else {
    while (static_cast<int>(Mask) < P) {
      if (RelRank & static_cast<int>(Mask)) {
        int Parent = (RelRank - static_cast<int>(Mask) + Root) % P;
        Sizes = recv<std::uint64_t>(Parent, TagScattervSizes);
        Cover = recvPayload(Parent, TagScattervData);
        break;
      }
      Mask <<= 1;
    }
  }

  // Send phase: peel off the upper half of the window for each child.
  Mask >>= 1;
  while (Mask > 0) {
    int Child = RelRank + static_cast<int>(Mask);
    if (Child < P) {
      auto Split = static_cast<std::size_t>(Mask);
      assert(Split < Sizes.size() && "child window must be non-empty");
      std::uint64_t ByteOff = 0;
      for (std::size_t I = 0; I < Split; ++I)
        ByteOff += Sizes[I];
      std::vector<std::uint64_t> ChildSizes(Sizes.begin() +
                                                static_cast<long>(Split),
                                            Sizes.end());
      std::uint64_t ChildBytes = Cover.size() - ByteOff;
      isend((Child + Root) % P, TagScattervSizes, std::move(ChildSizes));
      sendPayload((Child + Root) % P, TagScattervData,
                  Cover.subview(ByteOff, ChildBytes));
      Sizes.resize(Split);
      Cover = Cover.subview(0, ByteOff);
    }
    Mask >>= 1;
  }

  assert(Sizes.size() == 1 && Cover.size() == Sizes.front() &&
         "window must have narrowed to the local chunk");
  countCopied(Cover.size());
  return Cover.toVector<std::byte>();
}

std::vector<double> Comm::allreduce(std::span<const double> Local,
                                    ReduceOp Op) {
  // Gather all contributions at rank 0, reduce in rank order (fixed
  // association keeps results bit-reproducible), broadcast the result.
  std::vector<double> All = gatherv(Local, /*Root=*/0);
  std::vector<double> Result(Local.size(), 0.0);
  if (rank() == 0) {
    assert(All.size() == Local.size() * static_cast<std::size_t>(size()) &&
           "allreduce contributions must have equal length");
    for (std::size_t I = 0; I < Local.size(); ++I) {
      double Acc = All[I];
      for (int R = 1; R < size(); ++R) {
        double V = All[static_cast<std::size_t>(R) * Local.size() + I];
        switch (Op) {
        case ReduceOp::Sum:
          Acc += V;
          break;
        case ReduceOp::Max:
          Acc = std::max(Acc, V);
          break;
        case ReduceOp::Min:
          Acc = std::min(Acc, V);
          break;
        }
      }
      Result[I] = Acc;
    }
  }
  bcast(Result, /*Root=*/0);
  return Result;
}

double Comm::allreduceValue(double Value, ReduceOp Op) {
  std::vector<double> R = allreduce(std::span<const double>(&Value, 1), Op);
  return R.front();
}

Comm Comm::split(int Color, int Key) {
  Group::SplitEntry Entry;
  Entry.Color = Color;
  Entry.Key = Key;
  Entry.ParentRank = Rank;
  std::shared_ptr<Group> Sub = G->split(Entry);
  // Find our rank inside the new group by matching the parent rank.
  int NewRank = Sub->rankOfParent(Rank);
  // A split is also a synchronisation point among the members of the new
  // group in real MPI; we keep clocks independent (no time cost) because
  // MPI_Comm_split cost is not part of any modelled experiment.
  return Comm(std::move(Sub), NewRank, Clock);
}
