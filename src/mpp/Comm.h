//===-- mpp/Comm.h - SPMD communicator --------------------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An MPI-like communicator for the in-process SPMD runtime. Ranks run as
/// threads; messages carry virtual arrival times computed from a
/// CostModel, so communication cost is part of the simulation. This is the
/// substrate standing in for MPI in the paper's data-parallel applications.
///
/// Supported operations: blocking send/recv (FIFO matching per source and
/// tag), nonblocking isend/irecv (future-backed), zero-copy shared-payload
/// send/recv/broadcast, barrier, broadcast and gatherv/scatterv (binomial
/// trees), allgatherv, allreduce, and communicator splitting (the paper's
/// `comm_sync` used to synchronise co-located benchmark processes).
///
/// When the cost model carries a node topology (CostModel::topology())
/// and the group spans more than one node at two-level scale
/// (Group::twoLevelEligible), bcast and gatherv — and allreduce /
/// allgatherv, which are built on them — switch to two-level algorithms:
/// an intra-node stage among co-located ranks plus an inter-node binomial
/// tree among node leaders, so large-P collectives cross the (slow)
/// network O(numNodes) times instead of O(P). Results are byte-identical
/// to the flat algorithms; only the virtual link charges differ.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_COMM_H
#define FUPERMOD_MPP_COMM_H

#include "mpp/CostModel.h"
#include "mpp/Group.h"
#include "mpp/Payload.h"
#include "mpp/Poison.h"
#include "mpp/VirtualClock.h"

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace fupermod {

/// Combining operation for allreduce.
enum class ReduceOp { Sum, Max, Min };

/// Accounting class of a point-to-point send. General traffic only feeds
/// the aggregate counters; Halo and Redistribute sends additionally feed
/// CommStats::HaloBytes / RedistributeBytes, so a workload's data-movement
/// cost separates into kernel-coupling bytes and repartitioning bytes.
enum class TrafficClass { General, Halo, Redistribute };

/// Handle to a pending nonblocking receive posted with Comm::irecv.
/// wait() blocks until the message is available and advances the owning
/// rank's clock to max(now, arrival) — computation performed between
/// irecv and wait overlaps the transfer. Every posted request must be
/// completed with wait(); a dropped request forfeits the message that
/// would have fulfilled it.
class RecvRequest {
public:
  RecvRequest() = default;

  /// True while the request is posted and not yet waited on.
  bool pending() const { return Active; }

  /// True when wait() would return without blocking.
  bool ready();

  /// Blocks until the message arrives, advances the clock, and returns
  /// the shared payload. Throws CommError when the world is poisoned
  /// while waiting.
  Payload wait();

private:
  friend class Comm;
  std::shared_ptr<Group> G; // Keeps poison/stats alive.
  std::future<Message> Future;
  VirtualClock *Clock = nullptr;
  bool Active = false;
};

/// Per-rank handle to a communication group.
///
/// A Comm is cheap to copy; all state lives in the shared Group and in the
/// rank's VirtualClock. All collective operations must be entered by every
/// rank of the group in the same order (standard SPMD contract).
///
/// Failure model: when any rank of the world dies (uncaught exception in
/// its SPMD body, or an explicit abort()), the world is poisoned and
/// every communication operation — including those of subgroups split
/// from the world — throws CommError instead of blocking on the dead
/// rank. See mpp/Poison.h.
class Comm {
public:
  Comm(std::shared_ptr<Group> G, int Rank, VirtualClock *Clock);

  /// Rank of the calling thread within this communicator.
  int rank() const { return Rank; }

  /// Number of ranks in this communicator.
  int size() const;

  /// Rank within the top-level (world) communicator.
  int globalRank() const;

  /// The calling rank's virtual clock.
  VirtualClock &clock() { return *Clock; }

  /// Current virtual time of the calling rank.
  double time() const { return Clock->now(); }

  /// Advances the calling rank's clock by \p Seconds of computation.
  void compute(double Seconds) { Clock->advance(Seconds); }

  /// Sends \p Data to \p Dst with the given tag. Never blocks (buffered);
  /// charges the link latency to the sender and the full transfer time to
  /// the message's arrival. Deep-copies the buffer (use sendPayload /
  /// isend for zero-copy).
  void sendBytes(int Dst, int Tag, std::span<const std::byte> Data);

  /// Zero-copy send: enqueues a reference to \p Data's buffer. Sending
  /// the same Payload to N receivers moves O(N * size) logical bytes but
  /// copies nothing. \p Class attributes the bytes to a traffic class in
  /// the world counters.
  void sendPayload(int Dst, int Tag, Payload Data,
                   TrafficClass Class = TrafficClass::General);

  /// Receives the oldest pending message from \p Src with tag \p Tag,
  /// blocking until one arrives. The caller's clock advances to the
  /// message arrival time. Returns a mutable copy of the payload.
  std::vector<std::byte> recvBytes(int Src, int Tag);

  /// Zero-copy receive: like recvBytes but returns the shared immutable
  /// payload without materialising a private buffer.
  Payload recvPayload(int Src, int Tag);

  /// Posts a nonblocking receive; complete it with RecvRequest::wait().
  /// Receives posted on one (source, tag) pair match sends in FIFO order.
  RecvRequest irecv(int Src, int Tag);

  /// Move-based nonblocking send: adopts \p Data without copying and
  /// enqueues it. (Buffered sends never block, so the send is complete
  /// when this returns — no request object is needed.)
  template <typename T> void isend(int Dst, int Tag, std::vector<T> Data) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendPayload(Dst, Tag, Payload::adopt(std::move(Data)));
  }

  /// Synchronises all ranks: every clock advances to the group maximum
  /// (plus the cost model's barrier cost).
  void barrier();

  /// Broadcasts root's \p Data to all ranks over a binomial tree.
  void bcastBytes(std::vector<std::byte> &Data, int Root);

  /// Zero-copy broadcast: after the call every rank's \p Data shares the
  /// root's buffer. Physical copies are O(size) for the whole tree (the
  /// root's buffer is forwarded by reference), where bcastBytes copies
  /// O(P * size).
  void bcastPayload(Payload &Data, int Root);

  /// Gathers variable-length byte contributions at \p Root over a
  /// binomial tree; the result on the root is the concatenation in rank
  /// order, other ranks get an empty vector.
  std::vector<std::byte> gathervBytes(std::span<const std::byte> Local,
                                      int Root);

  /// Scatters \p All (significant on the root only) over a binomial tree
  /// so that rank i receives \p CountsBytes[i] bytes; returns the local
  /// chunk. Forwarded subtree slices share the parent's buffer (no
  /// copies beyond the root's assembly and each rank's materialisation).
  std::vector<std::byte>
  scattervBytes(std::span<const std::byte> All,
                std::span<const std::size_t> CountsBytes, int Root);

  /// Splits the communicator: ranks with equal \p Color form a new group,
  /// ordered by (\p Key, parent rank). Must be called by every rank.
  Comm split(int Color, int Key);

  /// Poisons the world: every rank (of this communicator and of every
  /// other communicator sharing its world) gets a CommError from its
  /// next — or currently blocking — communication operation. Used by a
  /// rank that knows it cannot keep up its side of the SPMD contract.
  void abort(const std::string &Reason);

  /// True once the world has been poisoned.
  bool poisoned() const;

  /// Snapshot of the world-wide communication counters (messages sent,
  /// bytes logically moved, bytes physically copied).
  CommStatsSnapshot commStats() const;

  /// Adds \p Delta to the named free-form world counter. Counters ride
  /// into the final SpmdResult snapshot; higher layers (e.g. the
  /// equalization subsystem) publish per-run statistics through them.
  /// Thread-safe; typically called by one designated rank to avoid
  /// double counting.
  void accumulateCounter(const std::string &Name, double Delta);

  /// True when this communicator's bcast/gatherv (and the collectives
  /// built on them) run the topology-aware two-level algorithms.
  bool usesTwoLevelCollectives() const;

  // --- Typed convenience wrappers (trivially copyable element types) ---

  template <typename T> void send(int Dst, int Tag, std::span<const T> Data) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytes(Dst, Tag, std::as_bytes(Data));
  }

  template <typename T> void sendValue(int Dst, int Tag, const T &Value) {
    send(Dst, Tag, std::span<const T>(&Value, 1));
  }

  template <typename T> std::vector<T> recv(int Src, int Tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Payload P = recvPayload(Src, Tag);
    countCopied(P.size());
    return P.toVector<T>();
  }

  template <typename T> T recvValue(int Src, int Tag) {
    std::vector<T> V = recv<T>(Src, Tag);
    if (V.empty())
      throw CommError(G->globalRankOf(Src),
                      "recvValue: received an empty payload where a "
                      "value was expected");
    return V.front();
  }

  template <typename T> void bcast(std::vector<T> &Data, int Root) {
    static_assert(std::is_trivially_copyable_v<T>);
    Payload P;
    if (rank() == Root) {
      countCopied(Data.size() * sizeof(T));
      P = Payload::copyOf(std::as_bytes(std::span<const T>(Data)));
    }
    bcastPayload(P, Root);
    if (rank() != Root) {
      countCopied(P.size());
      Data = P.toVector<T>();
    }
  }

  template <typename T> void bcastValue(T &Value, int Root) {
    std::vector<T> V = {Value};
    bcast(V, Root);
    if (V.empty())
      throw CommError(G->globalRankOf(Root),
                      "bcastValue: root broadcast an empty payload "
                      "where a value was expected");
    Value = V.front();
  }

  /// Gathers variable-length contributions at \p Root; the result on the
  /// root is the concatenation in rank order, other ranks get an empty
  /// vector.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> Local, int Root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> Raw = gathervBytes(std::as_bytes(Local), Root);
    std::vector<T> All(Raw.size() / sizeof(T));
    if (!All.empty())
      std::memcpy(All.data(), Raw.data(), All.size() * sizeof(T));
    return All;
  }

  /// Scatters \p All (significant on the root only) so that rank i
  /// receives \p Counts[i] elements; returns the local chunk.
  template <typename T>
  std::vector<T> scatterv(std::span<const T> All, std::span<const int> Counts,
                          int Root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::size_t> Bytes(Counts.size());
    for (std::size_t I = 0; I < Counts.size(); ++I)
      Bytes[I] = static_cast<std::size_t>(Counts[I]) * sizeof(T);
    std::vector<std::byte> Raw =
        scattervBytes(std::as_bytes(All), Bytes, Root);
    std::vector<T> Mine(Raw.size() / sizeof(T));
    if (!Mine.empty())
      std::memcpy(Mine.data(), Raw.data(), Raw.size());
    return Mine;
  }

  /// All ranks obtain the concatenation (in rank order) of every rank's
  /// contribution. Gather-to-root + broadcast; latency-optimal for small
  /// payloads.
  template <typename T> std::vector<T> allgatherv(std::span<const T> Local) {
    std::vector<T> All = gatherv(Local, /*Root=*/0);
    bcast(All, /*Root=*/0);
    return All;
  }

  /// Ring algorithm for allgatherv: P-1 steps, each rank forwarding the
  /// chunk it just received to its right neighbour. Each chunk crosses
  /// every link exactly once, so for large payloads the completion time
  /// approaches one full-payload transfer instead of the broadcast
  /// tree's log(P) transfers. Result identical to allgatherv().
  template <typename T>
  std::vector<T> allgathervRing(std::span<const T> Local) {
    int P = size();
    if (P == 1)
      return std::vector<T>(Local.begin(), Local.end());
    int Right = (rank() + 1) % P;
    int Left = (rank() + P - 1) % P;

    std::vector<std::vector<T>> Chunks(static_cast<std::size_t>(P));
    Chunks[static_cast<std::size_t>(rank())]
        .assign(Local.begin(), Local.end());
    int Forward = rank();
    for (int Step = 0; Step + 1 < P; ++Step) {
      send(Right, TagRing,
           std::span<const T>(Chunks[static_cast<std::size_t>(Forward)]));
      int Incoming = (rank() - 1 - Step + 2 * P) % P;
      Chunks[static_cast<std::size_t>(Incoming)] = recv<T>(Left, TagRing);
      Forward = Incoming;
    }

    std::vector<T> All;
    for (const auto &Chunk : Chunks)
      All.insert(All.end(), Chunk.begin(), Chunk.end());
    return All;
  }

  /// Combined send-to-\p Dst / receive-from-\p Src (buffered sends make
  /// the pairing deadlock-free regardless of ordering).
  template <typename T>
  std::vector<T> sendrecv(int Dst, int SendTag, std::span<const T> Data,
                          int Src, int RecvTag) {
    send(Dst, SendTag, Data);
    return recv<T>(Src, RecvTag);
  }

  /// Elementwise reduction of equal-length vectors across all ranks; every
  /// rank receives the result.
  std::vector<double> allreduce(std::span<const double> Local, ReduceOp Op);

  /// Scalar form of allreduce().
  double allreduceValue(double Value, ReduceOp Op);

private:
  // Reserved internal tags, outside the range user code should use. The
  // two-level collectives use distinct tags per stage so leader traffic
  // can never FIFO-interleave with intra-node traffic on a shared
  // channel.
  enum : int {
    TagGathervSizes = 1 << 28,
    TagGathervData,
    TagScattervSizes,
    TagScattervData,
    TagBcast,
    TagSplit,
    TagRing,
    TagBcastInter,
    TagBcastIntra,
    TagGatherIntraSizes,
    TagGatherIntraData,
    TagGatherInterSizes,
    TagGatherInterData,
  };

  /// Counts a physical deep copy of \p Bytes payload bytes.
  void countCopied(std::size_t Bytes);

  // Two-level collective machinery (Comm.cpp). The *OverList helpers run
  // the flat binomial algorithms over an explicit rank list (a node's
  // members, or the node leaders) instead of the whole group.
  void bcastPayloadOverList(std::span<const int> Ranks, int MyIdx,
                            int RootIdx, Payload &Data, int Tag);
  void gatherOverList(std::span<const int> Ranks, int MyIdx, int RootIdx,
                      std::span<const std::byte> Local,
                      std::vector<std::uint64_t> &Sizes,
                      std::vector<std::byte> &Buf, int TagSizes,
                      int TagData);
  void bcastPayloadTwoLevel(Payload &Data, int Root);
  std::vector<std::byte>
  gathervBytesTwoLevel(std::span<const std::byte> Local, int Root);

  std::shared_ptr<Group> G;
  int Rank;
  VirtualClock *Clock;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_COMM_H
