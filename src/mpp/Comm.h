//===-- mpp/Comm.h - SPMD communicator --------------------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An MPI-like communicator for the in-process SPMD runtime. Ranks run as
/// threads; messages carry virtual arrival times computed from a
/// CostModel, so communication cost is part of the simulation. This is the
/// substrate standing in for MPI in the paper's data-parallel applications.
///
/// Supported operations: blocking send/recv (FIFO matching per source and
/// tag), barrier, broadcast (binomial tree), gatherv/scatterv (linear),
/// allgatherv, allreduce, and communicator splitting (the paper's
/// `comm_sync` used to synchronise co-located benchmark processes).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_COMM_H
#define FUPERMOD_MPP_COMM_H

#include "mpp/CostModel.h"
#include "mpp/Poison.h"
#include "mpp/VirtualClock.h"

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace fupermod {

class Group;

/// Combining operation for allreduce.
enum class ReduceOp { Sum, Max, Min };

/// Per-rank handle to a communication group.
///
/// A Comm is cheap to copy; all state lives in the shared Group and in the
/// rank's VirtualClock. All collective operations must be entered by every
/// rank of the group in the same order (standard SPMD contract).
///
/// Failure model: when any rank of the world dies (uncaught exception in
/// its SPMD body, or an explicit abort()), the world is poisoned and
/// every communication operation — including those of subgroups split
/// from the world — throws CommError instead of blocking on the dead
/// rank. See mpp/Poison.h.
class Comm {
public:
  Comm(std::shared_ptr<Group> G, int Rank, VirtualClock *Clock);

  /// Rank of the calling thread within this communicator.
  int rank() const { return Rank; }

  /// Number of ranks in this communicator.
  int size() const;

  /// Rank within the top-level (world) communicator.
  int globalRank() const;

  /// The calling rank's virtual clock.
  VirtualClock &clock() { return *Clock; }

  /// Current virtual time of the calling rank.
  double time() const { return Clock->now(); }

  /// Advances the calling rank's clock by \p Seconds of computation.
  void compute(double Seconds) { Clock->advance(Seconds); }

  /// Sends \p Data to \p Dst with the given tag. Never blocks (buffered);
  /// charges the link latency to the sender and the full transfer time to
  /// the message's arrival.
  void sendBytes(int Dst, int Tag, std::span<const std::byte> Data);

  /// Receives the oldest pending message from \p Src with tag \p Tag,
  /// blocking until one arrives. The caller's clock advances to the
  /// message arrival time.
  std::vector<std::byte> recvBytes(int Src, int Tag);

  /// Synchronises all ranks: every clock advances to the group maximum
  /// (plus the cost model's barrier cost).
  void barrier();

  /// Broadcasts root's \p Data to all ranks over a binomial tree.
  void bcastBytes(std::vector<std::byte> &Data, int Root);

  /// Splits the communicator: ranks with equal \p Color form a new group,
  /// ordered by (\p Key, parent rank). Must be called by every rank.
  Comm split(int Color, int Key);

  /// Poisons the world: every rank (of this communicator and of every
  /// other communicator sharing its world) gets a CommError from its
  /// next — or currently blocking — communication operation. Used by a
  /// rank that knows it cannot keep up its side of the SPMD contract.
  void abort(const std::string &Reason);

  /// True once the world has been poisoned.
  bool poisoned() const;

  // --- Typed convenience wrappers (trivially copyable element types) ---

  template <typename T> void send(int Dst, int Tag, std::span<const T> Data) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytes(Dst, Tag, std::as_bytes(Data));
  }

  template <typename T> void sendValue(int Dst, int Tag, const T &Value) {
    send(Dst, Tag, std::span<const T>(&Value, 1));
  }

  template <typename T> std::vector<T> recv(int Src, int Tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> Raw = recvBytes(Src, Tag);
    std::vector<T> Out(Raw.size() / sizeof(T));
    std::memcpy(Out.data(), Raw.data(), Out.size() * sizeof(T));
    return Out;
  }

  template <typename T> T recvValue(int Src, int Tag) {
    std::vector<T> V = recv<T>(Src, Tag);
    return V.front();
  }

  template <typename T> void bcast(std::vector<T> &Data, int Root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> Raw(Data.size() * sizeof(T));
    std::memcpy(Raw.data(), Data.data(), Raw.size());
    bcastBytes(Raw, Root);
    Data.resize(Raw.size() / sizeof(T));
    std::memcpy(Data.data(), Raw.data(), Raw.size());
  }

  template <typename T> void bcastValue(T &Value, int Root) {
    std::vector<T> V = {Value};
    bcast(V, Root);
    Value = V.front();
  }

  /// Gathers variable-length contributions at \p Root; the result on the
  /// root is the concatenation in rank order, other ranks get an empty
  /// vector.
  template <typename T>
  std::vector<T> gatherv(std::span<const T> Local, int Root) {
    static const int CountTag = TagGathervCount;
    static const int DataTag = TagGathervData;
    if (rank() != Root) {
      sendValue<std::size_t>(Root, CountTag, Local.size());
      send(Root, DataTag, Local);
      return {};
    }
    std::vector<T> All;
    for (int Src = 0; Src < size(); ++Src) {
      if (Src == rank()) {
        All.insert(All.end(), Local.begin(), Local.end());
        continue;
      }
      std::size_t Count = recvValue<std::size_t>(Src, CountTag);
      std::vector<T> Part = recv<T>(Src, DataTag);
      (void)Count;
      All.insert(All.end(), Part.begin(), Part.end());
    }
    return All;
  }

  /// Scatters \p All (significant on the root only) so that rank i
  /// receives \p Counts[i] elements; returns the local chunk.
  template <typename T>
  std::vector<T> scatterv(std::span<const T> All, std::span<const int> Counts,
                          int Root) {
    static const int DataTag = TagScattervData;
    if (rank() == Root) {
      std::size_t Offset = 0;
      std::vector<T> Mine;
      for (int Dst = 0; Dst < size(); ++Dst) {
        std::size_t Count = static_cast<std::size_t>(Counts[Dst]);
        std::span<const T> Chunk = All.subspan(Offset, Count);
        if (Dst == rank())
          Mine.assign(Chunk.begin(), Chunk.end());
        else
          send(Dst, DataTag, Chunk);
        Offset += Count;
      }
      return Mine;
    }
    return recv<T>(Root, DataTag);
  }

  /// All ranks obtain the concatenation (in rank order) of every rank's
  /// contribution. Gather-to-root + broadcast; latency-optimal for small
  /// payloads.
  template <typename T> std::vector<T> allgatherv(std::span<const T> Local) {
    std::vector<T> All = gatherv(Local, /*Root=*/0);
    bcast(All, /*Root=*/0);
    return All;
  }

  /// Ring algorithm for allgatherv: P-1 steps, each rank forwarding the
  /// chunk it just received to its right neighbour. Each chunk crosses
  /// every link exactly once, so for large payloads the completion time
  /// approaches one full-payload transfer instead of the broadcast
  /// tree's log(P) transfers. Result identical to allgatherv().
  template <typename T>
  std::vector<T> allgathervRing(std::span<const T> Local) {
    int P = size();
    if (P == 1)
      return std::vector<T>(Local.begin(), Local.end());
    int Right = (rank() + 1) % P;
    int Left = (rank() + P - 1) % P;

    std::vector<std::vector<T>> Chunks(static_cast<std::size_t>(P));
    Chunks[static_cast<std::size_t>(rank())]
        .assign(Local.begin(), Local.end());
    int Forward = rank();
    for (int Step = 0; Step + 1 < P; ++Step) {
      send(Right, TagRing,
           std::span<const T>(Chunks[static_cast<std::size_t>(Forward)]));
      int Incoming = (rank() - 1 - Step + 2 * P) % P;
      Chunks[static_cast<std::size_t>(Incoming)] = recv<T>(Left, TagRing);
      Forward = Incoming;
    }

    std::vector<T> All;
    for (const auto &Chunk : Chunks)
      All.insert(All.end(), Chunk.begin(), Chunk.end());
    return All;
  }

  /// Combined send-to-\p Dst / receive-from-\p Src (buffered sends make
  /// the pairing deadlock-free regardless of ordering).
  template <typename T>
  std::vector<T> sendrecv(int Dst, int SendTag, std::span<const T> Data,
                          int Src, int RecvTag) {
    send(Dst, SendTag, Data);
    return recv<T>(Src, RecvTag);
  }

  /// Elementwise reduction of equal-length vectors across all ranks; every
  /// rank receives the result.
  std::vector<double> allreduce(std::span<const double> Local, ReduceOp Op);

  /// Scalar form of allreduce().
  double allreduceValue(double Value, ReduceOp Op);

private:
  // Reserved internal tags, outside the range user code should use.
  enum : int {
    TagGathervCount = 1 << 28,
    TagGathervData,
    TagScattervData,
    TagBcast,
    TagSplit,
    TagRing,
  };

  std::shared_ptr<Group> G;
  int Rank;
  VirtualClock *Clock;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_COMM_H
