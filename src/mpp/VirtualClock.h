//===-- mpp/VirtualClock.h - Per-rank virtual time --------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Virtual time for the message-passing runtime. Each rank owns a clock;
/// computation and communication advance it deterministically, so the
/// simulated heterogeneous platform produces bit-reproducible timings
/// (the substitution for wall-clock measurement on real Grid'5000 nodes).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_VIRTUALCLOCK_H
#define FUPERMOD_MPP_VIRTUALCLOCK_H

#include <algorithm>
#include <cassert>

namespace fupermod {

/// Monotone virtual clock measured in seconds.
class VirtualClock {
public:
  /// Current virtual time.
  double now() const { return Now; }

  /// Advances the clock by \p Seconds (must be non-negative).
  void advance(double Seconds) {
    assert(Seconds >= 0.0 && "cannot advance time backwards");
    Now += Seconds;
  }

  /// Moves the clock forward to \p Time if it is in the future; waiting on
  /// a message or a barrier never moves time backwards.
  void advanceTo(double Time) { Now = std::max(Now, Time); }

private:
  double Now = 0.0;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_VIRTUALCLOCK_H
