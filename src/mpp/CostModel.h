//===-- mpp/CostModel.h - Communication cost models -------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hockney-style communication cost: a message of S bytes from rank i to
/// rank j costs Latency(i,j) + S * BytePeriod(i,j). A two-level model
/// distinguishes intra-node (shared memory) from inter-node (network)
/// links, matching the hierarchy of the paper's target platforms, and
/// exposes the rank -> node mapping as a NodeTopology so the runtime can
/// pick topology-aware (two-level) collective algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_COSTMODEL_H
#define FUPERMOD_MPP_COSTMODEL_H

#include <cstddef>
#include <map>
#include <vector>

namespace fupermod {

/// Cost parameters of one directed link.
struct LinkCost {
  /// Fixed per-message cost in seconds.
  double Latency = 0.0;
  /// Seconds per transferred byte (inverse bandwidth).
  double BytePeriod = 0.0;

  /// Transfer time of \p Bytes over this link.
  double transferTime(std::size_t Bytes) const {
    return Latency + static_cast<double>(Bytes) * BytePeriod;
  }
};

/// The node structure of a platform: which node each global rank lives
/// on. Communicators consult this (via CostModel::topology()) to group
/// ranks into intra-node leader stages before crossing the network.
class NodeTopology {
public:
  /// \p NodeOfRank maps each global rank to a node id (ids need not be
  /// dense; numNodes() counts distinct ids).
  explicit NodeTopology(std::vector<int> NodeOfRank);

  /// Number of global ranks covered by the mapping.
  int numRanks() const { return static_cast<int>(NodeOfRank.size()); }

  /// Number of distinct node ids.
  int numNodes() const { return NumNodes; }

  /// Node id of a global rank; asserts on out-of-range ranks.
  int nodeOf(int GlobalRank) const;

  const std::vector<int> &nodeOfRank() const { return NodeOfRank; }

private:
  std::vector<int> NodeOfRank;
  int NumNodes = 0;
};

/// Interface mapping a (source, destination) global-rank pair to a link.
class CostModel {
public:
  virtual ~CostModel();

  /// Link cost between two global ranks. Self-sends are allowed and should
  /// be cheap but may be non-zero (local copy).
  virtual LinkCost link(int FromGlobalRank, int ToGlobalRank) const = 0;

  /// Extra synchronisation cost charged by a barrier. Defaults to zero.
  virtual double barrierCost(int NumRanks) const;

  /// The platform's node structure, or nullptr for flat models (every
  /// pair of ranks is equidistant, so hierarchical algorithms have
  /// nothing to exploit). The returned pointer must stay valid for the
  /// model's lifetime.
  virtual const NodeTopology *topology() const { return nullptr; }
};

/// Zero-cost model: communication is free (useful for pure-correctness
/// tests of the collectives).
class FreeCostModel : public CostModel {
public:
  LinkCost link(int, int) const override { return LinkCost(); }
};

/// Same latency/bandwidth between every pair of ranks.
class UniformCostModel : public CostModel {
public:
  UniformCostModel(double Latency, double BytesPerSecond);
  LinkCost link(int FromGlobalRank, int ToGlobalRank) const override;

private:
  LinkCost Cost;
};

/// Intra-node vs inter-node link costs, given a rank -> node mapping.
/// Individual nodes may override the default intra-node link (a machine
/// with one NUMA box and one workstation does not have one shared-memory
/// speed), mirroring the `node` lines of `.cluster` files.
class TwoLevelCostModel : public CostModel {
public:
  /// \p NodeOfRank maps each global rank to a node id; ranks on the same
  /// node use \p Intra, others \p Inter.
  TwoLevelCostModel(std::vector<int> NodeOfRank, LinkCost Intra,
                    LinkCost Inter);

  LinkCost link(int FromGlobalRank, int ToGlobalRank) const override;

  const NodeTopology *topology() const override { return &Topo; }

  /// Node id of a global rank.
  int nodeOf(int GlobalRank) const { return Topo.nodeOf(GlobalRank); }

  /// Overrides the intra-node link of one node id.
  void setNodeIntra(int Node, LinkCost Link) { NodeIntra[Node] = Link; }

  /// Intra-node link of \p Node (the default unless overridden).
  LinkCost intraLink(int Node) const;

  /// The inter-node (network) link.
  LinkCost interLink() const { return Inter; }

private:
  NodeTopology Topo;
  LinkCost Intra;
  LinkCost Inter;
  std::map<int, LinkCost> NodeIntra;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_COSTMODEL_H
