//===-- mpp/CostModel.h - Communication cost models -------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hockney-style communication cost: a message of S bytes from rank i to
/// rank j costs Latency(i,j) + S * BytePeriod(i,j). A two-level model
/// distinguishes intra-node (shared memory) from inter-node (network)
/// links, matching the hierarchy of the paper's target platforms.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_COSTMODEL_H
#define FUPERMOD_MPP_COSTMODEL_H

#include <cstddef>
#include <vector>

namespace fupermod {

/// Cost parameters of one directed link.
struct LinkCost {
  /// Fixed per-message cost in seconds.
  double Latency = 0.0;
  /// Seconds per transferred byte (inverse bandwidth).
  double BytePeriod = 0.0;

  /// Transfer time of \p Bytes over this link.
  double transferTime(std::size_t Bytes) const {
    return Latency + static_cast<double>(Bytes) * BytePeriod;
  }
};

/// Interface mapping a (source, destination) global-rank pair to a link.
class CostModel {
public:
  virtual ~CostModel();

  /// Link cost between two global ranks. Self-sends are allowed and should
  /// be cheap but may be non-zero (local copy).
  virtual LinkCost link(int FromGlobalRank, int ToGlobalRank) const = 0;

  /// Extra synchronisation cost charged by a barrier. Defaults to zero.
  virtual double barrierCost(int NumRanks) const;
};

/// Zero-cost model: communication is free (useful for pure-correctness
/// tests of the collectives).
class FreeCostModel : public CostModel {
public:
  LinkCost link(int, int) const override { return LinkCost(); }
};

/// Same latency/bandwidth between every pair of ranks.
class UniformCostModel : public CostModel {
public:
  UniformCostModel(double Latency, double BytesPerSecond);
  LinkCost link(int FromGlobalRank, int ToGlobalRank) const override;

private:
  LinkCost Cost;
};

/// Intra-node vs inter-node link costs, given a rank -> node mapping.
class TwoLevelCostModel : public CostModel {
public:
  /// \p NodeOfRank maps each global rank to a node id; ranks on the same
  /// node use \p Intra, others \p Inter.
  TwoLevelCostModel(std::vector<int> NodeOfRank, LinkCost Intra,
                    LinkCost Inter);

  LinkCost link(int FromGlobalRank, int ToGlobalRank) const override;

  /// Node id of a global rank.
  int nodeOf(int GlobalRank) const;

private:
  std::vector<int> NodeOfRank;
  LinkCost Intra;
  LinkCost Inter;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_COSTMODEL_H
