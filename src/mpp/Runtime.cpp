//===-- mpp/Runtime.cpp - SPMD runtime ------------------------------------===//

#include "mpp/Runtime.h"

#include "mpp/Group.h"

#include <cassert>
#include <numeric>
#include <thread>

using namespace fupermod;

double SpmdResult::makespan() const {
  double Max = 0.0;
  for (double T : FinalTimes)
    Max = std::max(Max, T);
  return Max;
}

bool SpmdResult::allOk() const {
  for (const RankStatus &S : Ranks)
    if (!S.Ok)
      return false;
  return true;
}

int SpmdResult::firstFailedRank() const {
  for (std::size_t R = 0; R < Ranks.size(); ++R)
    if (!Ranks[R].Ok)
      return static_cast<int>(R);
  return -1;
}

SpmdResult fupermod::runSpmd(int NumRanks,
                             const std::function<void(Comm &)> &Body,
                             std::shared_ptr<const CostModel> Cost) {
  assert(NumRanks > 0 && "need at least one rank");
  if (!Cost)
    Cost = std::make_shared<FreeCostModel>();

  std::vector<int> Identity(static_cast<std::size_t>(NumRanks));
  std::iota(Identity.begin(), Identity.end(), 0);
  auto World =
      std::make_shared<Group>(std::move(Cost), Identity, Identity);

  std::vector<VirtualClock> Clocks(static_cast<std::size_t>(NumRanks));
  std::vector<RankStatus> Statuses(static_cast<std::size_t>(NumRanks));
  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<std::size_t>(NumRanks));
  for (int R = 0; R < NumRanks; ++R) {
    Threads.emplace_back([&, R] {
      Comm C(World, R, &Clocks[static_cast<std::size_t>(R)]);
      RankStatus &Status = Statuses[static_cast<std::size_t>(R)];
      try {
        Body(C);
      } catch (const CommError &E) {
        // Secondary failure: this rank observed a peer's death. The
        // world is already poisoned.
        Status.Ok = false;
        Status.Error = E.what();
      } catch (const std::exception &E) {
        // Primary failure: poison the world so peers blocked on this
        // rank get a CommError instead of deadlocking.
        World->poison().poison(R, E.what());
        Status.Ok = false;
        Status.Error = E.what();
      } catch (...) {
        World->poison().poison(R, "unknown exception");
        Status.Ok = false;
        Status.Error = "unknown exception";
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  SpmdResult Result;
  Result.FinalTimes.reserve(Clocks.size());
  for (const auto &C : Clocks)
    Result.FinalTimes.push_back(C.now());
  Result.Ranks = std::move(Statuses);
  Result.Comm = World->statsSnapshot();
  return Result;
}
