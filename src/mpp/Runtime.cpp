//===-- mpp/Runtime.cpp - SPMD runtime ------------------------------------===//

#include "mpp/Runtime.h"

#include "mpp/Group.h"

#include <cassert>
#include <numeric>
#include <thread>

using namespace fupermod;

double SpmdResult::makespan() const {
  double Max = 0.0;
  for (double T : FinalTimes)
    Max = std::max(Max, T);
  return Max;
}

SpmdResult fupermod::runSpmd(int NumRanks,
                             const std::function<void(Comm &)> &Body,
                             std::shared_ptr<const CostModel> Cost) {
  assert(NumRanks > 0 && "need at least one rank");
  if (!Cost)
    Cost = std::make_shared<FreeCostModel>();

  std::vector<int> Identity(static_cast<std::size_t>(NumRanks));
  std::iota(Identity.begin(), Identity.end(), 0);
  auto World =
      std::make_shared<Group>(std::move(Cost), Identity, Identity);

  std::vector<VirtualClock> Clocks(static_cast<std::size_t>(NumRanks));
  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<std::size_t>(NumRanks));
  for (int R = 0; R < NumRanks; ++R) {
    Threads.emplace_back([&, R] {
      Comm C(World, R, &Clocks[static_cast<std::size_t>(R)]);
      Body(C);
    });
  }
  for (auto &T : Threads)
    T.join();

  SpmdResult Result;
  Result.FinalTimes.reserve(Clocks.size());
  for (const auto &C : Clocks)
    Result.FinalTimes.push_back(C.now());
  return Result;
}
