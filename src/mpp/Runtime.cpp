//===-- mpp/Runtime.cpp - SPMD runtime ------------------------------------===//

#include "mpp/Runtime.h"

#include "mpp/Group.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define FUPERMOD_HAVE_PTHREAD_STACKS 1
#include <pthread.h>
#endif

using namespace fupermod;

double SpmdResult::makespan() const {
  double Max = 0.0;
  for (double T : FinalTimes)
    Max = std::max(Max, T);
  return Max;
}

bool SpmdResult::allOk() const {
  for (const RankStatus &S : Ranks)
    if (!S.Ok)
      return false;
  return true;
}

int SpmdResult::firstFailedRank() const {
  for (std::size_t R = 0; R < Ranks.size(); ++R)
    if (!Ranks[R].Ok)
      return static_cast<int>(R);
  return -1;
}

namespace {

/// One rank's worker thread. std::thread offers no stack-size control,
/// so with a configured stack the thread is spawned through pthreads
/// (2048 ranks at the common 8 MiB default would reserve ~16 GiB);
/// otherwise — including on non-POSIX hosts — it falls back to
/// std::thread and the platform default.
class RankThread {
public:
  RankThread(std::function<void()> Fn, std::size_t StackBytes) {
#ifdef FUPERMOD_HAVE_PTHREAD_STACKS
    if (StackBytes != 0) {
      // Respect the platform floor; below it pthread_attr_setstacksize
      // fails outright.
      StackBytes = std::max(StackBytes,
                            static_cast<std::size_t>(PTHREAD_STACK_MIN));
      StackBytes = std::max(StackBytes, std::size_t{64} * 1024);
      pthread_attr_t Attr;
      if (pthread_attr_init(&Attr) != 0)
        throw std::runtime_error("runSpmd: pthread_attr_init failed");
      pthread_attr_setstacksize(&Attr, StackBytes);
      auto Start = std::make_unique<std::function<void()>>(std::move(Fn));
      int Err = pthread_create(&Handle, &Attr, &RankThread::run,
                               Start.get());
      pthread_attr_destroy(&Attr);
      if (Err != 0)
        throw std::runtime_error(
            "runSpmd: pthread_create failed (too many threads?)");
      Start.release(); // run() owns it now.
      UsePthread = true;
      return;
    }
#else
    (void)StackBytes;
#endif
    Fallback = std::thread(std::move(Fn));
  }

  void join() {
#ifdef FUPERMOD_HAVE_PTHREAD_STACKS
    if (UsePthread) {
      pthread_join(Handle, nullptr);
      return;
    }
#endif
    Fallback.join();
  }

private:
#ifdef FUPERMOD_HAVE_PTHREAD_STACKS
  static void *run(void *Arg) {
    std::unique_ptr<std::function<void()>> Fn(
        static_cast<std::function<void()> *>(Arg));
    (*Fn)();
    return nullptr;
  }

  pthread_t Handle{};
  bool UsePthread = false;
#endif
  std::thread Fallback;
};

} // namespace

SpmdResult fupermod::runSpmd(int NumRanks,
                             const std::function<void(Comm &)> &Body,
                             std::shared_ptr<const CostModel> Cost,
                             const SpmdOptions &Options) {
  if (NumRanks <= 0)
    throw std::invalid_argument(
        "runSpmd: NumRanks must be positive, got " +
        std::to_string(NumRanks));
  if (!Cost)
    Cost = std::make_shared<FreeCostModel>();

  // Automatic stack sizing: default stacks below 512 ranks (identical to
  // the historical behaviour), 1 MiB from there up so thousand-rank
  // worlds fit comfortably in memory.
  std::size_t StackBytes = Options.StackBytes;
  if (StackBytes == 0 && NumRanks >= 512)
    StackBytes = std::size_t{1} << 20;

  std::vector<int> Identity(static_cast<std::size_t>(NumRanks));
  std::iota(Identity.begin(), Identity.end(), 0);
  auto World = std::make_shared<Group>(std::move(Cost), Identity, Identity,
                                       nullptr, nullptr,
                                       Options.TwoLevelMinRanks);

  std::vector<VirtualClock> Clocks(static_cast<std::size_t>(NumRanks));
  std::vector<RankStatus> Statuses(static_cast<std::size_t>(NumRanks));
  std::vector<RankThread> Threads;
  Threads.reserve(static_cast<std::size_t>(NumRanks));
  for (int R = 0; R < NumRanks; ++R) {
    auto RankMain = [&, R] {
      Comm C(World, R, &Clocks[static_cast<std::size_t>(R)]);
      RankStatus &Status = Statuses[static_cast<std::size_t>(R)];
      try {
        Body(C);
      } catch (const CommError &E) {
        // Secondary failure: this rank observed a peer's death. The
        // world is already poisoned.
        Status.Ok = false;
        Status.Error = E.what();
      } catch (const std::exception &E) {
        // Primary failure: poison the world so peers blocked on this
        // rank get a CommError instead of deadlocking.
        World->poison().poison(R, E.what());
        Status.Ok = false;
        Status.Error = E.what();
      } catch (...) {
        World->poison().poison(R, "unknown exception");
        Status.Ok = false;
        Status.Error = "unknown exception";
      }
    };
    try {
      Threads.emplace_back(RankMain, StackBytes);
    } catch (...) {
      // Could not spawn rank R: poison the world so the already-running
      // ranks drain out with CommErrors (instead of waiting forever for
      // a rank that never starts), join them, then report the failure.
      World->poison().poison(R, "rank thread creation failed");
      for (RankThread &T : Threads)
        T.join();
      throw;
    }
  }
  for (RankThread &T : Threads)
    T.join();

  SpmdResult Result;
  Result.FinalTimes.reserve(Clocks.size());
  for (const auto &C : Clocks)
    Result.FinalTimes.push_back(C.now());
  Result.Ranks = std::move(Statuses);
  Result.Comm = World->statsSnapshot();
  return Result;
}
