//===-- mpp/Payload.h - Shared immutable message payloads -------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference-counted immutable payloads for the mpp runtime. A collective
/// fan-out (broadcast, pivot distribution) enqueues one Payload N times
/// instead of deep-copying the buffer per receiver, so an N-rank broadcast
/// physically copies O(size) bytes instead of O(N * size).
///
/// Ownership rules:
///  - A Payload is immutable after construction; every holder sees the
///    same bytes forever. Mutating the buffer a Payload was adopted from
///    (after adoption) is undefined behaviour.
///  - adopt()/adoptBytes() take ownership of an existing vector with no
///    copy; copyOf() pays the one deep copy a zero-copy fan-out needs.
///  - subview() shares the owner and narrows the window: forwarding a
///    slice of a received buffer (binomial scatter) costs no copy.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_PAYLOAD_H
#define FUPERMOD_MPP_PAYLOAD_H

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace fupermod {

/// Immutable, reference-counted byte buffer passed between ranks.
class Payload {
public:
  Payload() = default;

  /// Deep-copies \p Data into a fresh shared buffer.
  static Payload copyOf(std::span<const std::byte> Data);

  /// Takes ownership of \p Bytes without copying.
  static Payload adoptBytes(std::vector<std::byte> Bytes);

  /// Takes ownership of a typed vector without copying; the payload views
  /// its storage as bytes.
  template <typename T> static Payload adopt(std::vector<T> Data) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto Owner = std::make_shared<const std::vector<T>>(std::move(Data));
    Payload P;
    P.Bytes = std::as_bytes(std::span<const T>(*Owner));
    P.Owner = std::move(Owner);
    return P;
  }

  /// The viewed bytes (empty for a default-constructed payload).
  std::span<const std::byte> bytes() const { return Bytes; }
  std::size_t size() const { return Bytes.size(); }
  bool empty() const { return Bytes.empty(); }

  /// True when other Payload instances (or in-flight messages) share the
  /// underlying buffer.
  bool sharedBuffer() const { return Owner.use_count() > 1; }

  /// A payload sharing this one's owner but viewing only
  /// [\p Offset, \p Offset + \p Len). No bytes are copied.
  Payload subview(std::size_t Offset, std::size_t Len) const {
    assert(Offset + Len <= Bytes.size() && "subview out of range");
    Payload P;
    P.Owner = Owner;
    P.Bytes = Bytes.subspan(Offset, Len);
    return P;
  }

  /// Views the payload as \p T elements. The size must be a whole number
  /// of elements and the buffer suitably aligned — true by construction
  /// for adopt<T>() payloads and for heap buffers of fundamental types.
  template <typename T> std::span<const T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(Bytes.size() % sizeof(T) == 0 && "payload size not a multiple");
    assert(reinterpret_cast<std::uintptr_t>(Bytes.data()) % alignof(T) ==
               0 &&
           "payload misaligned for element type");
    return std::span<const T>(reinterpret_cast<const T *>(Bytes.data()),
                              Bytes.size() / sizeof(T));
  }

  /// Deep copy into a typed vector (the materialisation copy a mutable
  /// consumer pays).
  template <typename T> std::vector<T> toVector() const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(Bytes.size() % sizeof(T) == 0 && "payload size not a multiple");
    std::vector<T> Out(Bytes.size() / sizeof(T));
    if (!Out.empty())
      std::memcpy(Out.data(), Bytes.data(), Bytes.size());
    return Out;
  }

private:
  std::shared_ptr<const void> Owner;
  std::span<const std::byte> Bytes;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_PAYLOAD_H
