//===-- mpp/Group.h - Shared communicator state -----------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal shared state behind Comm: mailboxes, barrier, split
/// rendezvous, and the world-wide communication counters. Included by
/// Comm.h for the message/request types; user code should only need the
/// Comm API.
///
/// Scale notes: mailboxes are created lazily and live in lock-sharded
/// hash maps, so a P-rank world costs memory proportional to the
/// channels actually used rather than P². Barrier and split rendezvous
/// run over a combining tree of per-rank nodes (arity 4), so P=1024+
/// ranks never serialise on one mutex/condvar. All blocking waits are
/// event-driven — woken by the peer's notify or by the poison broadcast
/// (see Poison.h), never by a timer poll, so a thousand sleeping ranks
/// cost the scheduler nothing.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_GROUP_H
#define FUPERMOD_MPP_GROUP_H

#include "mpp/CostModel.h"
#include "mpp/Payload.h"
#include "mpp/Poison.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace fupermod {

/// A point-to-point message in flight. The payload is shared, not owned:
/// a fan-out that sends one buffer to N receivers enqueues N references
/// to the same bytes.
struct Message {
  int Tag = 0;
  /// Virtual time at which the receiver may consume the message.
  double ArrivalTime = 0.0;
  Payload Data;
};

/// World-wide communication counters, shared by a world group and every
/// subgroup split from it (like PoisonState). Updated with relaxed
/// atomics — totals are exact once the ranks have joined.
struct CommStats {
  /// Point-to-point messages enqueued (every tree edge of a collective).
  std::atomic<unsigned long long> Messages{0};
  /// Payload bytes logically moved over links (sum of message sizes).
  std::atomic<unsigned long long> BytesLogical{0};
  /// Payload bytes physically deep-copied (copy-mode sends, mutable
  /// materialisations on receive). Zero-copy fan-out keeps this O(size)
  /// where the logical volume is O(N * size).
  std::atomic<unsigned long long> BytesCopied{0};
  /// Subset of BytesLogical sent as halo-exchange traffic (messages the
  /// sender classified TrafficClass::Halo).
  std::atomic<unsigned long long> HaloBytes{0};
  /// Subset of BytesLogical sent as redistribution traffic (messages the
  /// sender classified TrafficClass::Redistribute).
  std::atomic<unsigned long long> RedistributeBytes{0};
  /// Point-to-point channels (mailboxes) actually instantiated, across
  /// the world group and all subgroups. The memory-per-rank story at
  /// scale: nearest-neighbour traffic on P ranks creates O(P) channels,
  /// not the O(P²) a dense mailbox matrix would allocate up front.
  std::atomic<unsigned long long> ChannelsCreated{0};

  /// Free-form named counters published by higher layers during the run
  /// (e.g. the equalization subsystem's trigger/veto/savings tallies) —
  /// they ride the world's stats object into SpmdResult so frontends see
  /// them without the runtime knowing the publishers. Rare updates, so a
  /// mutex instead of per-name atomics.
  std::mutex CountersMutex;
  std::map<std::string, double> Counters;
};

/// Plain-value snapshot of CommStats.
struct CommStatsSnapshot {
  unsigned long long Messages = 0;
  unsigned long long BytesLogical = 0;
  unsigned long long BytesCopied = 0;
  unsigned long long HaloBytes = 0;
  unsigned long long RedistributeBytes = 0;
  unsigned long long ChannelsCreated = 0;
  /// Named counters accumulated via Comm::accumulateCounter().
  std::map<std::string, double> Counters;

  /// Value of the named counter, or 0 when it was never published.
  double counter(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0.0 : It->second;
  }
};

/// FIFO channel for one (source, destination) rank pair, indexed by tag:
/// each tag has its own deque, so matching never scans unrelated traffic,
/// and a pending receive is a promise the next matching push fulfils.
class Mailbox {
public:
  /// Enqueues a message, or hands it straight to the oldest pending
  /// receiver of its tag.
  void push(Message Msg);

  /// Posts a receive for \p Tag. The returned future is ready immediately
  /// when a matching message is queued; otherwise the next matching
  /// push() fulfils it — or poisoning fails it with a CommError, so the
  /// receiver never strands on a dead sender. On an already-poisoned
  /// world with no queued message the future holds the error up front.
  /// Pending receives of one tag are served FIFO. Every posted receive
  /// must be consumed (a dropped future forfeits the message that
  /// eventually fulfils it).
  std::future<Message> asyncPop(int Tag, const PoisonState &Poison);

  /// Blocks on \p Future until it is ready; rethrows the CommError when
  /// the wait was failed by poisoning. A message already delivered to
  /// the future is returned even on a poisoned world.
  static Message awaitMessage(std::future<Message> &Future);

  /// asyncPop + awaitMessage: blocks until a message with \p Tag arrives.
  Message popMatching(int Tag, const PoisonState &Poison);

  /// Fails every pending receive with the poison error (the wake path of
  /// PoisonState::poison()). Receives posted afterwards fail in
  /// asyncPop(); receives that already hold a message keep it.
  void poisonWaiters(const PoisonState &Poison);

private:
  std::mutex Mutex;
  /// Queued messages per tag (senders got here first).
  std::map<int, std::deque<Message>> Queues;
  /// Pending receivers per tag (receivers got here first).
  std::map<int, std::deque<std::promise<Message>>> Waiters;
};

/// Shared state of one communicator (world or split subgroup).
class Group {
public:
  /// Default group size from which topology-aware two-level collectives
  /// engage (when the cost model carries a multi-node topology). Below
  /// it the flat binomial trees already finish in a handful of steps and
  /// stay byte- and time-identical to the historical algorithms.
  static constexpr int DefaultTwoLevelMinRanks = 16;

  /// Builds a group of \p GlobalRanks.size() ranks; \p GlobalRanks[i] is
  /// the world rank of group rank i (used for cost-model lookups).
  /// Subgroups share their parent's poison state and comm counters (a
  /// failure anywhere in the world unblocks every subgroup); null
  /// \p Poison / \p Stats create a fresh, healthy world.
  /// \p TwoLevelMinRanks gates hierarchical collectives (<= 0 disables
  /// them); subgroups inherit the parent's value.
  Group(std::shared_ptr<const CostModel> Cost, std::vector<int> GlobalRanks,
        std::vector<int> ParentRanks,
        std::shared_ptr<PoisonState> Poison = nullptr,
        std::shared_ptr<CommStats> Stats = nullptr,
        int TwoLevelMinRanks = DefaultTwoLevelMinRanks);

  /// Unsubscribes the group's poison wake callback.
  ~Group();

  Group(const Group &) = delete;
  Group &operator=(const Group &) = delete;

  /// The failure flag shared across this group and all its subgroups.
  PoisonState &poison() { return *Poison; }
  const PoisonState &poison() const { return *Poison; }

  /// The world-wide communication counters.
  CommStats &stats() { return *Stats; }

  /// Plain-value copy of the counters.
  CommStatsSnapshot statsSnapshot() const;

  /// Adds \p Delta to the named free-form world counter (thread-safe).
  void accumulateCounter(const std::string &Name, double Delta);

  int size() const { return static_cast<int>(GlobalRanks.size()); }
  int globalRankOf(int Rank) const { return GlobalRanks[Rank]; }
  const CostModel &costModel() const { return *Cost; }

  /// Channel from \p Src to \p Dst (group-local ranks). Created on first
  /// use; the shard lock makes concurrent first-touch from many ranks
  /// safe without a global mailbox mutex.
  Mailbox &mailbox(int Src, int Dst);

  /// Number of channels instantiated so far in this group (not counting
  /// subgroups). O(shards) — takes each shard lock briefly.
  std::size_t mailboxCount() const;

  /// Rendezvous for Comm::barrier(): blocks until all ranks arrive and
  /// returns the common release time (max entry time + barrier cost).
  /// \p Rank is the caller's group rank — each rank combines through its
  /// own tree node. Throws CommError when the world is poisoned before
  /// the barrier completes (a dead rank will never arrive).
  double enterBarrier(int Rank, double LocalTime);

  /// One rank's contribution to a communicator split.
  struct SplitEntry {
    int Color = 0;
    int Key = 0;
    int ParentRank = 0;
  };

  /// Rendezvous for Comm::split(): blocks until all ranks of this group
  /// contribute, then returns the subgroup for the caller's color.
  /// Entries combine up the same per-rank tree the barrier uses; the
  /// tree root builds the subgroups and the result propagates back down.
  std::shared_ptr<Group> split(const SplitEntry &Entry);

  /// Group-local rank whose parent-group rank is \p ParentRank; asserts if
  /// absent (callers only query their own subgroup).
  int rankOfParent(int ParentRank) const;

  /// Node structure of this group when the cost model has a topology:
  /// group ranks bucketed by (dense) node index, each node led by its
  /// lowest group rank.
  struct NodeLayout {
    /// Group rank -> dense node index (0 .. numNodes()-1, in order of
    /// first appearance over ascending group ranks).
    std::vector<int> NodeOfRank;
    /// Dense node index -> group ranks on that node, ascending.
    std::vector<std::vector<int>> Members;

    int numNodes() const { return static_cast<int>(Members.size()); }
    int leaderOf(int DenseNode) const {
      return Members[static_cast<std::size_t>(DenseNode)].front();
    }
  };

  /// The group's node layout, or nullptr when the cost model is flat (or
  /// does not cover this group's global ranks).
  const NodeLayout *layout() const { return Layout.get(); }

  /// True when collectives should use the two-level (intra-node stage +
  /// inter-node tree) algorithms: a multi-node layout exists and the
  /// group is at least TwoLevelMinRanks ranks.
  bool twoLevelEligible() const {
    return Layout && Layout->numNodes() > 1 && TwoLevelMinRanks > 0 &&
           size() >= TwoLevelMinRanks;
  }

  int twoLevelMinRanks() const { return TwoLevelMinRanks; }

private:
  /// Lock-sharded slice of the lazy mailbox map.
  struct MailboxShard {
    std::mutex Mutex;
    std::unordered_map<std::uint64_t, std::unique_ptr<Mailbox>> Boxes;
  };

  /// One rank's node in the combining tree used by barrier and split.
  /// Children deposit their combined subtree state here; the owning rank
  /// waits for childCount() arrivals, pushes the combination to its
  /// parent's node, then waits for the wake (WakeGen bump) carrying the
  /// root's result back down.
  struct RankTreeNode {
    std::mutex Mutex;
    std::condition_variable Cv;
    /// Children that have deposited their subtree state this round.
    int Arrived = 0;
    /// Barrier: running max of entry times over self + arrived subtrees.
    double MaxTime = 0.0;
    /// Split: accumulated entries of self + arrived subtrees.
    std::vector<SplitEntry> Entries;
    /// Bumped by the parent when Release / SplitOut are valid; the owner
    /// captures the pre-wake value while still holding its own lock in
    /// the arrival phase, so a wake can never be missed or consumed by
    /// the wrong round.
    std::uint64_t WakeGen = 0;
    /// Barrier result propagated down the tree.
    double Release = 0.0;
    /// Split result propagated down the tree.
    std::shared_ptr<const std::map<int, std::shared_ptr<Group>>> SplitOut;
  };

  /// Fan-in of the combining tree. Four keeps the tree depth at
  /// ceil(log4 P) (six levels at P=2048) while still spreading wakeups.
  static constexpr int TreeArity = 4;

  std::uint64_t mailboxKey(int Src, int Dst) const {
    return static_cast<std::uint64_t>(Src) *
               static_cast<std::uint64_t>(size()) +
           static_cast<std::uint64_t>(Dst);
  }

  int treeParent(int Pos) const { return (Pos - 1) / TreeArity; }
  int treeChildCount(int Pos) const;

  /// Merges the caller's own contribution (\p Merge), waits until all
  /// \p NumChildren children have arrived (woken by the last child's
  /// notify, or by poisoning), then resets the arrival count and runs
  /// \p Extract — all under the node's lock. Returns the pre-wake
  /// WakeGen for the wait-for-release phase.
  template <typename MergeFn, typename ExtractFn>
  std::uint64_t combineAtOwnNode(RankTreeNode &Node, int NumChildren,
                                 MergeFn Merge, ExtractFn Extract);

  void buildNodeLayout();

  /// The poison wake callback: notifies every tree-node condition
  /// variable and fails every pending mailbox receive, so no waiter of
  /// this group outlives a world failure.
  void wakeAllWaiters();

  std::shared_ptr<const CostModel> Cost;
  std::shared_ptr<PoisonState> Poison;
  std::shared_ptr<CommStats> Stats;
  std::vector<int> GlobalRanks;
  /// ParentRanks[i] = rank in the parent group of group rank i (identity
  /// for the world group).
  std::vector<int> ParentRanks;
  /// Inverse of ParentRanks for O(1) rankOfParent.
  std::unordered_map<int, int> RankOfParentRank;

  // Lazily instantiated mailboxes, sharded by a mixed (Src, Dst) key.
  std::vector<MailboxShard> Shards;
  std::uint64_t ShardMask = 0;

  // Combining tree: Nodes[TreePos[Rank]] is rank Rank's tree node.
  // TreeOrder permutes ranks so that co-located ranks (same topology
  // node) occupy adjacent tree positions and combine locally first.
  std::vector<RankTreeNode> Nodes;
  std::vector<int> TreePos;
  std::vector<int> TreeOrder;

  /// Barrier cost hoisted to construction — the group size never changes.
  double BarrierCost = 0.0;

  std::unique_ptr<NodeLayout> Layout;
  int TwoLevelMinRanks = DefaultTwoLevelMinRanks;

  /// Subscription token of wakeAllWaiters() with the shared PoisonState.
  std::uint64_t PoisonToken = 0;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_GROUP_H
