//===-- mpp/Group.h - Shared communicator state -----------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal shared state behind Comm: mailboxes, barrier, split
/// rendezvous. This header is private to the mpp library and its tests.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_GROUP_H
#define FUPERMOD_MPP_GROUP_H

#include "mpp/CostModel.h"
#include "mpp/Poison.h"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace fupermod {

/// A point-to-point message in flight.
struct Message {
  int Tag = 0;
  /// Virtual time at which the receiver may consume the message.
  double ArrivalTime = 0.0;
  std::vector<std::byte> Data;
};

/// FIFO channel for one (source, destination) rank pair.
class Mailbox {
public:
  /// Enqueues a message and wakes a waiting receiver.
  void push(Message Msg);

  /// Blocks until a message with \p Tag is present, then removes and
  /// returns the oldest such message. Throws CommError when \p Poison
  /// trips while waiting (the sender may never show up).
  Message popMatching(int Tag, const PoisonState &Poison);

private:
  std::mutex Mutex;
  std::condition_variable Ready;
  std::deque<Message> Queue;
};

/// Shared state of one communicator (world or split subgroup).
class Group {
public:
  /// Builds a group of \p GlobalRanks.size() ranks; \p GlobalRanks[i] is
  /// the world rank of group rank i (used for cost-model lookups).
  /// Subgroups share their parent's poison state (a failure anywhere in
  /// the world unblocks every subgroup); a null \p Poison creates a
  /// fresh, healthy world.
  Group(std::shared_ptr<const CostModel> Cost, std::vector<int> GlobalRanks,
        std::vector<int> ParentRanks,
        std::shared_ptr<PoisonState> Poison = nullptr);

  /// The failure flag shared across this group and all its subgroups.
  PoisonState &poison() { return *Poison; }
  const PoisonState &poison() const { return *Poison; }

  int size() const { return static_cast<int>(GlobalRanks.size()); }
  int globalRankOf(int Rank) const { return GlobalRanks[Rank]; }
  const CostModel &costModel() const { return *Cost; }

  /// Channel from \p Src to \p Dst (group-local ranks).
  Mailbox &mailbox(int Src, int Dst);

  /// Rendezvous for Comm::barrier(): blocks until all ranks arrive and
  /// returns the common release time (max entry time + barrier cost).
  /// Throws CommError when the world is poisoned before the barrier
  /// completes (a dead rank will never arrive).
  double enterBarrier(double LocalTime);

  /// One rank's contribution to a communicator split.
  struct SplitEntry {
    int Color = 0;
    int Key = 0;
    int ParentRank = 0;
  };

  /// Rendezvous for Comm::split(): blocks until all ranks of this group
  /// contribute, then returns the subgroup for the caller's color.
  std::shared_ptr<Group> split(const SplitEntry &Entry);

  /// Group-local rank whose parent-group rank is \p ParentRank; asserts if
  /// absent (callers only query their own subgroup).
  int rankOfParent(int ParentRank) const;

private:
  std::shared_ptr<const CostModel> Cost;
  std::shared_ptr<PoisonState> Poison;
  std::vector<int> GlobalRanks;
  /// ParentRanks[i] = rank in the parent group of group rank i (identity
  /// for the world group).
  std::vector<int> ParentRanks;
  std::vector<std::unique_ptr<Mailbox>> Mailboxes;

  // Barrier state (generation-counted).
  std::mutex BarrierMutex;
  std::condition_variable BarrierCv;
  int BarrierCount = 0;
  std::uint64_t BarrierGeneration = 0;
  double BarrierMaxTime = 0.0;
  double BarrierRelease = 0.0;

  // Split rendezvous state.
  std::mutex SplitMutex;
  std::condition_variable SplitCv;
  std::vector<SplitEntry> SplitEntries;
  std::map<int, std::shared_ptr<Group>> SplitResult;
  std::uint64_t SplitGeneration = 0;
  int SplitRemaining = 0;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_GROUP_H
