//===-- mpp/Group.h - Shared communicator state -----------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal shared state behind Comm: mailboxes, barrier, split
/// rendezvous, and the world-wide communication counters. Included by
/// Comm.h for the message/request types; user code should only need the
/// Comm API.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_GROUP_H
#define FUPERMOD_MPP_GROUP_H

#include "mpp/CostModel.h"
#include "mpp/Payload.h"
#include "mpp/Poison.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace fupermod {

/// A point-to-point message in flight. The payload is shared, not owned:
/// a fan-out that sends one buffer to N receivers enqueues N references
/// to the same bytes.
struct Message {
  int Tag = 0;
  /// Virtual time at which the receiver may consume the message.
  double ArrivalTime = 0.0;
  Payload Data;
};

/// World-wide communication counters, shared by a world group and every
/// subgroup split from it (like PoisonState). Updated with relaxed
/// atomics — totals are exact once the ranks have joined.
struct CommStats {
  /// Point-to-point messages enqueued (every tree edge of a collective).
  std::atomic<unsigned long long> Messages{0};
  /// Payload bytes logically moved over links (sum of message sizes).
  std::atomic<unsigned long long> BytesLogical{0};
  /// Payload bytes physically deep-copied (copy-mode sends, mutable
  /// materialisations on receive). Zero-copy fan-out keeps this O(size)
  /// where the logical volume is O(N * size).
  std::atomic<unsigned long long> BytesCopied{0};
  /// Subset of BytesLogical sent as halo-exchange traffic (messages the
  /// sender classified TrafficClass::Halo).
  std::atomic<unsigned long long> HaloBytes{0};
  /// Subset of BytesLogical sent as redistribution traffic (messages the
  /// sender classified TrafficClass::Redistribute).
  std::atomic<unsigned long long> RedistributeBytes{0};
};

/// Plain-value snapshot of CommStats.
struct CommStatsSnapshot {
  unsigned long long Messages = 0;
  unsigned long long BytesLogical = 0;
  unsigned long long BytesCopied = 0;
  unsigned long long HaloBytes = 0;
  unsigned long long RedistributeBytes = 0;
};

/// FIFO channel for one (source, destination) rank pair, indexed by tag:
/// each tag has its own deque, so matching never scans unrelated traffic,
/// and a pending receive is a promise the next matching push fulfils.
class Mailbox {
public:
  /// Enqueues a message, or hands it straight to the oldest pending
  /// receiver of its tag.
  void push(Message Msg);

  /// Posts a receive for \p Tag. The returned future is ready immediately
  /// when a matching message is queued; otherwise the next matching
  /// push() fulfils it. Pending receives of one tag are served FIFO.
  /// Every posted receive must be consumed (a dropped future forfeits the
  /// message that eventually fulfils it).
  std::future<Message> asyncPop(int Tag);

  /// Blocks on \p Future until it is ready, re-checking \p Poison at the
  /// poll cadence so a dead sender cannot strand the receiver. A message
  /// already delivered to the future is returned even on a poisoned
  /// world.
  static Message awaitMessage(std::future<Message> &Future,
                              const PoisonState &Poison);

  /// asyncPop + awaitMessage: blocks until a message with \p Tag arrives.
  Message popMatching(int Tag, const PoisonState &Poison);

private:
  std::mutex Mutex;
  /// Queued messages per tag (senders got here first).
  std::map<int, std::deque<Message>> Queues;
  /// Pending receivers per tag (receivers got here first).
  std::map<int, std::deque<std::promise<Message>>> Waiters;
};

/// Shared state of one communicator (world or split subgroup).
class Group {
public:
  /// Builds a group of \p GlobalRanks.size() ranks; \p GlobalRanks[i] is
  /// the world rank of group rank i (used for cost-model lookups).
  /// Subgroups share their parent's poison state and comm counters (a
  /// failure anywhere in the world unblocks every subgroup); null
  /// \p Poison / \p Stats create a fresh, healthy world.
  Group(std::shared_ptr<const CostModel> Cost, std::vector<int> GlobalRanks,
        std::vector<int> ParentRanks,
        std::shared_ptr<PoisonState> Poison = nullptr,
        std::shared_ptr<CommStats> Stats = nullptr);

  /// The failure flag shared across this group and all its subgroups.
  PoisonState &poison() { return *Poison; }
  const PoisonState &poison() const { return *Poison; }

  /// The world-wide communication counters.
  CommStats &stats() { return *Stats; }

  /// Plain-value copy of the counters.
  CommStatsSnapshot statsSnapshot() const;

  int size() const { return static_cast<int>(GlobalRanks.size()); }
  int globalRankOf(int Rank) const { return GlobalRanks[Rank]; }
  const CostModel &costModel() const { return *Cost; }

  /// Channel from \p Src to \p Dst (group-local ranks).
  Mailbox &mailbox(int Src, int Dst);

  /// Rendezvous for Comm::barrier(): blocks until all ranks arrive and
  /// returns the common release time (max entry time + barrier cost).
  /// Throws CommError when the world is poisoned before the barrier
  /// completes (a dead rank will never arrive).
  double enterBarrier(double LocalTime);

  /// One rank's contribution to a communicator split.
  struct SplitEntry {
    int Color = 0;
    int Key = 0;
    int ParentRank = 0;
  };

  /// Rendezvous for Comm::split(): blocks until all ranks of this group
  /// contribute, then returns the subgroup for the caller's color.
  std::shared_ptr<Group> split(const SplitEntry &Entry);

  /// Group-local rank whose parent-group rank is \p ParentRank; asserts if
  /// absent (callers only query their own subgroup).
  int rankOfParent(int ParentRank) const;

private:
  std::shared_ptr<const CostModel> Cost;
  std::shared_ptr<PoisonState> Poison;
  std::shared_ptr<CommStats> Stats;
  std::vector<int> GlobalRanks;
  /// ParentRanks[i] = rank in the parent group of group rank i (identity
  /// for the world group).
  std::vector<int> ParentRanks;
  std::vector<std::unique_ptr<Mailbox>> Mailboxes;

  // Barrier state (generation-counted). The cost-model lookup is hoisted
  // to construction — the group size never changes, so re-deriving it
  // inside the critical section on every barrier was pure contention.
  double BarrierCost = 0.0;
  std::mutex BarrierMutex;
  std::condition_variable BarrierCv;
  int BarrierCount = 0;
  std::uint64_t BarrierGeneration = 0;
  double BarrierMaxTime = 0.0;
  double BarrierRelease = 0.0;

  // Split rendezvous state.
  std::mutex SplitMutex;
  std::condition_variable SplitCv;
  std::vector<SplitEntry> SplitEntries;
  std::map<int, std::shared_ptr<Group>> SplitResult;
  std::uint64_t SplitGeneration = 0;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_GROUP_H
