//===-- mpp/Poison.h - Group failure propagation ----------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error propagation for the SPMD runtime. When a rank dies (uncaught
/// exception, explicit Comm::abort), its world is *poisoned*: every rank
/// blocked in — or later entering — a communication operation receives a
/// CommError instead of deadlocking on a peer that will never show up.
/// Poisoning is one-way; a poisoned world never recovers (mirroring the
/// default MPI error model, where the job is torn down).
///
/// Propagation is event-driven: blocked waiters never poll the flag on a
/// timer. Each communicator subscribes a wake callback; the poisoning
/// rank runs them all, which notifies every rendezvous condition
/// variable and fails every pending mailbox receive. At a thousand ranks
/// this matters — a periodic poll across that many sleeping threads
/// saturates small machines before the actual communication does.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_POISON_H
#define FUPERMOD_MPP_POISON_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

namespace fupermod {

/// Thrown out of communication operations on a poisoned world. Carries
/// the world rank whose failure caused the poisoning so survivors can
/// report (and tests assert) who died.
class CommError : public std::runtime_error {
public:
  CommError(int FailedRank, const std::string &What)
      : std::runtime_error(What), FailedRank(FailedRank) {}

  /// World rank of the rank whose failure poisoned the group.
  int failedRank() const { return FailedRank; }

private:
  int FailedRank;
};

/// One-way failure flag shared by a world group and every subgroup split
/// from it. The atomic makes the fast path (healthy world) a single
/// relaxed load; the diagnostic fields are written once before the flag
/// is published, so readers on the poisoned path need no lock. The mutex
/// guards only the subscriber list (and serialises racing poisoners).
class PoisonState {
public:
  /// Marks the world failed and runs every subscribed wake callback. The
  /// first caller wins; later calls are ignored so the original cause is
  /// preserved.
  void poison(int FailedRank, const std::string &Reason);

  /// True once any rank has failed.
  bool poisoned() const { return Flag.load(std::memory_order_acquire); }

  /// Throws CommError when the world is poisoned; no-op otherwise.
  void check() const;

  /// Builds the CommError for the recorded failure. Pre: poisoned().
  CommError makeError() const;

  /// Throws the CommError for the recorded failure. Pre: poisoned().
  /// Takes no locks, so it is safe to call while holding a rendezvous or
  /// mailbox mutex.
  [[noreturn]] void raise() const;

  /// Registers \p OnPoison to run (once, from the poisoning rank's
  /// thread) when the world becomes poisoned, and returns a token for
  /// unsubscribe(). If the world is already poisoned the callback runs
  /// immediately in the caller's thread. Callbacks must only wake
  /// waiters — they run under the subscription lock and must not call
  /// back into subscribe/unsubscribe/poison.
  std::uint64_t subscribe(std::function<void()> OnPoison);

  /// Removes a subscription. Blocks until a concurrently running
  /// invocation of the callback has finished, so the owner may be
  /// destroyed safely afterwards.
  void unsubscribe(std::uint64_t Token);

private:
  std::atomic<bool> Flag{false};
  /// Written before Flag is published, immutable after: readers that
  /// observed poisoned() may read them without the mutex.
  int FailedRank = -1;
  std::string Reason;

  mutable std::mutex Mutex;
  std::uint64_t NextToken = 1;
  std::map<std::uint64_t, std::function<void()>> Subscribers;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_POISON_H
