//===-- mpp/Poison.h - Group failure propagation ----------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error propagation for the SPMD runtime. When a rank dies (uncaught
/// exception, explicit Comm::abort), its world is *poisoned*: every rank
/// blocked in — or later entering — a communication operation receives a
/// CommError instead of deadlocking on a peer that will never show up.
/// Poisoning is one-way; a poisoned world never recovers (mirroring the
/// default MPI error model, where the job is torn down).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_POISON_H
#define FUPERMOD_MPP_POISON_H

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>

namespace fupermod {

/// Thrown out of communication operations on a poisoned world. Carries
/// the world rank whose failure caused the poisoning so survivors can
/// report (and tests assert) who died.
class CommError : public std::runtime_error {
public:
  CommError(int FailedRank, const std::string &What)
      : std::runtime_error(What), FailedRank(FailedRank) {}

  /// World rank of the rank whose failure poisoned the group.
  int failedRank() const { return FailedRank; }

private:
  int FailedRank;
};

/// One-way failure flag shared by a world group and every subgroup split
/// from it. The atomic makes the fast path (healthy world) a single
/// relaxed load; the mutex only guards the diagnostic fields.
class PoisonState {
public:
  /// Marks the world failed. The first caller wins; later calls are
  /// ignored so the original cause is preserved.
  void poison(int FailedRank, const std::string &Reason);

  /// True once any rank has failed.
  bool poisoned() const { return Flag.load(std::memory_order_acquire); }

  /// Throws CommError when the world is poisoned; no-op otherwise.
  void check() const;

  /// Builds the CommError for the recorded failure. Pre: poisoned().
  [[noreturn]] void raise() const;

private:
  std::atomic<bool> Flag{false};
  mutable std::mutex Mutex;
  int FailedRank = -1;
  std::string Reason;
};

} // namespace fupermod

#endif // FUPERMOD_MPP_POISON_H
