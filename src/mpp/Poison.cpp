//===-- mpp/Poison.cpp - Group failure propagation ------------------------===//

#include "mpp/Poison.h"

using namespace fupermod;

void PoisonState::poison(int InFailedRank, const std::string &InReason) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Flag.load(std::memory_order_relaxed))
    return; // First failure wins.
  // Diagnostics first, then the release store: a reader that sees the
  // flag is guaranteed to see them, so raise() needs no lock.
  FailedRank = InFailedRank;
  Reason = InReason;
  Flag.store(true, std::memory_order_release);
  // Wake everyone. Invoked under the lock so unsubscribe() can guarantee
  // the callback's owner is safe to destroy once it returns.
  for (auto &[Token, OnPoison] : Subscribers)
    OnPoison();
}

void PoisonState::check() const {
  if (poisoned())
    raise();
}

CommError PoisonState::makeError() const {
  return CommError(FailedRank, "rank " + std::to_string(FailedRank) +
                                   " failed: " + Reason);
}

void PoisonState::raise() const { throw makeError(); }

std::uint64_t PoisonState::subscribe(std::function<void()> OnPoison) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Flag.load(std::memory_order_relaxed)) {
    OnPoison(); // Too late to wait for the event: deliver it now.
    return 0;   // Nothing retained; unsubscribe(0) is a no-op.
  }
  std::uint64_t Token = NextToken++;
  Subscribers.emplace(Token, std::move(OnPoison));
  return Token;
}

void PoisonState::unsubscribe(std::uint64_t Token) {
  if (Token == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Subscribers.erase(Token);
}
