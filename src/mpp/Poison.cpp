//===-- mpp/Poison.cpp - Group failure propagation ------------------------===//

#include "mpp/Poison.h"

using namespace fupermod;

void PoisonState::poison(int InFailedRank, const std::string &InReason) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Flag.load(std::memory_order_relaxed))
    return; // First failure wins.
  FailedRank = InFailedRank;
  Reason = InReason;
  Flag.store(true, std::memory_order_release);
}

void PoisonState::check() const {
  if (poisoned())
    raise();
}

void PoisonState::raise() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  throw CommError(FailedRank, "rank " + std::to_string(FailedRank) +
                                  " failed: " + Reason);
}
