//===-- mpp/Payload.cpp - Shared immutable message payloads ---------------===//

#include "mpp/Payload.h"

using namespace fupermod;

Payload Payload::copyOf(std::span<const std::byte> Data) {
  return adoptBytes(std::vector<std::byte>(Data.begin(), Data.end()));
}

Payload Payload::adoptBytes(std::vector<std::byte> Bytes) {
  auto Owner =
      std::make_shared<const std::vector<std::byte>>(std::move(Bytes));
  Payload P;
  P.Bytes = std::span<const std::byte>(*Owner);
  P.Owner = std::move(Owner);
  return P;
}
