//===-- mpp/Runtime.h - SPMD runtime ----------------------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Launches an SPMD body on N ranks (threads) sharing a world
/// communicator — the stand-in for `mpirun`.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_RUNTIME_H
#define FUPERMOD_MPP_RUNTIME_H

#include "mpp/Comm.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fupermod {

/// How one rank of an SPMD run ended.
struct RankStatus {
  /// The rank's body returned normally.
  bool Ok = true;
  /// Diagnostic when !Ok: what() of the escaped exception (a CommError
  /// for ranks that died observing a peer's failure).
  std::string Error;
};

/// Outcome of one SPMD run.
struct SpmdResult {
  /// Final virtual time of each rank (completion times).
  std::vector<double> FinalTimes;
  /// Per-rank success/failure (parallel to FinalTimes).
  std::vector<RankStatus> Ranks;
  /// World-wide communication totals (messages, logical bytes moved,
  /// bytes physically copied) accumulated over the whole run.
  CommStatsSnapshot Comm;

  /// Largest final time — the makespan of the run.
  double makespan() const;

  /// True when every rank's body returned normally.
  bool allOk() const;

  /// Smallest rank that failed, or -1 when all ranks succeeded.
  int firstFailedRank() const;
};

/// Tuning knobs of an SPMD run. The defaults reproduce the historical
/// behaviour at small P and scale transparently to thousands of ranks.
struct SpmdOptions {
  /// Stack size of each rank thread, in bytes. 0 selects automatically:
  /// the platform default below 512 ranks, 1 MiB from 512 ranks up (so a
  /// P=2048 world costs 2 GiB of reservation instead of the ~16 GiB that
  /// 2048 default 8 MiB stacks would claim). Non-zero values are clamped
  /// up to a safe minimum; on platforms without pthreads the default
  /// stack is always used.
  std::size_t StackBytes = 0;

  /// Group size from which topology-aware two-level collectives engage
  /// when the cost model carries a multi-node topology
  /// (CostModel::topology()). <= 0 disables them entirely (always flat).
  int TwoLevelMinRanks = Group::DefaultTwoLevelMinRanks;
};

/// Runs \p Body on \p NumRanks ranks, each on its own thread with its own
/// virtual clock starting at zero. Blocks until every rank returns.
/// Throws std::invalid_argument when \p NumRanks <= 0.
///
/// A body that throws does not take the process down: the escaping
/// exception poisons the world (so peers blocked in communication get a
/// CommError instead of deadlocking) and the rank is reported failed in
/// the result. A body that *catches* the CommError and returns normally
/// counts as Ok — that is the graceful-degradation path.
///
/// \p Cost models communication; when null, communication is free.
SpmdResult runSpmd(int NumRanks, const std::function<void(Comm &)> &Body,
                   std::shared_ptr<const CostModel> Cost = nullptr,
                   const SpmdOptions &Options = {});

} // namespace fupermod

#endif // FUPERMOD_MPP_RUNTIME_H
