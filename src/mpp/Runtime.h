//===-- mpp/Runtime.h - SPMD runtime ----------------------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Launches an SPMD body on N ranks (threads) sharing a world
/// communicator — the stand-in for `mpirun`.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_MPP_RUNTIME_H
#define FUPERMOD_MPP_RUNTIME_H

#include "mpp/Comm.h"

#include <functional>
#include <memory>
#include <vector>

namespace fupermod {

/// Outcome of one SPMD run.
struct SpmdResult {
  /// Final virtual time of each rank (completion times).
  std::vector<double> FinalTimes;

  /// Largest final time — the makespan of the run.
  double makespan() const;
};

/// Runs \p Body on \p NumRanks ranks, each on its own thread with its own
/// virtual clock starting at zero. Blocks until every rank returns.
///
/// \p Cost models communication; when null, communication is free.
SpmdResult runSpmd(int NumRanks, const std::function<void(Comm &)> &Body,
                   std::shared_ptr<const CostModel> Cost = nullptr);

} // namespace fupermod

#endif // FUPERMOD_MPP_RUNTIME_H
