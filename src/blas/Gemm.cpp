//===-- blas/Gemm.cpp - Dense matrix multiply kernels ---------------------===//

#include "blas/Gemm.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace fupermod;

void fupermod::gemmNaive(std::size_t M, std::size_t N, std::size_t K,
                         std::span<const double> A, std::span<const double> B,
                         std::span<double> C) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  for (std::size_t I = 0; I < M; ++I) {
    for (std::size_t L = 0; L < K; ++L) {
      double AIL = A[I * K + L];
      if (AIL == 0.0)
        continue;
      const double *BRow = &B[L * N];
      double *CRow = &C[I * N];
      for (std::size_t J = 0; J < N; ++J)
        CRow[J] += AIL * BRow[J];
    }
  }
}

void fupermod::gemmBlocked(std::size_t M, std::size_t N, std::size_t K,
                           std::span<const double> A,
                           std::span<const double> B, std::span<double> C,
                           std::size_t Tile) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  assert(Tile > 0 && "tile must be positive");
  for (std::size_t I0 = 0; I0 < M; I0 += Tile) {
    std::size_t IMax = std::min(I0 + Tile, M);
    for (std::size_t L0 = 0; L0 < K; L0 += Tile) {
      std::size_t LMax = std::min(L0 + Tile, K);
      for (std::size_t J0 = 0; J0 < N; J0 += Tile) {
        std::size_t JMax = std::min(J0 + Tile, N);
        for (std::size_t I = I0; I < IMax; ++I) {
          for (std::size_t L = L0; L < LMax; ++L) {
            double AIL = A[I * K + L];
            const double *BRow = &B[L * N];
            double *CRow = &C[I * N];
            for (std::size_t J = J0; J < JMax; ++J)
              CRow[J] += AIL * BRow[J];
          }
        }
      }
    }
  }
}

void fupermod::fillDeterministic(std::span<double> Data, std::uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (double &E : Data)
    E = Rng.uniform(-1.0, 1.0);
}

double fupermod::maxAbsDiff(std::span<const double> A,
                            std::span<const double> B) {
  assert(A.size() == B.size() && "mismatched buffers");
  double Max = 0.0;
  for (std::size_t I = 0; I < A.size(); ++I)
    Max = std::max(Max, std::fabs(A[I] - B[I]));
  return Max;
}
