//===-- blas/Gemm.cpp - Dense matrix multiply kernels ---------------------===//

#include "blas/Gemm.h"

#include "support/Random.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <future>
#include <vector>

using namespace fupermod;

void fupermod::gemmNaive(std::size_t M, std::size_t N, std::size_t K,
                         std::span<const double> A, std::span<const double> B,
                         std::span<double> C) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  for (std::size_t I = 0; I < M; ++I) {
    for (std::size_t L = 0; L < K; ++L) {
      double AIL = A[I * K + L];
      if (AIL == 0.0)
        continue;
      const double *BRow = &B[L * N];
      double *CRow = &C[I * N];
      for (std::size_t J = 0; J < N; ++J)
        CRow[J] += AIL * BRow[J];
    }
  }
}

void fupermod::gemmBlocked(std::size_t M, std::size_t N, std::size_t K,
                           std::span<const double> A,
                           std::span<const double> B, std::span<double> C,
                           std::size_t Tile) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  assert(Tile > 0 && "tile must be positive");
  for (std::size_t I0 = 0; I0 < M; I0 += Tile) {
    std::size_t IMax = std::min(I0 + Tile, M);
    for (std::size_t L0 = 0; L0 < K; L0 += Tile) {
      std::size_t LMax = std::min(L0 + Tile, K);
      for (std::size_t J0 = 0; J0 < N; J0 += Tile) {
        std::size_t JMax = std::min(J0 + Tile, N);
        for (std::size_t I = I0; I < IMax; ++I) {
          for (std::size_t L = L0; L < LMax; ++L) {
            double AIL = A[I * K + L];
            const double *BRow = &B[L * N];
            double *CRow = &C[I * N];
            for (std::size_t J = J0; J < JMax; ++J)
              CRow[J] += AIL * BRow[J];
          }
        }
      }
    }
  }
}

void fupermod::gemmParallel(std::size_t M, std::size_t N, std::size_t K,
                            std::span<const double> A,
                            std::span<const double> B, std::span<double> C,
                            ThreadPool &Pool, std::size_t Tile) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  assert(Tile > 0 && "tile must be positive");
  // One band per worker plus one for the calling thread, rounded to whole
  // tiles so every band runs the same tiling gemmBlocked would use for
  // those rows. Bands own disjoint row ranges of C — no synchronisation
  // beyond fork/join is needed and the per-element accumulation order is
  // unchanged.
  std::size_t Lanes = static_cast<std::size_t>(Pool.workerCount()) + 1;
  std::size_t TilesTotal = (M + Tile - 1) / Tile;
  std::size_t TilesPerBand = (TilesTotal + Lanes - 1) / Lanes;
  std::size_t BandRows = TilesPerBand * Tile;
  if (Lanes == 1 || BandRows >= M) {
    gemmBlocked(M, N, K, A, B, C, Tile);
    return;
  }

  std::vector<std::future<void>> Pending;
  for (std::size_t Row0 = BandRows; Row0 < M; Row0 += BandRows) {
    std::size_t Rows = std::min(BandRows, M - Row0);
    Pending.push_back(Pool.submit([=] {
      gemmBlocked(Rows, N, K, A.subspan(Row0 * K, Rows * K), B,
                  C.subspan(Row0 * N, Rows * N), Tile);
    }));
  }
  // The calling thread computes the first band while the pool works.
  gemmBlocked(BandRows, N, K, A.first(BandRows * K), B,
              C.first(BandRows * N), Tile);
  for (auto &F : Pending)
    F.get();
}

double fupermod::gemmThreadSpeedup(unsigned Threads) {
  assert(Threads >= 1 && "need at least one thread");
  // Serial fraction ~6%: band fork/join plus the memory-bound tails of
  // each band that a shared bus serialises. Gives 1.0, ~1.9, ~3.1, ~4.4
  // for 1, 2, 4, 8 threads — the shape vendor multithreaded BLAS curves
  // show on small-to-medium matrices.
  constexpr double SerialFraction = 0.06;
  double T = static_cast<double>(Threads);
  return 1.0 / (SerialFraction + (1.0 - SerialFraction) / T);
}

void fupermod::fillDeterministic(std::span<double> Data, std::uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (double &E : Data)
    E = Rng.uniform(-1.0, 1.0);
}

double fupermod::maxAbsDiff(std::span<const double> A,
                            std::span<const double> B) {
  assert(A.size() == B.size() && "mismatched buffers");
  double Max = 0.0;
  for (std::size_t I = 0; I < A.size(); ++I)
    Max = std::max(Max, std::fabs(A[I] - B[I]));
  return Max;
}
