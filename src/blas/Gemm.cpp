//===-- blas/Gemm.cpp - Dense matrix multiply kernels ---------------------===//

#include "blas/Gemm.h"

#include "support/Random.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cfloat>
#include <cmath>
#include <future>
#include <vector>

// The AVX2/FMA tile is only compiled when the build opted in
// (FUPERMOD_NATIVE) on an x86 compiler that supports per-function target
// attributes; the TU itself stays baseline, and the tile is only ever
// *called* after a CPUID check.
#if defined(FUPERMOD_NATIVE) &&                                               \
    (defined(__x86_64__) || defined(__i386__)) &&                             \
    (defined(__GNUC__) || defined(__clang__))
#define FUPERMOD_HAVE_AVX2_TILE 1
#include <immintrin.h>
#else
#define FUPERMOD_HAVE_AVX2_TILE 0
#endif

using namespace fupermod;

void fupermod::gemmNaive(std::size_t M, std::size_t N, std::size_t K,
                         std::span<const double> A, std::span<const double> B,
                         std::span<double> C) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  for (std::size_t I = 0; I < M; ++I) {
    for (std::size_t L = 0; L < K; ++L) {
      double AIL = A[I * K + L];
      if (AIL == 0.0)
        continue;
      const double *BRow = &B[L * N];
      double *CRow = &C[I * N];
      for (std::size_t J = 0; J < N; ++J)
        CRow[J] += AIL * BRow[J];
    }
  }
}

void fupermod::gemmBlocked(std::size_t M, std::size_t N, std::size_t K,
                           std::span<const double> A,
                           std::span<const double> B, std::span<double> C,
                           std::size_t Tile) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  assert(Tile > 0 && "tile must be positive");
  for (std::size_t I0 = 0; I0 < M; I0 += Tile) {
    std::size_t IMax = std::min(I0 + Tile, M);
    for (std::size_t L0 = 0; L0 < K; L0 += Tile) {
      std::size_t LMax = std::min(L0 + Tile, K);
      for (std::size_t J0 = 0; J0 < N; J0 += Tile) {
        std::size_t JMax = std::min(J0 + Tile, N);
        for (std::size_t I = I0; I < IMax; ++I) {
          for (std::size_t L = L0; L < LMax; ++L) {
            double AIL = A[I * K + L];
            const double *BRow = &B[L * N];
            double *CRow = &C[I * N];
            for (std::size_t J = J0; J < JMax; ++J)
              CRow[J] += AIL * BRow[J];
          }
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// gemmMicro: register-blocked micro-kernel with runtime ISA dispatch
//===----------------------------------------------------------------------===//

namespace {

/// Register-tile shape: MR rows of C held as NR-wide accumulators. With
/// AVX2 that is 4 x 2 ymm accumulators plus 2 B vectors and 1 A
/// broadcast — 11 of 16 vector registers.
constexpr std::size_t MR = 4;
constexpr std::size_t NR = 8;
/// K-strip depth: one packed B panel (KC x NR = 16 KiB) stays L1-resident
/// while every row block of A streams over it.
constexpr std::size_t KC = 256;

/// One register tile: C (MR x NR, row stride Ldc) += A (MR rows at row
/// stride Lda, depth Kb) * Bp (packed Kb x NR panel). Per C element the
/// products are accumulated over l ascending, exactly like gemmBlocked —
/// only the multiply-add fusion/vectorization differs.
using TileFn = void (*)(std::size_t Kb, const double *A, std::size_t Lda,
                        const double *Bp, double *C, std::size_t Ldc);

void tilePortable(std::size_t Kb, const double *A, std::size_t Lda,
                  const double *Bp, double *C, std::size_t Ldc) {
  double Acc[MR][NR];
  for (std::size_t R = 0; R < MR; ++R)
    for (std::size_t J = 0; J < NR; ++J)
      Acc[R][J] = C[R * Ldc + J];
  for (std::size_t L = 0; L < Kb; ++L) {
    const double *BRow = Bp + L * NR;
    for (std::size_t R = 0; R < MR; ++R) {
      double AR = A[R * Lda + L];
#pragma omp simd
      for (std::size_t J = 0; J < NR; ++J)
        Acc[R][J] += AR * BRow[J];
    }
  }
  for (std::size_t R = 0; R < MR; ++R)
    for (std::size_t J = 0; J < NR; ++J)
      C[R * Ldc + J] = Acc[R][J];
}

#if FUPERMOD_HAVE_AVX2_TILE
__attribute__((target("avx2,fma"))) void
tileAvx2(std::size_t Kb, const double *A, std::size_t Lda, const double *Bp,
         double *C, std::size_t Ldc) {
  __m256d Acc[MR][2];
  for (std::size_t R = 0; R < MR; ++R) {
    Acc[R][0] = _mm256_loadu_pd(C + R * Ldc);
    Acc[R][1] = _mm256_loadu_pd(C + R * Ldc + 4);
  }
  for (std::size_t L = 0; L < Kb; ++L) {
    __m256d B0 = _mm256_loadu_pd(Bp + L * NR);
    __m256d B1 = _mm256_loadu_pd(Bp + L * NR + 4);
    for (std::size_t R = 0; R < MR; ++R) {
      __m256d AR = _mm256_broadcast_sd(A + R * Lda + L);
      Acc[R][0] = _mm256_fmadd_pd(AR, B0, Acc[R][0]);
      Acc[R][1] = _mm256_fmadd_pd(AR, B1, Acc[R][1]);
    }
  }
  for (std::size_t R = 0; R < MR; ++R) {
    _mm256_storeu_pd(C + R * Ldc, Acc[R][0]);
    _mm256_storeu_pd(C + R * Ldc + 4, Acc[R][1]);
  }
}
#endif

/// CPUID dispatch, decided once per process.
TileFn resolveTile(GemmIsa &Isa) {
#if FUPERMOD_HAVE_AVX2_TILE
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    Isa = GemmIsa::Avx2;
    return tileAvx2;
  }
#endif
  Isa = GemmIsa::Portable;
  return tilePortable;
}

struct MicroDispatch {
  GemmIsa Isa = GemmIsa::Portable;
  TileFn Tile = nullptr;
  MicroDispatch() { Tile = resolveTile(Isa); }
};

const MicroDispatch &microDispatch() {
  static MicroDispatch D;
  return D;
}

/// Scalar edge accumulation for rows [I0, IMax) x cols [J0, JMax) over
/// the K strip [L0, L0 + Kb): each element is finished in a register, l
/// ascending — the same per-element order as the tiles.
void microEdge(std::size_t I0, std::size_t IMax, std::size_t J0,
               std::size_t JMax, std::size_t L0, std::size_t Kb,
               std::size_t N, std::size_t K, const double *A,
               const double *B, double *C) {
  for (std::size_t I = I0; I < IMax; ++I) {
    const double *ARow = A + I * K + L0;
    for (std::size_t J = J0; J < JMax; ++J) {
      double S = C[I * N + J];
      const double *BCol = B + L0 * N + J;
      for (std::size_t L = 0; L < Kb; ++L)
        S += ARow[L] * BCol[L * N];
      C[I * N + J] = S;
    }
  }
}

} // namespace

GemmIsa fupermod::gemmMicroIsa() { return microDispatch().Isa; }

const char *fupermod::gemmIsaName(GemmIsa Isa) {
  return Isa == GemmIsa::Avx2 ? "avx2" : "portable";
}

void fupermod::gemmMicro(std::size_t M, std::size_t N, std::size_t K,
                         std::span<const double> A, std::span<const double> B,
                         std::span<double> C) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  TileFn Tile = microDispatch().Tile;
  const std::size_t MFull = M - M % MR;
  const std::size_t NPanels = N / NR;
  const std::size_t NFull = NPanels * NR;

  // Panel-packed copy of one K strip of B: panel p holds columns
  // [p*NR, (p+1)*NR) as a contiguous Kb x NR block, so the tile streams
  // it with unit stride. Thread-local so repeated calls (and the
  // per-band calls of gemmParallel) reuse the allocation.
  static thread_local std::vector<double> Packed;
  if (Packed.size() < KC * NFull)
    Packed.resize(KC * NFull);

  for (std::size_t L0 = 0; L0 < K; L0 += KC) {
    const std::size_t Kb = std::min(KC, K - L0);
    for (std::size_t P = 0; P < NPanels; ++P) {
      double *Dst = Packed.data() + P * Kb * NR;
      const double *Src = B.data() + L0 * N + P * NR;
      for (std::size_t L = 0; L < Kb; ++L)
        std::copy_n(Src + L * N, NR, Dst + L * NR);
    }
    for (std::size_t I = 0; I < MFull; I += MR) {
      const double *ARows = A.data() + I * K + L0;
      for (std::size_t P = 0; P < NPanels; ++P)
        Tile(Kb, ARows, K, Packed.data() + P * Kb * NR,
             C.data() + I * N + P * NR, N);
      if (NFull < N)
        microEdge(I, I + MR, NFull, N, L0, Kb, N, K, A.data(), B.data(),
                  C.data());
    }
    if (MFull < M)
      microEdge(MFull, M, 0, N, L0, Kb, N, K, A.data(), B.data(), C.data());
  }
}

void fupermod::gemmAbsErrorBound(std::size_t M, std::size_t N, std::size_t K,
                                 std::span<const double> A,
                                 std::span<const double> B,
                                 std::span<const double> C0,
                                 std::span<double> Bound) {
  assert(Bound.size() >= M * N && "bound buffer too small");
  for (std::size_t I = 0; I < M; ++I)
    for (std::size_t J = 0; J < N; ++J) {
      long double Mag = std::fabs(C0[I * N + J]);
      for (std::size_t L = 0; L < K; ++L)
        Mag += std::fabs(static_cast<long double>(A[I * K + L]) *
                         B[L * N + J]);
      Bound[I * N + J] = 2.0 * static_cast<double>(K + 1) * DBL_EPSILON *
                         static_cast<double>(Mag);
    }
}

void fupermod::gemmParallel(std::size_t M, std::size_t N, std::size_t K,
                            std::span<const double> A,
                            std::span<const double> B, std::span<double> C,
                            ThreadPool &Pool, std::size_t Tile,
                            bool UseMicro) {
  assert(A.size() >= M * K && B.size() >= K * N && C.size() >= M * N &&
         "matrix buffers too small");
  assert(Tile > 0 && "tile must be positive");
  // The band kernel: either the cache-tiled scalar GEMM or the dispatched
  // micro-kernel. Both compute every C element with a fixed per-element
  // accumulation order, so the banded result is bit-identical to one
  // serial call of the same kernel.
  auto Band = [&](std::size_t Rows, std::span<const double> ABand,
                  std::span<double> CBand) {
    if (UseMicro)
      gemmMicro(Rows, N, K, ABand, B, CBand);
    else
      gemmBlocked(Rows, N, K, ABand, B, CBand, Tile);
  };
  // One band per worker plus one for the calling thread, rounded to whole
  // tiles so every band runs the same tiling gemmBlocked would use for
  // those rows. Bands own disjoint row ranges of C — no synchronisation
  // beyond fork/join is needed and the per-element accumulation order is
  // unchanged.
  std::size_t Lanes = static_cast<std::size_t>(Pool.workerCount()) + 1;
  std::size_t TilesTotal = (M + Tile - 1) / Tile;
  std::size_t TilesPerBand = (TilesTotal + Lanes - 1) / Lanes;
  std::size_t BandRows = TilesPerBand * Tile;
  if (Lanes == 1 || BandRows >= M) {
    Band(M, A, C);
    return;
  }

  std::vector<std::future<void>> Pending;
  for (std::size_t Row0 = BandRows; Row0 < M; Row0 += BandRows) {
    std::size_t Rows = std::min(BandRows, M - Row0);
    Pending.push_back(Pool.submit([=] {
      Band(Rows, A.subspan(Row0 * K, Rows * K), C.subspan(Row0 * N, Rows * N));
    }));
  }
  // The calling thread computes the first band while the pool works.
  Band(BandRows, A.first(BandRows * K), C.first(BandRows * N));
  for (auto &F : Pending)
    F.get();
}

double fupermod::gemmThreadSpeedup(unsigned Threads) {
  assert(Threads >= 1 && "need at least one thread");
  // Serial fraction ~6%: band fork/join plus the memory-bound tails of
  // each band that a shared bus serialises. Gives 1.0, ~1.9, ~3.1, ~4.4
  // for 1, 2, 4, 8 threads — the shape vendor multithreaded BLAS curves
  // show on small-to-medium matrices.
  constexpr double SerialFraction = 0.06;
  double T = static_cast<double>(Threads);
  return 1.0 / (SerialFraction + (1.0 - SerialFraction) / T);
}

void fupermod::fillDeterministic(std::span<double> Data, std::uint64_t Seed) {
  SplitMix64 Rng(Seed);
  for (double &E : Data)
    E = Rng.uniform(-1.0, 1.0);
}

double fupermod::maxAbsDiff(std::span<const double> A,
                            std::span<const double> B) {
  assert(A.size() == B.size() && "mismatched buffers");
  double Max = 0.0;
  for (std::size_t I = 0; I < A.size(); ++I)
    Max = std::max(Max, std::fabs(A[I] - B[I]));
  return Max;
}
