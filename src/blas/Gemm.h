//===-- blas/Gemm.h - Dense matrix multiply kernels -------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense double-precision GEMM kernels. The paper's computation kernels are
/// built on BLAS GEMM (Fig. 1(b): Ci += A(b) x B(b)); since no vendor BLAS
/// is assumed, two implementations are provided:
///
///  - gemmNaive: straightforward triple loop, the stand-in for the
///    reference Netlib BLAS whose speed function Fig. 2 plots;
///  - gemmBlocked: cache-tiled variant, the stand-in for an optimised BLAS;
///  - gemmParallel: gemmBlocked over horizontal row bands on a ThreadPool,
///    the stand-in for a multithreaded BLAS.
///
/// All matrices are row-major and contiguous: C (MxN) += A (MxK) * B (KxN).
/// Every kernel accumulates each C element over l = 0..K-1 in ascending
/// order, so for identical inputs all three produce bit-identical results
/// (tiling and row-band decomposition only reorder *independent* elements).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_BLAS_GEMM_H
#define FUPERMOD_BLAS_GEMM_H

#include <cstddef>
#include <cstdint>
#include <span>

namespace fupermod {

class ThreadPool;

/// C += A * B with the textbook i-k-j loop nest.
void gemmNaive(std::size_t M, std::size_t N, std::size_t K,
               std::span<const double> A, std::span<const double> B,
               std::span<double> C);

/// C += A * B with square cache tiles of the given edge length.
void gemmBlocked(std::size_t M, std::size_t N, std::size_t K,
                 std::span<const double> A, std::span<const double> B,
                 std::span<double> C, std::size_t Tile = 64);

/// C += A * B with the M dimension split into row bands executed on
/// \p Pool (plus the calling thread's share). Each band runs gemmBlocked
/// with the same tiling, and bands write disjoint rows of C, so the
/// result is bit-identical to a single gemmBlocked call. Falls back to
/// the serial kernel when the pool has one worker or M is a single band.
void gemmParallel(std::size_t M, std::size_t N, std::size_t K,
                  std::span<const double> A, std::span<const double> B,
                  std::span<double> C, ThreadPool &Pool,
                  std::size_t Tile = 64);

/// Modelled speedup of gemmParallel with \p Threads workers: Amdahl's law
/// with a small serial fraction covering band fork/join and the shared
/// memory bus. Used to charge virtual compute time for multithreaded
/// devices (the container pins the runtime to one physical core, so the
/// thread-scaling curve is modelled rather than measured — see DESIGN.md
/// §8).
double gemmThreadSpeedup(unsigned Threads);

/// Floating point operations performed by one C += A*B call.
inline double gemmFlops(std::size_t M, std::size_t N, std::size_t K) {
  return 2.0 * static_cast<double>(M) * static_cast<double>(N) *
         static_cast<double>(K);
}

/// Fills \p Data with deterministic pseudo-random values in [-1, 1).
void fillDeterministic(std::span<double> Data, std::uint64_t Seed);

/// Largest absolute elementwise difference between \p A and \p B.
double maxAbsDiff(std::span<const double> A, std::span<const double> B);

} // namespace fupermod

#endif // FUPERMOD_BLAS_GEMM_H
