//===-- blas/Gemm.h - Dense matrix multiply kernels -------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense double-precision GEMM kernels. The paper's computation kernels are
/// built on BLAS GEMM (Fig. 1(b): Ci += A(b) x B(b)); since no vendor BLAS
/// is assumed, two implementations are provided:
///
///  - gemmNaive: straightforward triple loop, the stand-in for the
///    reference Netlib BLAS whose speed function Fig. 2 plots;
///  - gemmBlocked: cache-tiled variant, the stand-in for an optimised BLAS.
///
/// All matrices are row-major and contiguous: C (MxN) += A (MxK) * B (KxN).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_BLAS_GEMM_H
#define FUPERMOD_BLAS_GEMM_H

#include <cstddef>
#include <cstdint>
#include <span>

namespace fupermod {

/// C += A * B with the textbook i-k-j loop nest.
void gemmNaive(std::size_t M, std::size_t N, std::size_t K,
               std::span<const double> A, std::span<const double> B,
               std::span<double> C);

/// C += A * B with square cache tiles of the given edge length.
void gemmBlocked(std::size_t M, std::size_t N, std::size_t K,
                 std::span<const double> A, std::span<const double> B,
                 std::span<double> C, std::size_t Tile = 64);

/// Floating point operations performed by one C += A*B call.
inline double gemmFlops(std::size_t M, std::size_t N, std::size_t K) {
  return 2.0 * static_cast<double>(M) * static_cast<double>(N) *
         static_cast<double>(K);
}

/// Fills \p Data with deterministic pseudo-random values in [-1, 1).
void fillDeterministic(std::span<double> Data, std::uint64_t Seed);

/// Largest absolute elementwise difference between \p A and \p B.
double maxAbsDiff(std::span<const double> A, std::span<const double> B);

} // namespace fupermod

#endif // FUPERMOD_BLAS_GEMM_H
