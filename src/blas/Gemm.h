//===-- blas/Gemm.h - Dense matrix multiply kernels -------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense double-precision GEMM kernels. The paper's computation kernels are
/// built on BLAS GEMM (Fig. 1(b): Ci += A(b) x B(b)); since no vendor BLAS
/// is assumed, two implementations are provided:
///
///  - gemmNaive: straightforward triple loop, the stand-in for the
///    reference Netlib BLAS whose speed function Fig. 2 plots;
///  - gemmBlocked: cache-tiled variant, the stand-in for an optimised BLAS;
///  - gemmMicro: register-blocked micro-kernel (packed B panels, 4x8
///    register tiles) dispatched at runtime between an AVX2/FMA
///    implementation (compiled under FUPERMOD_NATIVE) and a portable
///    `#pragma omp simd` tile — the stand-in for a tuned vendor BLAS;
///  - gemmParallel: gemmBlocked (or gemmMicro) over horizontal row bands
///    on a ThreadPool, the stand-in for a multithreaded BLAS.
///
/// All matrices are row-major and contiguous: C (MxN) += A (MxK) * B (KxN).
/// gemmNaive, gemmBlocked and the gemmBlocked-based gemmParallel
/// accumulate each C element over l = 0..K-1 in ascending order with
/// separate multiply and add roundings, so for identical inputs they
/// produce bit-identical results (tiling and row-band decomposition only
/// reorder *independent* elements). gemmMicro keeps the ascending-l
/// per-element order but fuses multiply-add (FMA) and lets the compiler
/// vectorize, so its result differs from gemmBlocked by at most the
/// classic dot-product rounding bound — see gemmAbsErrorBound() and the
/// GemmMicroTest error-bound test. Banding in gemmParallel never changes
/// per-element order, so the micro-banded path is bit-identical to a
/// serial gemmMicro call.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_BLAS_GEMM_H
#define FUPERMOD_BLAS_GEMM_H

#include <cstddef>
#include <cstdint>
#include <span>

namespace fupermod {

class ThreadPool;

/// C += A * B with the textbook i-k-j loop nest.
void gemmNaive(std::size_t M, std::size_t N, std::size_t K,
               std::span<const double> A, std::span<const double> B,
               std::span<double> C);

/// C += A * B with square cache tiles of the given edge length.
void gemmBlocked(std::size_t M, std::size_t N, std::size_t K,
                 std::span<const double> A, std::span<const double> B,
                 std::span<double> C, std::size_t Tile = 64);

/// C += A * B through the register-blocked micro-kernel: B is packed into
/// contiguous K-strip panels of 8 columns, and 4x8 tiles of C are held in
/// registers across the whole K strip (one load/store of C per strip
/// instead of one per multiply). The tile body is chosen once per process
/// by CPUID dispatch: AVX2/FMA intrinsics when the binary was built with
/// FUPERMOD_NATIVE and the CPU supports them, else a portable
/// `#pragma omp simd` tile. Deterministic for fixed inputs on a fixed
/// machine; differs from gemmBlocked only by FMA/vectorization
/// reassociation, bounded by gemmAbsErrorBound().
void gemmMicro(std::size_t M, std::size_t N, std::size_t K,
               std::span<const double> A, std::span<const double> B,
               std::span<double> C);

/// Instruction set the micro-kernel dispatcher resolved to on this
/// machine (decided once, on first use or query).
enum class GemmIsa { Portable, Avx2 };
GemmIsa gemmMicroIsa();

/// Human-readable name of \p Isa ("portable", "avx2").
const char *gemmIsaName(GemmIsa Isa);

/// C += A * B with the M dimension split into row bands executed on
/// \p Pool (plus the calling thread's share). Each band runs gemmBlocked
/// — or gemmMicro when \p UseMicro — with the same tiling, and bands
/// write disjoint rows of C and never change any element's accumulation
/// order, so the result is bit-identical to a single serial call of the
/// selected kernel. Falls back to the serial kernel when the pool has
/// one worker or M is a single band.
void gemmParallel(std::size_t M, std::size_t N, std::size_t K,
                  std::span<const double> A, std::span<const double> B,
                  std::span<double> C, ThreadPool &Pool,
                  std::size_t Tile = 64, bool UseMicro = false);

/// Elementwise a-priori bound on |gemmMicro - gemmBlocked| for C[i][j]:
/// both kernels accumulate the same K products (plus the C input), each
/// with at most one rounding of eps per operation, so the results differ
/// by at most 2 * (K + 1) * eps * (|C0[i][j]| + sum_l |A[i][l]*B[l][j]|).
/// The magnitude sum is accumulated here in long double. O(M*N*K) — a
/// test utility, not a kernel.
void gemmAbsErrorBound(std::size_t M, std::size_t N, std::size_t K,
                       std::span<const double> A, std::span<const double> B,
                       std::span<const double> C0, std::span<double> Bound);

/// Modelled speedup of gemmParallel with \p Threads workers: Amdahl's law
/// with a small serial fraction covering band fork/join and the shared
/// memory bus. Used to charge virtual compute time for multithreaded
/// devices (the container pins the runtime to one physical core, so the
/// thread-scaling curve is modelled rather than measured — see DESIGN.md
/// §8).
double gemmThreadSpeedup(unsigned Threads);

/// Floating point operations performed by one C += A*B call.
inline double gemmFlops(std::size_t M, std::size_t N, std::size_t K) {
  return 2.0 * static_cast<double>(M) * static_cast<double>(N) *
         static_cast<double>(K);
}

/// Fills \p Data with deterministic pseudo-random values in [-1, 1).
void fillDeterministic(std::span<double> Data, std::uint64_t Seed);

/// Largest absolute elementwise difference between \p A and \p B.
double maxAbsDiff(std::span<const double> A, std::span<const double> B);

} // namespace fupermod

#endif // FUPERMOD_BLAS_GEMM_H
