//===-- engine/Server.h - Concurrent partition service ----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent, overload-safe service layer over engine::Session: N
/// worker threads draining a bounded request queue, answering partition
/// requests through Session::partitionRendered() (which is thread-safe
/// and epoch-stamped, so hot reloads are atomic with respect to
/// in-flight solves). The server never falls over under load — it
/// degrades in structured, observable ways:
///
///   admission control   submit() on a full queue (or after shutdown
///                       begins) resolves immediately with a
///                       Rejected{queue_full | shutting_down} response
///                       instead of growing the queue without bound;
///   deadlines           a request may carry a latency budget; it is
///                       enforced when the request is dequeued and again
///                       after the solve, yielding Rejected{deadline}
///                       rather than a late answer nobody wants;
///   coalescing          identical (model epoch, total, algorithm)
///                       requests in flight are solved once — followers
///                       attach to the leader's solve and receive the
///                       same reply;
///   partition cache     an LRU of recent replies keyed by the same
///                       triple; epoch-keyed entries self-invalidate on
///                       hot reload (reload() additionally clears the
///                       cache so dead epochs do not occupy capacity).
///
/// Every submitted request receives exactly one response — Ok, Error, or
/// a structured rejection — and shutdown() drains: requests already
/// admitted to the queue are answered before the workers join.
///
//======---------------------------------------------------------------===//

#ifndef FUPERMOD_ENGINE_SERVER_H
#define FUPERMOD_ENGINE_SERVER_H

#include "engine/Session.h"
#include "support/BoundedQueue.h"
#include "support/LruCache.h"

#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fupermod {
namespace engine {

/// Why a request was shed instead of answered.
enum class RejectReason {
  QueueFull,    ///< Admission control: the bounded queue was at capacity.
  Deadline,     ///< The request's latency budget expired before/while solving.
  ShuttingDown, ///< The server no longer accepts work.
};

/// Stable wire/JSON name of a rejection ("queue_full", "deadline",
/// "shutting_down").
const char *rejectReasonName(RejectReason Reason);

/// One partition request to the server.
struct ServerRequest {
  /// Units to partition (must be positive).
  std::int64_t Total = 0;
  /// Algorithm name; empty = the session default.
  std::string Algorithm;
  /// Per-request latency budget; zero means the server default (and a
  /// zero default means no deadline at all).
  std::chrono::nanoseconds Timeout{0};
};

/// Exactly one of these resolves every submitted request.
struct ServerResponse {
  enum class Kind {
    Ok,       ///< Reply holds the partition.
    Rejected, ///< Shed with a structured reason; no partition attempted
              ///< (or its result discarded on deadline expiry).
    Error,    ///< The solve itself failed; Message holds the diagnostic.
  };
  Kind K = Kind::Error;
  /// Valid when K == Rejected.
  RejectReason Reason = RejectReason::QueueFull;
  /// Diagnostic when K == Error.
  std::string Message;
  /// The partition reply (dist + epoch + rendered text) when K == Ok.
  PartitionReply Reply;
  /// True when this response was produced by another request's solve.
  bool Coalesced = false;
  /// True when this response was served from the partition cache.
  bool CacheHit = false;
  /// submit() -> response latency as measured by the server.
  double LatencySeconds = 0.0;
};

/// Lifetime counters; every submitted request lands in exactly one of
/// Answered / Errors / ShedQueueFull / ShedDeadline / ShedShutdown.
struct ServerStats {
  std::uint64_t Submitted = 0;
  std::uint64_t Answered = 0;
  std::uint64_t Errors = 0;
  std::uint64_t ShedQueueFull = 0;
  std::uint64_t ShedDeadline = 0;
  std::uint64_t ShedShutdown = 0;
  /// Requests answered by attaching to an in-flight identical solve.
  std::uint64_t Coalesced = 0;
  /// Partition-cache lookups/hits (hits are also counted in Answered).
  std::uint64_t CacheLookups = 0;
  std::uint64_t CacheHits = 0;
  /// Models hot-reloaded through reload().
  std::uint64_t Reloads = 0;
};

struct ServerConfig {
  /// Worker threads draining the queue (at least 1).
  int Workers = 4;
  /// Bounded queue capacity; submissions beyond it are shed.
  std::size_t QueueCapacity = 256;
  /// Default latency budget for requests that carry none; zero = no
  /// deadline.
  std::chrono::milliseconds DefaultDeadline{0};
  /// Partition-cache capacity in entries; zero disables the cache.
  std::size_t CacheCapacity = 1024;
  /// Artificial per-solve delay — test/bench instrumentation to make
  /// queue-full shedding, coalescing and deadline expiry deterministic
  /// on fast machines. Zero in production.
  std::chrono::microseconds SolveDelay{0};
};

/// The server. Owns its worker threads; the Session must outlive it.
/// While a server is running, the session's partition/refresh/feedback
/// calls are safe from any thread, but structural mutations that replace
/// the slot vector (loadModels, measure*) must not race active serving.
class Server {
public:
  Server(Session &S, ServerConfig Config);

  /// shutdown() — drains admitted requests, then joins.
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Submits one request. Never blocks: on a full queue or after
  /// shutdown began, the returned future resolves immediately with a
  /// structured rejection. Otherwise it resolves once a worker answers.
  std::future<ServerResponse> submit(ServerRequest Req);

  /// Hot-reloads the session's file-backed models (atomic with respect
  /// to in-flight solves) and, when anything reloaded, clears the
  /// partition cache — the epoch bump makes old entries unreachable
  /// anyway; clearing just frees their capacity. Returns the number of
  /// models reloaded.
  Result<int> reload();

  /// Stops intake (new submissions are rejected with shutting_down),
  /// answers every request already admitted to the queue, then joins the
  /// workers. Idempotent.
  void shutdown();

  /// Snapshot of the lifetime counters.
  ServerStats stats() const;

  const ServerConfig &config() const { return Config; }

  /// The session this server answers from (for warning drains and
  /// model introspection; it is thread-safe).
  Session &session() { return S; }

private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    ServerRequest Req;
    Clock::time_point Submitted;
    Clock::time_point Deadline; // Meaningful only when HasDeadline.
    bool HasDeadline = false;
    std::promise<ServerResponse> Promise;
  };

  /// Coalescing/cache key: two requests with equal keys are guaranteed
  /// the same reply (the epoch pins the model state).
  struct Key {
    std::uint64_t Epoch = 0;
    std::int64_t Total = 0;
    std::string Algorithm;
    bool operator==(const Key &O) const {
      return Epoch == O.Epoch && Total == O.Total && Algorithm == O.Algorithm;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key &K) const {
      std::size_t H = std::hash<std::uint64_t>()(K.Epoch);
      H ^= std::hash<std::int64_t>()(K.Total) + 0x9e3779b97f4a7c15ull +
           (H << 6) + (H >> 2);
      H ^= std::hash<std::string>()(K.Algorithm) + 0x9e3779b97f4a7c15ull +
           (H << 6) + (H >> 2);
      return H;
    }
  };

  void workerLoop();
  void answer(Job &&J);
  /// Resolves \p J with \p R, stamping latency and bumping the counters.
  void resolve(Job &&J, ServerResponse R);
  static ServerResponse rejected(RejectReason Reason);

  Session &S;
  const ServerConfig Config;
  BoundedQueue<Job> Queue;
  std::vector<std::thread> Workers;

  /// Guards InFlight + Cache (one mutex: a cache miss and the in-flight
  /// registration must be atomic or two workers could both become
  /// leaders for the same key).
  mutable std::mutex CoalesceMutex;
  std::unordered_map<Key, std::vector<Job>, KeyHash> InFlight;
  LruCache<Key, PartitionReply, KeyHash> Cache;

  mutable std::mutex StatsMutex;
  ServerStats Stats;

  std::mutex ShutdownMutex;
  bool ShuttingDown = false;
};

} // namespace engine
} // namespace fupermod

#endif // FUPERMOD_ENGINE_SERVER_H
