//===-- engine/Server.cpp - Concurrent partition service ------------------===//

#include "engine/Server.h"

#include <algorithm>
#include <thread>
#include <utility>

using namespace fupermod;
using namespace fupermod::engine;

const char *fupermod::engine::rejectReasonName(RejectReason Reason) {
  switch (Reason) {
  case RejectReason::QueueFull:
    return "queue_full";
  case RejectReason::Deadline:
    return "deadline";
  case RejectReason::ShuttingDown:
    return "shutting_down";
  }
  return "unknown";
}

Server::Server(Session &S, ServerConfig Config)
    : S(S), Config([&] {
        ServerConfig C = Config;
        C.Workers = std::max(1, C.Workers);
        return C;
      }()),
      Queue(this->Config.QueueCapacity), Cache(this->Config.CacheCapacity) {
  Workers.reserve(static_cast<std::size_t>(this->Config.Workers));
  for (int I = 0; I < this->Config.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

Server::~Server() { shutdown(); }

ServerResponse Server::rejected(RejectReason Reason) {
  ServerResponse R;
  R.K = ServerResponse::Kind::Rejected;
  R.Reason = Reason;
  R.Message = rejectReasonName(Reason);
  return R;
}

std::future<ServerResponse> Server::submit(ServerRequest Req) {
  Job J;
  J.Req = std::move(Req);
  J.Submitted = Clock::now();
  std::chrono::nanoseconds Budget =
      J.Req.Timeout.count() > 0
          ? J.Req.Timeout
          : std::chrono::nanoseconds(Config.DefaultDeadline);
  if (Budget.count() > 0) {
    J.HasDeadline = true;
    J.Deadline = J.Submitted + Budget;
  }
  std::future<ServerResponse> Out = J.Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Submitted;
  }
  switch (Queue.tryPush(std::move(J))) {
  case QueuePush::Ok:
    break;
  case QueuePush::Full:
    resolve(std::move(J), rejected(RejectReason::QueueFull));
    break;
  case QueuePush::Closed:
    resolve(std::move(J), rejected(RejectReason::ShuttingDown));
    break;
  }
  return Out;
}

void Server::workerLoop() {
  // pop() returns nullopt only once the queue is closed *and* drained,
  // so every admitted request is answered before the worker exits.
  while (std::optional<Job> J = Queue.pop())
    answer(std::move(*J));
}

void Server::resolve(Job &&J, ServerResponse R) {
  R.LatencySeconds =
      std::chrono::duration<double>(Clock::now() - J.Submitted).count();
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    switch (R.K) {
    case ServerResponse::Kind::Ok:
      ++Stats.Answered;
      if (R.Coalesced)
        ++Stats.Coalesced;
      break;
    case ServerResponse::Kind::Error:
      ++Stats.Errors;
      break;
    case ServerResponse::Kind::Rejected:
      switch (R.Reason) {
      case RejectReason::QueueFull:
        ++Stats.ShedQueueFull;
        break;
      case RejectReason::Deadline:
        ++Stats.ShedDeadline;
        break;
      case RejectReason::ShuttingDown:
        ++Stats.ShedShutdown;
        break;
      }
      break;
    }
  }
  J.Promise.set_value(std::move(R));
}

void Server::answer(Job &&J) {
  // Deadline at dequeue: a request that waited out its budget in the
  // queue is shed before any solve work is spent on it.
  if (J.HasDeadline && Clock::now() > J.Deadline) {
    resolve(std::move(J), rejected(RejectReason::Deadline));
    return;
  }

  // The coalescing/cache key pins the model state via the epoch. A hot
  // reload between this read and the solve below merely means the reply
  // is computed against a *newer* epoch (partitionRendered stamps the
  // one it actually used) — never a stale or torn one.
  Key K;
  K.Epoch = S.modelEpoch();
  K.Total = J.Req.Total;
  K.Algorithm =
      J.Req.Algorithm.empty() ? S.config().Algorithm : J.Req.Algorithm;

  {
    std::lock_guard<std::mutex> Lock(CoalesceMutex);
    if (std::optional<PartitionReply> Hit = Cache.get(K)) {
      ServerResponse R;
      R.K = ServerResponse::Kind::Ok;
      R.Reply = std::move(*Hit);
      R.CacheHit = true;
      resolve(std::move(J), std::move(R));
      return;
    }
    auto It = InFlight.find(K);
    if (It != InFlight.end()) {
      // An identical solve is in flight: attach to it. The leader
      // resolves this job when it finishes.
      It->second.push_back(std::move(J));
      return;
    }
    InFlight.emplace(K, std::vector<Job>());
  }

  // This worker is the leader for K.
  if (Config.SolveDelay.count() > 0)
    std::this_thread::sleep_for(Config.SolveDelay);
  Result<PartitionReply> Solved =
      S.partitionRendered(J.Req.Total, J.Req.Algorithm);

  std::vector<Job> Followers;
  {
    std::lock_guard<std::mutex> Lock(CoalesceMutex);
    auto It = InFlight.find(K);
    if (It != InFlight.end()) {
      Followers = std::move(It->second);
      InFlight.erase(It);
    }
    if (Solved.ok()) {
      // Cache under the epoch the solve actually ran against (it can be
      // newer than K.Epoch when a reload raced the solve).
      Key Actual = K;
      Actual.Epoch = Solved.value().Epoch;
      Cache.put(std::move(Actual), Solved.value());
    }
  }

  // Resolve the leader and every coalesced follower; deadline "during
  // solve" enforcement happens here — a request whose budget expired
  // while the solve ran is shed, not answered late.
  Clock::time_point Now = Clock::now();
  bool Leader = true;
  auto ResolveOne = [&](Job &&Out) {
    if (Out.HasDeadline && Now > Out.Deadline) {
      resolve(std::move(Out), rejected(RejectReason::Deadline));
    } else if (Solved.ok()) {
      ServerResponse R;
      R.K = ServerResponse::Kind::Ok;
      R.Reply = Solved.value();
      R.Coalesced = !Leader;
      resolve(std::move(Out), std::move(R));
    } else {
      ServerResponse R;
      R.K = ServerResponse::Kind::Error;
      R.Message = Solved.error();
      resolve(std::move(Out), std::move(R));
    }
  };
  ResolveOne(std::move(J));
  Leader = false;
  for (Job &F : Followers)
    ResolveOne(std::move(F));
}

Result<int> Server::reload() {
  Result<int> R = S.refreshModels();
  if (R.ok() && R.value() > 0) {
    std::lock_guard<std::mutex> Lock(CoalesceMutex);
    // The epoch bump already makes old entries unreachable; clearing
    // returns their capacity to live keys immediately.
    Cache.clear();
    std::lock_guard<std::mutex> SLock(StatsMutex);
    Stats.Reloads += static_cast<std::uint64_t>(R.value());
  }
  return R;
}

void Server::shutdown() {
  std::lock_guard<std::mutex> Lock(ShutdownMutex);
  if (ShuttingDown && Workers.empty())
    return;
  ShuttingDown = true;
  Queue.close();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();
}

ServerStats Server::stats() const {
  ServerStats Out;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Out = Stats;
  }
  std::lock_guard<std::mutex> Lock(CoalesceMutex);
  Out.CacheLookups = Cache.lookups();
  Out.CacheHits = Cache.hits();
  return Out;
}
