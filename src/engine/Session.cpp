//===-- engine/Session.cpp - The partition-engine session -----------------===//

#include "engine/Session.h"

#include "core/Dynamic.h"
#include "core/ModelIO.h"
#include "core/Partitioners.h"
#include "engine/Balance.h"
#include "mpp/Runtime.h"

#include <cstdio>
#include <fstream>
#include <mutex>
#include <system_error>
#include <utility>

using namespace fupermod;
using namespace fupermod::engine;

namespace {

/// What refreshModels() compares to decide whether a file changed: the
/// cheap stat fields first, the content hash as the backstop for a
/// rewrite within the filesystem's timestamp granularity.
struct FileFingerprint {
  std::filesystem::file_time_type MTime{};
  std::uintmax_t Size = 0;
};

/// Stat of \p Path; epoch-default mtime and zero size when it cannot be
/// stat'ed (the subsequent reload then reports the real error).
FileFingerprint statOf(const std::string &Path) {
  FileFingerprint F;
  std::error_code Ec;
  F.MTime = std::filesystem::last_write_time(Path, Ec);
  if (Ec)
    F.MTime = std::filesystem::file_time_type{};
  F.Size = std::filesystem::file_size(Path, Ec);
  if (Ec)
    F.Size = 0;
  return F;
}

/// FNV-1a over the file's bytes; 0 when the file cannot be read (which
/// never matches a successfully hashed load, so the file reads as
/// changed and the reload path reports the real error).
std::uint64_t hashFileContents(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return 0;
  std::uint64_t H = 1469598103934665603ull;
  char Buf[4096];
  while (IS.read(Buf, sizeof(Buf)) || IS.gcount() > 0) {
    for (std::streamsize I = 0; I < IS.gcount(); ++I) {
      H ^= static_cast<unsigned char>(Buf[I]);
      H *= 1099511628211ull;
    }
    if (!IS)
      break;
  }
  return H;
}

} // namespace

Result<std::unique_ptr<Session>> Session::create(SessionConfig Config) {
  using R = Result<std::unique_ptr<Session>>;
  if (!modelRegistry().contains(Config.ModelKind))
    return R::failure(modelRegistry().unknownNameError(Config.ModelKind));
  if (!Config.Algorithm.empty() &&
      !partitionerRegistry().contains(Config.Algorithm))
    return R::failure(
        partitionerRegistry().unknownNameError(Config.Algorithm));
  if (!kernelRegistry().contains(Config.KernelName))
    return R::failure(kernelRegistry().unknownNameError(Config.KernelName));
  // Explicit config wins; otherwise adopt the platform spec's `equalize`
  // line, so a .cluster file alone can turn the subsystem on.
  if (Config.Equalize.Policy.empty() &&
      !Config.Platform.Equalize.Policy.empty()) {
    Result<equalize::EqualizeConfig> FromSpec =
        equalize::configFromSpec(Config.Platform.Equalize);
    if (!FromSpec)
      return R::failure(FromSpec.error());
    Config.Equalize = FromSpec.value();
  } else if (Status S = equalize::validateConfig(Config.Equalize); !S) {
    return R::failure(S.error());
  }
  return std::unique_ptr<Session>(new Session(std::move(Config)));
}

Status Session::measure(ModelBuildPlan Plan) {
  if (Config.Platform.size() <= 0)
    return Status::failure("measure: the session has no platform devices");
  if (Plan.MinSize <= 0.0 || Plan.MaxSize < Plan.MinSize ||
      Plan.NumPoints < 1 || Plan.Jobs < 1)
    return Status::failure("measure: invalid benchmark plan (need "
                           "0 < min <= max, points >= 1, jobs >= 1)");
  Plan.Kind = Config.ModelKind;
  // The campaign itself runs unlocked (it can take seconds and touches
  // no session state); only installing the results needs exclusivity.
  std::vector<BuiltModel> Built = buildModelsParallel(Config.Platform, Plan);
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  Slots.clear();
  Slots.resize(Built.size());
  for (std::size_t I = 0; I < Built.size(); ++I) {
    Slots[I].M = std::move(Built[I].M);
    Slots[I].Raw = std::move(Built[I].Raw);
  }
  ++Epoch;
  return okStatus();
}

Status Session::measureSynchronized(const SyncMeasurePlan &Plan) {
  const Cluster &Cl = Config.Platform;
  if (Cl.size() <= 0)
    return Status::failure(
        "measureSynchronized: the session has no platform devices");
  if (Plan.Sizes.empty())
    return Status::failure("measureSynchronized: no benchmark sizes");
  // Exclusive for the whole SPMD run: rank 0's body writes the slots,
  // and runSpmd's join orders those writes before the unlock.
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  Slots.clear();
  Slots.resize(static_cast<std::size_t>(Cl.size()));
  for (ModelSlot &S : Slots)
    S.M = makeModel(Config.ModelKind);
  runSpmd(
      Cl.size(),
      [&](Comm &C) {
        SimDevice Dev = Cl.makeDevice(C.rank());
        SimDeviceBackend Backend(Dev, &C);
        for (double Size : Plan.Sizes) {
          Point P = runBenchmark(Backend, Size, Plan.Prec, &C);
          std::vector<Point> All =
              C.allgatherv(std::span<const Point>(&P, 1));
          if (C.rank() == 0)
            for (int Q = 0; Q < C.size(); ++Q) {
              ModelSlot &S = Slots[static_cast<std::size_t>(Q)];
              S.M->update(All[static_cast<std::size_t>(Q)]);
              S.Raw.push_back(All[static_cast<std::size_t>(Q)]);
            }
        }
      },
      Cl.makeCostModel(), Config.Spmd);
  ++Epoch;
  return okStatus();
}

Status Session::measureNative(const NativeMeasurePlan &Plan) {
  if (Plan.MinSize <= 0.0 || Plan.MaxSize < Plan.MinSize ||
      Plan.NumPoints < 1)
    return Status::failure("measureNative: invalid benchmark plan (need "
                           "0 < min <= max, points >= 1)");
  std::string Err;
  std::unique_ptr<Kernel> K = makeKernel(Config.KernelName, Config.Kernel,
                                         &Err);
  if (!K)
    return Status::failure(Err);
  NativeKernelBackend Backend(*K);
  ModelSlot Slot;
  Slot.M = makeModel(Config.ModelKind);
  ModelBuildPlan Grid;
  Grid.MinSize = Plan.MinSize;
  Grid.MaxSize = Plan.MaxSize;
  Grid.NumPoints = Plan.NumPoints;
  for (double Size : buildSizeGrid(Grid)) {
    Point P = runBenchmark(Backend, Size, Plan.Prec);
    Slot.M->update(P);
    Slot.Raw.push_back(P);
    if (Plan.OnPoint)
      Plan.OnPoint(Size, P);
  }
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  Slots.clear();
  Slots.push_back(std::move(Slot));
  ++Epoch;
  return okStatus();
}

Status Session::loadSlot(ModelSlot &Slot, const std::string &Path,
                         bool Degraded) {
  Slot.Source = Path;
  FileFingerprint F = statOf(Path);
  Slot.MTime = F.MTime;
  Slot.FileSize = F.Size;
  Slot.ContentHash = hashFileContents(Path);
  std::string Err;
  std::unique_ptr<Model> M = loadModel(Path, &Err);
  if (!M) {
    if (!Degraded)
      return Status::failure("cannot read model file " + Err);
    Warnings.push_back("skipping unreadable model " + Err);
    Slot.Exclusion = Err;
    return okStatus();
  }
  if (!M->fitted()) {
    if (!Degraded)
      return Status::failure(
          "model " + Path +
          " has no successful measurements (rerun builder, or pass "
          "--allow-degraded to partition over the remaining ranks)");
    Warnings.push_back("excluding " + Path +
                       ": model unfitted, no successful measurements");
    Slot.Exclusion = "model unfitted: no successful measurements";
    Slot.M = std::move(M);
    return okStatus();
  }
  Slot.M = std::move(M);
  Slot.Exclusion.clear();
  return okStatus();
}

Status Session::loadModels(std::span<const std::string> Paths) {
  if (Paths.empty())
    return Status::failure("loadModels: no model files given");
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  std::vector<ModelSlot> Loaded(Paths.size());
  for (std::size_t I = 0; I < Paths.size(); ++I) {
    Status S = loadSlot(Loaded[I], Paths[I], Config.AllowDegraded);
    if (!S)
      return S;
  }
  Slots = std::move(Loaded);
  ++Epoch;
  return okStatus();
}

Result<int> Session::refreshModels() {
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  int Reloaded = 0;
  for (ModelSlot &Slot : Slots) {
    if (Slot.Source.empty())
      continue;
    FileFingerprint Now = statOf(Slot.Source);
    if (Now.MTime == Slot.MTime && Now.Size == Slot.FileSize) {
      // mtime and size unchanged — but a rewrite within the timestamp
      // granularity looks exactly like this, so hash the contents
      // before declaring the file unchanged.
      std::uint64_t Hash = hashFileContents(Slot.Source);
      if (Hash == Slot.ContentHash)
        continue;
      Slot.ContentHash = Hash;
    } else {
      Slot.ContentHash = hashFileContents(Slot.Source);
    }
    // Remember the observed fingerprint even when the reload fails, so a
    // broken file is re-parsed only after it changes again.
    Slot.MTime = Now.MTime;
    Slot.FileSize = Now.Size;
    std::string Err;
    std::unique_ptr<Model> M = loadModel(Slot.Source, &Err);
    if (!M) {
      Warnings.push_back("reload of " + Err +
                         "; keeping the previous model");
      continue;
    }
    if (!M->fitted()) {
      Warnings.push_back("reload of " + Slot.Source +
                         " produced an unfitted model; keeping the "
                         "previous model");
      continue;
    }
    Slot.M = std::move(M);
    Slot.Exclusion.clear();
    ++Reloaded;
  }
  if (Reloaded > 0)
    ++Epoch;
  return Reloaded;
}

Status Session::saveModel(int Rank, const std::string &Path) const {
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  if (Rank < 0 || Rank >= static_cast<int>(Slots.size()))
    return Status::failure("saveModel: rank " + std::to_string(Rank) +
                           " out of range");
  const ModelSlot &Slot = Slots[static_cast<std::size_t>(Rank)];
  if (!Slot.M)
    return Status::failure("saveModel: rank " + std::to_string(Rank) +
                           " has no model");
  if (!fupermod::saveModel(Path, *Slot.M))
    return Status::failure("cannot write " + Path);
  return okStatus();
}

Status Session::initModels(int Count) {
  if (Count <= 0)
    return Status::failure("initModels: need at least one model");
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  Slots.clear();
  Slots.resize(static_cast<std::size_t>(Count));
  for (ModelSlot &S : Slots)
    S.M = makeModel(Config.ModelKind);
  ++Epoch;
  return okStatus();
}

Status Session::feedback(int Rank, const Point &P) {
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  if (Rank < 0 || Rank >= static_cast<int>(Slots.size()))
    return Status::failure("feedback: rank " + std::to_string(Rank) +
                           " out of range");
  ModelSlot &Slot = Slots[static_cast<std::size_t>(Rank)];
  if (!Slot.M)
    return Status::failure("feedback: rank " + std::to_string(Rank) +
                           " has no model");
  Slot.M->update(P);
  ++Epoch;
  return okStatus();
}

Result<Dist> Session::partitionLocked(std::int64_t Total,
                                      const std::string &Algorithm) {
  using R = Result<Dist>;
  const std::string &Name = Algorithm.empty() ? Config.Algorithm : Algorithm;
  std::string Err;
  WarmPartitioner Algo = findWarmPartitioner(Name, &Err);
  if (!Algo)
    return R::failure(Err);
  if (Total <= 0)
    return R::failure("partition: total must be positive, got " +
                      std::to_string(Total));
  if (Slots.empty())
    return R::failure("partition: no models (run a measure phase or "
                      "loadModels first)");

  std::vector<Model *> Active;
  std::vector<std::size_t> ActiveRanks;
  for (std::size_t I = 0; I < Slots.size(); ++I) {
    ModelSlot &Slot = Slots[I];
    if (!Slot.Exclusion.empty())
      continue;
    if (!Slot.M || !Slot.M->fitted()) {
      std::string Who = Slot.Source.empty() ? "rank " + std::to_string(I)
                                            : Slot.Source;
      return R::failure("partition: model of " + Who +
                        " has no successful measurements");
    }
    Active.push_back(Slot.M.get());
    ActiveRanks.push_back(I);
  }
  if (Active.empty())
    return R::failure("partition: every rank's model is unfitted or "
                      "excluded");

  // Work on a copy of the hint so HintMutex is never held across the
  // solve (concurrent partition() calls share StateMutex but race on the
  // hints). A hint recorded against models that changed since — or
  // against a different active set after exclusions shifted — fails its
  // fit-epoch validation inside the warm partitioner and degrades to a
  // seeded or cold solve.
  PartitionHint Hint;
  {
    std::lock_guard<std::mutex> HintLock(HintMutex);
    auto It = Hints.find({Name, Total});
    if (It != Hints.end())
      Hint = It->second;
  }

  Dist Sub;
  if (!Algo(Total, Active, Sub, Hint))
    return R::failure("partitioning failed (unfitted model or insufficient "
                      "device capacity for " + std::to_string(Total) +
                      " units)");

  if (Hint.Valid) {
    std::lock_guard<std::mutex> HintLock(HintMutex);
    if (Hints.size() >= MaxHints && Hints.find({Name, Total}) == Hints.end())
      Hints.clear(); // Rare at MaxHints distinct (algorithm, total) keys;
                     // dropping all is simpler than an eviction order and
                     // only costs the next call its warm start.
    Hints[{Name, Total}] = std::move(Hint);
  }

  // Map the participating ranks' shares back; excluded ranks hold 0.
  Dist Out;
  Out.Total = Total;
  Out.Parts.assign(Slots.size(), Part());
  for (std::size_t I = 0; I < ActiveRanks.size(); ++I)
    Out.Parts[ActiveRanks[I]] = Sub.Parts[I];
  return Out;
}

Result<Dist> Session::partition(std::int64_t Total,
                                const std::string &Algorithm) {
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  return partitionLocked(Total, Algorithm);
}

Result<PartitionReply> Session::partitionRendered(
    std::int64_t Total, const std::string &Algorithm) {
  using R = Result<PartitionReply>;
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  Result<Dist> D = partitionLocked(Total, Algorithm);
  if (!D)
    return R::failure(D.error());

  PartitionReply Reply;
  Reply.D = std::move(D.value());
  Reply.Epoch = Epoch;

  const std::string &Name = Algorithm.empty() ? Config.Algorithm : Algorithm;
  const Dist &Out = Reply.D;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "# %s partitioning of %lld units over %zu processes\n",
                Name.c_str(), static_cast<long long>(Out.Total),
                Out.Parts.size());
  Reply.Text += Buf;
  for (std::size_t I = 0; I < Out.Parts.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "rank %-3zu units %-10lld predicted_time %.6f  (%s)\n", I,
                  static_cast<long long>(Out.Parts[I].Units),
                  Out.Parts[I].PredictedTime, Slots[I].Source.c_str());
    Reply.Text += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "# max predicted time: %.6f\n",
                Out.maxPredictedTime());
  Reply.Text += Buf;
  return Reply;
}

Result<SpmdResult> Session::execute(int Ranks,
                                    const std::function<void(Comm &)> &Body) {
  using R = Result<SpmdResult>;
  if (Ranks <= 0)
    return R::failure("execute: need at least one rank");
  if (Config.Platform.size() <= 0)
    return R::failure("execute: the session has no platform devices");
  if (!Body)
    return R::failure("execute: no SPMD body");
  R Res = runSpmd(Ranks, Body, Config.Platform.makeCostModel(), Config.Spmd);
  if (Res)
    recordCommTraffic(Res.value().Comm);
  return Res;
}

BalancedLoop Session::makeBalancedLoop(std::int64_t Total, int NumProcs,
                                       double StalenessDecay) const {
  // Names were validated at create(); the lookup cannot fail here.
  return BalancedLoop(findPartitioner(Config.Algorithm), Config.ModelKind,
                      Total, NumProcs, StalenessDecay);
}

Result<std::unique_ptr<equalize::Equalizer>> Session::makeEqualizer() const {
  return equalize::makeEqualizer(Config.Equalize);
}

CommStatsSnapshot Session::commTraffic() const {
  std::lock_guard<std::mutex> Lock(TrafficMutex);
  return Traffic;
}

void Session::recordCommTraffic(const CommStatsSnapshot &S) {
  std::lock_guard<std::mutex> Lock(TrafficMutex);
  Traffic.Messages += S.Messages;
  Traffic.BytesLogical += S.BytesLogical;
  Traffic.BytesCopied += S.BytesCopied;
  Traffic.HaloBytes += S.HaloBytes;
  Traffic.RedistributeBytes += S.RedistributeBytes;
  Traffic.ChannelsCreated += S.ChannelsCreated;
  for (const auto &[Name, Value] : S.Counters)
    Traffic.Counters[Name] += Value;
}

int Session::rankCount() const {
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  return static_cast<int>(Slots.size());
}

std::uint64_t Session::modelEpoch() const {
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  return Epoch;
}

Model *Session::model(int Rank) {
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  if (Rank < 0 || Rank >= static_cast<int>(Slots.size()))
    return nullptr;
  return Slots[static_cast<std::size_t>(Rank)].M.get();
}

const ModelSlot &Session::slot(int Rank) const {
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  return Slots.at(static_cast<std::size_t>(Rank));
}

std::vector<Model *> Session::activeModels() const {
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  std::vector<Model *> Out;
  for (const ModelSlot &Slot : Slots)
    if (Slot.Exclusion.empty() && Slot.M && Slot.M->fitted())
      Out.push_back(Slot.M.get());
  return Out;
}

std::vector<std::string> Session::warnings() const {
  std::shared_lock<std::shared_mutex> Lock(StateMutex);
  return Warnings;
}

void Session::clearWarnings() {
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  Warnings.clear();
}

std::vector<std::string> Session::takeWarnings() {
  std::unique_lock<std::shared_mutex> Lock(StateMutex);
  std::vector<std::string> Out;
  Out.swap(Warnings);
  return Out;
}
