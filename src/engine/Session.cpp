//===-- engine/Session.cpp - The partition-engine session -----------------===//

#include "engine/Session.h"

#include "core/Dynamic.h"
#include "core/ModelIO.h"
#include "core/Partitioners.h"
#include "engine/Balance.h"
#include "mpp/Runtime.h"

#include <system_error>
#include <utility>

using namespace fupermod;
using namespace fupermod::engine;

namespace {

/// mtime of \p Path, or the epoch default when it cannot be stat'ed.
std::filesystem::file_time_type mtimeOf(const std::string &Path) {
  std::error_code Ec;
  auto T = std::filesystem::last_write_time(Path, Ec);
  return Ec ? std::filesystem::file_time_type{} : T;
}

} // namespace

Result<std::unique_ptr<Session>> Session::create(SessionConfig Config) {
  using R = Result<std::unique_ptr<Session>>;
  if (!modelRegistry().contains(Config.ModelKind))
    return R::failure(modelRegistry().unknownNameError(Config.ModelKind));
  if (!Config.Algorithm.empty() &&
      !partitionerRegistry().contains(Config.Algorithm))
    return R::failure(
        partitionerRegistry().unknownNameError(Config.Algorithm));
  if (!kernelRegistry().contains(Config.KernelName))
    return R::failure(kernelRegistry().unknownNameError(Config.KernelName));
  return std::unique_ptr<Session>(new Session(std::move(Config)));
}

Status Session::measure(ModelBuildPlan Plan) {
  if (Config.Platform.size() <= 0)
    return Status::failure("measure: the session has no platform devices");
  if (Plan.MinSize <= 0.0 || Plan.MaxSize < Plan.MinSize ||
      Plan.NumPoints < 1 || Plan.Jobs < 1)
    return Status::failure("measure: invalid benchmark plan (need "
                           "0 < min <= max, points >= 1, jobs >= 1)");
  Plan.Kind = Config.ModelKind;
  std::vector<BuiltModel> Built = buildModelsParallel(Config.Platform, Plan);
  Slots.clear();
  Slots.resize(Built.size());
  for (std::size_t I = 0; I < Built.size(); ++I) {
    Slots[I].M = std::move(Built[I].M);
    Slots[I].Raw = std::move(Built[I].Raw);
  }
  return okStatus();
}

Status Session::measureSynchronized(const SyncMeasurePlan &Plan) {
  const Cluster &Cl = Config.Platform;
  if (Cl.size() <= 0)
    return Status::failure(
        "measureSynchronized: the session has no platform devices");
  if (Plan.Sizes.empty())
    return Status::failure("measureSynchronized: no benchmark sizes");
  Slots.clear();
  Slots.resize(static_cast<std::size_t>(Cl.size()));
  for (ModelSlot &S : Slots)
    S.M = makeModel(Config.ModelKind);
  runSpmd(
      Cl.size(),
      [&](Comm &C) {
        SimDevice Dev = Cl.makeDevice(C.rank());
        SimDeviceBackend Backend(Dev, &C);
        for (double Size : Plan.Sizes) {
          Point P = runBenchmark(Backend, Size, Plan.Prec, &C);
          std::vector<Point> All =
              C.allgatherv(std::span<const Point>(&P, 1));
          if (C.rank() == 0)
            for (int Q = 0; Q < C.size(); ++Q) {
              ModelSlot &S = Slots[static_cast<std::size_t>(Q)];
              S.M->update(All[static_cast<std::size_t>(Q)]);
              S.Raw.push_back(All[static_cast<std::size_t>(Q)]);
            }
        }
      },
      Cl.makeCostModel());
  return okStatus();
}

Status Session::measureNative(const NativeMeasurePlan &Plan) {
  if (Plan.MinSize <= 0.0 || Plan.MaxSize < Plan.MinSize ||
      Plan.NumPoints < 1)
    return Status::failure("measureNative: invalid benchmark plan (need "
                           "0 < min <= max, points >= 1)");
  std::string Err;
  std::unique_ptr<Kernel> K = makeKernel(Config.KernelName, Config.Kernel,
                                         &Err);
  if (!K)
    return Status::failure(Err);
  NativeKernelBackend Backend(*K);
  ModelSlot Slot;
  Slot.M = makeModel(Config.ModelKind);
  ModelBuildPlan Grid;
  Grid.MinSize = Plan.MinSize;
  Grid.MaxSize = Plan.MaxSize;
  Grid.NumPoints = Plan.NumPoints;
  for (double Size : buildSizeGrid(Grid)) {
    Point P = runBenchmark(Backend, Size, Plan.Prec);
    Slot.M->update(P);
    Slot.Raw.push_back(P);
    if (Plan.OnPoint)
      Plan.OnPoint(Size, P);
  }
  Slots.clear();
  Slots.push_back(std::move(Slot));
  return okStatus();
}

Status Session::loadSlot(ModelSlot &Slot, const std::string &Path,
                         bool Degraded) {
  Slot.Source = Path;
  Slot.MTime = mtimeOf(Path);
  std::string Err;
  std::unique_ptr<Model> M = loadModel(Path, &Err);
  if (!M) {
    if (!Degraded)
      return Status::failure("cannot read model file " + Err);
    Warnings.push_back("skipping unreadable model " + Err);
    Slot.Exclusion = Err;
    return okStatus();
  }
  if (!M->fitted()) {
    if (!Degraded)
      return Status::failure(
          "model " + Path +
          " has no successful measurements (rerun builder, or pass "
          "--allow-degraded to partition over the remaining ranks)");
    Warnings.push_back("excluding " + Path +
                       ": model unfitted, no successful measurements");
    Slot.Exclusion = "model unfitted: no successful measurements";
    Slot.M = std::move(M);
    return okStatus();
  }
  Slot.M = std::move(M);
  Slot.Exclusion.clear();
  return okStatus();
}

Status Session::loadModels(std::span<const std::string> Paths) {
  if (Paths.empty())
    return Status::failure("loadModels: no model files given");
  std::vector<ModelSlot> Loaded(Paths.size());
  for (std::size_t I = 0; I < Paths.size(); ++I) {
    Status S = loadSlot(Loaded[I], Paths[I], Config.AllowDegraded);
    if (!S)
      return S;
  }
  Slots = std::move(Loaded);
  return okStatus();
}

Result<int> Session::refreshModels() {
  int Reloaded = 0;
  for (ModelSlot &Slot : Slots) {
    if (Slot.Source.empty())
      continue;
    std::filesystem::file_time_type Now = mtimeOf(Slot.Source);
    if (Now == Slot.MTime)
      continue;
    // Remember the observed mtime even when the reload fails, so a
    // broken file is re-parsed only after it changes again.
    Slot.MTime = Now;
    std::string Err;
    std::unique_ptr<Model> M = loadModel(Slot.Source, &Err);
    if (!M) {
      Warnings.push_back("reload of " + Err +
                         "; keeping the previous model");
      continue;
    }
    if (!M->fitted()) {
      Warnings.push_back("reload of " + Slot.Source +
                         " produced an unfitted model; keeping the "
                         "previous model");
      continue;
    }
    Slot.M = std::move(M);
    Slot.Exclusion.clear();
    ++Reloaded;
  }
  return Reloaded;
}

Status Session::saveModel(int Rank, const std::string &Path) const {
  if (Rank < 0 || Rank >= rankCount())
    return Status::failure("saveModel: rank " + std::to_string(Rank) +
                           " out of range");
  const ModelSlot &Slot = Slots[static_cast<std::size_t>(Rank)];
  if (!Slot.M)
    return Status::failure("saveModel: rank " + std::to_string(Rank) +
                           " has no model");
  if (!fupermod::saveModel(Path, *Slot.M))
    return Status::failure("cannot write " + Path);
  return okStatus();
}

Status Session::initModels(int Count) {
  if (Count <= 0)
    return Status::failure("initModels: need at least one model");
  Slots.clear();
  Slots.resize(static_cast<std::size_t>(Count));
  for (ModelSlot &S : Slots)
    S.M = makeModel(Config.ModelKind);
  return okStatus();
}

Status Session::feedback(int Rank, const Point &P) {
  if (Rank < 0 || Rank >= rankCount())
    return Status::failure("feedback: rank " + std::to_string(Rank) +
                           " out of range");
  ModelSlot &Slot = Slots[static_cast<std::size_t>(Rank)];
  if (!Slot.M)
    return Status::failure("feedback: rank " + std::to_string(Rank) +
                           " has no model");
  Slot.M->update(P);
  return okStatus();
}

Result<Dist> Session::partition(std::int64_t Total,
                                const std::string &Algorithm) {
  using R = Result<Dist>;
  const std::string &Name = Algorithm.empty() ? Config.Algorithm : Algorithm;
  std::string Err;
  Partitioner Algo = findPartitioner(Name, &Err);
  if (!Algo)
    return R::failure(Err);
  if (Total <= 0)
    return R::failure("partition: total must be positive, got " +
                      std::to_string(Total));
  if (Slots.empty())
    return R::failure("partition: no models (run a measure phase or "
                      "loadModels first)");

  std::vector<Model *> Active;
  std::vector<std::size_t> ActiveRanks;
  for (std::size_t I = 0; I < Slots.size(); ++I) {
    ModelSlot &Slot = Slots[I];
    if (!Slot.Exclusion.empty())
      continue;
    if (!Slot.M || !Slot.M->fitted()) {
      std::string Who = Slot.Source.empty() ? "rank " + std::to_string(I)
                                            : Slot.Source;
      return R::failure("partition: model of " + Who +
                        " has no successful measurements");
    }
    Active.push_back(Slot.M.get());
    ActiveRanks.push_back(I);
  }
  if (Active.empty())
    return R::failure("partition: every rank's model is unfitted or "
                      "excluded");

  Dist Sub;
  if (!Algo(Total, Active, Sub))
    return R::failure("partitioning failed (unfitted model or insufficient "
                      "device capacity for " + std::to_string(Total) +
                      " units)");

  // Map the participating ranks' shares back; excluded ranks hold 0.
  Dist Out;
  Out.Total = Total;
  Out.Parts.assign(Slots.size(), Part());
  for (std::size_t I = 0; I < ActiveRanks.size(); ++I)
    Out.Parts[ActiveRanks[I]] = Sub.Parts[I];
  return Out;
}

Result<SpmdResult> Session::execute(int Ranks,
                                    const std::function<void(Comm &)> &Body) {
  using R = Result<SpmdResult>;
  if (Ranks <= 0)
    return R::failure("execute: need at least one rank");
  if (Config.Platform.size() <= 0)
    return R::failure("execute: the session has no platform devices");
  if (!Body)
    return R::failure("execute: no SPMD body");
  return runSpmd(Ranks, Body, Config.Platform.makeCostModel());
}

BalancedLoop Session::makeBalancedLoop(std::int64_t Total, int NumProcs,
                                       double StalenessDecay) const {
  // Names were validated at create(); the lookup cannot fail here.
  return BalancedLoop(findPartitioner(Config.Algorithm), Config.ModelKind,
                      Total, NumProcs, StalenessDecay);
}

Model *Session::model(int Rank) {
  if (Rank < 0 || Rank >= rankCount())
    return nullptr;
  return Slots[static_cast<std::size_t>(Rank)].M.get();
}

const ModelSlot &Session::slot(int Rank) const {
  return Slots.at(static_cast<std::size_t>(Rank));
}

std::vector<Model *> Session::activeModels() const {
  std::vector<Model *> Out;
  for (const ModelSlot &Slot : Slots)
    if (Slot.Exclusion.empty() && Slot.M && Slot.M->fitted())
      Out.push_back(Slot.M.get());
  return Out;
}
