//===-- engine/Session.h - The partition-engine session ---------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived partition engine behind the apps, tools and examples.
/// A Session owns one measure -> model -> partition pipeline: the
/// (simulated) platform, one performance-model slot per rank, and the
/// models' inverse-time caches. It exposes the pipeline as explicit
/// phases —
///
///   measure   benchmark devices and fit models (three measurement modes:
///             parallel campaign, synchronised in-SPMD, native kernel);
///   fit       feed application-measured points into the per-rank models
///             (the adaptive routines' feedback loop);
///   partition compute a distribution of a total over the fitted models
///             with a registered algorithm;
///   execute   run an SPMD body on the session's platform.
///
/// Every phase returns a Result/Status instead of bool/assert, and every
/// name (model kind, partitioner, kernel) resolves through the registries,
/// so a bad name is a diagnosable error listing the alternatives.
///
/// Model slots loaded from files remember their source path plus an
/// (mtime, size, content hash) fingerprint; refreshModels() re-reads
/// files that changed on disk — including a rewrite within the same
/// timestamp granularity, which mtime alone cannot see — so a long-lived
/// session (partitioner --serve) picks up refreshed models without a
/// restart.
///
/// Sessions are thread-safe: model state is guarded by a shared mutex
/// (many concurrent partition() readers, exclusive mutators) and stamped
/// with a monotonically increasing *model epoch* that every mutation
/// bumps. A refreshModels() hot reload is therefore atomic with respect
/// to in-flight partition() calls — a solve sees either the old fit or
/// the new one, never a mix — and partitionRendered() reports the epoch
/// its answer was computed against, which is what the engine server keys
/// its coalescing table and partition cache on.
///
/// partition() is warm-started: the session keeps the last successful
/// solution per (algorithm, total) as a PartitionHint and solves through
/// the warm partitioners, so a repeat request with unchanged models
/// replays the memoized answer and a request right after a feedback
/// delta or hot reload seeds its solver from the previous solution (the
/// --serve cache-miss path). The hints validate themselves against the
/// models' fit epochs, so results are always identical to a cold solve.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_ENGINE_SESSION_H
#define FUPERMOD_ENGINE_SESSION_H

#include "core/Benchmark.h"
#include "core/Partition.h"
#include "core/Partitioners.h"
#include "equalize/Policy.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"
#include "support/Result.h"

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace fupermod {

class Comm;
struct SpmdResult;

namespace engine {

/// Construction parameters of a Session. Names are validated against the
/// registries at create() time.
struct SessionConfig {
  /// The simulated platform (empty for sessions that only load model
  /// files or benchmark the native kernel).
  Cluster Platform;
  /// Model kind for every model the session builds.
  std::string ModelKind = "piecewise";
  /// Default partitioning algorithm (partition() can override per call).
  std::string Algorithm = "geometric";
  /// Kernel used by native measurement.
  std::string KernelName = "gemm";
  KernelConfig Kernel;
  /// When loading model files: skip unreadable/corrupt/unfitted models
  /// with a warning (excluding their rank from partitioning) instead of
  /// failing the load.
  bool AllowDegraded = false;
  /// SPMD runtime knobs for every run the session launches (rank stack
  /// sizes, the two-level collective threshold). The platform's node
  /// placement reaches the runtime through makeCostModel(), so
  /// multi-node sessions at scale get hierarchical collectives — and
  /// BalancedLoop's allreduce-based imbalance test rides them — without
  /// further configuration.
  SpmdOptions Spmd;
  /// Equalization policy for the session's balanced loops (empty Policy
  /// = disabled; the apps then take their legacy balance() path). When
  /// left empty and the platform spec carries an `equalize` line,
  /// create() adopts the spec's configuration.
  equalize::EqualizeConfig Equalize;
};

/// One rank's model and its provenance.
struct ModelSlot {
  std::unique_ptr<Model> M;
  /// Raw measured points in benchmark order (measurement phases only).
  std::vector<Point> Raw;
  /// File the model was loaded from; empty for measured models.
  std::string Source;
  /// mtime of Source at load time (hot-reload detection).
  std::filesystem::file_time_type MTime{};
  /// Size of Source at load time. A rewrite within the mtime granularity
  /// usually changes the size; comparing it is cheap (one stat).
  std::uintmax_t FileSize = 0;
  /// FNV-1a hash of Source's bytes at load time — the backstop that
  /// catches a same-size rewrite within the mtime granularity.
  std::uint64_t ContentHash = 0;
  /// Why the rank is excluded from partitioning; empty = participating.
  std::string Exclusion;
};

/// Synchronised in-SPMD measurement plan: every rank of the platform
/// benchmarks its device at each size with barrier-synchronised
/// repetitions, and the points are allgathered so the session's models
/// see every rank's measurements (the examples' model-building loop).
struct SyncMeasurePlan {
  std::vector<double> Sizes;
  Precision Prec;
};

/// Native measurement plan: benchmark the session's kernel on this
/// machine over an even size grid.
struct NativeMeasurePlan {
  double MinSize = 32.0;
  double MaxSize = 1024.0;
  int NumPoints = 10;
  Precision Prec;
  /// Called after each size is measured (progress reporting).
  std::function<void(double Size, const Point &P)> OnPoint;
};

class BalancedLoop;

/// A partition answer stamped with the model epoch it was computed
/// against, plus the rendered one-shot-compatible text block. Dist,
/// epoch and text are produced under one reader lock, so they are
/// guaranteed mutually consistent even while hot reloads race the call.
struct PartitionReply {
  Dist D;
  /// Model epoch the solve ran against (see Session::modelEpoch()).
  std::uint64_t Epoch = 0;
  /// The partition block exactly as the one-shot partitioner prints it.
  std::string Text;
};

/// The long-lived engine object. Create via Session::create(); all
/// phases are ordinary member calls returning Result/Status.
class Session {
public:
  /// Validates \p Config against the registries (model kind, default
  /// algorithm, kernel name). Returns a failure naming the registered
  /// alternatives on any unknown name.
  static Result<std::unique_ptr<Session>> create(SessionConfig Config);

  const SessionConfig &config() const { return Config; }
  const Cluster &platform() const { return Config.Platform; }

  /// --- measure -----------------------------------------------------

  /// Benchmarks every device of the platform per \p Plan (the parallel
  /// model-building campaign; Plan.Kind is overridden by the session's
  /// model kind) and fills one slot per rank.
  Status measure(ModelBuildPlan Plan);

  /// Synchronised in-SPMD measurement: reproduces the examples' loop
  /// (one SimDeviceBackend per rank, barrier-synchronised repetitions,
  /// points allgathered each size) bit for bit.
  Status measureSynchronized(const SyncMeasurePlan &Plan);

  /// Benchmarks the configured kernel natively on this machine; fills a
  /// single slot.
  Status measureNative(const NativeMeasurePlan &Plan);

  /// --- model I/O and hot reload ------------------------------------

  /// Loads one model file per rank. On an unreadable or corrupt file the
  /// load fails with a diagnostic naming the file and parse error —
  /// unless AllowDegraded, which records a warning and excludes the
  /// rank. Unfitted models are likewise an error or an exclusion.
  Status loadModels(std::span<const std::string> Paths);

  /// Re-reads every file-backed slot whose source changed on disk since
  /// it was (re)loaded. Returns the number of models reloaded. A slot
  /// whose file became unreadable/corrupt keeps the old model (a warning
  /// is recorded).
  Result<int> refreshModels();

  /// Writes the model of \p Rank to \p Path.
  Status saveModel(int Rank, const std::string &Path) const;

  /// --- fit ---------------------------------------------------------

  /// Discards all slots and installs \p Count empty models of the
  /// session's kind (the adaptive feedback loop starts unfitted).
  Status initModels(int Count);

  /// Feeds one application-measured point into the model of \p Rank.
  Status feedback(int Rank, const Point &P);

  /// --- partition ---------------------------------------------------

  /// Distributes \p Total units over the participating ranks with
  /// \p Algorithm (empty = the session default). Excluded ranks receive
  /// zero units. Fails on unknown algorithm names (listing registered
  /// ones), unfitted models, or when the algorithm cannot produce a
  /// valid distribution.
  Result<Dist> partition(std::int64_t Total,
                         const std::string &Algorithm = "");

  /// Like partition(), but additionally stamps the answer with the model
  /// epoch it was computed against and renders the one-shot-compatible
  /// text block, all under one reader lock. This is the call the
  /// concurrent server and serve mode answer requests with: two replies
  /// with equal (Epoch, Total, algorithm) are bit-identical.
  Result<PartitionReply> partitionRendered(std::int64_t Total,
                                           const std::string &Algorithm = "");

  /// --- execute -----------------------------------------------------

  /// Runs \p Body on \p Ranks simulated processes of the platform under
  /// its cost model.
  Result<SpmdResult> execute(int Ranks,
                             const std::function<void(Comm &)> &Body);

  /// Builds a dynamic-balancing loop (partial models, even start) from
  /// the session's validated algorithm and model kind. Safe to call
  /// concurrently from execute() bodies.
  BalancedLoop makeBalancedLoop(std::int64_t Total, int NumProcs,
                                double StalenessDecay = 1.0) const;

  /// Instantiates the session's equalization policy (replicate per rank:
  /// call once per SPMD rank, or construct rank replicas from the same
  /// config). Fails when no policy is configured or a knob is out of
  /// range.
  Result<std::unique_ptr<equalize::Equalizer>> makeEqualizer() const;

  /// --- introspection -----------------------------------------------

  int rankCount() const;
  Model *model(int Rank);
  const ModelSlot &slot(int Rank) const;
  /// Pointers to the participating (non-excluded) models, with their
  /// rank indices — the exact inputs partition() hands the algorithm.
  std::vector<Model *> activeModels() const;

  /// Monotonically increasing counter of the model state: every mutation
  /// (load, measure, feedback, successful hot reload) bumps it. Two
  /// partitionRendered() replies with the same (epoch, total, algorithm)
  /// are interchangeable — the server's coalescing and cache key.
  std::uint64_t modelEpoch() const;

  /// Accumulated communication traffic of every SPMD run the session
  /// launched (execute() folds each run's counter snapshot in; callers
  /// that run SPMD through other channels can record extra snapshots).
  /// The serve summary's `# traffic:` line reads this.
  CommStatsSnapshot commTraffic() const;
  void recordCommTraffic(const CommStatsSnapshot &S);

  /// Warnings accumulated by degraded loads and refreshes (a snapshot —
  /// the live list may grow concurrently).
  std::vector<std::string> warnings() const;
  void clearWarnings();
  /// Atomically returns and clears the accumulated warnings (so two
  /// concurrent drains never print the same warning twice).
  std::vector<std::string> takeWarnings();

private:
  explicit Session(SessionConfig Config) : Config(std::move(Config)) {}

  /// Loads \p Path into \p Slot (model + source + fingerprint). On
  /// failure returns the diagnostic; with \p Degraded the slot is
  /// excluded instead and a warning recorded. Caller holds StateMutex.
  Status loadSlot(ModelSlot &Slot, const std::string &Path, bool Degraded);

  /// The solve itself; caller holds StateMutex (shared suffices).
  Result<Dist> partitionLocked(std::int64_t Total,
                               const std::string &Algorithm);

  SessionConfig Config;

  /// Guards Slots, Warnings and Epoch: shared for partition()/readers,
  /// exclusive for every mutation — which makes a hot reload atomic with
  /// respect to in-flight partition calls.
  mutable std::shared_mutex StateMutex;
  std::vector<ModelSlot> Slots;
  std::vector<std::string> Warnings;
  std::uint64_t Epoch = 0;

  /// Warm-start state: the last successful solution per (algorithm,
  /// total). Guarded by its own mutex because partition() readers share
  /// StateMutex yet must mutate this; each solve works on a copy, so the
  /// lock is only held for lookup and write-back. Stale entries are
  /// harmless (fit-epoch validation rejects them) and the map is bounded
  /// by MaxHints.
  mutable std::mutex HintMutex;
  mutable std::map<std::pair<std::string, std::int64_t>, PartitionHint>
      Hints;
  static constexpr std::size_t MaxHints = 128;

  /// Folded counter snapshots of the session's SPMD runs (see
  /// commTraffic()).
  mutable std::mutex TrafficMutex;
  CommStatsSnapshot Traffic;
};

} // namespace engine
} // namespace fupermod

#endif // FUPERMOD_ENGINE_SESSION_H
