//===-- engine/Session.h - The partition-engine session ---------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived partition engine behind the apps, tools and examples.
/// A Session owns one measure -> model -> partition pipeline: the
/// (simulated) platform, one performance-model slot per rank, and the
/// models' inverse-time caches. It exposes the pipeline as explicit
/// phases —
///
///   measure   benchmark devices and fit models (three measurement modes:
///             parallel campaign, synchronised in-SPMD, native kernel);
///   fit       feed application-measured points into the per-rank models
///             (the adaptive routines' feedback loop);
///   partition compute a distribution of a total over the fitted models
///             with a registered algorithm;
///   execute   run an SPMD body on the session's platform.
///
/// Every phase returns a Result/Status instead of bool/assert, and every
/// name (model kind, partitioner, kernel) resolves through the registries,
/// so a bad name is a diagnosable error listing the alternatives.
///
/// Model slots loaded from files remember their source path and mtime;
/// refreshModels() re-reads files that changed on disk, so a long-lived
/// session (partitioner --serve) picks up refreshed models without a
/// restart.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_ENGINE_SESSION_H
#define FUPERMOD_ENGINE_SESSION_H

#include "core/Benchmark.h"
#include "core/Partition.h"
#include "sim/Cluster.h"
#include "support/Result.h"

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fupermod {

class Comm;
struct SpmdResult;

namespace engine {

/// Construction parameters of a Session. Names are validated against the
/// registries at create() time.
struct SessionConfig {
  /// The simulated platform (empty for sessions that only load model
  /// files or benchmark the native kernel).
  Cluster Platform;
  /// Model kind for every model the session builds.
  std::string ModelKind = "piecewise";
  /// Default partitioning algorithm (partition() can override per call).
  std::string Algorithm = "geometric";
  /// Kernel used by native measurement.
  std::string KernelName = "gemm";
  KernelConfig Kernel;
  /// When loading model files: skip unreadable/corrupt/unfitted models
  /// with a warning (excluding their rank from partitioning) instead of
  /// failing the load.
  bool AllowDegraded = false;
};

/// One rank's model and its provenance.
struct ModelSlot {
  std::unique_ptr<Model> M;
  /// Raw measured points in benchmark order (measurement phases only).
  std::vector<Point> Raw;
  /// File the model was loaded from; empty for measured models.
  std::string Source;
  /// mtime of Source at load time (hot-reload detection).
  std::filesystem::file_time_type MTime{};
  /// Why the rank is excluded from partitioning; empty = participating.
  std::string Exclusion;
};

/// Synchronised in-SPMD measurement plan: every rank of the platform
/// benchmarks its device at each size with barrier-synchronised
/// repetitions, and the points are allgathered so the session's models
/// see every rank's measurements (the examples' model-building loop).
struct SyncMeasurePlan {
  std::vector<double> Sizes;
  Precision Prec;
};

/// Native measurement plan: benchmark the session's kernel on this
/// machine over an even size grid.
struct NativeMeasurePlan {
  double MinSize = 32.0;
  double MaxSize = 1024.0;
  int NumPoints = 10;
  Precision Prec;
  /// Called after each size is measured (progress reporting).
  std::function<void(double Size, const Point &P)> OnPoint;
};

class BalancedLoop;

/// The long-lived engine object. Create via Session::create(); all
/// phases are ordinary member calls returning Result/Status.
class Session {
public:
  /// Validates \p Config against the registries (model kind, default
  /// algorithm, kernel name). Returns a failure naming the registered
  /// alternatives on any unknown name.
  static Result<std::unique_ptr<Session>> create(SessionConfig Config);

  const SessionConfig &config() const { return Config; }
  const Cluster &platform() const { return Config.Platform; }

  /// --- measure -----------------------------------------------------

  /// Benchmarks every device of the platform per \p Plan (the parallel
  /// model-building campaign; Plan.Kind is overridden by the session's
  /// model kind) and fills one slot per rank.
  Status measure(ModelBuildPlan Plan);

  /// Synchronised in-SPMD measurement: reproduces the examples' loop
  /// (one SimDeviceBackend per rank, barrier-synchronised repetitions,
  /// points allgathered each size) bit for bit.
  Status measureSynchronized(const SyncMeasurePlan &Plan);

  /// Benchmarks the configured kernel natively on this machine; fills a
  /// single slot.
  Status measureNative(const NativeMeasurePlan &Plan);

  /// --- model I/O and hot reload ------------------------------------

  /// Loads one model file per rank. On an unreadable or corrupt file the
  /// load fails with a diagnostic naming the file and parse error —
  /// unless AllowDegraded, which records a warning and excludes the
  /// rank. Unfitted models are likewise an error or an exclusion.
  Status loadModels(std::span<const std::string> Paths);

  /// Re-reads every file-backed slot whose source changed on disk since
  /// it was (re)loaded. Returns the number of models reloaded. A slot
  /// whose file became unreadable/corrupt keeps the old model (a warning
  /// is recorded).
  Result<int> refreshModels();

  /// Writes the model of \p Rank to \p Path.
  Status saveModel(int Rank, const std::string &Path) const;

  /// --- fit ---------------------------------------------------------

  /// Discards all slots and installs \p Count empty models of the
  /// session's kind (the adaptive feedback loop starts unfitted).
  Status initModels(int Count);

  /// Feeds one application-measured point into the model of \p Rank.
  Status feedback(int Rank, const Point &P);

  /// --- partition ---------------------------------------------------

  /// Distributes \p Total units over the participating ranks with
  /// \p Algorithm (empty = the session default). Excluded ranks receive
  /// zero units. Fails on unknown algorithm names (listing registered
  /// ones), unfitted models, or when the algorithm cannot produce a
  /// valid distribution.
  Result<Dist> partition(std::int64_t Total,
                         const std::string &Algorithm = "");

  /// --- execute -----------------------------------------------------

  /// Runs \p Body on \p Ranks simulated processes of the platform under
  /// its cost model.
  Result<SpmdResult> execute(int Ranks,
                             const std::function<void(Comm &)> &Body);

  /// Builds a dynamic-balancing loop (partial models, even start) from
  /// the session's validated algorithm and model kind. Safe to call
  /// concurrently from execute() bodies.
  BalancedLoop makeBalancedLoop(std::int64_t Total, int NumProcs,
                                double StalenessDecay = 1.0) const;

  /// --- introspection -----------------------------------------------

  int rankCount() const { return static_cast<int>(Slots.size()); }
  Model *model(int Rank);
  const ModelSlot &slot(int Rank) const;
  /// Pointers to the participating (non-excluded) models, with their
  /// rank indices — the exact inputs partition() hands the algorithm.
  std::vector<Model *> activeModels() const;
  /// Warnings accumulated by degraded loads and refreshes.
  const std::vector<std::string> &warnings() const { return Warnings; }
  void clearWarnings() { Warnings.clear(); }

private:
  explicit Session(SessionConfig Config) : Config(std::move(Config)) {}

  /// Loads \p Path into \p Slot (model + source + mtime). On failure
  /// returns the diagnostic; with \p Degraded the slot is excluded
  /// instead and a warning recorded.
  Status loadSlot(ModelSlot &Slot, const std::string &Path, bool Degraded);

  SessionConfig Config;
  std::vector<ModelSlot> Slots;
  std::vector<std::string> Warnings;
};

} // namespace engine
} // namespace fupermod

#endif // FUPERMOD_ENGINE_SESSION_H
