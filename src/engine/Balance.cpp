//===-- engine/Balance.cpp - Shared dynamic-balancing driver --------------===//

#include "engine/Balance.h"

#include "equalize/Policy.h"
#include "mpp/Runtime.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace fupermod;
using namespace fupermod::engine;

BalancedLoop::BalancedLoop(Partitioner Algorithm,
                           const std::string &ModelKind, std::int64_t Total,
                           int NumProcs, double StalenessDecay)
    : Ctx(std::move(Algorithm), ModelKind, Total, NumProcs) {
  Ctx.setStalenessDecay(StalenessDecay);
}

bool BalancedLoop::balance(Comm &C, double IterStart,
                           const BalancePolicy &Policy, bool DeviceFailed) {
  if (!Policy.Enabled)
    return false;
  // Snapshot the local iteration duration before any collective: the
  // threshold allreduces synchronise the clocks, which would otherwise
  // erase the per-rank timing signal.
  double MyIterTime = C.time() - IterStart;
  bool Rebalance = true;
  if (Policy.RebalanceThreshold > 0.0) {
    double MaxT = C.allreduceValue(MyIterTime, ReduceOp::Max);
    double MinT = C.allreduceValue(MyIterTime, ReduceOp::Min);
    if (Policy.TrackFailures) {
      // A hard failure anywhere overrides the threshold: the dead
      // rank's units must move regardless of measured imbalance.
      double AnyFailed =
          C.allreduceValue(DeviceFailed ? 1.0 : 0.0, ReduceOp::Max);
      Rebalance = AnyFailed > 0.0 ||
                  (MaxT > 0.0 &&
                   (MaxT - MinT) / MaxT > Policy.RebalanceThreshold);
    } else {
      Rebalance = MaxT > 0.0 &&
                  (MaxT - MinT) / MaxT > Policy.RebalanceThreshold;
    }
  }
  if (Rebalance) {
    Dist Before = Ctx.dist();
    balanceIterate(Ctx, C, C.time() - MyIterTime, DeviceFailed);
    if (!Ctx.dist().sameUnits(Before))
      ++DistEpoch;
  }
  return Rebalance;
}

namespace {

/// One rank's contribution to the equalization gather.
struct EqualizeSample {
  double IterTime;
  double Failed; // 0 or 1 (double keeps the struct homogeneous).
};

/// Publishes the delta between two policy-stat snapshots into the world
/// counters. Rank 0 only (the replicas hold identical stats; one
/// publisher avoids double counting).
void publishStatsDelta(Comm &C, const equalize::EqualizeStats &Before,
                       const equalize::EqualizeStats &After) {
  auto Bump = [&C](const char *Key, double Delta) {
    if (Delta != 0.0)
      C.accumulateCounter(Key, Delta);
  };
  Bump("equalize.rounds",
       static_cast<double>(After.Rounds - Before.Rounds));
  Bump("equalize.triggers",
       static_cast<double>(After.Triggers - Before.Triggers));
  Bump("equalize.vetoes",
       static_cast<double>(After.Vetoes - Before.Vetoes));
  Bump("equalize.rebalances",
       static_cast<double>(After.Rebalances - Before.Rebalances));
  Bump("equalize.forced",
       static_cast<double>(After.ForcedByFailure - Before.ForcedByFailure));
  Bump("equalize.cooldown_suppressed",
       static_cast<double>(After.CooldownSuppressed -
                           Before.CooldownSuppressed));
  Bump("equalize.hysteresis_suppressed",
       static_cast<double>(After.HysteresisSuppressed -
                           Before.HysteresisSuppressed));
  Bump("equalize.migrated_bytes",
       static_cast<double>(After.MigrationBytes - Before.MigrationBytes));
  Bump("equalize.predicted_savings",
       After.PredictedSavings - Before.PredictedSavings);
}

} // namespace

bool BalancedLoop::balanceEqualized(Comm &C, double IterStart,
                                    equalize::Equalizer &Eq,
                                    bool DeviceFailed) {
  assert(Ctx.size() == C.size() && "context/communicator size mismatch");
  // Snapshot the local duration before the collective (the gather
  // synchronises the clocks, erasing the per-rank timing signal).
  EqualizeSample Mine;
  Mine.IterTime = C.time() - IterStart;
  Mine.Failed = DeviceFailed ? 1.0 : 0.0;
  std::vector<EqualizeSample> All =
      C.allgatherv(std::span<const EqualizeSample>(&Mine, 1));

  std::size_t P = All.size();
  std::vector<double> Times(P);
  std::vector<std::uint8_t> Active(P);
  bool AnyFailed = false;
  for (std::size_t R = 0; R < P; ++R) {
    Times[R] = All[R].IterTime;
    bool Failed = All[R].Failed > 0.0;
    AnyFailed = AnyFailed || Failed;
    Active[R] = (!Failed && !Ctx.isExcluded(static_cast<int>(R)) &&
                 Ctx.dist().Parts[R].Units > 0)
                    ? 1
                    : 0;
  }

  // Build the measurement points with balanceIterate's exact rules, so
  // the partial models see the same data the legacy path would feed.
  std::vector<Point> Points(P);
  for (std::size_t R = 0; R < P; ++R) {
    Point &Pt = Points[R];
    Pt.Units = static_cast<double>(
        std::max<std::int64_t>(Ctx.dist().Parts[R].Units, 1));
    if (All[R].Failed > 0.0) {
      Pt.Reps = 0;
      Pt.Time = std::numeric_limits<double>::infinity();
      Pt.Status = PointStatus::DeviceFailed;
    } else {
      Pt.Time = Times[R];
      Pt.Reps = 1;
      if (Pt.Time <= 0.0) {
        Pt.Reps = 0;
        Pt.Status = PointStatus::TimedOut;
      }
    }
  }
  // Models are fed on *every* round — monitoring is free, and the partial
  // models have already tracked a drift by the time a trigger fires, so
  // one repartition lands near the new optimum instead of needing a long
  // settling chain.
  Ctx.updateAll(Points);

  equalize::EqualizeStats StatsBefore = Eq.stats();
  bool Solve = Eq.shouldSolve(Times, Active, AnyFailed);
  if (!Solve) {
    Eq.noteOutcome(/*Adopted=*/false, /*ForcedByFailure=*/false);
    if (C.rank() == 0)
      publishStatsDelta(C, StatsBefore, Eq.stats());
    return false;
  }

  Dist Before = Ctx.dist();
  Ctx.repartitionNow();
  bool Moved = !Ctx.dist().sameUnits(Before);

  if (!Moved) {
    // The solver reproduced the current shares: nothing to adopt or
    // veto. The models still absorbed the measurements.
    Eq.noteOutcome(/*Adopted=*/false, /*ForcedByFailure=*/false);
  } else if (!AnyFailed && !Eq.approve(Before, Ctx.dist())) {
    // Vetoed: the models keep the fresh points (later quotes stay
    // sharp), but the running distribution must not move.
    Ctx.restoreDist(Before);
    Eq.noteOutcome(/*Adopted=*/false, /*ForcedByFailure=*/false);
  } else {
    ++DistEpoch;
    Eq.noteOutcome(/*Adopted=*/true, AnyFailed);
  }
  if (C.rank() == 0)
    publishStatsDelta(C, StatsBefore, Eq.stats());
  return true;
}

std::vector<std::int64_t> fupermod::engine::contiguousStarts(const Dist &D,
                                                             std::int64_t
                                                                 Base) {
  return D.contiguousStarts(Base);
}

void fupermod::engine::redistributeContiguous(
    Comm &C, std::span<const std::int64_t> OldStarts,
    std::span<const std::int64_t> NewStarts, int Tag,
    const RangeCopier &Copy) {
  int P = C.size();
  int Me = C.rank();
  assert(OldStarts.size() == static_cast<std::size_t>(P) + 1 &&
         NewStarts.size() == static_cast<std::size_t>(P) + 1 &&
         "start arrays must have one entry per rank plus the end");
  std::int64_t MyStart = OldStarts[static_cast<std::size_t>(Me)];
  std::int64_t MyEnd = OldStarts[static_cast<std::size_t>(Me) + 1];
  std::int64_t NewStart = NewStarts[static_cast<std::size_t>(Me)];
  std::int64_t NewEnd = NewStarts[static_cast<std::size_t>(Me) + 1];

  // Ship overlaps of my old range with everyone's new range (buffered
  // sends first: deadlock-free).
  for (int Q = 0; Q < P; ++Q) {
    std::int64_t Lo =
        std::max(MyStart, NewStarts[static_cast<std::size_t>(Q)]);
    std::int64_t Hi =
        std::min(MyEnd, NewStarts[static_cast<std::size_t>(Q) + 1]);
    if (Lo >= Hi)
      continue;
    if (Q == Me) {
      Copy.Keep(Lo, Hi);
      continue;
    }
    std::vector<double> Payload = Copy.Pack(Lo, Hi);
    C.send<double>(Q, Tag, Payload);
  }
  // Receive the units my new range takes over from others.
  for (int Q = 0; Q < P; ++Q) {
    if (Q == Me)
      continue;
    std::int64_t Lo =
        std::max(NewStart, OldStarts[static_cast<std::size_t>(Q)]);
    std::int64_t Hi =
        std::min(NewEnd, OldStarts[static_cast<std::size_t>(Q) + 1]);
    if (Lo >= Hi)
      continue;
    std::vector<double> Payload = C.recv<double>(Q, Tag);
    Copy.Unpack(Lo, Hi, Payload);
  }
}
