//===-- engine/Balance.cpp - Shared dynamic-balancing driver --------------===//

#include "engine/Balance.h"

#include "mpp/Runtime.h"

#include <algorithm>
#include <cassert>

using namespace fupermod;
using namespace fupermod::engine;

BalancedLoop::BalancedLoop(Partitioner Algorithm,
                           const std::string &ModelKind, std::int64_t Total,
                           int NumProcs, double StalenessDecay)
    : Ctx(std::move(Algorithm), ModelKind, Total, NumProcs) {
  Ctx.setStalenessDecay(StalenessDecay);
}

bool BalancedLoop::balance(Comm &C, double IterStart,
                           const BalancePolicy &Policy, bool DeviceFailed) {
  if (!Policy.Enabled)
    return false;
  // Snapshot the local iteration duration before any collective: the
  // threshold allreduces synchronise the clocks, which would otherwise
  // erase the per-rank timing signal.
  double MyIterTime = C.time() - IterStart;
  bool Rebalance = true;
  if (Policy.RebalanceThreshold > 0.0) {
    double MaxT = C.allreduceValue(MyIterTime, ReduceOp::Max);
    double MinT = C.allreduceValue(MyIterTime, ReduceOp::Min);
    if (Policy.TrackFailures) {
      // A hard failure anywhere overrides the threshold: the dead
      // rank's units must move regardless of measured imbalance.
      double AnyFailed =
          C.allreduceValue(DeviceFailed ? 1.0 : 0.0, ReduceOp::Max);
      Rebalance = AnyFailed > 0.0 ||
                  (MaxT > 0.0 &&
                   (MaxT - MinT) / MaxT > Policy.RebalanceThreshold);
    } else {
      Rebalance = MaxT > 0.0 &&
                  (MaxT - MinT) / MaxT > Policy.RebalanceThreshold;
    }
  }
  if (Rebalance) {
    Dist Before = Ctx.dist();
    balanceIterate(Ctx, C, C.time() - MyIterTime, DeviceFailed);
    if (!Ctx.dist().sameUnits(Before))
      ++DistEpoch;
  }
  return Rebalance;
}

std::vector<std::int64_t> fupermod::engine::contiguousStarts(const Dist &D,
                                                             std::int64_t
                                                                 Base) {
  return D.contiguousStarts(Base);
}

void fupermod::engine::redistributeContiguous(
    Comm &C, std::span<const std::int64_t> OldStarts,
    std::span<const std::int64_t> NewStarts, int Tag,
    const RangeCopier &Copy) {
  int P = C.size();
  int Me = C.rank();
  assert(OldStarts.size() == static_cast<std::size_t>(P) + 1 &&
         NewStarts.size() == static_cast<std::size_t>(P) + 1 &&
         "start arrays must have one entry per rank plus the end");
  std::int64_t MyStart = OldStarts[static_cast<std::size_t>(Me)];
  std::int64_t MyEnd = OldStarts[static_cast<std::size_t>(Me) + 1];
  std::int64_t NewStart = NewStarts[static_cast<std::size_t>(Me)];
  std::int64_t NewEnd = NewStarts[static_cast<std::size_t>(Me) + 1];

  // Ship overlaps of my old range with everyone's new range (buffered
  // sends first: deadlock-free).
  for (int Q = 0; Q < P; ++Q) {
    std::int64_t Lo =
        std::max(MyStart, NewStarts[static_cast<std::size_t>(Q)]);
    std::int64_t Hi =
        std::min(MyEnd, NewStarts[static_cast<std::size_t>(Q) + 1]);
    if (Lo >= Hi)
      continue;
    if (Q == Me) {
      Copy.Keep(Lo, Hi);
      continue;
    }
    std::vector<double> Payload = Copy.Pack(Lo, Hi);
    C.send<double>(Q, Tag, Payload);
  }
  // Receive the units my new range takes over from others.
  for (int Q = 0; Q < P; ++Q) {
    if (Q == Me)
      continue;
    std::int64_t Lo =
        std::max(NewStart, OldStarts[static_cast<std::size_t>(Q)]);
    std::int64_t Hi =
        std::min(NewEnd, OldStarts[static_cast<std::size_t>(Q) + 1]);
    if (Lo >= Hi)
      continue;
    std::vector<double> Payload = C.recv<double>(Q, Tag);
    Copy.Unpack(Lo, Hi, Payload);
  }
}
