//===-- engine/Serve.cpp - Batch and streaming request serving ------------===//

#include "engine/Serve.h"

#include "engine/Server.h"

#include <condition_variable>
#include <deque>
#include <future>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <thread>

using namespace fupermod;
using namespace fupermod::engine;

bool fupermod::engine::parseServeLine(const std::string &Line,
                                      std::size_t LineNo, ServeRequest &Out) {
  // Strip a trailing comment, then whitespace-split.
  std::string Body = Line;
  std::size_t Hash = Body.find('#');
  if (Hash != std::string::npos)
    Body.resize(Hash);
  std::istringstream LS(Body);
  std::string First;
  if (!(LS >> First))
    return false; // Blank/comment-only line.
  Out = ServeRequest();
  Out.LineNo = LineNo;
  if (First == "reload") {
    Out.Reload = true;
  } else {
    std::istringstream TS(First);
    if (!(TS >> Out.Total) || !TS.eof() || Out.Total <= 0) {
      Out.ParseError = "request line " + std::to_string(LineNo) +
                       ": expected a positive total or 'reload', got '" +
                       First + "'";
      return true;
    }
    LS >> Out.Algorithm; // Optional.
  }
  std::string Extra;
  if (LS >> Extra)
    Out.ParseError = "request line " + std::to_string(LineNo) +
                     ": unexpected trailing token '" + Extra + "'";
  return true;
}

Result<std::vector<ServeRequest>>
fupermod::engine::parseServeRequests(std::istream &IS) {
  std::vector<ServeRequest> Out;
  std::string Line;
  std::size_t LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    ServeRequest Req;
    if (parseServeLine(Line, LineNo, Req))
      Out.push_back(std::move(Req));
  }
  return Out;
}

namespace {

void drainWarnings(Session &S, std::ostream &OS) {
  for (const std::string &W : S.takeWarnings())
    OS << "# warning: " << W << '\n';
}

} // namespace

ServeStats fupermod::engine::serveRequests(
    Session &S, std::span<const ServeRequest> Requests, std::ostream &OS) {
  ServeStats Stats;
  for (const ServeRequest &Req : Requests) {
    // Hot reload: before every request, pick up model files that changed
    // on disk (explicit "reload" lines force only this step).
    Result<int> Refreshed = S.refreshModels();
    if (Refreshed.ok() && Refreshed.value() > 0) {
      Stats.Reloaded += Refreshed.value();
      OS << "# reloaded " << Refreshed.value() << " model(s)\n";
    }
    drainWarnings(S, OS);
    if (!Req.ParseError.empty()) {
      // Skip-and-record: the malformed line is reported in place and
      // the rest of the batch is still served.
      OS << "# error: " << Req.ParseError << '\n';
      ++Stats.Failed;
      ++Stats.Malformed;
      continue;
    }
    if (Req.Reload)
      continue;

    Result<PartitionReply> Reply =
        S.partitionRendered(Req.Total, Req.Algorithm);
    if (!Reply) {
      OS << "# error: " << Reply.error() << '\n';
      ++Stats.Failed;
      continue;
    }
    OS << Reply.value().Text;
    ++Stats.Answered;
  }
  return Stats;
}

namespace {

/// One unit of ordered output: either a response still being computed
/// (Pending) or text that can be written as-is (Immediate).
struct EmitItem {
  std::optional<std::future<ServerResponse>> Pending;
  std::string Immediate;
};

/// The request-ordered output queue between the reader (producer) and
/// the emitter thread (consumer).
class EmitQueue {
public:
  void push(EmitItem Item) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Items.push_back(std::move(Item));
    }
    Ready.notify_one();
  }

  void finish() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Done = true;
    }
    Ready.notify_one();
  }

  std::optional<EmitItem> pop() {
    std::unique_lock<std::mutex> Lock(Mutex);
    Ready.wait(Lock, [this] { return Done || !Items.empty(); });
    if (Items.empty())
      return std::nullopt;
    std::optional<EmitItem> Out(std::move(Items.front()));
    Items.pop_front();
    return Out;
  }

private:
  std::mutex Mutex;
  std::condition_variable Ready;
  std::deque<EmitItem> Items;
  bool Done = false;
};

} // namespace

ServeStats fupermod::engine::serveStream(Server &Srv, std::istream &IS,
                                         std::ostream &OS) {
  ServeStats Stats;
  std::mutex StatsMutex; // Emitter thread and reader both tally.
  EmitQueue Emit;

  // The emitter writes responses strictly in request order: it blocks on
  // the oldest in-flight future while newer requests solve behind it.
  // Flushing after every item keeps a pipe client's read prompt.
  std::thread Emitter([&] {
    while (std::optional<EmitItem> Item = Emit.pop()) {
      if (!Item->Pending) {
        OS << Item->Immediate;
        OS.flush();
        continue;
      }
      ServerResponse R = Item->Pending->get();
      std::lock_guard<std::mutex> Lock(StatsMutex);
      switch (R.K) {
      case ServerResponse::Kind::Ok:
        OS << R.Reply.Text;
        ++Stats.Answered;
        break;
      case ServerResponse::Kind::Error:
        OS << "# error: " << R.Message << '\n';
        ++Stats.Failed;
        break;
      case ServerResponse::Kind::Rejected:
        OS << "# rejected: " << rejectReasonName(R.Reason) << '\n';
        ++Stats.Rejected;
        break;
      }
      OS.flush();
    }
  });

  std::string Line;
  std::size_t LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    ServeRequest Req;
    if (!parseServeLine(Line, LineNo, Req))
      continue;
    if (!Req.ParseError.empty()) {
      {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        ++Stats.Failed;
        ++Stats.Malformed;
      }
      Emit.push({std::nullopt, "# error: " + Req.ParseError + "\n"});
      continue;
    }
    if (Req.Reload) {
      // Ordered relative to the reader: requests submitted later see the
      // refreshed models (in-flight solves finish against whichever
      // epoch their solve started under — the atomicity guarantee).
      Result<int> R = Srv.reload();
      std::string Note;
      if (R.ok() && R.value() > 0) {
        std::lock_guard<std::mutex> Lock(StatsMutex);
        Stats.Reloaded += R.value();
        Note += "# reloaded " + std::to_string(R.value()) + " model(s)\n";
      }
      for (const std::string &W : Srv.session().takeWarnings())
        Note += "# warning: " + W + "\n";
      if (!Note.empty())
        Emit.push({std::nullopt, std::move(Note)});
      continue;
    }
    ServerRequest SReq;
    SReq.Total = Req.Total;
    SReq.Algorithm = Req.Algorithm;
    Emit.push({Srv.submit(std::move(SReq)), std::string()});
  }

  Emit.finish();
  Emitter.join();
  return Stats;
}
