//===-- engine/Serve.cpp - Batch request serving --------------------------===//

#include "engine/Serve.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

using namespace fupermod;
using namespace fupermod::engine;

Result<std::vector<ServeRequest>>
fupermod::engine::parseServeRequests(std::istream &IS) {
  using R = Result<std::vector<ServeRequest>>;
  std::vector<ServeRequest> Out;
  std::string Line;
  std::size_t LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    // Strip a trailing comment, then whitespace-split.
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream LS(Line);
    std::string First;
    if (!(LS >> First))
      continue; // Blank/comment-only line.
    ServeRequest Req;
    if (First == "reload") {
      Req.Reload = true;
    } else {
      std::istringstream TS(First);
      if (!(TS >> Req.Total) || !TS.eof() || Req.Total <= 0)
        return R::failure("request line " + std::to_string(LineNo) +
                          ": expected a positive total or 'reload', got '" +
                          First + "'");
      LS >> Req.Algorithm; // Optional.
    }
    std::string Extra;
    if (LS >> Extra)
      return R::failure("request line " + std::to_string(LineNo) +
                        ": unexpected trailing token '" + Extra + "'");
    Out.push_back(std::move(Req));
  }
  return Out;
}

namespace {

void drainWarnings(Session &S, std::ostream &OS) {
  for (const std::string &W : S.warnings())
    OS << "# warning: " << W << '\n';
  S.clearWarnings();
}

/// Prints one partition result in the one-shot partitioner's format.
void printPartition(std::ostream &OS, Session &S, const std::string &Name,
                    const Dist &D) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "# %s partitioning of %lld units over %zu processes\n",
                Name.c_str(), static_cast<long long>(D.Total),
                D.Parts.size());
  OS << Buf;
  for (std::size_t I = 0; I < D.Parts.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf),
                  "rank %-3zu units %-10lld predicted_time %.6f  (%s)\n", I,
                  static_cast<long long>(D.Parts[I].Units),
                  D.Parts[I].PredictedTime,
                  S.slot(static_cast<int>(I)).Source.c_str());
    OS << Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "# max predicted time: %.6f\n",
                D.maxPredictedTime());
  OS << Buf;
}

} // namespace

ServeStats fupermod::engine::serveRequests(
    Session &S, std::span<const ServeRequest> Requests, std::ostream &OS) {
  ServeStats Stats;
  for (const ServeRequest &Req : Requests) {
    // Hot reload: before every request, pick up model files that changed
    // on disk (explicit "reload" lines force only this step).
    Result<int> Refreshed = S.refreshModels();
    if (Refreshed.ok() && Refreshed.value() > 0) {
      Stats.Reloaded += Refreshed.value();
      OS << "# reloaded " << Refreshed.value() << " model(s)\n";
    }
    drainWarnings(S, OS);
    if (Req.Reload)
      continue;

    const std::string &Name =
        Req.Algorithm.empty() ? S.config().Algorithm : Req.Algorithm;
    Result<Dist> D = S.partition(Req.Total, Req.Algorithm);
    if (!D) {
      OS << "# error: " << D.error() << '\n';
      ++Stats.Failed;
      continue;
    }
    printPartition(OS, S, Name, D.value());
    ++Stats.Answered;
  }
  return Stats;
}
