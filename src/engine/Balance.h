//===-- engine/Balance.h - Shared dynamic-balancing driver ------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-side driver of the apps' dynamic load-balancing loops. The
/// iterative applications (Jacobi, the stencil) used to each re-implement
/// the same three pieces around DynamicContext:
///
///  - the imbalance-threshold test (allreduce the iteration times, only
///    rebalance when (max - min) / max clears the threshold),
///  - the balanceIterate call feeding the measured iteration into the
///    partial models,
///  - the contiguous-range redistribution shipping overlaps of the old
///    and new per-rank ranges (buffered sends first, then receives).
///
/// BalancedLoop and redistributeContiguous() factor those out. The
/// collective sequence (allreduce order, message order, payload sizes) is
/// exactly the apps' historical one, so virtual-time traces are
/// bit-identical to the pre-engine code.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_ENGINE_BALANCE_H
#define FUPERMOD_ENGINE_BALANCE_H

#include "core/Dynamic.h"

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace fupermod {

class Comm;

namespace equalize {
class Equalizer;
} // namespace equalize

namespace engine {

/// Per-iteration balancing policy of an application loop.
struct BalancePolicy {
  /// Master switch: disabled loops never rebalance (static distribution).
  bool Enabled = true;
  /// Rebalance only when the relative imbalance of the measured
  /// iteration times, (max - min) / max, exceeds this (0 = every
  /// iteration).
  double RebalanceThreshold = 0.0;
  /// Also allreduce a device-failure flag with the threshold test; a
  /// failure anywhere overrides the threshold (the dead rank's share
  /// must move regardless of measured imbalance).
  bool TrackFailures = false;
};

/// One application's balancing state: the dynamic context (partial
/// models + current distribution) plus the threshold-gated rebalance
/// step. Each SPMD rank owns one (replicated) instance.
class BalancedLoop {
public:
  /// \p Algorithm must be non-null (obtain it via
  /// Session::makeBalancedLoop, which pre-validates the name).
  BalancedLoop(Partitioner Algorithm, const std::string &ModelKind,
               std::int64_t Total, int NumProcs,
               double StalenessDecay = 1.0);

  DynamicContext &context() { return Ctx; }
  const DynamicContext &context() const { return Ctx; }

  /// Current distribution.
  const Dist &dist() const { return Ctx.dist(); }

  /// The per-iteration balance step, collective on \p C: snapshots the
  /// iteration duration since \p IterStart, applies the threshold test
  /// (with the exact allreduce sequence of the historical apps), and
  /// when warranted feeds the duration into balanceIterate. Returns true
  /// when the balancer ran. Bumps distEpoch() when the run actually
  /// moved units between ranks.
  bool balance(Comm &C, double IterStart, const BalancePolicy &Policy,
               bool DeviceFailed = false);

  /// The equalization-subsystem variant of balance(), collective on \p C:
  /// gathers every rank's iteration duration and failure flag in one
  /// allgather, feeds them to the replicated \p Eq policy
  /// (equalize::Equalizer decides *whether* this round warrants a solve),
  /// and on a trigger repartitions — then lets the policy's approve()
  /// step veto adoption (cost arbitration). A vetoed solve keeps the
  /// measurements in the partial models but restores the previous
  /// distribution, so the running data layout never moves for a
  /// non-amortizing rebalance. A device failure anywhere forces both the
  /// solve and adoption. Bumps distEpoch() only on adopted repartitions
  /// that moved units. Returns true when a solve ran (adopted or
  /// vetoed). Every rank must pass an identically configured policy
  /// instance; only rank 0 publishes the policy's statistics deltas into
  /// the world counters (Comm::accumulateCounter, "equalize.*" keys).
  bool balanceEqualized(Comm &C, double IterStart, equalize::Equalizer &Eq,
                        bool DeviceFailed = false);

  /// Distribution epoch: starts at zero and increments every time
  /// balance() changes the per-rank unit counts (threshold-suppressed or
  /// no-op balancer runs do not count). Data structures synchronised to
  /// an older epoch must redistribute.
  std::uint64_t distEpoch() const { return DistEpoch; }

  /// Migrates \p V (a dist::PartitionedVector or anything exposing
  /// syncedEpoch()/setSyncedEpoch()/redistribute(const Dist &)) to the
  /// current distribution iff it is synced to an older epoch — so data
  /// moves exactly when a repartition changed unit counts and never
  /// otherwise. Collective when it fires; call it at the same loop point
  /// on every rank. Returns true when a redistribution ran.
  template <typename Container> bool redistributeIfChanged(Container &V) {
    if (V.syncedEpoch() == DistEpoch)
      return false;
    V.redistribute(Ctx.dist());
    V.setSyncedEpoch(DistEpoch);
    return true;
  }

private:
  DynamicContext Ctx;
  std::uint64_t DistEpoch = 0;
};

/// Callbacks moving units between the old and new local storage during a
/// contiguous-range redistribution. Ranges are in global unit
/// coordinates.
struct RangeCopier {
  /// Serializes old-local units [Lo, Hi) into one message payload.
  std::function<std::vector<double>(std::int64_t Lo, std::int64_t Hi)> Pack;
  /// Places units [Lo, Hi) received as \p Payload into the new storage.
  std::function<void(std::int64_t Lo, std::int64_t Hi,
                     std::span<const double> Payload)>
      Unpack;
  /// Moves the self-overlap [Lo, Hi) from the old to the new storage.
  std::function<void(std::int64_t Lo, std::int64_t Hi)> Keep;
};

/// Ships the overlaps between the old and new contiguous per-rank ranges
/// (prefix-start arrays of size P + 1), collective on \p C: buffered
/// sends of my old units that now belong to others, then receives of the
/// units my new range takes over — the deadlock-free order the apps
/// always used. \p Tag tags every message.
void redistributeContiguous(Comm &C, std::span<const std::int64_t> OldStarts,
                            std::span<const std::int64_t> NewStarts, int Tag,
                            const RangeCopier &Copy);

/// Prefix starts [Start[r], Start[r+1]) of a distribution's contiguous
/// ranges, beginning at \p Base (0 for row indices, 1 for grid-interior
/// coordinates).
std::vector<std::int64_t> contiguousStarts(const Dist &D,
                                           std::int64_t Base = 0);

} // namespace engine
} // namespace fupermod

#endif // FUPERMOD_ENGINE_BALANCE_H
