//===-- engine/Serve.h - Batch request serving ------------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Batch partition serving for `partitioner --serve REQFILE`: one
/// long-lived Session loads the models once and answers many
/// (total, algorithm) requests, amortising the model loads/refits and
/// keeping the inverse-time caches warm across requests. Model files
/// that change on disk between requests are hot-reloaded (mtime-based).
///
/// Request-file format, one request per line:
///
///   # comments and blank lines are ignored
///   3000               # partition 3000 units with the default algorithm
///   5000 numerical     # ... with an explicit algorithm
///   reload             # force a model refresh now
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_ENGINE_SERVE_H
#define FUPERMOD_ENGINE_SERVE_H

#include "engine/Session.h"

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace fupermod {
namespace engine {

/// One parsed request.
struct ServeRequest {
  /// Units to partition (partition requests only).
  std::int64_t Total = 0;
  /// Algorithm name; empty = the session default.
  std::string Algorithm;
  /// True for an explicit "reload" line.
  bool Reload = false;
};

/// Parses a request file. Fails with a line-numbered diagnostic on
/// malformed lines; algorithm names are validated later, per request,
/// so one typo does not invalidate the whole batch.
Result<std::vector<ServeRequest>> parseServeRequests(std::istream &IS);

/// Tally of one serving run.
struct ServeStats {
  /// Partition requests answered successfully.
  int Answered = 0;
  /// Partition requests that failed (error reported inline).
  int Failed = 0;
  /// Models hot-reloaded over the run (automatic + explicit).
  int Reloaded = 0;
};

/// Answers every request on \p S, writing one one-shot-compatible
/// partition block per request to \p OS. File-backed models are
/// refreshed before every request; session warnings are drained as
/// "# warning:" lines; a failed request prints "# error:" and serving
/// continues.
ServeStats serveRequests(Session &S, std::span<const ServeRequest> Requests,
                         std::ostream &OS);

} // namespace engine
} // namespace fupermod

#endif // FUPERMOD_ENGINE_SERVE_H
