//===-- engine/Serve.h - Batch and streaming request serving ----*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partition serving for `partitioner --serve`: one long-lived Session
/// loads the models once and answers many (total, algorithm) requests,
/// amortising the model loads/refits and keeping the inverse-time caches
/// warm across requests. Model files that change on disk between
/// requests are hot-reloaded ((mtime, size, content-hash) fingerprint).
///
/// Request format, one request per line:
///
///   # comments and blank lines are ignored
///   3000               # partition 3000 units with the default algorithm
///   5000 numerical     # ... with an explicit algorithm
///   reload             # force a model refresh now
///
/// A malformed line does not abort the batch: it is skipped and recorded
/// as a per-request error (`# error: request line N: ...` in the output)
/// while every well-formed request is still answered.
///
/// Two serving modes share the grammar:
///
///  - serveRequests(): the sequential batch mode (one request at a time
///    from a parsed file);
///  - serveStream(): the concurrent transport — reads requests from a
///    stream (stdin, a pipe/FIFO, a socket fd wrapped in a stream),
///    submits them to an engine::Server, and writes the responses back
///    in request order, so external clients can drive the server through
///    a plain pipe while N workers, coalescing and the partition cache
///    do the work.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_ENGINE_SERVE_H
#define FUPERMOD_ENGINE_SERVE_H

#include "engine/Session.h"

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace fupermod {
namespace engine {

class Server;

/// One parsed request line.
struct ServeRequest {
  /// Units to partition (partition requests only).
  std::int64_t Total = 0;
  /// Algorithm name; empty = the session default.
  std::string Algorithm;
  /// True for an explicit "reload" line.
  bool Reload = false;
  /// 1-based line number the request came from (0 for requests built
  /// programmatically).
  std::size_t LineNo = 0;
  /// Non-empty when the line was malformed: the full line-numbered
  /// diagnostic. Such a request is never solved — serving records it as
  /// a per-request error and moves on.
  std::string ParseError;
};

/// Parses one request line (comment stripping included). Returns false
/// when the line holds no request (blank/comment-only); a malformed line
/// returns true with Out.ParseError set.
bool parseServeLine(const std::string &Line, std::size_t LineNo,
                    ServeRequest &Out);

/// Parses a request file. Malformed lines are kept as error records
/// (skip-and-record) rather than failing the batch; algorithm names are
/// validated later, per request, so one typo never invalidates the
/// others. The Result is failed only when the stream itself is broken.
Result<std::vector<ServeRequest>> parseServeRequests(std::istream &IS);

/// Tally of one serving run.
struct ServeStats {
  /// Partition requests answered successfully.
  int Answered = 0;
  /// Partition requests that failed (error reported inline); includes
  /// the malformed lines.
  int Failed = 0;
  /// Of Failed: malformed request lines (skip-and-record).
  int Malformed = 0;
  /// Requests the server shed with a structured rejection (streaming
  /// mode only).
  int Rejected = 0;
  /// Models hot-reloaded over the run (automatic + explicit).
  int Reloaded = 0;
};

/// Answers every request on \p S sequentially, writing one
/// one-shot-compatible partition block per request to \p OS. File-backed
/// models are refreshed before every request; session warnings are
/// drained as "# warning:" lines; a failed or malformed request prints
/// "# error:" and serving continues.
ServeStats serveRequests(Session &S, std::span<const ServeRequest> Requests,
                         std::ostream &OS);

/// The concurrent transport: reads request lines from \p IS as they
/// arrive, submits them to \p Srv, and writes responses to \p OS in
/// request order (an emitter thread blocks on the oldest in-flight
/// response while newer ones solve behind it, so a pipe client still
/// sees answers promptly and in order). "reload" lines trigger
/// Server::reload(); rejections are written as "# rejected:" records.
/// Returns when \p IS hits EOF and every response has been written.
ServeStats serveStream(Server &Srv, std::istream &IS, std::ostream &OS);

} // namespace engine
} // namespace fupermod

#endif // FUPERMOD_ENGINE_SERVE_H
