//===-- sim/Cluster.cpp - Simulated heterogeneous clusters ----------------===//

#include "sim/Cluster.h"

#include <cassert>

using namespace fupermod;

std::shared_ptr<const CostModel> Cluster::makeCostModel() const {
  assert(NodeOfRank.size() == Devices.size() &&
         "every rank needs a node placement");
  auto Model = std::make_shared<TwoLevelCostModel>(NodeOfRank, Intra, Inter);
  for (const auto &[Node, Link] : NodeIntra)
    Model->setNodeIntra(Node, Link);
  return Model;
}

std::vector<SimDevice> Cluster::makeDevices() const {
  std::vector<SimDevice> Out;
  Out.reserve(Devices.size());
  for (int R = 0; R < size(); ++R)
    Out.push_back(makeDevice(R));
  return Out;
}

SimDevice Cluster::makeDevice(int Rank) const {
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  SimDevice Dev(Devices[static_cast<std::size_t>(Rank)], NoiseSigma,
                Seed + static_cast<std::uint64_t>(Rank));
  if (static_cast<std::size_t>(Rank) < Faults.size() &&
      !Faults[static_cast<std::size_t>(Rank)].empty())
    Dev.setFaultPlan(Faults[static_cast<std::size_t>(Rank)]);
  return Dev;
}

void Cluster::addFault(int Rank, FaultEvent E) {
  assert(Rank >= 0 && "rank out of range");
  if (static_cast<std::size_t>(Rank) >= Faults.size())
    Faults.resize(static_cast<std::size_t>(Rank) + 1);
  Faults[static_cast<std::size_t>(Rank)].Events.push_back(E);
}

Cluster fupermod::makeTwoDeviceCluster() {
  Cluster C;
  // A fast core with an early cache cliff against a slower core that keeps
  // its speed longer: their optimal split moves with problem size, which
  // is exactly what partial FPM construction (Fig. 3) has to discover.
  C.Devices.push_back(makeCpuProfile("fast-cpu", /*Peak=*/900.0,
                                     /*Ramp=*/30.0, /*Cliff=*/1500.0,
                                     /*Width=*/200.0, /*Drop=*/0.65));
  C.Devices.push_back(makeCpuProfile("slow-cpu", /*Peak=*/350.0,
                                     /*Ramp=*/20.0, /*Cliff=*/4000.0,
                                     /*Width=*/500.0, /*Drop=*/0.30));
  C.NodeOfRank = {0, 1};
  return C;
}

Cluster fupermod::makeHclLikeCluster(bool WithGpu) {
  Cluster C;
  // Node 0: quad-core with two fast cores and two contended siblings.
  DeviceProfile FastCore = makeCpuProfile("node0-core-fast", 800.0, 25.0,
                                          2000.0, 300.0, 0.55);
  C.Devices.push_back(FastCore);
  C.Devices.push_back(FastCore);
  C.Devices.push_back(withContention(FastCore, /*ActivePeers=*/3, 0.15));
  C.Devices.push_back(withContention(FastCore, /*ActivePeers=*/3, 0.15));
  C.NodeOfRank = {0, 0, 0, 0};

  // Node 1: older, slower dual-core with a late, gentle cliff.
  DeviceProfile SlowCore = makeCpuProfile("node1-core-slow", 300.0, 15.0,
                                          5000.0, 800.0, 0.35);
  C.Devices.push_back(SlowCore);
  C.Devices.push_back(SlowCore);
  C.NodeOfRank.push_back(1);
  C.NodeOfRank.push_back(1);

  if (WithGpu) {
    // Node 2: GPU plus dedicated host core; very fast at large sizes but
    // pays staging overhead and has a device-memory limit with a slower
    // out-of-core mode.
    C.Devices.push_back(makeGpuProfile("node2-gpu", /*Peak=*/4000.0,
                                       /*Staging=*/0.05,
                                       /*MemLimit=*/12000.0,
                                       /*OutOfCore=*/0.5));
    C.NodeOfRank.push_back(2);
  }
  return C;
}

Cluster fupermod::makeUniformCluster(int P, double UnitsPerSec) {
  assert(P > 0 && "cluster must have at least one device");
  Cluster C;
  for (int I = 0; I < P; ++I) {
    C.Devices.push_back(
        makeConstantProfile("uniform-" + std::to_string(I), UnitsPerSec));
    C.NodeOfRank.push_back(I / 4);
  }
  return C;
}

Cluster fupermod::makeHeterogeneousCluster(int P, std::uint64_t Variant) {
  assert(P > 0 && "cluster must have at least one device");
  Cluster C;
  // All parameters come from one deterministic stream, so a (P, Variant)
  // pair names the same platform on every host and in every session.
  SplitMix64 Rng(0xc1057e400ULL ^ Variant);
  for (int I = 0; I < P; ++I) {
    double Peak = Rng.uniform(150.0, 2500.0);
    if (Rng.uniform() < 0.35) {
      C.Devices.push_back(
          makeConstantProfile("const-" + std::to_string(I), Peak));
    } else {
      double Ramp = Rng.uniform(10.0, 60.0);
      double Cliff = Rng.uniform(1200.0, 6000.0);
      double Width = Rng.uniform(150.0, 800.0);
      double Drop = Rng.uniform(0.25, 0.65);
      C.Devices.push_back(makeCpuProfile("cpu-" + std::to_string(I), Peak,
                                         Ramp, Cliff, Width, Drop));
    }
    C.NodeOfRank.push_back(I / 4);
  }
  return C;
}
