//===-- sim/Cluster.h - Simulated heterogeneous clusters --------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cluster descriptions: a set of simulated devices (one per rank), their
/// node placement, and link costs. Presets model the kind of dedicated
/// heterogeneous platforms the paper targets (hierarchies of uniprocessors,
/// multicores and GPU-accelerated nodes on Grid'5000 / the UCD HCL
/// cluster).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SIM_CLUSTER_H
#define FUPERMOD_SIM_CLUSTER_H

#include "mpp/CostModel.h"
#include "sim/SimDevice.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fupermod {

/// Equalization knobs carried by a cluster description's `equalize`
/// line. The sim layer cannot depend on the equalize subsystem, so the
/// spec is plain data; equalize::configFromSpec() converts it into an
/// EqualizeConfig, and the policy name is validated there against the
/// equalizer registry (the parser only checks ranges).
struct EqualizeSpec {
  /// Policy name ("off", "every", "threshold", "arbitrated"); empty =
  /// no `equalize` line (apps keep their legacy per-round balancing).
  std::string Policy;
  /// Trigger when the windowed imbalance exceeds this.
  double TriggerThreshold = 0.25;
  /// Hysteresis re-arm level (clamped to at most TriggerThreshold).
  double ClearThreshold = 0.1;
  /// Rounds after a trigger during which no new trigger fires.
  int Cooldown = 0;
  /// Consecutive breach rounds required before a trigger.
  int MinBreaches = 1;
  /// EWMA weight of the newest sample, in (0, 1].
  double EwmaAlpha = 1.0;
  /// Cadence of the every-K policy.
  int Period = 1;
  /// Benefit horizon (rounds) of the cost-arbitrated policy.
  int HorizonRounds = 10;
};

/// A simulated platform: one device per rank plus communication topology.
struct Cluster {
  /// Ground-truth device profile of each rank.
  std::vector<DeviceProfile> Devices;
  /// Node id of each rank (ranks on a node share the fast link).
  std::vector<int> NodeOfRank;
  /// Shared-memory link between ranks on the same node.
  LinkCost Intra{/*Latency=*/1e-6, /*BytePeriod=*/1.0 / 8e9};
  /// Network link between nodes.
  LinkCost Inter{/*Latency=*/5e-5, /*BytePeriod=*/1.0 / 1e9};
  /// Per-node overrides of the intra-node link (`.cluster` `node` lines);
  /// nodes not listed here use Intra.
  std::map<int, LinkCost> NodeIntra;
  /// Relative measurement noise of every device.
  double NoiseSigma = 0.02;
  /// Base RNG seed; rank r's device uses Seed + r.
  std::uint64_t Seed = 42;
  /// Per-rank fault schedules; may be shorter than Devices (trailing
  /// ranks then have no faults). Attached by makeDevice.
  std::vector<FaultPlan> Faults;
  /// Equalization knobs from the description's `equalize` line (empty
  /// Policy when absent). Engine sessions adopt them when their own
  /// config leaves the policy unset.
  EqualizeSpec Equalize;

  /// Number of ranks.
  int size() const { return static_cast<int>(Devices.size()); }

  /// Cost model for the mpp runtime.
  std::shared_ptr<const CostModel> makeCostModel() const;

  /// Instantiates a noisy SimDevice per rank (deterministic per seed).
  std::vector<SimDevice> makeDevices() const;

  /// The device for one rank, with its fault plan (if any) attached.
  SimDevice makeDevice(int Rank) const;

  /// Appends \p E to rank \p Rank's fault schedule.
  void addFault(int Rank, FaultEvent E);
};

/// Two devices with very different speed functions; used for the Fig. 3
/// partial-FPM construction experiment.
Cluster makeTwoDeviceCluster();

/// A heterogeneous node mix reminiscent of the UCD HCL cluster: fast and
/// slow CPU cores (with different cache cliffs), a contended multicore
/// pair, and a GPU with limited device memory. \p WithGpu controls the
/// accelerator's presence.
Cluster makeHclLikeCluster(bool WithGpu = true);

/// \p P identical constant-speed devices (homogeneous control case).
Cluster makeUniformCluster(int P, double UnitsPerSec);

/// \p P devices with deterministically varied speed functions — a mix of
/// constant and cpu-like profiles (peaks, cliffs and ramps drawn from a
/// SplitMix64 stream seeded with \p Variant). The scalable platform of
/// the build-throughput bench and the partitioner property tests: every
/// (P, Variant) pair names the same cluster forever.
Cluster makeHeterogeneousCluster(int P, std::uint64_t Variant = 1);

} // namespace fupermod

#endif // FUPERMOD_SIM_CLUSTER_H
