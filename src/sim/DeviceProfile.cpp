//===-- sim/DeviceProfile.cpp - Ground-truth device speed -----------------===//

#include "sim/DeviceProfile.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

DeviceProfile::DeviceProfile(std::string Name,
                             std::function<double(double)> UnitsPerSec,
                             double MemoryLimitUnits, double OutOfCoreFactor)
    : Name(std::move(Name)), UnitsPerSec(std::move(UnitsPerSec)),
      MemoryLimitUnits(MemoryLimitUnits), OutOfCoreFactor(OutOfCoreFactor) {
  assert(this->UnitsPerSec && "null speed function");
  assert(MemoryLimitUnits > 0.0 && "memory limit must be positive");
  assert(OutOfCoreFactor >= 0.0 && OutOfCoreFactor <= 1.0 &&
         "out-of-core factor must be in [0, 1]");
}

double DeviceProfile::speed(double Units) const {
  assert(UnitsPerSec && "profile not initialised");
  assert(Units > 0.0 && "speed is defined for positive sizes");
  double S = UnitsPerSec(Units);
  assert(S > 0.0 && "speed function must be positive");
  if (Units > MemoryLimitUnits)
    S *= OutOfCoreFactor;
  return S;
}

double DeviceProfile::time(double Units) const {
  if (Units <= 0.0)
    return 0.0;
  return Units / speed(Units);
}

bool DeviceProfile::canExecute(double Units) const {
  return Units <= MemoryLimitUnits || OutOfCoreFactor > 0.0;
}

namespace {

double sigmoid(double X) { return 1.0 / (1.0 + std::exp(-X)); }

} // namespace

DeviceProfile fupermod::makeConstantProfile(std::string Name,
                                            double UnitsPerSec) {
  assert(UnitsPerSec > 0.0 && "speed must be positive");
  return DeviceProfile(std::move(Name),
                       [UnitsPerSec](double) { return UnitsPerSec; });
}

DeviceProfile fupermod::makeCpuProfile(std::string Name,
                                       double PeakUnitsPerSec,
                                       double RampUnits, double CliffUnits,
                                       double CliffWidth, double DropFactor) {
  assert(PeakUnitsPerSec > 0.0 && RampUnits >= 0.0 && CliffUnits > 0.0 &&
         CliffWidth > 0.0 && "invalid CPU profile parameters");
  assert(DropFactor >= 0.0 && DropFactor < 1.0 && "drop factor in [0, 1)");
  return DeviceProfile(
      std::move(Name),
      [=](double D) {
        double Ramp = RampUnits > 0.0 ? D / (D + RampUnits) : 1.0;
        double Drop = 1.0 - DropFactor * sigmoid((D - CliffUnits) /
                                                 CliffWidth);
        return PeakUnitsPerSec * Ramp * Drop;
      });
}

DeviceProfile fupermod::makeGpuProfile(std::string Name,
                                       double PeakUnitsPerSec,
                                       double StagingSeconds,
                                       double MemLimitUnits,
                                       double OutOfCoreFactor) {
  assert(PeakUnitsPerSec > 0.0 && StagingSeconds >= 0.0 &&
         MemLimitUnits > 0.0 && "invalid GPU profile parameters");
  return DeviceProfile(
      std::move(Name),
      [=](double D) {
        // Combined device+host speed: the PCIe staging overhead is paid
        // once per kernel invocation, so speed grows with problem size.
        double Time = StagingSeconds + D / PeakUnitsPerSec;
        return D / Time;
      },
      MemLimitUnits, OutOfCoreFactor);
}

DeviceProfile fupermod::makeNetlibBlasProfile(double UnitFlops) {
  assert(UnitFlops > 0.0 && "unit complexity must be positive");
  // Shape of Fig. 2: plateau near 5 GFLOPS, gentle ripple, and a decline
  // past ~3000 units as the working set exceeds cache.
  return DeviceProfile("netlib-blas", [UnitFlops](double D) {
    double PeakFlops = 5.0e9;
    double Ramp = D / (D + 40.0);
    double Drop = 1.0 - 0.55 * sigmoid((D - 3200.0) / 450.0);
    double Ripple = 1.0 + 0.03 * std::sin(D / 180.0);
    double Flops = PeakFlops * Ramp * Drop * Ripple;
    return Flops / UnitFlops;
  });
}

DeviceProfile fupermod::withContention(const DeviceProfile &Base,
                                       int ActivePeers, double Alpha) {
  assert(ActivePeers >= 0 && Alpha >= 0.0 && "invalid contention");
  double Scale = 1.0 / (1.0 + Alpha * static_cast<double>(ActivePeers));
  std::string Name = Base.name() + "+contended";
  // Capture the base profile by value; its speed() already handles the
  // memory limit, so the derived profile keeps an unlimited window and
  // delegates.
  return DeviceProfile(std::move(Name), [Base, Scale](double D) {
    return Base.speed(D) * Scale;
  });
}
