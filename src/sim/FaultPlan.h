//===-- sim/FaultPlan.h - Scriptable device fault injection -----*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scriptable fault injection for simulated devices. The paper assumes a
/// *dedicated* platform, but its dynamic algorithms (Section 4.4) exist
/// precisely because real devices drift, spike and die. A FaultPlan
/// attaches deterministic fault events to a SimDevice so the benchmark
/// machinery, the dynamic balancer and the SPMD runtime can be exercised
/// under exactly those conditions:
///
///  - LatencySpike: one measurement (optionally every Period-th) runs
///    Factor times slower — a transient scheduler/thermal hiccup;
///  - Slowdown: from the trigger on, every measurement runs Factor times
///    slower — permanent degradation (thermal throttling, a co-tenant);
///  - Hang: one measurement blocks for HangSeconds before completing — a
///    wedged driver that eventually recovers;
///  - Fail: from the trigger on, the device returns no timing at all —
///    hard failure (device lost, rank must be excluded).
///
/// Events trigger deterministically on (call index, accumulated busy
/// time), so every experiment remains bit-reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SIM_FAULTPLAN_H
#define FUPERMOD_SIM_FAULTPLAN_H

#include <vector>

namespace fupermod {

/// The kinds of injectable device faults.
enum class FaultKind { LatencySpike, Slowdown, Hang, Fail };

/// One scripted fault. An event triggers on the first measurement call
/// whose 0-based index is >= AfterCalls AND whose accumulated device busy
/// time is >= AfterBusyTime (both default to 0 = immediately).
struct FaultEvent {
  FaultKind Kind = FaultKind::LatencySpike;
  /// Call-count component of the trigger (0-based measurement index).
  int AfterCalls = 0;
  /// Busy-time component of the trigger (seconds the device has spent
  /// executing measurements so far).
  double AfterBusyTime = 0.0;
  /// LatencySpike / Slowdown: multiply the measured time by this.
  double Factor = 1.0;
  /// Hang: seconds the call blocks on top of the normal execution time.
  double HangSeconds = 0.0;
  /// LatencySpike only: 0 = spike exactly once; N >= 1 = spike every
  /// N-th call from AfterCalls on.
  int Period = 0;
};

/// A deterministic schedule of fault events for one device.
struct FaultPlan {
  std::vector<FaultEvent> Events;

  bool empty() const { return Events.empty(); }

  /// Convenience factories mirroring the `.cluster` fault syntax.
  static FaultEvent spike(int AfterCalls, double Factor, int Period = 0);
  static FaultEvent slowdown(double AfterBusyTime, double Factor);
  static FaultEvent hang(int AfterCalls, double HangSeconds);
  static FaultEvent fail(int AfterCalls);
};

/// Health classification of one simulated measurement.
enum class MeasureStatus {
  /// Normal (possibly spiked or slowed) measurement.
  Ok,
  /// The call blocked for a scripted hang before completing; Seconds
  /// includes the hang.
  Hung,
  /// The device is hard-failed: no timing was produced at all.
  Failed,
};

/// Outcome of one simulated measurement.
struct Measurement {
  /// Wall-seconds the call took (0 when Status == Failed).
  double Seconds = 0.0;
  MeasureStatus Status = MeasureStatus::Ok;
};

} // namespace fupermod

#endif // FUPERMOD_SIM_FAULTPLAN_H
