//===-- sim/DeviceProfile.h - Ground-truth device speed ---------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth speed functions for simulated heterogeneous devices — the
/// substitution for real Grid'5000 CPUs/GPUs (see DESIGN.md). A profile
/// maps problem size (in computation units) to speed (units/second) and
/// captures the phenomena that motivate functional performance models:
///
///  - ramp-up at small sizes (per-call overhead amortisation),
///  - a plateau at peak speed,
///  - a drop ("cliff") when the working set leaves a cache level,
///  - for GPUs: host-device staging overhead and a device-memory limit,
///    optionally with a slower out-of-core mode beyond it,
///  - multicore resource contention as a speed-scaling factor.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SIM_DEVICEPROFILE_H
#define FUPERMOD_SIM_DEVICEPROFILE_H

#include <functional>
#include <limits>
#include <string>

namespace fupermod {

/// Immutable description of one simulated device's true performance.
class DeviceProfile {
public:
  DeviceProfile() = default;

  /// \p UnitsPerSec maps problem size (units) to speed; must be positive
  /// for every positive size up to the memory limit.
  DeviceProfile(std::string Name, std::function<double(double)> UnitsPerSec,
                double MemoryLimitUnits =
                    std::numeric_limits<double>::infinity(),
                double OutOfCoreFactor = 1.0);

  /// Human-readable device name.
  const std::string &name() const { return Name; }

  /// True speed (units/second) at problem size \p Units. Beyond the memory
  /// limit the speed is scaled by the out-of-core factor.
  double speed(double Units) const;

  /// True execution time of \p Units computation units.
  double time(double Units) const;

  /// Largest problem size that fits device memory.
  double memoryLimitUnits() const { return MemoryLimitUnits; }

  /// False when the size exceeds the memory limit and the device has no
  /// out-of-core mode.
  bool canExecute(double Units) const;

private:
  std::string Name = "unnamed";
  std::function<double(double)> UnitsPerSec;
  double MemoryLimitUnits = std::numeric_limits<double>::infinity();
  double OutOfCoreFactor = 1.0;
};

/// Constant-speed device (the CPM assumption holds exactly).
DeviceProfile makeConstantProfile(std::string Name, double UnitsPerSec);

/// CPU-like profile: ramp-up over roughly \p RampUnits, peak of
/// \p PeakUnitsPerSec, and a smooth drop by \p DropFactor (e.g. 0.6 keeps
/// 40% of peak) centred at \p CliffUnits with width \p CliffWidth.
DeviceProfile makeCpuProfile(std::string Name, double PeakUnitsPerSec,
                             double RampUnits, double CliffUnits,
                             double CliffWidth, double DropFactor);

/// GPU-like combined profile (GPU plus its dedicated host core, paper
/// Section 4.1): time = staging overhead + units/peak, so speed grows with
/// size; beyond \p MemLimitUnits the device either fails
/// (\p OutOfCoreFactor = 0) or runs slower by that factor.
DeviceProfile makeGpuProfile(std::string Name, double PeakUnitsPerSec,
                             double StagingSeconds, double MemLimitUnits,
                             double OutOfCoreFactor);

/// Reproduces the shape of the paper's Fig. 2 "Netlib BLAS speed
/// function": rises to a plateau of about 5 G-ops/s (scaled to
/// units/second via \p UnitFlops) and falls off past ~3000 units.
DeviceProfile makeNetlibBlasProfile(double UnitFlops = 1e6);

/// Derives the speed function of one process when \p ActivePeers other
/// processes share the node: speed scaled by 1 / (1 + Alpha * ActivePeers).
/// This matches the paper's measurement methodology, where contended speed
/// is measured with all co-located cores loaded simultaneously.
DeviceProfile withContention(const DeviceProfile &Base, int ActivePeers,
                             double Alpha);

} // namespace fupermod

#endif // FUPERMOD_SIM_DEVICEPROFILE_H
