//===-- sim/SimDevice.cpp - Simulated device with noise -------------------===//

#include "sim/SimDevice.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace fupermod;

SimDevice::SimDevice(DeviceProfile Profile, double NoiseSigma,
                     std::uint64_t Seed)
    : Profile(std::move(Profile)), NoiseSigma(NoiseSigma), Rng(Seed) {
  assert(NoiseSigma >= 0.0 && "noise sigma must be non-negative");
}

void SimDevice::setFaultPlan(FaultPlan NewPlan) {
  Plan = std::move(NewPlan);
  Fired.assign(Plan.Events.size(), false);
}

double SimDevice::measureTime(double Units) {
  Measurement M = measure(Units);
  if (M.Status == MeasureStatus::Failed)
    return std::numeric_limits<double>::infinity();
  return M.Seconds;
}

Measurement SimDevice::measure(double Units) {
  // Trigger predicate: both the call-count and busy-time components must
  // be satisfied, evaluated against state *before* this call runs.
  auto Triggered = [&](const FaultEvent &E) {
    return Calls >= E.AfterCalls && BusyTime >= E.AfterBusyTime;
  };

  // Hard failure dominates everything: once latched, the device produces
  // no timings at all.
  for (std::size_t I = 0; I < Plan.Events.size(); ++I)
    if (Plan.Events[I].Kind == FaultKind::Fail && Triggered(Plan.Events[I]))
      HardFailed = true;
  if (HardFailed) {
    ++Calls;
    return {0.0, MeasureStatus::Failed};
  }

  // Latch any newly-triggered permanent slowdowns before timing the call.
  for (std::size_t I = 0; I < Plan.Events.size(); ++I) {
    const FaultEvent &E = Plan.Events[I];
    if (E.Kind == FaultKind::Slowdown && !Fired[I] && Triggered(E)) {
      Fired[I] = true;
      SlowFactor *= E.Factor;
    }
  }

  double Seconds = trueTime(Units);
  if (NoiseSigma > 0.0) {
    double Factor = Rng.normal(1.0, NoiseSigma);
    // Clamp to avoid absurd or negative samples from the normal tail.
    Factor =
        std::clamp(Factor, 1.0 - 4.0 * NoiseSigma, 1.0 + 4.0 * NoiseSigma);
    Factor = std::max(Factor, 0.05);
    Seconds *= Factor;
  }
  Seconds *= SlowFactor;

  Measurement M;
  M.Status = MeasureStatus::Ok;

  for (std::size_t I = 0; I < Plan.Events.size(); ++I) {
    const FaultEvent &E = Plan.Events[I];
    if (!Triggered(E))
      continue;
    switch (E.Kind) {
    case FaultKind::LatencySpike:
      if (E.Period > 0) {
        if ((Calls - E.AfterCalls) % E.Period == 0)
          Seconds *= E.Factor;
      } else if (!Fired[I]) {
        Fired[I] = true;
        Seconds *= E.Factor;
      }
      break;
    case FaultKind::Hang:
      if (!Fired[I]) {
        Fired[I] = true;
        Seconds += E.HangSeconds;
        M.Status = MeasureStatus::Hung;
      }
      break;
    case FaultKind::Slowdown:
    case FaultKind::Fail:
      break; // Handled above.
    }
  }

  M.Seconds = Seconds;
  BusyTime += Seconds;
  ++Calls;
  return M;
}
