//===-- sim/SimDevice.cpp - Simulated device with noise -------------------===//

#include "sim/SimDevice.h"

#include <algorithm>
#include <cassert>

using namespace fupermod;

SimDevice::SimDevice(DeviceProfile Profile, double NoiseSigma,
                     std::uint64_t Seed)
    : Profile(std::move(Profile)), NoiseSigma(NoiseSigma), Rng(Seed) {
  assert(NoiseSigma >= 0.0 && "noise sigma must be non-negative");
}

double SimDevice::measureTime(double Units) {
  double True = trueTime(Units);
  if (NoiseSigma == 0.0)
    return True;
  double Factor = Rng.normal(1.0, NoiseSigma);
  // Clamp to avoid absurd or negative samples from the normal tail.
  Factor = std::clamp(Factor, 1.0 - 4.0 * NoiseSigma, 1.0 + 4.0 * NoiseSigma);
  Factor = std::max(Factor, 0.05);
  return True * Factor;
}
