//===-- sim/FaultPlan.cpp - Scriptable device fault injection -------------===//

#include "sim/FaultPlan.h"

using namespace fupermod;

FaultEvent FaultPlan::spike(int AfterCalls, double Factor, int Period) {
  FaultEvent E;
  E.Kind = FaultKind::LatencySpike;
  E.AfterCalls = AfterCalls;
  E.Factor = Factor;
  E.Period = Period;
  return E;
}

FaultEvent FaultPlan::slowdown(double AfterBusyTime, double Factor) {
  FaultEvent E;
  E.Kind = FaultKind::Slowdown;
  E.AfterBusyTime = AfterBusyTime;
  E.Factor = Factor;
  return E;
}

FaultEvent FaultPlan::hang(int AfterCalls, double HangSeconds) {
  FaultEvent E;
  E.Kind = FaultKind::Hang;
  E.AfterCalls = AfterCalls;
  E.HangSeconds = HangSeconds;
  return E;
}

FaultEvent FaultPlan::fail(int AfterCalls) {
  FaultEvent E;
  E.Kind = FaultKind::Fail;
  E.AfterCalls = AfterCalls;
  return E;
}
