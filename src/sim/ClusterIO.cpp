//===-- sim/ClusterIO.cpp - Cluster description files ---------------------===//

#include "sim/ClusterIO.h"

#include <fstream>
#include <cstdlib>
#include <sstream>

using namespace fupermod;

namespace {

bool fail(std::string *Error, const std::string &Reason) {
  if (Error)
    *Error = Reason;
  return false;
}

/// Parses one `device <node> <form> <name> ...` line; appends to \p Out.
bool parseDevice(std::istringstream &LS, Cluster &Out, std::string *Error) {
  int Node = -1;
  std::string Form, Name;
  if (!(LS >> Node >> Form >> Name) || Node < 0)
    return fail(Error, "malformed device line");

  if (Form == "constant") {
    double Speed = 0.0;
    if (!(LS >> Speed) || Speed <= 0.0)
      return fail(Error, "constant device needs a positive speed");
    Out.Devices.push_back(makeConstantProfile(Name, Speed));
  } else if (Form == "cpu" || Form == "contended") {
    double Peak, Ramp, Cliff, Width, Drop;
    if (!(LS >> Peak >> Ramp >> Cliff >> Width >> Drop) || Peak <= 0.0 ||
        Cliff <= 0.0 || Width <= 0.0 || Drop < 0.0 || Drop >= 1.0)
      return fail(Error, "malformed cpu device parameters");
    DeviceProfile P = makeCpuProfile(Name, Peak, Ramp, Cliff, Width, Drop);
    if (Form == "contended") {
      int Peers = 0;
      double Alpha = 0.0;
      if (!(LS >> Peers >> Alpha) || Peers < 0 || Alpha < 0.0)
        return fail(Error, "malformed contention parameters");
      P = withContention(P, Peers, Alpha);
    }
    Out.Devices.push_back(std::move(P));
  } else if (Form == "gpu") {
    double Peak, Staging, MemLimit, Ooc;
    if (!(LS >> Peak >> Staging >> MemLimit >> Ooc) || Peak <= 0.0 ||
        Staging < 0.0 || MemLimit <= 0.0 || Ooc < 0.0 || Ooc > 1.0)
      return fail(Error, "malformed gpu device parameters");
    Out.Devices.push_back(makeGpuProfile(Name, Peak, Staging, MemLimit,
                                         Ooc));
  } else {
    return fail(Error, "unknown device form '" + Form + "'");
  }
  Out.NodeOfRank.push_back(Node);
  return true;
}

/// Parses one `fault <rank> <kind> ...` line; appends to \p Out.Faults.
/// Rank bounds are checked by the caller once all devices are known.
bool parseFault(std::istringstream &LS, Cluster &Out, std::string *Error) {
  int Rank = -1;
  std::string Kind;
  if (!(LS >> Rank >> Kind) || Rank < 0)
    return fail(Error, "malformed fault line");

  FaultEvent E;
  if (Kind == "spike") {
    int AfterCalls = 0, Period = 0;
    double Factor = 0.0;
    if (!(LS >> AfterCalls >> Factor) || AfterCalls < 0 || Factor <= 0.0)
      return fail(Error, "spike fault needs <after_calls> <factor>");
    if (!(LS >> Period))
      Period = 0; // The period is optional.
    if (Period < 0)
      return fail(Error, "spike period must be non-negative");
    E = FaultPlan::spike(AfterCalls, Factor, Period);
  } else if (Kind == "slowdown") {
    double AfterBusy = 0.0, Factor = 0.0;
    if (!(LS >> AfterBusy >> Factor) || AfterBusy < 0.0 || Factor <= 0.0)
      return fail(Error, "slowdown fault needs <after_busy_s> <factor>");
    E = FaultPlan::slowdown(AfterBusy, Factor);
  } else if (Kind == "hang") {
    int AfterCalls = 0;
    double Seconds = 0.0;
    if (!(LS >> AfterCalls >> Seconds) || AfterCalls < 0 || Seconds < 0.0)
      return fail(Error, "hang fault needs <after_calls> <hang_seconds>");
    E = FaultPlan::hang(AfterCalls, Seconds);
  } else if (Kind == "fail") {
    int AfterCalls = 0;
    if (!(LS >> AfterCalls) || AfterCalls < 0)
      return fail(Error, "fail fault needs <after_calls>");
    E = FaultPlan::fail(AfterCalls);
  } else {
    return fail(Error, "unknown fault kind '" + Kind + "'");
  }
  Out.addFault(Rank, E);
  return true;
}

/// Parses one `equalize <policy> [knob value]...` line into
/// \p Out.Equalize. Knob ranges are checked here (the parser is the
/// tools' first validation line); the policy name resolves against the
/// equalizer registry later, at session creation.
bool parseEqualize(std::istringstream &LS, Cluster &Out, std::string *Error) {
  EqualizeSpec &E = Out.Equalize;
  if (!E.Policy.empty())
    return fail(Error, "duplicate equalize line");
  if (!(LS >> E.Policy))
    return fail(Error, "equalize line needs a policy name");

  std::string Key;
  while (LS >> Key) {
    double Value = 0.0;
    if (!(LS >> Value))
      return fail(Error, "equalize knob '" + Key + "' needs a value");
    bool Integral = Value == static_cast<double>(static_cast<long>(Value));
    if (Key == "threshold") {
      if (Value < 0.0)
        return fail(Error, "equalize threshold must be non-negative");
      E.TriggerThreshold = Value;
    } else if (Key == "clear") {
      if (Value < 0.0)
        return fail(Error, "equalize clear threshold must be non-negative");
      E.ClearThreshold = Value;
    } else if (Key == "cooldown") {
      if (Value < 0.0 || !Integral)
        return fail(Error,
                    "equalize cooldown must be a non-negative integer");
      E.Cooldown = static_cast<int>(Value);
    } else if (Key == "breaches") {
      if (Value < 1.0 || !Integral)
        return fail(Error, "equalize breaches must be a positive integer");
      E.MinBreaches = static_cast<int>(Value);
    } else if (Key == "alpha") {
      if (!(Value > 0.0) || Value > 1.0)
        return fail(Error, "equalize alpha must be in (0, 1]");
      E.EwmaAlpha = Value;
    } else if (Key == "period") {
      if (Value < 1.0 || !Integral)
        return fail(Error, "equalize period must be a positive integer");
      E.Period = static_cast<int>(Value);
    } else if (Key == "horizon") {
      if (Value < 0.0 || !Integral)
        return fail(Error,
                    "equalize horizon must be a non-negative integer");
      E.HorizonRounds = static_cast<int>(Value);
    } else {
      return fail(Error, "unknown equalize knob '" + Key + "'");
    }
  }
  return true;
}

} // namespace

std::optional<Cluster> fupermod::parseCluster(std::istream &IS,
                                              std::string *Error) {
  Cluster Out;
  Out.Devices.clear();
  Out.NodeOfRank.clear();
  std::string Line;
  while (std::getline(IS, Line)) {
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    std::istringstream LS(Line);
    std::string Key;
    if (!(LS >> Key))
      continue; // Blank or comment-only line.
    if (Key == "noise") {
      if (!(LS >> Out.NoiseSigma) || Out.NoiseSigma < 0.0) {
        fail(Error, "malformed noise line");
        return std::nullopt;
      }
    } else if (Key == "seed") {
      if (!(LS >> Out.Seed)) {
        fail(Error, "malformed seed line");
        return std::nullopt;
      }
    } else if (Key == "intra" || Key == "inter") {
      double Latency = 0.0, Bandwidth = 0.0;
      if (!(LS >> Latency >> Bandwidth) || Latency < 0.0 ||
          Bandwidth <= 0.0) {
        fail(Error, "malformed link line");
        return std::nullopt;
      }
      LinkCost &Link = Key == "intra" ? Out.Intra : Out.Inter;
      Link.Latency = Latency;
      Link.BytePeriod = 1.0 / Bandwidth;
    } else if (Key == "node") {
      int Node = -1;
      double Latency = 0.0, Bandwidth = 0.0;
      if (!(LS >> Node >> Latency >> Bandwidth) || Node < 0 ||
          Latency < 0.0 || Bandwidth <= 0.0) {
        fail(Error, "malformed node line");
        return std::nullopt;
      }
      if (!Out.NodeIntra.emplace(Node, LinkCost{Latency, 1.0 / Bandwidth})
               .second) {
        fail(Error, "duplicate node line for node " + std::to_string(Node));
        return std::nullopt;
      }
    } else if (Key == "device") {
      if (!parseDevice(LS, Out, Error))
        return std::nullopt;
    } else if (Key == "fault") {
      if (!parseFault(LS, Out, Error))
        return std::nullopt;
    } else if (Key == "equalize") {
      if (!parseEqualize(LS, Out, Error))
        return std::nullopt;
    } else {
      fail(Error, "unknown key '" + Key + "'");
      return std::nullopt;
    }
  }
  if (Out.Devices.empty()) {
    fail(Error, "cluster has no devices");
    return std::nullopt;
  }
  if (Out.Faults.size() > Out.Devices.size()) {
    fail(Error, "fault line references a rank with no device");
    return std::nullopt;
  }
  for (const auto &[Node, Link] : Out.NodeIntra) {
    (void)Link;
    bool Known = false;
    for (int N : Out.NodeOfRank)
      Known = Known || N == Node;
    if (!Known) {
      fail(Error, "node line for node " + std::to_string(Node) +
                      " which has no devices");
      return std::nullopt;
    }
  }
  return Out;
}

std::optional<Cluster> fupermod::loadCluster(const std::string &Path,
                                             std::string *Error) {
  std::ifstream IS(Path);
  if (!IS) {
    fail(Error, "cannot open '" + Path + "'");
    return std::nullopt;
  }
  return parseCluster(IS, Error);
}

std::optional<Cluster> fupermod::resolveCluster(const std::string &Spec,
                                                std::string *Error) {
  if (Spec == "two-device")
    return makeTwoDeviceCluster();
  if (Spec == "hcl")
    return makeHclLikeCluster(true);
  if (Spec == "hcl-nogpu")
    return makeHclLikeCluster(false);
  if (Spec.rfind("uniform", 0) == 0 && Spec.size() > 7) {
    int P = std::atoi(Spec.c_str() + 7);
    if (P > 0)
      return makeUniformCluster(P, 100.0);
  }
  return loadCluster(Spec, Error);
}
