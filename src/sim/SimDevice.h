//===-- sim/SimDevice.h - Simulated device with noise -----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated device: a ground-truth profile plus reproducible
/// measurement noise. Repeated measurements of the same size scatter
/// around the true time, which is what forces the benchmark machinery to
/// repeat measurements until the confidence interval is tight (paper
/// Section 4.1).
///
/// A device may also carry a FaultPlan: a deterministic schedule of
/// latency spikes, slowdowns, hangs and hard failures (see
/// sim/FaultPlan.h). Faulted measurements are reported through
/// measure(), which returns both the time and a health status.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SIM_SIMDEVICE_H
#define FUPERMOD_SIM_SIMDEVICE_H

#include "sim/DeviceProfile.h"
#include "sim/FaultPlan.h"
#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace fupermod {

/// One device instance with private RNG state for measurement noise.
class SimDevice {
public:
  /// \p NoiseSigma is the relative standard deviation of measured times.
  explicit SimDevice(DeviceProfile Profile, double NoiseSigma = 0.0,
                     std::uint64_t Seed = 1);

  /// The device's ground-truth profile.
  const DeviceProfile &profile() const { return Profile; }

  /// Noise-free execution time for \p Units.
  double trueTime(double Units) const { return Profile.time(Units); }

  /// One noisy measurement of the execution time for \p Units; advances
  /// the RNG, so successive calls scatter independently. Never returns a
  /// non-positive time. With a fault plan attached, a hung call's time
  /// includes the hang and a hard-failed device returns +infinity.
  double measureTime(double Units);

  /// Like measureTime but reports the health of the call alongside the
  /// time, so callers can distinguish a hang (time includes the scripted
  /// stall) from a hard failure (no timing at all, Seconds == 0).
  Measurement measure(double Units);

  /// Attach a deterministic fault schedule. Replaces any previous plan
  /// and resets its fired-state; call counters and busy time persist.
  void setFaultPlan(FaultPlan Plan);

  /// True once a Fail event has triggered; every subsequent measurement
  /// reports MeasureStatus::Failed.
  bool hardFailed() const { return HardFailed; }

  /// Number of measurement calls made so far (hard-failed calls count).
  int calls() const { return Calls; }

  /// Accumulated seconds the device has spent executing measurements.
  double busyTime() const { return BusyTime; }

private:
  DeviceProfile Profile;
  double NoiseSigma;
  SplitMix64 Rng;

  FaultPlan Plan;
  std::vector<bool> Fired; // One flag per Plan event (one-shot events).
  bool HardFailed = false;
  double SlowFactor = 1.0; // Product of all triggered Slowdown factors.
  int Calls = 0;
  double BusyTime = 0.0;
};

} // namespace fupermod

#endif // FUPERMOD_SIM_SIMDEVICE_H
