//===-- sim/SimDevice.h - Simulated device with noise -----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated device: a ground-truth profile plus reproducible
/// measurement noise. Repeated measurements of the same size scatter
/// around the true time, which is what forces the benchmark machinery to
/// repeat measurements until the confidence interval is tight (paper
/// Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SIM_SIMDEVICE_H
#define FUPERMOD_SIM_SIMDEVICE_H

#include "sim/DeviceProfile.h"
#include "support/Random.h"

#include <cstdint>

namespace fupermod {

/// One device instance with private RNG state for measurement noise.
class SimDevice {
public:
  /// \p NoiseSigma is the relative standard deviation of measured times.
  explicit SimDevice(DeviceProfile Profile, double NoiseSigma = 0.0,
                     std::uint64_t Seed = 1);

  /// The device's ground-truth profile.
  const DeviceProfile &profile() const { return Profile; }

  /// Noise-free execution time for \p Units.
  double trueTime(double Units) const { return Profile.time(Units); }

  /// One noisy measurement of the execution time for \p Units; advances
  /// the RNG, so successive calls scatter independently. Never returns a
  /// non-positive time.
  double measureTime(double Units);

private:
  DeviceProfile Profile;
  double NoiseSigma;
  SplitMix64 Rng;
};

} // namespace fupermod

#endif // FUPERMOD_SIM_SIMDEVICE_H
