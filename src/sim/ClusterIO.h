//===-- sim/ClusterIO.h - Cluster description files -------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text-format descriptions of simulated platforms, so the command-line
/// tools and experiments can run against user-defined clusters instead of
/// only the built-in presets. Line-oriented format; '#' starts a comment:
///
///   noise 0.02
///   seed 42
///   intra 1e-6 8e9            # latency(s) bandwidth(bytes/s)
///   inter 5e-5 1e9
///   node 1 5e-7 2e10          # node 1's intra link beats the default
///   device 0 constant fast 800
///   device 0 cpu core 800 25 2000 300 0.55
///   device 1 gpu accel 4000 0.05 12000 0.5
///   device 0 contended sibling 800 25 2000 300 0.55 3 0.15
///   fault 1 slowdown 30 4.0     # rank 1 runs 4x slower after 30s busy
///   equalize arbitrated threshold 0.3 cooldown 5
///
/// `intra`/`inter` set the default shared-memory and network links of the
/// platform's two-level cost model; a `node <id> <latency> <bandwidth>`
/// line overrides the intra-node link of one node (the id must have at
/// least one device). The node placement (first column of each device
/// line) also feeds CostModel::topology(), which the mpp runtime uses to
/// select two-level collectives at scale.
///
/// Device forms:
///   constant  <name> <units_per_sec>
///   cpu       <name> <peak> <ramp> <cliff> <width> <drop>
///   gpu       <name> <peak> <staging_s> <mem_limit> <out_of_core>
///   contended <name> <peak> <ramp> <cliff> <width> <drop> <peers> <alpha>
///
/// Fault forms (rank must refer to a device declared in the same file):
///   fault <rank> spike    <after_calls> <factor> [period]
///   fault <rank> slowdown <after_busy_s> <factor>
///   fault <rank> hang     <after_calls> <hang_seconds>
///   fault <rank> fail     <after_calls>
///
/// spike multiplies one measurement (or every period-th from after_calls
/// on) by factor; slowdown permanently multiplies all later measurements;
/// hang stalls one measurement for hang_seconds; fail makes the device
/// return no timings from the triggering call on. See sim/FaultPlan.h.
///
/// An `equalize <policy> [knob value]...` line configures the dynamic
/// equalization subsystem ("off", "every", "threshold", "arbitrated";
/// the name resolves against the policy registry at session creation).
/// Knobs: threshold, clear (trigger/clear imbalance thresholds),
/// cooldown (rounds), breaches (consecutive breaches to fire), alpha
/// (EWMA weight in (0,1]), period ("every" cadence), horizon (benefit
/// amortization rounds). Out-of-range values are parse errors naming the
/// knob. At most one equalize line per file.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SIM_CLUSTERIO_H
#define FUPERMOD_SIM_CLUSTERIO_H

#include "sim/Cluster.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace fupermod {

/// Parses a cluster description. Returns std::nullopt on malformed input
/// and writes a one-line reason to \p Error when provided.
std::optional<Cluster> parseCluster(std::istream &IS,
                                    std::string *Error = nullptr);

/// Reads a cluster description from \p Path.
std::optional<Cluster> loadCluster(const std::string &Path,
                                   std::string *Error = nullptr);

/// Resolves a cluster source for tools: a preset name ("two-device",
/// "hcl", "hcl-nogpu", "uniformN") or a path to a description file.
std::optional<Cluster> resolveCluster(const std::string &Spec,
                                      std::string *Error = nullptr);

} // namespace fupermod

#endif // FUPERMOD_SIM_CLUSTERIO_H
