//===-- solver/NewtonSolver.cpp - Multidimensional Newton -----------------===//

#include "solver/NewtonSolver.h"

#include "solver/LinearAlgebra.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

namespace {

void clampToBounds(std::vector<double> &X, const NewtonOptions &Options) {
  if (!Options.LowerBounds.empty()) {
    assert(Options.LowerBounds.size() == X.size() && "bad lower bounds");
    for (std::size_t I = 0; I < X.size(); ++I)
      X[I] = std::max(X[I], Options.LowerBounds[I]);
  }
  if (!Options.UpperBounds.empty()) {
    assert(Options.UpperBounds.size() == X.size() && "bad upper bounds");
    for (std::size_t I = 0; I < X.size(); ++I)
      X[I] = std::min(X[I], Options.UpperBounds[I]);
  }
}

void numericJacobian(const VectorFunction &F, std::span<const double> X,
                     std::span<const double> FX, std::span<double> Out) {
  std::size_t N = X.size();
  std::vector<double> XP(X.begin(), X.end());
  std::vector<double> FP(N, 0.0);
  for (std::size_t Col = 0; Col < N; ++Col) {
    double H = 1e-7 * std::max(1.0, std::fabs(X[Col]));
    double Saved = XP[Col];
    XP[Col] = Saved + H;
    F(XP, FP);
    XP[Col] = Saved;
    for (std::size_t Row = 0; Row < N; ++Row)
      Out[Row * N + Col] = (FP[Row] - FX[Row]) / H;
  }
}

} // namespace

NewtonResult fupermod::solveNewton(const VectorFunction &F,
                                   std::span<const double> X0,
                                   const NewtonOptions &Options,
                                   const JacobianFunction &Jacobian) {
  std::size_t N = X0.size();
  assert(N > 0 && "empty system");

  NewtonResult Result;
  Result.X.assign(X0.begin(), X0.end());
  clampToBounds(Result.X, Options);

  std::vector<double> FX(N, 0.0);
  std::vector<double> Jac(N * N, 0.0);
  std::vector<double> Trial(N, 0.0);
  std::vector<double> FTrial(N, 0.0);

  F(Result.X, FX);
  double ResNorm = norm2(FX);

  for (int It = 0; It < Options.MaxIterations; ++It) {
    Result.Iterations = It;
    Result.ResidualNorm = normInf(FX);
    if (Result.ResidualNorm <= Options.ResidualTolerance) {
      Result.Converged = true;
      return Result;
    }

    if (Jacobian)
      Jacobian(Result.X, Jac);
    else
      numericJacobian(F, Result.X, FX, Jac);

    // Newton step: J * Step = -F.
    std::vector<double> NegF(N);
    for (std::size_t I = 0; I < N; ++I)
      NegF[I] = -FX[I];
    auto Step = luSolve(Jac, NegF);
    if (!Step)
      return Result; // Singular Jacobian: report the best iterate.

    // Backtracking line search on the Euclidean residual norm.
    double Lambda = 1.0;
    bool Improved = false;
    for (int BT = 0; BT <= Options.MaxBacktracks; ++BT) {
      for (std::size_t I = 0; I < N; ++I)
        Trial[I] = Result.X[I] + Lambda * (*Step)[I];
      clampToBounds(Trial, Options);
      F(Trial, FTrial);
      double TrialNorm = norm2(FTrial);
      if (std::isfinite(TrialNorm) && TrialNorm < ResNorm) {
        Improved = true;
        break;
      }
      Lambda *= Options.Backtrack;
    }
    if (!Improved)
      return Result; // Stalled: no descent direction found.

    double StepSize = 0.0;
    for (std::size_t I = 0; I < N; ++I)
      StepSize = std::max(StepSize, std::fabs(Trial[I] - Result.X[I]));
    Result.X = Trial;
    FX = FTrial;
    ResNorm = norm2(FX);
    if (StepSize <= Options.StepTolerance) {
      Result.ResidualNorm = normInf(FX);
      Result.Converged = Result.ResidualNorm <= Options.ResidualTolerance ||
                         Result.ResidualNorm <= 1e-6;
      Result.Iterations = It + 1;
      return Result;
    }
  }

  Result.Iterations = Options.MaxIterations;
  Result.ResidualNorm = normInf(FX);
  Result.Converged = Result.ResidualNorm <= Options.ResidualTolerance;
  return Result;
}
