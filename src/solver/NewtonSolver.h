//===-- solver/NewtonSolver.h - Multidimensional Newton ---------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Damped Newton iteration for systems of non-linear equations. This is the
/// "multidimensional solver" the numerical data partitioning algorithm
/// applies to the balance equations (paper Section 4.3, ref [15], which
/// used GSL's multiroot solvers).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SOLVER_NEWTONSOLVER_H
#define FUPERMOD_SOLVER_NEWTONSOLVER_H

#include <functional>
#include <span>
#include <vector>

namespace fupermod {

/// Evaluates the residual F(X) into \p Out (same length as \p X).
using VectorFunction =
    std::function<void(std::span<const double> X, std::span<double> Out)>;

/// Evaluates the Jacobian dF/dX at \p X into the row-major \p Out
/// (length N*N).
using JacobianFunction =
    std::function<void(std::span<const double> X, std::span<double> Out)>;

/// Options for solveNewton().
struct NewtonOptions {
  /// Stop when the infinity norm of the residual drops below this.
  double ResidualTolerance = 1e-9;
  /// Stop (as converged) when the step becomes smaller than this.
  double StepTolerance = 1e-12;
  /// Iteration cap.
  int MaxIterations = 100;
  /// Backtracking line-search shrink factor in (0, 1).
  double Backtrack = 0.5;
  /// Maximum number of backtracking halvings per iteration.
  int MaxBacktracks = 30;
  /// Optional elementwise lower bounds (empty = unbounded).
  std::vector<double> LowerBounds;
  /// Optional elementwise upper bounds (empty = unbounded).
  std::vector<double> UpperBounds;
};

/// Result of solveNewton().
struct NewtonResult {
  /// Final iterate.
  std::vector<double> X;
  /// True when the residual tolerance was met.
  bool Converged = false;
  /// Iterations actually performed.
  int Iterations = 0;
  /// Infinity norm of the final residual.
  double ResidualNorm = 0.0;
};

/// Solves F(X) = 0 starting from \p X0 with damped Newton iteration.
///
/// When \p Jacobian is null, a forward-difference Jacobian is used. Each
/// Newton step is backtracked until the Euclidean residual norm decreases;
/// iterates are clamped to the option bounds. The solver never throws; on
/// stall it reports Converged = false with the best iterate found.
NewtonResult solveNewton(const VectorFunction &F, std::span<const double> X0,
                         const NewtonOptions &Options = NewtonOptions(),
                         const JacobianFunction &Jacobian = nullptr);

} // namespace fupermod

#endif // FUPERMOD_SOLVER_NEWTONSOLVER_H
