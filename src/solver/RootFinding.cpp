//===-- solver/RootFinding.cpp - Scalar root finding ----------------------===//

#include "solver/RootFinding.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

std::optional<double> fupermod::bisect(const std::function<double(double)> &F,
                                       double Lo, double Hi,
                                       const RootOptions &Options) {
  assert(Lo <= Hi && "invalid interval");
  double FLo = F(Lo);
  if (FLo == 0.0)
    return Lo;
  double FHi = F(Hi);
  if (FHi == 0.0)
    return Hi;
  if ((FLo > 0.0) == (FHi > 0.0))
    return std::nullopt;

  for (int It = 0; It < Options.MaxIterations; ++It) {
    double Mid = 0.5 * (Lo + Hi);
    double FMid = F(Mid);
    if (FMid == 0.0 || std::fabs(FMid) <= Options.FTolerance ||
        (Hi - Lo) <= Options.XTolerance)
      return Mid;
    if ((FMid > 0.0) == (FLo > 0.0)) {
      Lo = Mid;
      FLo = FMid;
    } else {
      Hi = Mid;
    }
  }
  return 0.5 * (Lo + Hi);
}

std::optional<double> fupermod::brent(const std::function<double(double)> &F,
                                      double Lo, double Hi,
                                      const RootOptions &Options) {
  assert(Lo <= Hi && "invalid interval");
  double A = Lo, B = Hi;
  double FA = F(A), FB = F(B);
  if (FA == 0.0)
    return A;
  if (FB == 0.0)
    return B;
  if ((FA > 0.0) == (FB > 0.0))
    return std::nullopt;

  // Keep |F(B)| <= |F(A)|: B is the best iterate.
  if (std::fabs(FA) < std::fabs(FB)) {
    std::swap(A, B);
    std::swap(FA, FB);
  }
  double C = A, FC = FA;
  bool Bisected = true;
  double D = 0.0;

  for (int It = 0; It < Options.MaxIterations; ++It) {
    if (std::fabs(FB) <= Options.FTolerance ||
        std::fabs(B - A) <= Options.XTolerance)
      return B;

    double S;
    if (FA != FC && FB != FC) {
      // Inverse quadratic interpolation.
      S = A * FB * FC / ((FA - FB) * (FA - FC)) +
          B * FA * FC / ((FB - FA) * (FB - FC)) +
          C * FA * FB / ((FC - FA) * (FC - FB));
    } else {
      // Secant step.
      S = B - FB * (B - A) / (FB - FA);
    }

    double Mid = 0.5 * (A + B);
    bool UseBisection =
        !((S > std::min(Mid, B) && S < std::max(Mid, B))) ||
        (Bisected && std::fabs(S - B) >= 0.5 * std::fabs(B - C)) ||
        (!Bisected && std::fabs(S - B) >= 0.5 * std::fabs(C - D)) ||
        (Bisected && std::fabs(B - C) < Options.XTolerance) ||
        (!Bisected && std::fabs(C - D) < Options.XTolerance);
    if (UseBisection) {
      S = Mid;
      Bisected = true;
    } else {
      Bisected = false;
    }

    double FS = F(S);
    D = C;
    C = B;
    FC = FB;
    if ((FA > 0.0) == (FS > 0.0)) {
      A = S;
      FA = FS;
    } else {
      B = S;
      FB = FS;
    }
    if (std::fabs(FA) < std::fabs(FB)) {
      std::swap(A, B);
      std::swap(FA, FB);
    }
  }
  return B;
}
