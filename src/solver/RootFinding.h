//===-- solver/RootFinding.h - Scalar root finding --------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar root finding (bisection and Brent). The geometric partitioner's
/// slope search and the per-process intersection searches use these.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SOLVER_ROOTFINDING_H
#define FUPERMOD_SOLVER_ROOTFINDING_H

#include <functional>
#include <optional>

namespace fupermod {

/// Options controlling scalar root searches.
struct RootOptions {
  /// Absolute tolerance on the bracket width.
  double XTolerance = 1e-12;
  /// Absolute tolerance on |f(x)|.
  double FTolerance = 0.0;
  /// Iteration cap.
  int MaxIterations = 200;
};

/// Finds a root of \p F in [\p Lo, \p Hi] by bisection.
///
/// Requires F(Lo) and F(Hi) to have opposite signs (a zero at either end is
/// returned immediately). Returns std::nullopt if the bracket is invalid.
std::optional<double> bisect(const std::function<double(double)> &F,
                             double Lo, double Hi,
                             const RootOptions &Options = RootOptions());

/// Finds a root of \p F in [\p Lo, \p Hi] with Brent's method (inverse
/// quadratic interpolation guarded by bisection). Same bracket contract as
/// bisect(), typically far fewer function evaluations.
std::optional<double> brent(const std::function<double(double)> &F, double Lo,
                            double Hi,
                            const RootOptions &Options = RootOptions());

} // namespace fupermod

#endif // FUPERMOD_SOLVER_ROOTFINDING_H
