//===-- solver/LinearAlgebra.h - Small dense linear algebra -----*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense LU factorisation with partial pivoting, sized for the Newton
/// systems of the numerical partitioner (one unknown per process, so tens
/// of unknowns at most).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_SOLVER_LINEARALGEBRA_H
#define FUPERMOD_SOLVER_LINEARALGEBRA_H

#include <optional>
#include <span>
#include <vector>

namespace fupermod {

/// Solves the N x N dense system A x = b.
///
/// \p A is row-major with N*N entries and is consumed by value (the
/// factorisation overwrites it). Returns std::nullopt if the matrix is
/// numerically singular.
std::optional<std::vector<double>> luSolve(std::vector<double> A,
                                           std::span<const double> B);

/// Euclidean norm of \p V.
double norm2(std::span<const double> V);

/// Infinity norm of \p V.
double normInf(std::span<const double> V);

} // namespace fupermod

#endif // FUPERMOD_SOLVER_LINEARALGEBRA_H
