//===-- solver/LinearAlgebra.cpp - Small dense linear algebra -------------===//

#include "solver/LinearAlgebra.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

std::optional<std::vector<double>>
fupermod::luSolve(std::vector<double> A, std::span<const double> B) {
  std::size_t N = B.size();
  assert(A.size() == N * N && "matrix/vector size mismatch");
  std::vector<double> X(B.begin(), B.end());
  std::vector<std::size_t> Perm(N);
  for (std::size_t I = 0; I < N; ++I)
    Perm[I] = I;

  for (std::size_t Col = 0; Col < N; ++Col) {
    // Partial pivoting: pick the largest remaining entry in this column.
    std::size_t Pivot = Col;
    double Best = std::fabs(A[Perm[Col] * N + Col]);
    for (std::size_t Row = Col + 1; Row < N; ++Row) {
      double Cand = std::fabs(A[Perm[Row] * N + Col]);
      if (Cand > Best) {
        Best = Cand;
        Pivot = Row;
      }
    }
    if (Best < 1e-300)
      return std::nullopt;
    std::swap(Perm[Col], Perm[Pivot]);

    double Diag = A[Perm[Col] * N + Col];
    for (std::size_t Row = Col + 1; Row < N; ++Row) {
      double Factor = A[Perm[Row] * N + Col] / Diag;
      A[Perm[Row] * N + Col] = 0.0;
      if (Factor == 0.0)
        continue;
      for (std::size_t K = Col + 1; K < N; ++K)
        A[Perm[Row] * N + K] -= Factor * A[Perm[Col] * N + K];
      X[Perm[Row]] -= Factor * X[Perm[Col]];
    }
  }

  // Back substitution on the permuted upper-triangular system.
  std::vector<double> Result(N, 0.0);
  for (std::size_t I = N; I-- > 0;) {
    double Sum = X[Perm[I]];
    for (std::size_t K = I + 1; K < N; ++K)
      Sum -= A[Perm[I] * N + K] * Result[K];
    Result[I] = Sum / A[Perm[I] * N + I];
    if (!std::isfinite(Result[I]))
      return std::nullopt;
  }
  return Result;
}

double fupermod::norm2(std::span<const double> V) {
  double Sum = 0.0;
  for (double E : V)
    Sum += E * E;
  return std::sqrt(Sum);
}

double fupermod::normInf(std::span<const double> V) {
  double Max = 0.0;
  for (double E : V)
    Max = std::max(Max, std::fabs(E));
  return Max;
}
