//===-- core/GemmKernel.cpp - Matrix-multiplication kernel ----------------===//

#include "core/GemmKernel.h"

#include "blas/Gemm.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <cmath>
#include <cstring>

using namespace fupermod;

Kernel::~Kernel() = default;

KernelRegistry &fupermod::kernelRegistry() {
  static KernelRegistry R("kernel");
  return R;
}

namespace {
Registrar<KernelRegistry> RegGemm(
    kernelRegistry(), "gemm", [](const KernelConfig &Config) {
      return std::unique_ptr<Kernel>(std::make_unique<GemmKernel>(
          Config.BlockSize, Config.UseBlockedGemm, Config.Threads,
          Config.UseMicroGemm));
    });
} // namespace

std::unique_ptr<Kernel> fupermod::makeKernel(const std::string &Name,
                                             const KernelConfig &Config,
                                             std::string *Err) {
  return kernelRegistry().create(Name, Config, Err);
}

GemmKernel::GemmKernel(std::size_t BlockSize, bool UseBlockedGemm,
                       unsigned Threads, bool UseMicroGemm)
    : B(BlockSize), UseBlockedGemm(UseBlockedGemm), UseMicroGemm(UseMicroGemm),
      Threads(Threads == 0 ? 1 : Threads) {
  assert(BlockSize > 0 && "block size must be positive");
}

GemmKernel::~GemmKernel() = default;

double GemmKernel::complexity(double Units) const {
  // One unit is one b x b block update: 2 * b^3 flops. A problem of d
  // units performs 2 * (m*b) * (n*b) * b = 2 * d * b^3 flops.
  double B3 = static_cast<double>(B) * static_cast<double>(B) *
              static_cast<double>(B);
  return 2.0 * Units * B3;
}

bool GemmKernel::initialize(std::int64_t Units) {
  assert(Units > 0 && "problem size must be positive");
  // Nearly-square block grid covering at least `Units` block updates
  // (paper: m = floor(sqrt(d)), n = d / m).
  M = static_cast<std::size_t>(
      std::max<double>(1.0, std::floor(std::sqrt(
                                static_cast<double>(Units)))));
  N = static_cast<std::size_t>(Units) / M;
  if (N == 0)
    N = 1;

  std::size_t MB = M * B;
  std::size_t NB = N * B;
  AStore.assign(MB * B, 0.0);
  BStore.assign(B * NB, 0.0);
  CStore.assign(MB * NB, 0.0);
  APivot.assign(MB * B, 0.0);
  BPivot.assign(B * NB, 0.0);
  fillDeterministic(AStore, 0x41);
  fillDeterministic(BStore, 0x42);
  fillDeterministic(CStore, 0x43);
  return true;
}

void GemmKernel::execute() {
  assert(!CStore.empty() && "kernel not initialised");
  std::size_t MB = M * B;
  std::size_t NB = N * B;
  // Replicate the local overhead of the application's pivot broadcast:
  // copy the pivot column of Ai and pivot row of Bi into working buffers.
  std::memcpy(APivot.data(), AStore.data(), MB * B * sizeof(double));
  std::memcpy(BPivot.data(), BStore.data(), B * NB * sizeof(double));
  // The block update Ci += A(b) * B(b).
  if (Threads > 1) {
    if (!Pool)
      Pool = std::make_unique<ThreadPool>(Threads - 1);
    gemmParallel(MB, NB, B, APivot, BPivot, CStore, *Pool, /*Tile=*/64,
                 UseMicroGemm);
  } else if (UseMicroGemm) {
    gemmMicro(MB, NB, B, APivot, BPivot, CStore);
  } else if (UseBlockedGemm) {
    gemmBlocked(MB, NB, B, APivot, BPivot, CStore);
  } else {
    gemmNaive(MB, NB, B, APivot, BPivot, CStore);
  }
}

void GemmKernel::finalize() {
  AStore.clear();
  BStore.clear();
  CStore.clear();
  APivot.clear();
  BPivot.clear();
  AStore.shrink_to_fit();
  BStore.shrink_to_fit();
  CStore.shrink_to_fit();
  APivot.shrink_to_fit();
  BPivot.shrink_to_fit();
}
