//===-- core/Partitioners.cpp - Static partitioning algorithms ------------===//

#include "core/Partitioners.h"

#include "solver/NewtonSolver.h"

#include <cassert>
#include <cmath>

using namespace fupermod;

namespace {

/// Fills predicted times of \p Out from the models and rounded units.
void fillPredictions(std::span<Model *const> Models, Dist &Out) {
  for (std::size_t I = 0; I < Out.Parts.size(); ++I) {
    Part &P = Out.Parts[I];
    P.PredictedTime =
        P.Units > 0 ? Models[I]->timeAt(static_cast<double>(P.Units)) : 0.0;
  }
}

bool modelsReady(std::span<Model *const> Models) {
  if (Models.empty())
    return false;
  for (Model *M : Models)
    if (!M || !M->fitted())
      return false;
  return true;
}

/// Per-model feasibility caps (smallest size known infeasible).
std::vector<double> feasibleCaps(std::span<Model *const> Models) {
  std::vector<double> Caps;
  Caps.reserve(Models.size());
  for (Model *M : Models)
    Caps.push_back(M->feasibleLimit());
  return Caps;
}

/// True when the devices can hold \p Total units at all under the caps.
bool capacitySufficient(std::span<const double> Caps, std::int64_t Total) {
  double Capacity = 0.0;
  for (double Cap : Caps) {
    Capacity += std::min(
        static_cast<double>(maxUnitsUnderCap(Cap)), 1e18);
    if (Capacity >= static_cast<double>(Total))
      return true;
  }
  return Capacity >= static_cast<double>(Total);
}

/// Real-valued geometric solution: the common completion time Tau with
/// sum_i min(t_i^{-1}(Tau), cap_i) = Total, and the corresponding shares.
/// Shares are clipped to each device's feasibility cap, so a device never
/// receives sizes it cannot execute.
///
/// \p SeedTau > 0 starts the bracketing from a previous solve's
/// completion time instead of the even-share probe — the warm path after
/// an incremental model update, where the old makespan is already within
/// a doubling or two of the new one. The seed only changes where the
/// bisection starts, never what it converges to (up to bisection
/// resolution); SeedTau == 0 is the cold path, bit-for-bit as before.
bool solveGeometric(double Total, std::span<Model *const> Models,
                    std::vector<double> &Shares, double &Tau,
                    double SeedTau = 0.0) {
  std::size_t P = Models.size();
  std::vector<double> Caps = feasibleCaps(Models);
  // The memoized lookup pays off whenever the same tau recurs against an
  // unchanged model: the numerical partitioner re-runs this whole solve
  // as its warm start, benches sweep algorithms over the same totals, and
  // dynamic partitioning re-partitions between model updates.
  auto ShareAt = [&](std::size_t I, double T) {
    double Cap = static_cast<double>(
        std::min<std::int64_t>(maxUnitsUnderCap(Caps[I]),
                               std::int64_t(1) << 62));
    return std::min(Models[I]->sizeForTimeCached(T), Cap);
  };
  auto SumAt = [&](double T) {
    double Sum = 0.0;
    for (std::size_t I = 0; I < P; ++I)
      Sum += ShareAt(I, T);
    return Sum;
  };

  // Bracket the common time: Lo = 0 allocates nothing; grow Hi until the
  // processes would absorb the whole problem.
  double Lo = 0.0;
  double Hi = SeedTau > 0.0 && std::isfinite(SeedTau)
                  ? SeedTau
                  : Models[0]->timeAt(
                        std::max(Total / static_cast<double>(P), 1.0));
  Hi = std::max(Hi, 1e-9);
  bool Bracketed = false;
  for (int I = 0; I < 200; ++I) {
    if (SumAt(Hi) >= Total) {
      Bracketed = true;
      break;
    }
    Hi *= 2.0;
  }
  Shares.resize(P);
  if (!Bracketed) {
    // Capacity-saturated platform: every device takes all it can hold
    // (callers verified aggregate capacity, so this still covers Total
    // up to rounding).
    for (std::size_t I = 0; I < P; ++I)
      Shares[I] = ShareAt(I, Hi);
    Tau = Hi;
    return true;
  }

  for (int I = 0; I < 100; ++I) {
    double Mid = 0.5 * (Lo + Hi);
    if (SumAt(Mid) < Total)
      Lo = Mid;
    else
      Hi = Mid;
  }
  Tau = 0.5 * (Lo + Hi);
  for (std::size_t I = 0; I < P; ++I)
    Shares[I] = ShareAt(I, Tau);
  return true;
}

/// Newton refinement half of the numerical partitioner: damped Newton on
/// the balance system t_i(x_i) = t_p(x_p), sum x_i = D starting from
/// \p X0. Returns true and fills \p Refined when Newton converged to a
/// sane (finite, non-negative) point; leaves \p Refined alone otherwise.
bool refineNumerical(double D, std::span<Model *const> Models,
                     std::span<const double> Caps, double TimeScale,
                     std::span<const double> X0,
                     std::vector<double> &Refined) {
  std::size_t P = Models.size();

  // Balance system: equal completion times and full coverage, scaled to
  // comparable magnitudes.
  VectorFunction F = [&](std::span<const double> X, std::span<double> R) {
    double TLast = Models[P - 1]->timeAt(std::max(X[P - 1], 0.0));
    for (std::size_t I = 0; I + 1 < P; ++I) {
      double TI = Models[I]->timeAt(std::max(X[I], 0.0));
      R[I] = (TI - TLast) / TimeScale;
    }
    double Sum = 0.0;
    for (double V : X)
      Sum += V;
    R[P - 1] = (Sum - D) / D;
  };
  JacobianFunction J = [&](std::span<const double> X, std::span<double> Jac) {
    std::fill(Jac.begin(), Jac.end(), 0.0);
    double DLast = Models[P - 1]->timeDerivative(std::max(X[P - 1], 0.0));
    for (std::size_t I = 0; I + 1 < P; ++I) {
      Jac[I * P + I] = Models[I]->timeDerivative(std::max(X[I], 0.0)) /
                       TimeScale;
      Jac[I * P + (P - 1)] = -DLast / TimeScale;
    }
    for (std::size_t Col = 0; Col < P; ++Col)
      Jac[(P - 1) * P + Col] = 1.0 / D;
  };

  NewtonOptions Options;
  Options.ResidualTolerance = 1e-10;
  Options.MaxIterations = 200;
  Options.LowerBounds.assign(P, 0.0);
  Options.UpperBounds.resize(P);
  for (std::size_t I = 0; I < P; ++I)
    Options.UpperBounds[I] = static_cast<double>(
        std::min<std::int64_t>(maxUnitsUnderCap(Caps[I]),
                               std::int64_t(1) << 62));
  NewtonResult Solved = solveNewton(F, X0, Options, J);

  bool Sane = Solved.Converged;
  for (double V : Solved.X)
    Sane = Sane && std::isfinite(V) && V >= 0.0;
  if (Sane)
    Refined = std::move(Solved.X);
  return Sane;
}

/// True when the stored solution in \p Hint provably still describes the
/// cold answer for \p Total over \p Models: same total and every model
/// still at the fit epoch it was solved against (epoch values are
/// process-wide unique, so equality implies the same fit of the same
/// model object).
bool hintStillExact(const PartitionHint &Hint, std::int64_t Total,
                    std::span<Model *const> Models) {
  if (!Hint.Valid || Hint.Total != Total)
    return false;
  std::size_t P = Models.size();
  if (Hint.FitEpochs.size() != P || Hint.Units.size() != P ||
      Hint.PredictedTimes.size() != P)
    return false;
  for (std::size_t I = 0; I < P; ++I)
    if (Models[I]->fitEpoch() != Hint.FitEpochs[I])
      return false;
  return true;
}

/// Reconstructs the distribution stored in a validated hint.
void replayHint(const PartitionHint &Hint, Dist &Out) {
  std::size_t P = Hint.Units.size();
  Out.Total = Hint.Total;
  Out.Parts.assign(P, Part());
  for (std::size_t I = 0; I < P; ++I) {
    Out.Parts[I].Units = Hint.Units[I];
    Out.Parts[I].PredictedTime = Hint.PredictedTimes[I];
  }
}

/// Epochs of every model, captured *before* solving so a concurrent model
/// update during the solve leaves a hint that fails revalidation instead
/// of one that vouches for a half-updated answer.
std::vector<std::uint64_t> snapshotEpochs(std::span<Model *const> Models) {
  std::vector<std::uint64_t> Epochs;
  Epochs.reserve(Models.size());
  for (Model *M : Models)
    Epochs.push_back(M->fitEpoch());
  return Epochs;
}

/// Stores a fresh successful solve into \p Hint.
void recordHint(PartitionHint &Hint, std::int64_t Total,
                std::vector<std::uint64_t> Epochs, const Dist &Out,
                std::span<const double> Shares, double Tau) {
  std::size_t P = Out.Parts.size();
  Hint.Valid = true;
  Hint.Total = Total;
  Hint.FitEpochs = std::move(Epochs);
  Hint.Units.resize(P);
  Hint.PredictedTimes.resize(P);
  for (std::size_t I = 0; I < P; ++I) {
    Hint.Units[I] = Out.Parts[I].Units;
    Hint.PredictedTimes[I] = Out.Parts[I].PredictedTime;
  }
  Hint.Shares.assign(Shares.begin(), Shares.end());
  Hint.Tau = Tau;
}

} // namespace

bool fupermod::partitionConstant(std::int64_t Total,
                                 std::span<Model *const> Models, Dist &Out) {
  if (!modelsReady(Models))
    return false;
  std::size_t P = Models.size();
  Out.Total = Total;
  Out.Parts.assign(P, Part());
  if (Total == 0)
    return true;
  std::vector<double> Caps = feasibleCaps(Models);
  if (!capacitySufficient(Caps, Total))
    return false;

  // Constant speeds, probed at the even share (exact for ConstantModel).
  double Probe =
      std::max(static_cast<double>(Total) / static_cast<double>(P), 1.0);
  std::vector<double> Speeds(P);
  double SpeedSum = 0.0;
  for (std::size_t I = 0; I < P; ++I) {
    Speeds[I] = Models[I]->speedAt(Probe);
    SpeedSum += Speeds[I];
  }
  assert(SpeedSum > 0.0 && "no process has positive speed");

  std::vector<double> Shares(P);
  for (std::size_t I = 0; I < P; ++I)
    Shares[I] = static_cast<double>(Total) * Speeds[I] / SpeedSum;
  std::vector<std::int64_t> Units = roundSharesCapped(Shares, Total, Caps);
  for (std::size_t I = 0; I < P; ++I)
    Out.Parts[I].Units = Units[I];
  fillPredictions(Models, Out);
  return true;
}

bool fupermod::partitionGeometric(std::int64_t Total,
                                  std::span<Model *const> Models, Dist &Out) {
  if (!modelsReady(Models))
    return false;
  std::size_t P = Models.size();
  Out.Total = Total;
  Out.Parts.assign(P, Part());
  if (Total == 0)
    return true;
  std::vector<double> Caps = feasibleCaps(Models);
  if (!capacitySufficient(Caps, Total))
    return false;

  std::vector<double> Shares;
  double Tau = 0.0;
  if (!solveGeometric(static_cast<double>(Total), Models, Shares, Tau))
    return false;
  std::vector<std::int64_t> Units = roundSharesCapped(Shares, Total, Caps);
  for (std::size_t I = 0; I < P; ++I)
    Out.Parts[I].Units = Units[I];
  fillPredictions(Models, Out);
  return true;
}

bool fupermod::partitionNumerical(std::int64_t Total,
                                  std::span<Model *const> Models, Dist &Out) {
  if (!modelsReady(Models))
    return false;
  std::size_t P = Models.size();
  Out.Total = Total;
  Out.Parts.assign(P, Part());
  if (Total == 0)
    return true;
  std::vector<double> Caps = feasibleCaps(Models);
  if (!capacitySufficient(Caps, Total))
    return false;
  if (P == 1) {
    Out.Parts[0].Units = Total;
    fillPredictions(Models, Out);
    return true;
  }

  // Initial guess: the geometric solution (always available through the
  // generic sizeForTime search, even on non-monotone splines).
  std::vector<double> Shares;
  double Tau = 0.0;
  if (!solveGeometric(static_cast<double>(Total), Models, Shares, Tau))
    return false;
  double TimeScale = std::max(Tau, 1e-9);
  double D = static_cast<double>(Total);

  // Accept the Newton refinement only when it converged to a sane point;
  // otherwise keep the geometric shares (the paper's algorithms are
  // interchangeable on restricted shapes).
  std::vector<double> Refined;
  bool Sane = refineNumerical(D, Models, Caps, TimeScale, Shares, Refined);
  const std::vector<double> &Final = Sane ? Refined : Shares;

  std::vector<std::int64_t> Units = roundSharesCapped(Final, Total, Caps);
  for (std::size_t I = 0; I < P; ++I)
    Out.Parts[I].Units = Units[I];
  fillPredictions(Models, Out);
  return true;
}

bool fupermod::partitionGeometricWarm(std::int64_t Total,
                                      std::span<Model *const> Models,
                                      Dist &Out, PartitionHint &Hint) {
  if (!modelsReady(Models))
    return false;
  if (hintStillExact(Hint, Total, Models)) {
    replayHint(Hint, Out);
    return true;
  }
  std::size_t P = Models.size();
  std::vector<std::uint64_t> Epochs = snapshotEpochs(Models);
  Out.Total = Total;
  Out.Parts.assign(P, Part());
  if (Total == 0)
    return true;
  std::vector<double> Caps = feasibleCaps(Models);
  if (!capacitySufficient(Caps, Total))
    return false;

  // The previous makespan brackets the new one within a doubling or two
  // after an incremental model update; with no usable hint this is the
  // cold solve.
  double Seed = Hint.Valid && Hint.Tau > 0.0 ? Hint.Tau : 0.0;
  std::vector<double> Shares;
  double Tau = 0.0;
  if (!solveGeometric(static_cast<double>(Total), Models, Shares, Tau, Seed))
    return false;
  std::vector<std::int64_t> Units = roundSharesCapped(Shares, Total, Caps);
  for (std::size_t I = 0; I < P; ++I)
    Out.Parts[I].Units = Units[I];
  fillPredictions(Models, Out);
  recordHint(Hint, Total, std::move(Epochs), Out, Shares, Tau);
  return true;
}

bool fupermod::partitionNumericalWarm(std::int64_t Total,
                                      std::span<Model *const> Models,
                                      Dist &Out, PartitionHint &Hint) {
  if (!modelsReady(Models))
    return false;
  if (hintStillExact(Hint, Total, Models)) {
    replayHint(Hint, Out);
    return true;
  }
  std::size_t P = Models.size();
  std::vector<std::uint64_t> Epochs = snapshotEpochs(Models);
  Out.Total = Total;
  Out.Parts.assign(P, Part());
  if (Total == 0)
    return true;
  std::vector<double> Caps = feasibleCaps(Models);
  if (!capacitySufficient(Caps, Total))
    return false;
  if (P == 1) {
    Out.Parts[0].Units = Total;
    fillPredictions(Models, Out);
    std::vector<double> Shares = {static_cast<double>(Total)};
    recordHint(Hint, Total, std::move(Epochs), Out, Shares,
               Out.Parts[0].PredictedTime);
    return true;
  }

  double Seed = Hint.Valid && Hint.Tau > 0.0 ? Hint.Tau : 0.0;
  std::vector<double> Shares;
  double Tau = 0.0;
  if (!solveGeometric(static_cast<double>(Total), Models, Shares, Tau, Seed))
    return false;
  double TimeScale = std::max(Tau, 1e-9);
  double D = static_cast<double>(Total);

  // Newton from the previous converged shares when they distribute the
  // same total (typically one or two iterations); if that stalls —
  // feedback moved the balance point out of the old basin — retry the
  // cold initial guess so warm never returns anything the cold path
  // would not.
  bool HaveWarmX0 =
      Hint.Valid && Hint.Total == Total && Hint.Shares.size() == P;
  std::vector<double> Refined;
  bool Sane = refineNumerical(D, Models, Caps, TimeScale,
                              HaveWarmX0 ? std::span<const double>(Hint.Shares)
                                         : std::span<const double>(Shares),
                              Refined);
  if (!Sane && HaveWarmX0)
    Sane = refineNumerical(D, Models, Caps, TimeScale, Shares, Refined);
  const std::vector<double> &Final = Sane ? Refined : Shares;

  std::vector<std::int64_t> Units = roundSharesCapped(Final, Total, Caps);
  for (std::size_t I = 0; I < P; ++I)
    Out.Parts[I].Units = Units[I];
  fillPredictions(Models, Out);
  recordHint(Hint, Total, std::move(Epochs), Out, Final, Tau);
  return true;
}

PartitionerRegistry &fupermod::partitionerRegistry() {
  static PartitionerRegistry R("partitioner");
  return R;
}

WarmPartitionerRegistry &fupermod::warmPartitionerRegistry() {
  static WarmPartitionerRegistry R("warm partitioner");
  return R;
}

namespace {
Registrar<PartitionerRegistry> RegConstant(partitionerRegistry(), "constant",
                                           [] { return partitionConstant; });
Registrar<PartitionerRegistry> RegGeometric(partitionerRegistry(), "geometric",
                                            [] { return partitionGeometric; });
Registrar<PartitionerRegistry> RegNumerical(partitionerRegistry(), "numerical",
                                            [] { return partitionNumerical; });
Registrar<WarmPartitionerRegistry>
    RegGeometricWarm(warmPartitionerRegistry(), "geometric",
                     [] { return WarmPartitioner(partitionGeometricWarm); });
Registrar<WarmPartitionerRegistry>
    RegNumericalWarm(warmPartitionerRegistry(), "numerical",
                     [] { return WarmPartitioner(partitionNumericalWarm); });
} // namespace

Partitioner fupermod::findPartitioner(const std::string &Name,
                                      std::string *Err) {
  return partitionerRegistry().create(Name, Err);
}

WarmPartitioner fupermod::findWarmPartitioner(const std::string &Name,
                                              std::string *Err) {
  if (warmPartitionerRegistry().contains(Name))
    return warmPartitionerRegistry().create(Name, Err);
  // Any other registered algorithm gets the generic epoch-validated memo
  // around its cold implementation: the repeat-partition fast path works
  // for every algorithm, bespoke seeding only where it exists above.
  Partitioner Cold = findPartitioner(Name, Err);
  if (!Cold)
    return WarmPartitioner();
  return [Cold](std::int64_t Total, std::span<Model *const> Models, Dist &Out,
                PartitionHint &Hint) {
    if (modelsReady(Models) && hintStillExact(Hint, Total, Models)) {
      replayHint(Hint, Out);
      return true;
    }
    std::vector<std::uint64_t> Epochs = snapshotEpochs(Models);
    if (!Cold(Total, Models, Out))
      return false;
    recordHint(Hint, Total, std::move(Epochs), Out, {}, 0.0);
    return true;
  };
}
