//===-- core/ModelIO.h - Model persistence ----------------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text-format persistence for performance models and distributions. The
/// original FuPerMod ships `builder` and `partitioner` command-line tools
/// that communicate through model data files: the models are built once
/// (expensively) and reused by many application runs (paper Section 4.3).
/// The format is line-oriented and human-readable:
///
///   # fupermod model
///   kind <cpm|piecewise|akima>
///   points <N>
///   <units> <time> <reps> <ci> [weight]
///   ...
///
/// The optional trailing weight column records a point's staleness-decayed
/// merge weight when it no longer equals the repetition count, so a
/// reloaded model merges future measurements exactly like the in-memory
/// model it was saved from. Files without the column (the historical
/// format) read back with weight = reps, which is the undecayed state.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_MODELIO_H
#define FUPERMOD_CORE_MODELIO_H

#include "core/Model.h"
#include "core/Partition.h"

#include <iosfwd>
#include <memory>
#include <string>

namespace fupermod {

/// Writes \p M (kind, feasibility limit, experimental points and their
/// merge weights) to \p OS. Returns false on stream failure.
bool writeModel(std::ostream &OS, const Model &M);

/// Reads a model written by writeModel(). Returns null on malformed
/// input; when \p Err is non-null it then receives a diagnostic naming
/// the offending line.
std::unique_ptr<Model> readModel(std::istream &IS,
                                 std::string *Err = nullptr);

/// Writes \p M to \p Path (overwrites). Returns false on I/O failure.
bool saveModel(const std::string &Path, const Model &M);

/// Reads a model from \p Path. Returns null when the file is missing or
/// malformed; when \p Err is non-null it then receives a diagnostic
/// prefixed with the path, distinguishing an unreadable file from a
/// parse error.
std::unique_ptr<Model> loadModel(const std::string &Path,
                                 std::string *Err = nullptr);

/// Writes a distribution as lines of "rank units predicted_time".
bool writeDist(std::ostream &OS, const Dist &D);

/// Reads a distribution written by writeDist(). Returns false on
/// malformed input.
bool readDist(std::istream &IS, Dist &Out);

} // namespace fupermod

#endif // FUPERMOD_CORE_MODELIO_H
