//===-- core/Model.h - Computation performance models -----------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computation performance models (the paper's `fupermod_model`,
/// Section 4.2). A model accumulates experimental points and approximates
/// the device's *time* function t(x); the speed function is derived as
/// s(x) = x / t(x) (units/second; multiply by the kernel's complexity per
/// unit to obtain FLOPS).
///
/// Implemented models:
///  - ConstantModel (CPM): one constant speed; needs a single point.
///  - PiecewiseModel (FPM): piecewise-linear time function, with the
///    coarsening that enforces the shape restrictions the geometric
///    partitioning algorithm requires (any line through the origin of the
///    speed plane cuts the speed function at most once, equivalently the
///    time function is strictly increasing) — Fig. 2(a).
///  - AkimaModel (FPM): Akima-spline time function; smooth, C1, no shape
///    restrictions — Fig. 2(b), input of the numerical partitioner.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_MODEL_H
#define FUPERMOD_CORE_MODEL_H

#include "core/Point.h"
#include "interp/AkimaSpline.h"
#include "support/Registry.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace fupermod {

/// Base class of all computation performance models.
class Model {
public:
  Model();
  virtual ~Model();

  /// Short model-kind name ("cpm", "piecewise", "akima").
  virtual const char *kind() const = 0;

  /// Adds an experimental point and refits the approximation. Points at
  /// an already-known size are merged (weight-averaged mean time, where
  /// a point's weight starts at its repetition count and decays with
  /// staleness — see decayWeights()). Points from failed measurements
  /// (Reps == 0) carry no timing but record that the size is infeasible
  /// on the device (e.g. exceeds GPU memory, paper Section 4.1) — see
  /// feasibleLimit(). Points whose Status marks a device fault (timeout
  /// or hard failure) are ignored entirely: they describe the device's
  /// health, not the size's cost, and must not shrink the feasible
  /// region.
  void update(Point P);

  /// Exponentially down-weights every stored point by \p Factor in
  /// (0, 1]: a later measurement at the same size then dominates the
  /// stale mean, and points whose weight decays below a floor are
  /// dropped so the fit tracks the device's *current* behavior after a
  /// regime change (slowdown, recovery). At least one point is always
  /// retained. No-op with Factor == 1.
  void decayWeights(double Factor);

  /// Current merge weight of each stored point (parallel to points()).
  const std::vector<double> &weights() const { return Weights; }

  /// Overwrites the per-point merge weights (one per stored point, all
  /// positive). Used by model persistence to restore staleness-decay
  /// state: a reloaded model must merge future measurements exactly like
  /// the in-memory model it was saved from. Does not refit (weights only
  /// steer future merges and decay, never the current approximation).
  void setWeights(std::span<const double> NewWeights);

  /// Smallest problem size known to be infeasible on this device;
  /// +infinity when every measured size succeeded. Partitioning
  /// algorithms never allocate a device this many units or more.
  double feasibleLimit() const { return MinInfeasible; }

  /// Predicted execution time at size \p X (X >= 0). Requires at least
  /// one point.
  double timeAt(double X) const;

  /// Predicted speed (units/second) at size \p X > 0.
  double speedAt(double X) const;

  /// Derivative of the time function at \p X. The default is a central
  /// finite difference; smooth models override it analytically.
  virtual double timeDerivative(double X) const;

  /// Inverse of the time function: a size whose predicted time is \p T.
  /// For monotone models this is exact; for non-monotone models a
  /// bracketed search returns one crossing. Used by the geometric
  /// partitioner (intersection of the speed function with a line through
  /// the origin at slope 1/T).
  virtual double sizeForTime(double T) const;

  /// Memoized, thread-safe sizeForTime. The geometric bisection and the
  /// numerical partitioner's geometric warm start re-evaluate the same
  /// inverse-time lookups (keyed by the candidate completion time tau)
  /// across calls while the model is unchanged; this caches them. The
  /// cache is invalidated whenever the fit changes (update(),
  /// decayWeights()). Safe to call concurrently from several partition
  /// threads.
  double sizeForTimeCached(double T) const;

  /// Predicted times at many sizes at once (Out.size() == Xs.size()).
  /// The default loops over timeAt(); spline-backed models override it to
  /// reuse segment lookups across sorted query batches.
  virtual void timesAt(std::span<const double> Xs,
                       std::span<double> Out) const;

  /// Lifetime lookup/hit counters of the inverse-time cache (lookups =
  /// hits + misses); exposed for the throughput bench and tests.
  std::uint64_t cacheLookups() const;
  std::uint64_t cacheHits() const;

  /// Lifetime count of memoized inverse-time entries evicted by fit
  /// changes — each full wipe adds the number of entries it dropped and
  /// each ranged invalidation adds only the entries actually erased, so
  /// the counter is comparable across both paths.
  std::uint64_t cacheInvalidations() const;

  /// Drops all memoized inverse-time entries and resets the counters
  /// (e.g. between timed bench phases). Does not advance fitEpoch(): the
  /// fit itself is unchanged.
  void clearEvalCache() const;

  /// Monotone identifier of the current fit. Every change that can alter
  /// partitioning results — a refit or a feasibility-cap change — assigns
  /// a fresh value drawn from a process-wide counter, so two epochs
  /// compare equal only when they describe the same fit of the same
  /// model object (values are never recycled across models). Warm-start
  /// paths use this to prove a memoized solution is still exact.
  std::uint64_t fitEpoch() const { return FitEpoch.load(); }

  /// Experimental points, sorted by size.
  const std::vector<Point> &points() const { return Points; }

  /// True once at least one point has been accepted.
  bool fitted() const { return !Points.empty(); }

protected:
  /// Model-specific prediction; called with X > 0 and a fitted model.
  virtual double timeImpl(double X) const = 0;

  /// Model-specific refit after Points changed.
  virtual void refit() = 0;

  /// Refits and drops all memoized inverse-time entries (the fit they
  /// were computed against no longer exists). Advances fitEpoch().
  void refitAndInvalidate();

  /// Refits after a single point at \p ChangedUnits changed, dropping
  /// only the memoized inverse-time entries the change can affect: the
  /// model reports the smallest size whose prediction may have moved
  /// (invalidationLowerBound()) and entries that resolved to smaller
  /// sizes survive. Advances fitEpoch(). Equivalent to
  /// refitAndInvalidate() in results, cheaper on incremental feedback.
  void refitRange(double ChangedUnits);

  /// Smallest size whose predicted time can change when the experimental
  /// point at \p ChangedUnits does. The default (0) declares the whole
  /// curve affected — correct for global fits (constant, linear) and
  /// non-local interpolants (Akima); PiecewiseModel overrides it because
  /// its coarsening only cascades rightward.
  virtual double invalidationLowerBound(double ChangedUnits) const;

  /// Stamps a fresh process-wide unique value into fitEpoch(). Called by
  /// the refit paths and by feasibility-cap changes that skip refitting.
  void bumpFitEpoch();

  std::vector<Point> Points;

private:
  /// Merge weight per point (parallel to Points); initialized to the
  /// point's repetition count and reduced by decayWeights().
  std::vector<double> Weights;
  double MinInfeasible = std::numeric_limits<double>::infinity();

  /// Memoized inverse-time lookups, keyed by the bit pattern of tau so
  /// that distinct doubles never collide. Guarded by CacheMutex; mutable
  /// because memoization is observably const.
  mutable std::mutex CacheMutex;
  mutable std::unordered_map<std::uint64_t, double> InverseCache;
  mutable std::uint64_t Hits = 0;
  mutable std::uint64_t Lookups = 0;
  mutable std::uint64_t Invalidations = 0;

  /// See fitEpoch(); atomic so partition threads can validate warm-start
  /// hints without taking CacheMutex.
  std::atomic<std::uint64_t> FitEpoch;
};

/// Constant performance model: speed does not depend on problem size.
class ConstantModel : public Model {
public:
  const char *kind() const override { return "cpm"; }
  double sizeForTime(double T) const override;

protected:
  double timeImpl(double X) const override;
  void refit() override;

private:
  double Speed = 0.0;
};

/// Piecewise-linear functional model with monotone-time coarsening.
class PiecewiseModel : public Model {
public:
  const char *kind() const override { return "piecewise"; }
  double sizeForTime(double T) const override;
  double timeDerivative(double X) const override;
  void timesAt(std::span<const double> Xs,
               std::span<double> Out) const override;

  /// The coarsened knots actually used by the approximation (sizes and
  /// adjusted times); exposed for tests and the Fig. 2(a) bench.
  const std::vector<double> &knotSizes() const { return Xs; }
  const std::vector<double> &knotTimes() const { return Ts; }

protected:
  double timeImpl(double X) const override;
  void refit() override;
  double invalidationLowerBound(double ChangedUnits) const override;

private:
  std::vector<double> Xs;
  std::vector<double> Ts;
};

/// Linear time model t(x) = a + b*x (least squares), the approach of the
/// paper's ref [12] (Qilin): a fixed per-invocation overhead plus a
/// constant marginal cost per unit. Exact for GPU-like devices (staging
/// overhead + linear kernel time), wrong across cache cliffs — included
/// both as a useful model for that device class and as the comparison
/// point the paper discusses.
class LinearModel : public Model {
public:
  const char *kind() const override { return "linear"; }
  double sizeForTime(double T) const override;
  double timeDerivative(double X) const override;

  /// Fitted per-invocation overhead (seconds).
  double intercept() const { return Intercept; }
  /// Fitted marginal cost (seconds/unit).
  double slope() const { return Slope; }

protected:
  double timeImpl(double X) const override;
  void refit() override;

private:
  double Intercept = 0.0;
  double Slope = 0.0;
};

/// Akima-spline functional model.
class AkimaModel : public Model {
public:
  const char *kind() const override { return "akima"; }
  double timeDerivative(double X) const override;
  void timesAt(std::span<const double> Xs,
               std::span<double> Out) const override;

protected:
  double timeImpl(double X) const override;
  void refit() override;

private:
  AkimaSpline Spline;
};

/// The model-kind registry ("cpm", "piecewise", "akima", "linear");
/// additional kinds can be registered by applications. Lookup through
/// makeModel below, or directly for name listings.
using ModelRegistry = Registry<std::unique_ptr<Model>>;
ModelRegistry &modelRegistry();

/// Factory by kind name via modelRegistry(). Returns null on unknown
/// kinds; when \p Err is non-null it then receives a diagnostic listing
/// every registered kind.
std::unique_ptr<Model> makeModel(const std::string &Kind,
                                 std::string *Err = nullptr);

} // namespace fupermod

#endif // FUPERMOD_CORE_MODEL_H
