//===-- core/Partitioners.h - Static partitioning algorithms ----*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three model-based static data partitioning algorithms of the paper
/// (Section 4.3):
///
///  - partitionConstant: divide in proportion to constant speeds (CPM);
///  - partitionGeometric: iterative bisection of the speed functions with
///    lines through the origin (piecewise FPMs with shape restrictions).
///    A line of slope k in the speed plane, s = k*x, cuts the speed
///    function of process i at the size x_i with x_i / t_i(x_i) = k*x_i,
///    i.e. t_i(x_i) = 1/k: all processes on one line finish at the same
///    time tau = 1/k. The algorithm therefore bisects on tau until
///    sum_i t_i^{-1}(tau) = D;
///  - partitionNumerical: damped Newton on the balance system
///    t_i(x_i) - t_p(x_p) = 0, sum x_i = D over Akima FPMs (continuous
///    derivative), with the geometric solution as the initial guess.
///
/// All algorithms produce integer unit counts summing exactly to D.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_PARTITIONERS_H
#define FUPERMOD_CORE_PARTITIONERS_H

#include "core/Partition.h"

namespace fupermod {

/// CPM-based proportional partitioning. Constant speeds are evaluated at
/// the even share D/p (for true ConstantModels the evaluation point is
/// irrelevant).
bool partitionConstant(std::int64_t Total, std::span<Model *const> Models,
                       Dist &Out);

/// Geometric (line-through-origin bisection) partitioning for models with
/// monotone time functions.
bool partitionGeometric(std::int64_t Total, std::span<Model *const> Models,
                        Dist &Out);

/// Numerical partitioning: multidimensional Newton on smooth models;
/// falls back to the geometric solution if Newton stalls.
bool partitionNumerical(std::int64_t Total, std::span<Model *const> Models,
                        Dist &Out);

/// The partitioner registry ("constant", "geometric", "numerical");
/// additional algorithms can be registered by applications.
using PartitionerRegistry = Registry<Partitioner>;
PartitionerRegistry &partitionerRegistry();

/// Looks up a partitioner by name via partitionerRegistry(). Returns a
/// null Partitioner on unknown names; when \p Err is non-null it then
/// receives a diagnostic listing every registered algorithm.
Partitioner findPartitioner(const std::string &Name,
                            std::string *Err = nullptr);

} // namespace fupermod

#endif // FUPERMOD_CORE_PARTITIONERS_H
