//===-- core/Partitioners.h - Static partitioning algorithms ----*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three model-based static data partitioning algorithms of the paper
/// (Section 4.3):
///
///  - partitionConstant: divide in proportion to constant speeds (CPM);
///  - partitionGeometric: iterative bisection of the speed functions with
///    lines through the origin (piecewise FPMs with shape restrictions).
///    A line of slope k in the speed plane, s = k*x, cuts the speed
///    function of process i at the size x_i with x_i / t_i(x_i) = k*x_i,
///    i.e. t_i(x_i) = 1/k: all processes on one line finish at the same
///    time tau = 1/k. The algorithm therefore bisects on tau until
///    sum_i t_i^{-1}(tau) = D;
///  - partitionNumerical: damped Newton on the balance system
///    t_i(x_i) - t_p(x_p) = 0, sum x_i = D over Akima FPMs (continuous
///    derivative), with the geometric solution as the initial guess.
///
/// All algorithms produce integer unit counts summing exactly to D.
///
/// Each algorithm also has a warm-started variant carrying a
/// PartitionHint across calls. When nothing changed since the hint was
/// recorded — same total, same fit epoch on every model — the previous
/// solution is provably still exact and is returned without solving.
/// When the models did change (incremental feedback), the solvers seed
/// themselves from the hint: the geometric bisection brackets from the
/// previous completion time and Newton starts from the previous real
/// shares, falling back to the full cold path when the seed stalls. The
/// cold entry points are untouched: a warm call with an empty hint takes
/// exactly the cold code path.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_PARTITIONERS_H
#define FUPERMOD_CORE_PARTITIONERS_H

#include "core/Partition.h"

namespace fupermod {

/// CPM-based proportional partitioning. Constant speeds are evaluated at
/// the even share D/p (for true ConstantModels the evaluation point is
/// irrelevant).
bool partitionConstant(std::int64_t Total, std::span<Model *const> Models,
                       Dist &Out);

/// Geometric (line-through-origin bisection) partitioning for models with
/// monotone time functions.
bool partitionGeometric(std::int64_t Total, std::span<Model *const> Models,
                        Dist &Out);

/// Numerical partitioning: multidimensional Newton on smooth models;
/// falls back to the geometric solution if Newton stalls.
bool partitionNumerical(std::int64_t Total, std::span<Model *const> Models,
                        Dist &Out);

/// The partitioner registry ("constant", "geometric", "numerical");
/// additional algorithms can be registered by applications.
using PartitionerRegistry = Registry<Partitioner>;
PartitionerRegistry &partitionerRegistry();

/// Looks up a partitioner by name via partitionerRegistry(). Returns a
/// null Partitioner on unknown names; when \p Err is non-null it then
/// receives a diagnostic listing every registered algorithm.
Partitioner findPartitioner(const std::string &Name,
                            std::string *Err = nullptr);

/// Solution carried between warm-started partition calls. Records the
/// last successful solve plus the fit epoch of every model it was solved
/// against; the epochs prove at the next call whether the stored result
/// is still exact (see Model::fitEpoch()). Owned by the caller — the
/// warm partitioners read and overwrite it but never share it, so any
/// required locking stays with the owner.
struct PartitionHint {
  /// False until a solve has been recorded.
  bool Valid = false;
  /// Problem size the stored solution distributes.
  std::int64_t Total = 0;
  /// Model::fitEpoch() of each model at solve time.
  std::vector<std::uint64_t> FitEpochs;
  /// The rounded integer solution and its predicted per-part times.
  std::vector<std::int64_t> Units;
  std::vector<double> PredictedTimes;
  /// Real-valued shares before rounding — Newton's warm initial guess.
  std::vector<double> Shares;
  /// Geometric common completion time — the warm bisection bracket.
  double Tau = 0.0;
};

/// A warm-started partitioning algorithm: like Partitioner, plus the
/// caller-owned hint that is consulted before solving and refreshed
/// after.
using WarmPartitioner =
    std::function<bool(std::int64_t Total, std::span<Model *const> Models,
                       Dist &Out, PartitionHint &Hint)>;

/// Warm-started counterparts of the static algorithms (semantics in the
/// file comment; results match the cold functions for every hint state).
bool partitionGeometricWarm(std::int64_t Total,
                            std::span<Model *const> Models, Dist &Out,
                            PartitionHint &Hint);
bool partitionNumericalWarm(std::int64_t Total,
                            std::span<Model *const> Models, Dist &Out,
                            PartitionHint &Hint);

/// The warm-partitioner registry ("geometric", "numerical" — algorithms
/// with a bespoke seeded solve path register here).
using WarmPartitionerRegistry = Registry<WarmPartitioner>;
WarmPartitionerRegistry &warmPartitionerRegistry();

/// Warm-started lookup by algorithm name. Algorithms in
/// warmPartitionerRegistry() resolve to their seeded implementations;
/// any other registered algorithm ("constant", application add-ons) is
/// wrapped with the generic epoch-validated memo, which alone covers the
/// repeat-partition fast path. Unknown names return a null function (and
/// a diagnostic through \p Err like findPartitioner).
WarmPartitioner findWarmPartitioner(const std::string &Name,
                                    std::string *Err = nullptr);

} // namespace fupermod

#endif // FUPERMOD_CORE_PARTITIONERS_H
