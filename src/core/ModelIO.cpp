//===-- core/ModelIO.cpp - Model persistence ------------------------------===//

#include "core/ModelIO.h"

#include <cmath>
#include <fstream>
#include <sstream>

using namespace fupermod;

bool fupermod::writeModel(std::ostream &OS, const Model &M) {
  OS << "# fupermod model\n";
  OS << "kind " << M.kind() << '\n';
  if (std::isfinite(M.feasibleLimit()))
    OS << "limit " << M.feasibleLimit() << '\n';
  OS << "points " << M.points().size() << '\n';
  OS.precision(17);
  for (const Point &P : M.points())
    OS << P.Units << ' ' << P.Time << ' ' << P.Reps << ' '
       << P.ConfidenceInterval << '\n';
  return static_cast<bool>(OS);
}

std::unique_ptr<Model> fupermod::readModel(std::istream &IS) {
  std::string Line;
  std::string Kind;
  std::size_t Count = 0;
  bool HaveKind = false, HavePoints = false;
  double Limit = std::numeric_limits<double>::infinity();

  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "kind") {
      LS >> Kind;
      HaveKind = !Kind.empty();
    } else if (Key == "limit") {
      LS >> Limit;
    } else if (Key == "points") {
      LS >> Count;
      HavePoints = true;
      break;
    } else {
      return nullptr; // Unknown key.
    }
  }
  if (!HaveKind || !HavePoints)
    return nullptr;
  if (Kind != "cpm" && Kind != "piecewise" && Kind != "akima" &&
      Kind != "linear")
    return nullptr;

  std::unique_ptr<Model> M = makeModel(Kind);
  for (std::size_t I = 0; I < Count; ++I) {
    if (!std::getline(IS, Line))
      return nullptr;
    std::istringstream LS(Line);
    Point P;
    if (!(LS >> P.Units >> P.Time >> P.Reps >> P.ConfidenceInterval))
      return nullptr;
    if (P.Units <= 0.0 || P.Time <= 0.0 || P.Reps <= 0)
      return nullptr;
    M->update(P);
  }
  if (std::isfinite(Limit)) {
    Point Fail;
    Fail.Units = Limit;
    Fail.Reps = 0;
    Fail.Time = std::numeric_limits<double>::infinity();
    M->update(Fail);
  }
  return M;
}

bool fupermod::saveModel(const std::string &Path, const Model &M) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  return writeModel(OS, M);
}

std::unique_ptr<Model> fupermod::loadModel(const std::string &Path) {
  std::ifstream IS(Path);
  if (!IS)
    return nullptr;
  return readModel(IS);
}

bool fupermod::writeDist(std::ostream &OS, const Dist &D) {
  OS << "# fupermod dist\n";
  OS << "total " << D.Total << '\n';
  OS << "parts " << D.Parts.size() << '\n';
  OS.precision(17);
  for (std::size_t I = 0; I < D.Parts.size(); ++I)
    OS << I << ' ' << D.Parts[I].Units << ' ' << D.Parts[I].PredictedTime
       << '\n';
  return static_cast<bool>(OS);
}

bool fupermod::readDist(std::istream &IS, Dist &Out) {
  std::string Line;
  Out = Dist();
  std::size_t Count = 0;
  bool HaveTotal = false, HaveParts = false;
  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "total") {
      LS >> Out.Total;
      HaveTotal = true;
    } else if (Key == "parts") {
      LS >> Count;
      HaveParts = true;
      break;
    } else {
      return false;
    }
  }
  if (!HaveTotal || !HaveParts)
    return false;
  Out.Parts.resize(Count);
  for (std::size_t I = 0; I < Count; ++I) {
    if (!std::getline(IS, Line))
      return false;
    std::istringstream LS(Line);
    std::size_t Rank;
    Part P;
    if (!(LS >> Rank >> P.Units >> P.PredictedTime) || Rank != I)
      return false;
    Out.Parts[I] = P;
  }
  return true;
}
