//===-- core/ModelIO.cpp - Model persistence ------------------------------===//

#include "core/ModelIO.h"

#include <cmath>
#include <fstream>
#include <sstream>

using namespace fupermod;

namespace {

std::unique_ptr<Model> readFailed(std::string *Err, const std::string &Why) {
  if (Err)
    *Err = Why;
  return nullptr;
}

} // namespace

bool fupermod::writeModel(std::ostream &OS, const Model &M) {
  OS << "# fupermod model\n";
  OS << "kind " << M.kind() << '\n';
  if (std::isfinite(M.feasibleLimit()))
    OS << "limit " << M.feasibleLimit() << '\n';
  OS << "points " << M.points().size() << '\n';
  OS.precision(17);
  const std::vector<double> &Weights = M.weights();
  for (std::size_t I = 0; I < M.points().size(); ++I) {
    const Point &P = M.points()[I];
    OS << P.Units << ' ' << P.Time << ' ' << P.Reps << ' '
       << P.ConfidenceInterval;
    // The weight column is emitted only when staleness decay (or a
    // merge) moved the weight off its initial value, so undecayed models
    // keep the historical four-column rows bit for bit.
    if (I < Weights.size() && Weights[I] != static_cast<double>(P.Reps))
      OS << ' ' << Weights[I];
    OS << '\n';
  }
  return static_cast<bool>(OS);
}

std::unique_ptr<Model> fupermod::readModel(std::istream &IS,
                                           std::string *Err) {
  std::string Line;
  std::string Kind;
  std::size_t Count = 0;
  bool HaveKind = false, HavePoints = false;
  double Limit = std::numeric_limits<double>::infinity();
  std::size_t LineNo = 0;

  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "kind") {
      LS >> Kind;
      HaveKind = !Kind.empty();
    } else if (Key == "limit") {
      LS >> Limit;
    } else if (Key == "points") {
      LS >> Count;
      HavePoints = true;
      break;
    } else {
      return readFailed(Err, "line " + std::to_string(LineNo) +
                                 ": unknown key '" + Key + "'");
    }
  }
  if (!HaveKind)
    return readFailed(Err, "missing 'kind' header");
  if (!HavePoints)
    return readFailed(Err, "missing 'points' header");

  std::string KindErr;
  std::unique_ptr<Model> M = makeModel(Kind, &KindErr);
  if (!M)
    return readFailed(Err, KindErr);
  std::vector<double> Weights;
  Weights.reserve(Count);
  for (std::size_t I = 0; I < Count; ++I) {
    if (!std::getline(IS, Line))
      return readFailed(Err, "truncated: expected " + std::to_string(Count) +
                                 " points, got " + std::to_string(I));
    ++LineNo;
    std::istringstream LS(Line);
    Point P;
    if (!(LS >> P.Units >> P.Time >> P.Reps >> P.ConfidenceInterval))
      return readFailed(Err, "line " + std::to_string(LineNo) +
                                 ": malformed point (expected 'units time "
                                 "reps ci [weight]')");
    if (P.Units <= 0.0 || P.Time <= 0.0 || P.Reps <= 0)
      return readFailed(Err, "line " + std::to_string(LineNo) +
                                 ": non-positive units, time, or reps");
    double W = static_cast<double>(P.Reps);
    if (LS >> W) {
      if (W <= 0.0)
        return readFailed(Err, "line " + std::to_string(LineNo) +
                                   ": non-positive point weight");
    }
    LS.clear();
    std::string Extra;
    if (LS >> Extra)
      return readFailed(Err, "line " + std::to_string(LineNo) +
                                 ": malformed point (expected 'units time "
                                 "reps ci [weight]')");
    Weights.push_back(W);
    M->update(P);
  }
  if (std::isfinite(Limit)) {
    Point Fail;
    Fail.Units = Limit;
    Fail.Reps = 0;
    Fail.Time = std::numeric_limits<double>::infinity();
    M->update(Fail);
  }
  // Saved points are pre-merged (distinct sizes), so the replay stores
  // them one-to-one and the saved weights map straight onto them.
  if (Weights.size() == M->points().size())
    M->setWeights(Weights);
  if (Err)
    Err->clear();
  return M;
}

bool fupermod::saveModel(const std::string &Path, const Model &M) {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  return writeModel(OS, M);
}

std::unique_ptr<Model> fupermod::loadModel(const std::string &Path,
                                           std::string *Err) {
  std::ifstream IS(Path);
  if (!IS)
    return readFailed(Err, Path + ": cannot open file");
  std::string ReadErr;
  std::unique_ptr<Model> M = readModel(IS, &ReadErr);
  if (!M)
    return readFailed(Err, Path + ": " + ReadErr);
  if (Err)
    Err->clear();
  return M;
}

bool fupermod::writeDist(std::ostream &OS, const Dist &D) {
  OS << "# fupermod dist\n";
  OS << "total " << D.Total << '\n';
  OS << "parts " << D.Parts.size() << '\n';
  OS.precision(17);
  for (std::size_t I = 0; I < D.Parts.size(); ++I)
    OS << I << ' ' << D.Parts[I].Units << ' ' << D.Parts[I].PredictedTime
       << '\n';
  return static_cast<bool>(OS);
}

bool fupermod::readDist(std::istream &IS, Dist &Out) {
  std::string Line;
  Out = Dist();
  std::size_t Count = 0;
  bool HaveTotal = false, HaveParts = false;
  while (std::getline(IS, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Key;
    LS >> Key;
    if (Key == "total") {
      LS >> Out.Total;
      HaveTotal = true;
    } else if (Key == "parts") {
      LS >> Count;
      HaveParts = true;
      break;
    } else {
      return false;
    }
  }
  if (!HaveTotal || !HaveParts)
    return false;
  Out.Parts.resize(Count);
  for (std::size_t I = 0; I < Count; ++I) {
    if (!std::getline(IS, Line))
      return false;
    std::istringstream LS(Line);
    std::size_t Rank;
    Part P;
    if (!(LS >> Rank >> P.Units >> P.PredictedTime) || Rank != I)
      return false;
    Out.Parts[I] = P;
  }
  return true;
}
