//===-- core/Dynamic.h - Dynamic partitioning & balancing -------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic data partitioning and dynamic load balancing (the paper's
/// `fupermod_dynamic`, `fupermod_partition_iterate` and
/// `fupermod_balance_iterate`, Section 4.4). Instead of full performance
/// models built in advance, these algorithms build *partial* estimates
/// from measurements taken at the problem sizes the partitioning itself
/// visits, converging to a balanced distribution at a fraction of the
/// model-construction cost.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_DYNAMIC_H
#define FUPERMOD_CORE_DYNAMIC_H

#include "core/Benchmark.h"
#include "core/Partition.h"

#include <memory>
#include <string>

namespace fupermod {

class Comm;

/// Execution context of the dynamic algorithms: the partitioning
/// algorithm, one partial model per process, and the current distribution.
class DynamicContext {
public:
  /// Creates a context with empty partial models of \p ModelKind and an
  /// even starting distribution of \p Total over \p NumProcs.
  DynamicContext(Partitioner Algorithm, const std::string &ModelKind,
                 std::int64_t Total, int NumProcs);

  /// Current (most recently computed) distribution.
  const Dist &dist() const { return Current; }

  /// Partial model of one process.
  const Model &model(int Rank) const { return *Models[Rank]; }

  /// Number of processes.
  int size() const { return static_cast<int>(Models.size()); }

  /// Feeds one experimental point of process \p Rank into its partial
  /// model and recomputes the distribution with the context's algorithm.
  /// Returns the relative change between the old and new distributions,
  /// or +infinity when repartitioning was not possible yet (some model
  /// still has no successful point) so callers never mistake a skipped
  /// repartition for convergence.
  double updateAndRepartition(int Rank, Point P);

  /// Feeds one point per process (index = rank), then repartitions once.
  double updateAllAndRepartition(std::span<const Point> PerRank);

private:
  Partitioner Algorithm;
  std::vector<std::unique_ptr<Model>> Models;
  Dist Current;
};

/// One step of dynamic data partitioning, executed collectively on \p C.
///
/// Every rank benchmarks its backend at its current share (synchronised
/// measurement), the points are exchanged, all ranks update all partial
/// models identically and repartition. Returns true when the distribution
/// changed by no more than \p Eps (relative to the total) — the paper's
/// termination criterion.
bool partitionIterate(DynamicContext &Ctx, Comm &C,
                      BenchmarkBackend &Backend, const Precision &Prec,
                      double Eps);

/// Runs partitionIterate until convergence or \p MaxIterations; returns
/// the number of iterations performed.
int runDynamicPartitioning(DynamicContext &Ctx, Comm &C,
                           BenchmarkBackend &Backend, const Precision &Prec,
                           double Eps, int MaxIterations);

/// One step of dynamic load balancing, executed collectively on \p C.
///
/// The calling rank contributes the duration of the application iteration
/// that started at virtual time \p IterStartTime on its current share;
/// every rank then updates the partial models and repartitions. Returns
/// the relative change of the distribution.
double balanceIterate(DynamicContext &Ctx, Comm &C, double IterStartTime);

} // namespace fupermod

#endif // FUPERMOD_CORE_DYNAMIC_H
