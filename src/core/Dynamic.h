//===-- core/Dynamic.h - Dynamic partitioning & balancing -------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic data partitioning and dynamic load balancing (the paper's
/// `fupermod_dynamic`, `fupermod_partition_iterate` and
/// `fupermod_balance_iterate`, Section 4.4). Instead of full performance
/// models built in advance, these algorithms build *partial* estimates
/// from measurements taken at the problem sizes the partitioning itself
/// visits, converging to a balanced distribution at a fraction of the
/// model-construction cost.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_DYNAMIC_H
#define FUPERMOD_CORE_DYNAMIC_H

#include "core/Benchmark.h"
#include "core/Partition.h"

#include <memory>
#include <string>

namespace fupermod {

class Comm;

/// Execution context of the dynamic algorithms: the partitioning
/// algorithm, one partial model per process, and the current distribution.
class DynamicContext {
public:
  /// Creates a context with empty partial models of \p ModelKind and an
  /// even starting distribution of \p Total over \p NumProcs.
  DynamicContext(Partitioner Algorithm, const std::string &ModelKind,
                 std::int64_t Total, int NumProcs);

  /// Current (most recently computed) distribution.
  const Dist &dist() const { return Current; }

  /// Partial model of one process.
  const Model &model(int Rank) const { return *Models[Rank]; }

  /// Number of processes.
  int size() const { return static_cast<int>(Models.size()); }

  /// Feeds one experimental point of process \p Rank into its partial
  /// model and recomputes the distribution with the context's algorithm.
  /// Returns the relative change between the old and new distributions,
  /// or +infinity when repartitioning was not possible yet (some model
  /// still has no successful point) so callers never mistake a skipped
  /// repartition for convergence. A point carrying
  /// PointStatus::DeviceFailed excludes the rank (see excludeRank).
  double updateAndRepartition(int Rank, Point P);

  /// Feeds one point per process (index = rank), then repartitions once.
  /// Before the updates, every active model's stored points are decayed
  /// by the staleness factor, so fresh measurements dominate after a
  /// device's behavior changes.
  double updateAllAndRepartition(std::span<const Point> PerRank);

  /// Feeds one point per process (index = rank) into the partial models
  /// without repartitioning: decays every active model by the staleness
  /// factor, applies the updates, and excludes ranks whose point carries
  /// PointStatus::DeviceFailed. Equalization policies call this on every
  /// round — monitoring is free — and pay for repartitionNow() only when
  /// a rebalance is actually requested, so the models have already
  /// tracked a drift by the time the trigger fires.
  void updateAll(std::span<const Point> PerRank);

  /// Recomputes the distribution from the current models over the active
  /// ranks. Returns the relative change between the old and new
  /// distributions, or +infinity when repartitioning was not possible
  /// (some model still has no successful point, or no rank survives).
  double repartitionNow() { return repartition(); }

  /// Sets the exponential staleness decay applied to every model's point
  /// weights per repartitioning round (1 = keep history forever, the
  /// default; smaller values make the models track regime changes like a
  /// mid-run slowdown). Must be in (0, 1].
  void setStalenessDecay(double Factor);

  /// Current staleness-decay factor.
  double stalenessDecay() const { return DecayFactor; }

  /// Removes \p Rank from partitioning: its share drops to zero and the
  /// total is redistributed over the surviving ranks from the next
  /// repartition on. Idempotent; the first reason is kept.
  void excludeRank(int Rank, std::string Reason);

  /// True when \p Rank has been excluded from partitioning.
  bool isExcluded(int Rank) const;

  /// Why \p Rank was excluded (empty for active ranks).
  const std::string &exclusionReason(int Rank) const;

  /// Number of ranks still participating in partitioning.
  int activeCount() const;

  /// Reverts the current distribution to \p Previous without touching the
  /// partial models. Used by cost-arbitrated equalization: a vetoed
  /// repartition keeps feeding measurements into the models (so later
  /// quotes stay sharp) but the running distribution must stay put.
  /// \p Previous must describe the same rank count and total as the
  /// current distribution.
  void restoreDist(const Dist &Previous);

private:
  /// Repartitions Current over the active ranks; excluded ranks receive
  /// zero units. Returns the relative change, or +infinity when no valid
  /// distribution could be produced.
  double repartition();

  Partitioner Algorithm;
  std::vector<std::unique_ptr<Model>> Models;
  /// Exclusion reason per rank; empty string = active.
  std::vector<std::string> Exclusions;
  Dist Current;
  double DecayFactor = 1.0;
};

/// One step of dynamic data partitioning, executed collectively on \p C.
///
/// Every rank benchmarks its backend at its current share (synchronised
/// measurement), the points are exchanged, all ranks update all partial
/// models identically and repartition. Returns true when the distribution
/// changed by no more than \p Eps (relative to the total) — the paper's
/// termination criterion.
bool partitionIterate(DynamicContext &Ctx, Comm &C,
                      BenchmarkBackend &Backend, const Precision &Prec,
                      double Eps);

/// Runs partitionIterate until convergence or \p MaxIterations; returns
/// the number of iterations performed.
int runDynamicPartitioning(DynamicContext &Ctx, Comm &C,
                           BenchmarkBackend &Backend, const Precision &Prec,
                           double Eps, int MaxIterations);

/// One step of dynamic load balancing, executed collectively on \p C.
///
/// The calling rank contributes the duration of the application iteration
/// that started at virtual time \p IterStartTime on its current share;
/// every rank then updates the partial models and repartitions. Returns
/// the relative change of the distribution.
///
/// A rank whose device has hard-failed passes \p DeviceFailed = true; its
/// contribution then carries PointStatus::DeviceFailed, every rank
/// excludes it in lockstep, and the repartition shifts its share onto
/// the survivors.
double balanceIterate(DynamicContext &Ctx, Comm &C, double IterStartTime,
                      bool DeviceFailed = false);

} // namespace fupermod

#endif // FUPERMOD_CORE_DYNAMIC_H
