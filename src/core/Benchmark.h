//===-- core/Benchmark.h - Performance measurement --------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistically reliable performance measurement (the paper's
/// `fupermod_benchmark`, Section 4.1). A benchmark repeats a timed kernel
/// execution until the Student-t confidence interval around the mean is
/// tight enough (or a repetition/time cap is hit) and returns a Point.
///
/// Two backends:
///  - NativeKernelBackend: really executes a Kernel and measures wall
///    clock (for model building on the host machine);
///  - SimDeviceBackend: draws a noisy sample from a simulated device and
///    (when attached to a communicator) advances the rank's virtual clock,
///    so benchmarking costs simulated time just like on a real platform.
///
/// Passing a Comm synchronises every repetition across the processes that
/// share resources — the paper's `comm_sync`, which maximises memory
/// traffic during measurement on multicore nodes.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_BENCHMARK_H
#define FUPERMOD_CORE_BENCHMARK_H

#include "core/Kernel.h"
#include "core/Model.h"
#include "core/Point.h"
#include "support/Statistics.h"

#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace fupermod {

class Comm;
class SimDevice;
struct Cluster;

/// Statistical parameters of a measurement (the paper's
/// `fupermod_precision`).
struct Precision {
  /// Minimum repetitions before the confidence test may stop the run.
  int MinReps = 3;
  /// Hard cap on repetitions.
  int MaxReps = 30;
  /// Target relative half-width of the confidence interval.
  double TargetRelativeError = 0.025;
  /// Confidence level of the interval.
  ConfidenceLevel Level = ConfidenceLevel::CL95;
  /// Stop repeating once this much measurement time has accumulated.
  double TimeLimit = std::numeric_limits<double>::infinity();
  /// Drop repetitions further than 3.5 scaled MADs from the median
  /// before computing the final mean/interval — robust against the
  /// occasional scheduler hiccup on real machines.
  bool RejectOutliers = false;
  /// A single repetition taking longer than this is treated as hung.
  /// The default (infinity) preserves the historical wait-forever
  /// behavior.
  double RepTimeout = std::numeric_limits<double>::infinity();
  /// How many times a hung/failed repetition is retried before the whole
  /// measurement is abandoned as a failed Point.
  int MaxRetries = 2;
  /// Seconds to wait before the first retry; doubles on each subsequent
  /// retry. 0 retries immediately.
  double RetryBackoff = 0.0;
};

/// The outcome of one guarded repetition (see runOnceChecked).
struct RunOutcome {
  /// Elapsed seconds as far as the caller can observe; for a timed-out
  /// repetition this is capped at the timeout the caller waited.
  double Seconds = 0.0;
  /// The repetition exceeded the per-repetition timeout.
  bool TimedOut = false;
  /// The backend reported hard device failure; Seconds is meaningless.
  bool Failed = false;
};

/// How a single timed repetition is obtained.
class BenchmarkBackend {
public:
  virtual ~BenchmarkBackend();

  /// Prepares the execution context for \p Units; returns false when the
  /// size cannot be executed on this device (e.g. exceeds memory).
  virtual bool prepare(double Units) = 0;

  /// Runs the kernel once and returns the elapsed time in seconds.
  virtual double runOnce() = 0;

  /// Runs the kernel once under a hang guard. The default implementation
  /// cannot preempt runOnce, so it flags the timeout post-hoc (the
  /// repetition still blocks, but the sample is discarded and the run
  /// can be abandoned). Backends with interruptible execution — like the
  /// simulator — override this to stop waiting at \p Timeout.
  virtual RunOutcome runOnceChecked(double Timeout);

  /// Waits \p Seconds before a retry. The default sleeps nothing (retry
  /// immediately); clocked backends advance virtual time instead.
  virtual void backoffWait(double Seconds) { (void)Seconds; }

  /// Releases the execution context.
  virtual void teardown() {}
};

/// Executes a real Kernel and measures wall-clock time.
class NativeKernelBackend : public BenchmarkBackend {
public:
  explicit NativeKernelBackend(Kernel &K) : K(K) {}

  bool prepare(double Units) override;
  double runOnce() override;
  void teardown() override;

private:
  Kernel &K;
};

/// Samples execution times from a simulated device. When a communicator
/// is attached, each repetition advances the rank's virtual clock by the
/// sampled time, so model construction has a visible cost in experiments.
class SimDeviceBackend : public BenchmarkBackend {
public:
  explicit SimDeviceBackend(SimDevice &Device, Comm *Clocked = nullptr)
      : Device(Device), Clocked(Clocked) {}

  bool prepare(double Units) override;
  double runOnce() override;
  RunOutcome runOnceChecked(double Timeout) override;
  void backoffWait(double Seconds) override;

  /// Re-points the virtual-clock target (e.g. after a split).
  void attachComm(Comm *C) { Clocked = C; }

  /// Makes simulated measurements cost real wall time: each repetition
  /// blocks the calling thread for Scale * sampled seconds, the way a
  /// host thread blocks while its device executes a kernel. Sampled
  /// values (and thus Points) are unaffected, so throughput benches can
  /// exercise the parallel build path with realistic wall-clock cost
  /// while remaining bit-deterministic. 0 (the default) disables it.
  void emulateWallTime(double Scale) { WallScale = Scale; }

private:
  SimDevice &Device;
  Comm *Clocked;
  double Units = 0.0;
  double WallScale = 0.0;
};

/// Measures \p Backend at problem size \p Units under the given precision.
///
/// When \p Sync is non-null, all ranks of that communicator barrier before
/// every repetition (synchronous measurement on shared resources). Returns
/// a Point with Reps = 0 when the backend cannot execute the size
/// (Status = Infeasible) or when hangs/failures exhaust the retry budget
/// before MinReps good samples accumulate (Status = TimedOut /
/// DeviceFailed). A failing rank still joins every collective, so
/// synchronous measurement never deadlocks on a sick device.
Point runBenchmark(BenchmarkBackend &Backend, double Units,
                   const Precision &Prec, Comm *Sync = nullptr);

/// How to build one performance model per device of a cluster (the
/// builder tool's measurement campaign, paper Section 4.1 + 4.2).
struct ModelBuildPlan {
  /// Model kind per rank ("cpm", "piecewise", "akima", "linear").
  std::string Kind = "piecewise";
  /// Smallest and largest benchmarked problem size.
  double MinSize = 32.0;
  double MaxSize = 1024.0;
  /// Number of sizes, spread evenly over [MinSize, MaxSize].
  int NumPoints = 10;
  /// Statistical stopping rule of every measurement.
  Precision Prec;
  /// Worker threads benchmarking devices concurrently; 1 runs the ranks
  /// inline in order (the serial reference path).
  int Jobs = 1;
  /// Wall-time emulation scale forwarded to every SimDeviceBackend (see
  /// SimDeviceBackend::emulateWallTime); 0 disables.
  double WallScale = 0.0;
};

/// One rank's build outcome: the fitted model plus the raw measured
/// points in benchmark order (kept separately because failed points are
/// filtered or merged by Model::update, and the determinism tests compare
/// the raw sequences bit-for-bit).
struct BuiltModel {
  std::unique_ptr<Model> M;
  std::vector<Point> Raw;
};

/// Benchmarks every device of \p Cl and fits one model per rank.
///
/// Each rank's device, repetition loop, fault guards and Student-t
/// stopping rule run independently on its own worker; devices carry
/// per-rank RNG streams (Cluster::Seed + rank), so the resulting Point
/// sets are bit-identical for any worker count, including Jobs = 1.
/// A worker that throws propagates its exception to the caller.
std::vector<BuiltModel> buildModelsParallel(const Cluster &Cl,
                                            const ModelBuildPlan &Plan);

/// The benchmark size grid of \p Plan: NumPoints sizes evenly spaced over
/// [MinSize, MaxSize] (a single point sits at MinSize). Exposed so tools
/// and tests iterate exactly the sizes the build used.
std::vector<double> buildSizeGrid(const ModelBuildPlan &Plan);

} // namespace fupermod

#endif // FUPERMOD_CORE_BENCHMARK_H
