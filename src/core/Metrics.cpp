//===-- core/Metrics.cpp - Partition quality metrics ----------------------===//

#include "core/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace fupermod;

std::vector<double>
fupermod::trueTimes(const Dist &D, std::span<const DeviceProfile> Profiles) {
  assert(D.Parts.size() == Profiles.size() &&
         "one profile per part expected");
  std::vector<double> Times(D.Parts.size(), 0.0);
  for (std::size_t I = 0; I < D.Parts.size(); ++I)
    Times[I] = Profiles[I].time(static_cast<double>(D.Parts[I].Units));
  return Times;
}

double fupermod::makespan(std::span<const double> Times) {
  double Max = 0.0;
  for (double T : Times)
    Max = std::max(Max, T);
  return Max;
}

double fupermod::imbalance(std::span<const double> Times) {
  // An empty or all-zero set of times (every rank excluded, or a
  // zero-unit distribution) is perfectly balanced by definition — and
  // dividing by max would be UB / 0-division here, so guard first.
  if (Times.empty())
    return 0.0;
  double Max = Times[0], Min = Times[0];
  for (double T : Times) {
    Max = std::max(Max, T);
    Min = std::min(Min, T);
  }
  if (Max <= 0.0)
    return 0.0;
  return (Max - Min) / Max;
}

double fupermod::imbalance(std::span<const double> Times,
                           std::span<const std::uint8_t> Active) {
  assert(Times.size() == Active.size() && "one mask entry per time");
  bool Any = false;
  double Max = 0.0, Min = 0.0;
  for (std::size_t I = 0; I < Times.size(); ++I) {
    if (!Active[I])
      continue;
    if (!Any) {
      Max = Min = Times[I];
      Any = true;
      continue;
    }
    Max = std::max(Max, Times[I]);
    Min = std::min(Min, Times[I]);
  }
  if (!Any || Max <= 0.0)
    return 0.0;
  return (Max - Min) / Max;
}

double
fupermod::optimalMakespan(std::int64_t Total,
                          std::span<const DeviceProfile> Profiles) {
  assert(!Profiles.empty() && Total > 0 && "invalid optimisation request");
  double D = static_cast<double>(Total);

  // Units a device can process within time T (monotone in T because work
  // is divisible: the device may always process less than its peak).
  // Found by bisection on x in [0, D] of the monotone-envelope condition
  // time(x) <= T; profiles here are true time functions, which are
  // monotone for all shipped profile shapes.
  auto UnitsWithin = [&](const DeviceProfile &P, double T) {
    if (P.time(D) <= T)
      return D;
    double Lo = 0.0, Hi = D;
    for (int I = 0; I < 60; ++I) {
      double Mid = 0.5 * (Lo + Hi);
      if (P.time(Mid) <= T)
        Lo = Mid;
      else
        Hi = Mid;
    }
    return Lo;
  };
  auto Capacity = [&](double T) {
    double Sum = 0.0;
    for (const DeviceProfile &P : Profiles)
      Sum += UnitsWithin(P, T);
    return Sum;
  };

  double Hi = Profiles[0].time(D);
  for (const DeviceProfile &P : Profiles)
    Hi = std::min(Hi, P.time(D));
  // Hi = everything on the single best device: certainly enough capacity.
  double Lo = 0.0;
  for (int I = 0; I < 80; ++I) {
    double Mid = 0.5 * (Lo + Hi);
    if (Capacity(Mid) >= D)
      Hi = Mid;
    else
      Lo = Mid;
  }
  return Hi;
}
