//===-- core/Point.h - Measurement result -----------------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of benchmarking a computation kernel at one problem size
/// (the paper's `fupermod_point`).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_POINT_H
#define FUPERMOD_CORE_POINT_H

namespace fupermod {

/// Why a measurement did (not) produce a usable timing.
///
/// The distinction matters to Model::update: an Infeasible failure is a
/// property of the *size* (too big for the device) and tightens the
/// model's feasibility limit, while TimedOut / DeviceFailed are
/// properties of the *device's health* and must not poison the model.
enum class PointStatus {
  /// Normal measurement (or a legacy Reps = 0 infeasibility marker).
  Ok,
  /// The backend could not prepare this size (e.g. out of memory).
  Infeasible,
  /// Every attempted repetition exceeded the per-repetition timeout.
  TimedOut,
  /// The backend reported hard device failure.
  DeviceFailed,
};

/// One experimental point of a computation performance model.
///
/// Trivially copyable so points can be exchanged through the
/// message-passing runtime directly.
struct Point {
  /// Problem size in computation units.
  double Units = 0.0;
  /// Measured (mean) execution time in seconds.
  double Time = 0.0;
  /// Number of repetitions the measurement actually took.
  int Reps = 0;
  /// Half-width of the confidence interval around Time.
  double ConfidenceInterval = 0.0;
  /// Health of the measurement that produced this point.
  PointStatus Status = PointStatus::Ok;

  /// Measured speed in units per second.
  double speed() const { return Time > 0.0 ? Units / Time : 0.0; }

  /// True when the point carries a usable timing.
  bool ok() const { return Reps > 0 && Time > 0.0; }

  /// True when the failure reflects device health rather than size
  /// infeasibility (and so must not shrink the feasibility limit).
  bool deviceFault() const {
    return Status == PointStatus::TimedOut ||
           Status == PointStatus::DeviceFailed;
  }
};

} // namespace fupermod

#endif // FUPERMOD_CORE_POINT_H
