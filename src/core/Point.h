//===-- core/Point.h - Measurement result -----------------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of benchmarking a computation kernel at one problem size
/// (the paper's `fupermod_point`).
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_POINT_H
#define FUPERMOD_CORE_POINT_H

namespace fupermod {

/// One experimental point of a computation performance model.
///
/// Trivially copyable so points can be exchanged through the
/// message-passing runtime directly.
struct Point {
  /// Problem size in computation units.
  double Units = 0.0;
  /// Measured (mean) execution time in seconds.
  double Time = 0.0;
  /// Number of repetitions the measurement actually took.
  int Reps = 0;
  /// Half-width of the confidence interval around Time.
  double ConfidenceInterval = 0.0;

  /// Measured speed in units per second.
  double speed() const { return Time > 0.0 ? Units / Time : 0.0; }
};

} // namespace fupermod

#endif // FUPERMOD_CORE_POINT_H
