//===-- core/Partition.cpp - Workload distribution ------------------------===//

#include "core/Partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

using namespace fupermod;

Dist Dist::even(std::int64_t Total, int NumProcs) {
  assert(Total >= 0 && NumProcs > 0 && "invalid distribution request");
  Dist D;
  D.Total = Total;
  D.Parts.resize(static_cast<std::size_t>(NumProcs));
  std::int64_t Base = Total / NumProcs;
  std::int64_t Rem = Total % NumProcs;
  for (int I = 0; I < NumProcs; ++I)
    D.Parts[static_cast<std::size_t>(I)].Units = Base + (I < Rem ? 1 : 0);
  return D;
}

std::int64_t Dist::sum() const {
  std::int64_t S = 0;
  for (const Part &P : Parts)
    S += P.Units;
  return S;
}

double Dist::maxPredictedTime() const {
  double Max = 0.0;
  for (const Part &P : Parts)
    Max = std::max(Max, P.PredictedTime);
  return Max;
}

double Dist::relativeChange(const Dist &Other) const {
  assert(Parts.size() == Other.Parts.size() && "mismatched distributions");
  assert(Total > 0 && "relative change of an empty distribution");
  double MaxChange = 0.0;
  for (std::size_t I = 0; I < Parts.size(); ++I) {
    double Delta = static_cast<double>(
        std::llabs(Parts[I].Units - Other.Parts[I].Units));
    MaxChange = std::max(MaxChange, Delta / static_cast<double>(Total));
  }
  return MaxChange;
}

bool Dist::sameUnits(const Dist &Other) const {
  if (Parts.size() != Other.Parts.size())
    return false;
  for (std::size_t I = 0; I < Parts.size(); ++I)
    if (Parts[I].Units != Other.Parts[I].Units)
      return false;
  return true;
}

std::vector<std::int64_t> Dist::contiguousStarts(std::int64_t Base) const {
  std::vector<std::int64_t> Starts(Parts.size() + 1, Base);
  for (std::size_t I = 0; I < Parts.size(); ++I)
    Starts[I + 1] = Starts[I] + Parts[I].Units;
  return Starts;
}

int fupermod::ownerOfUnit(std::span<const std::int64_t> Starts,
                          std::int64_t Unit) {
  assert(Starts.size() >= 2 && "prefix starts require P + 1 entries");
  if (Unit < Starts.front() || Unit >= Starts.back())
    return -1;
  // Upper bound over the (non-decreasing) prefix array: the owner is the
  // last rank whose start is <= Unit; empty ranges share their start with
  // the next rank and are skipped by taking the upper bound.
  auto It = std::upper_bound(Starts.begin(), Starts.end(), Unit);
  assert(It != Starts.begin());
  return static_cast<int>(std::distance(Starts.begin(), It)) - 1;
}

std::int64_t fupermod::maxUnitsUnderCap(double Cap) {
  if (!std::isfinite(Cap))
    return std::numeric_limits<std::int64_t>::max();
  double Limit = std::ceil(Cap) - 1.0;
  if (Limit <= 0.0)
    return 0;
  if (Limit >= 9.2e18)
    return std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>(Limit);
}

std::vector<std::int64_t>
fupermod::roundSharesCapped(std::span<const double> Shares,
                            std::int64_t Total,
                            std::span<const double> Caps) {
  assert(Shares.size() == Caps.size() && "one cap per share expected");
  std::vector<std::int64_t> Units = roundShares(Shares, Total);

  // Pull any excess above the caps into a pool...
  std::int64_t Pool = 0;
  for (std::size_t I = 0; I < Units.size(); ++I) {
    std::int64_t Max = maxUnitsUnderCap(Caps[I]);
    if (Units[I] > Max) {
      Pool += Units[I] - Max;
      Units[I] = Max;
    }
  }
  // ...and redistribute it one unit at a time to the parts with the most
  // remaining headroom (callers verify aggregate capacity beforehand).
  while (Pool > 0) {
    std::size_t Best = Units.size();
    std::int64_t BestHeadroom = 0;
    for (std::size_t I = 0; I < Units.size(); ++I) {
      std::int64_t Headroom = maxUnitsUnderCap(Caps[I]) - Units[I];
      if (Headroom > BestHeadroom) {
        BestHeadroom = Headroom;
        Best = I;
      }
    }
    if (Best == Units.size())
      break; // Saturated: not enough capacity for Total.
    std::int64_t Move = std::min(Pool, (BestHeadroom + 1) / 2);
    Move = std::max<std::int64_t>(Move, 1);
    Units[Best] += Move;
    Pool -= Move;
  }
  return Units;
}

std::vector<std::int64_t> fupermod::roundShares(std::span<const double> Shares,
                                                std::int64_t Total) {
  std::size_t N = Shares.size();
  assert(N > 0 && "no shares to round");
  std::vector<std::int64_t> Units(N, 0);
  std::vector<double> Frac(N, 0.0);
  std::int64_t Assigned = 0;
  for (std::size_t I = 0; I < N; ++I) {
    double S = std::max(Shares[I], 0.0);
    Units[I] = static_cast<std::int64_t>(std::floor(S));
    Frac[I] = S - std::floor(S);
    Assigned += Units[I];
  }

  // Distribute the remainder to the largest fractional parts; if rounding
  // overshot (shares summed above Total), trim from the smallest.
  std::vector<std::size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(), [&](std::size_t A, std::size_t B) {
    if (Frac[A] != Frac[B])
      return Frac[A] > Frac[B];
    return A < B;
  });
  std::size_t Cursor = 0;
  while (Assigned < Total) {
    Units[Order[Cursor % N]] += 1;
    ++Assigned;
    ++Cursor;
  }
  Cursor = 0;
  while (Assigned > Total) {
    // Trim in reverse preference order, skipping empty parts.
    std::size_t Idx = Order[N - 1 - (Cursor % N)];
    if (Units[Idx] > 0) {
      Units[Idx] -= 1;
      --Assigned;
    }
    ++Cursor;
  }
  return Units;
}
