//===-- core/Kernel.h - Computation kernel interface ------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computation-kernel abstraction (the paper's `fupermod_kernel`,
/// Section 4.1). An application provides a serial kernel that is
/// representative of one iteration of its computational core; the
/// framework benchmarks it to build performance models.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_KERNEL_H
#define FUPERMOD_CORE_KERNEL_H

#include "support/Registry.h"

#include <cstdint>
#include <memory>

namespace fupermod {

/// A serial computation kernel parameterised by problem size in
/// computation units.
///
/// Lifecycle: initialize(d) once per size, execute() any number of times
/// (each call is one measurable run), finalize() to release resources.
/// The computation unit is defined by the application and must not vary
/// during execution (paper Section 3).
class Kernel {
public:
  virtual ~Kernel();

  /// Number of floating-point operations needed to compute \p Units
  /// computation units (the paper's `complexity`); converts speed from
  /// units/s to FLOPS.
  virtual double complexity(double Units) const = 0;

  /// Allocates and initialises the execution context for a problem of
  /// \p Units computation units, reproducing the memory footprint of the
  /// real application. Returns false if the size cannot be handled.
  virtual bool initialize(std::int64_t Units) = 0;

  /// Runs the kernel once on the context created by initialize().
  virtual void execute() = 0;

  /// Destroys the execution context.
  virtual void finalize() = 0;
};

/// Construction parameters shared by all registered kernels. A kernel
/// factory reads the fields it understands and ignores the rest, so one
/// configuration can be passed uniformly through the engine.
struct KernelConfig {
  /// Blocking factor b (side of one square block).
  std::size_t BlockSize = 16;
  /// Cache-tiled GEMM (optimised BLAS stand-in) over the naive one.
  bool UseBlockedGemm = true;
  /// Register-blocked, runtime-ISA-dispatched micro-kernel (tuned vendor
  /// BLAS stand-in); takes precedence over UseBlockedGemm. Results stay
  /// within the documented reassociation error bound of the blocked
  /// kernel (see blas/Gemm.h), but are not bit-identical to it.
  bool UseMicroGemm = false;
  /// Intra-kernel threads (> 1 selects the multithreaded BLAS stand-in).
  unsigned Threads = 1;
};

/// The kernel registry ("gemm"); additional kernels can be registered by
/// applications. Each factory builds a fresh kernel from a KernelConfig.
using KernelRegistry =
    Registry<std::unique_ptr<Kernel>, const KernelConfig &>;
KernelRegistry &kernelRegistry();

/// Builds the kernel registered under \p Name via kernelRegistry().
/// Returns null on unknown names; when \p Err is non-null it then
/// receives a diagnostic listing every registered kernel.
std::unique_ptr<Kernel> makeKernel(const std::string &Name,
                                   const KernelConfig &Config,
                                   std::string *Err = nullptr);

} // namespace fupermod

#endif // FUPERMOD_CORE_KERNEL_H
