//===-- core/Dynamic.cpp - Dynamic partitioning & balancing ---------------===//

#include "core/Dynamic.h"

#include "mpp/Comm.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace fupermod;

DynamicContext::DynamicContext(Partitioner Algorithm,
                               const std::string &ModelKind,
                               std::int64_t Total, int NumProcs)
    : Algorithm(std::move(Algorithm)) {
  assert(this->Algorithm && "null partitioning algorithm");
  assert(NumProcs > 0 && "need at least one process");
  Models.reserve(static_cast<std::size_t>(NumProcs));
  for (int I = 0; I < NumProcs; ++I)
    Models.push_back(makeModel(ModelKind));
  Exclusions.assign(static_cast<std::size_t>(NumProcs), std::string());
  Current = Dist::even(Total, NumProcs);
}

void DynamicContext::setStalenessDecay(double Factor) {
  assert(Factor > 0.0 && Factor <= 1.0 && "decay factor must be in (0, 1]");
  DecayFactor = Factor;
}

void DynamicContext::excludeRank(int Rank, std::string Reason) {
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  std::string &Slot = Exclusions[static_cast<std::size_t>(Rank)];
  if (!Slot.empty())
    return;
  Slot = Reason.empty() ? std::string("excluded") : std::move(Reason);
}

bool DynamicContext::isExcluded(int Rank) const {
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  return !Exclusions[static_cast<std::size_t>(Rank)].empty();
}

const std::string &DynamicContext::exclusionReason(int Rank) const {
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  return Exclusions[static_cast<std::size_t>(Rank)];
}

int DynamicContext::activeCount() const {
  int N = 0;
  for (const std::string &Reason : Exclusions)
    N += Reason.empty() ? 1 : 0;
  return N;
}

void DynamicContext::restoreDist(const Dist &Previous) {
  assert(Previous.Parts.size() == Current.Parts.size() &&
         "restored distribution changes the rank count");
  assert(Previous.Total == Current.Total &&
         "restored distribution changes the problem size");
  Current = Previous;
}

double DynamicContext::repartition() {
  std::vector<Model *> Active;
  std::vector<int> ActiveRanks;
  Active.reserve(Models.size());
  for (int R = 0; R < size(); ++R)
    if (!isExcluded(R)) {
      Active.push_back(Models[static_cast<std::size_t>(R)].get());
      ActiveRanks.push_back(R);
    }
  if (Active.empty())
    // Every device is gone; nothing can absorb the workload.
    return std::numeric_limits<double>::infinity();

  Dist Sub;
  if (!Algorithm(Current.Total, Active, Sub))
    // Models not all fitted yet (or capacity unknown): keep the current
    // distribution and report "not converged".
    return std::numeric_limits<double>::infinity();

  // Map the sub-distribution over the survivors back to global ranks;
  // excluded ranks hold zero units so the survivors carry the full total.
  Dist Next;
  Next.Total = Current.Total;
  Next.Parts.assign(Models.size(), Part());
  for (std::size_t I = 0; I < ActiveRanks.size(); ++I)
    Next.Parts[static_cast<std::size_t>(ActiveRanks[I])] = Sub.Parts[I];
  double Change = Next.relativeChange(Current);
  Current = Next;
  return Change;
}

double DynamicContext::updateAndRepartition(int Rank, Point P) {
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  if (P.Status == PointStatus::DeviceFailed)
    excludeRank(Rank, "device reported hard failure");
  if (!isExcluded(Rank)) {
    Model &M = *Models[static_cast<std::size_t>(Rank)];
    M.decayWeights(DecayFactor);
    M.update(P);
  }
  return repartition();
}

void DynamicContext::updateAll(std::span<const Point> PerRank) {
  assert(static_cast<int>(PerRank.size()) == size() &&
         "one point per process expected");
  for (int R = 0; R < size(); ++R) {
    if (PerRank[R].Status == PointStatus::DeviceFailed)
      excludeRank(R, "device reported hard failure");
    if (isExcluded(R))
      continue;
    Model &M = *Models[static_cast<std::size_t>(R)];
    M.decayWeights(DecayFactor);
    M.update(PerRank[R]);
  }
}

double
DynamicContext::updateAllAndRepartition(std::span<const Point> PerRank) {
  updateAll(PerRank);
  return repartition();
}

bool fupermod::partitionIterate(DynamicContext &Ctx, Comm &C,
                                BenchmarkBackend &Backend,
                                const Precision &Prec, double Eps) {
  assert(Ctx.size() == C.size() && "context/communicator size mismatch");
  // Benchmark the representative kernel at this rank's current share; a
  // rank holding nothing still measures one unit so its model gets data.
  std::int64_t MyUnits = Ctx.dist().Parts[C.rank()].Units;
  double Units = static_cast<double>(std::max<std::int64_t>(MyUnits, 1));

  // Once a measurement has failed on this device (size beyond its
  // memory), sizes between the largest known success and the smallest
  // known failure are unknown territory. Probing the midpoint instead of
  // the assigned share bisects towards the true limit, so the feasibility
  // cap converges in logarithmically many iterations instead of shrinking
  // one unit per failure.
  const Model &Mine = Ctx.model(C.rank());
  double Limit = Mine.feasibleLimit();
  if (std::isfinite(Limit)) {
    double Known = Mine.fitted() ? Mine.points().back().Units : 0.0;
    if (Units > Known) {
      double Probe =
          std::floor(0.5 * (Known + std::min(Units, Limit)));
      if (Probe <= Known)
        Probe = Known + 1.0; // One-unit gap left: test it directly.
      Units = std::max(1.0, Probe);
    }
  }

  Point Measured = runBenchmark(Backend, Units, Prec, &C);

  // Exchange points; every rank then performs the identical model update
  // and repartitioning, keeping the contexts in lockstep without a root.
  std::vector<Point> All =
      C.allgatherv(std::span<const Point>(&Measured, 1));
  double Change = Ctx.updateAllAndRepartition(All);

  // Converged only when the distribution is stable AND every rank's
  // assignment lies in its known-feasible region; a capped device whose
  // exact limit is still being bisected keeps the loop alive even though
  // the (capped) distribution no longer moves.
  const Model &MineNow = Ctx.model(C.rank());
  double NewUnits = static_cast<double>(
      std::max<std::int64_t>(Ctx.dist().Parts[C.rank()].Units, 1));
  bool Settled = true;
  if (std::isfinite(MineNow.feasibleLimit())) {
    double Known =
        MineNow.fitted() ? MineNow.points().back().Units : 0.0;
    Settled = NewUnits <= Known;
  }
  bool AllSettled =
      C.allreduceValue(Settled ? 1.0 : 0.0, ReduceOp::Min) > 0.0;
  return Change <= Eps && AllSettled;
}

int fupermod::runDynamicPartitioning(DynamicContext &Ctx, Comm &C,
                                     BenchmarkBackend &Backend,
                                     const Precision &Prec, double Eps,
                                     int MaxIterations) {
  for (int It = 1; It <= MaxIterations; ++It)
    if (partitionIterate(Ctx, C, Backend, Prec, Eps))
      return It;
  return MaxIterations;
}

double fupermod::balanceIterate(DynamicContext &Ctx, Comm &C,
                                double IterStartTime, bool DeviceFailed) {
  assert(Ctx.size() == C.size() && "context/communicator size mismatch");
  // The measurement is the real duration of the application iteration the
  // caller just finished on its current share (paper Fig. 4 usage).
  Point Mine;
  Mine.Units = static_cast<double>(
      std::max<std::int64_t>(Ctx.dist().Parts[C.rank()].Units, 1));
  if (DeviceFailed) {
    Mine.Reps = 0;
    Mine.Time = std::numeric_limits<double>::infinity();
    Mine.Status = PointStatus::DeviceFailed;
  } else {
    Mine.Time = C.time() - IterStartTime;
    Mine.Reps = 1;
    assert(Mine.Time >= 0.0 && "iteration start lies in the future");
    if (Mine.Time <= 0.0) {
      // Degenerate timing: contribute nothing. TimedOut (a health
      // status) keeps Model::update from misreading the share as an
      // infeasible *size*.
      Mine.Reps = 0;
      Mine.Status = PointStatus::TimedOut;
    }
  }

  std::vector<Point> All = C.allgatherv(std::span<const Point>(&Mine, 1));
  return Ctx.updateAllAndRepartition(All);
}
