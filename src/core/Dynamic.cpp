//===-- core/Dynamic.cpp - Dynamic partitioning & balancing ---------------===//

#include "core/Dynamic.h"

#include "mpp/Comm.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace fupermod;

DynamicContext::DynamicContext(Partitioner Algorithm,
                               const std::string &ModelKind,
                               std::int64_t Total, int NumProcs)
    : Algorithm(std::move(Algorithm)) {
  assert(this->Algorithm && "null partitioning algorithm");
  assert(NumProcs > 0 && "need at least one process");
  Models.reserve(static_cast<std::size_t>(NumProcs));
  for (int I = 0; I < NumProcs; ++I)
    Models.push_back(makeModel(ModelKind));
  Current = Dist::even(Total, NumProcs);
}

double DynamicContext::updateAndRepartition(int Rank, Point P) {
  assert(Rank >= 0 && Rank < size() && "rank out of range");
  Models[static_cast<std::size_t>(Rank)]->update(P);
  std::vector<Model *> Ptrs;
  Ptrs.reserve(Models.size());
  for (auto &M : Models)
    Ptrs.push_back(M.get());

  Dist Next = Current;
  if (!Algorithm(Current.Total, Ptrs, Next))
    // Models not all fitted yet (or capacity unknown): keep the current
    // distribution and report "not converged".
    return std::numeric_limits<double>::infinity();
  double Change = Next.relativeChange(Current);
  Current = Next;
  return Change;
}

double
DynamicContext::updateAllAndRepartition(std::span<const Point> PerRank) {
  assert(static_cast<int>(PerRank.size()) == size() &&
         "one point per process expected");
  for (int R = 0; R < size(); ++R)
    Models[static_cast<std::size_t>(R)]->update(PerRank[R]);
  std::vector<Model *> Ptrs;
  Ptrs.reserve(Models.size());
  for (auto &M : Models)
    Ptrs.push_back(M.get());

  Dist Next = Current;
  if (!Algorithm(Current.Total, Ptrs, Next))
    return std::numeric_limits<double>::infinity();
  double Change = Next.relativeChange(Current);
  Current = Next;
  return Change;
}

bool fupermod::partitionIterate(DynamicContext &Ctx, Comm &C,
                                BenchmarkBackend &Backend,
                                const Precision &Prec, double Eps) {
  assert(Ctx.size() == C.size() && "context/communicator size mismatch");
  // Benchmark the representative kernel at this rank's current share; a
  // rank holding nothing still measures one unit so its model gets data.
  std::int64_t MyUnits = Ctx.dist().Parts[C.rank()].Units;
  double Units = static_cast<double>(std::max<std::int64_t>(MyUnits, 1));

  // Once a measurement has failed on this device (size beyond its
  // memory), sizes between the largest known success and the smallest
  // known failure are unknown territory. Probing the midpoint instead of
  // the assigned share bisects towards the true limit, so the feasibility
  // cap converges in logarithmically many iterations instead of shrinking
  // one unit per failure.
  const Model &Mine = Ctx.model(C.rank());
  double Limit = Mine.feasibleLimit();
  if (std::isfinite(Limit)) {
    double Known = Mine.fitted() ? Mine.points().back().Units : 0.0;
    if (Units > Known) {
      double Probe =
          std::floor(0.5 * (Known + std::min(Units, Limit)));
      if (Probe <= Known)
        Probe = Known + 1.0; // One-unit gap left: test it directly.
      Units = std::max(1.0, Probe);
    }
  }

  Point Measured = runBenchmark(Backend, Units, Prec, &C);

  // Exchange points; every rank then performs the identical model update
  // and repartitioning, keeping the contexts in lockstep without a root.
  std::vector<Point> All =
      C.allgatherv(std::span<const Point>(&Measured, 1));
  double Change = Ctx.updateAllAndRepartition(All);

  // Converged only when the distribution is stable AND every rank's
  // assignment lies in its known-feasible region; a capped device whose
  // exact limit is still being bisected keeps the loop alive even though
  // the (capped) distribution no longer moves.
  const Model &MineNow = Ctx.model(C.rank());
  double NewUnits = static_cast<double>(
      std::max<std::int64_t>(Ctx.dist().Parts[C.rank()].Units, 1));
  bool Settled = true;
  if (std::isfinite(MineNow.feasibleLimit())) {
    double Known =
        MineNow.fitted() ? MineNow.points().back().Units : 0.0;
    Settled = NewUnits <= Known;
  }
  bool AllSettled =
      C.allreduceValue(Settled ? 1.0 : 0.0, ReduceOp::Min) > 0.0;
  return Change <= Eps && AllSettled;
}

int fupermod::runDynamicPartitioning(DynamicContext &Ctx, Comm &C,
                                     BenchmarkBackend &Backend,
                                     const Precision &Prec, double Eps,
                                     int MaxIterations) {
  for (int It = 1; It <= MaxIterations; ++It)
    if (partitionIterate(Ctx, C, Backend, Prec, Eps))
      return It;
  return MaxIterations;
}

double fupermod::balanceIterate(DynamicContext &Ctx, Comm &C,
                                double IterStartTime) {
  assert(Ctx.size() == C.size() && "context/communicator size mismatch");
  // The measurement is the real duration of the application iteration the
  // caller just finished on its current share (paper Fig. 4 usage).
  Point Mine;
  Mine.Units = static_cast<double>(
      std::max<std::int64_t>(Ctx.dist().Parts[C.rank()].Units, 1));
  Mine.Time = C.time() - IterStartTime;
  Mine.Reps = 1;
  assert(Mine.Time >= 0.0 && "iteration start lies in the future");
  if (Mine.Time <= 0.0)
    Mine.Reps = 0; // Degenerate timing: contribute nothing.

  std::vector<Point> All = C.allgatherv(std::span<const Point>(&Mine, 1));
  return Ctx.updateAllAndRepartition(All);
}
