//===-- core/Benchmark.cpp - Performance measurement ----------------------===//

#include "core/Benchmark.h"

#include "mpp/Comm.h"
#include "sim/Cluster.h"
#include "sim/SimDevice.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>

using namespace fupermod;

BenchmarkBackend::~BenchmarkBackend() = default;

RunOutcome BenchmarkBackend::runOnceChecked(double Timeout) {
  RunOutcome O;
  O.Seconds = runOnce();
  O.Failed = !std::isfinite(O.Seconds);
  O.TimedOut = !O.Failed && O.Seconds > Timeout;
  if (O.TimedOut)
    O.Seconds = Timeout;
  return O;
}

bool NativeKernelBackend::prepare(double Units) {
  assert(Units >= 1.0 && "kernel sizes are whole units");
  return K.initialize(static_cast<std::int64_t>(std::llround(Units)));
}

double NativeKernelBackend::runOnce() {
  auto Start = std::chrono::steady_clock::now();
  K.execute();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

void NativeKernelBackend::teardown() { K.finalize(); }

bool SimDeviceBackend::prepare(double InUnits) {
  if (!Device.profile().canExecute(InUnits))
    return false;
  Units = InUnits;
  return true;
}

namespace {

/// Blocks the calling thread for \p Seconds of real time — the cost a
/// host thread pays while its (simulated) device executes. sleep_for
/// rather than a spin so parallel builds overlap waits even on a
/// single-core host, exactly like real device-offloaded measurement.
void blockWallTime(double Seconds) {
  if (Seconds > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
}

} // namespace

double SimDeviceBackend::runOnce() {
  double T = Device.measureTime(Units);
  if (Clocked)
    Clocked->compute(T);
  blockWallTime(T * WallScale);
  return T;
}

RunOutcome SimDeviceBackend::runOnceChecked(double Timeout) {
  Measurement M = Device.measure(Units);
  RunOutcome O;
  if (M.Status == MeasureStatus::Failed) {
    // The device produced nothing; no virtual time passes.
    O.Failed = true;
    return O;
  }
  // The simulator can stop waiting: a repetition that would run past the
  // timeout only costs the caller the timeout itself.
  O.TimedOut = M.Seconds > Timeout;
  O.Seconds = O.TimedOut ? Timeout : M.Seconds;
  if (Clocked)
    Clocked->compute(O.Seconds);
  blockWallTime(O.Seconds * WallScale);
  return O;
}

void SimDeviceBackend::backoffWait(double Seconds) {
  if (Clocked)
    Clocked->compute(Seconds);
}

Point fupermod::runBenchmark(BenchmarkBackend &Backend, double Units,
                             const Precision &Prec, Comm *Sync) {
  assert(Prec.MinReps >= 1 && Prec.MaxReps >= Prec.MinReps &&
         "invalid precision");
  Point Result;
  Result.Units = Units;
  bool Prepared = Backend.prepare(Units);
  if (!Prepared && !Sync) {
    // Size not executable on this device (e.g. out of memory with no
    // out-of-core mode). Reps = 0 flags the failure to the caller.
    Result.Reps = 0;
    Result.Time = std::numeric_limits<double>::infinity();
    Result.Status = PointStatus::Infeasible;
    return Result;
  }

  // With synchronised measurement every rank must execute the *same*
  // number of loop rounds — the continue/stop decision is collective
  // (any rank still needing repetitions keeps everyone going), and a
  // rank whose device cannot run the size — or has stopped responding —
  // still joins every barrier.
  RunningStat Stat;
  std::vector<double> Samples;
  double Accumulated = 0.0;
  bool Alive = Prepared; // Still attempting measurements.
  PointStatus FailStatus =
      Prepared ? PointStatus::Ok : PointStatus::Infeasible;
  for (int Rep = 0; Rep < Prec.MaxReps; ++Rep) {
    // Synchronise processes sharing resources so that every repetition
    // runs under full contention (paper Section 4.1).
    if (Sync)
      Sync->barrier();
    if (Alive) {
      // One guarded repetition with a bounded retry budget: a hung or
      // failed attempt is retried after an (exponentially growing)
      // backoff; exhausting the budget abandons the whole measurement.
      double Backoff = Prec.RetryBackoff;
      for (int Attempt = 0;; ++Attempt) {
        RunOutcome O = Backend.runOnceChecked(Prec.RepTimeout);
        if (!O.TimedOut && !O.Failed) {
          Stat.push(O.Seconds);
          Samples.push_back(O.Seconds);
          Accumulated += O.Seconds;
          break;
        }
        Accumulated += O.Seconds; // Time lost waiting still counts.
        if (Attempt >= Prec.MaxRetries) {
          Alive = false;
          FailStatus =
              O.Failed ? PointStatus::DeviceFailed : PointStatus::TimedOut;
          break;
        }
        if (Backoff > 0.0) {
          Backend.backoffWait(Backoff);
          Accumulated += Backoff;
          Backoff *= 2.0;
        }
      }
    }
    bool WantMore = false;
    if (Alive) {
      bool EnoughReps =
          Stat.count() >= static_cast<std::size_t>(Prec.MinReps);
      bool Tight =
          relativeError(Stat, Prec.Level) <= Prec.TargetRelativeError;
      bool OutOfTime = Accumulated >= Prec.TimeLimit;
      WantMore = !(EnoughReps && Tight) && !OutOfTime;
    }
    if (Sync)
      WantMore = Sync->allreduceValue(WantMore ? 1.0 : 0.0,
                                      ReduceOp::Max) > 0.0;
    if (!WantMore)
      break;
  }
  if (Prepared)
    Backend.teardown();

  // A rank that died mid-run may still have gathered enough good samples
  // to report a usable point; otherwise the whole measurement failed.
  bool Usable = Alive || (FailStatus != PointStatus::Infeasible &&
                          Stat.count() >=
                              static_cast<std::size_t>(Prec.MinReps));
  if (!Usable) {
    Result.Reps = 0;
    Result.Time = std::numeric_limits<double>::infinity();
    Result.Status = FailStatus;
    return Result;
  }
  if (Prec.RejectOutliers && Samples.size() >= 3) {
    std::vector<double> Kept = rejectOutliers(Samples);
    if (!Kept.empty() && Kept.size() < Samples.size()) {
      Stat.clear();
      for (double T : Kept)
        Stat.push(T);
    }
  }
  Result.Time = Stat.mean();
  Result.Reps = static_cast<int>(Stat.count());
  Result.ConfidenceInterval = confidenceHalfWidth(Stat, Prec.Level);
  if (!std::isfinite(Result.ConfidenceInterval))
    Result.ConfidenceInterval = 0.0; // Single-rep measurement: no interval.
  return Result;
}

std::vector<double> fupermod::buildSizeGrid(const ModelBuildPlan &Plan) {
  assert(Plan.NumPoints >= 1 && Plan.MinSize > 0.0 &&
         Plan.MaxSize >= Plan.MinSize && "invalid build plan");
  std::vector<double> Sizes(static_cast<std::size_t>(Plan.NumPoints));
  for (int I = 0; I < Plan.NumPoints; ++I)
    Sizes[static_cast<std::size_t>(I)] =
        Plan.NumPoints == 1
            ? Plan.MinSize
            : Plan.MinSize + (Plan.MaxSize - Plan.MinSize) *
                                 static_cast<double>(I) /
                                 static_cast<double>(Plan.NumPoints - 1);
  return Sizes;
}

std::vector<BuiltModel>
fupermod::buildModelsParallel(const Cluster &Cl, const ModelBuildPlan &Plan) {
  const std::vector<double> Sizes = buildSizeGrid(Plan);
  const int Ranks = Cl.size();
  std::vector<BuiltModel> Out(static_cast<std::size_t>(Ranks));

  // One self-contained task per rank. The device is created inside the
  // task from the cluster description (per-rank RNG stream Seed + rank,
  // fault plan attached), so no state is shared between workers and the
  // Point sequence of a rank cannot depend on scheduling.
  auto BuildRank = [&](int Rank) {
    SimDevice Dev = Cl.makeDevice(Rank);
    SimDeviceBackend Backend(Dev);
    Backend.emulateWallTime(Plan.WallScale);
    BuiltModel Built;
    Built.M = makeModel(Plan.Kind);
    Built.Raw.reserve(Sizes.size());
    for (double D : Sizes) {
      Point P = runBenchmark(Backend, D, Plan.Prec);
      Built.Raw.push_back(P);
      Built.M->update(P);
    }
    return Built;
  };

  if (Plan.Jobs <= 1 || Ranks <= 1) {
    // Serial reference path: rank order, no pool.
    for (int R = 0; R < Ranks; ++R)
      Out[static_cast<std::size_t>(R)] = BuildRank(R);
    return Out;
  }

  ThreadPool Pool(static_cast<unsigned>(std::min(Plan.Jobs, Ranks)));
  std::vector<std::future<BuiltModel>> Futures;
  Futures.reserve(static_cast<std::size_t>(Ranks));
  for (int R = 0; R < Ranks; ++R)
    Futures.push_back(Pool.submit([&BuildRank, R] { return BuildRank(R); }));
  // get() in rank order keeps results positional and rethrows the first
  // worker exception in a deterministic place.
  for (int R = 0; R < Ranks; ++R)
    Out[static_cast<std::size_t>(R)] = Futures[static_cast<std::size_t>(R)].get();
  return Out;
}
