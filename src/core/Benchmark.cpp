//===-- core/Benchmark.cpp - Performance measurement ----------------------===//

#include "core/Benchmark.h"

#include "mpp/Comm.h"
#include "sim/SimDevice.h"

#include <cassert>
#include <chrono>
#include <cmath>

using namespace fupermod;

BenchmarkBackend::~BenchmarkBackend() = default;

bool NativeKernelBackend::prepare(double Units) {
  assert(Units >= 1.0 && "kernel sizes are whole units");
  return K.initialize(static_cast<std::int64_t>(std::llround(Units)));
}

double NativeKernelBackend::runOnce() {
  auto Start = std::chrono::steady_clock::now();
  K.execute();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

void NativeKernelBackend::teardown() { K.finalize(); }

bool SimDeviceBackend::prepare(double InUnits) {
  if (!Device.profile().canExecute(InUnits))
    return false;
  Units = InUnits;
  return true;
}

double SimDeviceBackend::runOnce() {
  double T = Device.measureTime(Units);
  if (Clocked)
    Clocked->compute(T);
  return T;
}

Point fupermod::runBenchmark(BenchmarkBackend &Backend, double Units,
                             const Precision &Prec, Comm *Sync) {
  assert(Prec.MinReps >= 1 && Prec.MaxReps >= Prec.MinReps &&
         "invalid precision");
  Point Result;
  Result.Units = Units;
  bool Prepared = Backend.prepare(Units);
  if (!Prepared && !Sync) {
    // Size not executable on this device (e.g. out of memory with no
    // out-of-core mode). Reps = 0 flags the failure to the caller.
    Result.Reps = 0;
    Result.Time = std::numeric_limits<double>::infinity();
    return Result;
  }

  // With synchronised measurement every rank must execute the *same*
  // number of loop rounds — the continue/stop decision is collective
  // (any rank still needing repetitions keeps everyone going), and a
  // rank whose device cannot run the size still joins every barrier.
  RunningStat Stat;
  std::vector<double> Samples;
  double Accumulated = 0.0;
  for (int Rep = 0; Rep < Prec.MaxReps; ++Rep) {
    // Synchronise processes sharing resources so that every repetition
    // runs under full contention (paper Section 4.1).
    if (Sync)
      Sync->barrier();
    if (Prepared) {
      double T = Backend.runOnce();
      Stat.push(T);
      Samples.push_back(T);
      Accumulated += T;
    }
    bool WantMore = false;
    if (Prepared) {
      bool EnoughReps =
          Stat.count() >= static_cast<std::size_t>(Prec.MinReps);
      bool Tight =
          relativeError(Stat, Prec.Level) <= Prec.TargetRelativeError;
      bool OutOfTime = Accumulated >= Prec.TimeLimit;
      WantMore = !(EnoughReps && Tight) && !OutOfTime;
    }
    if (Sync)
      WantMore = Sync->allreduceValue(WantMore ? 1.0 : 0.0,
                                      ReduceOp::Max) > 0.0;
    if (!WantMore)
      break;
  }
  if (Prepared)
    Backend.teardown();

  if (!Prepared) {
    Result.Reps = 0;
    Result.Time = std::numeric_limits<double>::infinity();
    return Result;
  }
  if (Prec.RejectOutliers && Samples.size() >= 3) {
    std::vector<double> Kept = rejectOutliers(Samples);
    if (!Kept.empty() && Kept.size() < Samples.size()) {
      Stat.clear();
      for (double T : Kept)
        Stat.push(T);
    }
  }
  Result.Time = Stat.mean();
  Result.Reps = static_cast<int>(Stat.count());
  Result.ConfidenceInterval = confidenceHalfWidth(Stat, Prec.Level);
  if (!std::isfinite(Result.ConfidenceInterval))
    Result.ConfidenceInterval = 0.0; // Single-rep measurement: no interval.
  return Result;
}
