//===-- core/GemmKernel.h - Matrix-multiplication kernel --------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example of a computation kernel (Section 4.1,
/// Fig. 1(b)): one iteration of heterogeneous parallel matrix
/// multiplication updates an m x n arrangement of b x b blocks of C with
/// a pivot column of A and pivot row of B:
///
///     Ci (mb x nb) += A(b) (mb x b) * B(b) (b x nb)
///
/// One computation unit is one b x b block update; a problem of d units
/// uses m = floor(sqrt(d)), n = d / m (nearly-square submatrix). The
/// execute() call replicates the application's memory access pattern: it
/// copies the pivot column/row out of the stored submatrices into working
/// buffers (the local side of the MPI broadcast) and then calls GEMM once.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_GEMMKERNEL_H
#define FUPERMOD_CORE_GEMMKERNEL_H

#include "core/Kernel.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace fupermod {

class ThreadPool;

/// GEMM-based computation kernel with configurable blocking factor.
class GemmKernel : public Kernel {
public:
  /// \p BlockSize is the blocking factor b; \p UseBlockedGemm selects the
  /// cache-tiled GEMM (optimised BLAS stand-in) over the naive one
  /// (Netlib stand-in); \p UseMicroGemm selects the runtime-dispatched
  /// register-blocked micro-kernel (tuned vendor BLAS stand-in) and wins
  /// over \p UseBlockedGemm; \p Threads > 1 runs the block update through
  /// gemmParallel on a lazily created pool (multithreaded BLAS stand-in;
  /// results stay bit-identical to the serial run of the same kernel).
  explicit GemmKernel(std::size_t BlockSize = 16, bool UseBlockedGemm = true,
                      unsigned Threads = 1, bool UseMicroGemm = false);

  ~GemmKernel() override;

  double complexity(double Units) const override;
  bool initialize(std::int64_t Units) override;
  void execute() override;
  void finalize() override;

  /// Rows of the block grid chosen for the current size.
  std::size_t rows() const { return M; }
  /// Columns of the block grid chosen for the current size.
  std::size_t cols() const { return N; }

private:
  std::size_t B;
  bool UseBlockedGemm;
  bool UseMicroGemm;
  unsigned Threads;
  std::unique_ptr<ThreadPool> Pool; // Created on first multithreaded run.
  std::size_t M = 0;
  std::size_t N = 0;
  std::vector<double> AStore; // Submatrix Ai: (M*B) x (K columns = B).
  std::vector<double> BStore; // Submatrix Bi: B x (N*B).
  std::vector<double> CStore; // Submatrix Ci: (M*B) x (N*B).
  std::vector<double> APivot; // Working buffer A(b).
  std::vector<double> BPivot; // Working buffer B(b).
};

} // namespace fupermod

#endif // FUPERMOD_CORE_GEMMKERNEL_H
