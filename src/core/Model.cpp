//===-- core/Model.cpp - Computation performance models -------------------===//

#include "core/Model.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

using namespace fupermod;

namespace {
/// Source of fit-epoch values. Process-wide rather than per-model so a
/// given value is only ever produced once: a warm-start hint that stored
/// it can never be revalidated by a *different* model (or a later fit of
/// the same model) that happens to share a per-object counter value.
std::atomic<std::uint64_t> NextFitEpoch{1};

std::uint64_t freshFitEpoch() {
  return NextFitEpoch.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

Model::Model() : FitEpoch(freshFitEpoch()) {}

Model::~Model() = default;

void Model::bumpFitEpoch() {
  FitEpoch.store(freshFitEpoch(), std::memory_order_relaxed);
}

double Model::sizeForTimeCached(double T) const {
  const std::uint64_t Key = std::bit_cast<std::uint64_t>(T);
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    ++Lookups;
    auto It = InverseCache.find(Key);
    if (It != InverseCache.end()) {
      ++Hits;
      return It->second;
    }
  }
  // Compute outside the lock: sizeForTime only reads the fit, and a
  // concurrent duplicate computation of the same tau is harmless (both
  // threads insert the identical value).
  double X = sizeForTime(T);
  std::lock_guard<std::mutex> Lock(CacheMutex);
  InverseCache.emplace(Key, X);
  return X;
}

void Model::timesAt(std::span<const double> Xs, std::span<double> Out) const {
  assert(Xs.size() == Out.size() && "mismatched batch spans");
  for (std::size_t I = 0; I < Xs.size(); ++I)
    Out[I] = timeAt(Xs[I]);
}

std::uint64_t Model::cacheLookups() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return Lookups;
}

std::uint64_t Model::cacheHits() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return Hits;
}

std::uint64_t Model::cacheInvalidations() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return Invalidations;
}

void Model::clearEvalCache() const {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  InverseCache.clear();
  Hits = 0;
  Lookups = 0;
  Invalidations = 0;
}

void Model::update(Point P) {
  if (P.deviceFault()) {
    // Timeout / hard failure: says nothing about the size's cost and
    // must not be mistaken for infeasibility of the size.
    return;
  }
  if (P.Reps <= 0 || !std::isfinite(P.Time)) {
    // Failed measurement: the size exceeded what the device can execute
    // (e.g. GPU memory without an out-of-core mode). Remember the
    // tightest known limit so partitioners avoid the infeasible region.
    // No refit happens, but a tighter cap changes partitioning results,
    // so the fit epoch must advance or a memoized warm-start solution
    // would ignore the new cap.
    if (P.Units > 0.0 && P.Units < MinInfeasible) {
      MinInfeasible = P.Units;
      bumpFitEpoch();
    }
    return;
  }
  assert(P.Units > 0.0 && P.Time > 0.0 && "invalid experimental point");
  // A success at or above the recorded limit supersedes it (the failure
  // may have been transient or an out-of-core mode became available).
  // The refit below advances the epoch for this cap change too.
  if (P.Units >= MinInfeasible)
    MinInfeasible =
        std::nextafter(P.Units, std::numeric_limits<double>::infinity());

  // Merge with an existing point at (numerically) the same size. The
  // existing side's weight has decayed with staleness, so a fresh
  // measurement after a regime change dominates the stale mean.
  for (std::size_t I = 0; I < Points.size(); ++I) {
    Point &Existing = Points[I];
    if (std::fabs(Existing.Units - P.Units) <=
        1e-9 * std::max(1.0, P.Units)) {
      double W1 = Weights[I];
      double W2 = static_cast<double>(P.Reps);
      Existing.Time = (Existing.Time * W1 + P.Time * W2) / (W1 + W2);
      Existing.Reps += P.Reps;
      Existing.ConfidenceInterval =
          std::max(Existing.ConfidenceInterval, P.ConfidenceInterval);
      Weights[I] = W1 + W2;
      refitRange(Existing.Units);
      return;
    }
  }

  auto Pos = std::lower_bound(
      Points.begin(), Points.end(), P.Units,
      [](const Point &A, double Units) { return A.Units < Units; });
  Weights.insert(Weights.begin() + (Pos - Points.begin()),
                 static_cast<double>(P.Reps));
  Points.insert(Pos, P);
  refitRange(P.Units);
}

void Model::refitAndInvalidate() {
  refit();
  // The fit changed: memoized inverse-time results describe the old
  // curve. Counters survive so benches see lifetime hit rates.
  std::lock_guard<std::mutex> Lock(CacheMutex);
  Invalidations += InverseCache.size();
  InverseCache.clear();
  bumpFitEpoch();
}

double Model::invalidationLowerBound(double ChangedUnits) const {
  (void)ChangedUnits;
  return 0.0;
}

void Model::refitRange(double ChangedUnits) {
  refit();
  // The bound is computed against the *new* fit (refit() above), which
  // is conservative: surviving entries resolved to sizes the change
  // provably cannot reach in either the old or the new curve.
  double Bound = invalidationLowerBound(ChangedUnits);
  std::lock_guard<std::mutex> Lock(CacheMutex);
  if (Bound <= 0.0) {
    Invalidations += InverseCache.size();
    InverseCache.clear();
  } else {
    for (auto It = InverseCache.begin(); It != InverseCache.end();) {
      if (It->second >= Bound) {
        It = InverseCache.erase(It);
        ++Invalidations;
      } else {
        ++It;
      }
    }
  }
  bumpFitEpoch();
}

void Model::setWeights(std::span<const double> NewWeights) {
  assert(NewWeights.size() == Points.size() &&
         "one weight per stored point expected");
  for (double W : NewWeights)
    assert(W > 0.0 && "weights must be positive");
  Weights.assign(NewWeights.begin(), NewWeights.end());
}

void Model::decayWeights(double Factor) {
  assert(Factor > 0.0 && Factor <= 1.0 && "decay factor must be in (0, 1]");
  if (Factor == 1.0 || Points.empty())
    return;
  for (double &W : Weights)
    W *= Factor;
  // Forget points whose weight has decayed away, keeping the fit anchored
  // to recent behavior. Never drop the last point: an unfitted model
  // would stall the partitioners entirely.
  const double MinKeep = 0.5;
  double MaxW = *std::max_element(Weights.begin(), Weights.end());
  if (MaxW < MinKeep)
    return; // Everything is stale; keep the data until fresh points land.
  bool Dropped = false;
  for (std::size_t I = Points.size(); I-- > 0;) {
    if (Weights[I] < MinKeep && Points.size() > 1) {
      Points.erase(Points.begin() + static_cast<std::ptrdiff_t>(I));
      Weights.erase(Weights.begin() + static_cast<std::ptrdiff_t>(I));
      Dropped = true;
    }
  }
  if (Dropped)
    refitAndInvalidate();
}

double Model::timeAt(double X) const {
  assert(fitted() && "model has no experimental points");
  assert(X >= 0.0 && "negative problem size");
  if (X == 0.0)
    return 0.0;
  double T = timeImpl(X);
  // Guard against non-monotone interpolants dipping below zero at the
  // fringes of the data.
  return std::max(T, 1e-300);
}

double Model::speedAt(double X) const {
  assert(X > 0.0 && "speed is defined for positive sizes");
  return X / timeAt(X);
}

double Model::timeDerivative(double X) const {
  double H = 1e-4 * std::max(1.0, std::fabs(X));
  double Lo = std::max(X - H, 1e-12);
  double Hi = X + H;
  return (timeAt(Hi) - timeAt(Lo)) / (Hi - Lo);
}

double Model::sizeForTime(double T) const {
  assert(fitted() && "model has no experimental points");
  if (T <= 0.0)
    return 0.0;
  // Bracket a crossing of timeAt(x) = T by doubling, then bisect. timeAt
  // is 0 at x = 0, so once timeAt(Hi) >= T a crossing exists in [0, Hi].
  double Hi = std::max(1.0, Points.back().Units);
  for (int I = 0; I < 200 && timeAt(Hi) < T; ++I)
    Hi *= 2.0;
  if (timeAt(Hi) < T)
    return Hi; // Degenerate model (e.g. flat extrapolation); saturate.
  double Lo = 0.0;
  for (int I = 0; I < 100; ++I) {
    double Mid = 0.5 * (Lo + Hi);
    if (timeAt(Mid) < T)
      Lo = Mid;
    else
      Hi = Mid;
  }
  return 0.5 * (Lo + Hi);
}

//===----------------------------------------------------------------------===//
// ConstantModel
//===----------------------------------------------------------------------===//

void ConstantModel::refit() {
  // Equal-weight mean of the observed speeds: with a single point (the
  // usual CPM construction) this is exactly that point's speed.
  double Sum = 0.0;
  for (const Point &P : Points)
    Sum += P.speed();
  Speed = Sum / static_cast<double>(Points.size());
  assert(Speed > 0.0 && "constant model needs positive speed");
}

double ConstantModel::timeImpl(double X) const { return X / Speed; }

double ConstantModel::sizeForTime(double T) const {
  return T <= 0.0 ? 0.0 : Speed * T;
}

//===----------------------------------------------------------------------===//
// PiecewiseModel
//===----------------------------------------------------------------------===//

void PiecewiseModel::refit() {
  // Coarsening (paper Fig. 2(a)): the geometric algorithm requires each
  // line through the origin of the speed plane to cut the speed function
  // at most once. In time coordinates that is exactly strict monotone
  // growth of t(x), so lift any measured time below the running maximum
  // up to it (plus a hair, to keep the inverse well defined).
  std::size_t N = Points.size();
  Xs.resize(N);
  Ts.resize(N);
  double Prev = 0.0;
  for (std::size_t I = 0; I < N; ++I) {
    Xs[I] = Points[I].Units;
    double Floor = Prev + 1e-12 * std::max(1.0, Prev);
    Ts[I] = std::max(Points[I].Time, Floor);
    Prev = Ts[I];
  }
}

double PiecewiseModel::timeImpl(double X) const {
  // Left of the first knot the speed is held constant (line through the
  // origin); right of the last knot likewise.
  if (X <= Xs.front())
    return Ts.front() * X / Xs.front();
  if (X >= Xs.back())
    return Ts.back() * X / Xs.back();
  auto It = std::upper_bound(Xs.begin(), Xs.end(), X);
  std::size_t I = static_cast<std::size_t>(It - Xs.begin()) - 1;
  double Frac = (X - Xs[I]) / (Xs[I + 1] - Xs[I]);
  return Ts[I] + Frac * (Ts[I + 1] - Ts[I]);
}

double PiecewiseModel::timeDerivative(double X) const {
  if (X <= Xs.front())
    return Ts.front() / Xs.front();
  if (X >= Xs.back())
    return Ts.back() / Xs.back();
  auto It = std::upper_bound(Xs.begin(), Xs.end(), X);
  std::size_t I = static_cast<std::size_t>(It - Xs.begin()) - 1;
  return (Ts[I + 1] - Ts[I]) / (Xs[I + 1] - Xs[I]);
}

void PiecewiseModel::timesAt(std::span<const double> Q,
                             std::span<double> Out) const {
  assert(Q.size() == Out.size() && "mismatched batch spans");
  assert(fitted() && "model has no experimental points");
  // Ascending batches walk the coarsened knots once; an out-of-order
  // query falls back to the binary-searched scalar path.
  std::size_t Seg = 0;
  double Prev = -std::numeric_limits<double>::infinity();
  for (std::size_t I = 0; I < Q.size(); ++I) {
    double X = Q[I];
    if (X < Prev) {
      Out[I] = timeAt(X);
      continue;
    }
    Prev = X;
    if (X == 0.0) {
      Out[I] = 0.0;
      continue;
    }
    double T;
    if (X <= Xs.front())
      T = Ts.front() * X / Xs.front();
    else if (X >= Xs.back())
      T = Ts.back() * X / Xs.back();
    else {
      while (Seg + 2 < Xs.size() && Xs[Seg + 1] <= X)
        ++Seg;
      double Frac = (X - Xs[Seg]) / (Xs[Seg + 1] - Xs[Seg]);
      T = Ts[Seg] + Frac * (Ts[Seg + 1] - Ts[Seg]);
    }
    Out[I] = std::max(T, 1e-300);
  }
}

double PiecewiseModel::sizeForTime(double T) const {
  assert(fitted() && "model has no experimental points");
  if (T <= 0.0)
    return 0.0;
  // The coarsened time function is strictly increasing: invert exactly.
  if (T <= Ts.front())
    return Xs.front() * T / Ts.front();
  if (T >= Ts.back())
    return Xs.back() * T / Ts.back();
  auto It = std::upper_bound(Ts.begin(), Ts.end(), T);
  std::size_t I = static_cast<std::size_t>(It - Ts.begin()) - 1;
  double Frac = (T - Ts[I]) / (Ts[I + 1] - Ts[I]);
  return Xs[I] + Frac * (Xs[I + 1] - Xs[I]);
}

double PiecewiseModel::invalidationLowerBound(double ChangedUnits) const {
  // The coarsening pass is a left-to-right running maximum: a change to
  // the point at knot I can lift (or lower) Ts[I] and cascade rightward,
  // but knots strictly left of I and the segments between them are
  // untouched. Inverse-time entries that resolved to sizes below
  // Xs[I - 2] therefore still describe the current curve — Xs[I - 1]
  // would already be safe, the extra knot is margin for the segment that
  // ends at the changed knot. A change at the first or second knot (or a
  // model with fewer than three knots) affects the left extrapolation
  // ray, so everything goes.
  if (Xs.size() < 3)
    return 0.0;
  auto It = std::lower_bound(Xs.begin(), Xs.end(), ChangedUnits);
  std::size_t I = static_cast<std::size_t>(It - Xs.begin());
  if (I < 2)
    return 0.0;
  return Xs[I - 2];
}

//===----------------------------------------------------------------------===//
// LinearModel
//===----------------------------------------------------------------------===//

void LinearModel::refit() {
  std::size_t N = Points.size();
  if (N == 1) {
    // One point cannot determine two parameters: assume no overhead.
    Intercept = 0.0;
    Slope = Points[0].Time / Points[0].Units;
    return;
  }
  // Unweighted least squares for t = a + b*x.
  double SumX = 0.0, SumT = 0.0, SumXX = 0.0, SumXT = 0.0;
  for (const Point &P : Points) {
    SumX += P.Units;
    SumT += P.Time;
    SumXX += P.Units * P.Units;
    SumXT += P.Units * P.Time;
  }
  double Nd = static_cast<double>(N);
  double Det = Nd * SumXX - SumX * SumX;
  if (Det <= 0.0) {
    Intercept = 0.0;
    Slope = SumT / SumX;
    return;
  }
  Slope = (Nd * SumXT - SumX * SumT) / Det;
  Intercept = (SumT - Slope * SumX) / Nd;
  if (Slope <= 0.0) {
    // Degenerate fit (noise dominated): fall back to the line through
    // the origin so the time function stays invertible.
    Intercept = 0.0;
    Slope = SumT / SumX;
  }
}

double LinearModel::timeImpl(double X) const { return Intercept + Slope * X; }

double LinearModel::timeDerivative(double X) const {
  (void)X;
  return Slope;
}

double LinearModel::sizeForTime(double T) const {
  if (T <= Intercept)
    return 0.0;
  return (T - Intercept) / Slope;
}

//===----------------------------------------------------------------------===//
// AkimaModel
//===----------------------------------------------------------------------===//

void AkimaModel::refit() {
  // Fit the spline through the origin plus every experimental point; the
  // time of zero work is zero, which anchors the left boundary.
  std::vector<double> Xs(Points.size() + 1);
  std::vector<double> Ts(Points.size() + 1);
  Xs[0] = 0.0;
  Ts[0] = 0.0;
  for (std::size_t I = 0; I < Points.size(); ++I) {
    Xs[I + 1] = Points[I].Units;
    Ts[I + 1] = Points[I].Time;
  }
  Spline.fit(Xs, Ts, Extrapolation::Linear);
}

double AkimaModel::timeImpl(double X) const { return Spline.eval(X); }

void AkimaModel::timesAt(std::span<const double> Q,
                         std::span<double> Out) const {
  assert(fitted() && "model has no experimental points");
  Spline.evalMany(Q, Out);
  // Apply timeAt()'s guards: exact zero at zero work, and clamp any
  // spline undershoot at the data fringes.
  for (std::size_t I = 0; I < Q.size(); ++I)
    Out[I] = Q[I] == 0.0 ? 0.0 : std::max(Out[I], 1e-300);
}

double AkimaModel::timeDerivative(double X) const {
  assert(fitted() && "model has no experimental points");
  return Spline.derivative(std::max(X, 0.0));
}

ModelRegistry &fupermod::modelRegistry() {
  static ModelRegistry R("model kind");
  return R;
}

namespace {

// Built-in model kinds self-register next to their implementations; the
// registrars run whenever this translation unit is linked, which any use
// of modelRegistry()/makeModel() guarantees.
Registrar<ModelRegistry> RegCpm(modelRegistry(), "cpm", [] {
  return std::unique_ptr<Model>(std::make_unique<ConstantModel>());
});
Registrar<ModelRegistry> RegPiecewise(modelRegistry(), "piecewise", [] {
  return std::unique_ptr<Model>(std::make_unique<PiecewiseModel>());
});
Registrar<ModelRegistry> RegAkima(modelRegistry(), "akima", [] {
  return std::unique_ptr<Model>(std::make_unique<AkimaModel>());
});
Registrar<ModelRegistry> RegLinear(modelRegistry(), "linear", [] {
  return std::unique_ptr<Model>(std::make_unique<LinearModel>());
});

} // namespace

std::unique_ptr<Model> fupermod::makeModel(const std::string &Kind,
                                           std::string *Err) {
  return modelRegistry().create(Kind, Err);
}
