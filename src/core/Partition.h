//===-- core/Partition.h - Workload distribution ----------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload-distribution types (the paper's `fupermod_dist` /
/// `fupermod_part`) and the data partitioning interface shared by the
/// static and dynamic algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_PARTITION_H
#define FUPERMOD_CORE_PARTITION_H

#include "core/Model.h"

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace fupermod {

/// Workload assigned to one process.
struct Part {
  /// Computation units given to the process.
  std::int64_t Units = 0;
  /// Predicted computation time of that workload.
  double PredictedTime = 0.0;
};

/// A distribution of a total problem over processes.
struct Dist {
  /// Total problem size in computation units.
  std::int64_t Total = 0;
  /// Per-process workloads; Parts.size() is the number of processes.
  std::vector<Part> Parts;

  /// Even distribution of \p Total over \p NumProcs (remainder spread
  /// over the first processes) — the usual starting distribution of the
  /// dynamic algorithms.
  static Dist even(std::int64_t Total, int NumProcs);

  /// Sum of per-process units (equals Total for a valid distribution).
  std::int64_t sum() const;

  /// Largest predicted completion time over all parts.
  double maxPredictedTime() const;

  /// Largest relative change in per-process units against \p Other;
  /// used as the termination test of dynamic partitioning.
  double relativeChange(const Dist &Other) const;

  /// True when every part assigns the same number of units as \p Other
  /// (predicted times may differ) — the "no data moves" test of a
  /// repartition.
  bool sameUnits(const Dist &Other) const;

  /// Prefix starts of the contiguous per-process ranges: process r owns
  /// units [Starts[r], Starts[r+1]), beginning at \p Base (0 for row
  /// indices, 1 for grid-interior coordinates). Size Parts.size() + 1.
  std::vector<std::int64_t> contiguousStarts(std::int64_t Base = 0) const;
};

/// Rank owning global unit \p Unit under the prefix-start array \p Starts
/// (size P + 1, as produced by Dist::contiguousStarts): the unique r with
/// Starts[r] <= Unit < Starts[r+1] and a non-empty range. Returns -1 when
/// \p Unit lies outside [Starts.front(), Starts.back()).
int ownerOfUnit(std::span<const std::int64_t> Starts, std::int64_t Unit);

/// A data partitioning algorithm: distributes \p Total units over the
/// processes whose performance models are given, writing the result into
/// \p Out. Returns false when no valid distribution could be produced
/// (e.g. a model is unfitted). All models must have at least one point.
using Partitioner = std::function<bool(
    std::int64_t Total, std::span<Model *const> Models, Dist &Out)>;

/// Rounds non-negative real shares summing to about \p Total to integers
/// summing to exactly \p Total (largest-remainder method). Exposed for
/// tests.
std::vector<std::int64_t> roundShares(std::span<const double> Shares,
                                      std::int64_t Total);

/// Like roundShares(), but no result exceeds its (strict) cap: part i
/// receives at most ceil(Caps[i]) - 1 units (a cap is the smallest
/// *infeasible* size). Requires enough aggregate capacity; the remainder
/// is redistributed to parts with headroom.
std::vector<std::int64_t> roundSharesCapped(std::span<const double> Shares,
                                            std::int64_t Total,
                                            std::span<const double> Caps);

/// Largest number of units part i may receive under the strict cap
/// \p Cap (the smallest size known infeasible): ceil(Cap) - 1, saturated
/// for infinite caps.
std::int64_t maxUnitsUnderCap(double Cap);

} // namespace fupermod

#endif // FUPERMOD_CORE_PARTITION_H
