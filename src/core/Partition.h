//===-- core/Partition.h - Workload distribution ----------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload-distribution types (the paper's `fupermod_dist` /
/// `fupermod_part`) and the data partitioning interface shared by the
/// static and dynamic algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_PARTITION_H
#define FUPERMOD_CORE_PARTITION_H

#include "core/Model.h"

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace fupermod {

/// Workload assigned to one process.
struct Part {
  /// Computation units given to the process.
  std::int64_t Units = 0;
  /// Predicted computation time of that workload.
  double PredictedTime = 0.0;
};

/// A distribution of a total problem over processes.
struct Dist {
  /// Total problem size in computation units.
  std::int64_t Total = 0;
  /// Per-process workloads; Parts.size() is the number of processes.
  std::vector<Part> Parts;

  /// Even distribution of \p Total over \p NumProcs (remainder spread
  /// over the first processes) — the usual starting distribution of the
  /// dynamic algorithms.
  static Dist even(std::int64_t Total, int NumProcs);

  /// Sum of per-process units (equals Total for a valid distribution).
  std::int64_t sum() const;

  /// Largest predicted completion time over all parts.
  double maxPredictedTime() const;

  /// Largest relative change in per-process units against \p Other;
  /// used as the termination test of dynamic partitioning.
  double relativeChange(const Dist &Other) const;
};

/// A data partitioning algorithm: distributes \p Total units over the
/// processes whose performance models are given, writing the result into
/// \p Out. Returns false when no valid distribution could be produced
/// (e.g. a model is unfitted). All models must have at least one point.
using Partitioner = std::function<bool(
    std::int64_t Total, std::span<Model *const> Models, Dist &Out)>;

/// Rounds non-negative real shares summing to about \p Total to integers
/// summing to exactly \p Total (largest-remainder method). Exposed for
/// tests.
std::vector<std::int64_t> roundShares(std::span<const double> Shares,
                                      std::int64_t Total);

/// Like roundShares(), but no result exceeds its (strict) cap: part i
/// receives at most ceil(Caps[i]) - 1 units (a cap is the smallest
/// *infeasible* size). Requires enough aggregate capacity; the remainder
/// is redistributed to parts with headroom.
std::vector<std::int64_t> roundSharesCapped(std::span<const double> Shares,
                                            std::int64_t Total,
                                            std::span<const double> Caps);

/// Largest number of units part i may receive under the strict cap
/// \p Cap (the smallest size known infeasible): ceil(Cap) - 1, saturated
/// for infinite caps.
std::int64_t maxUnitsUnderCap(double Cap);

} // namespace fupermod

#endif // FUPERMOD_CORE_PARTITION_H
