//===-- core/Metrics.h - Partition quality metrics --------------*- C++ -*-===//
//
// Part of the FuPerMod reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quality metrics for distributions evaluated against the *ground truth*
/// device profiles of the simulated platform (not against the models that
/// produced the distribution). The benches report these to compare the
/// partitioning algorithms the way the paper's evaluation does.
///
//===----------------------------------------------------------------------===//

#ifndef FUPERMOD_CORE_METRICS_H
#define FUPERMOD_CORE_METRICS_H

#include "core/Partition.h"
#include "sim/DeviceProfile.h"

#include <cstdint>
#include <span>
#include <vector>

namespace fupermod {

/// True (noise-free) computation time of each part on its device.
std::vector<double> trueTimes(const Dist &D,
                              std::span<const DeviceProfile> Profiles);

/// Largest element of \p Times — the parallel completion time.
double makespan(std::span<const double> Times);

/// Load imbalance of \p Times: (max - min) / max, in [0, 1); 0 is a
/// perfectly balanced distribution.
double imbalance(std::span<const double> Times);

/// Masked load imbalance: (max - min) / max over the ranks whose
/// \p Active entry is non-zero only. This is the trigger metric of the
/// equalization subsystem — a rank excluded by staleness decay or a hard
/// failure holds zero units and measures a near-zero time, which the
/// unmasked metric would misread as a permanent maximal imbalance. No
/// active rank (or an all-zero active set) is balanced by definition.
double imbalance(std::span<const double> Times,
                 std::span<const std::uint8_t> Active);

/// Makespan of the best real-valued distribution, found by high-resolution
/// bisection directly on the true profiles; the baseline against which
/// algorithmic distributions are judged.
double optimalMakespan(std::int64_t Total,
                       std::span<const DeviceProfile> Profiles);

} // namespace fupermod

#endif // FUPERMOD_CORE_METRICS_H
