//===-- tests/MatrixPartition2DTest.cpp - Beaumont partition tests --------===//

#include "apps/MatrixPartition2D.h"

#include "support/Random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

using namespace fupermod;

namespace {

double areaOf(const Rect &R) { return R.W * R.H; }

} // namespace

TEST(ColumnBased, SingleProcessTakesUnitSquare) {
  std::vector<double> Areas = {1.0};
  ColumnLayout L = partitionColumnBased(Areas);
  ASSERT_EQ(L.Rects.size(), 1u);
  EXPECT_DOUBLE_EQ(L.Rects[0].W, 1.0);
  EXPECT_DOUBLE_EQ(L.Rects[0].H, 1.0);
  EXPECT_DOUBLE_EQ(L.totalHalfPerimeter(), 2.0);
}

TEST(ColumnBased, AreasAreProportionalToSpeeds) {
  std::vector<double> Areas = {3.0, 1.0, 2.0, 2.0};
  ColumnLayout L = partitionColumnBased(Areas);
  double Sum = 3.0 + 1.0 + 2.0 + 2.0;
  for (std::size_t I = 0; I < Areas.size(); ++I)
    EXPECT_NEAR(areaOf(L.Rects[I]), Areas[I] / Sum, 1e-12) << "proc " << I;
}

TEST(ColumnBased, FourEqualProcessesFormTwoByTwo) {
  std::vector<double> Areas = {1.0, 1.0, 1.0, 1.0};
  ColumnLayout L = partitionColumnBased(Areas);
  ASSERT_EQ(L.Columns.size(), 2u);
  EXPECT_EQ(L.Columns[0].size(), 2u);
  EXPECT_EQ(L.Columns[1].size(), 2u);
  // 2x2 of half-squares: every rect is 0.5 x 0.5.
  for (const Rect &R : L.Rects) {
    EXPECT_DOUBLE_EQ(R.W, 0.5);
    EXPECT_DOUBLE_EQ(R.H, 0.5);
  }
  EXPECT_DOUBLE_EQ(L.totalHalfPerimeter(), 4.0);
}

TEST(ColumnBased, BeatsOrMatchesRowStrips) {
  SplitMix64 Rng(21);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::size_t P = 2 + Trial % 9;
    std::vector<double> Areas(P);
    for (double &A : Areas)
      A = Rng.uniform(0.2, 2.0);
    double DP = partitionColumnBased(Areas).totalHalfPerimeter();
    double Strips = partitionRowStrips(Areas).totalHalfPerimeter();
    EXPECT_LE(DP, Strips + 1e-12) << "trial " << Trial;
  }
}

TEST(ColumnBased, LowerBoundRespected) {
  // Total half-perimeter is at least 2 * sum of sqrt(area) (perfectly
  // square rectangles), a classical lower bound.
  SplitMix64 Rng(33);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::size_t P = 2 + Trial;
    std::vector<double> Areas(P);
    for (double &A : Areas)
      A = Rng.uniform(0.1, 1.0);
    double Sum = std::accumulate(Areas.begin(), Areas.end(), 0.0);
    double Bound = 0.0;
    for (double A : Areas)
      Bound += 2.0 * std::sqrt(A / Sum);
    EXPECT_GE(partitionColumnBased(Areas).totalHalfPerimeter(),
              Bound - 1e-9);
  }
}

TEST(ColumnBased, ZeroAreaProcessAllowed) {
  std::vector<double> Areas = {1.0, 0.0, 1.0};
  ColumnLayout L = partitionColumnBased(Areas);
  EXPECT_NEAR(areaOf(L.Rects[1]), 0.0, 1e-12);
  EXPECT_NEAR(areaOf(L.Rects[0]), 0.5, 1e-12);
}

TEST(RowStrips, HeightsProportional) {
  std::vector<double> Areas = {1.0, 3.0};
  ColumnLayout L = partitionRowStrips(Areas);
  ASSERT_EQ(L.Columns.size(), 1u);
  EXPECT_DOUBLE_EQ(L.Rects[0].W, 1.0);
  EXPECT_DOUBLE_EQ(L.Rects[0].H, 0.25);
  EXPECT_DOUBLE_EQ(L.Rects[1].H, 0.75);
}

TEST(ScaleToGrid, ExactTiling) {
  std::vector<double> Areas = {3.0, 1.0, 2.0, 2.0, 4.0};
  ColumnLayout L = partitionColumnBased(Areas);
  for (int N : {4, 8, 10, 17, 32}) {
    auto Rects = scaleToGrid(L, N);
    EXPECT_TRUE(tilesGrid(Rects, N)) << "N=" << N;
    long long Total = 0;
    for (const GridRect &R : Rects)
      Total += R.area();
    EXPECT_EQ(Total, static_cast<long long>(N) * N);
  }
}

TEST(ScaleToGrid, BlockAreasTrackRelativeAreas) {
  std::vector<double> Areas = {1.0, 2.0, 5.0};
  ColumnLayout L = partitionColumnBased(Areas);
  int N = 40;
  auto Rects = scaleToGrid(L, N);
  double Total = static_cast<double>(N) * N;
  EXPECT_NEAR(static_cast<double>(Rects[2].area()) / Total, 5.0 / 8.0,
              0.08);
  EXPECT_NEAR(static_cast<double>(Rects[0].area()) / Total, 1.0 / 8.0,
              0.08);
}

TEST(TilesGrid, DetectsGapsAndOverlaps) {
  std::vector<GridRect> Gap = {{0, 0, 1, 2, 0}, {1, 0, 1, 1, 1}};
  EXPECT_FALSE(tilesGrid(Gap, 2));
  std::vector<GridRect> Overlap = {{0, 0, 2, 2, 0}, {1, 1, 1, 1, 1}};
  EXPECT_FALSE(tilesGrid(Overlap, 2));
  std::vector<GridRect> Good = {{0, 0, 1, 2, 0}, {1, 0, 1, 2, 1}};
  EXPECT_TRUE(tilesGrid(Good, 2));
  std::vector<GridRect> OutOfBounds = {{0, 0, 3, 2, 0}};
  EXPECT_FALSE(tilesGrid(OutOfBounds, 2));
}

// Property sweep: random areas, several process counts and grid sizes.
class ScaleSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScaleSweep, AlwaysTiles) {
  auto [P, N] = GetParam();
  SplitMix64 Rng(static_cast<std::uint64_t>(P * 1000 + N));
  std::vector<double> Areas(static_cast<std::size_t>(P));
  for (double &A : Areas)
    A = Rng.uniform(0.05, 1.0);
  ColumnLayout L = partitionColumnBased(Areas);
  auto Rects = scaleToGrid(L, N);
  EXPECT_TRUE(tilesGrid(Rects, N));
}

INSTANTIATE_TEST_SUITE_P(Cases, ScaleSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 7,
                                                              10),
                                            ::testing::Values(6, 16, 25)));
