//===-- tests/PartitionPropertyTest.cpp - randomized partition laws -------===//
//
// Property-based net over the partitioning engine: ~200 seeded random
// heterogeneous clusters, each run through the full pipeline (benchmark
// the simulated devices, fit models, partition). The properties hold for
// every cluster the generator can name, not just the hand-picked
// fixtures of PartitionersTest:
//
//  1. every share is non-negative and the shares sum exactly to Total;
//  2. the geometric and numerical distributions, judged by the ground
//     truth device profiles (Metrics::trueTimes), are never worse than
//     the constant-model distribution by more than the models' own
//     measured fit error;
//  3. growing Total never shrinks any rank's share by more than one unit
//     (largest-remainder rounding admits the classic Alabama paradox, so
//     exact monotonicity is one unit too strong).
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "sim/Cluster.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

using namespace fupermod;

namespace {

struct BuiltCluster {
  Cluster Cl;
  std::vector<BuiltModel> Built;
  std::vector<Model *> Models;
};

/// Benchmarks and fits one model per device of a (P, Variant)-named
/// random platform. Noise-free so the models' only error is grid
/// resolution, which the error-bound property measures explicitly.
BuiltCluster buildCluster(int P, std::uint64_t Variant) {
  BuiltCluster B;
  B.Cl = makeHeterogeneousCluster(P, Variant);
  B.Cl.NoiseSigma = 0.0;

  ModelBuildPlan Plan;
  Plan.Kind = "piecewise";
  Plan.MinSize = 64.0;
  Plan.MaxSize = 7000.0;
  Plan.NumPoints = 10;
  Plan.Prec.MinReps = 1;
  Plan.Prec.MaxReps = 2;
  B.Built = buildModelsParallel(B.Cl, Plan);
  for (BuiltModel &M : B.Built)
    B.Models.push_back(M.M.get());
  return B;
}

/// Largest relative deviation between a model's fitted time function and
/// the ground-truth profile, probed on a grid finer than the build grid.
/// This is the honest model error the makespan property is allowed.
double modelErrorBound(const BuiltCluster &B) {
  double Worst = 0.0;
  for (std::size_t R = 0; R < B.Models.size(); ++R) {
    for (int I = 0; I <= 40; ++I) {
      double X = 64.0 + (7000.0 - 64.0) * I / 40.0;
      double True = B.Cl.Devices[R].time(X);
      double Fit = B.Models[R]->timeAt(X);
      if (True > 0.0)
        Worst = std::max(Worst, std::abs(Fit - True) / True);
    }
  }
  return Worst;
}

double trueMakespan(const Dist &D, const BuiltCluster &B) {
  return makespan(trueTimes(D, B.Cl.Devices));
}

} // namespace

TEST(PartitionProperty, SumAndNonNegativityOverRandomClusters) {
  for (std::uint64_t Case = 0; Case < 200; ++Case) {
    SplitMix64 Rng(0x9e3779b9 + Case);
    int P = 2 + static_cast<int>(Case % 7);
    BuiltCluster B = buildCluster(P, /*Variant=*/Case + 1);
    std::int64_t Total =
        1000 + static_cast<std::int64_t>(Rng.uniform(0.0, 49000.0));

    for (const char *Name : {"constant", "geometric", "numerical"}) {
      Dist D;
      ASSERT_TRUE(findPartitioner(Name)(Total, B.Models, D))
          << Name << " failed on cluster " << Case;
      EXPECT_EQ(D.sum(), Total)
          << Name << " dropped units on cluster " << Case;
      for (std::size_t R = 0; R < D.Parts.size(); ++R)
        EXPECT_GE(D.Parts[R].Units, 0)
            << Name << " negative share, cluster " << Case << " rank "
            << R;
    }
  }
}

TEST(PartitionProperty, ModelBasedNeverWorseThanConstantBeyondFitError) {
  for (std::uint64_t Case = 0; Case < 200; ++Case) {
    SplitMix64 Rng(0x2545f491 + Case);
    int P = 2 + static_cast<int>(Case % 7);
    BuiltCluster B = buildCluster(P, /*Variant=*/1000 + Case);
    std::int64_t Total =
        2000 + static_cast<std::int64_t>(Rng.uniform(0.0, 40000.0));

    Dist Const, Geo, Num;
    ASSERT_TRUE(partitionConstant(Total, B.Models, Const));
    ASSERT_TRUE(partitionGeometric(Total, B.Models, Geo));
    ASSERT_TRUE(partitionNumerical(Total, B.Models, Num));

    // The functional models may misjudge a device by up to Err between
    // grid points, on both the winning and the losing side of the
    // comparison, plus one unit of integer rounding per rank.
    double Err = modelErrorBound(B);
    double Bound = trueMakespan(Const, B) * (1.0 + 2.0 * Err) + 1e-9;
    EXPECT_LE(trueMakespan(Geo, B), Bound)
        << "geometric worse than constant beyond model error, cluster "
        << Case << " (err " << Err << ")";
    EXPECT_LE(trueMakespan(Num, B), Bound)
        << "numerical worse than constant beyond model error, cluster "
        << Case << " (err " << Err << ")";
  }
}

TEST(PartitionProperty, SharesGrowWithTotalUpToRoundingSlack) {
  for (std::uint64_t Case = 0; Case < 40; ++Case) {
    int P = 2 + static_cast<int>(Case % 7);
    BuiltCluster B = buildCluster(P, /*Variant=*/2000 + Case);

    std::vector<std::int64_t> Prev;
    for (std::int64_t Total : {1000, 2500, 6000, 15000, 40000}) {
      Dist D;
      ASSERT_TRUE(partitionGeometric(Total, B.Models, D));
      if (!Prev.empty()) {
        for (std::size_t R = 0; R < D.Parts.size(); ++R)
          EXPECT_GE(D.Parts[R].Units, Prev[R] - 1)
              << "share shrank by more than the 1-unit rounding slack, "
              << "cluster " << Case << " rank " << R << " total "
              << Total;
      }
      Prev.clear();
      for (const Part &Pt : D.Parts)
        Prev.push_back(Pt.Units);
    }
  }
}
