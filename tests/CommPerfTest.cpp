//===-- tests/CommPerfTest.cpp - communication model tests ----------------===//
//
// The commperf library measures links and fits Hockney parameters; on the
// simulated runtime the fitted parameters must recover the *configured*
// cost model exactly, and the analytic collective predictions must match
// the virtual times the runtime actually produces. These tests therefore
// double as an end-to-end audit of the communication cost machinery.
//
//===----------------------------------------------------------------------===//

#include "commperf/HockneyFit.h"

#include "mpp/Runtime.h"

#include <gtest/gtest.h>

using namespace fupermod;

namespace {

CommSample sample(std::size_t Bytes, double Time) {
  CommSample S;
  S.Bytes = Bytes;
  S.Time = Time;
  return S;
}

} // namespace

TEST(FitHockney, RecoversExactLine) {
  // time = 1e-4 + bytes * 1e-9.
  std::vector<CommSample> Samples;
  for (std::size_t B : {100u, 1000u, 10000u, 100000u})
    Samples.push_back(sample(B, 1e-4 + static_cast<double>(B) * 1e-9));
  auto Link = fitHockney(Samples);
  ASSERT_TRUE(Link.has_value());
  EXPECT_NEAR(Link->Latency, 1e-4, 1e-12);
  EXPECT_NEAR(Link->BytePeriod, 1e-9, 1e-18);
}

TEST(FitHockney, RejectsDegenerateInputs) {
  EXPECT_FALSE(fitHockney({}).has_value());
  std::vector<CommSample> One = {sample(100, 1.0)};
  EXPECT_FALSE(fitHockney(One).has_value());
  // Same size twice: slope undetermined.
  std::vector<CommSample> Same = {sample(100, 1.0), sample(100, 2.0)};
  EXPECT_FALSE(fitHockney(Same).has_value());
  // Decreasing time with size: negative bandwidth rejected.
  std::vector<CommSample> Neg = {sample(100, 2.0), sample(1000, 1.0)};
  EXPECT_FALSE(fitHockney(Neg).has_value());
}

TEST(FitHockney, ClampsTinyNegativeLatency) {
  std::vector<CommSample> Samples = {sample(1000, 1e-6),
                                     sample(2000, 2.001e-6),
                                     sample(3000, 2.999e-6)};
  auto Link = fitHockney(Samples);
  ASSERT_TRUE(Link.has_value());
  EXPECT_GE(Link->Latency, 0.0);
}

TEST(PingPong, RecoversConfiguredLinkExactly) {
  const double Latency = 2.5e-5;
  const double Bandwidth = 4e8;
  auto Cost = std::make_shared<UniformCostModel>(Latency, Bandwidth);
  std::optional<LinkCost> Fitted;
  runSpmd(4,
          [&](Comm &C) {
            std::vector<std::size_t> Sizes = {64, 4096, 65536, 1 << 20};
            auto Samples = pingPong(C, 1, 3, Sizes);
            if (C.rank() == 0)
              Fitted = fitHockney(Samples);
          },
          Cost);
  ASSERT_TRUE(Fitted.has_value());
  EXPECT_NEAR(Fitted->Latency, Latency, 1e-9);
  EXPECT_NEAR(Fitted->BytePeriod, 1.0 / Bandwidth, 1e-15);
}

TEST(PingPong, DistinguishesIntraAndInterNodeLinks) {
  std::vector<int> NodeOf = {0, 0, 1, 1};
  LinkCost Intra{1e-6, 1.0 / 8e9};
  LinkCost Inter{5e-5, 1.0 / 1e9};
  auto Cost = std::make_shared<TwoLevelCostModel>(NodeOf, Intra, Inter);
  std::optional<LinkCost> FitIntra, FitInter;
  runSpmd(4,
          [&](Comm &C) {
            std::vector<std::size_t> Sizes = {256, 16384, 1 << 20};
            auto Near = pingPong(C, 0, 1, Sizes);
            auto Far = pingPong(C, 0, 2, Sizes);
            if (C.rank() == 0) {
              FitIntra = fitHockney(Near);
              FitInter = fitHockney(Far);
            }
          },
          Cost);
  ASSERT_TRUE(FitIntra.has_value());
  ASSERT_TRUE(FitInter.has_value());
  EXPECT_NEAR(FitIntra->Latency, 1e-6, 1e-10);
  EXPECT_NEAR(FitInter->Latency, 5e-5, 1e-10);
  EXPECT_GT(FitInter->BytePeriod, 5.0 * FitIntra->BytePeriod);
}

// Predicted collective completion times must match the runtime's actual
// virtual times for every communicator size.
class CollectivePredictionTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivePredictionTest, BcastMatchesRuntime) {
  int P = GetParam();
  LinkCost Link{1e-5, 1.0 / 1e9};
  auto Cost = std::make_shared<UniformCostModel>(1e-5, 1e9);
  const std::size_t Bytes = 1 << 18;

  double Measured = 0.0;
  runSpmd(P,
          [&](Comm &C) {
            std::vector<std::byte> Data;
            if (C.rank() == 0)
              Data.resize(Bytes);
            C.bcastBytes(Data, 0);
            double End = C.allreduceValue(C.time(), ReduceOp::Max);
            if (C.rank() == 0)
              Measured = End;
          },
          Cost);
  EXPECT_NEAR(Measured, predictBcast(Link, P, Bytes), 1e-12)
      << "P=" << P;
}

TEST_P(CollectivePredictionTest, RingAllgatherMatchesRuntime) {
  int P = GetParam();
  LinkCost Link{1e-5, 1.0 / 1e9};
  auto Cost = std::make_shared<UniformCostModel>(1e-5, 1e9);
  const std::size_t ChunkDoubles = 4096;

  double Measured = 0.0;
  runSpmd(P,
          [&](Comm &C) {
            std::vector<double> Mine(ChunkDoubles, 1.0);
            C.allgathervRing(std::span<const double>(Mine));
            double End = C.allreduceValue(C.time(), ReduceOp::Max);
            if (C.rank() == 0)
              Measured = End;
          },
          Cost);
  EXPECT_NEAR(Measured,
              predictRingAllgather(Link, P, ChunkDoubles * sizeof(double)),
              1e-12)
      << "P=" << P;
}

TEST_P(CollectivePredictionTest, GatherMatchesRuntime) {
  int P = GetParam();
  LinkCost Link{1e-5, 1.0 / 1e9};
  auto Cost = std::make_shared<UniformCostModel>(1e-5, 1e9);
  const std::size_t Doubles = 8192;

  double Measured = 0.0;
  runSpmd(P,
          [&](Comm &C) {
            std::vector<double> Mine(Doubles, 1.0);
            C.gatherv(std::span<const double>(Mine), 0);
            if (C.rank() == 0)
              Measured = C.time();
          },
          Cost);
  EXPECT_NEAR(Measured,
              predictGatherBinomial(Link, P, Doubles * sizeof(double)),
              1e-12)
      << "P=" << P;
  // Under the runtime's no-contention Hockney model the linear gather is
  // the root-completion lower bound; the tree's merge chain costs more
  // virtual time but is what bounds per-message matching work.
  EXPECT_GE(Measured + 1e-15,
            predictGatherLinear(Link, P, Doubles * sizeof(double)))
      << "P=" << P;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivePredictionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16));

namespace {

/// Node-contiguous multi-node platform matching the conventions of the
/// two-level predictors: NodeSizes[k] consecutive ranks on node k, rank 0
/// the leader of node 0.
std::shared_ptr<const TwoLevelCostModel>
nodedModel(std::span<const int> NodeSizes, const LinkCost &Intra,
           const LinkCost &Inter) {
  std::vector<int> NodeOf;
  for (std::size_t K = 0; K < NodeSizes.size(); ++K)
    NodeOf.insert(NodeOf.end(), static_cast<std::size_t>(NodeSizes[K]),
                  static_cast<int>(K));
  return std::make_shared<TwoLevelCostModel>(std::move(NodeOf), Intra,
                                             Inter);
}

} // namespace

TEST(TwoLevelPrediction, BcastMatchesRuntimeExactly) {
  const std::vector<int> NodeSizes = {8, 8, 8};
  const int P = 24;
  LinkCost Intra{1e-6, 1.0 / 8e9};
  LinkCost Inter{5e-5, 1.0 / 1e9};
  auto Cost = nodedModel(NodeSizes, Intra, Inter);
  for (std::size_t Bytes : {std::size_t{64}, std::size_t{65536}}) {
    double Measured = 0.0;
    runSpmd(
        P,
        [&](Comm &C) {
          ASSERT_TRUE(C.usesTwoLevelCollectives());
          std::vector<std::byte> Data(C.rank() == 0 ? Bytes : 0);
          C.bcastBytes(Data, 0);
          // Max over the post-bcast clocks is the completion time; the
          // allreduce computes it without disturbing the measurement.
          double End = C.allreduceValue(C.time(), ReduceOp::Max);
          if (C.rank() == 0)
            Measured = End;
        },
        Cost);
    EXPECT_NEAR(Measured,
                predictBcastTwoLevel(Intra, Inter, NodeSizes, Bytes),
                1e-12)
        << "bytes " << Bytes;
  }
}

TEST(TwoLevelPrediction, GatherMatchesRuntimeExactly) {
  const std::vector<int> NodeSizes = {8, 8, 8, 8};
  const int P = 32;
  LinkCost Intra{2e-6, 1.0 / 6e9};
  LinkCost Inter{8e-5, 1.0 / 1.25e9};
  auto Cost = nodedModel(NodeSizes, Intra, Inter);
  for (std::size_t BytesPerRank : {std::size_t{16}, std::size_t{8192}}) {
    double Measured = 0.0;
    runSpmd(
        P,
        [&](Comm &C) {
          ASSERT_TRUE(C.usesTwoLevelCollectives());
          std::vector<std::byte> Mine(BytesPerRank,
                                      std::byte{static_cast<unsigned char>(
                                          C.rank())});
          std::vector<std::byte> All = C.gathervBytes(Mine, 0);
          if (C.rank() == 0) {
            ASSERT_EQ(All.size(), BytesPerRank * P);
            Measured = C.time();
          }
        },
        Cost);
    EXPECT_NEAR(Measured,
                predictGatherTwoLevel(Intra, Inter, NodeSizes, BytesPerRank),
                1e-12)
        << "bytes/rank " << BytesPerRank;
  }
}
