//===-- tests/PartitionTest.cpp - distribution type tests -----------------===//

#include "core/Partition.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace fupermod;

TEST(DistEven, SpreadsRemainder) {
  Dist D = Dist::even(10, 3);
  EXPECT_EQ(D.Total, 10);
  ASSERT_EQ(D.Parts.size(), 3u);
  EXPECT_EQ(D.Parts[0].Units, 4);
  EXPECT_EQ(D.Parts[1].Units, 3);
  EXPECT_EQ(D.Parts[2].Units, 3);
  EXPECT_EQ(D.sum(), 10);
}

TEST(DistEven, ExactDivision) {
  Dist D = Dist::even(12, 4);
  for (const Part &P : D.Parts)
    EXPECT_EQ(P.Units, 3);
}

TEST(DistEven, MoreProcsThanUnits) {
  Dist D = Dist::even(2, 5);
  EXPECT_EQ(D.sum(), 2);
  EXPECT_EQ(D.Parts[0].Units, 1);
  EXPECT_EQ(D.Parts[1].Units, 1);
  EXPECT_EQ(D.Parts[4].Units, 0);
}

TEST(Dist, MaxPredictedTime) {
  Dist D = Dist::even(4, 2);
  D.Parts[0].PredictedTime = 1.5;
  D.Parts[1].PredictedTime = 2.5;
  EXPECT_DOUBLE_EQ(D.maxPredictedTime(), 2.5);
}

TEST(Dist, RelativeChange) {
  Dist A = Dist::even(100, 2); // 50 / 50.
  Dist B = A;
  B.Parts[0].Units = 60;
  B.Parts[1].Units = 40;
  EXPECT_DOUBLE_EQ(A.relativeChange(B), 0.1);
  EXPECT_DOUBLE_EQ(A.relativeChange(A), 0.0);
}

TEST(RoundShares, ExactIntegersPassThrough) {
  std::vector<double> S = {3.0, 5.0, 2.0};
  auto U = roundShares(S, 10);
  EXPECT_EQ(U[0], 3);
  EXPECT_EQ(U[1], 5);
  EXPECT_EQ(U[2], 2);
}

TEST(RoundShares, LargestRemainderWins) {
  std::vector<double> S = {1.6, 1.6, 1.8}; // Sums to 5.
  auto U = roundShares(S, 5);
  EXPECT_EQ(U[0] + U[1] + U[2], 5);
  EXPECT_EQ(U[2], 2); // 0.8 is the largest remainder.
}

TEST(RoundShares, NegativeSharesClampToZero) {
  std::vector<double> S = {-1.0, 4.0};
  auto U = roundShares(S, 4);
  EXPECT_EQ(U[0] + U[1], 4);
  EXPECT_GE(U[0], 0);
}

TEST(RoundShares, TrimsOvershoot) {
  std::vector<double> S = {3.9, 3.9}; // Floors to 3+3, frac pushes to 8.
  auto U = roundShares(S, 6);
  EXPECT_EQ(U[0] + U[1], 6);
}

TEST(RoundShares, ZeroTotal) {
  std::vector<double> S = {0.4, 0.6};
  auto U = roundShares(S, 0);
  EXPECT_EQ(U[0] + U[1], 0);
}

// Property: rounding always preserves the total and deviates from the
// real share by less than one unit per process (largest remainder bound
// within the same scale).
struct RoundCase {
  std::vector<double> Shares;
  std::int64_t Total;
};

class RoundSharesProperty : public ::testing::TestWithParam<RoundCase> {};

TEST_P(RoundSharesProperty, TotalPreservedAndClose) {
  const RoundCase &C = GetParam();
  auto U = roundShares(C.Shares, C.Total);
  std::int64_t Sum = std::accumulate(U.begin(), U.end(), std::int64_t(0));
  EXPECT_EQ(Sum, C.Total);
  double ShareSum = 0.0;
  for (double S : C.Shares)
    ShareSum += std::max(S, 0.0);
  for (std::size_t I = 0; I < U.size(); ++I) {
    double Scaled = ShareSum > 0.0
                        ? std::max(C.Shares[I], 0.0) *
                              static_cast<double>(C.Total) / ShareSum
                        : 0.0;
    EXPECT_NEAR(static_cast<double>(U[I]), Scaled, 2.0)
        << "share " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RoundSharesProperty,
    ::testing::Values(
        RoundCase{{0.5, 0.5}, 101},
        RoundCase{{10.2, 20.4, 30.4}, 61},
        RoundCase{{1e-3, 1e-3, 1000.0}, 1000},
        RoundCase{{7.0}, 7},
        RoundCase{{0.3, 0.3, 0.4}, 1},
        RoundCase{{123.4, 234.5, 345.6, 456.7}, 1160}));

TEST(Dist, SameUnitsIgnoresPredictedTimes) {
  Dist A = Dist::even(100, 3);
  Dist B = A;
  B.Parts[0].PredictedTime = 9.0;
  EXPECT_TRUE(A.sameUnits(B));
  B.Parts[0].Units += 1;
  B.Parts[1].Units -= 1;
  EXPECT_FALSE(A.sameUnits(B));
}

TEST(Dist, ContiguousStartsArePrefixSums) {
  Dist D = Dist::even(10, 3); // 4 / 3 / 3.
  std::vector<std::int64_t> S0 = D.contiguousStarts();
  EXPECT_EQ(S0, (std::vector<std::int64_t>{0, 4, 7, 10}));
  std::vector<std::int64_t> S1 = D.contiguousStarts(1);
  EXPECT_EQ(S1, (std::vector<std::int64_t>{1, 5, 8, 11}));
}

TEST(Dist, ContiguousStartsWithEmptyParts) {
  Dist D;
  D.Total = 5;
  D.Parts.resize(4);
  D.Parts[1].Units = 5; // Ranks 0, 2, 3 own nothing.
  EXPECT_EQ(D.contiguousStarts(),
            (std::vector<std::int64_t>{0, 0, 5, 5, 5}));
}

TEST(OwnerOfUnit, SkipsEmptyRangesAndRejectsOutOfDomain) {
  std::vector<std::int64_t> Starts = {0, 5, 5, 10};
  EXPECT_EQ(ownerOfUnit(Starts, 0), 0);
  EXPECT_EQ(ownerOfUnit(Starts, 4), 0);
  // Unit 5 belongs to rank 2 — rank 1's range [5, 5) is empty.
  EXPECT_EQ(ownerOfUnit(Starts, 5), 2);
  EXPECT_EQ(ownerOfUnit(Starts, 9), 2);
  EXPECT_EQ(ownerOfUnit(Starts, 10), -1);
  EXPECT_EQ(ownerOfUnit(Starts, -1), -1);
}

TEST(OwnerOfUnit, NonZeroBase) {
  std::vector<std::int64_t> Starts = {1, 3, 6};
  EXPECT_EQ(ownerOfUnit(Starts, 0), -1);
  EXPECT_EQ(ownerOfUnit(Starts, 1), 0);
  EXPECT_EQ(ownerOfUnit(Starts, 3), 1);
  EXPECT_EQ(ownerOfUnit(Starts, 5), 1);
  EXPECT_EQ(ownerOfUnit(Starts, 6), -1);
}
