//===-- tests/RedistributeTest.cpp - minimal-move redistribution ----------===//
//
// Property net over the interval-overlap transfer plan: across hundreds
// of random (P, N, old -> new) repartitions the redistributed container
// must (a) hold exactly the gather-scatter oracle contents, (b) move
// exactly the analytic minimum number of units, and (c) copy zero bytes
// in the comm layer (every send is a subview of the frozen old segment).
//
//===----------------------------------------------------------------------===//

#include "dist/PartitionedVector.h"
#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <span>
#include <vector>

using namespace fupermod;
using namespace fupermod::dist;

namespace {

/// Deterministic contents of element \p Elem of global unit \p Unit.
double unitValue(std::int64_t Unit, std::int64_t Elem) {
  std::uint64_t Z = static_cast<std::uint64_t>(Unit) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(Elem) + 1;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return static_cast<double>(Z >> 11) * (1.0 / 9007199254740992.0);
}

Dist distOf(std::span<const std::int64_t> Units) {
  Dist D;
  for (std::int64_t U : Units) {
    Part P;
    P.Units = U;
    D.Parts.push_back(P);
    D.Total += U;
  }
  return D;
}

/// Random composition of \p Total into \p P non-negative parts.
std::vector<std::int64_t> randomComposition(std::mt19937 &Rng,
                                            std::int64_t Total, int P) {
  std::vector<std::int64_t> Cuts = {0, Total};
  std::uniform_int_distribution<std::int64_t> Pick(0, Total);
  for (int I = 0; I + 1 < P; ++I)
    Cuts.push_back(Pick(Rng));
  std::sort(Cuts.begin(), Cuts.end());
  std::vector<std::int64_t> Units;
  for (int I = 0; I < P; ++I)
    Units.push_back(Cuts[static_cast<std::size_t>(I) + 1] -
                    Cuts[static_cast<std::size_t>(I)]);
  return Units;
}

/// One full SPMD redistribution, checked against the oracle and the
/// analytic transfer minimum.
void checkCase(int P, std::span<const std::int64_t> OldUnits,
               std::span<const std::int64_t> NewUnits, std::int64_t EPU) {
  Dist OldD = distOf(OldUnits);
  Dist NewD = distOf(NewUnits);
  ASSERT_EQ(OldD.Total, NewD.Total);
  std::vector<std::int64_t> OldStarts = OldD.contiguousStarts();
  std::vector<std::int64_t> NewStarts = NewD.contiguousStarts();
  std::int64_t MinUnits = minimalTransferUnits(OldStarts, NewStarts);

  std::atomic<std::int64_t> TotalSent{0};
  std::atomic<std::int64_t> TotalReceived{0};
  SpmdResult R = runSpmd(P, [&](Comm &C) {
    PartitionedVector<double> V(C, OldD, EPU);
    V.generate([](std::int64_t Unit, std::span<double> Out) {
      for (std::size_t E = 0; E < Out.size(); ++E)
        Out[E] = unitValue(Unit, static_cast<std::int64_t>(E));
    });

    RedistributeStats S = V.redistribute(NewD);

    // Oracle: unit U of the new segment must hold exactly what a gather
    // to rank 0 + scatter by the new partition would deliver — the
    // original contents of unit U.
    for (std::int64_t U = V.start(); U < V.end(); ++U) {
      std::span<const double> Unit = V.unit(U);
      for (std::size_t E = 0; E < Unit.size(); ++E)
        ASSERT_EQ(Unit[E], unitValue(U, static_cast<std::int64_t>(E)))
            << "unit " << U << " elem " << E;
    }

    // Per-rank accounting: the keep range is old_me ∩ new_me, and every
    // unit is accounted exactly once.
    int Me = C.rank();
    Interval Keep =
        overlap({OldStarts[static_cast<std::size_t>(Me)],
                 OldStarts[static_cast<std::size_t>(Me) + 1]},
                {NewStarts[static_cast<std::size_t>(Me)],
                 NewStarts[static_cast<std::size_t>(Me) + 1]});
    EXPECT_EQ(S.UnitsKept, Keep.length());
    EXPECT_EQ(S.UnitsKept + S.UnitsReceived, V.units());
    TotalSent += S.UnitsSent;
    TotalReceived += S.UnitsReceived;
  });
  ASSERT_TRUE(R.allOk());

  // Byte minimality: the whole world moved exactly the analytic minimum,
  // and the world counters agree with the per-rank stats.
  EXPECT_EQ(TotalSent.load(), MinUnits);
  EXPECT_EQ(TotalReceived.load(), MinUnits);
  EXPECT_EQ(R.Comm.RedistributeBytes,
            static_cast<unsigned long long>(MinUnits) *
                static_cast<unsigned long long>(EPU) * sizeof(double));
  // Zero-copy: subview sends and adopted buffers never deep-copy in the
  // comm layer.
  EXPECT_EQ(R.Comm.BytesCopied, 0u);
}

} // namespace

TEST(TransferPlan, OverlapBasics) {
  EXPECT_EQ(overlap({0, 5}, {3, 9}).Lo, 3);
  EXPECT_EQ(overlap({0, 5}, {3, 9}).Hi, 5);
  EXPECT_TRUE(overlap({0, 5}, {5, 9}).empty());
  EXPECT_TRUE(overlap({0, 0}, {0, 9}).empty());
  EXPECT_EQ(overlap({2, 8}, {0, 100}).length(), 6);
}

TEST(TransferPlan, HandComputedPlan) {
  // Old: [0,4) [4,8); New: [0,6) [6,8). Rank 0 keeps [0,4), receives
  // [4,6) from rank 1; rank 1 keeps [6,8), sends [4,6).
  std::vector<std::int64_t> Old = {0, 4, 8};
  std::vector<std::int64_t> New = {0, 6, 8};
  TransferPlan P0 = buildTransferPlan(Old, New, 0);
  EXPECT_EQ(P0.Keep.Lo, 0);
  EXPECT_EQ(P0.Keep.Hi, 4);
  EXPECT_TRUE(P0.Sends.empty());
  ASSERT_EQ(P0.Recvs.size(), 1u);
  EXPECT_EQ(P0.Recvs[0].Peer, 1);
  EXPECT_EQ(P0.Recvs[0].Range.Lo, 4);
  EXPECT_EQ(P0.Recvs[0].Range.Hi, 6);

  TransferPlan P1 = buildTransferPlan(Old, New, 1);
  EXPECT_EQ(P1.Keep.Lo, 6);
  ASSERT_EQ(P1.Sends.size(), 1u);
  EXPECT_EQ(P1.Sends[0].Peer, 0);
  EXPECT_EQ(P1.Sends[0].Range.length(), 2);
  EXPECT_TRUE(P1.Recvs.empty());

  EXPECT_EQ(minimalTransferUnits(Old, New), 2);
}

TEST(TransferPlan, MinimalUnitsExamples) {
  // Identity moves nothing.
  std::vector<std::int64_t> A = {0, 3, 7, 10};
  EXPECT_EQ(minimalTransferUnits(A, A), 0);
  // {3,4,3} -> {7,2,3}: stays are 3 (rank 0: [0,3) ⊂ [0,7)), 0 (rank 1:
  // [3,7) vs [7,9) disjoint), 1 (rank 2: [7,10) ∩ [9,10)) -> 10 - 4 = 6.
  std::vector<std::int64_t> B = {0, 7, 9, 10};
  EXPECT_EQ(minimalTransferUnits(A, B), 6);
  // Disjoint new ranges move the whole domain.
  std::vector<std::int64_t> C1 = {0, 10, 10, 10};
  std::vector<std::int64_t> C2 = {0, 0, 0, 10};
  EXPECT_EQ(minimalTransferUnits(C1, C2), 10);
}

TEST(TransferPlan, SendsMatchRecvsAcrossRanks) {
  // Cross-rank consistency: rank r's send to q is exactly rank q's
  // receive from r.
  std::vector<std::int64_t> Old = {0, 2, 2, 9, 12};
  std::vector<std::int64_t> New = {0, 5, 7, 7, 12};
  int P = 4;
  for (int R = 0; R < P; ++R) {
    TransferPlan PlanR = buildTransferPlan(Old, New, R);
    for (const TransferPlan::Piece &S : PlanR.Sends) {
      TransferPlan PlanQ = buildTransferPlan(Old, New, S.Peer);
      bool Found = false;
      for (const TransferPlan::Piece &Rv : PlanQ.Recvs)
        Found |= Rv.Peer == R && Rv.Range.Lo == S.Range.Lo &&
                 Rv.Range.Hi == S.Range.Hi;
      EXPECT_TRUE(Found) << "send " << R << "->" << S.Peer << " unmatched";
    }
  }
}

TEST(Redistribute, SingleRankIsPureKeep) {
  std::vector<std::int64_t> Units = {12};
  checkCase(1, Units, Units, 3);
}

TEST(Redistribute, GrowShrinkAndDegradedRanks) {
  // Hand-picked shapes: growth into a zero-unit rank, total drain of a
  // rank (degraded-device exclusion), and a full rotation.
  checkCase(3, std::vector<std::int64_t>{4, 4, 4},
            std::vector<std::int64_t>{6, 6, 0}, 2);
  checkCase(3, std::vector<std::int64_t>{0, 12, 0},
            std::vector<std::int64_t>{4, 4, 4}, 1);
  checkCase(4, std::vector<std::int64_t>{1, 5, 0, 6},
            std::vector<std::int64_t>{6, 0, 5, 1}, 5);
}

TEST(Redistribute, RandomRepartitionsMatchOracleAndMinimum) {
  // The 200-case property net of the issue: random process counts,
  // totals, and partition pairs (including empty parts), each checked
  // for oracle contents, analytic-minimum traffic, and zero copies.
  std::mt19937 Rng(20260807u);
  const int Ps[] = {1, 2, 3, 5, 8};
  const std::int64_t EPUs[] = {1, 3, 7};
  for (int Case = 0; Case < 200; ++Case) {
    int P = Ps[Case % 5];
    std::uniform_int_distribution<std::int64_t> PickN(1, 48);
    std::int64_t N = PickN(Rng);
    std::vector<std::int64_t> OldUnits = randomComposition(Rng, N, P);
    std::vector<std::int64_t> NewUnits = randomComposition(Rng, N, P);
    std::int64_t EPU = EPUs[Case % 3];
    SCOPED_TRACE("case " + std::to_string(Case) + " P=" +
                 std::to_string(P) + " N=" + std::to_string(N));
    checkCase(P, OldUnits, NewUnits, EPU);
    if (HasFatalFailure())
      return;
  }
}
