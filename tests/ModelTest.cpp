//===-- tests/ModelTest.cpp - performance model tests ---------------------===//

#include "core/Model.h"

#include "sim/DeviceProfile.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fupermod;

namespace {

Point makePoint(double Units, double Time, int Reps = 3) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = Reps;
  P.ConfidenceInterval = 0.0;
  return P;
}

/// Feeds a model with exact points of a device profile.
void feedProfile(Model &M, const DeviceProfile &P,
                 std::initializer_list<double> Sizes) {
  for (double D : Sizes)
    M.update(makePoint(D, P.time(D)));
}

} // namespace

TEST(PointStruct, SpeedDerivedFromTime) {
  Point P = makePoint(100.0, 2.0);
  EXPECT_DOUBLE_EQ(P.speed(), 50.0);
  Point Zero;
  EXPECT_DOUBLE_EQ(Zero.speed(), 0.0);
}

TEST(ModelUpdate, IgnoresFailedMeasurements) {
  ConstantModel M;
  Point Bad;
  Bad.Units = 10.0;
  Bad.Time = std::numeric_limits<double>::infinity();
  Bad.Reps = 0;
  M.update(Bad);
  EXPECT_FALSE(M.fitted());
}

TEST(ModelUpdate, MergesSameSizePoints) {
  ConstantModel M;
  M.update(makePoint(10.0, 1.0, 1));
  M.update(makePoint(10.0, 3.0, 1));
  ASSERT_EQ(M.points().size(), 1u);
  EXPECT_DOUBLE_EQ(M.points()[0].Time, 2.0); // Rep-weighted mean.
  EXPECT_EQ(M.points()[0].Reps, 2);
}

TEST(ModelUpdate, KeepsPointsSorted) {
  PiecewiseModel M;
  M.update(makePoint(30.0, 3.0));
  M.update(makePoint(10.0, 1.0));
  M.update(makePoint(20.0, 2.0));
  ASSERT_EQ(M.points().size(), 3u);
  EXPECT_DOUBLE_EQ(M.points()[0].Units, 10.0);
  EXPECT_DOUBLE_EQ(M.points()[2].Units, 30.0);
}

TEST(ConstantModel, SinglePointDefinesSpeed) {
  ConstantModel M;
  M.update(makePoint(100.0, 4.0)); // 25 units/s.
  EXPECT_DOUBLE_EQ(M.speedAt(1.0), 25.0);
  EXPECT_DOUBLE_EQ(M.speedAt(1e6), 25.0);
  EXPECT_DOUBLE_EQ(M.timeAt(50.0), 2.0);
  EXPECT_DOUBLE_EQ(M.sizeForTime(2.0), 50.0);
  EXPECT_STREQ(M.kind(), "cpm");
}

TEST(ConstantModel, AveragesSpeedsAcrossPoints) {
  ConstantModel M;
  M.update(makePoint(100.0, 1.0)); // 100 units/s.
  M.update(makePoint(200.0, 1.0)); // 200 units/s.
  EXPECT_DOUBLE_EQ(M.speedAt(10.0), 150.0);
}

TEST(ConstantModel, ZeroSizeTakesZeroTime) {
  ConstantModel M;
  M.update(makePoint(10.0, 1.0));
  EXPECT_DOUBLE_EQ(M.timeAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(M.sizeForTime(0.0), 0.0);
}

TEST(PiecewiseModel, InterpolatesTimeLinearly) {
  PiecewiseModel M;
  M.update(makePoint(10.0, 1.0));
  M.update(makePoint(20.0, 3.0));
  EXPECT_DOUBLE_EQ(M.timeAt(15.0), 2.0);
  EXPECT_STREQ(M.kind(), "piecewise");
}

TEST(PiecewiseModel, ConstantSpeedBelowFirstKnot) {
  PiecewiseModel M;
  M.update(makePoint(10.0, 2.0)); // 5 units/s.
  EXPECT_DOUBLE_EQ(M.timeAt(5.0), 1.0);
  EXPECT_DOUBLE_EQ(M.speedAt(1.0), 5.0);
}

TEST(PiecewiseModel, ConstantSpeedBeyondLastKnot) {
  PiecewiseModel M;
  M.update(makePoint(10.0, 1.0));
  M.update(makePoint(20.0, 4.0)); // Last-knot speed 5 units/s.
  EXPECT_DOUBLE_EQ(M.timeAt(40.0), 8.0);
  EXPECT_NEAR(M.speedAt(100.0), 5.0, 1e-9);
}

TEST(PiecewiseModel, CoarseningEnforcesMonotoneTime) {
  // The second point reports a *smaller* time at a larger size (speed
  // spike); coarsening must lift it so the time function still increases.
  PiecewiseModel M;
  M.update(makePoint(10.0, 2.0));
  M.update(makePoint(20.0, 1.5));
  M.update(makePoint(30.0, 5.0));
  const auto &Ts = M.knotTimes();
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_GT(Ts[1], Ts[0]);
  EXPECT_GT(Ts[2], Ts[1]);
  // Predicted times are monotone over the whole range.
  double Prev = 0.0;
  for (double X = 1.0; X <= 60.0; X += 1.0) {
    double T = M.timeAt(X);
    EXPECT_GE(T, Prev);
    Prev = T;
  }
}

TEST(PiecewiseModel, SizeForTimeIsExactInverse) {
  PiecewiseModel M;
  M.update(makePoint(10.0, 1.0));
  M.update(makePoint(20.0, 3.0));
  M.update(makePoint(40.0, 9.0));
  for (double X : {5.0, 10.0, 14.0, 20.0, 33.0, 40.0, 55.0}) {
    double T = M.timeAt(X);
    EXPECT_NEAR(M.sizeForTime(T), X, 1e-9) << "at " << X;
  }
}

TEST(PiecewiseModel, DerivativeMatchesSegments) {
  PiecewiseModel M;
  M.update(makePoint(10.0, 1.0));
  M.update(makePoint(20.0, 3.0));
  EXPECT_DOUBLE_EQ(M.timeDerivative(15.0), 0.2);
  EXPECT_DOUBLE_EQ(M.timeDerivative(5.0), 0.1);   // 1/speed left of data.
  EXPECT_DOUBLE_EQ(M.timeDerivative(50.0), 0.15); // 1/speed right of data.
}

TEST(AkimaModel, PassesThroughPointsAndOrigin) {
  AkimaModel M;
  M.update(makePoint(10.0, 1.0));
  M.update(makePoint(20.0, 2.5));
  M.update(makePoint(40.0, 7.0));
  EXPECT_NEAR(M.timeAt(10.0), 1.0, 1e-10);
  EXPECT_NEAR(M.timeAt(40.0), 7.0, 1e-10);
  EXPECT_NEAR(M.timeAt(1e-9), 0.0, 1e-6);
  EXPECT_STREQ(M.kind(), "akima");
}

TEST(AkimaModel, SmoothDerivative) {
  AkimaModel M;
  for (double D : {5.0, 10.0, 20.0, 40.0, 80.0})
    M.update(makePoint(D, D / 10.0 + 0.1 * std::sin(D)));
  for (double X = 6.0; X < 75.0; X += 3.7) {
    double H = 1e-6;
    double FD = (M.timeAt(X + H) - M.timeAt(X - H)) / (2.0 * H);
    EXPECT_NEAR(M.timeDerivative(X), FD, 1e-4) << "at " << X;
  }
}

TEST(AkimaModel, SizeForTimeFindsCrossing) {
  AkimaModel M;
  M.update(makePoint(10.0, 1.0));
  M.update(makePoint(20.0, 2.0));
  M.update(makePoint(40.0, 4.0));
  double X = M.sizeForTime(3.0);
  EXPECT_NEAR(M.timeAt(X), 3.0, 1e-6);
}

TEST(LinearModel, ExactOnLinearData) {
  // t = 0.5 + 0.01 x: a GPU-like device (staging overhead + linear
  // kernel), the model class of the paper's ref [12].
  LinearModel M;
  for (double D : {100.0, 200.0, 400.0, 800.0})
    M.update(makePoint(D, 0.5 + 0.01 * D));
  EXPECT_NEAR(M.intercept(), 0.5, 1e-9);
  EXPECT_NEAR(M.slope(), 0.01, 1e-12);
  EXPECT_NEAR(M.timeAt(300.0), 3.5, 1e-9);
  EXPECT_NEAR(M.sizeForTime(3.5), 300.0, 1e-6);
  EXPECT_DOUBLE_EQ(M.timeDerivative(123.0), 0.01);
  EXPECT_STREQ(M.kind(), "linear");
}

TEST(LinearModel, SinglePointAssumesNoOverhead) {
  LinearModel M;
  M.update(makePoint(100.0, 2.0));
  EXPECT_DOUBLE_EQ(M.intercept(), 0.0);
  EXPECT_DOUBLE_EQ(M.slope(), 0.02);
}

TEST(LinearModel, SizeForTimeBelowInterceptIsZero) {
  LinearModel M;
  M.update(makePoint(100.0, 1.5)); // Through origin after one point...
  M.update(makePoint(200.0, 2.5)); // ...now a = 0.5, b = 0.01.
  EXPECT_NEAR(M.intercept(), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(M.sizeForTime(0.25), 0.0);
}

TEST(LinearModel, DegenerateFitFallsBackToOrigin) {
  // Decreasing times with size would give a negative slope; the model
  // must stay invertible.
  LinearModel M;
  M.update(makePoint(100.0, 2.0));
  M.update(makePoint(200.0, 1.0));
  EXPECT_GT(M.slope(), 0.0);
  EXPECT_DOUBLE_EQ(M.intercept(), 0.0);
}

TEST(LinearModel, FitsGpuProfileWell) {
  DeviceProfile Gpu = makeGpuProfile("gpu", 1000.0, 0.2, 1e9, 1.0);
  LinearModel M;
  for (double D = 100.0; D <= 2000.0; D += 100.0)
    M.update(makePoint(D, Gpu.time(D)));
  EXPECT_NEAR(M.intercept(), 0.2, 0.01);
  for (double X : {150.0, 750.0, 1900.0})
    EXPECT_NEAR(M.timeAt(X), Gpu.time(X), 0.01 * Gpu.time(X)) << X;
}

TEST(ModelFactory, CreatesAllKinds) {
  EXPECT_STREQ(makeModel("cpm")->kind(), "cpm");
  EXPECT_STREQ(makeModel("piecewise")->kind(), "piecewise");
  EXPECT_STREQ(makeModel("akima")->kind(), "akima");
  EXPECT_STREQ(makeModel("linear")->kind(), "linear");
}

// Property: all models fed with dense exact points of a realistic profile
// predict times close to the truth inside the sampled range.
class ModelAccuracyTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(ModelAccuracyTest, TracksSmoothProfile) {
  DeviceProfile P = makeCpuProfile("cpu", 500.0, 20.0, 1500.0, 250.0, 0.5);
  auto M = makeModel(GetParam());
  for (double D = 100.0; D <= 3000.0; D += 100.0)
    M->update(makePoint(D, P.time(D)));

  bool IsCpm = std::string(GetParam()) == "cpm";
  for (double X = 150.0; X <= 2900.0; X += 137.0) {
    double True = P.time(X);
    double Predicted = M->timeAt(X);
    // Functional models stay within a few percent; CPM (constant speed)
    // is allowed a much wider band on this non-constant profile.
    double Tolerance = IsCpm ? 0.8 * True : 0.05 * True;
    EXPECT_NEAR(Predicted, True, Tolerance) << GetParam() << " at " << X;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ModelAccuracyTest,
                         ::testing::Values("cpm", "piecewise", "akima"));

// Property: functional models reproduce the profile's *speed* shape: the
// speed drop across a cliff is visible in the model.
TEST(ModelShape, FunctionalModelsSeeTheCliff) {
  DeviceProfile P = makeCpuProfile("cpu", 1000.0, 1.0, 500.0, 50.0, 0.6);
  for (const char *Kind : {"piecewise", "akima"}) {
    auto M = makeModel(Kind);
    feedProfile(*M, P, {50.0, 150.0, 300.0, 450.0, 600.0, 800.0, 1200.0});
    double Before = M->speedAt(300.0);
    double After = M->speedAt(1100.0);
    EXPECT_GT(Before, 1.5 * After) << Kind;
  }
}

TEST(InverseCache, CachedLookupMatchesDirectAndCountsHits) {
  PiecewiseModel M;
  M.update(makePoint(100.0, 1.0));
  M.update(makePoint(1000.0, 20.0));
  M.update(makePoint(4000.0, 120.0));

  for (double T : {0.5, 5.0, 60.0}) {
    EXPECT_DOUBLE_EQ(M.sizeForTimeCached(T), M.sizeForTime(T));
    EXPECT_DOUBLE_EQ(M.sizeForTimeCached(T), M.sizeForTime(T)); // hit
  }
  EXPECT_EQ(M.cacheLookups(), 6u);
  EXPECT_EQ(M.cacheHits(), 3u);
}

TEST(InverseCache, InvalidatedWhenModelRefits) {
  PiecewiseModel M;
  M.update(makePoint(100.0, 1.0));
  M.update(makePoint(1000.0, 10.0));
  double Before = M.sizeForTimeCached(5.0);

  // New measurement changes the fit; a stale cached inverse would now
  // disagree with the direct computation.
  M.update(makePoint(500.0, 8.0));
  double After = M.sizeForTimeCached(5.0);
  EXPECT_DOUBLE_EQ(After, M.sizeForTime(5.0));
  EXPECT_NE(Before, After);
  // Lifetime counters survive invalidation (hit rates stay meaningful).
  EXPECT_EQ(M.cacheLookups(), 2u);
}

TEST(InverseCache, DistinguishesBitDistinctKeys) {
  PiecewiseModel M;
  M.update(makePoint(100.0, 1.0));
  M.update(makePoint(1000.0, 10.0));
  double T1 = 5.0;
  double T2 = std::nextafter(5.0, 6.0); // Adjacent representable value.
  EXPECT_DOUBLE_EQ(M.sizeForTimeCached(T1), M.sizeForTime(T1));
  EXPECT_DOUBLE_EQ(M.sizeForTimeCached(T2), M.sizeForTime(T2));
  EXPECT_EQ(M.cacheHits(), 0u); // Distinct bit patterns never collide.
}

TEST(InverseCache, RangedInvalidationPreservesUnaffectedEntries) {
  // Feedback at a large size must not evict memoized inverses that
  // resolved well left of the change: piecewise coarsening only cascades
  // rightward, so PiecewiseModel reports a non-zero invalidation bound.
  PiecewiseModel M;
  M.update(makePoint(100.0, 1.0));
  M.update(makePoint(1000.0, 10.0));
  M.update(makePoint(2000.0, 30.0));
  M.update(makePoint(4000.0, 120.0));
  M.clearEvalCache();

  const double LowT = 0.5;   // Resolves to ~50, far left of the change.
  const double HighT = 60.0; // Resolves between the last two knots.
  M.sizeForTimeCached(LowT);
  M.sizeForTimeCached(HighT);

  // Repeat measurement at the last knot: only entries at or beyond the
  // second knot left of it may be dropped.
  M.update(makePoint(4000.0, 126.0));
  EXPECT_EQ(M.cacheInvalidations(), 1u);

  EXPECT_DOUBLE_EQ(M.sizeForTimeCached(LowT), M.sizeForTime(LowT));
  EXPECT_EQ(M.cacheHits(), 1u); // The low entry survived...
  EXPECT_DOUBLE_EQ(M.sizeForTimeCached(HighT), M.sizeForTime(HighT));
  EXPECT_EQ(M.cacheHits(), 1u); // ...the high one was recomputed.
}

TEST(InverseCache, InvalidationCounterComparableAcrossWipeAndRange) {
  // Akima has no ranged bound: every update wipes the whole cache, and
  // the counter must report exactly the entries that wipe dropped — the
  // same unit the ranged path counts, so `partitioner --stats` can sum
  // them across model kinds.
  AkimaModel A;
  A.update(makePoint(100.0, 1.0));
  A.update(makePoint(1000.0, 10.0));
  A.update(makePoint(4000.0, 50.0));
  for (double T : {0.5, 5.0, 20.0})
    A.sizeForTimeCached(T);
  A.update(makePoint(2000.0, 22.0)); // Full wipe: all three entries.
  EXPECT_EQ(A.cacheInvalidations(), 3u);

  // clearEvalCache resets the counters without touching the fit.
  std::uint64_t Epoch = A.fitEpoch();
  A.clearEvalCache();
  EXPECT_EQ(A.cacheInvalidations(), 0u);
  EXPECT_EQ(A.cacheLookups(), 0u);
  EXPECT_EQ(A.fitEpoch(), Epoch);
}

TEST(FitEpoch, AdvancesOnEveryFitChange) {
  PiecewiseModel M;
  std::uint64_t E0 = M.fitEpoch();
  M.update(makePoint(100.0, 1.0));
  std::uint64_t E1 = M.fitEpoch();
  EXPECT_NE(E1, E0);
  M.update(makePoint(1000.0, 10.0));
  std::uint64_t E2 = M.fitEpoch();
  EXPECT_NE(E2, E1);
  // Merging feedback into an existing point refits too.
  M.update(makePoint(1000.0, 12.0));
  EXPECT_NE(M.fitEpoch(), E2);
}

TEST(FitEpoch, AdvancesWhenFeasibilityCapTightens) {
  // A failed measurement (Reps == 0) refits nothing, but a tighter cap
  // changes partitioning results, so memoized warm-start solutions must
  // stop validating.
  PiecewiseModel M;
  M.update(makePoint(100.0, 1.0));
  M.update(makePoint(1000.0, 10.0));
  std::uint64_t E = M.fitEpoch();
  Point Fail;
  Fail.Units = 5000.0;
  Fail.Time = std::numeric_limits<double>::infinity();
  Fail.Reps = 0;
  M.update(Fail);
  EXPECT_NE(M.fitEpoch(), E);
  EXPECT_DOUBLE_EQ(M.feasibleLimit(), 5000.0);
  // A looser failure than the recorded cap changes nothing.
  std::uint64_t E2 = M.fitEpoch();
  Fail.Units = 6000.0;
  M.update(Fail);
  EXPECT_EQ(M.fitEpoch(), E2);
}

TEST(FitEpoch, AdvancesWhenDecayDropsPoints) {
  PiecewiseModel M;
  M.update(makePoint(100.0, 1.0, /*Reps=*/10));
  M.update(makePoint(1000.0, 10.0, /*Reps=*/1));
  std::uint64_t E = M.fitEpoch();
  M.decayWeights(1.0); // No-op: the fit is unchanged.
  EXPECT_EQ(M.fitEpoch(), E);
  M.decayWeights(0.1); // The weight-1 point decays below the keep floor.
  EXPECT_NE(M.fitEpoch(), E);
  EXPECT_EQ(M.points().size(), 1u);
}

TEST(FitEpoch, NeverSharedAcrossModels) {
  // Epochs are drawn from a process-wide counter, so equality proves the
  // same fit of the same model object — two models fed identical data
  // still differ, and a warm-start hint can never validate against the
  // wrong model.
  PiecewiseModel A, B;
  A.update(makePoint(100.0, 1.0));
  B.update(makePoint(100.0, 1.0));
  EXPECT_NE(A.fitEpoch(), B.fitEpoch());
}
