//===-- tests/StencilTest.cpp - heat stencil application tests ------------===//

#include "apps/Stencil.h"

#include "core/Metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

using namespace fupermod;

namespace {

StencilOptions smallOptions() {
  StencilOptions O;
  O.Rows = 34; // 32 interior rows.
  O.Cols = 24;
  O.Iterations = 15;
  O.Balance = false;
  return O;
}

} // namespace

TEST(StencilInitial, BoundaryValuesDeterministicAndFixed) {
  EXPECT_DOUBLE_EQ(stencilInitial(34, 24, 0, 5),
                   stencilInitial(34, 24, 0, 5));
  EXPECT_GT(stencilInitial(34, 24, 0, 5), 80.0);  // Hot top edge.
  EXPECT_DOUBLE_EQ(stencilInitial(34, 24, 33, 5), 0.0); // Cool bottom.
  EXPECT_DOUBLE_EQ(stencilInitial(34, 24, 10, 0), 50.0); // Side walls.
}

TEST(Stencil, MatchesSerialOnSingleRank) {
  Cluster Cl = makeUniformCluster(1, 100.0);
  Cl.NoiseSigma = 0.0;
  StencilReport R = runStencil(Cl, smallOptions());
  EXPECT_LT(R.MaxError, 1e-12);
  EXPECT_EQ(R.HaloRowsSent, 0);
}

TEST(Stencil, MatchesSerialAcrossRanks) {
  for (int P : {2, 3, 5}) {
    Cluster Cl = makeUniformCluster(P, 100.0);
    Cl.NoiseSigma = 0.0;
    StencilReport R = runStencil(Cl, smallOptions());
    EXPECT_LT(R.MaxError, 1e-12) << "P=" << P;
    // P bands exchange 2 halo rows per interior border per iteration.
    EXPECT_EQ(R.HaloRowsSent, 2LL * (P - 1) * 15) << "P=" << P;
  }
}

TEST(Stencil, MatchesSerialWithBalancingAndMigration) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  StencilOptions O = smallOptions();
  O.Rows = 62; // 60 interior rows over 6 devices.
  O.Balance = true;
  StencilReport R = runStencil(Cl, O);
  // Correctness must survive row migration between devices.
  EXPECT_LT(R.MaxError, 1e-12);
  EXPECT_GT(R.Rebalances, 0);
}

TEST(Stencil, BalancingMovesRowsAwayFromSlowDevices) {
  Cluster Cl = makeUniformCluster(2, 100.0);
  Cl.Devices[1] = makeConstantProfile("slow", 25.0);
  Cl.NoiseSigma = 0.0;
  StencilOptions O = smallOptions();
  O.Rows = 102; // 100 interior rows.
  O.Balance = true;
  StencilReport R = runStencil(Cl, O);
  EXPECT_LT(R.MaxError, 1e-12);
  EXPECT_EQ(R.Iterations.front().Rows[0], 50);
  EXPECT_NEAR(static_cast<double>(R.Iterations.back().Rows[0]), 80.0,
              5.0);
}

TEST(Stencil, BalancingReducesMakespan) {
  Cluster Cl = makeUniformCluster(2, 100.0);
  Cl.Devices[1] = makeConstantProfile("slow", 20.0);
  Cl.NoiseSigma = 0.0;
  StencilOptions O = smallOptions();
  O.Rows = 102;
  O.Iterations = 20;
  StencilReport Even = runStencil(Cl, O);
  O.Balance = true;
  StencilReport Balanced = runStencil(Cl, O);
  EXPECT_LT(Balanced.Makespan, 0.8 * Even.Makespan);
  EXPECT_LT(Balanced.MaxError, 1e-12);
}

TEST(Stencil, HeatFlowsIntoTheGrid) {
  // Physical sanity: after some iterations the row below the hot edge
  // has warmed up from its speckle-scale initial values.
  Cluster Cl = makeUniformCluster(2, 100.0);
  Cl.NoiseSigma = 0.0;
  StencilOptions O = smallOptions();
  O.Iterations = 30;
  StencilReport R = runStencil(Cl, O);
  ASSERT_FALSE(R.Grid.empty());
  double RowMean = 0.0;
  for (int Col = 1; Col + 1 < O.Cols; ++Col)
    RowMean += R.Grid[static_cast<std::size_t>(O.Cols) + Col];
  RowMean /= (O.Cols - 2);
  EXPECT_GT(RowMean, 40.0);
}

TEST(Stencil, DeterministicAcrossRuns) {
  Cluster Cl = makeHclLikeCluster(false);
  StencilOptions O = smallOptions();
  O.Balance = true;
  StencilReport A = runStencil(Cl, O);
  StencilReport B = runStencil(Cl, O);
  EXPECT_DOUBLE_EQ(A.Makespan, B.Makespan);
  EXPECT_EQ(A.HaloRowsSent, B.HaloRowsSent);
}

namespace {

std::uint64_t fnv1a(std::uint64_t H, const void *Data, std::size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

std::uint64_t reportHash(const StencilReport &R) {
  std::uint64_t H = 1469598103934665603ull;
  H = fnv1a(H, R.Grid.data(), R.Grid.size() * sizeof(double));
  return fnv1a(H, &R.Makespan, sizeof(double));
}

} // namespace

// Bit-exact regression pins, captured from the pre-container stencil: the
// PartitionedVector halo/redistribute rewrite must reproduce the
// hand-rolled app's grid AND virtual-time trace (the hash folds the
// Makespan bits in). Any change to message sizes, counts, or ordering
// moves these values.
TEST(StencilRegression, StaticRunBitIdenticalToPreContainerApp) {
  Cluster Cl = makeUniformCluster(3, 100.0);
  Cl.NoiseSigma = 0.0;
  StencilReport R = runStencil(Cl, smallOptions());
  EXPECT_EQ(R.HaloRowsSent, 60);
  EXPECT_EQ(reportHash(R), 16873113557665697625ull);
}

TEST(StencilRegression, BalancedRunBitIdenticalToPreContainerApp) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  StencilOptions O = smallOptions();
  O.Rows = 62;
  O.Balance = true;
  StencilReport R = runStencil(Cl, O);
  EXPECT_EQ(R.HaloRowsSent, 150);
  EXPECT_EQ(R.Rebalances, 15);
  EXPECT_EQ(reportHash(R), 17230171320769027726ull);
}
