//===-- tests/ModelIOTest.cpp - model persistence tests -------------------===//

#include "core/ModelIO.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace fupermod;

namespace {

Point makePoint(double Units, double Time, int Reps = 3, double Ci = 0.01) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = Reps;
  P.ConfidenceInterval = Ci;
  return P;
}

} // namespace

TEST(ModelIO, RoundTripsEveryKind) {
  for (const char *Kind : {"cpm", "piecewise", "akima", "linear"}) {
    auto M = makeModel(Kind);
    M->update(makePoint(10.0, 1.5));
    M->update(makePoint(20.0, 3.25, 5, 0.02));
    M->update(makePoint(40.0, 7.125));

    std::stringstream SS;
    ASSERT_TRUE(writeModel(SS, *M)) << Kind;
    std::unique_ptr<Model> Back = readModel(SS);
    ASSERT_NE(Back, nullptr) << Kind;
    EXPECT_STREQ(Back->kind(), Kind);
    ASSERT_EQ(Back->points().size(), 3u);
    EXPECT_DOUBLE_EQ(Back->points()[1].Units, 20.0);
    EXPECT_DOUBLE_EQ(Back->points()[1].Time, 3.25);
    EXPECT_EQ(Back->points()[1].Reps, 5);
    // Identical predictions after the round trip.
    for (double X : {5.0, 15.0, 30.0, 60.0})
      EXPECT_DOUBLE_EQ(Back->timeAt(X), M->timeAt(X)) << Kind << " " << X;
  }
}

TEST(ModelIO, PreservesFeasibilityLimit) {
  auto M = makeModel("piecewise");
  M->update(makePoint(100.0, 2.0));
  Point Fail;
  Fail.Units = 500.0;
  Fail.Reps = 0;
  Fail.Time = std::numeric_limits<double>::infinity();
  M->update(Fail);
  ASSERT_DOUBLE_EQ(M->feasibleLimit(), 500.0);

  std::stringstream SS;
  ASSERT_TRUE(writeModel(SS, *M));
  std::unique_ptr<Model> Back = readModel(SS);
  ASSERT_NE(Back, nullptr);
  EXPECT_DOUBLE_EQ(Back->feasibleLimit(), 500.0);
}

TEST(ModelIO, RejectsMalformedInput) {
  {
    std::stringstream SS("garbage\n");
    EXPECT_EQ(readModel(SS), nullptr);
  }
  {
    std::stringstream SS("kind nosuch\npoints 0\n");
    EXPECT_EQ(readModel(SS), nullptr);
  }
  {
    // Fewer points than declared.
    std::stringstream SS("kind cpm\npoints 2\n10 1 3 0\n");
    EXPECT_EQ(readModel(SS), nullptr);
  }
  {
    // Non-positive time.
    std::stringstream SS("kind cpm\npoints 1\n10 0 3 0\n");
    EXPECT_EQ(readModel(SS), nullptr);
  }
}

TEST(ModelIO, IgnoresCommentsAndBlankLines) {
  std::stringstream SS(
      "# header\n\nkind cpm\n# noise\npoints 1\n10 2 3 0.1\n");
  std::unique_ptr<Model> M = readModel(SS);
  ASSERT_NE(M, nullptr);
  EXPECT_DOUBLE_EQ(M->speedAt(1.0), 5.0);
}

TEST(ModelIO, FileRoundTrip) {
  auto M = makeModel("akima");
  M->update(makePoint(8.0, 0.5));
  M->update(makePoint(16.0, 1.25));
  std::string Path = ::testing::TempDir() + "/fupermod_model_io_test.model";
  ASSERT_TRUE(saveModel(Path, *M));
  std::unique_ptr<Model> Back = loadModel(Path);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(Back->points().size(), 2u);
  EXPECT_EQ(loadModel(Path + ".missing"), nullptr);
}

TEST(DistIO, RoundTrip) {
  Dist D = Dist::even(100, 3);
  D.Parts[0].PredictedTime = 1.5;
  D.Parts[2].PredictedTime = 2.25;
  std::stringstream SS;
  ASSERT_TRUE(writeDist(SS, D));
  Dist Back;
  ASSERT_TRUE(readDist(SS, Back));
  EXPECT_EQ(Back.Total, 100);
  ASSERT_EQ(Back.Parts.size(), 3u);
  EXPECT_EQ(Back.Parts[0].Units, 34);
  EXPECT_DOUBLE_EQ(Back.Parts[2].PredictedTime, 2.25);
}

TEST(DistIO, RejectsRankMismatch) {
  std::stringstream SS("total 10\nparts 2\n0 5 0\n5 5 0\n");
  Dist Back;
  EXPECT_FALSE(readDist(SS, Back));
}
