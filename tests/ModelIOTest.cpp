//===-- tests/ModelIOTest.cpp - model persistence tests -------------------===//

#include "core/ModelIO.h"
#include "core/Partitioners.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

using namespace fupermod;

namespace {

Point makePoint(double Units, double Time, int Reps = 3, double Ci = 0.01) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = Reps;
  P.ConfidenceInterval = Ci;
  return P;
}

} // namespace

TEST(ModelIO, RoundTripsEveryKind) {
  for (const char *Kind : {"cpm", "piecewise", "akima", "linear"}) {
    auto M = makeModel(Kind);
    M->update(makePoint(10.0, 1.5));
    M->update(makePoint(20.0, 3.25, 5, 0.02));
    M->update(makePoint(40.0, 7.125));

    std::stringstream SS;
    ASSERT_TRUE(writeModel(SS, *M)) << Kind;
    std::unique_ptr<Model> Back = readModel(SS);
    ASSERT_NE(Back, nullptr) << Kind;
    EXPECT_STREQ(Back->kind(), Kind);
    ASSERT_EQ(Back->points().size(), 3u);
    EXPECT_DOUBLE_EQ(Back->points()[1].Units, 20.0);
    EXPECT_DOUBLE_EQ(Back->points()[1].Time, 3.25);
    EXPECT_EQ(Back->points()[1].Reps, 5);
    // Identical predictions after the round trip.
    for (double X : {5.0, 15.0, 30.0, 60.0})
      EXPECT_DOUBLE_EQ(Back->timeAt(X), M->timeAt(X)) << Kind << " " << X;
  }
}

TEST(ModelIO, PreservesFeasibilityLimit) {
  auto M = makeModel("piecewise");
  M->update(makePoint(100.0, 2.0));
  Point Fail;
  Fail.Units = 500.0;
  Fail.Reps = 0;
  Fail.Time = std::numeric_limits<double>::infinity();
  M->update(Fail);
  ASSERT_DOUBLE_EQ(M->feasibleLimit(), 500.0);

  std::stringstream SS;
  ASSERT_TRUE(writeModel(SS, *M));
  std::unique_ptr<Model> Back = readModel(SS);
  ASSERT_NE(Back, nullptr);
  EXPECT_DOUBLE_EQ(Back->feasibleLimit(), 500.0);
}

TEST(ModelIO, RoundTripsPointWeights) {
  auto M = makeModel("piecewise");
  M->update(makePoint(10.0, 1.0, 4));
  M->update(makePoint(20.0, 2.0, 6));
  M->update(makePoint(40.0, 4.5, 2));
  M->decayWeights(0.75);
  M->update(makePoint(80.0, 9.0, 5)); // Fresh point at full weight.
  ASSERT_EQ(M->weights().size(), 4u);

  std::stringstream SS;
  ASSERT_TRUE(writeModel(SS, *M));
  std::unique_ptr<Model> Back = readModel(SS);
  ASSERT_NE(Back, nullptr);
  ASSERT_EQ(Back->weights().size(), M->weights().size());
  for (std::size_t I = 0; I < M->weights().size(); ++I)
    EXPECT_DOUBLE_EQ(Back->weights()[I], M->weights()[I]) << I;
  for (double X : {5.0, 15.0, 30.0, 60.0, 100.0})
    EXPECT_DOUBLE_EQ(Back->timeAt(X), M->timeAt(X)) << X;
}

TEST(ModelIO, UndecayedModelsKeepTheFourColumnFormat) {
  // Weight == Reps is the default state; the writer must not add a fifth
  // column, so files from older builds stay byte-compatible.
  auto M = makeModel("cpm");
  M->update(makePoint(10.0, 1.0, 4));
  std::stringstream SS;
  ASSERT_TRUE(writeModel(SS, *M));
  std::string Line;
  bool SawPoint = false;
  while (std::getline(SS, Line)) {
    if (Line.empty() || Line[0] == '#' || Line.rfind("kind", 0) == 0 ||
        Line.rfind("points", 0) == 0)
      continue;
    SawPoint = true;
    std::istringstream LS(Line);
    std::string Tok;
    int Columns = 0;
    while (LS >> Tok)
      ++Columns;
    EXPECT_EQ(Columns, 4) << Line;
  }
  EXPECT_TRUE(SawPoint);
}

TEST(ModelIO, StalenessDecayContinuesIdenticallyAfterRoundTrip) {
  // A reloaded model must carry the decay state: applying the same
  // further decay to the original and the copy drops the same points.
  auto M = makeModel("piecewise");
  M->update(makePoint(10.0, 1.0, 2));
  M->update(makePoint(20.0, 2.0, 8));
  M->decayWeights(0.6); // 1.2 and 4.8: both above the 0.5 keep floor.

  std::stringstream SS;
  ASSERT_TRUE(writeModel(SS, *M));
  std::unique_ptr<Model> Back = readModel(SS);
  ASSERT_NE(Back, nullptr);

  M->decayWeights(0.3); // 0.36 and 1.44: the first point is dropped.
  Back->decayWeights(0.3);
  ASSERT_EQ(M->points().size(), 1u);
  ASSERT_EQ(Back->points().size(), M->points().size());
  EXPECT_DOUBLE_EQ(Back->points()[0].Units, M->points()[0].Units);
  ASSERT_EQ(Back->weights().size(), M->weights().size());
  EXPECT_DOUBLE_EQ(Back->weights()[0], M->weights()[0]);
}

TEST(ModelIO, RepartitionAfterRoundTripMatchesInMemory) {
  // The acceptance check of the persistence layer: write -> read ->
  // re-partition must reproduce the in-memory distribution exactly.
  auto Fast = makeModel("piecewise");
  auto Slow = makeModel("piecewise");
  for (int I = 1; I <= 6; ++I) {
    Fast->update(makePoint(100.0 * I, 0.08 * I, 3, 0.004 * I));
    Slow->update(makePoint(100.0 * I, 0.31 * I, 3, 0.009 * I));
  }
  Slow->decayWeights(0.9); // Exercise the weight column too.
  Point Fail;
  Fail.Units = 900.0;
  Fail.Reps = 0;
  Fail.Time = std::numeric_limits<double>::infinity();
  Slow->update(Fail);

  std::stringstream F, S;
  ASSERT_TRUE(writeModel(F, *Fast));
  ASSERT_TRUE(writeModel(S, *Slow));
  std::unique_ptr<Model> FastBack = readModel(F);
  std::unique_ptr<Model> SlowBack = readModel(S);
  ASSERT_NE(FastBack, nullptr);
  ASSERT_NE(SlowBack, nullptr);
  EXPECT_DOUBLE_EQ(SlowBack->feasibleLimit(), Slow->feasibleLimit());

  for (const char *Algorithm : {"constant", "geometric", "numerical"}) {
    Partitioner Algo = findPartitioner(Algorithm);
    ASSERT_NE(Algo, nullptr);
    std::vector<Model *> Mem = {Fast.get(), Slow.get()};
    std::vector<Model *> Disk = {FastBack.get(), SlowBack.get()};
    Dist InMemory, FromDisk;
    ASSERT_TRUE(Algo(1000, Mem, InMemory)) << Algorithm;
    ASSERT_TRUE(Algo(1000, Disk, FromDisk)) << Algorithm;
    ASSERT_EQ(InMemory.Parts.size(), FromDisk.Parts.size());
    for (std::size_t I = 0; I < InMemory.Parts.size(); ++I) {
      EXPECT_EQ(FromDisk.Parts[I].Units, InMemory.Parts[I].Units)
          << Algorithm << " rank " << I;
      EXPECT_DOUBLE_EQ(FromDisk.Parts[I].PredictedTime,
                       InMemory.Parts[I].PredictedTime)
          << Algorithm << " rank " << I;
    }
  }
}

TEST(ModelIO, ReportsParseErrorsWithLineNumbers) {
  {
    std::stringstream SS("kind cpm\npoints 1\n10 1 3 0 0.5 extra\n");
    std::string Err;
    EXPECT_EQ(readModel(SS, &Err), nullptr);
    EXPECT_NE(Err.find("line 3"), std::string::npos) << Err;
  }
  {
    std::stringstream SS("kind nosuch\npoints 0\n");
    std::string Err;
    EXPECT_EQ(readModel(SS, &Err), nullptr);
    EXPECT_NE(Err.find("unknown model kind 'nosuch'"), std::string::npos)
        << Err;
    EXPECT_NE(Err.find("registered"), std::string::npos) << Err;
  }
  {
    // Weights must be positive.
    std::stringstream SS("kind cpm\npoints 1\n10 1 3 0 -2\n");
    std::string Err;
    EXPECT_EQ(readModel(SS, &Err), nullptr);
    EXPECT_NE(Err.find("weight"), std::string::npos) << Err;
  }
}

TEST(ModelIO, RejectsMalformedInput) {
  {
    std::stringstream SS("garbage\n");
    EXPECT_EQ(readModel(SS), nullptr);
  }
  {
    std::stringstream SS("kind nosuch\npoints 0\n");
    EXPECT_EQ(readModel(SS), nullptr);
  }
  {
    // Fewer points than declared.
    std::stringstream SS("kind cpm\npoints 2\n10 1 3 0\n");
    EXPECT_EQ(readModel(SS), nullptr);
  }
  {
    // Non-positive time.
    std::stringstream SS("kind cpm\npoints 1\n10 0 3 0\n");
    EXPECT_EQ(readModel(SS), nullptr);
  }
}

TEST(ModelIO, IgnoresCommentsAndBlankLines) {
  std::stringstream SS(
      "# header\n\nkind cpm\n# noise\npoints 1\n10 2 3 0.1\n");
  std::unique_ptr<Model> M = readModel(SS);
  ASSERT_NE(M, nullptr);
  EXPECT_DOUBLE_EQ(M->speedAt(1.0), 5.0);
}

TEST(ModelIO, FileRoundTrip) {
  auto M = makeModel("akima");
  M->update(makePoint(8.0, 0.5));
  M->update(makePoint(16.0, 1.25));
  std::string Path = ::testing::TempDir() + "/fupermod_model_io_test.model";
  ASSERT_TRUE(saveModel(Path, *M));
  std::unique_ptr<Model> Back = loadModel(Path);
  ASSERT_NE(Back, nullptr);
  EXPECT_EQ(Back->points().size(), 2u);
  EXPECT_EQ(loadModel(Path + ".missing"), nullptr);
}

TEST(DistIO, RoundTrip) {
  Dist D = Dist::even(100, 3);
  D.Parts[0].PredictedTime = 1.5;
  D.Parts[2].PredictedTime = 2.25;
  std::stringstream SS;
  ASSERT_TRUE(writeDist(SS, D));
  Dist Back;
  ASSERT_TRUE(readDist(SS, Back));
  EXPECT_EQ(Back.Total, 100);
  ASSERT_EQ(Back.Parts.size(), 3u);
  EXPECT_EQ(Back.Parts[0].Units, 34);
  EXPECT_DOUBLE_EQ(Back.Parts[2].PredictedTime, 2.25);
}

TEST(DistIO, RejectsRankMismatch) {
  std::stringstream SS("total 10\nparts 2\n0 5 0\n5 5 0\n");
  Dist Back;
  EXPECT_FALSE(readDist(SS, Back));
}
