//===-- tests/RegistryTest.cpp - name->factory registry tests -------------===//

#include "core/Kernel.h"
#include "core/Model.h"
#include "core/Partitioners.h"
#include "support/Registry.h"

#include <gtest/gtest.h>

using namespace fupermod;

TEST(Registry, AddContainsAndSortedNames) {
  Registry<int> R("widget");
  EXPECT_TRUE(R.add("b", [] { return 2; }));
  EXPECT_TRUE(R.add("a", [] { return 1; }));
  EXPECT_TRUE(R.contains("a"));
  EXPECT_FALSE(R.contains("c"));
  ASSERT_EQ(R.names().size(), 2u);
  EXPECT_EQ(R.names()[0], "a"); // Sorted, so diagnostics are stable.
  EXPECT_EQ(R.names()[1], "b");
}

TEST(Registry, RejectsDuplicatesAndEmptyNames) {
  Registry<int> R("widget");
  EXPECT_TRUE(R.add("a", [] { return 1; }));
  EXPECT_FALSE(R.add("a", [] { return 9; })); // First registration wins.
  EXPECT_FALSE(R.add("", [] { return 0; }));
  std::string Err;
  EXPECT_EQ(R.create("a", &Err), 1);
  EXPECT_TRUE(Err.empty());
}

TEST(Registry, UnknownNameListsAlternatives) {
  Registry<int> R("widget");
  R.add("alpha", [] { return 1; });
  R.add("beta", [] { return 2; });
  std::string Err;
  EXPECT_EQ(R.create("gamma", &Err), 0); // Default-constructed product.
  EXPECT_EQ(Err, "unknown widget 'gamma' (registered: alpha, beta)");
}

TEST(Registry, ForwardsFactoryArguments) {
  Registry<int, int, int> R("adder");
  R.add("sum", [](int A, int B) { return A + B; });
  std::string Err;
  EXPECT_EQ(R.create("sum", 3, 4, &Err), 7);
  EXPECT_TRUE(Err.empty());
}

TEST(ModelRegistry, HasAllBuiltInKinds) {
  for (const char *Kind : {"cpm", "piecewise", "akima", "linear"}) {
    EXPECT_TRUE(modelRegistry().contains(Kind)) << Kind;
    std::unique_ptr<Model> M = makeModel(Kind);
    ASSERT_NE(M, nullptr) << Kind;
    EXPECT_STREQ(M->kind(), Kind);
  }
}

TEST(ModelRegistry, UnknownKindIsDiagnosable) {
  std::string Err;
  EXPECT_EQ(makeModel("spline", &Err), nullptr);
  EXPECT_EQ(Err,
            "unknown model kind 'spline' (registered: akima, cpm, linear, "
            "piecewise)");
}

TEST(PartitionerRegistry, HasAllBuiltInAlgorithms) {
  for (const char *Name : {"constant", "geometric", "numerical"}) {
    EXPECT_TRUE(partitionerRegistry().contains(Name)) << Name;
    EXPECT_NE(findPartitioner(Name), nullptr) << Name;
  }
}

TEST(PartitionerRegistry, UnknownAlgorithmIsDiagnosable) {
  std::string Err;
  EXPECT_EQ(findPartitioner("fastest", &Err), nullptr);
  EXPECT_EQ(Err, "unknown partitioner 'fastest' (registered: constant, "
                 "geometric, numerical)");
}

TEST(KernelRegistry, BuildsTheGemmKernel) {
  ASSERT_TRUE(kernelRegistry().contains("gemm"));
  KernelConfig Config;
  Config.BlockSize = 8;
  std::unique_ptr<Kernel> K = makeKernel("gemm", Config);
  ASSERT_NE(K, nullptr);
  std::string Err;
  EXPECT_EQ(makeKernel("fft", Config, &Err), nullptr);
  EXPECT_EQ(Err, "unknown kernel 'fft' (registered: gemm)");
}
