//===-- tests/BenchmarkTest.cpp - measurement machinery tests -------------===//

#include "core/Benchmark.h"

#include "core/GemmKernel.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fupermod;

namespace {

/// Deterministic fake kernel for testing the measurement loop.
class FakeBackend : public BenchmarkBackend {
public:
  explicit FakeBackend(std::vector<double> Times, bool CanPrepare = true)
      : Times(std::move(Times)), CanPrepare(CanPrepare) {}

  bool prepare(double Units) override {
    LastUnits = Units;
    ++Prepared;
    return CanPrepare;
  }
  double runOnce() override {
    double T = Times[static_cast<std::size_t>(Runs) % Times.size()];
    ++Runs;
    return T;
  }
  void teardown() override { ++Teardowns; }

  std::vector<double> Times;
  bool CanPrepare;
  double LastUnits = 0.0;
  int Prepared = 0;
  int Runs = 0;
  int Teardowns = 0;
};

} // namespace

TEST(RunBenchmark, StopsEarlyWhenTight) {
  FakeBackend B({1.0}); // Identical samples: CI hits zero immediately.
  Precision Prec;
  Prec.MinReps = 3;
  Prec.MaxReps = 100;
  Point P = runBenchmark(B, 10.0, Prec);
  EXPECT_EQ(P.Reps, 3);
  EXPECT_DOUBLE_EQ(P.Time, 1.0);
  EXPECT_DOUBLE_EQ(P.ConfidenceInterval, 0.0);
  EXPECT_EQ(B.Teardowns, 1);
  EXPECT_DOUBLE_EQ(P.Units, 10.0);
}

TEST(RunBenchmark, RunsToMaxRepsOnNoisyData) {
  FakeBackend B({1.0, 2.0, 0.5, 1.5}); // Wild scatter: never tight.
  Precision Prec;
  Prec.MinReps = 2;
  Prec.MaxReps = 12;
  Prec.TargetRelativeError = 1e-6;
  Point P = runBenchmark(B, 5.0, Prec);
  EXPECT_EQ(P.Reps, 12);
  EXPECT_GT(P.ConfidenceInterval, 0.0);
}

TEST(RunBenchmark, TimeLimitCapsRepetitions) {
  FakeBackend B({10.0, 20.0, 5.0});
  Precision Prec;
  Prec.MinReps = 2;
  Prec.MaxReps = 100;
  Prec.TargetRelativeError = 1e-9;
  Prec.TimeLimit = 25.0; // Two samples (10 + 20) cross the limit.
  Point P = runBenchmark(B, 5.0, Prec);
  EXPECT_EQ(P.Reps, 2);
}

TEST(RunBenchmark, FailedPrepareReportsRepsZero) {
  FakeBackend B({1.0}, /*CanPrepare=*/false);
  Point P = runBenchmark(B, 5.0, Precision());
  EXPECT_EQ(P.Reps, 0);
  EXPECT_TRUE(std::isinf(P.Time));
  EXPECT_EQ(B.Runs, 0);
}

TEST(RunBenchmark, SingleRepHasNoInterval) {
  FakeBackend B({2.0});
  Precision Prec;
  Prec.MinReps = 1;
  Prec.MaxReps = 1;
  Point P = runBenchmark(B, 5.0, Prec);
  EXPECT_EQ(P.Reps, 1);
  EXPECT_DOUBLE_EQ(P.Time, 2.0);
  EXPECT_DOUBLE_EQ(P.ConfidenceInterval, 0.0);
}

TEST(SimBackend, MeanApproachesTrueTime) {
  SimDevice Dev(makeConstantProfile("c", 100.0), 0.03, 5);
  SimDeviceBackend B(Dev);
  Precision Prec;
  Prec.MinReps = 20;
  Prec.MaxReps = 50;
  Prec.TargetRelativeError = 0.01;
  Point P = runBenchmark(B, 1000.0, Prec);
  EXPECT_NEAR(P.Time, 10.0, 0.3);
  EXPECT_GE(P.Reps, 20);
}

TEST(SimBackend, RefusesOversizedProblems) {
  SimDevice Dev(makeGpuProfile("gpu", 100.0, 0.0, 500.0, /*OutOfCore=*/0.0));
  SimDeviceBackend B(Dev);
  Point P = runBenchmark(B, 1000.0, Precision());
  EXPECT_EQ(P.Reps, 0);
}

TEST(SimBackend, AdvancesVirtualClockWhenAttached) {
  SimDevice Dev(makeConstantProfile("c", 10.0), 0.0, 1);
  runSpmd(1, [&](Comm &C) {
    SimDeviceBackend B(Dev, &C);
    Precision Prec;
    Prec.MinReps = 3;
    Prec.MaxReps = 3;
    runBenchmark(B, 100.0, Prec, &C);
    // Three repetitions of 10 s each were charged to the clock.
    EXPECT_DOUBLE_EQ(C.time(), 30.0);
  });
}

TEST(SimBackend, SynchronisedMeasurementAlignsRanks) {
  Cluster Cl;
  // Built inline to control speeds precisely: rank 0 is 4x faster.
  Cl.Devices = {makeConstantProfile("fast", 40.0),
                makeConstantProfile("slow", 10.0)};
  Cl.NodeOfRank = {0, 0};
  Cl.NoiseSigma = 0.0;
  runSpmd(2,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend B(Dev, &C);
            Precision Prec;
            Prec.MinReps = 2;
            Prec.MaxReps = 2;
            runBenchmark(B, 100.0, Prec, &C);
            // Each rep starts at the barrier (slowest rank's time): after
            // two reps both ranks sit at 2 * 10 s, plus microseconds of
            // collective-stop communication.
            C.barrier();
            EXPECT_NEAR(C.time(), 20.0, 1e-3);
          },
          Cl.makeCostModel());
}

TEST(NativeBackend, MeasuresRealGemmKernel) {
  GemmKernel K(/*BlockSize=*/8, /*UseBlockedGemm=*/true);
  NativeKernelBackend B(K);
  Precision Prec;
  Prec.MinReps = 2;
  Prec.MaxReps = 4;
  Prec.TargetRelativeError = 0.5; // Loose: this is a smoke test.
  Point P = runBenchmark(B, 64.0, Prec);
  EXPECT_GE(P.Reps, 2);
  EXPECT_GT(P.Time, 0.0);
  EXPECT_GT(P.speed(), 0.0);
}

TEST(NativeBackend, LargerProblemsTakeLonger) {
  GemmKernel K(8, true);
  NativeKernelBackend B(K);
  Precision Prec;
  Prec.MinReps = 3;
  Prec.MaxReps = 6;
  Prec.TargetRelativeError = 0.2;
  Point Small = runBenchmark(B, 16.0, Prec);
  Point Large = runBenchmark(B, 1024.0, Prec);
  EXPECT_GT(Large.Time, Small.Time);
}

TEST(GemmKernelShape, NearlySquareGrid) {
  GemmKernel K(4);
  ASSERT_TRUE(K.initialize(12));
  EXPECT_EQ(K.rows(), 3u);
  EXPECT_EQ(K.cols(), 4u);
  K.finalize();
  ASSERT_TRUE(K.initialize(16));
  EXPECT_EQ(K.rows(), 4u);
  EXPECT_EQ(K.cols(), 4u);
  K.finalize();
}

TEST(GemmKernelShape, ComplexityCountsBlockUpdates) {
  GemmKernel K(10);
  // 2 * d * b^3 flops.
  EXPECT_DOUBLE_EQ(K.complexity(5.0), 2.0 * 5.0 * 1000.0);
}

TEST(RunBenchmark, OutlierRejectionRemovesSpikes) {
  // One in six repetitions is a 20x scheduler spike.
  FakeBackend B({1.0, 1.01, 0.99, 1.02, 0.98, 20.0});
  Precision Prec;
  Prec.MinReps = 12;
  Prec.MaxReps = 12;
  Prec.TargetRelativeError = 1e-9;

  Point Plain = runBenchmark(B, 5.0, Prec);
  FakeBackend B2({1.0, 1.01, 0.99, 1.02, 0.98, 20.0});
  Prec.RejectOutliers = true;
  Point Robust = runBenchmark(B2, 5.0, Prec);

  // The plain mean is dragged up by the spikes; the robust mean is not.
  EXPECT_GT(Plain.Time, 4.0);
  EXPECT_NEAR(Robust.Time, 1.0, 0.05);
  EXPECT_EQ(Robust.Reps, 10); // Two spikes rejected.
}

TEST(RunBenchmark, OutlierRejectionDropsInjectedSpikes) {
  // The spikes come from the device itself this time: a scripted fault
  // plan inflates every sixth measurement 25x. MAD rejection must drop
  // exactly those repetitions.
  auto MakeSpikyDevice = [] {
    SimDevice Dev(makeConstantProfile("c", 10.0), /*NoiseSigma=*/0.01,
                  /*Seed=*/7);
    FaultPlan Plan;
    Plan.Events = {FaultPlan::spike(/*AfterCalls=*/0, 25.0, /*Period=*/6)};
    Dev.setFaultPlan(std::move(Plan));
    return Dev;
  };
  Precision Prec;
  Prec.MinReps = 12;
  Prec.MaxReps = 12;
  Prec.TargetRelativeError = 1e-9;

  SimDevice Plain = MakeSpikyDevice();
  SimDeviceBackend PB(Plain);
  Point Naive = runBenchmark(PB, 10.0, Prec);

  SimDevice Robustly = MakeSpikyDevice();
  SimDeviceBackend RB(Robustly);
  Prec.RejectOutliers = true;
  Point Robust = runBenchmark(RB, 10.0, Prec);

  // Two spiked calls (indices 0 and 6) drag the naive mean far up; the
  // robust mean stays at the true 1 s.
  EXPECT_GT(Naive.Time, 3.0);
  EXPECT_NEAR(Robust.Time, 1.0, 0.05);
  EXPECT_EQ(Robust.Reps, 10);
}

TEST(RunBenchmark, TimeLimitCapsNoisySimMeasurement) {
  // Regression for the accumulated-time cap on the simulated backend:
  // with an unreachable precision target the loop must stop on TimeLimit,
  // not run to MaxReps.
  SimDevice Dev(makeConstantProfile("c", 10.0), /*NoiseSigma=*/0.05,
                /*Seed=*/3);
  SimDeviceBackend B(Dev);
  Precision Prec;
  Prec.MinReps = 2;
  Prec.MaxReps = 100;
  Prec.TargetRelativeError = 1e-9;
  Prec.TimeLimit = 2.5;
  Point P = runBenchmark(B, 10.0, Prec);
  // Repetitions are ~1 s each (noise clamped to +-20%), so the cap is
  // crossed on the third or fourth repetition.
  EXPECT_GE(P.Reps, 3);
  EXPECT_LE(P.Reps, 4);
  EXPECT_NEAR(P.Time, 1.0, 0.2);
}

TEST(RunBenchmark, OutlierRejectionHarmlessOnCleanData) {
  FakeBackend B({1.0, 1.01, 0.99});
  Precision Prec;
  Prec.MinReps = 6;
  Prec.MaxReps = 6;
  Prec.RejectOutliers = true;
  Point P = runBenchmark(B, 5.0, Prec);
  EXPECT_EQ(P.Reps, 6);
  EXPECT_NEAR(P.Time, 1.0, 0.02);
}
