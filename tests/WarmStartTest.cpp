//===-- tests/WarmStartTest.cpp - warm-started partitioning laws ----------===//
//
// Property-based net over the warm-started partitioners: ~200 seeded
// random heterogeneous clusters, each taken through every hint state the
// warm variants distinguish. The law under test is single: a warm call
// returns exactly what the cold algorithm returns right now, whatever the
// hint says —
//
//  1. empty hint (first call): the cold code path itself;
//  2. valid hint, unchanged models: the memoized solution is replayed
//     without touching the models at all (fit epochs prove exactness);
//  3. stale hint after incremental feedback: the solvers reuse the hint
//     only as a seed (bisection bracket, Newton initial guess), so the
//     answer tracks the *new* fit;
//  4. stale hint after a device was excluded: the size mismatch forces a
//     full revalidation and re-solve.
//
// Plus the cache half of the warm path: Model::refitRange's ranged
// invalidation never lets sizeForTimeCached serve an answer a model
// fitted from the same points would not compute.
//
//===----------------------------------------------------------------------===//

#include "core/Benchmark.h"
#include "core/Model.h"
#include "core/Partitioners.h"
#include "sim/Cluster.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace fupermod;

namespace {

struct BuiltCluster {
  Cluster Cl;
  std::vector<BuiltModel> Built;
  std::vector<Model *> Models;
};

/// Benchmarks and fits one model per device of a (P, Variant)-named
/// random platform (the PartitionPropertyTest generator, noise-free).
BuiltCluster buildCluster(int P, std::uint64_t Variant) {
  BuiltCluster B;
  B.Cl = makeHeterogeneousCluster(P, Variant);
  B.Cl.NoiseSigma = 0.0;

  ModelBuildPlan Plan;
  Plan.Kind = "piecewise";
  Plan.MinSize = 64.0;
  Plan.MaxSize = 7000.0;
  Plan.NumPoints = 10;
  Plan.Prec.MinReps = 1;
  Plan.Prec.MaxReps = 2;
  B.Built = buildModelsParallel(B.Cl, Plan);
  for (BuiltModel &M : B.Built)
    B.Models.push_back(M.M.get());
  return B;
}

Point makePoint(double Units, double Time, int Reps = 3) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = Reps;
  P.ConfidenceInterval = 0.0;
  return P;
}

std::uint64_t totalLookups(std::span<Model *const> Models) {
  std::uint64_t Sum = 0;
  for (Model *M : Models)
    Sum += M->cacheLookups();
  return Sum;
}

} // namespace

TEST(WarmStart, EveryHintStateMatchesColdOverRandomClusters) {
  for (std::uint64_t Case = 0; Case < 200; ++Case) {
    SplitMix64 Rng(0x51ed2701 + Case);
    int P = 2 + static_cast<int>(Case % 7);
    BuiltCluster B = buildCluster(P, /*Variant=*/4000 + Case);
    std::int64_t Total =
        1500 + static_cast<std::int64_t>(Rng.uniform(0.0, 45000.0));

    for (const char *Name : {"geometric", "numerical"}) {
      Partitioner Cold = findPartitioner(Name);
      WarmPartitioner Warm = findWarmPartitioner(Name);
      ASSERT_TRUE(Cold && Warm);
      PartitionHint Hint;

      // 1. First call, empty hint: the cold path, byte for byte.
      Dist C0, W0;
      ASSERT_TRUE(Cold(Total, B.Models, C0));
      ASSERT_TRUE(Warm(Total, B.Models, W0, Hint));
      EXPECT_TRUE(W0.sameUnits(C0))
          << Name << " first warm call diverged, cluster " << Case;

      // 2. Unchanged models: memo replay — identical result, and the
      // models are provably untouched (no inverse-cache traffic).
      std::uint64_t Lookups = totalLookups(B.Models);
      Dist W1;
      ASSERT_TRUE(Warm(Total, B.Models, W1, Hint));
      EXPECT_TRUE(W1.sameUnits(C0))
          << Name << " memo replay diverged, cluster " << Case;
      EXPECT_EQ(totalLookups(B.Models), Lookups)
          << Name << " memo replay touched the models, cluster " << Case;

      // 3. Incremental feedback on one device: the hint is stale (its
      // epoch no longer matches) and may only seed the solver.
      std::size_t Victim = static_cast<std::size_t>(Case) % B.Models.size();
      double X = 200.0 + Rng.uniform(0.0, 5000.0);
      B.Models[Victim]->update(
          makePoint(X, B.Cl.Devices[Victim].time(X) * 1.07));
      Dist C1, W2;
      ASSERT_TRUE(Cold(Total, B.Models, C1));
      ASSERT_TRUE(Warm(Total, B.Models, W2, Hint));
      EXPECT_TRUE(W2.sameUnits(C1))
          << Name << " post-feedback warm diverged, cluster " << Case;

      // 4. Device exclusion: fewer models than the hint was recorded
      // for — revalidation must fail on the size mismatch alone.
      std::vector<Model *> Sub(B.Models.begin(), B.Models.end() - 1);
      Dist C2, W3;
      ASSERT_TRUE(Cold(Total, Sub, C2));
      ASSERT_TRUE(Warm(Total, Sub, W3, Hint));
      EXPECT_TRUE(W3.sameUnits(C2))
          << Name << " post-exclusion warm diverged, cluster " << Case;
    }
  }
}

TEST(WarmStart, GenericMemoWrapperCoversUnseededAlgorithms) {
  // "constant" has no bespoke seeded path; findWarmPartitioner wraps the
  // cold algorithm with the epoch-validated memo, which must give the
  // same equality guarantees.
  for (std::uint64_t Case = 0; Case < 40; ++Case) {
    int P = 2 + static_cast<int>(Case % 5);
    BuiltCluster B = buildCluster(P, /*Variant=*/6000 + Case);
    std::int64_t Total = 3000 + static_cast<std::int64_t>(Case) * 137;

    Partitioner Cold = findPartitioner("constant");
    WarmPartitioner Warm = findWarmPartitioner("constant");
    ASSERT_TRUE(Cold && Warm);
    PartitionHint Hint;

    Dist C0, W0, W1;
    ASSERT_TRUE(Cold(Total, B.Models, C0));
    ASSERT_TRUE(Warm(Total, B.Models, W0, Hint));
    EXPECT_TRUE(W0.sameUnits(C0)) << "cluster " << Case;
    ASSERT_TRUE(Warm(Total, B.Models, W1, Hint)); // memo replay
    EXPECT_TRUE(W1.sameUnits(C0)) << "cluster " << Case;

    // Feedback invalidates the memo through the epoch, like the seeded
    // variants.
    double X = 500.0 + static_cast<double>(Case) * 11.0;
    B.Models[0]->update(makePoint(X, B.Cl.Devices[0].time(X) * 1.25));
    Dist C1, W2;
    ASSERT_TRUE(Cold(Total, B.Models, C1));
    ASSERT_TRUE(Warm(Total, B.Models, W2, Hint));
    EXPECT_TRUE(W2.sameUnits(C1)) << "cluster " << Case;
  }
}

TEST(WarmStart, UnknownAlgorithmStillDiagnosed) {
  std::string Err;
  WarmPartitioner W = findWarmPartitioner("no-such-algorithm", &Err);
  EXPECT_FALSE(static_cast<bool>(W));
  EXPECT_FALSE(Err.empty());
}

TEST(WarmStart, RangedInvalidationNeverServesStaleInverses) {
  // Live interleaves feedback updates with memoized inverse lookups, so
  // its cache lives across updates and survives only through
  // PiecewiseModel's ranged invalidation. Mirror receives the same
  // updates but never caches; any stale surviving entry in Live shows up
  // as a mismatch against Mirror's direct computation.
  for (std::uint64_t Case = 0; Case < 50; ++Case) {
    SplitMix64 Rng(0x7b1f0000 + Case);
    PiecewiseModel Live, Mirror;
    std::vector<double> Taus;
    for (int I = 0; I < 12; ++I)
      Taus.push_back(Rng.uniform(1e-3, 8.0));

    for (int Step = 0; Step < 40; ++Step) {
      double Units;
      if (Step % 4 == 3 && !Live.points().empty())
        // Repeat measurement at a known size: the merge path, whose
        // ranged invalidation is keyed to the existing point.
        Units = Live.points()[static_cast<std::size_t>(Step) %
                              Live.points().size()]
                    .Units;
      else
        Units = 50.0 + Rng.uniform(0.0, 5000.0);
      double Time = Units * 1e-3 * (1.0 + Rng.uniform(0.0, 0.5));
      Live.update(makePoint(Units, Time));
      Mirror.update(makePoint(Units, Time));
      for (double T : Taus)
        ASSERT_DOUBLE_EQ(Live.sizeForTimeCached(T), Mirror.sizeForTime(T))
            << "case " << Case << " step " << Step << " tau " << T;
    }
    // The point of ranged invalidation: entries actually survive updates.
    EXPECT_GT(Live.cacheHits(), 0u) << "case " << Case;
  }
}
