# CTest script driving the builder/partitioner workflow end to end.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE Rc
                  OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "command failed (${Rc}): ${ARGV}\n${Out}\n${Err}")
  endif()
  set(LAST_OUTPUT "${Out}" PARENT_SCOPE)
endfunction()

# Build one model per device of the two-device preset.
run_checked(${BUILDER} --source two-device --rank 0 --kind piecewise
            --min 100 --max 4000 --points 12
            --output ${WORKDIR}/dev0.fpm)
run_checked(${BUILDER} --source two-device --rank 1 --kind akima
            --min 100 --max 4000 --points 12
            --output ${WORKDIR}/dev1.fpm)
foreach(F dev0.fpm dev1.fpm)
  if(NOT EXISTS ${WORKDIR}/${F})
    message(FATAL_ERROR "builder did not write ${F}")
  endif()
endforeach()

# Partition with every algorithm; units must sum to the total.
foreach(Alg constant geometric numerical)
  run_checked(${PARTITIONER} --total 3000 --algorithm ${Alg}
              --output ${WORKDIR}/dist_${Alg}.txt
              ${WORKDIR}/dev0.fpm ${WORKDIR}/dev1.fpm)
  string(REGEX MATCHALL "units +([0-9]+)" Matches "${LAST_OUTPUT}")
  set(Sum 0)
  foreach(M ${Matches})
    string(REGEX REPLACE "units +" "" U "${M}")
    math(EXPR Sum "${Sum} + ${U}")
  endforeach()
  if(NOT Sum EQUAL 3000)
    message(FATAL_ERROR "${Alg}: units sum to ${Sum}, expected 3000:\n"
                        "${LAST_OUTPUT}")
  endif()
  if(NOT EXISTS ${WORKDIR}/dist_${Alg}.txt)
    message(FATAL_ERROR "${Alg}: distribution file not written")
  endif()
endforeach()

# All-ranks parallel build: one model per device in a single run, and the
# rank-0 output must match the serial single-rank build bit for bit.
run_checked(${BUILDER} --source two-device --rank all --jobs 2
            --kind piecewise --min 100 --max 4000 --points 12
            --output ${WORKDIR}/all.fpm)
foreach(R 0 1)
  if(NOT EXISTS ${WORKDIR}/all.${R}.fpm)
    message(FATAL_ERROR "all-ranks builder did not write all.${R}.fpm")
  endif()
endforeach()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/dev0.fpm ${WORKDIR}/all.0.fpm
                RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "parallel all-ranks model differs from the serial "
                      "rank-0 model")
endif()

# Models from a cluster description file work too.
run_checked(${BUILDER} --source ${SAMPLE_CLUSTER} --rank 4 --min 500
            --max 10000 --points 6 --output ${WORKDIR}/gpu.fpm)
if(NOT EXISTS ${WORKDIR}/gpu.fpm)
  message(FATAL_ERROR "builder did not write gpu.fpm from cluster file")
endif()

# Malformed invocations must fail loudly.
execute_process(COMMAND ${PARTITIONER} --total 100 --algorithm bogus
                ${WORKDIR}/dev0.fpm RESULT_VARIABLE Rc
                OUTPUT_QUIET ERROR_QUIET)
if(Rc EQUAL 0)
  message(FATAL_ERROR "partitioner accepted a bogus algorithm")
endif()
execute_process(COMMAND ${PARTITIONER} --total 100
                ${WORKDIR}/missing.fpm RESULT_VARIABLE Rc
                OUTPUT_QUIET ERROR_QUIET)
if(Rc EQUAL 0)
  message(FATAL_ERROR "partitioner accepted a missing model file")
endif()
message(STATUS "tools workflow OK")
