//===-- tests/CommStressTest.cpp - threaded runtime stress ----------------===//
//
// Stress tests for the in-process SPMD runtime's synchronisation paths:
// many ranks crossing many barriers, barriers interleaved with message
// traffic, and a tag storm on the per-tag mailbox queues. These are the
// tests the ThreadSanitizer build runs (ctest -L tsan after configuring
// with -DFUPERMOD_SANITIZE=thread); they also run in the plain tier-1
// suite as functional checks.
//
//===----------------------------------------------------------------------===//

#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <vector>

using namespace fupermod;

namespace {

/// Deterministic per-(iteration, rank) compute jitter in seconds.
double jitter(int Iter, int Rank) {
  std::uint64_t X = 0x9e3779b97f4a7c15ull *
                    (static_cast<std::uint64_t>(Iter) * 131 + Rank + 1);
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  return static_cast<double>(X % 1000) * 1e-6;
}

} // namespace

TEST(CommStress, ManyRanksManyBarriers) {
  const int P = 12;
  const int Iters = 300;

  // With a free cost model the barrier itself adds no time, so after
  // barrier k every clock must sit at the running sum of per-iteration
  // jitter maxima — any divergence means a rank slipped a barrier.
  std::vector<double> Expected(Iters);
  double Acc = 0.0;
  for (int I = 0; I < Iters; ++I) {
    double Max = 0.0;
    for (int R = 0; R < P; ++R)
      Max = std::max(Max, jitter(I, R));
    Acc += Max;
    Expected[I] = Acc;
  }

  SpmdResult Result = runSpmd(P, [&](Comm &C) {
    for (int I = 0; I < Iters; ++I) {
      C.compute(jitter(I, C.rank()));
      C.barrier();
      ASSERT_DOUBLE_EQ(C.time(), Expected[I]) << "iteration " << I;
    }
  });
  EXPECT_TRUE(Result.allOk());
  for (double T : Result.FinalTimes)
    EXPECT_DOUBLE_EQ(T, Expected.back());
}

TEST(CommStress, BarriersInterleavedWithRingTraffic) {
  const int P = 8;
  const int Iters = 100;
  SpmdResult Result = runSpmd(P, [&](Comm &C) {
    int Right = (C.rank() + 1) % P;
    int Left = (C.rank() + P - 1) % P;
    int Token = C.rank();
    for (int I = 0; I < Iters; ++I) {
      C.compute(jitter(I, C.rank()));
      std::vector<int> Out = {Token};
      std::vector<int> In = C.sendrecv(Right, 17, std::span<const int>(Out),
                                       Left, 17);
      Token = In.front();
      C.barrier();
    }
    // After P * k full ring rotations the token is home again.
    EXPECT_EQ(Token, (C.rank() + P - Iters % P) % P);
  });
  EXPECT_TRUE(Result.allOk());
}

TEST(CommStress, MailboxTagStorm) {
  // Every rank floods its right neighbour on many tags at once; the
  // receiver drains the tags in an unrelated order. Per-tag FIFO must
  // hold for every tag regardless of interleaving and queue depth.
  const int P = 6;
  const int Tags = 16;
  const int PerTag = 50;
  SpmdResult Result = runSpmd(P, [&](Comm &C) {
    int Right = (C.rank() + 1) % P;
    int Left = (C.rank() + P - 1) % P;
    for (int I = 0; I < PerTag; ++I)
      for (int T = 0; T < Tags; ++T)
        C.isend(Right, T, std::vector<int>{T * 1000 + I});
    for (int T = Tags - 1; T >= 0; --T)
      for (int I = 0; I < PerTag; ++I)
        EXPECT_EQ(C.recvValue<int>(Left, T), T * 1000 + I);
  });
  EXPECT_TRUE(Result.allOk());
}

TEST(CommStress, TreeBarrierStormWithTopology) {
  // 64 ranks over 8 simulated nodes: the combining tree spans several
  // levels and the release wave must still deliver exactly the running
  // sum of per-iteration jitter maxima to every rank. This is the
  // tree-barrier ThreadSanitizer workload.
  const int P = 64;
  const int Iters = 120;
  std::vector<int> NodeOf(P);
  for (int R = 0; R < P; ++R)
    NodeOf[R] = R / 8;
  auto Cost = std::make_shared<TwoLevelCostModel>(
      std::move(NodeOf), LinkCost{1e-6, 1.0 / 8e9}, LinkCost{5e-5, 1.0 / 1e9});

  std::vector<double> Expected(Iters);
  double Acc = 0.0;
  for (int I = 0; I < Iters; ++I) {
    double Max = 0.0;
    for (int R = 0; R < P; ++R)
      Max = std::max(Max, jitter(I, R));
    Acc += Max;
    Expected[I] = Acc;
  }

  SpmdResult Result = runSpmd(
      P,
      [&](Comm &C) {
        for (int I = 0; I < Iters; ++I) {
          C.compute(jitter(I, C.rank()));
          C.barrier();
          ASSERT_DOUBLE_EQ(C.time(), Expected[I]) << "iteration " << I;
        }
      },
      Cost);
  EXPECT_TRUE(Result.allOk());
  for (double T : Result.FinalTimes)
    EXPECT_DOUBLE_EQ(T, Expected.back());
}

TEST(CommStress, ShardedMailboxAllToAllStorm) {
  // Every rank messages every other rank on sender-specific tags, hitting
  // many mailbox shards concurrently while channels are still being
  // created lazily — the sharded-map ThreadSanitizer workload.
  const int P = 16;
  const int Rounds = 20;
  SpmdResult Result = runSpmd(P, [&](Comm &C) {
    for (int I = 0; I < Rounds; ++I) {
      for (int Dst = 0; Dst < P; ++Dst)
        if (Dst != C.rank())
          C.isend(Dst, 100 + C.rank(),
                  std::vector<int>{I * P + C.rank()});
      for (int Src = P - 1; Src >= 0; --Src) {
        if (Src != C.rank()) {
          EXPECT_EQ(C.recvValue<int>(Src, 100 + Src), I * P + Src);
        }
      }
    }
  });
  EXPECT_TRUE(Result.allOk());
  // All-to-all traffic is the worst case: P*(P-1) point-to-point channels
  // plus the collective trees, still created only on demand.
  EXPECT_GE(Result.Comm.ChannelsCreated,
            static_cast<unsigned long long>(P) * (P - 1));
}

TEST(CommStress, SplitChurnThroughTreeRendezvous) {
  // Repeated splits with shifting colors drive the tree rendezvous hard;
  // every subgroup must come out consistent (membership, ranks, and a
  // working allreduce).
  const int P = 24;
  const int Iters = 40;
  SpmdResult Result = runSpmd(P, [&](Comm &C) {
    for (int I = 0; I < Iters; ++I) {
      int Colors = 2 + I % 5;
      int Color = (C.rank() + I) % Colors;
      Comm Sub = C.split(Color, C.rank());
      int Members = 0;
      for (int R = 0; R < P; ++R)
        if ((R + I) % Colors == Color)
          ++Members;
      ASSERT_EQ(Sub.size(), Members) << "iteration " << I;
      double Sum = Sub.allreduceValue(static_cast<double>(C.rank()),
                                      ReduceOp::Max);
      // The largest parent rank of this color class.
      double ExpectedMax = 0.0;
      for (int R = 0; R < P; ++R)
        if ((R + I) % Colors == Color)
          ExpectedMax = std::max(ExpectedMax, static_cast<double>(R));
      EXPECT_EQ(Sum, ExpectedMax) << "iteration " << I;
      Sub.barrier();
    }
  });
  EXPECT_TRUE(Result.allOk());
}
