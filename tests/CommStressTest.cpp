//===-- tests/CommStressTest.cpp - threaded runtime stress ----------------===//
//
// Stress tests for the in-process SPMD runtime's synchronisation paths:
// many ranks crossing many barriers, barriers interleaved with message
// traffic, and a tag storm on the per-tag mailbox queues. These are the
// tests the ThreadSanitizer build runs (ctest -L tsan after configuring
// with -DFUPERMOD_SANITIZE=thread); they also run in the plain tier-1
// suite as functional checks.
//
//===----------------------------------------------------------------------===//

#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <vector>

using namespace fupermod;

namespace {

/// Deterministic per-(iteration, rank) compute jitter in seconds.
double jitter(int Iter, int Rank) {
  std::uint64_t X = 0x9e3779b97f4a7c15ull *
                    (static_cast<std::uint64_t>(Iter) * 131 + Rank + 1);
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  return static_cast<double>(X % 1000) * 1e-6;
}

} // namespace

TEST(CommStress, ManyRanksManyBarriers) {
  const int P = 12;
  const int Iters = 300;

  // With a free cost model the barrier itself adds no time, so after
  // barrier k every clock must sit at the running sum of per-iteration
  // jitter maxima — any divergence means a rank slipped a barrier.
  std::vector<double> Expected(Iters);
  double Acc = 0.0;
  for (int I = 0; I < Iters; ++I) {
    double Max = 0.0;
    for (int R = 0; R < P; ++R)
      Max = std::max(Max, jitter(I, R));
    Acc += Max;
    Expected[I] = Acc;
  }

  SpmdResult Result = runSpmd(P, [&](Comm &C) {
    for (int I = 0; I < Iters; ++I) {
      C.compute(jitter(I, C.rank()));
      C.barrier();
      ASSERT_DOUBLE_EQ(C.time(), Expected[I]) << "iteration " << I;
    }
  });
  EXPECT_TRUE(Result.allOk());
  for (double T : Result.FinalTimes)
    EXPECT_DOUBLE_EQ(T, Expected.back());
}

TEST(CommStress, BarriersInterleavedWithRingTraffic) {
  const int P = 8;
  const int Iters = 100;
  SpmdResult Result = runSpmd(P, [&](Comm &C) {
    int Right = (C.rank() + 1) % P;
    int Left = (C.rank() + P - 1) % P;
    int Token = C.rank();
    for (int I = 0; I < Iters; ++I) {
      C.compute(jitter(I, C.rank()));
      std::vector<int> Out = {Token};
      std::vector<int> In = C.sendrecv(Right, 17, std::span<const int>(Out),
                                       Left, 17);
      Token = In.front();
      C.barrier();
    }
    // After P * k full ring rotations the token is home again.
    EXPECT_EQ(Token, (C.rank() + P - Iters % P) % P);
  });
  EXPECT_TRUE(Result.allOk());
}

TEST(CommStress, MailboxTagStorm) {
  // Every rank floods its right neighbour on many tags at once; the
  // receiver drains the tags in an unrelated order. Per-tag FIFO must
  // hold for every tag regardless of interleaving and queue depth.
  const int P = 6;
  const int Tags = 16;
  const int PerTag = 50;
  SpmdResult Result = runSpmd(P, [&](Comm &C) {
    int Right = (C.rank() + 1) % P;
    int Left = (C.rank() + P - 1) % P;
    for (int I = 0; I < PerTag; ++I)
      for (int T = 0; T < Tags; ++T)
        C.isend(Right, T, std::vector<int>{T * 1000 + I});
    for (int T = Tags - 1; T >= 0; --T)
      for (int I = 0; I < PerTag; ++I)
        EXPECT_EQ(C.recvValue<int>(Left, T), T * 1000 + I);
  });
  EXPECT_TRUE(Result.allOk());
}
