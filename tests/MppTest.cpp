//===-- tests/MppTest.cpp - message-passing runtime tests -----------------===//

#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace fupermod;

TEST(Runtime, SingleRankRuns) {
  std::atomic<int> Calls{0};
  SpmdResult R = runSpmd(1, [&](Comm &C) {
    EXPECT_EQ(C.rank(), 0);
    EXPECT_EQ(C.size(), 1);
    ++Calls;
  });
  EXPECT_EQ(Calls.load(), 1);
  ASSERT_EQ(R.FinalTimes.size(), 1u);
  EXPECT_DOUBLE_EQ(R.FinalTimes[0], 0.0);
}

TEST(Runtime, EveryRankSeesItsRank) {
  const int P = 6;
  std::vector<int> Seen(P, -1);
  runSpmd(P, [&](Comm &C) { Seen[C.rank()] = C.rank(); });
  for (int I = 0; I < P; ++I)
    EXPECT_EQ(Seen[I], I);
}

TEST(SendRecv, ValueRoundTrip) {
  runSpmd(2, [](Comm &C) {
    if (C.rank() == 0)
      C.sendValue<int>(1, 7, 42);
    else
      EXPECT_EQ(C.recvValue<int>(0, 7), 42);
  });
}

TEST(SendRecv, VectorRoundTrip) {
  runSpmd(2, [](Comm &C) {
    if (C.rank() == 0) {
      std::vector<double> V = {1.5, 2.5, 3.5};
      C.send<double>(1, 3, V);
    } else {
      std::vector<double> V = C.recv<double>(0, 3);
      ASSERT_EQ(V.size(), 3u);
      EXPECT_DOUBLE_EQ(V[1], 2.5);
    }
  });
}

TEST(SendRecv, FifoOrderPerTag) {
  runSpmd(2, [](Comm &C) {
    if (C.rank() == 0) {
      for (int I = 0; I < 10; ++I)
        C.sendValue<int>(1, 5, I);
    } else {
      for (int I = 0; I < 10; ++I)
        EXPECT_EQ(C.recvValue<int>(0, 5), I);
    }
  });
}

TEST(SendRecv, TagsMatchIndependently) {
  runSpmd(2, [](Comm &C) {
    if (C.rank() == 0) {
      C.sendValue<int>(1, 1, 100);
      C.sendValue<int>(1, 2, 200);
    } else {
      // Receive in the opposite order of sending: tag matching must pick
      // the right message regardless of queue position.
      EXPECT_EQ(C.recvValue<int>(0, 2), 200);
      EXPECT_EQ(C.recvValue<int>(0, 1), 100);
    }
  });
}

TEST(SendRecv, InterleavedTagsKeepPerTagFifo) {
  // Regression for the per-tag mailbox queues: two tag streams are
  // interleaved at the sender, drained in opposite orders and at
  // different paces at the receiver. Matching must stay FIFO within
  // each tag and never pay attention to the other tag's backlog.
  runSpmd(2, [](Comm &C) {
    const int N = 64;
    if (C.rank() == 0) {
      for (int I = 0; I < N; ++I) {
        C.sendValue<int>(1, 100, I);
        C.sendValue<int>(1, 200, 1000 + I);
      }
    } else {
      // Drain tag 200 completely first (tag 100's backlog keeps growing),
      // then tag 100, then check both streams arrived in send order.
      for (int I = 0; I < N; ++I)
        EXPECT_EQ(C.recvValue<int>(0, 200), 1000 + I);
      for (int I = 0; I < N; ++I)
        EXPECT_EQ(C.recvValue<int>(0, 100), I);
    }
  });
}

TEST(SendRecv, SelfSendWorks) {
  runSpmd(1, [](Comm &C) {
    C.sendValue<int>(0, 9, 5);
    EXPECT_EQ(C.recvValue<int>(0, 9), 5);
  });
}

TEST(Barrier, SynchronisesClocksToMax) {
  SpmdResult R = runSpmd(4, [](Comm &C) {
    C.compute(static_cast<double>(C.rank())); // Rank r works r seconds.
    C.barrier();
    EXPECT_DOUBLE_EQ(C.time(), 3.0);
  });
  for (double T : R.FinalTimes)
    EXPECT_DOUBLE_EQ(T, 3.0);
}

TEST(Barrier, RepeatedBarriersKeepWorking) {
  runSpmd(3, [](Comm &C) {
    for (int I = 1; I <= 5; ++I) {
      C.compute(C.rank() == 0 ? 1.0 : 0.0);
      C.barrier();
      EXPECT_DOUBLE_EQ(C.time(), static_cast<double>(I));
    }
  });
}

TEST(Bcast, AllRootsAllSizes) {
  for (int P : {1, 2, 3, 5, 8}) {
    for (int Root = 0; Root < P; ++Root) {
      runSpmd(P, [Root](Comm &C) {
        std::vector<int> Data;
        if (C.rank() == Root)
          Data = {Root, 17, 23};
        C.bcast(Data, Root);
        ASSERT_EQ(Data.size(), 3u);
        EXPECT_EQ(Data[0], Root);
        EXPECT_EQ(Data[2], 23);
      });
    }
  }
}

TEST(Gatherv, ConcatenatesInRankOrder) {
  runSpmd(4, [](Comm &C) {
    // Rank r contributes r+1 copies of r.
    std::vector<int> Mine(static_cast<std::size_t>(C.rank() + 1), C.rank());
    std::vector<int> All = C.gatherv(std::span<const int>(Mine), 0);
    if (C.rank() != 0) {
      EXPECT_TRUE(All.empty());
      return;
    }
    std::vector<int> Expected = {0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
    EXPECT_EQ(All, Expected);
  });
}

TEST(Scatterv, DistributesChunks) {
  runSpmd(3, [](Comm &C) {
    std::vector<int> All;
    std::vector<int> Counts = {1, 2, 3};
    if (C.rank() == 0)
      All = {10, 20, 21, 30, 31, 32};
    std::vector<int> Mine =
        C.scatterv(std::span<const int>(All), Counts, 0);
    ASSERT_EQ(Mine.size(), static_cast<std::size_t>(C.rank() + 1));
    EXPECT_EQ(Mine[0], (C.rank() + 1) * 10);
  });
}

TEST(Allgatherv, EveryoneGetsEverything) {
  runSpmd(4, [](Comm &C) {
    std::vector<double> Mine = {static_cast<double>(C.rank())};
    std::vector<double> All = C.allgatherv(std::span<const double>(Mine));
    ASSERT_EQ(All.size(), 4u);
    for (int I = 0; I < 4; ++I)
      EXPECT_DOUBLE_EQ(All[static_cast<std::size_t>(I)],
                       static_cast<double>(I));
  });
}

TEST(Allreduce, SumMaxMin) {
  runSpmd(5, [](Comm &C) {
    double V = static_cast<double>(C.rank() + 1);
    EXPECT_DOUBLE_EQ(C.allreduceValue(V, ReduceOp::Sum), 15.0);
    EXPECT_DOUBLE_EQ(C.allreduceValue(V, ReduceOp::Max), 5.0);
    EXPECT_DOUBLE_EQ(C.allreduceValue(V, ReduceOp::Min), 1.0);
  });
}

TEST(Allreduce, Vectors) {
  runSpmd(3, [](Comm &C) {
    std::vector<double> V = {static_cast<double>(C.rank()), 1.0};
    std::vector<double> R = C.allreduce(V, ReduceOp::Sum);
    ASSERT_EQ(R.size(), 2u);
    EXPECT_DOUBLE_EQ(R[0], 3.0);
    EXPECT_DOUBLE_EQ(R[1], 3.0);
  });
}

TEST(Split, GroupsByColorOrderedByKey) {
  runSpmd(6, [](Comm &C) {
    int Color = C.rank() % 2;
    int Key = -C.rank(); // Reverse order inside each group.
    Comm Sub = C.split(Color, Key);
    EXPECT_EQ(Sub.size(), 3);
    // Ranks 4, 2, 0 (even) and 5, 3, 1 (odd) in key order.
    int ExpectedRank = (5 - C.rank()) / 2;
    EXPECT_EQ(Sub.rank(), ExpectedRank);
    EXPECT_EQ(Sub.globalRank(), C.rank());
    // The subgroup is a fully functional communicator.
    double Sum = Sub.allreduceValue(static_cast<double>(C.rank()),
                                    ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(Sum, Color == 0 ? 6.0 : 9.0);
  });
}

TEST(Split, RepeatedSplitsWork) {
  runSpmd(4, [](Comm &C) {
    for (int Round = 0; Round < 3; ++Round) {
      Comm Sub = C.split(C.rank() / 2, C.rank());
      EXPECT_EQ(Sub.size(), 2);
      Sub.barrier();
    }
  });
}

TEST(VirtualTime, SendChargesLatencyAndTransfer) {
  auto Cost = std::make_shared<UniformCostModel>(/*Latency=*/0.5,
                                                 /*BytesPerSecond=*/100.0);
  runSpmd(2,
          [](Comm &C) {
            if (C.rank() == 0) {
              std::vector<std::byte> Data(200); // 2 seconds of transfer.
              C.sendBytes(1, 1, Data);
              // The sender only pays the injection latency.
              EXPECT_DOUBLE_EQ(C.time(), 0.5);
            } else {
              C.recvBytes(0, 1);
              // The receiver waits for the full transfer: 0.5 + 200/100.
              EXPECT_DOUBLE_EQ(C.time(), 2.5);
            }
          },
          Cost);
}

TEST(VirtualTime, ReceiverNotRewoundWhenMessageIsOld) {
  auto Cost = std::make_shared<UniformCostModel>(0.1, 1e9);
  runSpmd(2,
          [](Comm &C) {
            if (C.rank() == 0) {
              C.sendValue<int>(1, 1, 1);
            } else {
              C.compute(100.0); // Receiver is far in the future.
              C.recvBytes(0, 1);
              EXPECT_DOUBLE_EQ(C.time(), 100.0);
            }
          },
          Cost);
}

TEST(VirtualTime, TwoLevelModelDistinguishesIntraInter) {
  std::vector<int> NodeOf = {0, 0, 1};
  LinkCost Intra{0.0, 1.0 / 1000.0};
  LinkCost Inter{0.0, 1.0 / 10.0};
  auto Cost = std::make_shared<TwoLevelCostModel>(NodeOf, Intra, Inter);
  runSpmd(3,
          [](Comm &C) {
            std::vector<std::byte> Data(10);
            if (C.rank() == 0) {
              C.sendBytes(1, 1, Data); // Intra: 10/1000 = 0.01 s.
              C.sendBytes(2, 2, Data); // Inter: 10/10 = 1 s.
            } else if (C.rank() == 1) {
              C.recvBytes(0, 1);
              EXPECT_NEAR(C.time(), 0.01, 1e-12);
            } else {
              C.recvBytes(0, 2);
              EXPECT_NEAR(C.time(), 1.0, 1e-12);
            }
          },
          Cost);
}

TEST(VirtualTime, DeterministicAcrossRuns) {
  auto Cost = std::make_shared<UniformCostModel>(1e-4, 1e8);
  auto Body = [](Comm &C) {
    for (int I = 0; I < 5; ++I) {
      std::vector<double> V(100, static_cast<double>(C.rank()));
      std::vector<double> All = C.allgatherv(std::span<const double>(V));
      C.compute(0.001 * (C.rank() + 1));
      C.barrier();
    }
  };
  SpmdResult A = runSpmd(4, Body, Cost);
  SpmdResult B = runSpmd(4, Body, Cost);
  ASSERT_EQ(A.FinalTimes.size(), B.FinalTimes.size());
  for (std::size_t I = 0; I < A.FinalTimes.size(); ++I)
    EXPECT_DOUBLE_EQ(A.FinalTimes[I], B.FinalTimes[I]);
}

TEST(VirtualTime, MakespanIsMaxFinalTime) {
  SpmdResult R = runSpmd(3, [](Comm &C) {
    C.compute(static_cast<double>(C.rank()) * 2.0);
  });
  EXPECT_DOUBLE_EQ(R.makespan(), 4.0);
}

// Property: a ring exchange of P ranks delivers every payload intact.
class RingTest : public ::testing::TestWithParam<int> {};

TEST_P(RingTest, RingExchange) {
  int P = GetParam();
  runSpmd(P, [P](Comm &C) {
    int Next = (C.rank() + 1) % P;
    int Prev = (C.rank() + P - 1) % P;
    C.sendValue<int>(Next, 11, C.rank() * 10);
    EXPECT_EQ(C.recvValue<int>(Prev, 11), Prev * 10);
  });
}

INSTANTIATE_TEST_SUITE_P(RingSizes, RingTest,
                         ::testing::Values(2, 3, 4, 7, 12));

TEST(AllgathervRing, MatchesLinearAlgorithm) {
  for (int P : {1, 2, 3, 5, 8}) {
    runSpmd(P, [](Comm &C) {
      // Ragged contributions: rank r supplies r+1 values 100*r + i.
      std::vector<int> Mine;
      for (int I = 0; I <= C.rank(); ++I)
        Mine.push_back(100 * C.rank() + I);
      std::vector<int> Ring =
          C.allgathervRing(std::span<const int>(Mine));
      std::vector<int> Linear = C.allgatherv(std::span<const int>(Mine));
      EXPECT_EQ(Ring, Linear) << "P=" << C.size();
    });
  }
}

TEST(AllgathervRing, CheaperThanTreeForLargePayloads) {
  // Each chunk crosses every link once in the ring, so for payloads that
  // dwarf the latency the ring beats gather + binomial broadcast (which
  // moves the full payload log(P) times along the critical path).
  auto Cost = std::make_shared<UniformCostModel>(/*Latency=*/1e-6,
                                                 /*BytesPerSecond=*/1e9);
  const int P = 8;
  const std::size_t ChunkDoubles = 1 << 16; // 512 KiB per rank.

  double RingTime = 0.0, TreeTime = 0.0;
  runSpmd(P,
          [&](Comm &C) {
            std::vector<double> Mine(ChunkDoubles, 1.0);
            C.allgathervRing(std::span<const double>(Mine));
            C.barrier();
            if (C.rank() == 0)
              RingTime = C.time();
          },
          Cost);
  runSpmd(P,
          [&](Comm &C) {
            std::vector<double> Mine(ChunkDoubles, 1.0);
            C.allgatherv(std::span<const double>(Mine));
            C.barrier();
            if (C.rank() == 0)
              TreeTime = C.time();
          },
          Cost);
  EXPECT_LT(RingTime, TreeTime);
}

// --- Failure propagation: a dead rank poisons its world so survivors
// get a clean CommError instead of deadlocking in a collective. ---

TEST(Poison, BarrierDoesNotDeadlockWhenOneRankDies) {
  // Rank 0 dies before ever entering the barrier; ranks 1 and 2 would
  // historically wait forever. Every survivor must observe a CommError
  // naming the dead rank, and the whole test must terminate.
  SpmdResult R = runSpmd(3, [](Comm &C) {
    if (C.rank() == 0)
      throw std::runtime_error("gpu fell off the bus");
    try {
      for (;;)
        C.barrier();
    } catch (const CommError &E) {
      EXPECT_EQ(E.failedRank(), 0);
      throw; // Let runSpmd record the secondary failure too.
    }
  });
  EXPECT_FALSE(R.allOk());
  EXPECT_EQ(R.firstFailedRank(), 0);
  ASSERT_EQ(R.Ranks.size(), 3u);
  EXPECT_EQ(R.Ranks[0].Error, "gpu fell off the bus");
  // Survivors report the propagated failure, attributed to rank 0.
  EXPECT_NE(R.Ranks[1].Error.find("rank 0 failed"), std::string::npos);
  EXPECT_NE(R.Ranks[2].Error.find("rank 0 failed"), std::string::npos);
}

TEST(Poison, RecvFromDeadRankThrows) {
  runSpmd(2, [](Comm &C) {
    if (C.rank() == 1)
      throw std::runtime_error("boom");
    EXPECT_THROW(C.recvValue<int>(1, 4), CommError);
  });
}

TEST(Poison, QueuedMessagesStillDeliveredAfterDeath) {
  // Rank 0 sends, then dies. The queued message must still be received;
  // only the *next* receive (which can never be satisfied) throws.
  runSpmd(2, [](Comm &C) {
    if (C.rank() == 0) {
      C.sendValue<int>(1, 7, 42);
      throw std::runtime_error("died after send");
    }
    EXPECT_EQ(C.recvValue<int>(0, 7), 42);
    EXPECT_THROW(C.recvValue<int>(0, 7), CommError);
  });
}

TEST(Poison, ExplicitAbortPoisonsTheWorld) {
  SpmdResult R = runSpmd(3, [](Comm &C) {
    if (C.rank() == 2) {
      C.abort("device evicted");
      return; // Simulated process exit.
    }
    try {
      for (;;)
        C.barrier();
    } catch (const CommError &E) {
      EXPECT_EQ(E.failedRank(), 2);
      EXPECT_NE(std::string(E.what()).find("device evicted"),
                std::string::npos);
    }
    EXPECT_TRUE(C.poisoned());
  });
  // abort() marks the world, not the caller: rank 2 itself returned
  // normally, the survivors caught and handled the CommError.
  EXPECT_TRUE(R.allOk());
}

TEST(Poison, SpreadsIntoSubgroupsAfterSplit) {
  // Split {0,1} / {2,3}; rank 3 then dies. Both subgroups share the
  // world's poison state, so ranks blocked on the *other* subgroup's
  // barrier must also unblock with a CommError.
  runSpmd(4, [](Comm &C) {
    Comm Sub = C.split(C.rank() / 2, C.rank());
    if (C.rank() == 3)
      throw std::runtime_error("late fatal");
    try {
      for (;;)
        Sub.barrier();
    } catch (const CommError &E) {
      EXPECT_EQ(E.failedRank(), 3);
    }
  });
}

TEST(Poison, CollectivesOnPoisonedWorldFailFast) {
  runSpmd(3, [](Comm &C) {
    if (C.rank() == 1)
      throw std::runtime_error("early exit");
    // Wait until the poison is visible, then every collective and
    // point-to-point entry point must throw instead of blocking.
    try {
      for (;;)
        C.barrier();
    } catch (const CommError &) {
    }
    std::vector<double> V = {1.0};
    EXPECT_THROW(C.allreduceValue(1.0, ReduceOp::Sum), CommError);
    EXPECT_THROW(C.allgatherv(std::span<const double>(V)), CommError);
    EXPECT_THROW(C.sendValue<int>((C.rank() + 1) % 3, 9, 1), CommError);
    EXPECT_THROW(C.split(0, C.rank()), CommError);
  });
}

TEST(SendRecv, PairedExchange) {
  runSpmd(4, [](Comm &C) {
    int P = C.size();
    int Right = (C.rank() + 1) % P;
    int Left = (C.rank() + P - 1) % P;
    std::vector<int> Payload = {C.rank() * 7};
    std::vector<int> Got =
        C.sendrecv(Right, 21, std::span<const int>(Payload), Left, 21);
    ASSERT_EQ(Got.size(), 1u);
    EXPECT_EQ(Got[0], Left * 7);
  });
}

TEST(Runtime, RejectsNonPositiveRankCounts) {
  auto Body = [](Comm &) {};
  EXPECT_THROW(runSpmd(0, Body), std::invalid_argument);
  EXPECT_THROW(runSpmd(-3, Body), std::invalid_argument);
  try {
    runSpmd(0, Body);
    FAIL() << "runSpmd(0) did not throw";
  } catch (const std::invalid_argument &E) {
    EXPECT_NE(std::string(E.what()).find("NumRanks"), std::string::npos);
  }
}

TEST(SendRecv, RecvValueOnEmptyPayloadThrows) {
  runSpmd(2, [](Comm &C) {
    if (C.rank() == 0) {
      std::vector<int> Empty;
      C.send<int>(1, 5, std::span<const int>(Empty));
    } else {
      try {
        (void)C.recvValue<int>(0, 5);
        FAIL() << "recvValue on an empty payload did not throw";
      } catch (const CommError &E) {
        EXPECT_EQ(E.failedRank(), 0);
        EXPECT_NE(std::string(E.what()).find("empty payload"),
                  std::string::npos);
      }
    }
  });
}

TEST(Bcast, BcastValueOnEmptyRootPayloadThrows) {
  SpmdResult R = runSpmd(2, [](Comm &C) {
    if (C.rank() == 0) {
      std::vector<int> Empty;
      C.bcast(Empty, 0);
    } else {
      int V = 7;
      EXPECT_THROW(C.bcastValue(V, 0), CommError);
    }
    // The error is reported to the caller, not turned into a poisoned
    // world: the group must still be usable.
    C.barrier();
  });
  EXPECT_TRUE(R.allOk());
}
