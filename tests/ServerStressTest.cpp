//===-- tests/ServerStressTest.cpp - concurrent service stress tests ------===//
//
// Pins the engine::Server contract under contention (these run under the
// TSan job as well as tier-1; see tests/CMakeLists.txt):
//
//   * every submitted request resolves exactly one future — Ok, Error,
//     or a structured rejection; nothing is lost or answered twice;
//   * concurrent answers are bit-identical to what a serial Session
//     produces for the same request;
//   * hot-reload churn never corrupts an in-flight solve (epoch
//     atomicity): every Ok reply is internally consistent;
//   * overload sheds with Rejected{queue_full}, deadlines expire as
//     Rejected{deadline}, shutdown rejects new work as
//     Rejected{shutting_down} while draining admitted requests;
//   * identical in-flight requests coalesce to one solve and the cache
//     serves repeats, with all replies byte-identical.
//
// The host may have a single CPU, so these tests assert correctness
// invariants, never parallel speedups; ServerConfig::SolveDelay widens
// the in-flight windows to make shedding and coalescing deterministic.
//
//===----------------------------------------------------------------------===//

#include "engine/Server.h"
#include "engine/Session.h"
#include "core/ModelIO.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace fupermod;
using namespace fupermod::engine;

namespace {

Point makePoint(double Units, double Time, int Reps = 3) {
  Point P;
  P.Units = Units;
  P.Time = Time;
  P.Reps = Reps;
  P.ConfidenceInterval = 0.01;
  return P;
}

/// Writes a fitted model file whose speed is \p UnitsPerSec.
void writeModelFile(const std::string &Path, double UnitsPerSec) {
  auto M = makeModel("piecewise");
  for (int I = 1; I <= 4; ++I)
    M->update(makePoint(100.0 * I, 100.0 * I / UnitsPerSec));
  ASSERT_TRUE(fupermod::saveModel(Path, *M));
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

/// A session loaded over freshly written model files. Paths are
/// returned through \p PathsOut for churn tests that rewrite them and
/// for tests that must load a second session over the same files.
std::unique_ptr<Session> makeServedSession(const std::string &Tag,
                                           std::vector<std::string> *PathsOut,
                                           int Ranks = 3) {
  SessionConfig Cfg;
  auto SR = Session::create(std::move(Cfg));
  EXPECT_TRUE(SR.ok()) << SR.error();
  std::vector<std::string> Paths;
  for (int R = 0; R < Ranks; ++R) {
    Paths.push_back(tempPath("srvstress_" + Tag + std::to_string(R) + ".fpm"));
    writeModelFile(Paths.back(), 300.0 * (R + 1));
  }
  EXPECT_TRUE(SR.value()->loadModels(Paths).ok());
  if (PathsOut)
    *PathsOut = Paths;
  return std::move(SR.value());
}

/// A second session over files already written by makeServedSession.
std::unique_ptr<Session> loadSession(const std::vector<std::string> &Paths) {
  SessionConfig Cfg;
  auto SR = Session::create(std::move(Cfg));
  EXPECT_TRUE(SR.ok()) << SR.error();
  EXPECT_TRUE(SR.value()->loadModels(Paths).ok());
  return std::move(SR.value());
}

/// Total units an Ok reply hands out, parsed back from its Dist.
std::int64_t distSum(const ServerResponse &R) {
  std::int64_t Sum = 0;
  for (const auto &P : R.Reply.D.Parts)
    Sum += P.Units;
  return Sum;
}

} // namespace

TEST(ServerStress, BitIdenticalToSerial) {
  // A serial session and a concurrent server answer the same mixed
  // batch; every concurrent reply must match the serial text byte for
  // byte (no churn, so the epoch is stable).
  std::vector<std::string> Paths;
  auto Serial = makeServedSession("ident_", &Paths);
  std::unique_ptr<Session> Conc = loadSession(Paths);

  struct Case {
    std::int64_t Total;
    std::string Algorithm;
  };
  std::vector<Case> Cases;
  for (int I = 0; I < 32; ++I) {
    Case C;
    C.Total = 500 + (I % 6) * 333;
    if (I % 3 == 1)
      C.Algorithm = "numerical";
    else if (I % 3 == 2)
      C.Algorithm = "constant";
    Cases.push_back(C);
  }

  ServerConfig Cfg;
  Cfg.Workers = 4;
  Cfg.QueueCapacity = Cases.size();
  Server Srv(*Conc, Cfg);
  std::vector<std::future<ServerResponse>> Futures;
  for (const Case &C : Cases) {
    ServerRequest Req;
    Req.Total = C.Total;
    Req.Algorithm = C.Algorithm;
    Futures.push_back(Srv.submit(std::move(Req)));
  }
  for (std::size_t I = 0; I < Cases.size(); ++I) {
    ServerResponse R = Futures[I].get();
    ASSERT_EQ(R.K, ServerResponse::Kind::Ok) << R.Message;
    Result<PartitionReply> Want =
        Serial->partitionRendered(Cases[I].Total, Cases[I].Algorithm);
    ASSERT_TRUE(Want.ok()) << Want.error();
    EXPECT_EQ(R.Reply.Text, Want.value().Text) << "request " << I;
  }
  Srv.shutdown();
  ServerStats St = Srv.stats();
  EXPECT_EQ(St.Submitted, Cases.size());
  EXPECT_EQ(St.Answered, Cases.size());
  EXPECT_EQ(St.Errors + St.ShedQueueFull + St.ShedDeadline + St.ShedShutdown,
            0u);
}

TEST(ServerStress, HotReloadChurnKeepsEveryReplyConsistent) {
  // Many client threads flood the server while a churn thread rewrites
  // a model file and hot-reloads it. Exactly one response per request,
  // and every Ok reply hands out exactly the requested total — a torn
  // reload would break that or trip TSan.
  std::vector<std::string> Paths;
  auto S = makeServedSession("churn_", &Paths);

  ServerConfig Cfg;
  Cfg.Workers = 4;
  Cfg.QueueCapacity = 512;
  Server Srv(*S, Cfg);

  std::atomic<bool> StopChurn{false};
  std::thread Churn([&] {
    for (int Flip = 0; !StopChurn.load(std::memory_order_acquire); ++Flip) {
      writeModelFile(Paths[0], Flip % 2 == 0 ? 900.0 : 300.0);
      // Nudge the mtime forward in case the filesystem clock is coarse;
      // the content hash catches same-mtime rewrites anyway.
      std::filesystem::last_write_time(
          Paths[0], std::filesystem::last_write_time(Paths[0]) +
                        std::chrono::milliseconds(Flip + 1));
      Result<int> R = Srv.reload();
      ASSERT_TRUE(R.ok()) << R.error();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int Clients = 4;
  constexpr int PerClient = 32;
  std::atomic<int> OkCount{0}, BadCount{0};
  std::vector<std::thread> Threads;
  for (int C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      for (int I = 0; I < PerClient; ++I) {
        std::int64_t Total = 1000 + C * 100 + I;
        ServerRequest Req;
        Req.Total = Total;
        ServerResponse R = Srv.submit(std::move(Req)).get();
        if (R.K == ServerResponse::Kind::Ok && distSum(R) == Total)
          OkCount.fetch_add(1, std::memory_order_relaxed);
        else
          BadCount.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  StopChurn.store(true, std::memory_order_release);
  Churn.join();
  Srv.shutdown();

  // The queue was big enough for everything, no deadlines: every single
  // request must have come back Ok with an exact handout.
  EXPECT_EQ(OkCount.load(), Clients * PerClient);
  EXPECT_EQ(BadCount.load(), 0);
  ServerStats St = Srv.stats();
  EXPECT_EQ(St.Submitted, static_cast<std::uint64_t>(Clients * PerClient));
  EXPECT_EQ(St.Answered, St.Submitted);
  EXPECT_GT(St.Reloads, 0u);
}

TEST(ServerStress, QueueFullShedsWithStructuredRejection) {
  auto S = makeServedSession("shed_", nullptr);
  ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 1;
  Cfg.CacheCapacity = 0; // No cache/coalesce relief: every solve is real.
  Cfg.SolveDelay = std::chrono::milliseconds(20);
  Server Srv(*S, Cfg);

  constexpr int N = 12;
  std::vector<std::future<ServerResponse>> Futures;
  for (int I = 0; I < N; ++I) {
    ServerRequest Req;
    Req.Total = 1000 + I; // Unique totals: coalescing cannot absorb them.
    Futures.push_back(Srv.submit(std::move(Req)));
  }
  int Ok = 0, QueueFull = 0, Other = 0;
  for (auto &F : Futures) {
    ServerResponse R = F.get();
    if (R.K == ServerResponse::Kind::Ok)
      ++Ok;
    else if (R.K == ServerResponse::Kind::Rejected &&
             R.Reason == RejectReason::QueueFull)
      ++QueueFull;
    else
      ++Other;
  }
  Srv.shutdown();
  // With a 20 ms solve, one worker and a one-deep queue, a burst of 12
  // cannot all be admitted. Everything resolved, nothing hung.
  EXPECT_EQ(Ok + QueueFull + Other, N);
  EXPECT_GT(QueueFull, 0);
  EXPECT_GT(Ok, 0);
  EXPECT_EQ(Other, 0);
  ServerStats St = Srv.stats();
  EXPECT_EQ(St.ShedQueueFull, static_cast<std::uint64_t>(QueueFull));
  EXPECT_EQ(St.Answered, static_cast<std::uint64_t>(Ok));
  EXPECT_STREQ(rejectReasonName(RejectReason::QueueFull), "queue_full");
}

TEST(ServerStress, ExpiredDeadlineIsShedNotAnswered) {
  auto S = makeServedSession("deadline_", nullptr);
  ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 8;
  Server Srv(*S, Cfg);

  // A deadline that has effectively already passed must come back as a
  // structured deadline rejection, never as a late answer.
  ServerRequest Req;
  Req.Total = 1000;
  Req.Timeout = std::chrono::nanoseconds(1);
  ServerResponse R = Srv.submit(std::move(Req)).get();
  EXPECT_EQ(R.K, ServerResponse::Kind::Rejected);
  EXPECT_EQ(R.Reason, RejectReason::Deadline);

  // A generous deadline is answered normally.
  ServerRequest Req2;
  Req2.Total = 1000;
  Req2.Timeout = std::chrono::seconds(30);
  ServerResponse R2 = Srv.submit(std::move(Req2)).get();
  EXPECT_EQ(R2.K, ServerResponse::Kind::Ok) << R2.Message;
  Srv.shutdown();
  EXPECT_EQ(Srv.stats().ShedDeadline, 1u);
  EXPECT_STREQ(rejectReasonName(RejectReason::Deadline), "deadline");
}

TEST(ServerStress, IdenticalRequestsCoalesceAndCacheToOneAnswer) {
  auto S = makeServedSession("coalesce_", nullptr);
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Cfg.QueueCapacity = 64;
  Cfg.SolveDelay = std::chrono::milliseconds(10);
  Server Srv(*S, Cfg);

  constexpr int N = 24;
  std::vector<std::future<ServerResponse>> Futures;
  for (int I = 0; I < N; ++I) {
    ServerRequest Req;
    Req.Total = 4242; // All identical: one solve should feed them all.
    Futures.push_back(Srv.submit(std::move(Req)));
  }
  std::set<std::string> Texts;
  int Shared = 0;
  for (auto &F : Futures) {
    ServerResponse R = F.get();
    ASSERT_EQ(R.K, ServerResponse::Kind::Ok) << R.Message;
    Texts.insert(R.Reply.Text);
    if (R.Coalesced || R.CacheHit)
      ++Shared;
  }
  Srv.shutdown();
  // All replies bit-identical, and the bulk of them were served by
  // attaching to the in-flight solve or from the partition cache.
  EXPECT_EQ(Texts.size(), 1u);
  EXPECT_GT(Shared, 0);
  ServerStats St = Srv.stats();
  EXPECT_EQ(St.Coalesced + St.CacheHits,
            static_cast<std::uint64_t>(Shared));
  EXPECT_GT(St.Coalesced + St.CacheHits, 0u);
}

TEST(ServerStress, ShutdownDrainsAdmittedAndRejectsNew) {
  auto S = makeServedSession("shutdown_", nullptr);
  ServerConfig Cfg;
  Cfg.Workers = 1;
  Cfg.QueueCapacity = 32;
  Cfg.SolveDelay = std::chrono::milliseconds(5);
  Server Srv(*S, Cfg);

  std::vector<std::future<ServerResponse>> Futures;
  for (int I = 0; I < 8; ++I) {
    ServerRequest Req;
    Req.Total = 2000 + I;
    Futures.push_back(Srv.submit(std::move(Req)));
  }
  Srv.shutdown(); // Must drain: all 8 were admitted.
  for (auto &F : Futures) {
    ServerResponse R = F.get();
    EXPECT_EQ(R.K, ServerResponse::Kind::Ok) << R.Message;
  }
  // New work after shutdown is rejected with the structured reason, not
  // dropped on the floor.
  ServerRequest Late;
  Late.Total = 999;
  ServerResponse R = Srv.submit(std::move(Late)).get();
  EXPECT_EQ(R.K, ServerResponse::Kind::Rejected);
  EXPECT_EQ(R.Reason, RejectReason::ShuttingDown);
  EXPECT_STREQ(rejectReasonName(RejectReason::ShuttingDown),
               "shutting_down");
  ServerStats St = Srv.stats();
  EXPECT_EQ(St.Answered, 8u);
  EXPECT_EQ(St.ShedShutdown, 1u);
  // shutdown() is idempotent.
  Srv.shutdown();
}

TEST(ServerStress, ErrorsAreAnswersNotCrashes) {
  // A request naming an unknown algorithm yields Kind::Error with the
  // registry diagnostic; the server keeps serving afterwards.
  auto S = makeServedSession("error_", nullptr);
  ServerConfig Cfg;
  Cfg.Workers = 2;
  Server Srv(*S, Cfg);

  ServerRequest Bad;
  Bad.Total = 1000;
  Bad.Algorithm = "fastest";
  ServerResponse R = Srv.submit(std::move(Bad)).get();
  EXPECT_EQ(R.K, ServerResponse::Kind::Error);
  EXPECT_NE(R.Message.find("unknown partitioner 'fastest'"),
            std::string::npos)
      << R.Message;

  ServerRequest Good;
  Good.Total = 1000;
  ServerResponse R2 = Srv.submit(std::move(Good)).get();
  EXPECT_EQ(R2.K, ServerResponse::Kind::Ok) << R2.Message;
  Srv.shutdown();
  ServerStats St = Srv.stats();
  EXPECT_EQ(St.Errors, 1u);
  EXPECT_EQ(St.Answered, 1u);
}
