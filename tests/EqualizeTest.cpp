//===-- tests/EqualizeTest.cpp - dynamic equalization subsystem -----------===//
//
// Unit tests of the ImbalanceMonitor trigger automaton and the
// CostArbiter pricing, a 200-case randomized property net over the
// monitor (cooldown/hysteresis can never double-fire, and an offline
// replay of any recorded series reproduces the trigger sequence
// exactly), end-to-end policy properties on small drifting SPMD runs
// (every policy computes the bit-identical result; the gated policies
// never move more redistribute bytes than every-round balancing), and a
// repartition-churn stress that doubles as the equalize-layer
// ThreadSanitizer workload (ctest -L tsan).
//
//===----------------------------------------------------------------------===//

#include "core/Partitioners.h"
#include "dist/PartitionedVector.h"
#include "engine/Balance.h"
#include "equalize/CostArbiter.h"
#include "equalize/Monitor.h"
#include "equalize/Policy.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

using namespace fupermod;
using namespace fupermod::equalize;

namespace {

std::vector<std::uint8_t> allActive(std::size_t P) {
  return std::vector<std::uint8_t>(P, 1);
}

std::uint64_t fnv1a(const void *Data, std::size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  std::uint64_t H = 1469598103934665603ull;
  for (std::size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// ImbalanceMonitor unit tests
//===----------------------------------------------------------------------===//

TEST(Monitor, TriggersAboveBaselineStaysQuietBelow) {
  MonitorConfig Cfg;
  Cfg.TriggerThreshold = 0.3;
  ImbalanceMonitor M(Cfg);
  std::vector<std::uint8_t> Act = allActive(4);

  std::vector<double> Balanced = {1.0, 1.0, 1.0, 1.0};
  EXPECT_FALSE(M.observe(Balanced, Act));
  EXPECT_DOUBLE_EQ(M.imbalance(), 0.0);

  std::vector<double> Skewed = {1.0, 1.0, 1.0, 2.0}; // (2-1)/2 = 0.5.
  EXPECT_TRUE(M.observe(Skewed, Act));
  EXPECT_DOUBLE_EQ(M.imbalance(), 0.5);
  EXPECT_EQ(M.counters().Triggers, 1u);
  EXPECT_EQ(M.counters().Breaches, 1u);
}

TEST(Monitor, CooldownSuppressesRepeatTriggers) {
  MonitorConfig Cfg;
  Cfg.TriggerThreshold = 0.3;
  Cfg.Cooldown = 3;
  ImbalanceMonitor M(Cfg);
  std::vector<std::uint8_t> Act = allActive(2);
  std::vector<double> Skewed = {1.0, 2.0};

  EXPECT_TRUE(M.observe(Skewed, Act));
  // A vetoed adoption leaves the monitor armed, but the cooldown clock
  // restarted: the next three breaches are swallowed, the fourth fires.
  for (int I = 0; I < 3; ++I)
    EXPECT_FALSE(M.observe(Skewed, Act)) << "round " << I;
  EXPECT_TRUE(M.observe(Skewed, Act));
  EXPECT_EQ(M.counters().Triggers, 2u);
  EXPECT_EQ(M.counters().CooldownSuppressed, 3u);
}

TEST(Monitor, MinBreachesRequiresConsecutiveRounds) {
  MonitorConfig Cfg;
  Cfg.TriggerThreshold = 0.3;
  Cfg.MinBreaches = 2;
  ImbalanceMonitor M(Cfg);
  std::vector<std::uint8_t> Act = allActive(2);
  std::vector<double> Skewed = {1.0, 2.0};
  std::vector<double> Balanced = {1.0, 1.0};

  // A lone spike does not fire, and a balanced round resets the streak.
  EXPECT_FALSE(M.observe(Skewed, Act));
  EXPECT_FALSE(M.observe(Balanced, Act));
  EXPECT_FALSE(M.observe(Skewed, Act));
  EXPECT_TRUE(M.observe(Skewed, Act));
  EXPECT_EQ(M.counters().Triggers, 1u);
}

TEST(Monitor, EwmaSmoothsTheWindow) {
  MonitorConfig Cfg;
  Cfg.EwmaAlpha = 0.5;
  ImbalanceMonitor M(Cfg);
  std::vector<std::uint8_t> Act = allActive(2);

  std::vector<double> First = {1.0, 1.0}; // Seeds the window.
  M.observe(First, Act);
  std::vector<double> Spike = {1.0, 3.0}; // EWMA: {1.0, 2.0}.
  M.observe(Spike, Act);
  EXPECT_DOUBLE_EQ(M.imbalance(), 0.5);
}

TEST(Monitor, HysteresisDisarmsUntilClearedThenBaselineAdapts) {
  MonitorConfig Cfg;
  Cfg.TriggerThreshold = 0.3;
  Cfg.ClearThreshold = 0.1;
  ImbalanceMonitor M(Cfg);
  std::vector<std::uint8_t> Act = allActive(2);
  std::vector<double> Skewed = {1.0, 2.0}; // Imbalance 0.5.

  EXPECT_TRUE(M.observe(Skewed, Act));
  M.notifyRebalanced(); // Adopted: the episode opens, monitor disarms.
  EXPECT_FALSE(M.armed());

  // The platform's granularity floor keeps the imbalance at 0.5 no
  // matter what the episode does: the first round is hysteresis-
  // suppressed, the second closes the episode via the stall rule and
  // adopts 0.5 as the new baseline instead of firing forever.
  EXPECT_FALSE(M.observe(Skewed, Act));
  EXPECT_EQ(M.counters().HysteresisSuppressed, 1u);
  EXPECT_FALSE(M.observe(Skewed, Act));
  EXPECT_TRUE(M.armed());
  EXPECT_DOUBLE_EQ(M.baseline(), 0.5);
  EXPECT_EQ(M.counters().Triggers, 1u);

  // Holding at the floor never re-fires ...
  EXPECT_FALSE(M.observe(Skewed, Act));
  // ... but a genuine new drift above the adapted baseline does.
  std::vector<double> Worse = {1.0, 10.0}; // Imbalance 0.9 > 0.5 + 0.3.
  EXPECT_TRUE(M.observe(Worse, Act));
  EXPECT_EQ(M.counters().Triggers, 2u);
}

TEST(Monitor, ClearedEpisodeRearmsAndKeepsZeroBaseline) {
  MonitorConfig Cfg;
  Cfg.TriggerThreshold = 0.3;
  Cfg.ClearThreshold = 0.1;
  ImbalanceMonitor M(Cfg);
  std::vector<std::uint8_t> Act = allActive(2);
  std::vector<double> Skewed = {1.0, 2.0};
  std::vector<double> Balanced = {1.0, 1.0};

  EXPECT_TRUE(M.observe(Skewed, Act));
  M.notifyRebalanced();
  // The rebalance worked: the imbalance clears, the episode closes, and
  // the baseline stays at the achieved (near-zero) level.
  EXPECT_FALSE(M.observe(Balanced, Act));
  EXPECT_TRUE(M.armed());
  EXPECT_DOUBLE_EQ(M.baseline(), 0.0);
}

TEST(Monitor, SpontaneousImprovementLowersBaseline) {
  MonitorConfig Cfg;
  Cfg.TriggerThreshold = 0.3;
  ImbalanceMonitor M(Cfg);
  std::vector<std::uint8_t> Act = allActive(2);
  std::vector<double> Skewed = {1.0, 2.0};
  std::vector<double> Recovered = {1.0, 1.25};

  // Reach a 0.5 baseline through a stalled episode.
  EXPECT_TRUE(M.observe(Skewed, Act));
  M.notifyRebalanced();
  M.observe(Skewed, Act);
  M.observe(Skewed, Act);
  ASSERT_DOUBLE_EQ(M.baseline(), 0.5);

  // The workload later balances itself out (drift recovered): the
  // baseline follows down, so the next drift is judged from the better
  // level.
  M.observe(Recovered, Act); // Imbalance 0.2.
  EXPECT_DOUBLE_EQ(M.baseline(), 0.2);
}

TEST(Monitor, InactiveRanksStayOutOfTheWindow) {
  MonitorConfig Cfg;
  Cfg.TriggerThreshold = 0.3;
  ImbalanceMonitor M(Cfg);

  // A failed rank's near-zero time must not read as imbalance.
  std::vector<double> T = {1.0, 1.0, 0.0};
  std::vector<std::uint8_t> Act = {1, 1, 0};
  EXPECT_FALSE(M.observe(T, Act));
  EXPECT_DOUBLE_EQ(M.imbalance(), 0.0);

  // The rank joins the window when it becomes active again.
  T = {1.0, 1.0, 2.0};
  Act = {1, 1, 1};
  EXPECT_TRUE(M.observe(T, Act));
  EXPECT_DOUBLE_EQ(M.imbalance(), 0.5);
}

//===----------------------------------------------------------------------===//
// Monitor property net: 200 random drift scenarios
//===----------------------------------------------------------------------===//

namespace {

/// One recorded monitor scenario: per-round times/masks plus the
/// adoption coin consumed at each trigger, so a replay can reproduce the
/// exact shouldSolve/noteOutcome conversation.
struct MonitorScenario {
  MonitorConfig Cfg;
  std::vector<std::vector<double>> Times;
  std::vector<std::vector<std::uint8_t>> Active;
  std::vector<std::uint8_t> AdoptCoin; // One pre-drawn coin per round.
};

std::vector<int> driveMonitor(ImbalanceMonitor &M,
                              const MonitorScenario &S) {
  std::vector<int> TriggerRounds;
  for (std::size_t R = 0; R < S.Times.size(); ++R) {
    bool Triggered = M.observe(S.Times[R], S.Active[R]);
    if (Triggered) {
      TriggerRounds.push_back(static_cast<int>(R));
      // A trigger can only fire while armed (hysteresis property).
      EXPECT_TRUE(M.armed()) << "disarmed trigger at round " << R;
      if (S.AdoptCoin[R])
        M.notifyRebalanced();
    }
  }
  return TriggerRounds;
}

} // namespace

TEST(MonitorProperty, NeverDoubleFiresAndReplaysExactly) {
  std::mt19937 Rng(20260807u);
  std::uniform_real_distribution<double> U01(0.0, 1.0);

  for (int Case = 0; Case < 200; ++Case) {
    MonitorScenario S;
    S.Cfg.TriggerThreshold = 0.05 + 0.4 * U01(Rng);
    S.Cfg.ClearThreshold = S.Cfg.TriggerThreshold * U01(Rng);
    S.Cfg.Cooldown = static_cast<int>(Rng() % 5);
    S.Cfg.MinBreaches = 1 + static_cast<int>(Rng() % 3);
    S.Cfg.EwmaAlpha = 0.3 + 0.7 * U01(Rng);

    const int P = 2 + static_cast<int>(Rng() % 6);
    const int Rounds = 40 + static_cast<int>(Rng() % 40);

    // Random heterogeneous base times, multiplicative noise, and one or
    // two drift events (a rank slows down by 1.5-4x, maybe recovers).
    std::vector<double> Base(P);
    for (double &B : Base)
      B = 0.5 + 1.5 * U01(Rng);
    struct Drift {
      int Round, Rank;
      double Factor;
    };
    std::vector<Drift> Drifts;
    int NumDrifts = 1 + static_cast<int>(Rng() % 2);
    for (int D = 0; D < NumDrifts; ++D) {
      Drift E;
      E.Round = static_cast<int>(Rng() % static_cast<unsigned>(Rounds));
      E.Rank = static_cast<int>(Rng() % static_cast<unsigned>(P));
      E.Factor = 1.5 + 2.5 * U01(Rng);
      Drifts.push_back(E);
    }
    // Roughly a third of the cases mask one rank out for a window.
    int MaskedRank = -1, MaskLo = 0, MaskHi = 0;
    if (Rng() % 3 == 0) {
      MaskedRank = static_cast<int>(Rng() % static_cast<unsigned>(P));
      MaskLo = static_cast<int>(Rng() % static_cast<unsigned>(Rounds));
      MaskHi = MaskLo + 1 + static_cast<int>(Rng() % 10);
    }

    for (int R = 0; R < Rounds; ++R) {
      std::vector<double> T(Base);
      for (const Drift &E : Drifts)
        if (R >= E.Round)
          T[static_cast<std::size_t>(E.Rank)] *= E.Factor;
      for (double &V : T)
        V *= 1.0 + 0.05 * (U01(Rng) - 0.5);
      std::vector<std::uint8_t> Act(static_cast<std::size_t>(P), 1);
      if (MaskedRank >= 0 && R >= MaskLo && R < MaskHi)
        Act[static_cast<std::size_t>(MaskedRank)] = 0;
      S.Times.push_back(std::move(T));
      S.Active.push_back(std::move(Act));
      S.AdoptCoin.push_back(static_cast<std::uint8_t>(Rng() % 2));
    }

    ImbalanceMonitor M(S.Cfg);
    std::vector<int> Triggers = driveMonitor(M, S);

    // No two triggers within the cooldown window, ever.
    for (std::size_t I = 1; I < Triggers.size(); ++I)
      EXPECT_GT(Triggers[I] - Triggers[I - 1], S.Cfg.Cooldown)
          << "case " << Case << ": triggers at rounds " << Triggers[I - 1]
          << " and " << Triggers[I] << " inside a cooldown of "
          << S.Cfg.Cooldown;

    // Counter consistency.
    EXPECT_EQ(M.counters().Rounds, static_cast<std::uint64_t>(Rounds));
    EXPECT_EQ(M.counters().Triggers, Triggers.size());
    EXPECT_GE(M.counters().Breaches,
              M.counters().Triggers + M.counters().CooldownSuppressed +
                  M.counters().HysteresisSuppressed);

    // The automaton is pure: replaying the recorded series through a
    // fresh instance reproduces the trigger rounds exactly.
    ImbalanceMonitor Replay(S.Cfg);
    EXPECT_EQ(driveMonitor(Replay, S), Triggers) << "case " << Case;
  }
}

//===----------------------------------------------------------------------===//
// CostArbiter pricing
//===----------------------------------------------------------------------===//

TEST(Arbiter, PricesMinimalMigrationAndApprovesAmortizingMoves) {
  ArbiterConfig Cfg;
  Cfg.BytesPerUnit = 8.0;
  Cfg.HorizonRounds = 10;
  CostArbiter A(Cfg);

  Dist Cur = Dist::even(100, 2); // 50 / 50.
  Dist Cand = Cur;
  Cand.Parts[0].Units = 70;
  Cand.Parts[1].Units = 30;
  std::vector<double> T = {1.0, 3.0}; // Rank 1 is the bottleneck.
  std::vector<std::uint8_t> Act = allActive(2);

  RebalanceQuote Q = A.quote(Cur, Cand, T, Act);
  EXPECT_EQ(Q.MovedUnits, 20);
  EXPECT_EQ(Q.MigrationBytes, 160ull);
  EXPECT_DOUBLE_EQ(Q.CurrentRoundSeconds, 3.0);
  // Rates 1/50 and 3/50 scaled to 70 and 30 units: max(1.4, 1.8).
  EXPECT_NEAR(Q.CandidateRoundSeconds, 1.8, 1e-12);
  EXPECT_NEAR(Q.SavingsPerRound, 1.2, 1e-12);
  EXPECT_TRUE(Q.Approved);
  EXPECT_EQ(A.counters().Approvals, 1u);
  EXPECT_EQ(A.counters().ApprovedBytes, 160ull);
}

TEST(Arbiter, VetoesWhenMigrationDwarfsTheSaving) {
  ArbiterConfig Cfg;
  Cfg.BytesPerUnit = 8.0;
  Cfg.HorizonRounds = 10;
  // A dreadful link: one second per message and per byte.
  Cfg.Link = LinkCost{/*Latency=*/1.0, /*BytePeriod=*/1.0};
  CostArbiter A(Cfg);

  Dist Cur = Dist::even(100, 2);
  Dist Cand = Cur;
  Cand.Parts[0].Units = 70;
  Cand.Parts[1].Units = 30;
  std::vector<double> T = {1.0, 3.0};
  std::vector<std::uint8_t> Act = allActive(2);

  RebalanceQuote Q = A.quote(Cur, Cand, T, Act);
  EXPECT_GT(Q.SavingsPerRound, 0.0);
  EXPECT_LT(Q.NetBenefit, 0.0);
  EXPECT_FALSE(Q.Approved);
  EXPECT_EQ(A.counters().Vetoes, 1u);
}

TEST(Arbiter, RelativeSavingFloorVetoesNoiseChurn) {
  // On a fast network any positive saving amortizes, so the relative
  // floor is what stops the arbiter from degenerating into every-round
  // balancing. An 8% projected saving clears net benefit but not a 30%
  // floor; the identical quote passes once the floor is dropped.
  ArbiterConfig Strict;
  Strict.BytesPerUnit = 8.0;
  Strict.HorizonRounds = 10;
  Strict.MinRelativeSaving = 0.3;
  ArbiterConfig Lax = Strict;
  Lax.MinRelativeSaving = 0.0;

  Dist Cur = Dist::even(100, 2);
  Dist Cand = Cur;
  Cand.Parts[0].Units = 54;
  Cand.Parts[1].Units = 46;
  std::vector<double> T = {1.0, 1.2};
  std::vector<std::uint8_t> Act = allActive(2);

  RebalanceQuote QStrict = CostArbiter(Strict).quote(Cur, Cand, T, Act);
  EXPECT_GT(QStrict.NetBenefit, 0.0);
  EXPECT_FALSE(QStrict.Approved);

  RebalanceQuote QLax = CostArbiter(Lax).quote(Cur, Cand, T, Act);
  EXPECT_TRUE(QLax.Approved);
}

TEST(Arbiter, InactiveRanksContributeNeitherRateNorRoundTime) {
  ArbiterConfig Cfg;
  CostArbiter A(Cfg);

  Dist Cur = Dist::even(90, 3);
  Dist Cand = Cur;
  std::vector<double> T = {1.0, 3.0, 100.0}; // Rank 2 excluded.
  std::vector<std::uint8_t> Act = {1, 1, 0};

  RebalanceQuote Q = A.quote(Cur, Cand, T, Act);
  EXPECT_DOUBLE_EQ(Q.CurrentRoundSeconds, 3.0);
}

TEST(Arbiter, IdleRankProjectsTheMeanRateNotAFreeShare) {
  ArbiterConfig Cfg;
  CostArbiter A(Cfg);

  // Rank 1 holds no units, so it has no measured rate; giving it half
  // the domain must be priced at the mean active rate, not at zero.
  Dist Cur;
  Cur.Total = 100;
  Cur.Parts.resize(2);
  Cur.Parts[0].Units = 100;
  Cur.Parts[1].Units = 0;
  Dist Cand = Cur;
  Cand.Parts[0].Units = 50;
  Cand.Parts[1].Units = 50;
  std::vector<double> T = {2.0, 0.0};
  std::vector<std::uint8_t> Act = allActive(2);

  RebalanceQuote Q = A.quote(Cur, Cand, T, Act);
  EXPECT_NEAR(Q.CandidateRoundSeconds, 1.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Config validation and policy construction
//===----------------------------------------------------------------------===//

TEST(EqualizeConfigTest, ValidationNamesTheOffendingKnob) {
  EqualizeConfig Good;
  Good.Policy = "threshold";
  ASSERT_TRUE(validateConfig(Good).ok());

  struct BadKnob {
    const char *Expect;
    void (*Mutate)(EqualizeConfig &);
  };
  const BadKnob Bad[] = {
      {"period", [](EqualizeConfig &C) { C.Period = 0; }},
      {"imbalance threshold",
       [](EqualizeConfig &C) { C.Monitor.TriggerThreshold = -0.1; }},
      {"clear threshold",
       [](EqualizeConfig &C) { C.Monitor.ClearThreshold = -0.5; }},
      {"cooldown", [](EqualizeConfig &C) { C.Monitor.Cooldown = -1; }},
      {"breach", [](EqualizeConfig &C) { C.Monitor.MinBreaches = 0; }},
      {"EWMA", [](EqualizeConfig &C) { C.Monitor.EwmaAlpha = 0.0; }},
      {"EWMA", [](EqualizeConfig &C) { C.Monitor.EwmaAlpha = 1.5; }},
      {"bytes per unit",
       [](EqualizeConfig &C) { C.Arbiter.BytesPerUnit = -1.0; }},
      {"horizon", [](EqualizeConfig &C) { C.Arbiter.HorizonRounds = -1; }},
      {"relative saving",
       [](EqualizeConfig &C) { C.Arbiter.MinRelativeSaving = -0.1; }},
      {"relative saving",
       [](EqualizeConfig &C) { C.Arbiter.MinRelativeSaving = 1.0; }},
  };
  for (const BadKnob &B : Bad) {
    EqualizeConfig C = Good;
    B.Mutate(C);
    Status S = validateConfig(C);
    ASSERT_FALSE(S.ok()) << B.Expect;
    EXPECT_NE(S.error().find(B.Expect), std::string::npos)
        << "'" << S.error() << "' does not name '" << B.Expect << "'";
  }
}

TEST(EqualizeConfigTest, MakeEqualizerResolvesTheRegistry) {
  EqualizeConfig Cfg;
  ASSERT_FALSE(makeEqualizer(Cfg).ok()) << "empty policy must fail";

  Cfg.Policy = "warp";
  auto Unknown = makeEqualizer(Cfg);
  ASSERT_FALSE(Unknown.ok());
  EXPECT_NE(Unknown.error().find("warp"), std::string::npos);
  EXPECT_NE(Unknown.error().find("threshold"), std::string::npos)
      << "diagnostic should list the registered policies: "
      << Unknown.error();

  // All four registered policies construct; introspection matches.
  for (const char *Name : {"off", "every", "threshold", "arbitrated"}) {
    Cfg.Policy = Name;
    auto R = makeEqualizer(Cfg);
    ASSERT_TRUE(R.ok()) << Name << ": " << R.error();
    const Equalizer &E = *R.value();
    EXPECT_EQ(E.monitor() != nullptr, std::string(Name) == "threshold");
    EXPECT_EQ(E.arbiter() != nullptr, std::string(Name) == "arbitrated");
  }
}

TEST(EqualizeConfigTest, SpecRoundTripCarriesEveryKnob) {
  EqualizeSpec Spec;
  Spec.Policy = "threshold";
  Spec.TriggerThreshold = 0.35;
  Spec.ClearThreshold = 0.12;
  Spec.Cooldown = 4;
  Spec.MinBreaches = 3;
  Spec.EwmaAlpha = 0.7;
  Spec.Period = 5;
  Spec.HorizonRounds = 17;

  auto Cfg = configFromSpec(Spec);
  ASSERT_TRUE(Cfg.ok()) << Cfg.error();
  EXPECT_EQ(Cfg.value().Policy, "threshold");
  EXPECT_DOUBLE_EQ(Cfg.value().Monitor.TriggerThreshold, 0.35);
  EXPECT_DOUBLE_EQ(Cfg.value().Monitor.ClearThreshold, 0.12);
  EXPECT_EQ(Cfg.value().Monitor.Cooldown, 4);
  EXPECT_EQ(Cfg.value().Monitor.MinBreaches, 3);
  EXPECT_DOUBLE_EQ(Cfg.value().Monitor.EwmaAlpha, 0.7);
  EXPECT_EQ(Cfg.value().Period, 5);
  EXPECT_EQ(Cfg.value().Arbiter.HorizonRounds, 17);
}

//===----------------------------------------------------------------------===//
// End-to-end policy properties over small drifting SPMD runs
//===----------------------------------------------------------------------===//

namespace {

struct PolicyOutcome {
  std::uint64_t Hash = 0;
  unsigned long long RedistBytes = 0;
  EqualizeStats Stats;
};

/// One synthetic iterative loop under \p Cl with policy \p Cfg: the
/// equalize-bench workload shrunk to test size.
PolicyOutcome runPolicy(const Cluster &Cl, const EqualizeConfig &Cfg,
                     std::int64_t Total, int Width, int Rounds) {
  int P = Cl.size();
  PolicyOutcome Out;

  SpmdResult R = runSpmd(
      P,
      [&](Comm &C) {
        int Me = C.rank();
        SimDevice Dev = Cl.makeDevice(Me);
        engine::BalancedLoop Loop(findPartitioner("geometric"), "piecewise",
                                  Total, P, /*StalenessDecay=*/0.5);
        auto EqR = makeEqualizer(Cfg);
        std::unique_ptr<Equalizer> Eq = std::move(EqR.value());

        dist::PartitionedVector<double> V(C, Loop.dist(), Width);
        V.generate([&](std::int64_t U, std::span<double> Row) {
          for (int W = 0; W < Width; ++W)
            Row[static_cast<std::size_t>(W)] =
                static_cast<double>(U * Width + W);
        });

        for (int Round = 0; Round < Rounds; ++Round) {
          double IterStart = C.time();
          std::int64_t MyUnits = V.units();
          bool DevFailed = false;
          if (MyUnits > 0) {
            Measurement M = Dev.measure(static_cast<double>(MyUnits));
            if (M.Status == MeasureStatus::Failed)
              DevFailed = true;
            else
              C.compute(M.Seconds);
          }
          Loop.balanceEqualized(C, IterStart, *Eq, DevFailed);
          Loop.redistributeIfChanged(V);
        }

        std::vector<double> Final =
            C.gatherv(std::span<const double>(V.local()), 0);
        if (Me == 0) {
          Out.Hash = fnv1a(Final.data(), Final.size() * sizeof(double));
          Out.Stats = Eq->stats();
        }
      },
      Cl.makeCostModel());

  EXPECT_TRUE(R.allOk());
  Out.RedistBytes = R.Comm.RedistributeBytes;
  return Out;
}

EqualizeConfig testConfigFor(const std::string &Policy, int Width,
                             const LinkCost &Link) {
  EqualizeConfig Cfg;
  Cfg.Policy = Policy;
  Cfg.Period = 1;
  Cfg.Monitor.TriggerThreshold = 0.25;
  Cfg.Monitor.ClearThreshold = 0.2;
  Cfg.Monitor.Cooldown = 2;
  Cfg.Monitor.EwmaAlpha = 0.6;
  Cfg.Arbiter.BytesPerUnit = static_cast<double>(Width) * sizeof(double);
  Cfg.Arbiter.Link = Link;
  Cfg.Arbiter.HorizonRounds = 10;
  Cfg.Arbiter.MinRelativeSaving = 0.15;
  return Cfg;
}

} // namespace

TEST(EqualizeEndToEnd, PoliciesAgreeBitwiseAndGatingNeverMovesMoreBytes) {
  // Random drifting platforms (seeded, deterministic): on each, every
  // policy must compute the bit-identical final array, and the gated
  // policies (threshold, arbitrated) must not move more redistribute
  // bytes than balancing on every round — gating can only consolidate
  // moves, never add traffic.
  std::mt19937 Rng(7u);
  std::uniform_real_distribution<double> U01(0.0, 1.0);
  const std::int64_t Total = 256;
  const int Width = 8;
  const int Rounds = 24;

  for (int Case = 0; Case < 5; ++Case) {
    const int P = 4 + 2 * (Case % 2);
    Cluster Cl = makeHeterogeneousCluster(P, /*Variant=*/1 + Case % 2);
    Cl.Seed = 100 + static_cast<std::uint64_t>(Case);
    Cl.NoiseSigma = 0.04;
    int NumEvents = 1 + static_cast<int>(Rng() % 2);
    for (int E = 0; E < NumEvents; ++E) {
      int Rank = static_cast<int>(Rng() % static_cast<unsigned>(P));
      double Busy = 0.05 + 0.15 * U01(Rng);
      double Factor = 1.5 + 2.5 * U01(Rng);
      Cl.addFault(Rank, FaultPlan::slowdown(Busy, Factor));
    }

    PolicyOutcome Off = runPolicy(Cl, testConfigFor("off", Width, Cl.Inter),
                               Total, Width, Rounds);
    PolicyOutcome Every = runPolicy(Cl, testConfigFor("every", Width, Cl.Inter),
                                 Total, Width, Rounds);
    PolicyOutcome Thresh = runPolicy(
        Cl, testConfigFor("threshold", Width, Cl.Inter), Total, Width,
        Rounds);
    PolicyOutcome Arb = runPolicy(
        Cl, testConfigFor("arbitrated", Width, Cl.Inter), Total, Width,
        Rounds);

    EXPECT_EQ(Off.Hash, Every.Hash) << "case " << Case;
    EXPECT_EQ(Off.Hash, Thresh.Hash) << "case " << Case;
    EXPECT_EQ(Off.Hash, Arb.Hash) << "case " << Case;

    EXPECT_EQ(Off.RedistBytes, 0ull) << "case " << Case;
    EXPECT_LE(Thresh.RedistBytes, Every.RedistBytes) << "case " << Case;
    EXPECT_LE(Arb.RedistBytes, Every.RedistBytes) << "case " << Case;

    // The stats the loop publishes stay consistent with the policy kind.
    EXPECT_EQ(Off.Stats.Rebalances, 0ull) << "case " << Case;
    EXPECT_EQ(Every.Stats.Rounds, static_cast<std::uint64_t>(Rounds));
    EXPECT_EQ(Thresh.Stats.Vetoes, 0ull) << "case " << Case;
  }
}

//===----------------------------------------------------------------------===//
// Repartition churn stress (the equalize-layer TSan workload)
//===----------------------------------------------------------------------===//

TEST(EqualizeStress, EveryRoundChurnKeepsDataIntact) {
  // Every-round balancing under drift repartitions nearly every round:
  // concurrent redistribute sends/receives plus the allgather of the
  // equalize step on all ranks at once. Under -DFUPERMOD_SANITIZE=thread
  // (ctest -L tsan) this is the subsystem's race detector workload; in
  // normal runs it checks that heavy churn never corrupts the array.
  const int P = 8;
  const std::int64_t Total = 384;
  const int Width = 8;
  const int Rounds = 40;

  Cluster Cl = makeHeterogeneousCluster(P, /*Variant=*/3);
  Cl.NoiseSigma = 0.1; // Strong noise maximizes repartition churn.
  Cl.addFault(1, FaultPlan::slowdown(0.05, 3.0));
  Cl.addFault(5, FaultPlan::slowdown(0.1, 2.0));
  Cl.addFault(1, FaultPlan::slowdown(0.2, 1.0 / 3.0));

  EqualizeConfig Cfg = testConfigFor("every", Width, Cl.Inter);
  PolicyOutcome Out = runPolicy(Cl, Cfg, Total, Width, Rounds);
  EXPECT_GT(Out.Stats.Rebalances, static_cast<std::uint64_t>(Rounds) / 2);

  // The gathered array must be exactly the generated sequence: churn
  // moved every value around, none may be lost or duplicated.
  std::vector<double> Expected(static_cast<std::size_t>(Total) * Width);
  for (std::size_t I = 0; I < Expected.size(); ++I)
    Expected[I] = static_cast<double>(I);
  EXPECT_EQ(Out.Hash, fnv1a(Expected.data(),
                            Expected.size() * sizeof(double)));
}
