//===-- tests/FaultInjectionTest.cpp - fault injection & degradation ------===//
//
// Deterministic coverage of the four scripted fault kinds (latency spike,
// permanent slowdown, hang, hard failure) and of the graceful-degradation
// paths they exercise: the guarded benchmark loop, rank exclusion in the
// dynamic algorithms, and the Jacobi balancer's reconvergence after a
// mid-run regime change.
//
//===----------------------------------------------------------------------===//

#include "apps/Jacobi.h"
#include "core/Dynamic.h"
#include "core/Metrics.h"
#include "core/Partitioners.h"
#include "mpp/Runtime.h"
#include "sim/Cluster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

using namespace fupermod;

namespace {

/// Noise-free 10 units/s device: measure(10) is exactly 1 s, so faulted
/// calls are exactly distinguishable.
SimDevice makeQuietDevice() {
  return SimDevice(makeConstantProfile("quiet", 10.0), /*NoiseSigma=*/0.0);
}

FaultPlan planOf(std::initializer_list<FaultEvent> Events) {
  FaultPlan Plan;
  Plan.Events = Events;
  return Plan;
}

/// A plan that hangs every one of the first \p Calls measurements —
/// enough to outlast any retry budget under test.
FaultPlan hangEverywhere(int Calls, double HangSeconds) {
  FaultPlan Plan;
  for (int I = 0; I < Calls; ++I)
    Plan.Events.push_back(FaultPlan::hang(I, HangSeconds));
  return Plan;
}

} // namespace

TEST(FaultSpike, OneShotInflatesExactlyOneCall) {
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(planOf({FaultPlan::spike(/*AfterCalls=*/2, 8.0)}));
  EXPECT_DOUBLE_EQ(Dev.measure(10.0).Seconds, 1.0);
  EXPECT_DOUBLE_EQ(Dev.measure(10.0).Seconds, 1.0);
  Measurement Spiked = Dev.measure(10.0);
  EXPECT_DOUBLE_EQ(Spiked.Seconds, 8.0);
  EXPECT_EQ(Spiked.Status, MeasureStatus::Ok); // A spike is not a hang.
  EXPECT_DOUBLE_EQ(Dev.measure(10.0).Seconds, 1.0); // One-shot.
}

TEST(FaultSpike, PeriodicSpikesRepeat) {
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(
      planOf({FaultPlan::spike(/*AfterCalls=*/2, 8.0, /*Period=*/3)}));
  // Calls 2, 5, 8 spike; all others are clean.
  for (int Call = 0; Call < 9; ++Call) {
    double Expected = (Call >= 2 && (Call - 2) % 3 == 0) ? 8.0 : 1.0;
    EXPECT_DOUBLE_EQ(Dev.measure(10.0).Seconds, Expected) << "call " << Call;
  }
}

TEST(FaultSlowdown, PermanentFromBusyTimeTrigger) {
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(planOf({FaultPlan::slowdown(/*AfterBusyTime=*/2.5, 4.0)}));
  // 1 s per call: the trigger (busy >= 2.5 s, checked before the call)
  // first holds on call 3, and every call after it stays slow.
  for (int Call = 0; Call < 3; ++Call)
    EXPECT_DOUBLE_EQ(Dev.measure(10.0).Seconds, 1.0) << "call " << Call;
  for (int Call = 3; Call < 6; ++Call)
    EXPECT_DOUBLE_EQ(Dev.measure(10.0).Seconds, 4.0) << "call " << Call;
}

TEST(FaultHang, OneCallBlocksThenRecovers) {
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(planOf({FaultPlan::hang(/*AfterCalls=*/1, 7.0)}));
  EXPECT_EQ(Dev.measure(10.0).Status, MeasureStatus::Ok);
  Measurement Hung = Dev.measure(10.0);
  EXPECT_EQ(Hung.Status, MeasureStatus::Hung);
  EXPECT_DOUBLE_EQ(Hung.Seconds, 8.0); // Normal 1 s + 7 s stall.
  EXPECT_EQ(Dev.measure(10.0).Status, MeasureStatus::Ok);
}

TEST(FaultFail, LatchesAndProducesNoTiming) {
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(planOf({FaultPlan::fail(/*AfterCalls=*/2)}));
  EXPECT_EQ(Dev.measure(10.0).Status, MeasureStatus::Ok);
  EXPECT_EQ(Dev.measure(10.0).Status, MeasureStatus::Ok);
  EXPECT_FALSE(Dev.hardFailed());
  Measurement Dead = Dev.measure(10.0);
  EXPECT_EQ(Dead.Status, MeasureStatus::Failed);
  EXPECT_DOUBLE_EQ(Dead.Seconds, 0.0);
  EXPECT_TRUE(Dev.hardFailed());
  // The failure latches, and the legacy interface reports it as +inf.
  EXPECT_EQ(Dev.measure(10.0).Status, MeasureStatus::Failed);
  EXPECT_TRUE(std::isinf(Dev.measureTime(10.0)));
}

TEST(GuardedBenchmark, PersistentHangYieldsTimedOutPoint) {
  // Every attempt hangs for 1000 s; the guarded loop must abandon the
  // measurement after the retry budget instead of waiting the hang out.
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(hangEverywhere(/*Calls=*/8, /*HangSeconds=*/1000.0));
  SimDeviceBackend B(Dev);
  Precision Prec;
  Prec.MinReps = 3;
  Prec.MaxReps = 5;
  Prec.RepTimeout = 0.5;
  Prec.MaxRetries = 2;
  Point P = runBenchmark(B, 10.0, Prec);
  EXPECT_EQ(P.Reps, 0);
  EXPECT_TRUE(std::isinf(P.Time));
  EXPECT_EQ(P.Status, PointStatus::TimedOut);
  EXPECT_TRUE(P.deviceFault());
  // Only the retry budget's worth of calls was spent: 1 + MaxRetries.
  EXPECT_EQ(Dev.calls(), 3);
}

TEST(GuardedBenchmark, RetryRecoversFromTransientHang) {
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(planOf({FaultPlan::hang(0, 1000.0)}));
  SimDeviceBackend B(Dev);
  Precision Prec;
  Prec.MinReps = 3;
  Prec.MaxReps = 5;
  Prec.RepTimeout = 2.0;
  Prec.MaxRetries = 2;
  Point P = runBenchmark(B, 10.0, Prec);
  EXPECT_EQ(P.Status, PointStatus::Ok);
  EXPECT_EQ(P.Reps, 3);
  EXPECT_DOUBLE_EQ(P.Time, 1.0); // The hung sample was discarded.
}

TEST(GuardedBenchmark, HardFailureYieldsDeviceFailedPoint) {
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(planOf({FaultPlan::fail(0)}));
  SimDeviceBackend B(Dev);
  Point P = runBenchmark(B, 10.0, Precision());
  EXPECT_EQ(P.Reps, 0);
  EXPECT_TRUE(std::isinf(P.Time));
  EXPECT_EQ(P.Status, PointStatus::DeviceFailed);
}

TEST(GuardedBenchmark, DeathAfterMinRepsKeepsGoodSamples) {
  // Three good repetitions land before the device dies: the point is
  // still usable, so one flaky death doesn't erase real data.
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(planOf({FaultPlan::fail(3)}));
  SimDeviceBackend B(Dev);
  Precision Prec;
  Prec.MinReps = 3;
  Prec.MaxReps = 10;
  Prec.TargetRelativeError = 1e-12; // Would keep repeating if it could.
  Point P = runBenchmark(B, 10.0, Prec);
  EXPECT_EQ(P.Status, PointStatus::Ok);
  EXPECT_EQ(P.Reps, 3);
  EXPECT_DOUBLE_EQ(P.Time, 1.0);
}

TEST(GuardedBenchmark, TimeoutAndBackoffChargeBoundedVirtualTime) {
  // With a clocked backend, a hang costs exactly the timeout per attempt
  // plus the (doubling) backoff between attempts — never the hang itself.
  SimDevice Dev = makeQuietDevice();
  Dev.setFaultPlan(hangEverywhere(6, 1000.0));
  runSpmd(1, [&](Comm &C) {
    SimDeviceBackend B(Dev, &C);
    Precision Prec;
    Prec.MinReps = 3;
    Prec.MaxReps = 5;
    Prec.RepTimeout = 1.0;
    Prec.MaxRetries = 2;
    Prec.RetryBackoff = 0.5;
    Point P = runBenchmark(B, 10.0, Prec, &C);
    EXPECT_EQ(P.Status, PointStatus::TimedOut);
    // Three timed-out attempts (1 s each) + backoffs 0.5 s and 1 s.
    EXPECT_DOUBLE_EQ(C.time(), 4.5);
  });
}

TEST(Exclusion, BalanceIterateDropsFailedRankInLockstep) {
  const std::int64_t Total = 120;
  runSpmd(3, [Total](Comm &C) {
    DynamicContext Ctx(partitionConstant, "cpm", Total, 3);
    double Start = C.time();
    C.compute(1.0);
    balanceIterate(Ctx, C, Start, /*DeviceFailed=*/C.rank() == 1);
    // Every rank must agree: rank 1 is gone, survivors carry the total.
    EXPECT_TRUE(Ctx.isExcluded(1));
    EXPECT_FALSE(Ctx.isExcluded(0));
    EXPECT_FALSE(Ctx.isExcluded(2));
    EXPECT_EQ(Ctx.activeCount(), 2);
    EXPECT_EQ(Ctx.exclusionReason(1), "device reported hard failure");
    EXPECT_EQ(Ctx.dist().Parts[1].Units, 0);
    EXPECT_EQ(Ctx.dist().sum(), Total);
    EXPECT_GT(Ctx.dist().Parts[0].Units, 0);
    EXPECT_GT(Ctx.dist().Parts[2].Units, 0);
  });
}

TEST(Exclusion, PartitionIterateExcludesHardFailedBackend) {
  // Rank 2's device is dead from the first call: dynamic partitioning
  // must exclude it and converge to a 2-rank distribution of the full
  // total, rather than diverging or deadlocking.
  Cluster Cl;
  Cl.Devices = {makeConstantProfile("fast", 40.0),
                makeConstantProfile("slow", 20.0),
                makeConstantProfile("dead", 20.0)};
  Cl.NodeOfRank = {0, 0, 0};
  Cl.NoiseSigma = 0.01;
  Cl.addFault(2, FaultPlan::fail(0));
  const std::int64_t Total = 600;

  runSpmd(3,
          [&](Comm &C) {
            SimDevice Dev = Cl.makeDevice(C.rank());
            SimDeviceBackend Backend(Dev, &C);
            DynamicContext Ctx(partitionGeometric, "piecewise", Total, 3);
            Precision Prec;
            Prec.MinReps = 3;
            Prec.MaxReps = 5;
            Prec.TargetRelativeError = 0.1;
            runDynamicPartitioning(Ctx, C, Backend, Prec, /*Eps=*/0.02,
                                   /*MaxIterations=*/15);
            EXPECT_TRUE(Ctx.isExcluded(2));
            EXPECT_EQ(Ctx.dist().Parts[2].Units, 0);
            EXPECT_EQ(Ctx.dist().sum(), Total);
            // Speeds 40 vs 20: the fast survivor carries more.
            EXPECT_GT(Ctx.dist().Parts[0].Units,
                      Ctx.dist().Parts[1].Units);
          },
          Cl.makeCostModel());
}

TEST(Exclusion, StalenessDecayForgetsOldRegime) {
  // With decay, points from rounds long past fall below the retention
  // threshold and are dropped; without it the model keeps everything.
  DynamicContext Decayed(partitionGeometric, "piecewise", 100, 2);
  Decayed.setStalenessDecay(0.5);
  DynamicContext Forever(partitionGeometric, "piecewise", 100, 2);

  auto Round = [](DynamicContext &Ctx, int R) {
    Point P;
    P.Units = 10.0 * (R + 1);
    P.Time = P.Units / 10.0;
    P.Reps = 1;
    std::vector<Point> Both = {P, P};
    Ctx.updateAllAndRepartition(Both);
  };
  for (int R = 0; R < 5; ++R) {
    Round(Decayed, R);
    Round(Forever, R);
  }
  EXPECT_EQ(Forever.model(0).points().size(), 5u);
  EXPECT_LE(Decayed.model(0).points().size(), 3u);
  // The newest point always survives at full weight.
  EXPECT_DOUBLE_EQ(Decayed.model(0).weights().back(), 1.0);
}

TEST(JacobiFault, ReconvergesAfterMidRunSlowdown) {
  // Acceptance scenario: the GPU slows down 4x mid-run; with staleness
  // decay the balancer must return below 5% imbalance by the end.
  Cluster Cl = makeHclLikeCluster(/*WithGpu=*/true);
  Cl.NoiseSigma = 0.005;
  FaultEvent Slowdown;
  Slowdown.Kind = FaultKind::Slowdown;
  Slowdown.AfterCalls = 5; // One device call per Jacobi iteration.
  Slowdown.Factor = 4.0;
  int Gpu = Cl.size() - 1;
  Cl.addFault(Gpu, Slowdown);

  JacobiOptions O;
  O.N = 800;
  O.MaxIterations = 20;
  O.Tolerance = -1.0; // Never converges: run all iterations.
  O.Balance = true;
  O.StalenessDecay = 0.5;
  JacobiReport R = runJacobi(Cl, O);

  ASSERT_EQ(static_cast<int>(R.Iterations.size()), O.MaxIterations);
  // The fault bites at iteration 6 (0-based call 5) and shows as a spike
  // in imbalance...
  double Peak = 0.0;
  for (std::size_t It = 5; It < R.Iterations.size(); ++It)
    Peak = std::max(Peak, imbalance(R.Iterations[It].ComputeTimes));
  EXPECT_GT(Peak, 0.3);
  // ...and the balancer works it back off.
  EXPECT_LE(imbalance(R.Iterations.back().ComputeTimes), 0.05);
  EXPECT_TRUE(R.FailedRanks.empty()); // Slow is degraded, not dead.
  // Every iteration keeps all N rows assigned.
  for (const JacobiIteration &It : R.Iterations)
    EXPECT_EQ(std::accumulate(It.Rows.begin(), It.Rows.end(),
                              std::int64_t{0}),
              static_cast<std::int64_t>(O.N));
}

TEST(JacobiFault, HardFailedRankIsExcludedAndRunCompletes) {
  Cluster Cl = makeHclLikeCluster(/*WithGpu=*/false);
  Cl.NoiseSigma = 0.005;
  Cl.addFault(1, FaultPlan::fail(/*AfterCalls=*/3));

  JacobiOptions O;
  O.N = 400;
  O.MaxIterations = 12;
  O.Tolerance = -1.0;
  O.Balance = true;
  JacobiReport R = runJacobi(Cl, O);

  ASSERT_EQ(R.FailedRanks, std::vector<int>{1});
  // After the failure is noticed, rank 1 holds no rows and reports no
  // compute time, while the survivors carry all N rows.
  const JacobiIteration &Last = R.Iterations.back();
  EXPECT_EQ(Last.Rows[1], 0);
  EXPECT_DOUBLE_EQ(Last.ComputeTimes[1], 0.0);
  EXPECT_EQ(std::accumulate(Last.Rows.begin(), Last.Rows.end(),
                            std::int64_t{0}),
            static_cast<std::int64_t>(O.N));
  // The numerics survive the exclusion: the run still solves the system.
  EXPECT_LT(R.Residual, 1e-6);
}
