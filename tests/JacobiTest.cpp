//===-- tests/JacobiTest.cpp - Jacobi application tests -------------------===//

#include "apps/Jacobi.h"

#include "core/Metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

using namespace fupermod;

namespace {

JacobiOptions smallOptions() {
  JacobiOptions O;
  O.N = 96;
  O.MaxIterations = 40;
  O.Tolerance = 1e-9;
  O.Balance = false;
  return O;
}

} // namespace

TEST(JacobiSystem, DiagonallyDominant) {
  const int N = 50;
  for (int Row = 0; Row < N; ++Row) {
    double OffSum = 0.0;
    for (int Col = 0; Col < N; ++Col)
      if (Col != Row)
        OffSum += std::fabs(jacobiMatrixEntry(N, Row, Col));
    EXPECT_GT(std::fabs(jacobiMatrixEntry(N, Row, Row)), OffSum)
        << "row " << Row;
  }
}

TEST(JacobiSystem, EntriesAreDeterministic) {
  EXPECT_DOUBLE_EQ(jacobiMatrixEntry(64, 3, 7), jacobiMatrixEntry(64, 3, 7));
  EXPECT_DOUBLE_EQ(jacobiRhsEntry(64, 5), jacobiRhsEntry(64, 5));
}

TEST(Jacobi, ConvergesWithoutBalancing) {
  Cluster Cl = makeUniformCluster(3, 100.0);
  Cl.NoiseSigma = 0.0;
  JacobiReport R = runJacobi(Cl, smallOptions());
  EXPECT_TRUE(R.Converged);
  EXPECT_LT(R.Residual, 1e-6);
  EXPECT_FALSE(R.Iterations.empty());
  // Distribution never moved.
  for (const JacobiIteration &It : R.Iterations)
    EXPECT_EQ(It.Rows[0], 32);
}

TEST(Jacobi, ConvergesWithBalancing) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  JacobiOptions O = smallOptions();
  O.Balance = true;
  JacobiReport R = runJacobi(Cl, O);
  EXPECT_TRUE(R.Converged);
  EXPECT_LT(R.Residual, 1e-6);
}

TEST(Jacobi, SameSolutionWithAndWithoutBalancing) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.0;
  JacobiOptions O = smallOptions();
  JacobiReport Plain = runJacobi(Cl, O);
  O.Balance = true;
  JacobiReport Balanced = runJacobi(Cl, O);
  ASSERT_EQ(Plain.Solution.size(), Balanced.Solution.size());
  for (std::size_t I = 0; I < Plain.Solution.size(); ++I)
    EXPECT_NEAR(Plain.Solution[I], Balanced.Solution[I], 1e-8);
}

TEST(Jacobi, BalancingMovesRowsAwayFromSlowDevices) {
  Cluster Cl = makeUniformCluster(2, 100.0);
  Cl.Devices[1] = makeConstantProfile("slow", 25.0); // 4x slower.
  Cl.NoiseSigma = 0.0;
  JacobiOptions O = smallOptions();
  O.N = 100;
  O.Balance = true;
  JacobiReport R = runJacobi(Cl, O);
  ASSERT_GE(R.Iterations.size(), 3u);
  // Starts even.
  EXPECT_EQ(R.Iterations.front().Rows[0], 50);
  // Converges to the 4:1 split.
  EXPECT_NEAR(static_cast<double>(R.Iterations.back().Rows[0]), 80.0, 5.0);
}

TEST(Jacobi, BalancingReducesPerIterationImbalance) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  JacobiOptions O = smallOptions();
  O.N = 240;
  O.Balance = true;
  O.MaxIterations = 12;
  O.Tolerance = 0.0; // Run all iterations.
  JacobiReport R = runJacobi(Cl, O);
  ASSERT_GE(R.Iterations.size(), 6u);
  double First = imbalance(R.Iterations.front().ComputeTimes);
  double Last = imbalance(R.Iterations.back().ComputeTimes);
  EXPECT_LT(Last, 0.6 * First);
}

TEST(Jacobi, BalancingBeatsEvenDistributionOnMakespan) {
  Cluster Cl = makeUniformCluster(2, 100.0);
  Cl.Devices[1] = makeConstantProfile("slow", 20.0);
  Cl.NoiseSigma = 0.0;
  JacobiOptions O = smallOptions();
  O.N = 120;
  O.MaxIterations = 15;
  O.Tolerance = 0.0;
  JacobiReport Even = runJacobi(Cl, O);
  O.Balance = true;
  JacobiReport Balanced = runJacobi(Cl, O);
  EXPECT_LT(Balanced.Makespan, 0.8 * Even.Makespan);
}

TEST(Jacobi, RowCountsAlwaysSumToN) {
  Cluster Cl = makeHclLikeCluster(false);
  JacobiOptions O = smallOptions();
  O.N = 150;
  O.Balance = true;
  JacobiReport R = runJacobi(Cl, O);
  for (const JacobiIteration &It : R.Iterations) {
    std::int64_t Sum = 0;
    for (std::int64_t Rows : It.Rows)
      Sum += Rows;
    EXPECT_EQ(Sum, 150);
  }
}

TEST(Jacobi, DeterministicAcrossRuns) {
  Cluster Cl = makeHclLikeCluster(false);
  JacobiOptions O = smallOptions();
  O.Balance = true;
  JacobiReport A = runJacobi(Cl, O);
  JacobiReport B = runJacobi(Cl, O);
  EXPECT_DOUBLE_EQ(A.Makespan, B.Makespan);
  ASSERT_EQ(A.Iterations.size(), B.Iterations.size());
  for (std::size_t I = 0; I < A.Iterations.size(); ++I)
    EXPECT_EQ(A.Iterations[I].Rows, B.Iterations[I].Rows);
}

TEST(Jacobi, ThresholdSuppressesMarginalRebalancing) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  JacobiOptions O = smallOptions();
  O.N = 240;
  O.Balance = true;
  O.MaxIterations = 12;
  O.Tolerance = 0.0;

  JacobiReport Always = runJacobi(Cl, O);
  O.RebalanceThreshold = 0.15;
  JacobiReport Thresholded = runJacobi(Cl, O);

  // Always-on balances every iteration; the threshold stops once the
  // imbalance drops below 15%.
  EXPECT_EQ(Always.Rebalances, 12);
  EXPECT_LT(Thresholded.Rebalances, 12);
  EXPECT_GE(Thresholded.Rebalances, 1);
  // Quality stays comparable: both end clearly better balanced than the
  // even start.
  double ImbT = imbalance(Thresholded.Iterations.back().ComputeTimes);
  EXPECT_LT(ImbT, 0.5 * imbalance(Thresholded.Iterations.front().ComputeTimes));
}

TEST(Jacobi, HugeThresholdMeansNoRedistribution) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.0;
  JacobiOptions O = smallOptions();
  O.Balance = true;
  O.RebalanceThreshold = 0.99;
  JacobiReport R = runJacobi(Cl, O);
  EXPECT_EQ(R.Rebalances, 0);
  for (const JacobiIteration &It : R.Iterations)
    EXPECT_EQ(It.Rows[0], It.Rows[1]); // Still the even distribution.
}

namespace {

std::uint64_t fnv1a(std::uint64_t H, const void *Data, std::size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (std::size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

std::uint64_t reportHash(const JacobiReport &R) {
  std::uint64_t H = 1469598103934665603ull;
  H = fnv1a(H, R.Solution.data(), R.Solution.size() * sizeof(double));
  return fnv1a(H, &R.Makespan, sizeof(double));
}

} // namespace

// Bit-exact regression pins, captured from the pre-container Jacobi: the
// PartitionedVector rewrite must reproduce the hand-rolled app's solution
// AND virtual-time trace (the hash folds the Makespan bits in). Any
// change to message sizes, counts, or ordering moves these values.
TEST(JacobiRegression, StaticRunBitIdenticalToPreContainerApp) {
  Cluster Cl = makeUniformCluster(3, 100.0);
  Cl.NoiseSigma = 0.0;
  JacobiReport R = runJacobi(Cl, smallOptions());
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(reportHash(R), 18116180524780898970ull);
}

TEST(JacobiRegression, BalancedRunBitIdenticalToPreContainerApp) {
  Cluster Cl = makeHclLikeCluster(false);
  Cl.NoiseSigma = 0.01;
  JacobiOptions O = smallOptions();
  O.Balance = true;
  JacobiReport R = runJacobi(Cl, O);
  ASSERT_TRUE(R.Converged);
  EXPECT_EQ(R.Rebalances, 6);
  EXPECT_EQ(reportHash(R), 7772390316824469943ull);
}
