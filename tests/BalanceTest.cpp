//===-- tests/BalanceTest.cpp - BalancedLoop epoch gating -----------------===//
//
// The tripwire of the engine/container contract: BalancedLoop's dist
// epoch must tick exactly when a balance step changed per-rank unit
// counts, and redistributeIfChanged() must fire a container migration
// exactly once per tick — never when the partition is unchanged, never
// twice for the same change.
//
//===----------------------------------------------------------------------===//

#include "engine/Balance.h"

#include "dist/PartitionedVector.h"
#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <vector>

using namespace fupermod;
using namespace fupermod::engine;

namespace {

/// A partitioner that ignores the models and replays a fixed schedule of
/// unit vectors, one per invocation (the last entry repeats).
Partitioner scriptedPartitioner(
    std::vector<std::vector<std::int64_t>> Script) {
  auto Call = std::make_shared<std::size_t>(0);
  return [Script = std::move(Script), Call](
             std::int64_t Total, std::span<Model *const>, Dist &Out) {
    const std::vector<std::int64_t> &Units =
        Script[std::min(*Call, Script.size() - 1)];
    ++*Call;
    Out = Dist();
    for (std::int64_t U : Units) {
      Part P;
      P.Units = U;
      Out.Parts.push_back(P);
      Out.Total += U;
    }
    EXPECT_EQ(Out.Total, Total);
    return true;
  };
}

/// Counts redistribute() calls — the duck-typed container stand-in.
struct MockContainer {
  std::uint64_t Synced = 0;
  int Calls = 0;
  std::vector<std::int64_t> LastUnits;

  std::uint64_t syncedEpoch() const { return Synced; }
  void setSyncedEpoch(std::uint64_t E) { Synced = E; }
  void redistribute(const Dist &D) {
    ++Calls;
    LastUnits.clear();
    for (const Part &P : D.Parts)
      LastUnits.push_back(P.Units);
  }
};

} // namespace

TEST(BalancedLoop, EpochTicksOnlyWhenUnitsChange) {
  // Schedule: unchanged, change, repeat, change, repeat, change.
  std::vector<std::vector<std::int64_t>> Script = {
      {5, 5}, {7, 3}, {7, 3}, {2, 8}, {2, 8}, {5, 5}};
  std::vector<std::uint64_t> Epochs;
  SpmdResult R = runSpmd(2, [&](Comm &C) {
    BalancedLoop Loop(scriptedPartitioner(Script), "cpm", 10, 2);
    EXPECT_EQ(Loop.distEpoch(), 0u);
    BalancePolicy Policy; // Threshold 0: the balancer runs every call.
    for (std::size_t It = 0; It < Script.size(); ++It) {
      double Start = C.time();
      C.compute(0.01 * (C.rank() + 1));
      EXPECT_TRUE(Loop.balance(C, Start, Policy));
      if (C.rank() == 0)
        Epochs.push_back(Loop.distEpoch());
    }
  });
  ASSERT_TRUE(R.allOk());
  // {5,5} matches the initial even split -> no tick; each genuine change
  // ticks once; repeats never tick.
  EXPECT_EQ(Epochs, (std::vector<std::uint64_t>{0, 1, 1, 2, 2, 3}));
}

TEST(BalancedLoop, RedistributeIfChangedFiresExactlyOncePerTick) {
  std::vector<std::vector<std::int64_t>> Script = {
      {5, 5}, {7, 3}, {7, 3}, {2, 8}};
  int Calls = -1;
  std::vector<std::int64_t> FinalUnits;
  SpmdResult R = runSpmd(2, [&](Comm &C) {
    BalancedLoop Loop(scriptedPartitioner(Script), "cpm", 10, 2);
    BalancePolicy Policy;
    MockContainer V;
    for (std::size_t It = 0; It < Script.size(); ++It) {
      double Start = C.time();
      C.compute(0.01 * (C.rank() + 1));
      Loop.balance(C, Start, Policy);
      bool Fired = Loop.redistributeIfChanged(V);
      // A second call in the same iteration must be a no-op: the
      // container is already synced to the current epoch.
      EXPECT_FALSE(Loop.redistributeIfChanged(V));
      EXPECT_EQ(Fired, It == 1 || It == 3) << "iteration " << It;
      EXPECT_EQ(V.Synced, Loop.distEpoch());
    }
    if (C.rank() == 0) {
      Calls = V.Calls;
      FinalUnits = V.LastUnits;
    }
  });
  ASSERT_TRUE(R.allOk());
  // Two genuine changes -> exactly two migrations, ending on {2,8}.
  EXPECT_EQ(Calls, 2);
  EXPECT_EQ(FinalUnits, (std::vector<std::int64_t>{2, 8}));
}

TEST(BalancedLoop, DisabledPolicyNeverRedistributes) {
  std::vector<std::vector<std::int64_t>> Script = {{7, 3}, {2, 8}};
  SpmdResult R = runSpmd(2, [&](Comm &C) {
    BalancedLoop Loop(scriptedPartitioner(Script), "cpm", 10, 2);
    BalancePolicy Policy;
    Policy.Enabled = false;
    MockContainer V;
    for (int It = 0; It < 4; ++It) {
      double Start = C.time();
      C.compute(0.01);
      EXPECT_FALSE(Loop.balance(C, Start, Policy));
      EXPECT_FALSE(Loop.redistributeIfChanged(V));
    }
    EXPECT_EQ(V.Calls, 0);
    EXPECT_EQ(Loop.distEpoch(), 0u);
  });
  ASSERT_TRUE(R.allOk());
}

TEST(BalancedLoop, DrivesPartitionedVectorMigration) {
  // End-to-end with the real container: the scripted repartition must
  // move real data exactly once per change and preserve contents.
  std::vector<std::vector<std::int64_t>> Script = {{9, 3}, {9, 3}, {1, 11}};
  SpmdResult R = runSpmd(2, [&](Comm &C) {
    BalancedLoop Loop(scriptedPartitioner(Script), "cpm", 12, 2);
    dist::PartitionedVector<double> V(C, Loop.dist(), 2);
    V.generate([](std::int64_t Unit, std::span<double> Out) {
      Out[0] = static_cast<double>(Unit);
      Out[1] = 0.5 * static_cast<double>(Unit);
    });
    BalancePolicy Policy;
    for (std::size_t It = 0; It < Script.size(); ++It) {
      double Start = C.time();
      C.compute(0.01 * (C.rank() + 1));
      Loop.balance(C, Start, Policy);
      Loop.redistributeIfChanged(V);
      for (std::int64_t U = V.start(); U < V.end(); ++U) {
        EXPECT_EQ(V.unit(U)[0], static_cast<double>(U));
        EXPECT_EQ(V.unit(U)[1], 0.5 * static_cast<double>(U));
      }
    }
    // Two unit changes (even {6,6} -> {9,3}, then -> {1,11}).
    EXPECT_EQ(V.redistributeCount(), 2u);
    EXPECT_EQ(V.units(), C.rank() == 0 ? 1 : 11);
  });
  ASSERT_TRUE(R.allOk());
}
