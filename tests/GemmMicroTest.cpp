//===-- tests/GemmMicroTest.cpp - register-blocked micro-kernel tests -----===//
//
// The micro-kernel's contract (blas/Gemm.h): gemmMicro differs from
// gemmBlocked only by FMA/vectorization reassociation, elementwise within
// gemmAbsErrorBound(); banding in gemmParallel never changes per-element
// accumulation order, so the parallel micro path is bit-identical to a
// serial gemmMicro call; and the ISA is resolved once per process by
// CPUID dispatch — whichever tile body runs, the bound holds.
//
//===----------------------------------------------------------------------===//

#include "blas/Gemm.h"

#include "core/GemmKernel.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

using namespace fupermod;

namespace {

struct Shape {
  std::size_t M, N, K;
};

/// Runs gemmBlocked and gemmMicro from the same inputs and returns the
/// elementwise error bound alongside both results.
struct KernelPair {
  std::vector<double> Blocked, Micro, Bound;
};

KernelPair runPair(Shape S, std::uint64_t Seed) {
  std::vector<double> A(S.M * S.K), B(S.K * S.N), C0(S.M * S.N);
  fillDeterministic(A, Seed);
  fillDeterministic(B, Seed + 1);
  fillDeterministic(C0, Seed + 2);

  KernelPair R;
  R.Blocked = C0;
  R.Micro = C0;
  R.Bound.resize(S.M * S.N);
  gemmBlocked(S.M, S.N, S.K, A, B, R.Blocked);
  gemmMicro(S.M, S.N, S.K, A, B, R.Micro);
  gemmAbsErrorBound(S.M, S.N, S.K, A, B, C0, R.Bound);
  return R;
}

} // namespace

TEST(GemmMicro, WithinErrorBoundOfBlocked) {
  // Edge shapes on purpose: remainder rows (M % 4 != 0), remainder
  // columns (N % 8 != 0), K = 1 (a single fused multiply-add per
  // element), and a tile-aligned square for the fast path.
  const Shape Shapes[] = {
      {17, 23, 31}, {4, 8, 1}, {5, 9, 7}, {64, 64, 64}, {33, 40, 5},
      {1, 1, 1},    {3, 70, 2},
  };
  std::uint64_t Seed = 0x5eed;
  for (Shape S : Shapes) {
    KernelPair R = runPair(S, Seed++);
    for (std::size_t I = 0; I < S.M * S.N; ++I)
      ASSERT_LE(std::abs(R.Blocked[I] - R.Micro[I]), R.Bound[I])
          << "element " << I << " of " << S.M << "x" << S.N << "x" << S.K
          << " exceeds the reassociation bound";
  }
}

TEST(GemmMicro, ParallelBandingIsBitIdenticalToSerial) {
  // Row bands write disjoint rows and never reorder any element's
  // accumulation, so the pooled micro path must match serial gemmMicro
  // exactly — not just within the bound.
  const std::size_t M = 61, N = 40, K = 33;
  std::vector<double> A(M * K), B(K * N), C0(M * N);
  fillDeterministic(A, 7);
  fillDeterministic(B, 8);
  fillDeterministic(C0, 9);

  std::vector<double> Serial = C0, Banded = C0;
  gemmMicro(M, N, K, A, B, Serial);
  ThreadPool Pool(3);
  gemmParallel(M, N, K, A, B, Banded, Pool, /*Tile=*/16, /*UseMicro=*/true);
  EXPECT_EQ(maxAbsDiff(Serial, Banded), 0.0);
}

TEST(GemmMicro, DispatchReportsAResolvedIsa) {
  GemmIsa Isa = gemmMicroIsa();
  EXPECT_TRUE(Isa == GemmIsa::Portable || Isa == GemmIsa::Avx2);
  // The resolution is per-process and stable.
  EXPECT_EQ(gemmMicroIsa(), Isa);
  EXPECT_STREQ(gemmIsaName(GemmIsa::Portable), "portable");
  EXPECT_STREQ(gemmIsaName(GemmIsa::Avx2), "avx2");
}

TEST(GemmMicro, GemmKernelRunsMicroModeSerialAndPooled) {
  // The kernel wrapper replicates the application's block-update pattern;
  // micro mode must run it end to end in both the serial and the
  // row-banded configuration, with the complexity accounting unchanged.
  for (unsigned Threads : {1u, 2u}) {
    GemmKernel K(/*BlockSize=*/8, /*UseBlockedGemm=*/true, Threads,
                 /*UseMicroGemm=*/true);
    EXPECT_DOUBLE_EQ(K.complexity(5.0), 2.0 * 5.0 * 512.0);
    ASSERT_TRUE(K.initialize(12));
    K.execute();
    K.execute();
    K.finalize();
  }
}
