//===-- tests/RandomTest.cpp - support/Random tests -----------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace fupermod;

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 A(123), B(123), C(124);
  for (int I = 0; I < 100; ++I) {
    auto VA = A.next();
    EXPECT_EQ(VA, B.next());
    EXPECT_NE(VA, C.next());
  }
}

TEST(SplitMix64, UniformInRange) {
  SplitMix64 Rng(7);
  for (int I = 0; I < 10000; ++I) {
    double U = Rng.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(SplitMix64, UniformIntervalRespected) {
  SplitMix64 Rng(9);
  for (int I = 0; I < 1000; ++I) {
    double U = Rng.uniform(-3.0, 5.0);
    EXPECT_GE(U, -3.0);
    EXPECT_LT(U, 5.0);
  }
}

TEST(SplitMix64, UniformMeanIsCentered) {
  SplitMix64 Rng(11);
  double Sum = 0.0;
  const int N = 100000;
  for (int I = 0; I < N; ++I)
    Sum += Rng.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(SplitMix64, NormalMomentsApproximate) {
  SplitMix64 Rng(13);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 100000;
  for (int I = 0; I < N; ++I) {
    double Z = Rng.normal();
    Sum += Z;
    SumSq += Z * Z;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.02);
  EXPECT_NEAR(Var, 1.0, 0.03);
}

TEST(SplitMix64, ScaledNormal) {
  SplitMix64 Rng(17);
  double Sum = 0.0;
  const int N = 50000;
  for (int I = 0; I < N; ++I)
    Sum += Rng.normal(10.0, 2.0);
  EXPECT_NEAR(Sum / N, 10.0, 0.1);
}
