//===-- tests/PartitionedVectorTest.cpp - distributed container -----------===//
//
// The halo contract of the container, checked byte-for-byte against a
// serial reference: for every width and process count — including
// partitions with zero-unit (degraded, excluded) ranks and segments
// smaller than the halo width — each rank's above/below buffers must
// hold exactly the in-domain neighbour units, with out-of-domain units
// boundary-filled. Plus the overlapped-exchange stress that doubles as
// the ThreadSanitizer workload for the dist layer.
//
//===----------------------------------------------------------------------===//

#include "dist/PartitionedVector.h"
#include "mpp/Runtime.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace fupermod;
using namespace fupermod::dist;

namespace {

/// Deterministic in-domain contents of element \p Elem of unit \p Unit.
double unitValue(std::int64_t Unit, std::int64_t Elem) {
  std::uint64_t Z = static_cast<std::uint64_t>(Unit) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(Elem) + 1;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  return static_cast<double>(Z >> 11) * (1.0 / 9007199254740992.0);
}

/// Boundary value of out-of-domain unit \p Unit (distinct from any
/// in-domain value).
double boundaryValue(std::int64_t Unit, std::int64_t Elem) {
  return -1000.0 - static_cast<double>(Unit) -
         0.001 * static_cast<double>(Elem);
}

Dist distOf(std::span<const std::int64_t> Units) {
  Dist D;
  for (std::int64_t U : Units) {
    Part P;
    P.Units = U;
    D.Parts.push_back(P);
    D.Total += U;
  }
  return D;
}

void fillUnits(PartitionedVector<double> &V) {
  V.generate([](std::int64_t Unit, std::span<double> Out) {
    for (std::size_t E = 0; E < Out.size(); ++E)
      Out[E] = unitValue(Unit, static_cast<std::int64_t>(E));
  });
}

/// What unit \p Unit must contain when seen through a halo under the
/// serial reference: its generated value in the domain, the boundary
/// fill outside.
double expectedAt(std::int64_t Unit, std::int64_t Elem, std::int64_t DomLo,
                  std::int64_t DomHi) {
  return (Unit >= DomLo && Unit < DomHi) ? unitValue(Unit, Elem)
                                         : boundaryValue(Unit, Elem);
}

/// Exhaustive halo check of one partition at one width.
void checkHalos(std::span<const std::int64_t> Units, std::int64_t Width,
                std::int64_t EPU, std::int64_t Base) {
  Dist D = distOf(Units);
  int P = static_cast<int>(Units.size());
  SpmdResult R = runSpmd(P, [&](Comm &C) {
    PartitionedVector<double> V(C, D, EPU, Base);
    fillUnits(V);
    V.exchangeHalos(Width, [](std::int64_t Unit, std::span<double> Out) {
      for (std::size_t E = 0; E < Out.size(); ++E)
        Out[E] = boundaryValue(Unit, static_cast<std::int64_t>(E));
    });

    if (V.units() == 0) {
      // A rank with no units exchanges nothing and exposes empty halos.
      EXPECT_TRUE(V.haloAbove().empty());
      EXPECT_TRUE(V.haloBelow().empty());
      return;
    }
    std::span<const double> Above = V.haloAbove();
    std::span<const double> Below = V.haloBelow();
    ASSERT_EQ(Above.size(), static_cast<std::size_t>(Width * EPU));
    ASSERT_EQ(Below.size(), static_cast<std::size_t>(Width * EPU));
    for (std::int64_t W = 0; W < Width; ++W)
      for (std::int64_t E = 0; E < EPU; ++E) {
        std::int64_t AUnit = V.start() - Width + W;
        ASSERT_EQ(Above[static_cast<std::size_t>(W * EPU + E)],
                  expectedAt(AUnit, E, V.domainLo(), V.domainHi()))
            << "above unit " << AUnit << " elem " << E;
        std::int64_t BUnit = V.end() + W;
        ASSERT_EQ(Below[static_cast<std::size_t>(W * EPU + E)],
                  expectedAt(BUnit, E, V.domainLo(), V.domainHi()))
            << "below unit " << BUnit << " elem " << E;
      }

    // unitOrHalo spans the whole window [start - Width, end + Width).
    for (std::int64_t U = V.start() - Width; U < V.end() + Width; ++U) {
      std::span<const double> Row = V.unitOrHalo(U);
      ASSERT_EQ(Row.size(), static_cast<std::size_t>(EPU));
      for (std::int64_t E = 0; E < EPU; ++E)
        ASSERT_EQ(Row[static_cast<std::size_t>(E)],
                  expectedAt(U, E, V.domainLo(), V.domainHi()));
    }
  });
  ASSERT_TRUE(R.allOk());
  // The halo path stages into adopted payloads and assembles from shared
  // ones: the comm layer must copy nothing.
  EXPECT_EQ(R.Comm.BytesCopied, 0u);
  EXPECT_EQ(R.Comm.HaloBytes, R.Comm.BytesLogical);
}

} // namespace

TEST(PartitionedVector, GeometryAndAccess) {
  std::vector<std::int64_t> Units = {3, 0, 2};
  Dist D = distOf(Units);
  SpmdResult R = runSpmd(3, [&](Comm &C) {
    PartitionedVector<double> V(C, D, 4, /*Base=*/10);
    EXPECT_EQ(V.domainLo(), 10);
    EXPECT_EQ(V.domainHi(), 15);
    EXPECT_EQ(V.elemsPerUnit(), 4);
    switch (C.rank()) {
    case 0:
      EXPECT_EQ(V.start(), 10);
      EXPECT_EQ(V.end(), 13);
      break;
    case 1:
      EXPECT_EQ(V.units(), 0);
      break;
    case 2:
      EXPECT_EQ(V.start(), 13);
      EXPECT_EQ(V.end(), 15);
      break;
    }
    EXPECT_EQ(V.ownerOf(10), 0);
    EXPECT_EQ(V.ownerOf(12), 0);
    EXPECT_EQ(V.ownerOf(13), 2);
    EXPECT_EQ(V.ownerOf(15), -1);
    EXPECT_EQ(V.ownerOf(9), -1);

    fillUnits(V);
    for (std::int64_t U = V.start(); U < V.end(); ++U)
      EXPECT_EQ(V.unit(U)[0], unitValue(U, 0));
    EXPECT_EQ(V.local().size(), static_cast<std::size_t>(V.units() * 4));
  });
  ASSERT_TRUE(R.allOk());
}

TEST(PartitionedVector, HaloExactnessAcrossWidthsAndGroupSizes) {
  // The issue's matrix: widths {1,2,3} at P in {1,2,3,5,8}, partitions
  // both even and lopsided.
  for (int P : {1, 2, 3, 5, 8})
    for (std::int64_t Width : {1, 2, 3}) {
      std::vector<std::int64_t> Even;
      for (int Q = 0; Q < P; ++Q)
        Even.push_back(4 + (Q % 2));
      SCOPED_TRACE("P=" + std::to_string(P) + " W=" + std::to_string(Width));
      checkHalos(Even, Width, /*EPU=*/3, /*Base=*/0);
      checkHalos(Even, Width, /*EPU=*/1, /*Base=*/1);
    }
}

TEST(PartitionedVector, HaloSpansTinyAndZeroUnitSegments) {
  // Degraded-rank shapes: zero-unit ranks inside the rank order and
  // one-unit segments narrower than the halo width, so a window crosses
  // several owners and skips excluded ranks.
  std::vector<std::vector<std::int64_t>> Shapes = {
      {0, 5, 0, 5, 0},    // excluded ranks at the edges and middle
      {1, 1, 1, 1, 1},    // every segment thinner than width 3
      {2, 0, 1, 0, 7},    // mixed: holes between tiny and large segments
      {0, 0, 6, 0, 0},    // a single surviving rank
  };
  for (const auto &Shape : Shapes)
    for (std::int64_t Width : {1, 2, 3}) {
      SCOPED_TRACE("W=" + std::to_string(Width));
      checkHalos(Shape, Width, /*EPU=*/2, /*Base=*/0);
    }
}

TEST(PartitionedVector, RedistributePreservesContentAndCounts) {
  std::vector<std::int64_t> OldUnits = {6, 2, 4};
  std::vector<std::int64_t> NewUnits = {2, 8, 2};
  Dist OldD = distOf(OldUnits);
  Dist NewD = distOf(NewUnits);
  SpmdResult R = runSpmd(3, [&](Comm &C) {
    PartitionedVector<double> V(C, OldD, 3);
    fillUnits(V);
    EXPECT_EQ(V.redistributeCount(), 0u);
    V.redistribute(NewD);
    EXPECT_EQ(V.redistributeCount(), 1u);
    for (std::int64_t U = V.start(); U < V.end(); ++U)
      for (std::int64_t E = 0; E < 3; ++E)
        EXPECT_EQ(V.unit(U)[static_cast<std::size_t>(E)], unitValue(U, E));
    // Redistributing to the same partition again moves nothing.
    RedistributeStats S = V.redistribute(NewD);
    EXPECT_EQ(S.UnitsSent, 0);
    EXPECT_EQ(S.UnitsReceived, 0);
    EXPECT_EQ(S.UnitsKept, V.units());
  });
  ASSERT_TRUE(R.allOk());
}

TEST(PartitionedVectorStress, OverlappedHalosUnderRepartitionChurn) {
  // The TSan workload: every iteration starts a halo exchange, mutates
  // the local segment while the receives are still in flight (legal: the
  // sends stage their bytes up front), completes the exchange, verifies
  // it, and then migrates the whole container to a new partition. Run
  // under -DFUPERMOD_SANITIZE=thread this exercises every cross-thread
  // handoff of the dist layer.
  const int P = 5;
  const std::int64_t N = 24;
  const std::int64_t EPU = 3;
  // A deterministic partition schedule, shared by all ranks; includes
  // zero-unit and single-unit segments.
  std::vector<std::vector<std::int64_t>> Schedule = {
      {5, 5, 5, 5, 4}, {1, 9, 0, 10, 4}, {0, 0, 24, 0, 0},
      {8, 1, 6, 1, 8}, {24, 0, 0, 0, 0}, {4, 5, 6, 5, 4},
  };
  SpmdResult R = runSpmd(P, [&](Comm &C) {
    PartitionedVector<double> V(C, distOf(Schedule.front()), EPU);
    fillUnits(V);
    for (int It = 0; It < 48; ++It) {
      std::int64_t Width = 1 + It % 3;
      HaloExchange Ex =
          V.startHaloExchange(Width, [](std::int64_t Unit,
                                        std::span<double> Out) {
            for (std::size_t E = 0; E < Out.size(); ++E)
              Out[E] = boundaryValue(Unit, static_cast<std::int64_t>(E));
          });
      // Overlapped "kernel": rewrite the local segment while the
      // exchange is pending (same values, so later checks stay valid —
      // but a leaked reference into the send path would race here).
      fillUnits(V);
      Ex.wait();
      for (std::int64_t U = V.start() - Width; U < V.end() + Width; ++U) {
        if (V.units() == 0)
          break;
        std::span<const double> Row = V.unitOrHalo(U);
        for (std::int64_t E = 0; E < EPU; ++E)
          ASSERT_EQ(Row[static_cast<std::size_t>(E)],
                    expectedAt(U, E, V.domainLo(), V.domainHi()));
      }
      V.redistribute(
          distOf(Schedule[static_cast<std::size_t>(It + 1) %
                          Schedule.size()]));
      for (std::int64_t U = V.start(); U < V.end(); ++U)
        for (std::int64_t E = 0; E < EPU; ++E)
          ASSERT_EQ(V.unit(U)[static_cast<std::size_t>(E)],
                    unitValue(U, E));
    }
  });
  ASSERT_TRUE(R.allOk());
  EXPECT_EQ(R.Comm.BytesCopied, 0u);
  EXPECT_GT(R.Comm.HaloBytes, 0u);
  EXPECT_GT(R.Comm.RedistributeBytes, 0u);
}
