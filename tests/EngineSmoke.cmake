# CTest script exercising the engine-backed `partitioner --serve` batch
# mode end to end: build models, answer a request batch (including a
# per-request algorithm override and an explicit reload), hot-reload a
# model that changed on disk between requests, and check that bad
# requests and mistyped flags fail loudly.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE Rc
                  OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "command failed (${Rc}): ${ARGV}\n${Out}\n${Err}")
  endif()
  set(LAST_OUTPUT "${Out}" PARENT_SCOPE)
endfunction()

run_checked(${BUILDER} --source two-device --rank 0 --min 100 --max 4000
            --points 8 --output ${WORKDIR}/dev0.fpm)
run_checked(${BUILDER} --source two-device --rank 1 --min 100 --max 4000
            --points 8 --output ${WORKDIR}/dev1.fpm)

# A batch of requests: default algorithm, an override, a forced reload.
file(WRITE ${WORKDIR}/requests.txt
"# engine smoke batch
3000
1000 numerical
reload
500 constant
")
run_checked(${PARTITIONER} --serve ${WORKDIR}/requests.txt
            ${WORKDIR}/dev0.fpm ${WORKDIR}/dev1.fpm)
foreach(Expected
        "geometric partitioning of 3000 units"
        "numerical partitioning of 1000 units"
        "constant partitioning of 500 units"
        "# served 3 request\\(s\\), 0 failed")
  if(NOT LAST_OUTPUT MATCHES "${Expected}")
    message(FATAL_ERROR "serve output missing '${Expected}':\n"
                        "${LAST_OUTPUT}")
  endif()
endforeach()

# Every answered request's units must sum to its total.
string(REGEX MATCHALL "units +([0-9]+)" Matches "${LAST_OUTPUT}")
set(Sum 0)
foreach(M ${Matches})
  string(REGEX REPLACE "units +" "" U "${M}")
  math(EXPR Sum "${Sum} + ${U}")
endforeach()
if(NOT Sum EQUAL 4500)
  message(FATAL_ERROR "served units sum to ${Sum}, expected 4500:\n"
                      "${LAST_OUTPUT}")
endif()

# Serve answers from one long-lived session: the same batch answered
# twice must be deterministic. (Mid-run hot reload is unit-tested in
# SessionTest; a sequential script cannot rewrite a file between two
# requests of one invocation.)
set(FirstRun "${LAST_OUTPUT}")
run_checked(${PARTITIONER} --serve ${WORKDIR}/requests.txt
            ${WORKDIR}/dev0.fpm ${WORKDIR}/dev1.fpm)
if(NOT LAST_OUTPUT STREQUAL FirstRun)
  message(FATAL_ERROR "serve output is not deterministic")
endif()

# A degraded batch still answers over the surviving ranks: the missing
# model's rank is excluded with a warning and holds zero units.
file(WRITE ${WORKDIR}/degraded.txt "600\n")
run_checked(${PARTITIONER} --serve ${WORKDIR}/degraded.txt
            --allow-degraded ${WORKDIR}/dev0.fpm ${WORKDIR}/missing.fpm)
if(NOT LAST_OUTPUT MATCHES "rank 0 +units +600")
  message(FATAL_ERROR "degraded serve did not give rank 0 the full "
                      "total:\n${LAST_OUTPUT}")
endif()
if(NOT LAST_OUTPUT MATCHES "rank 1 +units +0")
  message(FATAL_ERROR "degraded serve did not zero the excluded rank:\n"
                      "${LAST_OUTPUT}")
endif()

# A malformed request line is skipped-and-recorded: the error record on
# stdout names the line, the rest of the batch is still answered, and
# the exit code is nonzero because a request failed.
file(WRITE ${WORKDIR}/bad.txt "3000\nnonsense 7\n700\n")
execute_process(COMMAND ${PARTITIONER} --serve ${WORKDIR}/bad.txt
                ${WORKDIR}/dev0.fpm RESULT_VARIABLE Rc
                OUTPUT_VARIABLE Out ERROR_QUIET)
if(Rc EQUAL 0)
  message(FATAL_ERROR "partitioner exited 0 despite a malformed request")
endif()
if(NOT Out MATCHES "# error: request line 2")
  message(FATAL_ERROR "malformed request record lacks the line number:\n"
                      "${Out}")
endif()
if(NOT Out MATCHES "partitioning of 700 units")
  message(FATAL_ERROR "batch did not continue past the malformed line:\n"
                      "${Out}")
endif()
if(NOT Out MATCHES "served 2 request\\(s\\), 1 failed")
  message(FATAL_ERROR "serve summary miscounts the malformed line:\n"
                      "${Out}")
endif()

# The same batch through the concurrent server (--workers) must answer
# with byte-identical partition lines plus its own summary footer.
run_checked(${PARTITIONER} --serve ${WORKDIR}/requests.txt
            ${WORKDIR}/dev0.fpm ${WORKDIR}/dev1.fpm)
set(SerialOut "${LAST_OUTPUT}")
run_checked(${PARTITIONER} --serve ${WORKDIR}/requests.txt --workers 2
            --queue 8 ${WORKDIR}/dev0.fpm ${WORKDIR}/dev1.fpm)
foreach(Expected
        "geometric partitioning of 3000 units"
        "numerical partitioning of 1000 units"
        "constant partitioning of 500 units"
        "# served 3 request\\(s\\), 0 failed, 0 rejected"
        "# server: 2 workers, queue 8")
  if(NOT LAST_OUTPUT MATCHES "${Expected}")
    message(FATAL_ERROR "concurrent serve output missing '${Expected}':\n"
                        "${LAST_OUTPUT}")
  endif()
endforeach()
# Strip both summaries and compare the answer bodies byte for byte.
string(REGEX REPLACE "# served [^\n]*\n" "" SerialBody "${SerialOut}")
string(REGEX REPLACE "# (served|server)[^\n]*\n" "" ConcurrentBody
       "${LAST_OUTPUT}")
if(NOT ConcurrentBody STREQUAL SerialBody)
  message(FATAL_ERROR "concurrent serve diverged from sequential serve:\n"
                      "--- sequential ---\n${SerialBody}\n"
                      "--- concurrent ---\n${ConcurrentBody}")
endif()

# --stats surfaces the data-movement cost of the answer: the handout
# broadcast plus the adoption replay (minimal-move redistribute and one
# halo sweep), both zero-copy.
run_checked(${PARTITIONER} --total 2000 --stats
            ${WORKDIR}/dev0.fpm ${WORKDIR}/dev1.fpm)
if(NOT LAST_OUTPUT MATCHES
   "adopting the distribution from an even split: redistribute bytes ([0-9]+) \\(analytic minimum ([0-9]+)\\), halo bytes [0-9]+ per width-1 sweep, bytes physically copied ([0-9]+)")
  message(FATAL_ERROR "--stats lacks the adoption line:\n${LAST_OUTPUT}")
endif()
if(NOT CMAKE_MATCH_1 EQUAL CMAKE_MATCH_2)
  message(FATAL_ERROR "adoption redistribute moved ${CMAKE_MATCH_1} bytes, "
                      "analytic minimum is ${CMAKE_MATCH_2}:\n${LAST_OUTPUT}")
endif()
if(NOT CMAKE_MATCH_3 EQUAL 0)
  message(FATAL_ERROR "adoption replay physically copied ${CMAKE_MATCH_3} "
                      "bytes on a zero-copy path:\n${LAST_OUTPUT}")
endif()

# Strict option parsing: mistyped flags and non-numeric values fail.
execute_process(COMMAND ${PARTITIONER} --total ten ${WORKDIR}/dev0.fpm
                RESULT_VARIABLE Rc OUTPUT_QUIET ERROR_VARIABLE Err)
if(Rc EQUAL 0 OR NOT Err MATCHES "expected an integer")
  message(FATAL_ERROR "partitioner accepted --total ten:\n${Err}")
endif()
execute_process(COMMAND ${PARTITIONER} --total 100 --exlpain
                ${WORKDIR}/dev0.fpm RESULT_VARIABLE Rc
                OUTPUT_QUIET ERROR_VARIABLE Err)
if(Rc EQUAL 0 OR NOT Err MATCHES "unknown option --exlpain")
  message(FATAL_ERROR "partitioner accepted a mistyped flag:\n${Err}")
endif()
execute_process(COMMAND ${BUILDER} --points ten RESULT_VARIABLE Rc
                OUTPUT_QUIET ERROR_VARIABLE Err)
if(Rc EQUAL 0 OR NOT Err MATCHES "expected an integer")
  message(FATAL_ERROR "builder accepted --points ten:\n${Err}")
endif()
message(STATUS "engine smoke OK")
